(* Benchmark harness.

   Three parts:

   1. Regenerate every experiment table of EXPERIMENTS.md (fast profile)
      -- the reproduction itself. One table group per theorem/lemma.
   2. Bechamel micro-benchmarks of each experiment's computational
      kernel (one Test.make per experiment), so performance regressions
      in the simulators are visible.
   3. Engine bench: sequential vs parallel wall-clock for the heaviest
      experiment kernels, recorded to results/bench_engine.json so the
      perf trajectory is machine-readable across PRs. Run only this
      part with `dune exec bench/main.exe -- --engine`. *)

open Bechamel
open Bechamel.Toolkit

(* -- Part 1: regenerate the experiment tables -------------------------- *)

let regenerate_tables () =
  let cfg = Dut_experiments.Config.make Dut_experiments.Config.Fast in
  let report = Dut_experiments.Runner.run_all_to_channel cfg stdout in
  Printf.printf "# all tables regenerated in %.1fs wall (%.1fs summed-cpu)\n\n%!"
    report.Dut_experiments.Runner.wall_seconds report.cpu_seconds

(* -- Part 2: kernel micro-benchmarks ----------------------------------- *)

let kernel_tests () =
  let rng = Dut_prng.Rng.create 2019 in
  let ell = 7 in
  let n = 1 lsl (ell + 1) in
  let eps = 0.3 in
  let hard = Dut_dist.Paninski.random ~ell ~eps rng in
  let majority =
    Dut_core.Threshold_tester.tester_majority ~n ~eps ~k:32 ~q:64
      ~calibration_trials:50 ~rng:(Dut_prng.Rng.split rng)
  in
  let and_tester = Dut_core.And_tester.tester ~n ~eps ~k:32 ~q:256 in
  let fixed_t =
    Dut_core.Threshold_tester.tester_fixed ~n ~eps ~k:32 ~q:128 ~t:4
  in
  let rbit =
    Dut_core.Rbit_tester.tester ~n ~eps ~k:32 ~q:64 ~bits:3
      ~calibration_trials:50 ~rng:(Dut_prng.Rng.split rng)
  in
  let single = Dut_core.Single_sample.tester ~n ~eps ~k:2048 ~bits:3 in
  let async =
    Dut_core.Async_tester.tester ~n ~eps ~rates:(Array.make 16 1.) ~tau:64.
      ~calibration_trials:50 ~rng:(Dut_prng.Rng.split rng)
  in
  let learning = Dut_core.Learning.make ~n:32 ~k:(32 * 50) ~q:4 in
  let learning_truth = Dut_dist.Pmf.uniform 32 in
  let g_exact = Dut_core.Exact.collision_acceptor ~ell:2 ~q:3 ~cutoff:1 in
  let small_hard = Dut_dist.Paninski.random ~ell:2 ~eps rng in
  let fwht_table = Array.init 4096 (fun i -> float_of_int (i land 7)) in
  let round tester () =
    tester.Dut_core.Evaluate.accepts (Dut_prng.Rng.split rng)
      (Dut_protocol.Network.of_paninski hard)
  in
  let samples_1k = Dut_dist.Paninski.draw_many hard rng 1000 in
  [
    Test.make ~name:"T1/T2.majority-round" (Staged.stage (round majority));
    Test.make ~name:"T2.and-round" (Staged.stage (round and_tester));
    Test.make ~name:"T3.fixed-threshold-round" (Staged.stage (round fixed_t));
    Test.make ~name:"T4.learning-round"
      (Staged.stage (fun () ->
           Dut_core.Learning.l1_error learning (Dut_prng.Rng.split rng)
             ~truth:learning_truth));
    Test.make ~name:"T5.collision-statistic-1k"
      (Staged.stage (fun () -> Dut_core.Local_stat.collisions samples_1k));
    Test.make ~name:"T6.rbit-round" (Staged.stage (round rbit));
    Test.make ~name:"T7.async-round" (Staged.stage (round async));
    Test.make ~name:"T10.single-sample-round" (Staged.stage (round single));
    Test.make ~name:"F1/T8/T11.exact-nu"
      (Staged.stage (fun () -> Dut_core.Exact.nu g_exact small_hard));
    Test.make ~name:"F1.lemma41-fourier-diff"
      (Staged.stage (fun () -> Dut_core.Exact.diff_fourier g_exact small_hard));
    Test.make ~name:"F2.moment-a_r-exact"
      (Staged.stage (fun () ->
           Dut_boolcube.Even_cover.moment_a_r_exact ~m:4 ~q:4 ~r:1 ~power:2));
    Test.make ~name:"F3.fwht-4096"
      (Staged.stage (fun () ->
           Dut_boolcube.Fourier.wht_in_place (Array.copy fwht_table)));
    Test.make ~name:"F4.paninski-draw-1k"
      (Staged.stage (fun () -> Dut_dist.Paninski.draw_many hard rng 1000));
    (let target = Dut_dist.Families.zipf ~n ~s:1. in
     let reduction = Dut_testers.Identity.make ~target ~eps in
     Test.make ~name:"T12.identity-flatten-1k"
       (Staged.stage (fun () ->
            for _ = 1 to 1000 do
              ignore
                (Dut_testers.Identity.map_sample reduction rng
                   (Dut_prng.Rng.int rng n))
            done)));
    (let graph = Dut_netsim.Graph.grid 6 6 in
     let local =
       Dut_netsim.Local_tester.make ~graph ~n ~eps ~q:64 ~calibration_trials:50
         ~rng:(Dut_prng.Rng.split rng)
     in
     Test.make ~name:"T13.local-model-round"
       (Staged.stage (fun () ->
            Dut_netsim.Local_tester.run local (Dut_prng.Rng.split rng)
              (Dut_protocol.Network.of_paninski hard))));
    Test.make ~name:"A1.calibration-200"
      (Staged.stage (fun () ->
           Dut_core.Threshold_tester.tester_majority ~n ~eps ~k:32 ~q:64
             ~calibration_trials:200 ~rng:(Dut_prng.Rng.split rng)));
  ]

let run_kernels () =
  let tests = kernel_tests () in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.25) () in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  print_endline "== kernel micro-benchmarks (Bechamel, ns/run) ==";
  List.iter
    (fun test ->
      (* One measurement table and one OLS analysis per element list,
         not a fresh singleton table per element. *)
      let elts = Test.elements test in
      let tbl = Hashtbl.create (List.length elts) in
      List.iter
        (fun elt ->
          Hashtbl.replace tbl (Test.Elt.name elt)
            (Benchmark.run cfg Instance.[ monotonic_clock ] elt))
        elts;
      let results = Analyze.all ols Instance.monotonic_clock tbl in
      List.iter
        (fun elt ->
          let name = Test.Elt.name elt in
          let estimate =
            match Hashtbl.find_opt results name with
            | None -> None
            | Some ols_result -> (
                match Analyze.OLS.estimates ols_result with
                | Some (e :: _) when not (Float.is_nan e) -> Some e
                | Some _ | None -> None)
          in
          match estimate with
          | Some ns -> Printf.printf "%-28s %14.1f ns/run\n%!" name ns
          | None -> Printf.printf "%-28s %14s\n%!" name "n/a")
        elts)
    tests

(* -- Part 3: engine hot-path before/after wall-clock -------------------- *)

(* The three heaviest fast-profile experiment kernels (by measured
   elapsed time of a full `run-all`). *)
let engine_bench_ids = [ "A1-ablation"; "T13-local-model"; "T20-open-problem" ]

(* The engine/stat counters each leg records, on the shared Dut_obs
   vocabulary — the same names the run manifest and `--metrics` print,
   so results/bench_engine.json and a trace describe one world. *)
let tracked_counters =
  [
    "mc.trials_used";
    "mc.adaptive_early_stops";
    "search.probes";
    "search.exact_hits";
    "scratch.borrows";
    "scratch.reuse_hits";
  ]

type meas = {
  seconds : float;
  trials : int;
  minor_words : float;
  counters : (string * int) list;  (* tracked_counters deltas, same order *)
}

(* Wall-clock, Monte-Carlo trials executed, and minor-heap words
   allocated on the submitting domain (jobs is clamped to the host's
   core count, so on a single-core runner this is all allocation).
   Counters are measured as before/after deltas of the process-wide
   Dut_obs totals — the runs are quiescent at both read points. *)
let instrumented run =
  let base =
    List.map (fun n -> (n, Dut_obs.Metrics.value n)) tracked_counters
  in
  let mw0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  ignore (run ());
  let seconds = Unix.gettimeofday () -. t0 in
  let counters =
    List.map (fun (n, v0) -> (n, Dut_obs.Metrics.value n - v0)) base
  in
  {
    seconds;
    trials = List.assoc "mc.trials_used" counters;
    minor_words = Gc.minor_words () -. mw0;
    counters;
  }

(* "before" reproduces the hot path of the previous revision: fixed
   trial budgets, cold searches, and — via [Scratch.set_reuse false] —
   the legacy allocating kernels (per-player sample tuples, sort-based
   collision counts, fresh hard instances, the tuple-message
   single-sample referee). "after" is the current default. *)
let bench_config ~quick ~hotpath =
  (* 60, not lower: very noisy probes make the cold critical searches in
     the "before" leg wander far past the true threshold, which costs
     more wall-clock than the smaller per-probe budget saves. *)
  let trials = if quick then Some 60 else None in
  Dut_experiments.Config.make ?trials ~adaptive:hotpath ~warm_start:hotpath
    Dut_experiments.Config.Fast

let with_kernels ~hotpath f =
  Dut_engine.Scratch.set_reuse hotpath;
  Fun.protect ~finally:(fun () -> Dut_engine.Scratch.set_reuse true) f

let run_experiment ~hotpath cfg exp =
  Dut_engine.Parallel.set_default_jobs cfg.Dut_experiments.Config.jobs;
  with_kernels ~hotpath (fun () ->
      instrumented (fun () -> exp.Dut_experiments.Exp.run cfg))

let run_all ~hotpath cfg =
  Dut_engine.Parallel.set_default_jobs cfg.Dut_experiments.Config.jobs;
  let devnull = open_out Filename.null in
  Fun.protect
    ~finally:(fun () -> close_out devnull)
    (fun () ->
      with_kernels ~hotpath (fun () ->
          instrumented (fun () ->
              Dut_experiments.Runner.run_all_to_channel ~timings:false cfg
                devnull)))

let engine_json_path = Filename.concat "results" "bench_engine.json"

let write_engine_json ~quick ~jobs ~all_before ~all_after rows =
  if not (Sys.file_exists "results") then Sys.mkdir "results" 0o755;
  let oc = open_out engine_json_path in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"engine-hotpath\",\n\
    \  \"profile\": \"fast\",\n\
    \  \"seed\": 2019,\n\
    \  \"quick\": %b,\n\
    \  \"jobs\": %d,\n\
    \  \"cores_available\": %d,\n\
    \  \"run_all\": { \"before_seconds\": %.3f, \"after_seconds\": %.3f, \
     \"speedup\": %.3f },\n\
    \  \"experiments\": [\n"
    quick jobs
    (Domain.recommended_domain_count ())
    all_before.seconds all_after.seconds
    (all_before.seconds /. all_after.seconds);
  let counters_obj meas =
    Dut_obs.Json.to_string
      (Dut_obs.Json.Obj
         (List.map (fun (n, v) -> (n, Dut_obs.Json.int v)) meas.counters))
  in
  List.iteri
    (fun i (id, before, after) ->
      Printf.fprintf oc
        "    { \"id\": %S, \"before_seconds\": %.3f, \"after_seconds\": %.3f, \
         \"speedup\": %.3f,\n\
        \      \"trials_before\": %d, \"trials_after\": %d, \
         \"minor_words_before\": %.0f, \"minor_words_after\": %.0f,\n\
        \      \"counters_before\": %s,\n\
        \      \"counters_after\": %s }%s\n"
        id before.seconds after.seconds
        (before.seconds /. after.seconds)
        before.trials after.trials before.minor_words after.minor_words
        (counters_obj before) (counters_obj after)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "  ]\n}\n";
  close_out oc

let bench_engine ~quick () =
  let cfg_before = bench_config ~quick ~hotpath:false in
  let cfg_after = bench_config ~quick ~hotpath:true in
  Printf.printf
    "== engine: fixed-budget/cold-search vs adaptive/warm-start wall-clock \
     (fast profile%s, jobs=%d, %d cores) ==\n\
     %!"
    (if quick then ", quick" else "")
    cfg_after.jobs
    (Domain.recommended_domain_count ());
  let rows =
    List.map
      (fun id ->
        match Dut_experiments.Registry.find id with
        | None -> failwith ("bench_engine: unknown experiment " ^ id)
        | Some exp ->
            let before = run_experiment ~hotpath:false cfg_before exp in
            let after = run_experiment ~hotpath:true cfg_after exp in
            Printf.printf
              "%-18s before %7.2fs (%7d trials)   after %7.2fs (%7d trials)   \
               speedup %5.2fx\n\
               %!"
              id before.seconds before.trials after.seconds after.trials
              (before.seconds /. after.seconds);
            (id, before, after))
      engine_bench_ids
  in
  let all_before = run_all ~hotpath:false cfg_before in
  let all_after = run_all ~hotpath:true cfg_after in
  Printf.printf "%-18s before %7.2fs   after %7.2fs   speedup %5.2fx\n%!"
    "run-all" all_before.seconds all_after.seconds
    (all_before.seconds /. all_after.seconds);
  Dut_engine.Parallel.set_default_jobs (Dut_engine.Parallel.env_jobs ());
  write_engine_json ~quick ~jobs:cfg_after.jobs ~all_before ~all_after rows;
  print_endline ("wrote " ^ engine_json_path)

(* -- Stream ingest bench (`--stream`) ----------------------------------- *)

module Sketch = Dut_stream.Sketch
module Ingest = Dut_stream.Ingest

let stream_json_path = Filename.concat "results" "bench_stream.json"

(* The budget ladder the throughput is measured on: the exact
   histogram, two hashed histograms, and two AMS widths — enough to see
   how the per-sample cost moves with sketch size (AMS pays one hash
   per counter per sample, so its cost is linear in the budget). *)
let stream_bench_rows n =
  [
    (Sketch.Hist, Sketch.exact_budget ~n);
    (Sketch.Hist, 72);
    (Sketch.Hist, 24);
    (Sketch.Ams, 40);
    (Sketch.Ams, 16);
  ]

type stream_meas = {
  s_kind : Sketch.kind;
  s_budget : int;
  s_words : int;
  s_samples : int;
  s_seconds : float;
  s_chunks : int;
}

let bench_stream ~quick () =
  let n = 256 in
  let seed = 2019 in
  let chunk = 4096 in
  let jobs = Dut_engine.Pool.effective_jobs (Dut_engine.Parallel.env_jobs ()) in
  let total = if quick then 1 lsl 18 else 1 lsl 22 in
  let rng = Dut_prng.Rng.create seed in
  let block = Array.init (1 lsl 14) (fun _ -> Dut_prng.Rng.int rng n) in
  Printf.printf
    "== stream: ingest throughput per sketch budget (n=%d, chunk=%d, %d \
     samples%s, jobs=%d) ==\n\
     %!"
    n chunk total
    (if quick then ", quick" else "")
    jobs;
  let rows =
    List.map
      (fun (kind, budget) ->
        let cfg = Sketch.config ~kind ~n ~budget_words:budget ~seed in
        let cum = ref (Sketch.create cfg) in
        let ing =
          Ingest.create ~jobs ~chunk
            ~on_chunk:(fun sk -> cum := Sketch.merge !cum sk)
            cfg
        in
        let t0 = Unix.gettimeofday () in
        let fed = ref 0 in
        while !fed < total do
          Ingest.feed_array ing block;
          fed := !fed + Array.length block
        done;
        Ingest.flush ing;
        let seconds = Unix.gettimeofday () -. t0 in
        let m =
          {
            s_kind = kind;
            s_budget = budget;
            s_words = Sketch.words_used !cum;
            s_samples = Ingest.samples_fed ing;
            s_seconds = seconds;
            s_chunks = Ingest.chunks_emitted ing;
          }
        in
        Printf.printf
          "%-4s budget %4d   %9.2e samples/s   %.6f words/sample   (%d words \
           used, %.2fs)\n\
           %!"
          (Sketch.kind_to_string kind)
          budget
          (float_of_int m.s_samples /. seconds)
          (float_of_int m.s_words /. float_of_int m.s_samples)
          m.s_words seconds;
        m)
      (stream_bench_rows n)
  in
  if not (Sys.file_exists "results") then Sys.mkdir "results" 0o755;
  let oc = open_out stream_json_path in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"stream-ingest\",\n\
    \  \"seed\": %d,\n\
    \  \"quick\": %b,\n\
    \  \"jobs\": %d,\n\
    \  \"n\": %d,\n\
    \  \"chunk\": %d,\n\
    \  \"rows\": [\n"
    seed quick jobs n chunk;
  List.iteri
    (fun i m ->
      Printf.fprintf oc
        "    { \"sketch\": %S, \"budget_words\": %d, \"words_used\": %d, \
         \"samples\": %d, \"chunks\": %d, \"seconds\": %.4f, \
         \"samples_per_sec\": %.1f, \"words_per_sample\": %.8f }%s\n"
        (Sketch.kind_to_string m.s_kind)
        m.s_budget m.s_words m.s_samples m.s_chunks m.s_seconds
        (float_of_int m.s_samples /. m.s_seconds)
        (float_of_int m.s_words /. float_of_int m.s_samples)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "  ]\n}\n";
  close_out oc;
  print_endline ("wrote " ^ stream_json_path)

(* -- Schema check for results/bench_engine.json (`--check`) ------------- *)

(* The JSON reader lives in Dut_obs.Json now (the same one obs-report
   uses on manifests and traces); this harness only keeps the schema
   assertions. *)
open Dut_obs.Json

let check_engine_json () =
  let fail msg =
    Printf.eprintf "%s: %s\n" engine_json_path msg;
    exit 1
  in
  if not (Sys.file_exists engine_json_path) then fail "missing";
  let ic = open_in_bin engine_json_path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match parse contents with
  | exception Malformed msg -> fail msg
  | root -> (
      try
        if want_str root "benchmark" <> "engine-hotpath" then
          raise (Malformed "benchmark: expected \"engine-hotpath\"");
        ignore (want_str root "profile");
        ignore (want_num root "seed");
        ignore (want_bool root "quick");
        if want_num root "jobs" < 1. then raise (Malformed "jobs < 1");
        if want_num root "cores_available" < 1. then
          raise (Malformed "cores_available < 1");
        let check_pair obj =
          List.iter
            (fun f ->
              if want_num obj f < 0. then
                raise (Malformed (f ^ ": negative time")))
            [ "before_seconds"; "after_seconds" ];
          ignore (want_num obj "speedup")
        in
        (* Every tracked Dut_obs counter must appear, non-negative, and
           the counters' trials entry must agree with the legacy
           trials_{before,after} fields (one vocabulary, no drift). *)
        let check_counters e which =
          let obj = field e ("counters_" ^ which) in
          List.iter
            (fun name ->
              if want_num obj name < 0. then
                raise (Malformed (name ^ ": negative counter")))
            tracked_counters;
          if want_num obj "mc.trials_used" <> want_num e ("trials_" ^ which)
          then
            raise
              (Malformed
                 (Printf.sprintf
                    "counters_%s[mc.trials_used] disagrees with trials_%s"
                    which which))
        in
        check_pair (field root "run_all");
        (match field root "experiments" with
        | Arr [] -> raise (Malformed "experiments: empty")
        | Arr exps ->
            List.iter
              (fun e ->
                ignore (want_str e "id");
                check_pair e;
                List.iter
                  (fun f ->
                    if want_num e f < 0. then
                      raise (Malformed (f ^ ": negative count")))
                  [
                    "trials_before"; "trials_after"; "minor_words_before";
                    "minor_words_after";
                  ];
                check_counters e "before";
                check_counters e "after")
              exps
        | _ -> raise (Malformed "experiments: expected array"));
        Printf.printf "%s: schema ok\n" engine_json_path
      with Malformed msg -> fail msg)

(* Validated only when present: the stream bench is optional (run with
   `--stream`), but a written file must conform — CI runs
   `--stream --quick` first, so there it is always checked. *)
let check_stream_json () =
  if Sys.file_exists stream_json_path then begin
    let fail msg =
      Printf.eprintf "%s: %s\n" stream_json_path msg;
      exit 1
    in
    let ic = open_in_bin stream_json_path in
    let contents = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match parse contents with
    | exception Malformed msg -> fail msg
    | root -> (
        try
          if want_str root "benchmark" <> "stream-ingest" then
            raise (Malformed "benchmark: expected \"stream-ingest\"");
          ignore (want_num root "seed");
          ignore (want_bool root "quick");
          if want_num root "jobs" < 1. then raise (Malformed "jobs < 1");
          if want_num root "n" < 1. then raise (Malformed "n < 1");
          if want_num root "chunk" < 1. then raise (Malformed "chunk < 1");
          (match field root "rows" with
          | Arr [] -> raise (Malformed "rows: empty")
          | Arr rows ->
              List.iter
                (fun r ->
                  (match want_str r "sketch" with
                  | "hist" | "ams" -> ()
                  | s -> raise (Malformed ("unknown sketch " ^ s)));
                  let budget = want_num r "budget_words" in
                  let words = want_num r "words_used" in
                  if budget < 1. then raise (Malformed "budget_words < 1");
                  if words < 1. then raise (Malformed "words_used < 1");
                  if words > budget then
                    raise
                      (Malformed
                         "words_used exceeds budget_words: the memory bound \
                          is broken");
                  if want_num r "samples" < 1. then
                    raise (Malformed "samples < 1");
                  if want_num r "chunks" < 1. then
                    raise (Malformed "chunks < 1");
                  List.iter
                    (fun f ->
                      if want_num r f < 0. then
                        raise (Malformed (f ^ ": negative")))
                    [ "seconds"; "samples_per_sec"; "words_per_sample" ])
                rows
          | _ -> raise (Malformed "rows: expected array"));
          Printf.printf "%s: schema ok\n" stream_json_path
        with Malformed msg -> fail msg)
  end

let () =
  let has flag = Array.exists (( = ) flag) Sys.argv in
  let value_after flag =
    let r = ref None in
    Array.iteri
      (fun i a -> if a = flag && i + 1 < Array.length Sys.argv then r := Some Sys.argv.(i + 1))
      Sys.argv;
    !r
  in
  if has "--check" then begin
    check_engine_json ();
    check_stream_json ()
  end
  else if has "--stream" then bench_stream ~quick:(has "--quick") ()
  else begin
    Dut_obs.Span.set_sink (value_after "--trace");
    let engine_only = has "--engine" in
    if not engine_only then begin
      regenerate_tables ();
      run_kernels ()
    end;
    bench_engine ~quick:(has "--quick") ();
    bench_stream ~quick:(has "--quick") ();
    if has "--metrics" then Dut_obs.Metrics.dump stderr;
    Dut_obs.Span.set_sink None
  end
