(* Benchmark harness.

   Two halves:

   1. Regenerate every experiment table of EXPERIMENTS.md (fast profile)
      -- the reproduction itself. One table group per theorem/lemma.
   2. Bechamel micro-benchmarks of each experiment's computational
      kernel (one Test.make per experiment), so performance regressions
      in the simulators are visible. *)

open Bechamel
open Bechamel.Toolkit

(* -- Part 1: regenerate the experiment tables -------------------------- *)

let regenerate_tables () =
  let cfg = Dut_experiments.Config.make Dut_experiments.Config.Fast in
  let total = Dut_experiments.Runner.run_all_to_channel cfg stdout in
  Printf.printf "# all tables regenerated in %.1fs\n\n%!" total

(* -- Part 2: kernel micro-benchmarks ----------------------------------- *)

let kernel_tests () =
  let rng = Dut_prng.Rng.create 2019 in
  let ell = 7 in
  let n = 1 lsl (ell + 1) in
  let eps = 0.3 in
  let hard = Dut_dist.Paninski.random ~ell ~eps rng in
  let majority =
    Dut_core.Threshold_tester.tester_majority ~n ~eps ~k:32 ~q:64
      ~calibration_trials:50 ~rng:(Dut_prng.Rng.split rng)
  in
  let and_tester = Dut_core.And_tester.tester ~n ~eps ~k:32 ~q:256 in
  let fixed_t =
    Dut_core.Threshold_tester.tester_fixed ~n ~eps ~k:32 ~q:128 ~t:4
  in
  let rbit =
    Dut_core.Rbit_tester.tester ~n ~eps ~k:32 ~q:64 ~bits:3
      ~calibration_trials:50 ~rng:(Dut_prng.Rng.split rng)
  in
  let single = Dut_core.Single_sample.tester ~n ~eps ~k:2048 ~bits:3 in
  let async =
    Dut_core.Async_tester.tester ~n ~eps ~rates:(Array.make 16 1.) ~tau:64.
      ~calibration_trials:50 ~rng:(Dut_prng.Rng.split rng)
  in
  let learning = Dut_core.Learning.make ~n:32 ~k:(32 * 50) ~q:4 in
  let learning_truth = Dut_dist.Pmf.uniform 32 in
  let g_exact = Dut_core.Exact.collision_acceptor ~ell:2 ~q:3 ~cutoff:1 in
  let small_hard = Dut_dist.Paninski.random ~ell:2 ~eps rng in
  let fwht_table = Array.init 4096 (fun i -> float_of_int (i land 7)) in
  let round tester () =
    tester.Dut_core.Evaluate.accepts (Dut_prng.Rng.split rng)
      (Dut_protocol.Network.of_paninski hard)
  in
  let samples_1k = Dut_dist.Paninski.draw_many hard rng 1000 in
  [
    Test.make ~name:"T1/T2.majority-round" (Staged.stage (round majority));
    Test.make ~name:"T2.and-round" (Staged.stage (round and_tester));
    Test.make ~name:"T3.fixed-threshold-round" (Staged.stage (round fixed_t));
    Test.make ~name:"T4.learning-round"
      (Staged.stage (fun () ->
           Dut_core.Learning.l1_error learning (Dut_prng.Rng.split rng)
             ~truth:learning_truth));
    Test.make ~name:"T5.collision-statistic-1k"
      (Staged.stage (fun () -> Dut_core.Local_stat.collisions samples_1k));
    Test.make ~name:"T6.rbit-round" (Staged.stage (round rbit));
    Test.make ~name:"T7.async-round" (Staged.stage (round async));
    Test.make ~name:"T10.single-sample-round" (Staged.stage (round single));
    Test.make ~name:"F1/T8/T11.exact-nu"
      (Staged.stage (fun () -> Dut_core.Exact.nu g_exact small_hard));
    Test.make ~name:"F1.lemma41-fourier-diff"
      (Staged.stage (fun () -> Dut_core.Exact.diff_fourier g_exact small_hard));
    Test.make ~name:"F2.moment-a_r-exact"
      (Staged.stage (fun () ->
           Dut_boolcube.Even_cover.moment_a_r_exact ~m:4 ~q:4 ~r:1 ~power:2));
    Test.make ~name:"F3.fwht-4096"
      (Staged.stage (fun () ->
           Dut_boolcube.Fourier.wht_in_place (Array.copy fwht_table)));
    Test.make ~name:"F4.paninski-draw-1k"
      (Staged.stage (fun () -> Dut_dist.Paninski.draw_many hard rng 1000));
    (let target = Dut_dist.Families.zipf ~n ~s:1. in
     let reduction = Dut_testers.Identity.make ~target ~eps in
     Test.make ~name:"T12.identity-flatten-1k"
       (Staged.stage (fun () ->
            for _ = 1 to 1000 do
              ignore
                (Dut_testers.Identity.map_sample reduction rng
                   (Dut_prng.Rng.int rng n))
            done)));
    (let graph = Dut_netsim.Graph.grid 6 6 in
     let local =
       Dut_netsim.Local_tester.make ~graph ~n ~eps ~q:64 ~calibration_trials:50
         ~rng:(Dut_prng.Rng.split rng)
     in
     Test.make ~name:"T13.local-model-round"
       (Staged.stage (fun () ->
            Dut_netsim.Local_tester.run local (Dut_prng.Rng.split rng)
              (Dut_protocol.Network.of_paninski hard))));
    Test.make ~name:"A1.calibration-200"
      (Staged.stage (fun () ->
           Dut_core.Threshold_tester.tester_majority ~n ~eps ~k:32 ~q:64
             ~calibration_trials:200 ~rng:(Dut_prng.Rng.split rng)));
  ]

let run_kernels () =
  let tests = kernel_tests () in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.25) () in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  print_endline "== kernel micro-benchmarks (Bechamel, ns/run) ==";
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg Instance.[ monotonic_clock ] elt in
          let tbl = Hashtbl.create 1 in
          Hashtbl.replace tbl (Test.Elt.name elt) raw;
          let results = Analyze.all ols Instance.monotonic_clock tbl in
          Hashtbl.iter
            (fun name ols_result ->
              let ns =
                match Analyze.OLS.estimates ols_result with
                | Some (estimate :: _) -> estimate
                | Some [] | None -> Float.nan
              in
              Printf.printf "%-28s %14.1f ns/run\n%!" name ns)
            results)
        (Test.elements test))
    tests

let () =
  regenerate_tables ();
  run_kernels ()
