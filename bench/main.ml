(* Benchmark harness.

   Three parts:

   1. Regenerate every experiment table of EXPERIMENTS.md (fast profile)
      -- the reproduction itself. One table group per theorem/lemma.
   2. Bechamel micro-benchmarks of each experiment's computational
      kernel (one Test.make per experiment), so performance regressions
      in the simulators are visible.
   3. Engine bench: sequential vs parallel wall-clock for the heaviest
      experiment kernels, recorded to results/bench_engine.json so the
      perf trajectory is machine-readable across PRs. Run only this
      part with `dune exec bench/main.exe -- --engine`. *)

open Bechamel
open Bechamel.Toolkit

(* -- Part 1: regenerate the experiment tables -------------------------- *)

let regenerate_tables () =
  let cfg = Dut_experiments.Config.make Dut_experiments.Config.Fast in
  let total = Dut_experiments.Runner.run_all_to_channel cfg stdout in
  Printf.printf "# all tables regenerated in %.1fs\n\n%!" total

(* -- Part 2: kernel micro-benchmarks ----------------------------------- *)

let kernel_tests () =
  let rng = Dut_prng.Rng.create 2019 in
  let ell = 7 in
  let n = 1 lsl (ell + 1) in
  let eps = 0.3 in
  let hard = Dut_dist.Paninski.random ~ell ~eps rng in
  let majority =
    Dut_core.Threshold_tester.tester_majority ~n ~eps ~k:32 ~q:64
      ~calibration_trials:50 ~rng:(Dut_prng.Rng.split rng)
  in
  let and_tester = Dut_core.And_tester.tester ~n ~eps ~k:32 ~q:256 in
  let fixed_t =
    Dut_core.Threshold_tester.tester_fixed ~n ~eps ~k:32 ~q:128 ~t:4
  in
  let rbit =
    Dut_core.Rbit_tester.tester ~n ~eps ~k:32 ~q:64 ~bits:3
      ~calibration_trials:50 ~rng:(Dut_prng.Rng.split rng)
  in
  let single = Dut_core.Single_sample.tester ~n ~eps ~k:2048 ~bits:3 in
  let async =
    Dut_core.Async_tester.tester ~n ~eps ~rates:(Array.make 16 1.) ~tau:64.
      ~calibration_trials:50 ~rng:(Dut_prng.Rng.split rng)
  in
  let learning = Dut_core.Learning.make ~n:32 ~k:(32 * 50) ~q:4 in
  let learning_truth = Dut_dist.Pmf.uniform 32 in
  let g_exact = Dut_core.Exact.collision_acceptor ~ell:2 ~q:3 ~cutoff:1 in
  let small_hard = Dut_dist.Paninski.random ~ell:2 ~eps rng in
  let fwht_table = Array.init 4096 (fun i -> float_of_int (i land 7)) in
  let round tester () =
    tester.Dut_core.Evaluate.accepts (Dut_prng.Rng.split rng)
      (Dut_protocol.Network.of_paninski hard)
  in
  let samples_1k = Dut_dist.Paninski.draw_many hard rng 1000 in
  [
    Test.make ~name:"T1/T2.majority-round" (Staged.stage (round majority));
    Test.make ~name:"T2.and-round" (Staged.stage (round and_tester));
    Test.make ~name:"T3.fixed-threshold-round" (Staged.stage (round fixed_t));
    Test.make ~name:"T4.learning-round"
      (Staged.stage (fun () ->
           Dut_core.Learning.l1_error learning (Dut_prng.Rng.split rng)
             ~truth:learning_truth));
    Test.make ~name:"T5.collision-statistic-1k"
      (Staged.stage (fun () -> Dut_core.Local_stat.collisions samples_1k));
    Test.make ~name:"T6.rbit-round" (Staged.stage (round rbit));
    Test.make ~name:"T7.async-round" (Staged.stage (round async));
    Test.make ~name:"T10.single-sample-round" (Staged.stage (round single));
    Test.make ~name:"F1/T8/T11.exact-nu"
      (Staged.stage (fun () -> Dut_core.Exact.nu g_exact small_hard));
    Test.make ~name:"F1.lemma41-fourier-diff"
      (Staged.stage (fun () -> Dut_core.Exact.diff_fourier g_exact small_hard));
    Test.make ~name:"F2.moment-a_r-exact"
      (Staged.stage (fun () ->
           Dut_boolcube.Even_cover.moment_a_r_exact ~m:4 ~q:4 ~r:1 ~power:2));
    Test.make ~name:"F3.fwht-4096"
      (Staged.stage (fun () ->
           Dut_boolcube.Fourier.wht_in_place (Array.copy fwht_table)));
    Test.make ~name:"F4.paninski-draw-1k"
      (Staged.stage (fun () -> Dut_dist.Paninski.draw_many hard rng 1000));
    (let target = Dut_dist.Families.zipf ~n ~s:1. in
     let reduction = Dut_testers.Identity.make ~target ~eps in
     Test.make ~name:"T12.identity-flatten-1k"
       (Staged.stage (fun () ->
            for _ = 1 to 1000 do
              ignore
                (Dut_testers.Identity.map_sample reduction rng
                   (Dut_prng.Rng.int rng n))
            done)));
    (let graph = Dut_netsim.Graph.grid 6 6 in
     let local =
       Dut_netsim.Local_tester.make ~graph ~n ~eps ~q:64 ~calibration_trials:50
         ~rng:(Dut_prng.Rng.split rng)
     in
     Test.make ~name:"T13.local-model-round"
       (Staged.stage (fun () ->
            Dut_netsim.Local_tester.run local (Dut_prng.Rng.split rng)
              (Dut_protocol.Network.of_paninski hard))));
    Test.make ~name:"A1.calibration-200"
      (Staged.stage (fun () ->
           Dut_core.Threshold_tester.tester_majority ~n ~eps ~k:32 ~q:64
             ~calibration_trials:200 ~rng:(Dut_prng.Rng.split rng)));
  ]

let run_kernels () =
  let tests = kernel_tests () in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.25) () in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  print_endline "== kernel micro-benchmarks (Bechamel, ns/run) ==";
  List.iter
    (fun test ->
      (* One measurement table and one OLS analysis per element list,
         not a fresh singleton table per element. *)
      let elts = Test.elements test in
      let tbl = Hashtbl.create (List.length elts) in
      List.iter
        (fun elt ->
          Hashtbl.replace tbl (Test.Elt.name elt)
            (Benchmark.run cfg Instance.[ monotonic_clock ] elt))
        elts;
      let results = Analyze.all ols Instance.monotonic_clock tbl in
      List.iter
        (fun elt ->
          let name = Test.Elt.name elt in
          let estimate =
            match Hashtbl.find_opt results name with
            | None -> None
            | Some ols_result -> (
                match Analyze.OLS.estimates ols_result with
                | Some (e :: _) when not (Float.is_nan e) -> Some e
                | Some _ | None -> None)
          in
          match estimate with
          | Some ns -> Printf.printf "%-28s %14.1f ns/run\n%!" name ns
          | None -> Printf.printf "%-28s %14s\n%!" name "n/a")
        elts)
    tests

(* -- Part 3: engine sequential-vs-parallel wall-clock ------------------- *)

(* The three heaviest fast-profile experiment kernels (by measured
   elapsed time of a full `run-all`). *)
let engine_bench_ids = [ "A1-ablation"; "T13-local-model"; "T20-open-problem" ]

let engine_bench_jobs = 4

let time_run jobs exp =
  let cfg =
    Dut_experiments.Config.make ~jobs Dut_experiments.Config.Fast
  in
  Dut_engine.Parallel.set_default_jobs jobs;
  let t0 = Unix.gettimeofday () in
  ignore (exp.Dut_experiments.Exp.run cfg);
  Unix.gettimeofday () -. t0

let write_engine_json rows =
  if not (Sys.file_exists "results") then Sys.mkdir "results" 0o755;
  let oc = open_out (Filename.concat "results" "bench_engine.json") in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"engine-seq-vs-parallel\",\n\
    \  \"profile\": \"fast\",\n\
    \  \"seed\": 2019,\n\
    \  \"jobs\": %d,\n\
    \  \"cores_available\": %d,\n\
    \  \"experiments\": [\n"
    engine_bench_jobs
    (Domain.recommended_domain_count ());
  List.iteri
    (fun i (id, seq, par) ->
      Printf.fprintf oc
        "    { \"id\": %S, \"seq_seconds\": %.3f, \"par_seconds\": %.3f, \
         \"speedup\": %.3f }%s\n"
        id seq par (seq /. par)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "  ]\n}\n";
  close_out oc

let bench_engine () =
  Printf.printf
    "== engine: sequential vs parallel wall-clock (fast profile, %d cores \
     available) ==\n\
     %!"
    (Domain.recommended_domain_count ());
  let rows =
    List.map
      (fun id ->
        match Dut_experiments.Registry.find id with
        | None -> failwith ("bench_engine: unknown experiment " ^ id)
        | Some exp ->
            let seq = time_run 1 exp in
            let par = time_run engine_bench_jobs exp in
            Printf.printf
              "%-18s seq %7.2fs   jobs=%d %7.2fs   speedup %5.2fx\n%!" id seq
              engine_bench_jobs par (seq /. par);
            (id, seq, par))
      engine_bench_ids
  in
  Dut_engine.Parallel.set_default_jobs (Dut_engine.Parallel.env_jobs ());
  write_engine_json rows;
  print_endline "wrote results/bench_engine.json"

let () =
  let engine_only = Array.exists (( = ) "--engine") Sys.argv in
  if not engine_only then begin
    regenerate_tables ();
    run_kernels ()
  end;
  bench_engine ()
