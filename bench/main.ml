(* Benchmark harness.

   Three parts:

   1. Regenerate every experiment table of EXPERIMENTS.md (fast profile)
      -- the reproduction itself. One table group per theorem/lemma.
   2. Bechamel micro-benchmarks of each experiment's computational
      kernel (one Test.make per experiment), so performance regressions
      in the simulators are visible.
   3. Engine bench: sequential vs parallel wall-clock for the heaviest
      experiment kernels, recorded to results/bench_engine.json so the
      perf trajectory is machine-readable across PRs. Run only this
      part with `dune exec bench/main.exe -- --engine`. *)

open Bechamel
open Bechamel.Toolkit

(* -- Part 1: regenerate the experiment tables -------------------------- *)

let regenerate_tables () =
  let cfg = Dut_experiments.Config.make Dut_experiments.Config.Fast in
  let report = Dut_experiments.Runner.run_all_to_channel cfg stdout in
  Printf.printf "# all tables regenerated in %.1fs wall (%.1fs summed-cpu)\n\n%!"
    report.Dut_experiments.Runner.wall_seconds report.cpu_seconds

(* -- Part 2: kernel micro-benchmarks ----------------------------------- *)

let kernel_tests () =
  let rng = Dut_prng.Rng.create 2019 in
  let ell = 7 in
  let n = 1 lsl (ell + 1) in
  let eps = 0.3 in
  let hard = Dut_dist.Paninski.random ~ell ~eps rng in
  let majority =
    Dut_core.Threshold_tester.tester_majority ~n ~eps ~k:32 ~q:64
      ~calibration_trials:50 ~rng:(Dut_prng.Rng.split rng)
  in
  let and_tester = Dut_core.And_tester.tester ~n ~eps ~k:32 ~q:256 in
  let fixed_t =
    Dut_core.Threshold_tester.tester_fixed ~n ~eps ~k:32 ~q:128 ~t:4
  in
  let rbit =
    Dut_core.Rbit_tester.tester ~n ~eps ~k:32 ~q:64 ~bits:3
      ~calibration_trials:50 ~rng:(Dut_prng.Rng.split rng)
  in
  let single = Dut_core.Single_sample.tester ~n ~eps ~k:2048 ~bits:3 in
  let async =
    Dut_core.Async_tester.tester ~n ~eps ~rates:(Array.make 16 1.) ~tau:64.
      ~calibration_trials:50 ~rng:(Dut_prng.Rng.split rng)
  in
  let learning = Dut_core.Learning.make ~n:32 ~k:(32 * 50) ~q:4 in
  let learning_truth = Dut_dist.Pmf.uniform 32 in
  let g_exact = Dut_core.Exact.collision_acceptor ~ell:2 ~q:3 ~cutoff:1 in
  let small_hard = Dut_dist.Paninski.random ~ell:2 ~eps rng in
  let fwht_table = Array.init 4096 (fun i -> float_of_int (i land 7)) in
  let round tester () =
    tester.Dut_core.Evaluate.accepts (Dut_prng.Rng.split rng)
      (Dut_protocol.Network.of_paninski hard)
  in
  let samples_1k = Dut_dist.Paninski.draw_many hard rng 1000 in
  [
    Test.make ~name:"T1/T2.majority-round" (Staged.stage (round majority));
    Test.make ~name:"T2.and-round" (Staged.stage (round and_tester));
    Test.make ~name:"T3.fixed-threshold-round" (Staged.stage (round fixed_t));
    Test.make ~name:"T4.learning-round"
      (Staged.stage (fun () ->
           Dut_core.Learning.l1_error learning (Dut_prng.Rng.split rng)
             ~truth:learning_truth));
    Test.make ~name:"T5.collision-statistic-1k"
      (Staged.stage (fun () -> Dut_core.Local_stat.collisions samples_1k));
    Test.make ~name:"T6.rbit-round" (Staged.stage (round rbit));
    Test.make ~name:"T7.async-round" (Staged.stage (round async));
    Test.make ~name:"T10.single-sample-round" (Staged.stage (round single));
    Test.make ~name:"F1/T8/T11.exact-nu"
      (Staged.stage (fun () -> Dut_core.Exact.nu g_exact small_hard));
    Test.make ~name:"F1.lemma41-fourier-diff"
      (Staged.stage (fun () -> Dut_core.Exact.diff_fourier g_exact small_hard));
    Test.make ~name:"F2.moment-a_r-exact"
      (Staged.stage (fun () ->
           Dut_boolcube.Even_cover.moment_a_r_exact ~m:4 ~q:4 ~r:1 ~power:2));
    Test.make ~name:"F3.fwht-4096"
      (Staged.stage (fun () ->
           Dut_boolcube.Fourier.wht_in_place (Array.copy fwht_table)));
    Test.make ~name:"F4.paninski-draw-1k"
      (Staged.stage (fun () -> Dut_dist.Paninski.draw_many hard rng 1000));
    (let target = Dut_dist.Families.zipf ~n ~s:1. in
     let reduction = Dut_testers.Identity.make ~target ~eps in
     Test.make ~name:"T12.identity-flatten-1k"
       (Staged.stage (fun () ->
            for _ = 1 to 1000 do
              ignore
                (Dut_testers.Identity.map_sample reduction rng
                   (Dut_prng.Rng.int rng n))
            done)));
    (let graph = Dut_netsim.Graph.grid 6 6 in
     let local =
       Dut_netsim.Local_tester.make ~graph ~n ~eps ~q:64 ~calibration_trials:50
         ~rng:(Dut_prng.Rng.split rng)
     in
     Test.make ~name:"T13.local-model-round"
       (Staged.stage (fun () ->
            Dut_netsim.Local_tester.run local (Dut_prng.Rng.split rng)
              (Dut_protocol.Network.of_paninski hard))));
    Test.make ~name:"A1.calibration-200"
      (Staged.stage (fun () ->
           Dut_core.Threshold_tester.tester_majority ~n ~eps ~k:32 ~q:64
             ~calibration_trials:200 ~rng:(Dut_prng.Rng.split rng)));
  ]

let run_kernels () =
  let tests = kernel_tests () in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.25) () in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  print_endline "== kernel micro-benchmarks (Bechamel, ns/run) ==";
  List.iter
    (fun test ->
      (* One measurement table and one OLS analysis per element list,
         not a fresh singleton table per element. *)
      let elts = Test.elements test in
      let tbl = Hashtbl.create (List.length elts) in
      List.iter
        (fun elt ->
          Hashtbl.replace tbl (Test.Elt.name elt)
            (Benchmark.run cfg Instance.[ monotonic_clock ] elt))
        elts;
      let results = Analyze.all ols Instance.monotonic_clock tbl in
      List.iter
        (fun elt ->
          let name = Test.Elt.name elt in
          let estimate =
            match Hashtbl.find_opt results name with
            | None -> None
            | Some ols_result -> (
                match Analyze.OLS.estimates ols_result with
                | Some (e :: _) when not (Float.is_nan e) -> Some e
                | Some _ | None -> None)
          in
          match estimate with
          | Some ns -> Printf.printf "%-28s %14.1f ns/run\n%!" name ns
          | None -> Printf.printf "%-28s %14s\n%!" name "n/a")
        elts)
    tests

(* -- Part 3: engine hot-path before/after wall-clock -------------------- *)

(* The three heaviest fast-profile experiment kernels (by measured
   elapsed time of a full `run-all`). *)
let engine_bench_ids = [ "A1-ablation"; "T13-local-model"; "T20-open-problem" ]

(* The engine/stat counters each leg records, on the shared Dut_obs
   vocabulary — the same names the run manifest and `--metrics` print,
   so results/bench_engine.json and a trace describe one world. *)
let tracked_counters =
  [
    "mc.trials_used";
    "mc.adaptive_early_stops";
    "search.probes";
    "search.exact_hits";
    "scratch.borrows";
    "scratch.reuse_hits";
  ]

type meas = {
  seconds : float;
  trials : int;
  minor_words : float;
  counters : (string * int) list;  (* tracked_counters deltas, same order *)
}

(* Wall-clock, Monte-Carlo trials executed, and minor-heap words
   allocated on the submitting domain (jobs is clamped to the host's
   core count, so on a single-core runner this is all allocation).
   Counters are measured as before/after deltas of the process-wide
   Dut_obs totals — the runs are quiescent at both read points. *)
let instrumented run =
  let base =
    List.map (fun n -> (n, Dut_obs.Metrics.value n)) tracked_counters
  in
  let mw0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  ignore (run ());
  let seconds = Unix.gettimeofday () -. t0 in
  let counters =
    List.map (fun (n, v0) -> (n, Dut_obs.Metrics.value n - v0)) base
  in
  {
    seconds;
    trials = List.assoc "mc.trials_used" counters;
    minor_words = Gc.minor_words () -. mw0;
    counters;
  }

(* "before" reproduces the hot path of the previous revision: fixed
   trial budgets, cold searches, and — via [Scratch.set_reuse false] —
   the legacy allocating kernels (per-player sample tuples, sort-based
   collision counts, fresh hard instances, the tuple-message
   single-sample referee). "after" is the current default. *)
let bench_config ~quick ~hotpath =
  (* 60, not lower: very noisy probes make the cold critical searches in
     the "before" leg wander far past the true threshold, which costs
     more wall-clock than the smaller per-probe budget saves. *)
  let trials = if quick then Some 60 else None in
  Dut_experiments.Config.make ?trials ~adaptive:hotpath ~warm_start:hotpath
    Dut_experiments.Config.Fast

let with_kernels ~hotpath f =
  Dut_engine.Scratch.set_reuse hotpath;
  Fun.protect ~finally:(fun () -> Dut_engine.Scratch.set_reuse true) f

let run_experiment ~hotpath cfg exp =
  Dut_engine.Parallel.set_default_jobs cfg.Dut_experiments.Config.jobs;
  with_kernels ~hotpath (fun () ->
      instrumented (fun () -> exp.Dut_experiments.Exp.run cfg))

let run_all ~hotpath cfg =
  Dut_engine.Parallel.set_default_jobs cfg.Dut_experiments.Config.jobs;
  let devnull = open_out Filename.null in
  Fun.protect
    ~finally:(fun () -> close_out devnull)
    (fun () ->
      with_kernels ~hotpath (fun () ->
          instrumented (fun () ->
              Dut_experiments.Runner.run_all_to_channel ~timings:false cfg
                devnull)))

let engine_json_path = Filename.concat "results" "bench_engine.json"

(* Minor-heap words allocated per Monte-Carlo trial — the figure the
   allocation gate (`--gate`) budgets. Zero trials (a bench leg that
   only replays memoized results) reads as zero words per trial. *)
let words_per_trial m =
  if m.trials <= 0 then 0. else m.minor_words /. float_of_int m.trials

let write_engine_json ~quick ~jobs ~all_before ~all_after rows =
  if not (Sys.file_exists "results") then Sys.mkdir "results" 0o755;
  let oc = open_out engine_json_path in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"engine-hotpath\",\n\
    \  \"profile\": \"fast\",\n\
    \  \"seed\": 2019,\n\
    \  \"quick\": %b,\n\
    \  \"jobs\": %d,\n\
    \  \"cores_available\": %d,\n\
    \  \"run_all\": { \"before_seconds\": %.3f, \"after_seconds\": %.3f, \
     \"speedup\": %.3f },\n\
    \  \"experiments\": [\n"
    quick jobs
    (Domain.recommended_domain_count ())
    all_before.seconds all_after.seconds
    (all_before.seconds /. all_after.seconds);
  let counters_obj meas =
    Dut_obs.Json.to_string
      (Dut_obs.Json.Obj
         (List.map (fun (n, v) -> (n, Dut_obs.Json.int v)) meas.counters))
  in
  List.iteri
    (fun i (id, before, after) ->
      Printf.fprintf oc
        "    { \"id\": %S, \"before_seconds\": %.3f, \"after_seconds\": %.3f, \
         \"speedup\": %.3f,\n\
        \      \"trials_before\": %d, \"trials_after\": %d, \
         \"minor_words_before\": %.0f, \"minor_words_after\": %.0f,\n\
        \      \"words_per_trial_before\": %.1f, \"words_per_trial_after\": \
         %.1f,\n\
        \      \"counters_before\": %s,\n\
        \      \"counters_after\": %s }%s\n"
        id before.seconds after.seconds
        (before.seconds /. after.seconds)
        before.trials after.trials before.minor_words after.minor_words
        (words_per_trial before) (words_per_trial after) (counters_obj before)
        (counters_obj after)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "  ]\n}\n";
  close_out oc

let bench_engine ~quick () =
  let cfg_before = bench_config ~quick ~hotpath:false in
  let cfg_after = bench_config ~quick ~hotpath:true in
  Printf.printf
    "== engine: fixed-budget/cold-search vs adaptive/warm-start wall-clock \
     (fast profile%s, jobs=%d, %d cores) ==\n\
     %!"
    (if quick then ", quick" else "")
    cfg_after.jobs
    (Domain.recommended_domain_count ());
  let rows =
    List.map
      (fun id ->
        match Dut_experiments.Registry.find id with
        | None -> failwith ("bench_engine: unknown experiment " ^ id)
        | Some exp ->
            let before = run_experiment ~hotpath:false cfg_before exp in
            let after = run_experiment ~hotpath:true cfg_after exp in
            Printf.printf
              "%-18s before %7.2fs (%7d trials, %9.0f w/trial)   after %7.2fs \
               (%7d trials, %9.0f w/trial)   speedup %5.2fx\n\
               %!"
              id before.seconds before.trials (words_per_trial before)
              after.seconds after.trials (words_per_trial after)
              (before.seconds /. after.seconds);
            (id, before, after))
      engine_bench_ids
  in
  let all_before = run_all ~hotpath:false cfg_before in
  let all_after = run_all ~hotpath:true cfg_after in
  Printf.printf "%-18s before %7.2fs   after %7.2fs   speedup %5.2fx\n%!"
    "run-all" all_before.seconds all_after.seconds
    (all_before.seconds /. all_after.seconds);
  Dut_engine.Parallel.set_default_jobs (Dut_engine.Parallel.env_jobs ());
  write_engine_json ~quick ~jobs:cfg_after.jobs ~all_before ~all_after rows;
  print_endline ("wrote " ^ engine_json_path)

(* -- Stream ingest bench (`--stream`) ----------------------------------- *)

module Sketch = Dut_stream.Sketch
module Ingest = Dut_stream.Ingest

let stream_json_path = Filename.concat "results" "bench_stream.json"

(* The budget ladder the throughput is measured on: the exact
   histogram, two hashed histograms, and two AMS widths — enough to see
   how the per-sample cost moves with sketch size (AMS pays one hash
   per counter per sample, so its cost is linear in the budget). *)
let stream_bench_rows n =
  [
    (Sketch.Hist, Sketch.exact_budget ~n);
    (Sketch.Hist, 72);
    (Sketch.Hist, 24);
    (Sketch.Ams, 40);
    (Sketch.Ams, 16);
  ]

type stream_meas = {
  s_kind : Sketch.kind;
  s_budget : int;
  s_words : int;
  s_samples : int;
  s_seconds : float;
  s_chunks : int;
}

let bench_stream ~quick () =
  let n = 256 in
  let seed = 2019 in
  let chunk = 4096 in
  let jobs = Dut_engine.Pool.effective_jobs (Dut_engine.Parallel.env_jobs ()) in
  let total = if quick then 1 lsl 18 else 1 lsl 22 in
  let rng = Dut_prng.Rng.create seed in
  let block = Array.init (1 lsl 14) (fun _ -> Dut_prng.Rng.int rng n) in
  Printf.printf
    "== stream: ingest throughput per sketch budget (n=%d, chunk=%d, %d \
     samples%s, jobs=%d) ==\n\
     %!"
    n chunk total
    (if quick then ", quick" else "")
    jobs;
  let rows =
    List.map
      (fun (kind, budget) ->
        let cfg = Sketch.config ~kind ~n ~budget_words:budget ~seed in
        let cum = ref (Sketch.create cfg) in
        let ing =
          Ingest.create ~jobs ~chunk
            ~on_chunk:(fun sk -> cum := Sketch.merge !cum sk)
            cfg
        in
        let t0 = Unix.gettimeofday () in
        let fed = ref 0 in
        while !fed < total do
          Ingest.feed_array ing block;
          fed := !fed + Array.length block
        done;
        Ingest.flush ing;
        let seconds = Unix.gettimeofday () -. t0 in
        let m =
          {
            s_kind = kind;
            s_budget = budget;
            s_words = Sketch.words_used !cum;
            s_samples = Ingest.samples_fed ing;
            s_seconds = seconds;
            s_chunks = Ingest.chunks_emitted ing;
          }
        in
        Printf.printf
          "%-4s budget %4d   %9.2e samples/s   %.6f words/sample   (%d words \
           used, %.2fs)\n\
           %!"
          (Sketch.kind_to_string kind)
          budget
          (float_of_int m.s_samples /. seconds)
          (float_of_int m.s_words /. float_of_int m.s_samples)
          m.s_words seconds;
        m)
      (stream_bench_rows n)
  in
  if not (Sys.file_exists "results") then Sys.mkdir "results" 0o755;
  let oc = open_out stream_json_path in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"stream-ingest\",\n\
    \  \"seed\": %d,\n\
    \  \"quick\": %b,\n\
    \  \"jobs\": %d,\n\
    \  \"n\": %d,\n\
    \  \"chunk\": %d,\n\
    \  \"rows\": [\n"
    seed quick jobs n chunk;
  List.iteri
    (fun i m ->
      Printf.fprintf oc
        "    { \"sketch\": %S, \"budget_words\": %d, \"words_used\": %d, \
         \"samples\": %d, \"chunks\": %d, \"seconds\": %.4f, \
         \"samples_per_sec\": %.1f, \"words_per_sample\": %.8f }%s\n"
        (Sketch.kind_to_string m.s_kind)
        m.s_budget m.s_words m.s_samples m.s_chunks m.s_seconds
        (float_of_int m.s_samples /. m.s_seconds)
        (float_of_int m.s_words /. float_of_int m.s_samples)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "  ]\n}\n";
  close_out oc;
  print_endline ("wrote " ^ stream_json_path)

(* -- Part 4: per-kernel before/after (`results/bench_kernels.json`) ----- *)

(* Isolated rows for the three kernels the engine overhaul rewrote —
   the WHT, the alias block draw, and the counting referee — each
   timed against the code shape it replaced, with the replaced shape
   reconstructed here (or reached through [Scratch.set_reuse false])
   so the comparison survives in one binary. Every row asserts the two
   legs produce identical values before it is trusted with a clock. *)

let kernels_json_path = Filename.concat "results" "bench_kernels.json"

(* The pre-overhaul transform: plain h-doubling butterflies, bounds
   checks on every access, no cache blocking. *)
let wht_reference a =
  let n = Array.length a in
  let h = ref 1 in
  while !h < n do
    let h2 = !h * 2 in
    let i = ref 0 in
    while !i < n do
      for j = !i to !i + !h - 1 do
        let x = a.(j) and y = a.(j + !h) in
        a.(j) <- x +. y;
        a.(j + !h) <- x -. y
      done;
      i := !i + h2
    done;
    h := h2
  done

type kernel_meas = {
  k_name : string;
  k_reps : int;
  k_before : float;  (* seconds for all reps *)
  k_after : float;
  k_words_before : float;  (* minor words per rep *)
  k_words_after : float;
}

let timed_alloc reps f =
  let mw0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to reps do
    f ()
  done;
  let seconds = Unix.gettimeofday () -. t0 in
  (seconds, (Gc.minor_words () -. mw0) /. float_of_int reps)

let kernel_row name reps ~before ~after =
  let k_before, k_words_before = timed_alloc reps before in
  let k_after, k_words_after = timed_alloc reps after in
  { k_name = name; k_reps = reps; k_before; k_after; k_words_before;
    k_words_after }

let bench_kernel_rows ~quick () =
  let rng = Dut_prng.Rng.create 2019 in
  (* WHT on a slab 8x the cache block, so the blocked schedule shows. *)
  let wht_n = 1 lsl 15 in
  let wht_src = Array.init wht_n (fun i -> float_of_int ((i * 37) land 63)) in
  let wht_buf = Array.make wht_n 0. in
  let ref_buf = Array.copy wht_src in
  Array.blit wht_src 0 wht_buf 0 wht_n;
  wht_reference ref_buf;
  Dut_boolcube.Fourier.wht_in_place wht_buf;
  if ref_buf <> wht_buf then
    failwith "bench kernels: blocked WHT differs from the reference";
  (* Alias draws: the scalar-draw Array.init loop the old [draw_many]
     ran, vs the batched [draw_block] into one reused buffer. Both legs
     must emit the same stream from the same seed. *)
  let weights = Array.init 256 (fun i -> float_of_int (1 + (i land 15))) in
  let total = Array.fold_left ( +. ) 0. weights in
  let pmf = Dut_dist.Pmf.create (Array.map (fun w -> w /. total) weights) in
  let sampler = Dut_dist.Sampler.of_pmf pmf in
  let draws = 4096 in
  let draw_buf = Array.make draws 0 in
  let r1 = Dut_prng.Rng.create 7 and r2 = Dut_prng.Rng.create 7 in
  let scalar_draws =
    Array.init draws (fun _ -> Dut_dist.Sampler.draw sampler r1)
  in
  Dut_dist.Sampler.draw_block sampler r2 draw_buf;
  if scalar_draws <> draw_buf then
    failwith "bench kernels: draw_block differs from scalar draws";
  (* Referee: the transcript-materialising legacy round (scratch off)
     vs the counting [round_accept] (scratch on), same player logic. *)
  let hard = Dut_dist.Paninski.random ~ell:7 ~eps:0.3 rng in
  let source = Dut_protocol.Network.of_paninski hard in
  let k = 64 and q = 64 in
  let player ~index:_ _coins samples =
    let ones = ref 0 in
    Array.iter (fun s -> ones := !ones + (s land 1)) samples;
    2 * !ones <= Array.length samples
  in
  let rule = Dut_protocol.Rule.Majority in
  let verdict ~hotpath seed =
    with_kernels ~hotpath (fun () ->
        let rng = Dut_prng.Rng.create seed in
        if hotpath then
          Dut_protocol.Network.round_accept ~rng ~source ~k ~q ~player ~rule
        else
          (Dut_protocol.Network.round ~rng ~source ~k ~q ~player ~rule).accept)
  in
  for seed = 100 to 120 do
    if verdict ~hotpath:false seed <> verdict ~hotpath:true seed then
      failwith "bench kernels: round_accept differs from round"
  done;
  let wht_reps = if quick then 20 else 100 in
  let draw_reps = if quick then 400 else 4000 in
  let round_reps = if quick then 50 else 500 in
  let round_rng = Dut_prng.Rng.create 11 in
  [
    kernel_row
      (Printf.sprintf "wht-%d" wht_n)
      wht_reps
      ~before:(fun () ->
        Array.blit wht_src 0 ref_buf 0 wht_n;
        wht_reference ref_buf)
      ~after:(fun () ->
        Array.blit wht_src 0 wht_buf 0 wht_n;
        Dut_boolcube.Fourier.wht_in_place wht_buf);
    kernel_row
      (Printf.sprintf "alias-draw-%d" draws)
      draw_reps
      ~before:(fun () ->
        ignore (Array.init draws (fun _ -> Dut_dist.Sampler.draw sampler rng)))
      ~after:(fun () -> Dut_dist.Sampler.draw_block sampler rng draw_buf);
    kernel_row
      (Printf.sprintf "referee-count-k%d-q%d" k q)
      round_reps
      ~before:(fun () ->
        with_kernels ~hotpath:false (fun () ->
            ignore
              (Dut_protocol.Network.round ~rng:(Dut_prng.Rng.split round_rng)
                 ~source ~k ~q ~player ~rule)))
      ~after:(fun () ->
        ignore
          (Dut_protocol.Network.round_accept ~rng:(Dut_prng.Rng.split round_rng)
             ~source ~k ~q ~player ~rule));
  ]

let bench_kernels_io ~quick () =
  Printf.printf "== kernels: rewritten hot loops vs the shapes they replaced \
                 ==\n%!";
  let rows = bench_kernel_rows ~quick () in
  List.iter
    (fun m ->
      Printf.printf
        "%-24s %4d reps   before %8.4fs (%9.0f w/call)   after %8.4fs \
         (%9.0f w/call)   speedup %5.2fx\n\
         %!"
        m.k_name m.k_reps m.k_before m.k_words_before m.k_after m.k_words_after
        (m.k_before /. m.k_after))
    rows;
  if not (Sys.file_exists "results") then Sys.mkdir "results" 0o755;
  let oc = open_out kernels_json_path in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"kernels\",\n\
    \  \"seed\": 2019,\n\
    \  \"quick\": %b,\n\
    \  \"rows\": [\n"
    quick;
  List.iteri
    (fun i m ->
      Printf.fprintf oc
        "    { \"kernel\": %S, \"reps\": %d, \"before_seconds\": %.4f, \
         \"after_seconds\": %.4f, \"speedup\": %.3f, \
         \"minor_words_per_call_before\": %.0f, \
         \"minor_words_per_call_after\": %.0f }%s\n"
        m.k_name m.k_reps m.k_before m.k_after
        (m.k_before /. m.k_after)
        m.k_words_before m.k_words_after
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "  ]\n}\n";
  close_out oc;
  print_endline ("wrote " ^ kernels_json_path)

(* -- Schema check for results/bench_engine.json (`--check`) ------------- *)

(* The JSON reader lives in Dut_obs.Json now (the same one obs-report
   uses on manifests and traces); this harness only keeps the schema
   assertions. *)
open Dut_obs.Json

let check_engine_json () =
  let fail msg =
    Printf.eprintf "%s: %s\n" engine_json_path msg;
    exit 1
  in
  if not (Sys.file_exists engine_json_path) then fail "missing";
  let ic = open_in_bin engine_json_path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match parse contents with
  | exception Malformed msg -> fail msg
  | root -> (
      try
        if want_str root "benchmark" <> "engine-hotpath" then
          raise (Malformed "benchmark: expected \"engine-hotpath\"");
        ignore (want_str root "profile");
        ignore (want_num root "seed");
        ignore (want_bool root "quick");
        if want_num root "jobs" < 1. then raise (Malformed "jobs < 1");
        if want_num root "cores_available" < 1. then
          raise (Malformed "cores_available < 1");
        let check_pair obj =
          List.iter
            (fun f ->
              if want_num obj f < 0. then
                raise (Malformed (f ^ ": negative time")))
            [ "before_seconds"; "after_seconds" ];
          ignore (want_num obj "speedup")
        in
        (* Every tracked Dut_obs counter must appear, non-negative, and
           the counters' trials entry must agree with the legacy
           trials_{before,after} fields (one vocabulary, no drift). *)
        let check_counters e which =
          let obj = field e ("counters_" ^ which) in
          List.iter
            (fun name ->
              if want_num obj name < 0. then
                raise (Malformed (name ^ ": negative counter")))
            tracked_counters;
          if want_num obj "mc.trials_used" <> want_num e ("trials_" ^ which)
          then
            raise
              (Malformed
                 (Printf.sprintf
                    "counters_%s[mc.trials_used] disagrees with trials_%s"
                    which which))
        in
        (* words_per_trial must be the quotient it claims to be, up to
           the %.1f rounding it was printed with. *)
        let check_words_per_trial e which =
          let wpt = want_num e ("words_per_trial_" ^ which) in
          if wpt < 0. then
            raise (Malformed ("words_per_trial_" ^ which ^ ": negative"));
          let trials = want_num e ("trials_" ^ which) in
          let expect =
            if trials <= 0. then 0.
            else want_num e ("minor_words_" ^ which) /. trials
          in
          if Float.abs (wpt -. expect) > 0.06 +. (1e-9 *. expect) then
            raise
              (Malformed
                 (Printf.sprintf
                    "words_per_trial_%s: %g but minor_words/trials is %g" which
                    wpt expect))
        in
        check_pair (field root "run_all");
        (match field root "experiments" with
        | Arr [] -> raise (Malformed "experiments: empty")
        | Arr exps ->
            List.iter
              (fun e ->
                ignore (want_str e "id");
                check_pair e;
                List.iter
                  (fun f ->
                    if want_num e f < 0. then
                      raise (Malformed (f ^ ": negative count")))
                  [
                    "trials_before"; "trials_after"; "minor_words_before";
                    "minor_words_after";
                  ];
                check_counters e "before";
                check_counters e "after";
                check_words_per_trial e "before";
                check_words_per_trial e "after")
              exps
        | _ -> raise (Malformed "experiments: expected array"));
        Printf.printf "%s: schema ok\n" engine_json_path
      with Malformed msg -> fail msg)

(* Validated only when present: the stream bench is optional (run with
   `--stream`), but a written file must conform — CI runs
   `--stream --quick` first, so there it is always checked. *)
let check_stream_json () =
  if Sys.file_exists stream_json_path then begin
    let fail msg =
      Printf.eprintf "%s: %s\n" stream_json_path msg;
      exit 1
    in
    let ic = open_in_bin stream_json_path in
    let contents = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match parse contents with
    | exception Malformed msg -> fail msg
    | root -> (
        try
          if want_str root "benchmark" <> "stream-ingest" then
            raise (Malformed "benchmark: expected \"stream-ingest\"");
          ignore (want_num root "seed");
          ignore (want_bool root "quick");
          if want_num root "jobs" < 1. then raise (Malformed "jobs < 1");
          if want_num root "n" < 1. then raise (Malformed "n < 1");
          if want_num root "chunk" < 1. then raise (Malformed "chunk < 1");
          (match field root "rows" with
          | Arr [] -> raise (Malformed "rows: empty")
          | Arr rows ->
              List.iter
                (fun r ->
                  (match want_str r "sketch" with
                  | "hist" | "ams" -> ()
                  | s -> raise (Malformed ("unknown sketch " ^ s)));
                  let budget = want_num r "budget_words" in
                  let words = want_num r "words_used" in
                  if budget < 1. then raise (Malformed "budget_words < 1");
                  if words < 1. then raise (Malformed "words_used < 1");
                  if words > budget then
                    raise
                      (Malformed
                         "words_used exceeds budget_words: the memory bound \
                          is broken");
                  if want_num r "samples" < 1. then
                    raise (Malformed "samples < 1");
                  if want_num r "chunks" < 1. then
                    raise (Malformed "chunks < 1");
                  List.iter
                    (fun f ->
                      if want_num r f < 0. then
                        raise (Malformed (f ^ ": negative")))
                    [ "seconds"; "samples_per_sec"; "words_per_sample" ])
                rows
          | _ -> raise (Malformed "rows: expected array"));
          Printf.printf "%s: schema ok\n" stream_json_path
        with Malformed msg -> fail msg)
  end

(* Like the stream bench: validated only when present (CI writes it via
   `--engine --quick` before checking). *)
let check_kernels_json () =
  if Sys.file_exists kernels_json_path then begin
    let fail msg =
      Printf.eprintf "%s: %s\n" kernels_json_path msg;
      exit 1
    in
    let ic = open_in_bin kernels_json_path in
    let contents = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match parse contents with
    | exception Malformed msg -> fail msg
    | root -> (
        try
          if want_str root "benchmark" <> "kernels" then
            raise (Malformed "benchmark: expected \"kernels\"");
          ignore (want_num root "seed");
          ignore (want_bool root "quick");
          (match field root "rows" with
          | Arr [] -> raise (Malformed "rows: empty")
          | Arr rows ->
              List.iter
                (fun r ->
                  ignore (want_str r "kernel");
                  if want_num r "reps" < 1. then raise (Malformed "reps < 1");
                  List.iter
                    (fun f ->
                      if want_num r f < 0. then
                        raise (Malformed (f ^ ": negative")))
                    [
                      "before_seconds"; "after_seconds"; "speedup";
                      "minor_words_per_call_before";
                      "minor_words_per_call_after";
                    ])
                rows
          | _ -> raise (Malformed "rows: expected array"));
          Printf.printf "%s: schema ok\n" kernels_json_path
        with Malformed msg -> fail msg)
  end

(* -- Part 6: service throughput (`--service`) --------------------------- *)

(* Forks one fleet per shard count and hammers its public socket with C
   concurrent clients sending the same query set twice — a cold wave
   then a warm one — so each row carries both raw QPS and the cache's
   effect on it. Latency percentiles are server-side (the
   service.request_ns histogram published in the final summary), not
   client timestamps, so they match what a live `dut obs-report
   --manifest` shows. Must run before anything spins up the engine
   pool: the fleet is forked, and forking after OCaml 5 domains exist
   is unsafe — which is why `--service` is its own dispatch branch and
   not part of the full run. *)
let service_json_path = Filename.concat "results" "bench_service.json"

let read_json_opt path =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    let contents = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match parse contents with exception Malformed _ -> None | j -> Some j
  end

type service_row = {
  v_shards : int;
  v_requests : int;
  v_seconds : float;
  v_qps : float;
  v_p50 : float;
  v_p95 : float;
  v_p99 : float;
  v_max : float;
  v_hit : float option;
}

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

(* One wave: every client connects, writes its whole batch and reads
   until it has one response line per request. Single-threaded over
   Dut_service.Poll, mirroring the server's own loop, so hundreds of
   concurrent clients cost one process. *)
let service_drive ~socket ~clients ~per_client ~line =
  let conns =
    Array.init clients (fun c ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX socket);
        Unix.set_nonblock fd;
        let b = Buffer.create (per_client * 96) in
        for j = 0 to per_client - 1 do
          Buffer.add_string b (line c j);
          Buffer.add_char b '\n'
        done;
        (fd, Buffer.to_bytes b, ref 0, ref 0))
  in
  let chunk = Bytes.create 65536 in
  let unfinished () =
    Array.to_list conns |> List.filter (fun (_, _, _, got) -> !got < per_client)
  in
  let rec loop () =
    match unfinished () with
    | [] -> ()
    | pending ->
        let pending = Array.of_list pending in
        let entries =
          Array.map
            (fun (fd, out, written, _) ->
              if !written < Bytes.length out then (fd, Dut_service.Poll.rw)
              else (fd, Dut_service.Poll.rd))
            pending
        in
        let ready = Dut_service.Poll.wait ~timeout_ms:5000 entries in
        Array.iteri
          (fun i (fd, out, written, got) ->
            (if ready.(i).Dut_service.Poll.write && !written < Bytes.length out
             then
               match
                 Unix.single_write fd out !written
                   (Bytes.length out - !written)
               with
               | n -> written := !written + n
               | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
                   ());
            if ready.(i).Dut_service.Poll.read then
              match Unix.read fd chunk 0 (Bytes.length chunk) with
              | 0 -> failwith "service bench: server closed the connection"
              | n ->
                  for k = 0 to n - 1 do
                    if Bytes.get chunk k = '\n' then incr got
                  done
              | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ())
          pending;
        loop ()
  in
  loop ();
  Array.iter (fun (fd, _, _, _) -> Unix.close fd) conns

let service_bench_row ~jobs ~shards ~clients ~per_client =
  let dir = Filename.temp_file "dut_bench_service" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let socket = Filename.concat dir "sock" in
  let summary = Filename.concat dir "summary.json" in
  let pid =
    match Unix.fork () with
    | 0 -> (
        match
          Dut_service.Shard.serve_fleet ~shards
            {
              Dut_service.Server.socket;
              jobs;
              cache =
                Some
                  (Dut_service.Memo.create
                     ~dir:(Some (Filename.concat dir "memo"))
                     ());
              deadline_s = None;
              max_pending = 2 * clients * per_client;
              summary_path = summary;
            }
        with
        | () -> Unix._exit 0
        | exception e ->
            Printf.eprintf "service bench server: %s\n%!"
              (Printexc.to_string e);
            Unix._exit 1)
    | pid -> pid
  in
  let rec await_ready tries =
    if tries = 0 then failwith "service bench: server did not come up";
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () -> Unix.close fd
    | exception Unix.Unix_error _ ->
        Unix.close fd;
        Unix.sleepf 0.025;
        await_ready (tries - 1)
  in
  await_ready 400;
  (* Distinct cheap bound queries: wave 1 is all misses, wave 2 all
     hits, so cache_hit_ratio lands at ~0.5 by construction. *)
  let line c j =
    Printf.sprintf
      "{\"id\":%d,\"kind\":\"bound\",\"name\":\"thm11_lower\",\"params\":{\"n\":%d,\"k\":64,\"eps\":0.25}}"
      j
      (1024 + (8 * ((c * per_client) + j)))
  in
  let t0 = Unix.gettimeofday () in
  service_drive ~socket ~clients ~per_client ~line;
  service_drive ~socket ~clients ~per_client ~line;
  let seconds = Unix.gettimeofday () -. t0 in
  let requests = 2 * clients * per_client in
  Unix.kill pid Sys.sigint;
  ignore (Unix.waitpid [] pid);
  let root =
    match read_json_opt summary with
    | Some j -> j
    | None -> failwith ("service bench: no summary at " ^ summary)
  in
  (* shards=1 degenerates to a plain server (dut-service/3, stats at
     top level); fleets publish dut-service-fleet/1 with the merged
     stats under "aggregate". *)
  let stats =
    match field_opt root "aggregate" with Some a -> a | None -> root
  in
  let lat f =
    match field_opt stats "latency_ns" with
    | Some l -> ( try want_num l f with Malformed _ -> 0.)
    | None -> 0.
  in
  let hit =
    match field_opt stats "cache_hit_ratio" with
    | Some (Num r) -> Some r
    | _ -> None
  in
  rm_rf dir;
  let row =
    {
      v_shards = shards;
      v_requests = requests;
      v_seconds = seconds;
      v_qps = float_of_int requests /. seconds;
      v_p50 = lat "p50";
      v_p95 = lat "p95";
      v_p99 = lat "p99";
      v_max = lat "max";
      v_hit = hit;
    }
  in
  Printf.printf
    "shards %d   %6d req   %9.1f qps   p50 %6.0fns p95 %6.0fns p99 %6.0fns   \
     hit %s   (%.2fs)\n\
     %!"
    row.v_shards row.v_requests row.v_qps row.v_p50 row.v_p95 row.v_p99
    (match row.v_hit with
    | Some h -> Printf.sprintf "%.2f" h
    | None -> "n/a")
    row.v_seconds;
  row

let bench_service ~quick () =
  let jobs =
    Dut_engine.Pool.effective_jobs (Dut_engine.Parallel.env_jobs ())
  in
  let clients = if quick then 64 else 256 in
  let per_client = if quick then 8 else 32 in
  let shard_counts = if quick then [ 1; 2 ] else [ 1; 2; 4 ] in
  Printf.printf
    "## service bench: %d clients x %d requests x 2 waves, jobs=%d\n%!"
    clients per_client jobs;
  let rows =
    List.map
      (fun shards -> service_bench_row ~jobs ~shards ~clients ~per_client)
      shard_counts
  in
  if not (Sys.file_exists "results") then Sys.mkdir "results" 0o755;
  let oc = open_out service_json_path in
  Printf.fprintf oc
    "{\n\
    \  \"benchmark\": \"service\",\n\
    \  \"quick\": %b,\n\
    \  \"jobs\": %d,\n\
    \  \"clients\": %d,\n\
    \  \"requests_per_client\": %d,\n\
    \  \"rows\": [\n"
    quick jobs clients per_client;
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    { \"shards\": %d, \"requests\": %d, \"seconds\": %.4f, \
         \"qps\": %.1f, \"latency_ns\": { \"p50\": %.0f, \"p95\": %.0f, \
         \"p99\": %.0f, \"max\": %.0f }, \"cache_hit_ratio\": %s }%s\n"
        r.v_shards r.v_requests r.v_seconds r.v_qps r.v_p50 r.v_p95 r.v_p99
        r.v_max
        (match r.v_hit with
        | Some h -> Printf.sprintf "%.4f" h
        | None -> "null")
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "  ]\n}\n";
  close_out oc;
  print_endline ("wrote " ^ service_json_path)

(* Validated only when present, like the stream/kernel jsons. *)
let check_service_json () =
  if Sys.file_exists service_json_path then begin
    let fail msg =
      Printf.eprintf "%s: %s\n" service_json_path msg;
      exit 1
    in
    let ic = open_in_bin service_json_path in
    let contents = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match parse contents with
    | exception Malformed msg -> fail msg
    | root -> (
        try
          if want_str root "benchmark" <> "service" then
            raise (Malformed "benchmark: expected \"service\"");
          ignore (want_bool root "quick");
          if want_num root "jobs" < 1. then raise (Malformed "jobs < 1");
          if want_num root "clients" < 1. then raise (Malformed "clients < 1");
          if want_num root "requests_per_client" < 1. then
            raise (Malformed "requests_per_client < 1");
          (match field root "rows" with
          | Arr [] -> raise (Malformed "rows: empty")
          | Arr rows ->
              List.iter
                (fun r ->
                  if want_num r "shards" < 1. then
                    raise (Malformed "shards < 1");
                  if want_num r "requests" < 1. then
                    raise (Malformed "requests < 1");
                  List.iter
                    (fun f ->
                      if want_num r f < 0. then
                        raise (Malformed (f ^ ": negative")))
                    [ "seconds"; "qps" ];
                  (match field r "latency_ns" with
                  | Obj _ as l ->
                      let p50 = want_num l "p50" in
                      let p95 = want_num l "p95" in
                      let p99 = want_num l "p99" in
                      if p50 < 0. then raise (Malformed "p50: negative");
                      if not (p50 <= p95 && p95 <= p99) then
                        raise
                          (Malformed
                             "latency percentiles not monotone (p50 <= p95 \
                              <= p99)")
                  | _ -> raise (Malformed "latency_ns: expected object"));
                  match field_opt r "cache_hit_ratio" with
                  | Some Null | None -> ()
                  | Some (Num v) when v >= 0. && v <= 1. -> ()
                  | Some _ ->
                      raise
                        (Malformed "cache_hit_ratio: expected 0..1 or null"))
                rows
          | _ -> raise (Malformed "rows: expected array"));
          Printf.printf "%s: schema ok\n" service_json_path
        with Malformed msg -> fail msg)
  end

(* -- Bench history (results/bench_history.jsonl) ------------------------ *)

(* One row appended per `--quick` bench run: the longitudinal record
   `dut obs-report --regressions` reads. Only quick runs append — the
   full-budget legs time a different workload, so their wall-clocks
   would not be comparable rows. Fields whose source json is absent
   (e.g. a `--stream`-only run has no engine numbers) are null, and the
   regression report skips them. *)
let history_json_path = Filename.concat "results" "bench_history.jsonl"
let history_schema = "dut-bench-history/1"

let append_history () =
  let engine = read_json_opt engine_json_path in
  let stream = read_json_opt stream_json_path in
  let service = read_json_opt service_json_path in
  let num_field j obj f =
    match Option.bind j (fun j -> field_opt j obj) with
    | Some o -> ( try Some (want_num o f) with Malformed _ -> None)
    | None -> None
  in
  (* Max over the experiment rows: the gate-relevant per-trial
     allocation figure. *)
  let words_per_trial =
    match Option.bind engine (fun j -> field_opt j "experiments") with
    | Some (Dut_obs.Json.Arr exps) ->
        List.fold_left
          (fun acc e ->
            match want_num e "words_per_trial_after" with
            | w -> Some (Float.max w (Option.value ~default:0. acc))
            | exception Malformed _ -> acc)
          None exps
    | _ -> None
  in
  (* Best throughput across the sketch-budget ladder. *)
  let ingest_samples_per_s =
    match Option.bind stream (fun j -> field_opt j "rows") with
    | Some (Dut_obs.Json.Arr rows) ->
        List.fold_left
          (fun acc r ->
            match want_num r "samples_per_sec" with
            | s -> Some (Float.max s (Option.value ~default:0. acc))
            | exception Malformed _ -> acc)
          None rows
    | _ -> None
  in
  (* Best throughput across the shard-count ladder. *)
  let service_qps =
    match Option.bind service (fun j -> field_opt j "rows") with
    | Some (Dut_obs.Json.Arr rows) ->
        List.fold_left
          (fun acc r ->
            match want_num r "qps" with
            | q -> Some (Float.max q (Option.value ~default:0. acc))
            | exception Malformed _ -> acc)
          None rows
    | _ -> None
  in
  let jobs =
    let of_json j = try Some (want_num j "jobs") with Malformed _ -> None in
    match (Option.bind engine of_json, Option.bind stream of_json) with
    | Some j, _ | None, Some j -> j
    | None, None ->
        float_of_int
          (Dut_engine.Pool.effective_jobs (Dut_engine.Parallel.env_jobs ()))
  in
  let opt = function Some v -> Dut_obs.Json.Num v | None -> Dut_obs.Json.Null in
  let row =
    Dut_obs.Json.Obj
      [
        ("schema", Dut_obs.Json.Str history_schema);
        ("git", Dut_obs.Json.Str (Dut_obs.Manifest.git_describe ()));
        ("unix_time", Dut_obs.Json.Num (Float.round (Unix.time ())));
        ("jobs", Dut_obs.Json.Num jobs);
        ("run_all_wall_s", opt (num_field engine "run_all" "after_seconds"));
        ("run_all_speedup", opt (num_field engine "run_all" "speedup"));
        ("words_per_trial", opt words_per_trial);
        ("ingest_samples_per_s", opt ingest_samples_per_s);
        ("service_qps", opt service_qps);
      ]
  in
  if not (Sys.file_exists "results") then Sys.mkdir "results" 0o755;
  let oc =
    open_out_gen [ Open_append; Open_creat ] 0o644 history_json_path
  in
  output_string oc (Dut_obs.Json.to_string row);
  output_char oc '\n';
  close_out oc;
  print_endline ("appended " ^ history_json_path)

(* Validated only when present, like the stream/kernel jsons: every row
   must be a parseable dut-bench-history/1 object with sane numbers. *)
let check_history_jsonl () =
  if Sys.file_exists history_json_path then begin
    let fail msg =
      Printf.eprintf "%s: %s\n" history_json_path msg;
      exit 1
    in
    let ic = open_in history_json_path in
    let rec go i =
      match input_line ic with
      | exception End_of_file -> i
      | line -> (
          match parse line with
          | exception Malformed msg ->
              fail (Printf.sprintf "row %d: %s" i msg)
          | j ->
              (try
                 if want_str j "schema" <> history_schema then
                   raise (Malformed ("expected schema " ^ history_schema));
                 ignore (want_str j "git");
                 if want_num j "unix_time" < 0. then
                   raise (Malformed "unix_time: negative");
                 if want_num j "jobs" < 1. then raise (Malformed "jobs < 1");
                 List.iter
                   (fun f ->
                     match field_opt j f with
                     | Some Dut_obs.Json.Null | None -> ()
                     | Some (Dut_obs.Json.Num v) when v >= 0. -> ()
                     | Some _ -> raise (Malformed (f ^ ": expected number or null")))
                   [
                     "run_all_wall_s"; "run_all_speedup"; "words_per_trial";
                     "ingest_samples_per_s"; "service_qps";
                   ]
               with Malformed msg ->
                 fail (Printf.sprintf "row %d: %s" i msg));
              go (i + 1))
    in
    let rows = go 1 in
    close_in ic;
    Printf.printf "%s: schema ok (%d rows)\n" history_json_path (rows - 1)
  end

(* -- Allocation-regression gate (`--gate`) ------------------------------ *)

(* Compares the after-leg words-per-trial of a fresh `--engine --quick`
   run against the committed budget in results/alloc_budget.json and
   fails if any experiment allocates past it. The budget carries ~2x
   headroom over the measured figures: words/trial is a property of the
   code path, not the machine, so anything beyond noise means per-trial
   allocations crept back into a hot loop. *)
let budget_json_path = Filename.concat "results" "alloc_budget.json"

let gate_alloc () =
  let fail msg =
    Printf.eprintf "alloc gate: %s\n" msg;
    exit 1
  in
  let read path =
    if not (Sys.file_exists path) then fail (path ^ ": missing");
    let ic = open_in_bin path in
    let contents = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match parse contents with
    | exception Malformed msg -> fail (path ^ ": " ^ msg)
    | root -> root
  in
  let engine = read engine_json_path in
  let budget = read budget_json_path in
  try
    if not (want_bool engine "quick") then
      fail
        (engine_json_path
       ^ ": not a --quick run; the budget is calibrated for `--engine \
          --quick` (fixed 60-trial probes)");
    let exps =
      match field engine "experiments" with
      | Arr exps -> exps
      | _ -> fail (engine_json_path ^ ": experiments: expected array")
    in
    let budgets =
      match field budget "budgets" with
      | Arr [] -> fail (budget_json_path ^ ": budgets: empty")
      | Arr budgets -> budgets
      | _ -> fail (budget_json_path ^ ": budgets: expected array")
    in
    let over = ref false in
    List.iter
      (fun b ->
        let id = want_str b "id" in
        let cap = want_num b "max_words_per_trial" in
        match
          List.find_opt (fun e -> want_str e "id" = id) exps
        with
        | None -> fail (id ^ ": budgeted but missing from bench_engine.json")
        | Some e ->
            let trials = want_num e "trials_after" in
            let wpt =
              if trials <= 0. then 0.
              else want_num e "minor_words_after" /. trials
            in
            let ok = wpt <= cap in
            if not ok then over := true;
            Printf.printf "%-18s %12.1f words/trial   budget %12.1f   %s\n%!"
              id wpt cap
              (if ok then "ok" else "EXCEEDED"))
      budgets;
    if !over then
      fail "per-trial allocation budget exceeded — a hot loop regressed"
    else print_endline "alloc gate: ok"
  with Malformed msg -> fail msg

let () =
  let has flag = Array.exists (( = ) flag) Sys.argv in
  let value_after flag =
    let r = ref None in
    Array.iteri
      (fun i a -> if a = flag && i + 1 < Array.length Sys.argv then r := Some Sys.argv.(i + 1))
      Sys.argv;
    !r
  in
  if has "--check" then begin
    check_engine_json ();
    check_stream_json ();
    check_kernels_json ();
    check_service_json ();
    check_history_jsonl ()
  end
  else if has "--gate" then gate_alloc ()
  else if has "--service" then begin
    (* Own branch, never part of the full run: the fleet is forked, so
       this must happen before any Parallel.map creates pool domains. *)
    bench_service ~quick:(has "--quick") ();
    if has "--quick" then append_history ()
  end
  else if has "--stream" then begin
    bench_stream ~quick:(has "--quick") ();
    if has "--quick" then append_history ()
  end
  else begin
    Dut_obs.Span.set_sink (value_after "--trace");
    let engine_only = has "--engine" in
    if not engine_only then begin
      regenerate_tables ();
      run_kernels ()
    end;
    bench_engine ~quick:(has "--quick") ();
    bench_kernels_io ~quick:(has "--quick") ();
    bench_stream ~quick:(has "--quick") ();
    if has "--quick" then append_history ();
    if has "--metrics" then Dut_obs.Metrics.dump stderr;
    Dut_obs.Span.set_sink None
  end
