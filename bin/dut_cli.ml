(* Command-line driver: list and run the reproduction experiments.

   dut list
   dut run T1-any-rule [--profile fast|full] [--seed N] [--csv] [--jobs N]
   dut run-all [--profile ...] [--jobs N] *)

open Cmdliner

let profile_conv =
  let parse s =
    match Dut_experiments.Config.profile_of_string s with
    | Some p -> Ok p
    | None -> Error (`Msg (Printf.sprintf "unknown profile %S (fast|full)" s))
  in
  let print fmt p =
    Format.pp_print_string fmt (Dut_experiments.Config.profile_to_string p)
  in
  Arg.conv (parse, print)

let profile_arg =
  Arg.(
    value
    & opt profile_conv Dut_experiments.Config.Fast
    & info [ "p"; "profile" ] ~docv:"PROFILE"
        ~doc:"Parameter profile: $(b,fast) (seconds) or $(b,full) (the sizes in EXPERIMENTS.md).")

let seed_arg =
  Arg.(
    value & opt int 2019
    & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"Root random seed.")

let csv_arg =
  Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of aligned tables.")

let trials_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "t"; "trials" ] ~docv:"TRIALS"
        ~doc:"Override the profile's Monte-Carlo trials per estimate.")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"JOBS"
        ~doc:
          "Domains used by the execution engine (default: $(b,DUT_JOBS), \
           else 1). Results are bit-identical for every value.")

let no_adaptive_arg =
  Arg.(
    value & flag
    & info [ "no-adaptive" ]
        ~doc:
          "Spend the full Monte-Carlo budget on every probe instead of \
           stopping once the Wilson interval is decisive. Reproduces the \
           fixed-budget runs of earlier revisions bit for bit.")

let cold_search_arg =
  Arg.(
    value & flag
    & info [ "cold-search" ]
        ~doc:
          "Disable warm-starting grid searches from the previous grid \
           point's critical q; every point cold-doubles from 1.")

let no_timings_arg =
  Arg.(
    value & flag
    & info [ "no-timings" ]
        ~doc:
          "Omit the wall-clock comment lines, making the output \
           byte-reproducible across runs and jobs counts.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a JSON Lines span trace (experiments, tables, run-all) \
           to $(docv). Strictly out-of-band: stdout is byte-identical \
           with and without this flag.")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "After the run, dump the final counter/gauge table \
           (mc.trials_used, search.probes, pool.*, scratch.*) to stderr.")

let sample_interval_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "sample-interval-ms" ] ~docv:"MS"
        ~doc:
          "Sample a run timeline every $(docv) milliseconds: a background \
           domain appends counter deltas, gauge values, histogram states \
           and GC statistics to a dut-timeline/1 JSONL file (see \
           $(b,--timeline)). Strictly out-of-band, like $(b,--trace): \
           stdout is byte-identical with and without sampling.")

let timeline_path_arg =
  Arg.(
    value
    & opt string Dut_obs.Timeline.default_path
    & info [ "timeline" ] ~docv:"FILE"
        ~doc:
          (Printf.sprintf
             "Where $(b,--sample-interval-ms) writes its timeline (default \
              %s). Render it with $(b,dut obs-report --timeline)."
             Dut_obs.Timeline.default_path))

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout-s" ] ~docv:"SECONDS"
        ~doc:
          "Per-experiment watchdog: an experiment exceeding $(docv) is \
           cancelled cooperatively (at the next engine check point), \
           reported as failed in its slot, and the run continues.")

let resume_arg =
  Arg.(
    value & flag
    & info [ "resume" ]
        ~doc:
          "Replay experiments whose checkpoint under results/checkpoints/ \
           matches this run's profile, seed, trials, flags and git state \
           byte-identically; re-run only missing, failed or stale ones.")

module Runner = Dut_experiments.Runner

(* Telemetry bracket shared by run/run-all: open the span sink before
   the run, then write results/manifest.json, optionally dump the
   counter table to stderr, and close the sink. Everything here is
   out-of-band — stdout is untouched. Returns the run's report so the
   caller can turn failures into the exit code. *)
let with_obs ~trace ~metrics ?sample_interval_ms
    ?(timeline_path = Dut_obs.Timeline.default_path) ~command ~cfg run =
  Dut_obs.Span.set_sink trace;
  Option.iter
    (fun interval_ms ->
      Dut_obs.Timeline.start ~path:timeline_path ~interval_ms ())
    sample_interval_ms;
  let finally () =
    Dut_obs.Timeline.stop ();
    Dut_obs.Span.set_sink None
  in
  Fun.protect ~finally @@ fun () ->
  let report = run () in
  let experiments =
    List.map
      (fun (o : Runner.outcome) ->
        {
          Dut_obs.Manifest.id = o.id;
          seconds = o.seconds;
          status =
            (match o.status with
            | Runner.Ok -> "ok"
            | Runner.Failed _ -> "failed"
            | Runner.Interrupted -> "interrupted");
          resumed = o.resumed;
          error =
            (match o.status with
            | Runner.Failed { exn; _ } -> Some exn
            | _ -> None);
        })
      report.Runner.experiments
  in
  Dut_obs.Manifest.write
    (Dut_obs.Manifest.make ~command
       ~profile:
         (Dut_experiments.Config.profile_to_string
            cfg.Dut_experiments.Config.profile)
       ~seed:cfg.seed ~jobs:cfg.jobs ~jobs_requested:cfg.jobs_requested
       ~adaptive:cfg.adaptive ~warm_start:cfg.warm_start
       ~wall_seconds:report.Runner.wall_seconds
       ~cpu_seconds:report.Runner.cpu_seconds ~experiments);
  if metrics then Dut_obs.Metrics.dump stderr;
  report

(* Failure isolation means the process must carry the verdict: 130 for
   an interrupted run (the shell convention for SIGINT), 1 when any
   experiment failed, 0 otherwise — with a one-line stderr summary, so
   scripted callers see why without parsing stdout. *)
let exit_of_report (report : Runner.report) =
  let outcomes = report.Runner.experiments in
  let n_failed = List.length (List.filter Runner.failed outcomes) in
  let n_interrupted =
    List.length
      (List.filter (fun o -> o.Runner.status = Runner.Interrupted) outcomes)
  in
  if n_interrupted > 0 then begin
    Printf.eprintf
      "dut: interrupted — %d of %d experiments completed; finish with `dut \
       run-all --resume`\n\
       %!"
      (List.length outcomes - n_interrupted)
      (List.length outcomes);
    130
  end
  else if n_failed > 0 then begin
    Printf.eprintf "dut: %d of %d experiments failed (see # ERROR blocks)\n%!"
      n_failed (List.length outcomes);
    1
  end
  else 0

let run_one ~profile ~seed ~csv ~timings ~adaptive ~warm_start ~trace ~metrics
    ?sample_interval_ms ?timeline_path ?trials ?jobs ?timeout_s id =
  match Dut_experiments.Registry.find id with
  | None ->
      Printf.eprintf "unknown experiment %S; try `dut list`\n" id;
      exit 1
  | Some exp ->
      let cfg =
        Dut_experiments.Config.make ~seed ?trials ?jobs ~adaptive ~warm_start
          profile
      in
      let report =
        with_obs ~trace ~metrics ?sample_interval_ms ?timeline_path
          ~command:("run " ^ id) ~cfg (fun () ->
            let outcome =
              Runner.run_to_channel ~csv ~timings ?timeout_s cfg exp stdout
            in
            {
              Runner.wall_seconds = outcome.Runner.seconds;
              cpu_seconds = outcome.Runner.seconds;
              experiments = [ outcome ];
            })
      in
      exit (exit_of_report report)

let list_cmd =
  let doc = "List the available experiments." in
  let run () =
    List.iter
      (fun e ->
        Printf.printf "%-20s %s\n    %s\n" e.Dut_experiments.Exp.id e.title
          e.statement)
      Dut_experiments.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let run_cmd =
  let doc = "Run one experiment by id." in
  let id_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT-ID")
  in
  let run profile seed csv trials jobs no_timings no_adaptive cold_search
      trace metrics sample_interval_ms timeline_path timeout_s id =
    run_one ~profile ~seed ~csv ~timings:(not no_timings)
      ~adaptive:(not no_adaptive) ~warm_start:(not cold_search) ~trace
      ~metrics ?sample_interval_ms ~timeline_path ?trials ?jobs ?timeout_s id
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ profile_arg $ seed_arg $ csv_arg $ trials_arg $ jobs_arg
      $ no_timings_arg $ no_adaptive_arg $ cold_search_arg $ trace_arg
      $ metrics_arg $ sample_interval_arg $ timeline_path_arg $ timeout_arg
      $ id_arg)

let run_all_cmd =
  let doc =
    "Run every experiment in the registry (up to --jobs concurrently). \
     Failing experiments render an # ERROR block in their slot and make \
     the exit code non-zero; the others complete, print and checkpoint \
     normally. SIGINT/SIGTERM stops gracefully (exit 130, partial \
     manifest, completed work checkpointed); $(b,--resume) finishes such \
     a run."
  in
  let run profile seed csv trials jobs no_timings no_adaptive cold_search
      trace metrics sample_interval_ms timeline_path timeout_s resume =
    let cfg =
      Dut_experiments.Config.make ~seed ?trials ?jobs
        ~adaptive:(not no_adaptive) ~warm_start:(not cold_search) profile
    in
    let report =
      Runner.with_sigint_guard (fun () ->
          with_obs ~trace ~metrics ?sample_interval_ms ~timeline_path
            ~command:"run-all" ~cfg (fun () ->
              Runner.run_all_to_channel ~csv ~timings:(not no_timings)
                ~checkpoint_dir:Dut_experiments.Checkpoint.default_dir ~resume
                ?timeout_s cfg stdout))
    in
    exit (exit_of_report report)
  in
  Cmd.v (Cmd.info "run-all" ~doc)
    Term.(
      const run $ profile_arg $ seed_arg $ csv_arg $ trials_arg $ jobs_arg
      $ no_timings_arg $ no_adaptive_arg $ cold_search_arg $ trace_arg
      $ metrics_arg $ sample_interval_arg $ timeline_path_arg $ timeout_arg
      $ resume_arg)

let bounds_cmd =
  let doc = "Print every bound of the paper for given parameters." in
  let n_arg = Arg.(value & opt int 4096 & info [ "n" ] ~docv:"N" ~doc:"Universe size.") in
  let k_arg = Arg.(value & opt int 64 & info [ "k" ] ~docv:"K" ~doc:"Number of players.") in
  let eps_arg =
    Arg.(value & opt float 0.25 & info [ "e"; "eps" ] ~docv:"EPS" ~doc:"Proximity parameter.")
  in
  let run n k eps =
    let line name v note = Printf.printf "%-34s %12.1f   %s\n" name v note in
    Printf.printf "bounds for n=%d, k=%d, eps=%.3f (constants set to 1)\n\n" n k eps;
    line "centralized [16]" (Dut_core.Bounds.centralized ~n ~eps) "samples, one tester";
    line "Thm 1.1 lower (any rule)"
      (Dut_core.Bounds.thm11_lower ~n ~k ~eps)
      (if Dut_core.Bounds.thm11_applies ~n ~k ~eps then "per player"
       else "per player (outside k <= n/eps^2!)");
    line "FMO threshold upper"
      (Dut_core.Bounds.fmo_threshold_upper ~n ~k ~eps)
      "per player: matches Thm 1.1";
    line "Thm 1.2 lower (AND rule)"
      (Dut_core.Bounds.thm12_and_lower ~n ~k ~eps)
      "per player";
    line "FMO AND upper" (Dut_core.Bounds.fmo_and_upper ~n ~k ~eps) "per player";
    List.iter
      (fun t ->
        line
          (Printf.sprintf "Thm 1.3 lower (T=%d)" t)
          (Dut_core.Bounds.thm13_threshold_lower ~n ~k ~eps ~t)
          "per player")
      [ 1; 4; 16 ];
    List.iter
      (fun r ->
        line
          (Printf.sprintf "Thm 6.4 lower (r=%d bits)" r)
          (Dut_core.Bounds.thm64_rbit_lower ~n ~k ~eps ~r)
          "per player")
      [ 1; 2; 4 ];
    List.iter
      (fun q ->
        line
          (Printf.sprintf "Thm 1.4 learning nodes (q=%d)" q)
          (Dut_core.Bounds.thm14_learning_nodes ~n ~q)
          "players")
      [ 1; 4; 16 ];
    line "ACT single-sample nodes (2 bits)"
      (Dut_core.Bounds.act_single_sample_nodes ~n ~eps ~bits:2)
      "players at q=1";
    line "async time (k unit rates)"
      (Dut_core.Bounds.async_time_lower ~n ~eps ~rates:(Array.make k 1.))
      "time units"
  in
  Cmd.v (Cmd.info "bounds" ~doc) Term.(const run $ n_arg $ k_arg $ eps_arg)

let verify_cmd =
  let doc =
    "Check the paper's exact claims (F1/F2/F3/F5, T8, T11) and exit non-zero \
     on any violation."
  in
  let run profile seed =
    let cfg = Dut_experiments.Config.make ~seed profile in
    let verdicts = Dut_experiments.Verifier.verify_all cfg in
    List.iter
      (fun v ->
        if v.Dut_experiments.Verifier.failures = [] then
          Printf.printf "PASS %-18s (%d checks)\n" v.experiment v.checks
        else begin
          Printf.printf "FAIL %-18s (%d checks, %d failures)\n" v.experiment
            v.checks
            (List.length v.failures);
          List.iter (fun f -> Printf.printf "     %s\n" f) v.failures
        end)
      verdicts;
    if Dut_experiments.Verifier.all_passed verdicts then begin
      print_endline "all exact claims verified";
      exit 0
    end
    else exit 1
  in
  Cmd.v (Cmd.info "verify" ~doc) Term.(const run $ profile_arg $ seed_arg)

(* -- serve / query: the resident query layer ---------------------------- *)

let socket_arg =
  Arg.(
    value
    & opt string Dut_service.Server.default_socket
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket the server listens on / the client dials.")

let serve_cmd =
  let doc =
    "Run the resident query server: a long-lived process answering \
     $(b,dut query) requests (theory bounds, tester power estimates, \
     critical-q searches) over a Unix-domain socket. Concurrent requests \
     are coalesced into batches on the execution engine; ok answers are \
     memoized (per code version) so repeated queries replay \
     byte-identically without recomputation. SIGINT/SIGTERM drains \
     in-flight work, writes the session summary and exits 0."
  in
  let cache_dir_arg =
    Arg.(
      value
      & opt string Dut_service.Memo.default_dir
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:"Directory of the persistent memo cache.")
  in
  let no_cache_arg =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:"Disable memoization entirely (every query recomputes).")
  in
  let mem_entries_arg =
    Arg.(
      value & opt int 512
      & info [ "mem-entries" ] ~docv:"N"
          ~doc:"Capacity of the in-memory LRU cache front.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-s" ] ~docv:"SECONDS"
          ~doc:
            "Per-request cooperative deadline: a query exceeding $(docv) \
             is cancelled at the next engine check point and answered \
             with an error response; sibling requests are unaffected.")
  in
  let max_pending_arg =
    Arg.(
      value & opt int 1024
      & info [ "max-pending" ] ~docv:"N"
          ~doc:
            "Backpressure cap: requests beyond $(docv) in one batch cycle \
             are answered immediately with an error instead of queueing.")
  in
  let summary_arg =
    Arg.(
      value
      & opt string Dut_service.Server.default_summary_path
      & info [ "summary" ] ~docv:"FILE"
          ~doc:
            "Session summary (schema dut-service/1), rewritten atomically \
             after every batch; readable live with $(b,dut obs-report \
             --manifest).")
  in
  let shards_arg =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Shard the service across $(docv) worker processes: a router \
             on the public socket consistent-hashes each query's \
             canonical bytes to a worker (each a full server on \
             $(i,SOCKET).shardI, all sharing the on-disk memo store) and \
             splices responses back byte-identically. 1 (the default) \
             runs the plain single-process server.")
  in
  let run socket jobs cache_dir no_cache mem_entries deadline_s max_pending
      summary shards trace metrics =
    if shards < 1 then invalid_arg "serve: shards must be positive";
    let jobs =
      Dut_engine.Pool.effective_jobs
        (match jobs with
        | Some j when j >= 1 -> j
        | Some _ -> invalid_arg "serve: jobs must be positive"
        | None -> Dut_engine.Parallel.env_jobs ())
    in
    let cache =
      if no_cache then None
      else
        Some
          (Dut_service.Memo.create ~capacity:mem_entries ~dir:(Some cache_dir)
             ())
    in
    Dut_obs.Span.set_sink trace;
    Fun.protect
      ~finally:(fun () -> Dut_obs.Span.set_sink None)
      (fun () ->
        Dut_service.Shard.serve_fleet ~shards
          {
            Dut_service.Server.socket;
            jobs;
            cache;
            deadline_s;
            max_pending;
            summary_path = summary;
          });
    if metrics then Dut_obs.Metrics.dump stderr;
    exit 0
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ socket_arg $ jobs_arg $ cache_dir_arg $ no_cache_arg
      $ mem_entries_arg $ deadline_arg $ max_pending_arg $ summary_arg
      $ shards_arg $ trace_arg $ metrics_arg)

let query_cmd =
  let doc =
    "Send queries to a running $(b,dut serve) and print one response \
     line per query, in request order. Queries are JSON objects (see \
     doc/service.md): a single query as the positional argument, a JSONL \
     batch via $(b,--batch), or JSONL on stdin. Exits 0 when every \
     response is ok, 1 when any response is an error, 2 when the server \
     is unreachable."
  in
  let query_pos_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"QUERY" ~doc:"One query as a JSON object literal.")
  in
  let batch_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "batch" ] ~docv:"FILE"
          ~doc:"Read queries from $(docv), one JSON object per line.")
  in
  let read_lines ic =
    let rec go acc =
      match input_line ic with
      | line -> go (line :: acc)
      | exception End_of_file -> List.rev acc
    in
    go []
  in
  let timeout_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout-s" ] ~docv:"SECONDS"
          ~doc:
            "Give up after $(docv) without a full set of responses: \
             unanswered ids are filled with an error payload (one output \
             line per input line still holds) and the exit code is 2. \
             Without it the wait is unbounded.")
  in
  let run socket timeout_s query batch =
    (match timeout_s with
    | Some t when t <= 0. -> invalid_arg "query: timeout-s must be positive"
    | _ -> ());
    let lines =
      match (query, batch) with
      | Some q, None -> [ q ]
      | None, Some file ->
          let ic = open_in file in
          Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
              read_lines ic)
      | None, None -> read_lines stdin
      | Some _, Some _ ->
          Printf.eprintf "dut query: pass either QUERY or --batch, not both\n";
          exit Cmd.Exit.cli_error
    in
    exit (Dut_service.Client.run ?timeout_s ~socket ~out:stdout lines)
  in
  Cmd.v (Cmd.info "query" ~doc)
    Term.(const run $ socket_arg $ timeout_arg $ query_pos_arg $ batch_arg)

(* -- stream: run the anytime referee over samples from stdin/file ------- *)

let stream_cmd =
  let doc =
    "Ingest a sample stream (whitespace-separated integers from $(docv) or \
     stdin) through a bounded-memory sketch and print anytime-valid \
     checkpoint verdicts plus the final batch-rule verdict. Output is \
     byte-identical for every $(b,--jobs) value: chunk boundaries, sketch \
     contents and thresholds depend only on the stream, $(b,--chunk) and \
     $(b,--seed)."
  in
  let file_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Sample file (default: read stdin).")
  in
  let n_arg =
    Arg.(
      required
      & opt (some int) None
      & info [ "n" ] ~docv:"N" ~doc:"Universe size: samples lie in 0..N-1.")
  in
  let eps_arg =
    Arg.(
      value & opt float 0.25
      & info [ "e"; "eps" ] ~docv:"EPS" ~doc:"Proximity parameter.")
  in
  let sketch_conv =
    let parse s =
      match Dut_stream.Sketch.kind_of_string s with
      | Some k -> Ok k
      | None -> Error (`Msg (Printf.sprintf "unknown sketch %S (hist|ams)" s))
    in
    let print fmt k =
      Format.pp_print_string fmt (Dut_stream.Sketch.kind_to_string k)
    in
    Arg.conv (parse, print)
  in
  let sketch_arg =
    Arg.(
      value
      & opt sketch_conv Dut_stream.Sketch.Hist
      & info [ "sketch" ] ~docv:"KIND"
          ~doc:
            "Sketch kind: $(b,hist) (bounded histogram) or $(b,ams) \
             (±1 second-moment sketch).")
  in
  let budget_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget" ] ~docv:"WORDS"
          ~doc:
            "Per-sketch memory budget in words (default: the exact-histogram \
             budget N + header).")
  in
  let chunk_arg =
    Arg.(
      value & opt int 256
      & info [ "chunk" ] ~docv:"SAMPLES"
          ~doc:
            "Samples per chunk — the checkpoint granularity and the unit of \
             deterministic parallel ingestion.")
  in
  let window_conv =
    let parse s =
      if s = "growing" then Ok Dut_stream.Anytime.Growing
      else
        match int_of_string_opt s with
        | Some w when w >= 1 -> Ok (Dut_stream.Anytime.Sliding w)
        | _ ->
            Error
              (`Msg
                 (Printf.sprintf
                    "bad window %S (growing, or a positive chunk count)" s))
    in
    let print fmt w =
      Format.pp_print_string fmt (Dut_stream.Anytime.window_to_string w)
    in
    Arg.conv (parse, print)
  in
  let window_arg =
    Arg.(
      value
      & opt window_conv Dut_stream.Anytime.Growing
      & info [ "window" ] ~docv:"WINDOW"
          ~doc:
            "Checkpoint window: $(b,growing) (judge the whole prefix) or an \
             integer $(i,w) (judge the last $(i,w) chunks).")
  in
  let alpha_arg =
    Arg.(
      value & opt float 0.05
      & info [ "alpha" ] ~docv:"ALPHA"
          ~doc:"Total anytime false-rejection budget (eps-spending).")
  in
  let every_arg =
    Arg.(
      value & opt int 1
      & info [ "every" ] ~docv:"CHUNKS" ~doc:"Chunks between checkpoints.")
  in
  let run file n eps kind budget chunk window alpha every seed jobs metrics =
    let budget =
      match budget with
      | Some b -> b
      | None -> Dut_stream.Sketch.exact_budget ~n
    in
    let cfg =
      Dut_stream.Sketch.config ~kind ~n ~budget_words:budget ~seed
    in
    let referee = Dut_stream.Anytime.create ~window ~alpha ~every ~eps cfg in
    let fl = Printf.sprintf "%.6g" in
    Printf.printf
      "# dut stream: n=%d eps=%s sketch=%s budget=%d buckets=%d exact=%s \
       chunk=%d window=%s alpha=%s every=%d seed=%d\n"
      n (fl eps)
      (Dut_stream.Sketch.kind_to_string kind)
      budget
      (Dut_stream.Sketch.buckets cfg)
      (if Dut_stream.Sketch.is_exact cfg then "yes" else "no")
      chunk
      (Dut_stream.Anytime.window_to_string window)
      (fl alpha) every seed;
    let on_chunk sk =
      match Dut_stream.Anytime.observe referee sk with
      | None -> ()
      | Some v ->
          Printf.printf
            "checkpoint %d samples=%d window=%d stat=%s threshold=%s \
             alpha_spent=%s verdict=%s\n"
            v.Dut_stream.Anytime.index v.samples_seen v.window_samples
            (fl v.stat) (fl v.threshold) (fl v.alpha_spent)
            (if v.reject then "reject" else "accept")
    in
    let ingest = Dut_stream.Ingest.create ?jobs ~chunk ~on_chunk cfg in
    let feed_channel ic =
      let sc = Scanf.Scanning.from_channel ic in
      try
        while true do
          let x = Scanf.bscanf sc " %d" Fun.id in
          Dut_stream.Ingest.feed ingest x
        done
      with
      | Scanf.Scan_failure msg ->
          Printf.eprintf "dut stream: bad sample: %s\n" msg;
          exit 1
      | End_of_file -> ()
    in
    (match file with
    | None -> feed_channel stdin
    | Some path ->
        let ic =
          try open_in path
          with Sys_error msg ->
            Printf.eprintf "dut stream: %s\n" msg;
            exit Cmd.Exit.cli_error
        in
        Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
            feed_channel ic));
    Dut_stream.Ingest.flush ingest;
    Printf.printf "# ingested %d samples in %d chunks\n"
      (Dut_stream.Ingest.samples_fed ingest)
      (Dut_stream.Ingest.chunks_emitted ingest);
    (match Dut_stream.Anytime.rejected referee with
    | Some v ->
        Printf.printf "# anytime stop: rejected at checkpoint %d (%d samples)\n"
          v.Dut_stream.Anytime.index v.samples_seen
    | None -> ());
    let v = Dut_stream.Anytime.final referee in
    Printf.printf "final samples=%d stat=%s cutoff=%s verdict=%s\n"
      v.Dut_stream.Anytime.samples_seen (fl v.stat) (fl v.threshold)
      (if v.reject then "reject" else "accept");
    if metrics then Dut_obs.Metrics.dump stderr;
    exit 0
  in
  Cmd.v (Cmd.info "stream" ~doc)
    Term.(
      const run $ file_arg $ n_arg $ eps_arg $ sketch_arg $ budget_arg
      $ chunk_arg $ window_arg $ alpha_arg $ every_arg $ seed_arg $ jobs_arg
      $ metrics_arg)

(* -- obs-report: pretty-print a manifest and/or trace ------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let obs_fail path msg =
  Printf.eprintf "%s: %s\n" path msg;
  exit 1

(* Nanosecond quantities span six orders of magnitude across the
   histograms (a memo front hit vs a full experiment); pick the unit
   per value instead of forcing one column-wide scale. *)
let ns_str ns =
  if Float.abs ns < 1e3 then Printf.sprintf "%.0fns" ns
  else if Float.abs ns < 1e6 then Printf.sprintf "%.1fus" (ns /. 1e3)
  else if Float.abs ns < 1e9 then Printf.sprintf "%.1fms" (ns /. 1e6)
  else Printf.sprintf "%.2fs" (ns /. 1e9)

let hist_cell ~ns j name =
  match Dut_obs.Json.field_opt j name with
  | Some (Dut_obs.Json.Num f) -> if ns then ns_str f else Printf.sprintf "%.0f" f
  | _ -> "-"

let ends_with ~suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.sub s (l - ls) ls = suffix

let report_histograms m =
  let open Dut_obs in
  match Json.field_opt m "histograms" with
  | Some (Json.Obj ((_ :: _) as kvs)) ->
      print_newline ();
      print_endline "histograms";
      let width =
        List.fold_left (fun w (k, _) -> max w (String.length k)) 0 kvs
      in
      Printf.printf "  %-*s %8s %9s %9s %9s %9s %9s\n" width "name" "count"
        "p50" "p90" "p95" "p99" "max";
      List.iter
        (fun (k, v) ->
          let ns = ends_with ~suffix:"_ns" k in
          Printf.printf "  %-*s %8s %9s %9s %9s %9s %9s\n" width k
            (hist_cell ~ns:false v "count")
            (hist_cell ~ns v "p50") (hist_cell ~ns v "p90")
            (hist_cell ~ns v "p95") (hist_cell ~ns v "p99")
            (hist_cell ~ns v "max"))
        kvs
  | _ -> ()

(* Shared by run and service manifests: render the counter snapshot and
   flag the latent-failure tallies a green run can still accumulate. *)
let report_counters m =
  let open Dut_obs in
  match Json.field m "counters" with
  | Json.Obj kvs ->
      print_newline ();
      print_endline "counters";
      let width =
        List.fold_left (fun w (k, _) -> max w (String.length k)) 0 kvs
      in
      List.iter
        (fun (k, v) ->
          match v with
          | Json.Num f -> Printf.printf "  %-*s %.0f\n" width k f
          | _ -> raise (Json.Malformed ("counter " ^ k ^ ": expected number")))
        kvs;
      let tally name =
        match List.assoc_opt name kvs with
        | Some (Json.Num f) when f > 0. -> Some f
        | _ -> None
      in
      Option.iter
        (fun f ->
          Printf.printf
            "  WARNING: %.0f checkpoint write(s) failed — completed \
             experiments were not persisted, so --resume will re-run them\n"
            f)
        (tally "checkpoint.write_failures");
      Option.iter
        (fun f ->
          Printf.printf
            "  WARNING: %.0f cache write(s) failed — served answers were \
             not persisted and will recompute after restart\n"
            f)
        (tally "cache.write_failures");
      report_histograms m
  | _ -> raise (Dut_obs.Json.Malformed "counters: expected object")

(* dut-service/1 and /2: the session summary `dut serve` rewrites after
   every batch, so this renders live state while the server is running.
   The /2 additions (qps, latency percentiles, per-batch stats) degrade
   gracefully: absent fields simply print nothing. *)
let report_service path m =
  let open Dut_obs in
  Printf.printf "service %s (%s, git %s)\n" path (Json.want_str m "schema")
    (Json.want_str m "git");
  Printf.printf "  status      %s\n" (Json.want_str m "status");
  Printf.printf "  socket      %s\n" (Json.want_str m "socket");
  Printf.printf "  jobs        %.0f   uptime %.1fs\n" (Json.want_num m "jobs")
    (Json.want_num m "uptime_seconds");
  let n name = Json.want_num m name in
  Printf.printf "  requests    %.0f in %.0f batches (%.0f errors, %.0f \
                 rejected)\n"
    (n "requests") (n "batches") (n "errors") (n "rejected");
  let hits = n "cache_hits" and misses = n "cache_misses" in
  let rate =
    if hits +. misses > 0. then
      Printf.sprintf " (%.0f%% hit rate)" (100. *. hits /. (hits +. misses))
    else ""
  in
  Printf.printf "  cache       %.0f hits, %.0f misses%s\n" hits misses rate;
  (match Json.field_opt m "qps" with
  | Some (Json.Num q) -> Printf.printf "  qps         %.2f\n" q
  | _ -> ());
  (match Json.field_opt m "latency_ns" with
  | Some lat ->
      Printf.printf "  latency     p50 %s  p90 %s  p95 %s  p99 %s  max %s\n"
        (hist_cell ~ns:true lat "p50") (hist_cell ~ns:true lat "p90")
        (hist_cell ~ns:true lat "p95") (hist_cell ~ns:true lat "p99")
        (hist_cell ~ns:true lat "max")
  | None -> ());
  (match Json.field_opt m "last_batch" with
  | Some (Json.Obj _ as b) ->
      let ratio =
        match Json.field_opt b "cache_hit_ratio" with
        | Some (Json.Num r) -> Printf.sprintf ", %.0f%% cached" (100. *. r)
        | _ -> ""
      in
      let qps =
        match Json.field_opt b "qps" with
        | Some (Json.Num q) -> Printf.sprintf " (%.1f qps)" q
        | _ -> ""
      in
      Printf.printf "  last batch  %.0f requests in %.3fs%s%s"
        (Json.want_num b "requests") (Json.want_num b "seconds") qps ratio;
      (match Json.field_opt b "latency_ns" with
      | Some lat ->
          Printf.printf ", p95 %s\n" (hist_cell ~ns:true lat "p95")
      | None -> print_newline ())
  | _ -> ());
  report_counters m

(* dut-service-fleet/1: the router's merged view of a sharded fleet —
   aggregate first (counters summed, latency merged exactly from the
   per-shard bucket arrays), then each worker's own dut-service
   summary, re-read from disk so a dead shard degrades to a one-line
   note instead of a render failure. *)
let report_fleet path m =
  let open Dut_obs in
  Printf.printf "fleet %s (%s, git %s)\n" path (Json.want_str m "schema")
    (Json.want_str m "git");
  Printf.printf "  status      %s\n" (Json.want_str m "status");
  Printf.printf "  socket      %s\n" (Json.want_str m "socket");
  Printf.printf "  shards      %.0f   jobs %.0f per shard   uptime %.1fs\n"
    (Json.want_num m "shards") (Json.want_num m "jobs")
    (Json.want_num m "uptime_seconds");
  (match Json.field_opt m "router" with
  | Some r ->
      Printf.printf
        "  router      %.0f routed, %.0f local errors, %.0f dead rejects, \
         %.0f stray (%.0f/%.0f shards live)\n"
        (Json.want_num r "routed")
        (Json.want_num r "local_errors")
        (Json.want_num r "dead_rejects")
        (Json.want_num r "stray_responses")
        (Json.want_num r "shards_live")
        (Json.want_num m "shards")
  | None -> ());
  (match Json.field_opt m "aggregate" with
  | Some a ->
      Printf.printf
        "  aggregate   %.0f requests in %.0f batches (%.0f errors, %.0f \
         rejected)\n"
        (Json.want_num a "requests") (Json.want_num a "batches")
        (Json.want_num a "errors") (Json.want_num a "rejected");
      let hits = Json.want_num a "cache_hits"
      and misses = Json.want_num a "cache_misses" in
      let rate =
        if hits +. misses > 0. then
          Printf.sprintf " (%.0f%% hit rate)" (100. *. hits /. (hits +. misses))
        else ""
      in
      Printf.printf "  cache       %.0f hits, %.0f misses%s\n" hits misses rate;
      (match Json.field_opt a "qps" with
      | Some (Json.Num q) -> Printf.printf "  qps         %.2f\n" q
      | _ -> ());
      (match Json.field_opt a "latency_ns" with
      | Some lat ->
          Printf.printf
            "  latency     p50 %s  p90 %s  p95 %s  p99 %s  max %s\n"
            (hist_cell ~ns:true lat "p50") (hist_cell ~ns:true lat "p90")
            (hist_cell ~ns:true lat "p95") (hist_cell ~ns:true lat "p99")
            (hist_cell ~ns:true lat "max")
      | None -> ())
  | None -> ());
  match Json.field_opt m "workers" with
  | Some (Json.Arr workers) ->
      List.iter
        (fun w ->
          let shard = Json.want_num w "shard" in
          let summary = Json.want_str w "summary" in
          (* The recorded path is relative to the server's cwd; when
             the report runs elsewhere, the worker summaries still sit
             next to the fleet manifest by construction. *)
          let summary =
            if Sys.file_exists summary then summary
            else Filename.concat (Filename.dirname path)
                (Filename.basename summary)
          in
          print_newline ();
          if Sys.file_exists summary then
            match Json.parse (read_file summary) with
            | exception (Json.Malformed _ | Sys_error _) ->
                Printf.printf "shard %.0f: unreadable summary at %s\n" shard
                  summary
            | wm -> report_service summary wm
          else
            Printf.printf "shard %.0f: no summary at %s (never served?)\n"
              shard summary)
        workers
  | _ -> ()

let report_manifest path =
  if not (Sys.file_exists path) then
    obs_fail path "no manifest (run `dut run-all` first, or pass --manifest)";
  let open Dut_obs in
  let schema_prefix m prefix =
    try
      let s = Json.want_str m "schema" in
      String.length s >= String.length prefix
      && String.sub s 0 (String.length prefix) = prefix
    with _ -> false
  in
  match Json.parse (read_file path) with
  | exception Json.Malformed msg -> obs_fail path msg
  | exception Sys_error msg -> obs_fail path msg
  | m when schema_prefix m "dut-service-fleet/" -> (
      try report_fleet path m with Json.Malformed msg -> obs_fail path msg)
  | m when schema_prefix m "dut-service/" -> (
      try report_service path m with Json.Malformed msg -> obs_fail path msg)
  | m -> (
      try
        let yn b = if b then "yes" else "no" in
        Printf.printf "manifest %s (%s, git %s)\n" path (Json.want_str m "schema")
          (Json.want_str m "git");
        Printf.printf "  command     %s\n" (Json.want_str m "command");
        (* status and jobs_requested arrived with dut-manifest/2; render
           a /1 manifest without them rather than failing on it. *)
        (match Json.field_opt m "status" with
        | Some (Json.Str s) -> Printf.printf "  status      %s\n" s
        | _ -> ());
        let requested =
          match Json.field_opt m "jobs_requested" with
          | Some (Json.Num r) -> Printf.sprintf " (requested %.0f, clamped)" r
          | _ -> ""
        in
        Printf.printf "  profile     %-6s seed %.0f   jobs %.0f%s\n"
          (Json.want_str m "profile") (Json.want_num m "seed")
          (Json.want_num m "jobs") requested;
        Printf.printf "  adaptive    %-6s warm-start %s\n"
          (yn (Json.want_bool m "adaptive"))
          (yn (Json.want_bool m "warm_start"));
        Printf.printf "  wall        %.1fs   summed-cpu %.1fs\n"
          (Json.want_num m "wall_seconds")
          (Json.want_num m "cpu_seconds");
        (match Json.field m "experiments" with
        | Json.Arr exps ->
            let entry e =
              let status =
                match Json.field_opt e "status" with
                | Some (Json.Str s) -> s
                | _ -> "ok"
              in
              let resumed =
                match Json.field_opt e "resumed" with
                | Some (Json.Bool b) -> b
                | _ -> false
              in
              (Json.want_str e "id", Json.want_num e "seconds", status, resumed)
            in
            let timed = List.map entry exps in
            let count p = List.length (List.filter p timed) in
            let n_failed = count (fun (_, _, s, _) -> s = "failed") in
            let n_interrupted = count (fun (_, _, s, _) -> s = "interrupted") in
            let n_resumed = count (fun (_, _, _, r) -> r) in
            Printf.printf "\nexperiments (%d" (List.length timed);
            if n_resumed > 0 then Printf.printf ", %d resumed" n_resumed;
            if n_failed > 0 then Printf.printf ", %d FAILED" n_failed;
            if n_interrupted > 0 then
              Printf.printf ", %d interrupted" n_interrupted;
            print_endline ", slowest first)";
            let annotate status resumed =
              (if resumed then "  (resumed)" else "")
              ^ match status with "ok" -> "" | s -> "  " ^ String.uppercase_ascii s
            in
            List.iter
              (fun (id, _, status, resumed) ->
                if status = "failed" then
                  match
                    List.find_opt
                      (fun e -> Json.want_str e "id" = id)
                      exps
                  with
                  | Some e -> (
                      match Json.field_opt e "error" with
                      | Some (Json.Str msg) ->
                          Printf.printf "  %-22s FAILED: %s%s\n" id msg
                            (if resumed then " (resumed)" else "")
                      | _ -> ())
                  | None -> ())
              timed;
            let slowest =
              List.sort (fun (_, a, _, _) (_, b, _, _) -> Float.compare b a) timed
            in
            List.iteri
              (fun i (id, s, status, resumed) ->
                if i < 10 then
                  Printf.printf "  %-22s %7.1fs%s\n" id s
                    (annotate status resumed))
              slowest;
            if List.length slowest > 10 then
              Printf.printf "  ... %d more\n" (List.length slowest - 10)
        | _ -> raise (Json.Malformed "experiments: expected array"));
        report_counters m
      with Json.Malformed msg -> obs_fail path msg)

(* Load a trace through Profile.read_file, turning an unreadable or
   malformed-complete-line file into exit 1. Truncation handling is the
   caller's business: the linter treats it as crash evidence, the
   profiler works with whatever complete spans survive. *)
let load_trace path =
  if not (Sys.file_exists path) then obs_fail path "no such trace file";
  match Dut_obs.Profile.read_file path with
  | Error msg -> obs_fail path msg
  | Ok r -> r

let trace_warnings path (r : Dut_obs.Profile.read_result) =
  if r.spans = [] then
    Printf.printf
      "  WARNING: empty trace — the traced run emitted no spans (nothing \
       ran, or the process died before the first span closed)\n";
  if r.truncated then
    Printf.printf
      "  WARNING: trailing partial line — the traced process crashed \
       mid-write; the spans above are the complete prefix (%s)\n"
      path

let report_trace path =
  let r = load_trace path in
  let aggs = Dut_obs.Profile.aggregate r.spans in
  Printf.printf "trace %s: %d spans, %d names\n" path (List.length r.spans)
    (List.length aggs);
  if aggs <> [] then begin
    Printf.printf "  %-18s %7s %10s %10s %10s\n" "name" "count" "total" "self"
      "max";
    let s ns = Printf.sprintf "%9.2fs" (float_of_int ns /. 1e9) in
    List.iter
      (fun (a : Dut_obs.Profile.agg) ->
        Printf.printf "  %-18s %7d %10s %10s %10s\n" a.agg_name a.count
          (s a.total_ns) (s a.self_ns) (s a.max_ns))
      aggs
  end;
  trace_warnings path r;
  if r.truncated then exit 1

(* --profile: where does the wall time go? Per-name self time against
   the manifest's summed-CPU accounting. The run-all umbrella span is
   excluded from the reconciliation sum: under --jobs its children run
   on other domains as roots (their time is already counted once), and
   its own self time is scheduling wait, which cpu_seconds never
   includes. *)
let report_profile ~trace_path ~manifest_path ~top =
  let r = load_trace trace_path in
  let aggs = Dut_obs.Profile.aggregate r.spans in
  Printf.printf "profile %s: %d spans, %d names\n" trace_path
    (List.length r.spans) (List.length aggs);
  trace_warnings trace_path r;
  if aggs <> [] then begin
    let total_self = Dut_obs.Profile.total_self_ns r.spans in
    Printf.printf "  %-18s %7s %10s %10s %7s %10s\n" "name" "count" "total"
      "self" "self%" "max";
    let s ns = Printf.sprintf "%9.2fs" (float_of_int ns /. 1e9) in
    List.iteri
      (fun i (a : Dut_obs.Profile.agg) ->
        if i < top then
          Printf.printf "  %-18s %7d %10s %10s %6.1f%% %10s\n" a.agg_name
            a.count (s a.total_ns) (s a.self_ns)
            (if total_self > 0 then
               100. *. float_of_int a.self_ns /. float_of_int total_self
             else 0.)
            (s a.max_ns))
      aggs;
    if List.length aggs > top then
      Printf.printf "  ... %d more names (raise --top)\n"
        (List.length aggs - top);
    let wall = float_of_int (Dut_obs.Profile.wall_ns r.spans) /. 1e9 in
    Printf.printf "wall (trace extent) %.2fs; summed self %.2fs\n" wall
      (float_of_int total_self /. 1e9);
    let self_excl =
      float_of_int
        (Dut_obs.Profile.total_self_ns ~except:[ "run-all" ] r.spans)
      /. 1e9
    in
    match
      if Sys.file_exists manifest_path then
        match Dut_obs.Json.parse (read_file manifest_path) with
        | exception _ -> None
        | m -> (
            match Dut_obs.Json.field_opt m "cpu_seconds" with
            | Some (Dut_obs.Json.Num cpu) -> Some cpu
            | _ -> None)
      else None
    with
    | Some cpu when cpu > 0. ->
        let delta = 100. *. Float.abs (self_excl -. cpu) /. cpu in
        Printf.printf
          "reconcile: summed self excl run-all %.2fs vs manifest summed-cpu \
           %.2fs (delta %.2f%%)\n"
          self_excl cpu delta
    | _ ->
        Printf.printf
          "reconcile: no readable cpu_seconds in %s — skipped\n" manifest_path
  end

(* --flame: folded stacks on stdout, one "root;child;leaf self_ns" line
   per distinct stack — pipe into any flamegraph renderer. *)
let report_flame trace_path =
  let r = load_trace trace_path in
  List.iter
    (fun (stack, self_ns) -> Printf.printf "%s %d\n" stack self_ns)
    (Dut_obs.Profile.folded r.spans)

(* -- Timeline rendering -------------------------------------------------- *)

let report_timeline path =
  let open Dut_obs in
  if not (Sys.file_exists path) then
    obs_fail path "no such timeline (run with --sample-interval-ms first)";
  let lines =
    String.split_on_char '\n' (read_file path)
    |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | [] -> obs_fail path "empty timeline file"
  | header :: samples -> (
      match Json.parse header with
      | exception Json.Malformed msg -> obs_fail path msg
      | h ->
          (match Json.field_opt h "schema" with
          | Some (Json.Str "dut-timeline/1") -> ()
          | _ -> obs_fail path "not a dut-timeline/1 file");
          let started_ns = Json.want_num h "started_ns" in
          let interval_ms = Json.want_num h "interval_ms" in
          let parsed =
            List.mapi
              (fun i line ->
                match Json.parse line with
                | exception Json.Malformed msg ->
                    obs_fail path (Printf.sprintf "sample %d: %s" (i + 1) msg)
                | j -> j)
              samples
          in
          let span_s =
            match List.rev parsed with
            | last :: _ -> (Json.want_num last "t_ns" -. started_ns) /. 1e9
            | [] -> 0.
          in
          Printf.printf "timeline %s (dut-timeline/1, every %.0fms): %d \
                         samples over %.1fs\n"
            path interval_ms (List.length parsed) span_s;
          if parsed <> [] then begin
            Printf.printf "  %8s %10s %8s %9s %10s %10s %10s\n" "t(s)"
              "dtrials" "dtasks" "idle(ms)" "minor(Mw)" "major(Mw)"
              "task p95";
            List.iter
              (fun j ->
                let t = (Json.want_num j "t_ns" -. started_ns) /. 1e9 in
                let counter name =
                  match Json.field_opt j "counters" with
                  | Some c -> (
                      match Json.field_opt c name with
                      | Some (Json.Num f) -> f
                      | _ -> 0.)
                  | None -> 0.
                in
                let gc name =
                  match Json.field_opt j "gc" with
                  | Some g -> (
                      match Json.field_opt g name with
                      | Some (Json.Num f) -> f
                      | _ -> 0.)
                  | None -> 0.
                in
                let task_p95 =
                  match Json.field_opt j "histograms" with
                  | Some hs -> (
                      match Json.field_opt hs "pool.task_ns" with
                      | Some hp -> hist_cell ~ns:true hp "p95"
                      | None -> "-")
                  | None -> "-"
                in
                Printf.printf "  %8.2f %10.0f %8.0f %9.1f %10.2f %10.2f %10s\n"
                  t
                  (counter "mc.trials_used")
                  (counter "pool.tasks_claimed")
                  (counter "pool.idle_ns" /. 1e6)
                  (gc "minor_words" /. 1e6)
                  (gc "major_words" /. 1e6)
                  task_p95)
              parsed
          end)

(* -- Bench history / regressions ----------------------------------------- *)

let history_schema = "dut-bench-history/1"

let report_regressions ~history ~last_k =
  let open Dut_obs in
  if not (Sys.file_exists history) then
    obs_fail history
      "no bench history (quick bench runs append to it: dune exec \
       bench/main.exe -- --engine --quick)";
  let rows =
    String.split_on_char '\n' (read_file history)
    |> List.filter (fun l -> String.trim l <> "")
    |> List.mapi (fun i line ->
           match Json.parse line with
           | exception Json.Malformed msg ->
               obs_fail history (Printf.sprintf "row %d: %s" (i + 1) msg)
           | j ->
               (match Json.field_opt j "schema" with
               | Some (Json.Str s) when s = history_schema -> ()
               | _ ->
                   obs_fail history
                     (Printf.sprintf "row %d: not a %s row" (i + 1)
                        history_schema));
               j)
  in
  let total = List.length rows in
  let rows =
    if total > last_k then
      List.filteri (fun i _ -> i >= total - last_k) rows
    else rows
  in
  Printf.printf "bench history %s: last %d of %d rows\n" history
    (List.length rows) total;
  let wall_of j =
    match Json.field_opt j "run_all_wall_s" with
    | Some (Json.Num f) -> Some f
    | _ -> None
  in
  let rate_of j =
    match Json.field_opt j "ingest_samples_per_s" with
    | Some (Json.Num f) -> Some f
    | _ -> None
  in
  Printf.printf "  %-24s %6s %12s %16s\n" "git" "jobs" "run-all(s)"
    "ingest(M/s)";
  List.iter
    (fun j ->
      let opt fmt = function Some f -> Printf.sprintf fmt f | None -> "-" in
      Printf.printf "  %-24s %6.0f %12s %16s\n"
        (try Json.want_str j "git" with _ -> "?")
        (try Json.want_num j "jobs" with _ -> 0.)
        (opt "%.2f" (wall_of j))
        (opt "%.2f" (Option.map (fun r -> r /. 1e6) (rate_of j))))
    rows;
  match List.rev rows with
  | [] | [ _ ] -> ()
  | newest :: older ->
      let best older of_row =
        List.fold_left
          (fun acc j ->
            match (of_row j, acc) with
            | Some v, Some b -> Some (Float.min v b)
            | Some v, None -> Some v
            | None, acc -> acc)
          None older
      in
      (match (wall_of newest, best older wall_of) with
      | Some now, Some best when now > 1.2 *. best ->
          Printf.printf
            "  WARNING: run-all wall %.2fs is %.0f%% above the best of the \
             previous rows (%.2fs) — possible regression\n"
            now
            (100. *. ((now /. best) -. 1.))
            best
      | _ -> ());
      (* Throughput regresses downward, so compare against the best
         (highest) earlier rate. *)
      let best_rate =
        List.fold_left
          (fun acc j ->
            match (rate_of j, acc) with
            | Some v, Some b -> Some (Float.max v b)
            | Some v, None -> Some v
            | None, acc -> acc)
          None older
      in
      (match (rate_of newest, best_rate) with
      | Some now, Some best when now < best /. 1.2 ->
          Printf.printf
            "  WARNING: ingest throughput %.2fM/s is %.0f%% below the best \
             of the previous rows (%.2fM/s) — possible regression\n"
            (now /. 1e6)
            (100. *. (1. -. (now /. best)))
            (best /. 1e6)
      | _ -> ())

(* Counters classified jobs-invariant in doc/observability.md: the
   engine's determinism contract makes their totals bit-equal across
   jobs counts, so two manifests of the same run configuration must
   agree on them — a mismatch is evidence the contract broke. *)
let jobs_invariant_counter name =
  let has_prefix p =
    String.length name >= String.length p
    && String.sub name 0 (String.length p) = p
  in
  List.exists has_prefix [ "mc."; "search."; "stream." ]

let counters_of path =
  let open Dut_obs in
  if not (Sys.file_exists path) then obs_fail path "no such manifest";
  match Json.parse (read_file path) with
  | exception Json.Malformed msg -> obs_fail path msg
  | exception Sys_error msg -> obs_fail path msg
  | m -> (
      match Json.field_opt m "counters" with
      | Some (Json.Obj kvs) ->
          List.filter_map
            (fun (k, v) ->
              match v with Json.Num f -> Some (k, f) | _ -> None)
            kvs
      | _ -> obs_fail path "counters: expected object")

let report_compare path_a path_b =
  let a = counters_of path_a and b = counters_of path_b in
  let names =
    List.sort_uniq String.compare
      (List.filter jobs_invariant_counter (List.map fst a @ List.map fst b))
  in
  if names = [] then begin
    Printf.printf "compare %s vs %s: no jobs-invariant counters in either\n"
      path_a path_b;
    exit 0
  end;
  let get kvs k = Option.value (List.assoc_opt k kvs) ~default:0. in
  let width =
    List.fold_left (fun w k -> max w (String.length k)) 7 names
  in
  Printf.printf "jobs-invariant counters: %s vs %s\n" path_a path_b;
  Printf.printf "  %-*s %14s %14s\n" width "counter" "A" "B";
  let mismatches =
    List.filter
      (fun k ->
        let va = get a k and vb = get b k in
        Printf.printf "  %-*s %14.0f %14.0f%s\n" width k va vb
          (if va = vb then "" else "   MISMATCH");
        va <> vb)
      names
  in
  if mismatches = [] then begin
    Printf.printf "all %d jobs-invariant counters agree\n" (List.length names);
    exit 0
  end
  else begin
    List.iter
      (fun k ->
        if k = "stream.sketch_merges" then
          Printf.printf
            "  WARNING: stream.sketch_merges differs between the runs — the \
             chunked merge sequence depended on the jobs count, breaking the \
             streaming determinism contract (doc/observability.md)\n"
        else
          Printf.printf
            "  WARNING: %s differs between the runs — classified \
             jobs-invariant in doc/observability.md\n"
            k)
      mismatches;
    exit 1
  end

let obs_report_cmd =
  let doc =
    "Summarise a run manifest and/or span trace as human-readable tables. \
     With $(b,--compare), diff the jobs-invariant counters of two manifests \
     and exit non-zero on any disagreement; with $(b,--timeline), render a \
     dut-timeline/1 sampling file; with $(b,--profile)/$(b,--flame), turn a \
     trace into per-span-name self-time attribution or folded flamegraph \
     stacks; with $(b,--regressions), compare recent bench-history rows."
  in
  let manifest_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "manifest" ] ~docv:"FILE"
          ~doc:
            (Printf.sprintf "Manifest to read (default %s)."
               Dut_obs.Manifest.default_path))
  in
  let trace_file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "JSONL trace to summarise; every line is validated, so a \
             non-zero exit means a malformed trace.")
  in
  let compare_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "compare" ] ~docv:"FILE"
          ~doc:
            "Second manifest: compare the jobs-invariant counters (mc.*, \
             search.*, stream.*) of $(b,--manifest) (or the default \
             manifest) against $(docv); print WARNING lines and exit 1 on \
             any mismatch.")
  in
  let timeline_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "timeline" ] ~docv:"FILE"
          ~doc:
            "Render a dut-timeline/1 sampling file (written by \
             $(b,--sample-interval-ms)) as an aligned time-series table.")
  in
  let profile_flag =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Aggregate $(b,--trace) into per-span-name \
             count/total/self-time (top $(b,--top) by self), and reconcile \
             the summed self time against the manifest's cpu_seconds.")
  in
  let flame_flag =
    Arg.(
      value & flag
      & info [ "flame" ]
          ~doc:
            "Emit $(b,--trace) as folded stacks (one \
             $(i,root;child;leaf self_ns) line per distinct stack) on \
             stdout, ready for standard flamegraph tooling.")
  in
  let top_arg =
    Arg.(
      value & opt int 15
      & info [ "top" ] ~docv:"N"
          ~doc:"Rows shown in the $(b,--profile) table (default 15).")
  in
  let regressions_arg =
    Arg.(
      value
      & opt ~vopt:(Some 8) (some int) None
      & info [ "regressions" ] ~docv:"K"
          ~doc:
            "Compare the last $(docv) rows (default 8) of the bench \
             history and print a WARNING when the newest run-all wall time \
             or ingest throughput regressed by more than 20%.")
  in
  let history_arg =
    Arg.(
      value
      & opt string (Filename.concat "results" "bench_history.jsonl")
      & info [ "history" ] ~docv:"FILE"
          ~doc:
            "Bench history read by $(b,--regressions) (default \
             results/bench_history.jsonl).")
  in
  let run manifest trace compare timeline profile flame top regressions
      history =
    let need_trace what =
      match trace with
      | Some t -> t
      | None -> obs_fail what "requires --trace FILE"
    in
    match (compare, timeline, flame, profile, regressions) with
    | _, _, _, _, Some k -> report_regressions ~history ~last_k:(max 1 k)
    | _, Some path, _, _, _ -> report_timeline path
    | _, _, true, _, _ -> report_flame (need_trace "--flame")
    | _, _, _, true, _ ->
        report_profile
          ~trace_path:(need_trace "--profile")
          ~manifest_path:
            (Option.value manifest ~default:Dut_obs.Manifest.default_path)
          ~top:(max 1 top)
    | Some path_b, _, _, _, _ ->
        report_compare
          (Option.value manifest ~default:Dut_obs.Manifest.default_path)
          path_b
    | None, None, false, false, None -> (
        match (manifest, trace) with
        | None, None -> report_manifest Dut_obs.Manifest.default_path
        | _ ->
            Option.iter report_manifest manifest;
            (match (manifest, trace) with
            | Some _, Some _ -> print_newline ()
            | _ -> ());
            Option.iter report_trace trace)
  in
  Cmd.v (Cmd.info "obs-report" ~doc)
    Term.(
      const run $ manifest_arg $ trace_file_arg $ compare_arg $ timeline_arg
      $ profile_flag $ flame_flag $ top_arg $ regressions_arg $ history_arg)

let main =
  let doc =
    "Reproduction experiments for 'Can Distributed Uniformity Testing Be \
     Local?' (PODC 2019)"
  in
  Cmd.group (Cmd.info "dut" ~doc)
    [
      list_cmd;
      run_cmd;
      run_all_cmd;
      bounds_cmd;
      verify_cmd;
      serve_cmd;
      query_cmd;
      stream_cmd;
      obs_report_cmd;
    ]

let () =
  (* Backtraces feed the # ERROR blocks failure isolation renders; the
     flag costs nothing unless something actually raises. *)
  Printexc.record_backtrace true;
  (* Out-of-range option values (--trials 0, --jobs 0) surface as
     Invalid_argument from Config.make; report them as CLI errors
     rather than cmdliner's "internal error" backtrace. *)
  try exit (Cmd.eval ~catch:false main)
  with
  | Invalid_argument msg ->
      Printf.eprintf "dut: %s\n" msg;
      exit Cmd.Exit.cli_error
  | Failure msg ->
      (* e.g. `dut serve` refusing a socket a live server answers on *)
      Printf.eprintf "dut: %s\n" msg;
      exit 1
