(* Command-line driver: list and run the reproduction experiments.

   dut list
   dut run T1-any-rule [--profile fast|full] [--seed N] [--csv] [--jobs N]
   dut run-all [--profile ...] [--jobs N] *)

open Cmdliner

let profile_conv =
  let parse s =
    match Dut_experiments.Config.profile_of_string s with
    | Some p -> Ok p
    | None -> Error (`Msg (Printf.sprintf "unknown profile %S (fast|full)" s))
  in
  let print fmt p =
    Format.pp_print_string fmt (Dut_experiments.Config.profile_to_string p)
  in
  Arg.conv (parse, print)

let profile_arg =
  Arg.(
    value
    & opt profile_conv Dut_experiments.Config.Fast
    & info [ "p"; "profile" ] ~docv:"PROFILE"
        ~doc:"Parameter profile: $(b,fast) (seconds) or $(b,full) (the sizes in EXPERIMENTS.md).")

let seed_arg =
  Arg.(
    value & opt int 2019
    & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"Root random seed.")

let csv_arg =
  Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of aligned tables.")

let trials_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "t"; "trials" ] ~docv:"TRIALS"
        ~doc:"Override the profile's Monte-Carlo trials per estimate.")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"JOBS"
        ~doc:
          "Domains used by the execution engine (default: $(b,DUT_JOBS), \
           else 1). Results are bit-identical for every value.")

let no_adaptive_arg =
  Arg.(
    value & flag
    & info [ "no-adaptive" ]
        ~doc:
          "Spend the full Monte-Carlo budget on every probe instead of \
           stopping once the Wilson interval is decisive. Reproduces the \
           fixed-budget runs of earlier revisions bit for bit.")

let cold_search_arg =
  Arg.(
    value & flag
    & info [ "cold-search" ]
        ~doc:
          "Disable warm-starting grid searches from the previous grid \
           point's critical q; every point cold-doubles from 1.")

let no_timings_arg =
  Arg.(
    value & flag
    & info [ "no-timings" ]
        ~doc:
          "Omit the wall-clock comment lines, making the output \
           byte-reproducible across runs and jobs counts.")

let run_one ~profile ~seed ~csv ~timings ~adaptive ~warm_start ?trials ?jobs id
    =
  match Dut_experiments.Registry.find id with
  | None ->
      Printf.eprintf "unknown experiment %S; try `dut list`\n" id;
      exit 1
  | Some exp ->
      let cfg =
        Dut_experiments.Config.make ~seed ?trials ?jobs ~adaptive ~warm_start
          profile
      in
      ignore (Dut_experiments.Runner.run_to_channel ~csv ~timings cfg exp stdout)

let list_cmd =
  let doc = "List the available experiments." in
  let run () =
    List.iter
      (fun e ->
        Printf.printf "%-20s %s\n    %s\n" e.Dut_experiments.Exp.id e.title
          e.statement)
      Dut_experiments.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let run_cmd =
  let doc = "Run one experiment by id." in
  let id_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT-ID")
  in
  let run profile seed csv trials jobs no_timings no_adaptive cold_search id =
    run_one ~profile ~seed ~csv ~timings:(not no_timings)
      ~adaptive:(not no_adaptive) ~warm_start:(not cold_search) ?trials ?jobs
      id
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ profile_arg $ seed_arg $ csv_arg $ trials_arg $ jobs_arg
      $ no_timings_arg $ no_adaptive_arg $ cold_search_arg $ id_arg)

let run_all_cmd =
  let doc =
    "Run every experiment in the registry (up to --jobs concurrently)."
  in
  let run profile seed csv trials jobs no_timings no_adaptive cold_search =
    let cfg =
      Dut_experiments.Config.make ~seed ?trials ?jobs
        ~adaptive:(not no_adaptive) ~warm_start:(not cold_search) profile
    in
    ignore
      (Dut_experiments.Runner.run_all_to_channel ~csv ~timings:(not no_timings)
         cfg stdout)
  in
  Cmd.v (Cmd.info "run-all" ~doc)
    Term.(
      const run $ profile_arg $ seed_arg $ csv_arg $ trials_arg $ jobs_arg
      $ no_timings_arg $ no_adaptive_arg $ cold_search_arg)

let bounds_cmd =
  let doc = "Print every bound of the paper for given parameters." in
  let n_arg = Arg.(value & opt int 4096 & info [ "n" ] ~docv:"N" ~doc:"Universe size.") in
  let k_arg = Arg.(value & opt int 64 & info [ "k" ] ~docv:"K" ~doc:"Number of players.") in
  let eps_arg =
    Arg.(value & opt float 0.25 & info [ "e"; "eps" ] ~docv:"EPS" ~doc:"Proximity parameter.")
  in
  let run n k eps =
    let line name v note = Printf.printf "%-34s %12.1f   %s\n" name v note in
    Printf.printf "bounds for n=%d, k=%d, eps=%.3f (constants set to 1)\n\n" n k eps;
    line "centralized [16]" (Dut_core.Bounds.centralized ~n ~eps) "samples, one tester";
    line "Thm 1.1 lower (any rule)"
      (Dut_core.Bounds.thm11_lower ~n ~k ~eps)
      (if Dut_core.Bounds.thm11_applies ~n ~k ~eps then "per player"
       else "per player (outside k <= n/eps^2!)");
    line "FMO threshold upper"
      (Dut_core.Bounds.fmo_threshold_upper ~n ~k ~eps)
      "per player: matches Thm 1.1";
    line "Thm 1.2 lower (AND rule)"
      (Dut_core.Bounds.thm12_and_lower ~n ~k ~eps)
      "per player";
    line "FMO AND upper" (Dut_core.Bounds.fmo_and_upper ~n ~k ~eps) "per player";
    List.iter
      (fun t ->
        line
          (Printf.sprintf "Thm 1.3 lower (T=%d)" t)
          (Dut_core.Bounds.thm13_threshold_lower ~n ~k ~eps ~t)
          "per player")
      [ 1; 4; 16 ];
    List.iter
      (fun r ->
        line
          (Printf.sprintf "Thm 6.4 lower (r=%d bits)" r)
          (Dut_core.Bounds.thm64_rbit_lower ~n ~k ~eps ~r)
          "per player")
      [ 1; 2; 4 ];
    List.iter
      (fun q ->
        line
          (Printf.sprintf "Thm 1.4 learning nodes (q=%d)" q)
          (Dut_core.Bounds.thm14_learning_nodes ~n ~q)
          "players")
      [ 1; 4; 16 ];
    line "ACT single-sample nodes (2 bits)"
      (Dut_core.Bounds.act_single_sample_nodes ~n ~eps ~bits:2)
      "players at q=1";
    line "async time (k unit rates)"
      (Dut_core.Bounds.async_time_lower ~n ~eps ~rates:(Array.make k 1.))
      "time units"
  in
  Cmd.v (Cmd.info "bounds" ~doc) Term.(const run $ n_arg $ k_arg $ eps_arg)

let verify_cmd =
  let doc =
    "Check the paper's exact claims (F1/F2/F3/F5, T8, T11) and exit non-zero \
     on any violation."
  in
  let run profile seed =
    let cfg = Dut_experiments.Config.make ~seed profile in
    let verdicts = Dut_experiments.Verifier.verify_all cfg in
    List.iter
      (fun v ->
        if v.Dut_experiments.Verifier.failures = [] then
          Printf.printf "PASS %-18s (%d checks)\n" v.experiment v.checks
        else begin
          Printf.printf "FAIL %-18s (%d checks, %d failures)\n" v.experiment
            v.checks
            (List.length v.failures);
          List.iter (fun f -> Printf.printf "     %s\n" f) v.failures
        end)
      verdicts;
    if Dut_experiments.Verifier.all_passed verdicts then begin
      print_endline "all exact claims verified";
      exit 0
    end
    else exit 1
  in
  Cmd.v (Cmd.info "verify" ~doc) Term.(const run $ profile_arg $ seed_arg)

let main =
  let doc =
    "Reproduction experiments for 'Can Distributed Uniformity Testing Be \
     Local?' (PODC 2019)"
  in
  Cmd.group (Cmd.info "dut" ~doc)
    [ list_cmd; run_cmd; run_all_cmd; bounds_cmd; verify_cmd ]

let () =
  (* Out-of-range option values (--trials 0, --jobs 0) surface as
     Invalid_argument from Config.make; report them as CLI errors
     rather than cmdliner's "internal error" backtrace. *)
  try exit (Cmd.eval ~catch:false main)
  with Invalid_argument msg ->
    Printf.eprintf "dut: %s\n" msg;
    exit Cmd.Exit.cli_error
