(* dut-monitor: an online drift monitor built on the distributed tester.

   Simulates a fleet of k agents sampling a key stream that starts
   uniform and, at a chosen epoch, drifts to a Paninski-style skew. Each
   epoch, every agent draws q fresh samples and votes; the coordinator
   applies the calibrated count rule and (with majority-of-r smoothing)
   raises an alarm. The tool prints the per-epoch verdicts and the
   detection latency — the library's intended deployment shape, end to
   end.

     dune exec bin/dut_monitor.exe -- --epochs 30 --drift-at 15
     dune exec bin/dut_monitor.exe -- -n 1024 -k 64 --eps 0.2 *)

open Cmdliner

(* Monitor telemetry, on the shared Dut_obs vocabulary: per-epoch
   simulation latency accumulates on a counter, the calibrated referee
   thresholds and the detection outcome land on gauges. `--metrics`
   dumps the table to stderr; `--trace` writes one span per epoch. *)
let m_epoch_ns = Dut_obs.Metrics.counter "monitor.epoch_ns"

let m_epochs = Dut_obs.Metrics.counter "monitor.epochs"

let m_false_alarms = Dut_obs.Metrics.counter "monitor.false_alarms"

let g_fraction_cutoff = Dut_obs.Metrics.gauge "monitor.fraction_cutoff"

let g_reject_cutoff = Dut_obs.Metrics.gauge "monitor.reject_cutoff_full_fleet"

let g_latency = Dut_obs.Metrics.gauge "monitor.detection_latency_epochs"

let run n k eps q_opt epochs drift_at smoothing crash seed jobs trace metrics =
  if drift_at < 1 || drift_at > epochs then begin
    Printf.eprintf "drift epoch must be within [1, epochs]\n";
    exit 1
  end;
  (* The hard-family drift model needs a power-of-two universe: refuse
     anything else instead of silently rounding n down. *)
  if n < 4 || n land (n - 1) <> 0 then begin
    let suggestion =
      let rec up p = if p >= n then p else up (2 * p) in
      up 4
    in
    Printf.eprintf
      "dut-monitor: -n %d is not a power of two >= 4 (the Paninski drift \
       family pairs up a power-of-two universe); try -n %d\n"
      n suggestion;
    exit 1
  end;
  (match jobs with
  | Some j -> Dut_engine.Parallel.set_default_jobs j
  | None -> ());
  Dut_obs.Span.set_sink trace;
  let rng = Dut_prng.Rng.create seed in
  let ell =
    let rec log2 acc m = if m <= 1 then acc else log2 (acc + 1) (m / 2) in
    log2 0 n - 1
  in
  let q =
    match q_opt with
    | Some q -> q
    | None -> 4 * int_of_float (Dut_core.Bounds.fmo_threshold_upper ~n ~k ~eps)
  in
  Printf.printf
    "monitor: %d agents x %d samples/epoch over %d keys (eps=%.2f, smoothing=last %d)\n"
    k q n eps smoothing;
  if crash > 0. then
    Printf.printf "agents crash independently with probability %.2f per epoch\n"
      crash;
  let crash_tester =
    Dut_core.Crash_tester.make ~n ~eps ~k ~q ~crash_prob:crash
      ~calibration_trials:300 ~rng:(Dut_prng.Rng.split rng)
  in
  (* The calibrated referee thresholds, as gauges: the per-player null
     reject rate the cutoffs are built from, and the reject-count
     cutoff for a full (no-crash) fleet. *)
  Dut_obs.Metrics.set_gauge g_fraction_cutoff
    (Dut_core.Crash_tester.fraction_cutoff crash_tester);
  Dut_obs.Metrics.set_gauge g_reject_cutoff
    (float_of_int (Dut_core.Crash_tester.reject_cutoff crash_tester ~live:k));
  let drifted = Dut_dist.Paninski.random ~ell ~eps rng in
  Printf.printf "stream drifts at epoch %d (l1 distance %.2f from uniform)\n\n"
    drift_at eps;
  let window = Queue.create () in
  let alarm_epoch = ref None in
  for epoch = 1 to epochs do
    let drifted_now = epoch >= drift_at in
    let epoch_start = Dut_obs.Span.now_ns () in
    let accept =
      Dut_obs.Span.with_ ~name:"epoch"
        ~attrs:
          [
            ("epoch", Dut_obs.Json.int epoch);
            ("drifted", Dut_obs.Json.Bool drifted_now);
          ]
        (fun () ->
          let source =
            if drifted_now then Dut_protocol.Network.of_paninski drifted
            else Dut_protocol.Network.uniform_source ~n
          in
          Dut_core.Crash_tester.accepts crash_tester (Dut_prng.Rng.split rng)
            source)
    in
    Dut_obs.Metrics.incr m_epochs;
    Dut_obs.Metrics.add m_epoch_ns (Dut_obs.Span.now_ns () - epoch_start);
    Queue.add accept window;
    if Queue.length window > smoothing then ignore (Queue.pop window);
    let rejects =
      Queue.fold (fun acc a -> if a then acc else acc + 1) 0 window
    in
    let alarm = 2 * rejects > Queue.length window in
    if alarm && !alarm_epoch = None && drifted_now then begin
      alarm_epoch := Some epoch;
      Dut_obs.Metrics.set_gauge g_latency (float_of_int (epoch - drift_at + 1))
    end;
    if alarm && not drifted_now then Dut_obs.Metrics.incr m_false_alarms;
    Printf.printf "epoch %3d  %-8s vote:%-7s window rejects %d/%d  %s\n" epoch
      (if drifted_now then "DRIFTED" else "uniform")
      (if accept then "accept" else "reject")
      rejects (Queue.length window)
      (if alarm then "<< ALARM" else "")
  done;
  print_newline ();
  (* The summary reads back the telemetry the loop emitted, so the
     printed numbers and the --metrics table can never disagree. *)
  (match !alarm_epoch with
  | Some e ->
      Printf.printf "alarm raised at epoch %d: detection latency %d epochs\n" e
        (e - drift_at + 1)
  | None -> print_endline "drift was never flagged (raise q or smoothing)");
  Printf.printf "false alarms before the drift: %d\n"
    (Dut_obs.Metrics.value "monitor.false_alarms");
  if metrics then Dut_obs.Metrics.dump stderr;
  Dut_obs.Span.set_sink None

let n_arg =
  Arg.(
    value & opt int 256
    & info [ "n" ] ~docv:"N" ~doc:"Universe size (must be a power of two >= 4).")

let k_arg = Arg.(value & opt int 32 & info [ "k" ] ~docv:"K" ~doc:"Number of agents.")

let eps_arg =
  Arg.(value & opt float 0.3 & info [ "e"; "eps" ] ~docv:"EPS" ~doc:"Drift threshold (l1).")

let q_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "q" ] ~docv:"Q" ~doc:"Samples per agent per epoch (default: 4x the theory bound).")

let epochs_arg =
  Arg.(value & opt int 24 & info [ "epochs" ] ~docv:"E" ~doc:"Number of epochs to simulate.")

let drift_arg =
  Arg.(value & opt int 13 & info [ "drift-at" ] ~docv:"E" ~doc:"Epoch at which the stream drifts.")

let smoothing_arg =
  Arg.(
    value & opt int 3
    & info [ "smoothing" ] ~docv:"R" ~doc:"Alarm on a majority of the last R epoch verdicts.")

let crash_arg =
  Arg.(
    value & opt float 0.
    & info [ "crash" ] ~docv:"PROB"
        ~doc:"Per-epoch probability that an agent crashes (sends nothing).")

let seed_arg = Arg.(value & opt int 2019 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"JOBS"
        ~doc:
          "Domains used to parallelise referee calibration (default: \
           $(b,DUT_JOBS), else 1). Verdicts are bit-identical for every \
           value.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a JSON Lines span trace (one span per epoch) to $(docv); \
           stdout is unchanged.")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Dump the final counter/gauge table (monitor.*, mc.*, pool.*) to \
           stderr after the run.")

let cmd =
  let doc = "Online uniformity-drift monitor built on the distributed tester." in
  Cmd.v
    (Cmd.info "dut-monitor" ~doc)
    Term.(
      const run $ n_arg $ k_arg $ eps_arg $ q_arg $ epochs_arg $ drift_arg
      $ smoothing_arg $ crash_arg $ seed_arg $ jobs_arg $ trace_arg
      $ metrics_arg)

let () = exit (Cmd.eval cmd)
