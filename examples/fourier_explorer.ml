(* A guided tour of the paper's Fourier machinery on a universe small
   enough to print: n = 8 (two copies of the cube {-1,1}^2).

   Follows Sections 3-5: the hard family nu_z, its character expansion
   (Claim 3.1), a player function G, the drift nu_z(G) - mu(G) through
   Lemma 4.1, the evenly-covered combinatorics, and Lemma 5.1's bound.

   Run with:  dune exec examples/fourier_explorer.exe *)

let () =
  let rng = Dut_prng.Rng.create 3 in
  let ell = 2 in
  let n = 1 lsl (ell + 1) in
  let eps = 0.4 in
  let q = 3 in

  (* -- Section 3: the hard instance. -- *)
  let d = Dut_dist.Paninski.random ~ell ~eps rng in
  Printf.printf "== the hard instance nu_z (n = %d, eps = %.1f) ==\n" n eps;
  Printf.printf "z = [%s]\n"
    (String.concat "; "
       (Array.to_list (Array.map (fun s -> if s > 0 then "+1" else "-1")
          (Dut_dist.Paninski.z d))));
  for i = 0 to n - 1 do
    let x, s = Dut_dist.Paninski.decode i in
    Printf.printf "  nu_z(x=%d, s=%+d) = %.4f  (uniform: %.4f)\n" x s
      (Dut_dist.Paninski.prob d i)
      (1. /. float_of_int n)
  done;
  Printf.printf "l1 distance from uniform: %.3f (exactly eps)\n\n"
    (Dut_dist.Distance.distance_to_uniformity (Dut_dist.Paninski.pmf d));

  (* -- Claim 3.1: the product law as a character sum. -- *)
  let tuple = [| 0; 3; 0 |] in
  Printf.printf "== Claim 3.1 on the tuple (0, 3, 0) ==\n";
  Printf.printf "  direct product:      %.8f\n" (Dut_dist.Paninski.tuple_prob d tuple);
  Printf.printf "  character expansion: %.8f\n\n"
    (Dut_dist.Paninski.tuple_prob_fourier d tuple);

  (* -- Section 4: a player function and its drift. -- *)
  let g = Dut_core.Exact.collision_acceptor ~ell ~q ~cutoff:1 in
  Printf.printf "== the collision-accepting player (q = %d) ==\n" q;
  Printf.printf "  mu(G)   = %.4f  (acceptance under uniform)\n"
    (Dut_core.Exact.mu g);
  Printf.printf "  nu_z(G) = %.4f  (acceptance under the hard instance)\n"
    (Dut_core.Exact.nu g d);
  Printf.printf "  drift via direct sum:   %+.6f\n"
    (Dut_core.Exact.nu g d -. Dut_core.Exact.mu g);
  Printf.printf "  drift via Lemma 4.1:    %+.6f  (the Fourier identity)\n\n"
    (Dut_core.Exact.diff_fourier g d);

  (* -- Section 5: evenly covered multisets. -- *)
  Printf.printf "== evenly-covered combinatorics (m = %d, q = %d) ==\n" (n / 2) q;
  let x_with = [| 1; 1; 0 |] and x_without = [| 1; 2; 0 |] in
  Printf.printf "  x = (1,1,0), S = {0,1}: evenly covered? %b\n"
    (Dut_boolcube.Even_cover.evenly_covered ~x:x_with ~s:0b011);
  Printf.printf "  x = (1,2,0), S = {0,1}: evenly covered? %b\n"
    (Dut_boolcube.Even_cover.evenly_covered ~x:x_without ~s:0b011);
  Printf.printf "  a_1((1,1,0)) = %d subsets of size 2 evenly covered\n"
    (Dut_boolcube.Even_cover.a_r ~x:x_with ~r:1);
  Printf.printf "  |X_S| for |S| = 2: exact %.0f, Prop 5.2 bound %.0f\n\n"
    (Dut_boolcube.Even_cover.count_x_s ~m:(n / 2) ~q ~s_size:2)
    (Dut_boolcube.Even_cover.x_s_upper_bound ~m:(n / 2) ~q ~s_size:2);

  (* -- Lemma 5.1, averaged over every z. -- *)
  Printf.printf "== Lemma 5.1, exact over all %d perturbations ==\n"
    (1 lsl (n / 2));
  let lhs = Float.abs (Dut_core.Exact.mean_diff_over_z g ~eps) in
  let rhs =
    Dut_core.Bounds.lemma51_rhs ~q ~n ~eps ~var_g:(Dut_core.Exact.variance g)
  in
  Printf.printf "  |E_z nu_z(G) - mu(G)| = %.6f\n" lhs;
  Printf.printf "  4 q eps^2/sqrt(n) sqrt(var G) = %.6f\n" rhs;
  Printf.printf "  ratio = %.3f (<= 1: the lemma, verified exactly)\n\n" (lhs /. rhs);

  (* -- Bonus: the machinery behind the level inequality. -- *)
  Printf.printf "== hypercontractivity (behind Lemma 5.4) ==\n";
  let table =
    Array.init 256 (fun i -> if i land 21 = 0 then 1. else 0.)
  in
  List.iter
    (fun rho ->
      Printf.printf "  |T_%.1f f|_2 / |f|_%.2f = %.4f (Bonami-Beckner says <= 1)\n"
        rho
        (1. +. (rho *. rho))
        (Dut_boolcube.Fourier.hypercontractive_ratio table ~rho))
    [ 0.3; 0.6; 0.9 ]
