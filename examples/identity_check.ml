(* Identity testing through the uniformity reduction — the completeness
   property from the paper's abstract, as a user would consume it.

   Scenario: a service's request mix is supposed to follow a known
   Zipf(1) popularity profile (capacity was provisioned for it). We
   verify incoming traffic against the profile using only a uniformity
   tester, by flattening samples through the Goldreich reduction.

   Run with:  dune exec examples/identity_check.exe *)

let () =
  let rng = Dut_prng.Rng.create 21 in
  let n = 128 in
  let eps = 0.3 in
  let target = Dut_dist.Families.zipf ~n ~s:1. in

  let reduction = Dut_testers.Identity.make ~target ~eps in
  let samples_needed = Dut_testers.Identity.recommended_samples ~n ~eps in
  Printf.printf "target: Zipf(1) over %d request types\n" n;
  Printf.printf "reduction: flattened domain m = %d, %d samples per check\n\n"
    (Dut_testers.Identity.flattened_size reduction)
    samples_needed;

  let check name traffic =
    let sampler = Dut_dist.Sampler.of_pmf traffic in
    let verdict =
      Dut_testers.Identity.test reduction target rng
        (Dut_dist.Sampler.draw_many sampler rng samples_needed)
    in
    Printf.printf "%-28s l1 from target %.3f   verdict: %s\n" name
      (Dut_dist.Distance.l1 traffic target)
      (if verdict then "matches profile" else "DEVIATES")
  in

  check "traffic = provisioned mix" target;
  let drifted, _ = Dut_dist.Families.perturb_pairwise rng ~eps target in
  check "traffic with l1-0.3 drift" drifted;
  check "uniform traffic" (Dut_dist.Pmf.uniform n);

  print_newline ();
  (* The same reduction serves ANY target: swap profiles, keep the
     tester. *)
  let other = Dut_dist.Families.step ~n ~heavy_fraction:0.1 ~heavy_mass:0.8 in
  let reduction2 = Dut_testers.Identity.make ~target:other ~eps in
  let verdict =
    Dut_testers.Identity.test reduction2 other rng
      (Dut_dist.Sampler.draw_many (Dut_dist.Sampler.of_pmf other) rng samples_needed)
  in
  Printf.printf "swapped to a hot-spot profile, same tester underneath: %s\n"
    (if verdict then "matches profile" else "DEVIATES");
  print_endline "(uniformity testing is complete for identity testing: [11])"
