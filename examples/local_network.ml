(* Uniformity testing on an actual network: the LOCAL-model tester of
   [7]'s reduction, executed on the message-passing simulator over a
   6x6 sensor grid, with every cost measured rather than assumed.

   Run with:  dune exec examples/local_network.exe *)

let () =
  let rng = Dut_prng.Rng.create 14 in
  let ell = 7 in
  let n = 1 lsl (ell + 1) in
  let eps = 0.3 in
  let graph = Dut_netsim.Graph.grid 6 6 in
  let k = Dut_netsim.Graph.n graph in
  let q = 6 * int_of_float (Dut_core.Bounds.fmo_threshold_upper ~n ~k ~eps) in

  Printf.printf "topology: 6x6 grid, %d nodes, diameter %d\n" k
    (Dut_netsim.Graph.diameter graph);
  Printf.printf "each node: %d samples over %d bins; one-bit votes up a BFS tree\n\n"
    q n;

  let tester =
    Dut_netsim.Local_tester.make ~graph ~n ~eps ~q ~calibration_trials:300
      ~rng:(Dut_prng.Rng.split rng)
  in

  let show name source =
    (* Majority of 5 independent executions (standard amplification of
       the 2/3 guarantee); costs are per execution. *)
    let runs =
      List.init 5 (fun _ ->
          Dut_netsim.Local_tester.run tester (Dut_prng.Rng.split rng) source)
    in
    let accepts = List.length (List.filter (fun r -> r.Dut_netsim.Local_tester.accept) runs) in
    let r = List.hd runs in
    Printf.printf "%-18s verdict: %-7s (%d/5 rounds accepted)\n" name
      (if accepts >= 3 then "accept" else "REJECT")
      accepts;
    Printf.printf
      "%-18s per run: %d comm rounds, %d messages, widest message %d bits\n" "" r.rounds
      r.messages r.max_message_bits;
    Printf.printf "%-18s LOCAL time = %d samples + %d rounds = %d; all %d nodes agree: %b\n"
      "" q r.rounds r.local_time k r.all_agree
  in

  show "uniform readings" (Dut_protocol.Network.uniform_source ~n);
  let drifted = Dut_dist.Paninski.random ~ell ~eps rng in
  show "drifted readings" (Dut_protocol.Network.of_paninski drifted);

  print_newline ();
  Printf.printf "the widest message is a subtree reject count (<= %d), so the same\n" k;
  Printf.printf "execution is CONGEST(log n)-legal; on a path the 2h+1 = %d aggregation\n"
    ((2 * Dut_netsim.Graph.diameter (Dut_netsim.Graph.path k)) + 1);
  Printf.printf "rounds would dominate instead (see experiment T13)\n"
