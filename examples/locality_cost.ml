(* "Can distributed uniformity testing be local?" — the paper's title
   question, answered empirically in one run.

   For a fixed network we measure the empirical critical sample count of
   the same player logic under three referees of decreasing locality:
   the AND rule (fully local: any node's alarm decides), a small
   reject-threshold, and the calibrated count rule (fully global). The
   answer: locality costs samples, exactly as Theorems 1.1-1.3 predict.

   Run with:  dune exec examples/locality_cost.exe   (takes ~a minute) *)

let () =
  let rng = Dut_prng.Rng.create 5 in
  let ell = 7 in
  let n = 1 lsl (ell + 1) in
  let eps = 0.3 in
  let k = 32 in
  let trials = 100 in
  let level = 0.72 in
  let hi = 64 * int_of_float (Dut_core.Bounds.centralized ~n ~eps) in

  Printf.printf "n = %d, eps = %.2f, k = %d players\n" n eps k;
  Printf.printf "centralized baseline: ~%.0f samples (Paninski)\n\n"
    (Dut_core.Bounds.centralized ~n ~eps);

  let critical name make =
    match
      Dut_core.Evaluate.critical_q ~trials ~level ~rng:(Dut_prng.Rng.split rng)
        ~ell ~eps ~hi make
    with
    | Some q -> Printf.printf "%-34s q* = %4d samples/player\n%!" name q
    | None -> Printf.printf "%-34s q* not found below %d\n%!" name hi
  in

  critical "AND rule (local decision)" (fun q ->
      Dut_core.And_tester.tester ~n ~eps ~k ~q);
  critical "reject-threshold T=4" (fun q ->
      Dut_core.Threshold_tester.tester_fixed ~n ~eps ~k ~q ~t:4);
  critical "calibrated count (global)" (fun q ->
      Dut_core.Threshold_tester.tester_majority ~n ~eps ~k ~q
        ~calibration_trials:250 ~rng:(Dut_prng.Rng.split rng));

  Printf.printf "\nso: no, it cannot be local for free — the AND rule pays\n";
  Printf.printf "roughly the centralized cost, while the global rule gets the\n";
  Printf.printf "full sqrt(k) parallel speedup (Theorems 1.1 and 1.2)\n"
