(* Quickstart: test whether samples look uniform, centrally and then
   with a distributed network of players.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  let rng = Dut_prng.Rng.create 42 in

  (* A universe of n = 256 elements and a proximity parameter eps. *)
  let ell = 7 in
  let n = 1 lsl (ell + 1) in
  let eps = 0.3 in

  (* Two unknown distributions: the uniform one, and a hard instance
     that is exactly eps-far from uniform (Paninski family, Section 3 of
     the paper). *)
  let far = Dut_dist.Paninski.random ~ell ~eps rng in
  Printf.printf "universe n = %d, eps = %.2f\n" n eps;
  Printf.printf "l1 distance of the hard instance from uniform: %.3f\n\n"
    (Dut_dist.Distance.distance_to_uniformity (Dut_dist.Paninski.pmf far));

  (* 1. Centralized testing: one tester draws all the samples. *)
  let m = Dut_testers.Collision.recommended_samples ~n ~eps in
  let uniform_samples = Array.init m (fun _ -> Dut_prng.Rng.int rng n) in
  let far_samples = Dut_dist.Paninski.draw_many far rng m in
  Printf.printf "centralized collision tester, m = %d samples:\n" m;
  Printf.printf "  on uniform input: %s\n"
    (if Dut_testers.Collision.test ~n ~eps uniform_samples then "accept" else "reject");
  Printf.printf "  on eps-far input: %s\n\n"
    (if Dut_testers.Collision.test ~n ~eps far_samples then "accept" else "reject");

  (* 2. Distributed testing: k players, each drawing far fewer samples,
     one bit each to the referee (majority-calibrated rule — the
     sample-optimal tester matching Theorem 1.1). *)
  let k = 32 in
  let q = 4 * int_of_float (Dut_core.Bounds.fmo_threshold_upper ~n ~k ~eps) in
  Printf.printf "distributed tester: k = %d players x q = %d samples\n" k q;
  Printf.printf "  (vs %d samples for the centralized tester)\n" m;
  let tester =
    Dut_core.Threshold_tester.tester_majority ~n ~eps ~k ~q
      ~calibration_trials:300 ~rng:(Dut_prng.Rng.split rng)
  in
  let verdict source =
    if tester.accepts (Dut_prng.Rng.split rng) source then "accept" else "reject"
  in
  Printf.printf "  on uniform input: %s\n"
    (verdict (Dut_protocol.Network.uniform_source ~n));
  Printf.printf "  on eps-far input: %s\n\n"
    (verdict (Dut_protocol.Network.of_paninski far));

  (* 3. The theory behind the numbers (constants set to 1). *)
  Printf.printf "best-rule tester needs  ~sqrt(n/k)/eps^2   = %.0f samples/player\n"
    (Dut_core.Bounds.fmo_threshold_upper ~n ~k ~eps);
  Printf.printf "AND-rule tester needs   ~sqrt(n)/(k^(e^2) eps^2) = %.0f samples/player\n"
    (Dut_core.Bounds.fmo_and_upper ~n ~k ~eps);
  Printf.printf "-> insisting on a local (AND) decision costs a factor ~%.1f here,\n"
    (Dut_core.Bounds.fmo_and_upper ~n ~k ~eps
    /. Dut_core.Bounds.fmo_threshold_upper ~n ~k ~eps);
  Printf.printf "   and the gap grows with k (Theorems 1.1 and 1.2)\n"
