(* Robustness gate (the paper's second motivating scenario): a
   distributed algorithm was designed assuming its input keys are
   uniformly distributed — say a hash-partitioned load balancer whose
   per-shard load guarantee only holds for near-uniform key streams.
   Before running it, the shards themselves verify the assumption with a
   distributed uniformity test: each shard watches a small sample of the
   key stream and sends one bit to the coordinator.

   We feed the gate three workloads:
   - a genuinely uniform key stream          -> the gate must let it pass;
   - a hard eps-far stream (Paninski family) -> the gate must block it;
   - a mildly skewed stream (eps/4)          -> either verdict is
     acceptable by the problem definition, and the measured per-shard
     overload shows why the gray zone is harmless.

   Run with:  dune exec examples/robustness_gate.exe *)

let max_shard_overload ~shards pmf =
  (* Relative overload of the hottest shard under hash partitioning
     (elements i mod shards). *)
  let n = Dut_dist.Pmf.size pmf in
  let load = Array.make shards 0. in
  for i = 0 to n - 1 do
    load.(i mod shards) <- load.(i mod shards) +. Dut_dist.Pmf.prob pmf i
  done;
  let ideal = 1. /. float_of_int shards in
  Array.fold_left (fun acc l -> Float.max acc (l /. ideal)) 0. load

let () =
  let rng = Dut_prng.Rng.create 11 in
  let ell = 7 in
  let n = 1 lsl (ell + 1) in
  let eps = 0.3 in
  let shards = 16 in
  let q = 4 * int_of_float (Dut_core.Bounds.fmo_threshold_upper ~n ~k:shards ~eps) in

  Printf.printf
    "load balancer: %d shards over %d keys; guarantee assumes uniform keys\n"
    shards n;
  Printf.printf "gate: distributed uniformity test, %d samples per shard\n\n" q;

  let gate =
    Dut_core.Threshold_tester.tester_majority ~n ~eps ~k:shards ~q
      ~calibration_trials:300 ~rng:(Dut_prng.Rng.split rng)
  in

  let check name pmf =
    let sampler = Dut_dist.Sampler.of_pmf pmf in
    (* Standard amplification: majority of 5 independent gate rounds
       turns the 2/3 per-round guarantee into a reliable verdict. *)
    let passes = ref 0 in
    for _ = 1 to 5 do
      if
        gate.accepts (Dut_prng.Rng.split rng)
          (Dut_protocol.Network.of_sampler sampler)
      then incr passes
    done;
    let verdict = !passes >= 3 in
    Printf.printf "%-24s l1-dist %.3f  hottest shard %.2fx  gate: %s\n" name
      (Dut_dist.Distance.distance_to_uniformity pmf)
      (max_shard_overload ~shards pmf)
      (if verdict then "PASS" else "BLOCK")
  in

  check "uniform keys" (Dut_dist.Pmf.uniform n);
  check "eps-far keys"
    (Dut_dist.Paninski.pmf (Dut_dist.Paninski.random ~ell ~eps rng));
  check "mildly skewed keys"
    (Dut_dist.Paninski.pmf (Dut_dist.Paninski.random ~ell ~eps:(eps /. 4.) rng));

  print_newline ();
  (* Why the gray zone is fine: a distribution eps-close to uniform
     changes any bounded performance metric by at most eps/2 of its
     range (the expectation bound quoted in the paper's introduction). *)
  Printf.printf
    "any distribution within l1 %.3f of uniform shifts a bounded metric by <= %.3f of its range\n"
    eps (eps /. 2.)
