(* Sensor network scenario (the paper's introduction): sensors measure
   their environment and the network must raise an alarm when the
   measurement distribution deviates from its normal (uniform) profile.

   Two deployments are compared on the same measurements:

   - the LOCAL deployment uses the AND decision rule — any single sensor
     can raise the alarm, no vote collection needed (cheap to build,
     expensive in samples: Theorem 1.2);
   - the VOTING deployment collects one bit per sensor and applies a
     calibrated count cutoff (needs a collection round, but is
     sample-optimal: Theorem 1.1).

   We sweep the per-sensor sample budget and print each deployment's
   detection and false-alarm rates, showing the budget window where only
   the voting network works.

   Run with:  dune exec examples/sensor_network.exe *)

let () =
  let rng = Dut_prng.Rng.create 7 in
  let ell = 7 in
  let n = 1 lsl (ell + 1) in
  let eps = 0.3 in
  let k = 64 in
  let trials = 150 in

  Printf.printf
    "sensor network: %d sensors, readings over %d bins, drift threshold eps=%.2f\n\n"
    k n eps;
  Printf.printf "%-10s %-26s %-26s\n" "" "LOCAL (AND rule)" "VOTING (calibrated count)";
  Printf.printf "%-10s %-13s %-13s %-13s %-13s\n" "q/sensor" "false-alarm"
    "detection" "false-alarm" "detection";

  List.iter
    (fun q ->
      let and_tester = Dut_core.And_tester.tester ~n ~eps ~k ~q in
      let vote_tester =
        Dut_core.Threshold_tester.tester_majority ~n ~eps ~k ~q
          ~calibration_trials:300 ~rng:(Dut_prng.Rng.split rng)
      in
      let rates tester =
        let p =
          Dut_core.Evaluate.measure ~trials ~rng:(Dut_prng.Rng.split rng) ~ell
            ~eps tester
        in
        ( 1. -. p.Dut_core.Evaluate.uniform_accept.estimate,
          p.Dut_core.Evaluate.far_reject.estimate )
      in
      let and_fa, and_det = rates and_tester in
      let vote_fa, vote_det = rates vote_tester in
      Printf.printf "%-10d %-13.2f %-13.2f %-13.2f %-13.2f%s\n" q and_fa and_det
        vote_fa vote_det
        (if vote_det >= 2. /. 3. && and_det < 2. /. 3. then
           "   <- voting works, local alarm does not"
         else ""))
    [ 8; 16; 32; 64; 128; 256; 512 ];

  Printf.printf
    "\ntheory (tester upper bounds): voting ~%.0f samples/sensor, local ~%.0f\n"
    (Dut_core.Bounds.fmo_threshold_upper ~n ~k ~eps)
    (Dut_core.Bounds.fmo_and_upper ~n ~k ~eps);
  print_endline "(constants differ; the ordering and the gap are the point)"
