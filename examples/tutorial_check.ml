(* Compiles (and quickly runs) every code snippet of doc/tutorial.md, so
   the tutorial cannot drift from the API.

   Run with:  dune exec examples/tutorial_check.exe *)

let () =
  (* §1 Distributions and samples *)
  let rng = Dut_prng.Rng.create 42 in
  let n = 256 in
  let uniform = Dut_dist.Pmf.uniform n in
  let zipf = Dut_dist.Families.zipf ~n ~s:1.0 in
  let sampler = Dut_dist.Sampler.of_pmf zipf in
  let samples = Dut_dist.Sampler.draw_many sampler rng 1000 in
  let hard = Dut_dist.Paninski.random ~ell:7 ~eps:0.3 rng in
  let (_ : int array) = Dut_dist.Paninski.draw_many hard rng 1000 in
  ignore uniform;

  (* §2 A centralized test *)
  let m = Dut_testers.Collision.recommended_samples ~n ~eps:0.3 in
  let verdict = Dut_testers.Collision.test ~n ~eps:0.3 samples in
  assert (not verdict);
  ignore m;

  (* §3 A distributed protocol *)
  let player ~index:_ _coins samples =
    Dut_core.Local_stat.vote_midpoint ~n ~q:64 ~eps:0.3 samples
  in
  let transcript =
    Dut_protocol.Network.round ~rng
      ~source:(Dut_protocol.Network.of_paninski hard)
      ~k:32 ~q:64 ~player ~rule:Dut_protocol.Rule.Majority
  in
  assert (Array.length transcript.votes = 32);
  let tester =
    Dut_core.Threshold_tester.tester_majority ~n ~eps:0.3 ~k:32 ~q:64
      ~calibration_trials:300 ~rng:(Dut_prng.Rng.split rng)
  in
  let (_ : bool) =
    tester.accepts (Dut_prng.Rng.split rng)
      (Dut_protocol.Network.uniform_source ~n)
  in

  (* §4 Measuring sample complexity (tiny budget here) *)
  let q_star =
    Dut_core.Evaluate.critical_q ~trials:30 ~level:0.7 ~rng ~ell:7 ~eps:0.3
      ~hi:4000 (fun q ->
        Dut_core.Threshold_tester.tester_majority ~n ~eps:0.3 ~k:32 ~q
          ~calibration_trials:60 ~rng:(Dut_prng.Rng.split rng))
  in
  let predicted = Dut_core.Bounds.thm11_lower ~n ~k:32 ~eps:0.3 in
  (match q_star with
  | Some q -> Printf.printf "q* ~ %d (theory scale %.0f)\n" q predicted
  | None -> print_endline "q* not found at this tiny budget");

  (* §5 Verifying the theory *)
  let g = Dut_core.Exact.collision_acceptor ~ell:2 ~q:3 ~cutoff:1 in
  let d = Dut_dist.Paninski.random ~ell:2 ~eps:0.4 rng in
  let direct = Dut_core.Exact.nu g d -. Dut_core.Exact.mu g in
  let fourier = Dut_core.Exact.diff_fourier g d in
  assert (Float.abs (direct -. fourier) < 1e-12);
  let ratio = Dut_core.Exact.lemma51_ratio g ~eps:0.4 in
  assert (ratio <= 1.);
  print_endline "tutorial snippets all hold"
