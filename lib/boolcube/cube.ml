let max_dim = 25

let coord x i = if (x lsr i) land 1 = 1 then -1 else 1

let of_signs signs =
  Array.to_list signs
  |> List.mapi (fun i s ->
         match s with
         | 1 -> 0
         | -1 -> 1 lsl i
         | _ -> invalid_arg "Cube.of_signs: entries must be +1 or -1")
  |> List.fold_left ( lor ) 0

let to_signs ~dim x = Array.init dim (fun i -> coord x i)

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + (x land 1)) (x lsr 1) in
  go 0 x

let parity x =
  let rec go acc x = if x = 0 then acc else go (acc lxor (x land 1)) (x lsr 1) in
  go 0 x

let chi s x = if parity (s land x) = 0 then 1 else -1

let iter_points ~dim f =
  let size = 1 lsl dim in
  for x = 0 to size - 1 do
    f x
  done

(* Gosper's hack: next integer with the same popcount. *)
let next_same_popcount v =
  let c = v land -v in
  let r = v + c in
  r lor (((v lxor r) / c) lsr 2)

let iter_subsets_of_size ~dim ~size f =
  if size < 0 || size > dim then invalid_arg "Cube.iter_subsets_of_size";
  if size = 0 then f 0
  else begin
    let limit = 1 lsl dim in
    let s = ref ((1 lsl size) - 1) in
    while !s < limit do
      f !s;
      s := next_same_popcount !s
    done
  end

let subsets_of_size ~dim ~size =
  let acc = ref [] in
  iter_subsets_of_size ~dim ~size (fun s -> acc := s :: !acc);
  List.rev !acc

let binomial n k =
  if k < 0 || k > n then 0.
  else begin
    let k = min k (n - k) in
    let acc = ref 1. in
    for i = 1 to k do
      acc := !acc *. float_of_int (n - k + i) /. float_of_int i
    done;
    (* The product is an integer; round away float drizzle. *)
    Float.round !acc
  end

let double_factorial n =
  let rec go acc n = if n <= 0 then acc else go (acc *. float_of_int n) (n - 2) in
  go 1. n
