(** Points and index sets of the Boolean cube {-1,1}^b.

    A point of the cube is encoded as an [int] bitmask over [b] bits with
    the convention that bit [i] set means coordinate [i] equals [-1] and
    bit [i] clear means coordinate [i] equals [+1]. With this convention
    the character χ_S(x) is simply the parity of [x land s] (see
    {!Cube.chi}), which makes the fast Walsh–Hadamard transform index
    arithmetic line up with no sign bookkeeping.

    Index subsets S ⊆ {0..b-1} are encoded the same way, as bitmasks. *)

val max_dim : int
(** The largest supported dimension (points must fit into a non-negative
    OCaml int with room for array sizes; we cap at 25, i.e. tables of at
    most 2^25 floats ≈ 256 MB). *)

val coord : int -> int -> int
(** [coord x i] is the i-th ±1 coordinate of point [x]: [-1] if bit [i] of
    [x] is set, [+1] otherwise. *)

val of_signs : int array -> int
(** [of_signs signs] encodes an array of ±1 coordinates as a point.

    @raise Invalid_argument if an entry is neither 1 nor -1. *)

val to_signs : dim:int -> int -> int array
(** [to_signs ~dim x] decodes point [x] into its [dim] ±1 coordinates. *)

val popcount : int -> int
(** Number of set bits — |S| for an index set, or the number of [-1]
    coordinates of a point. *)

val chi : int -> int -> int
(** [chi s x] is the character χ_S(x) = ∏_{i∈S} x_i ∈ {-1,+1}: [+1] when
    [x land s] has even parity, [-1] when odd. *)

val iter_points : dim:int -> (int -> unit) -> unit
(** [iter_points ~dim f] applies [f] to every point of {-1,1}^dim. *)

val iter_subsets_of_size : dim:int -> size:int -> (int -> unit) -> unit
(** [iter_subsets_of_size ~dim ~size f] applies [f] to every bitmask with
    exactly [size] bits among the low [dim], in increasing numeric order
    (Gosper's hack). [size = 0] yields only the empty set. *)

val subsets_of_size : dim:int -> size:int -> int list
(** Materialized version of {!iter_subsets_of_size}. *)

val binomial : int -> int -> float
(** [binomial n k] is the binomial coefficient C(n,k) as a float (exact for
    all values used in this project). Zero when [k < 0 || k > n]. *)

val double_factorial : int -> float
(** [double_factorial n] is n!! = n·(n−2)·(n−4)···, with
    [double_factorial 0 = double_factorial (-1) = 1.]. *)
