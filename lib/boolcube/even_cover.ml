let evenly_covered ~x ~s =
  (* XOR-fold a per-value parity table; all parities must end even. Values
     are small non-negative ints, so a hashtable keyed by value suffices. *)
  let parities = Hashtbl.create 8 in
  Array.iteri
    (fun j v ->
      if (s lsr j) land 1 = 1 then
        let p = try Hashtbl.find parities v with Not_found -> 0 in
        Hashtbl.replace parities v (p lxor 1))
    x;
  Hashtbl.fold (fun _ p acc -> acc && p = 0) parities true

let a_r ~x ~r =
  let q = Array.length x in
  if 2 * r > q then 0
  else begin
    let count = ref 0 in
    Cube.iter_subsets_of_size ~dim:q ~size:(2 * r) (fun s ->
        if evenly_covered ~x ~s then incr count);
    !count
  end

let count_even_sequences ~m ~len =
  if len < 0 then invalid_arg "Even_cover.count_even_sequences: negative length";
  if len mod 2 = 1 then 0.
  else begin
    let acc = ref 0. in
    for k = 0 to m do
      let base = float_of_int (m - (2 * k)) in
      acc := !acc +. (Cube.binomial m k *. (base ** float_of_int len))
    done;
    Float.round (!acc /. (2. ** float_of_int m))
  end

let count_x_s ~m ~q ~s_size =
  if s_size < 0 || s_size > q then invalid_arg "Even_cover.count_x_s";
  count_even_sequences ~m ~len:s_size
  *. (float_of_int m ** float_of_int (q - s_size))

let x_s_upper_bound ~m ~q ~s_size =
  if s_size mod 2 = 1 then 0.
  else
    let r = s_size / 2 in
    Cube.double_factorial (s_size - 1)
    *. (float_of_int m ** float_of_int (q - r))

let sum_a_r ~m ~q ~r =
  Cube.binomial q (2 * r) *. count_x_s ~m ~q ~s_size:(2 * r)

let mean_a_r_upper_bound ~m ~q ~r =
  let n = float_of_int (2 * m) in
  (float_of_int q *. float_of_int q /. n) ** float_of_int r

let moment_a_r_exact ~m ~q ~r ~power =
  let total =
    let rec pow acc i = if i = 0 then acc else pow (acc * m) (i - 1) in
    pow 1 q
  in
  if total > 1 lsl 24 then
    invalid_arg "Even_cover.moment_a_r_exact: state space too large";
  let x = Array.make q 0 in
  let decode idx =
    let rest = ref idx in
    for j = 0 to q - 1 do
      x.(j) <- !rest mod m;
      rest := !rest / m
    done
  in
  let acc = ref 0. in
  for idx = 0 to total - 1 do
    decode idx;
    let a = float_of_int (a_r ~x ~r) in
    acc := !acc +. (a ** float_of_int power)
  done;
  !acc /. float_of_int total

let moment_a_r_bound ~n ~q ~r ~power =
  let mm = float_of_int power in
  let rr = float_of_int r in
  let ratio = float_of_int q /. sqrt (float_of_int n /. 2.) in
  let lead = (4. *. mm) ** (2. *. mm *. rr) in
  if ratio >= 1. then lead *. (ratio ** (2. *. mm *. rr))
  else lead *. (ratio ** (2. *. rr))
