(** The "evenly covered multiset" combinatorics of Section 5.

    Fix a tuple of samples x = (x_1, …, x_q), each x_i drawn from an
    alphabet of M = n/2 values (the left-cube identities of the hard
    family), and an index set S ⊆ [q]. The multiset x_S = {x_j}_{j∈S} is
    {e evenly covered} when every alphabet value appears an even number of
    times in it. These are exactly the (x, S) pairs whose Fourier summand
    survives the expectation over the perturbation z (the "odd
    cancelation"), so the whole lower-bound proof rides on how rare they
    are. This module provides the exact predicate, exact counts, the
    paper's upper bounds (Proposition 5.2), the statistic a_r(x) and its
    moments (Lemma 5.5) — everything exhaustively computable on small
    instances so that the experiments can compare exact values to the
    bounds. *)

val evenly_covered : x:int array -> s:int -> bool
(** [evenly_covered ~x ~s] — is the multiset {x_j : j ∈ S} evenly covered?
    [s] is a bitmask over the positions 0 .. length x − 1. The empty set is
    evenly covered. *)

val a_r : x:int array -> r:int -> int
(** [a_r ~x ~r] is a_r(x) = #{S : |S| = 2r and x_S evenly covered}
    (Section 5.1). *)

val count_even_sequences : m:int -> len:int -> float
(** [count_even_sequences ~m ~len] is the number of sequences of length
    [len] over an alphabet of [m] symbols in which every symbol occurs an
    even number of times: 2^{−m} Σ_k C(m,k)(m−2k)^len (exponential
    generating function of cosh^m). Zero for odd [len]. *)

val count_x_s : m:int -> q:int -> s_size:int -> float
(** [count_x_s ~m ~q ~s_size] is the exact size of
    X_S = {x ∈ [m]^q : x_S evenly covered} for any S with |S| = [s_size] —
    by symmetry it depends only on |S| (Proposition 5.2(1)):
    [count_even_sequences ~m ~len:s_size ·  m^(q − s_size)]. *)

val x_s_upper_bound : m:int -> q:int -> s_size:int -> float
(** Proposition 5.2(2): |X_S| ≤ (|S|−1)!! · m^{q−|S|/2} (with m = n/2).
    Defined for even [s_size]; for odd sizes the count is zero and the
    bound returned is 0. *)

val sum_a_r : m:int -> q:int -> r:int -> float
(** Σ_x a_r(x) = C(q,2r)·|X_{2r}| — the interchange-of-summation identity
    of Section 5.1, computed in closed form. *)

val mean_a_r_upper_bound : m:int -> q:int -> r:int -> float
(** The estimate E_x[a_r(x)] ≤ (q²/n)^r of Section 5.1, with n = 2m. *)

val moment_a_r_exact : m:int -> q:int -> r:int -> power:int -> float
(** [moment_a_r_exact ~m ~q ~r ~power] is E_x[a_r(x)^power] computed by
    exhaustive enumeration of all m^q tuples. Feasible for m^q ≲ 10^7.

    @raise Invalid_argument if the state space is too large (m^q > 2^24). *)

val moment_a_r_bound : n:int -> q:int -> r:int -> power:int -> float
(** The Lemma 5.5 upper bound on E_x[a_r(x)^m] with [power] = m and
    universe size [n] (= 2·alphabet): (4m)^{2mr}·(q/√(n/2))^{2mr} when
    q ≥ √(n/2), and (4m)^{2mr}·(q/√(n/2))^{2r} when q < √(n/2). *)
