type t = { dim : int; coeffs : float array }

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let wht_in_place a =
  let n = Array.length a in
  if not (is_power_of_two n) then
    invalid_arg "Fourier.wht_in_place: length must be a power of two";
  let h = ref 1 in
  while !h < n do
    let step = !h lsl 1 in
    let i = ref 0 in
    while !i < n do
      for j = !i to !i + !h - 1 do
        let x = a.(j) and y = a.(j + !h) in
        a.(j) <- x +. y;
        a.(j + !h) <- x -. y
      done;
      i := !i + step
    done;
    h := step
  done

let dim_of_length n =
  let rec go d m = if m = 1 then d else go (d + 1) (m lsr 1) in
  go 0 n

let transform table =
  let n = Array.length table in
  if not (is_power_of_two n) then
    invalid_arg "Fourier.transform: length must be a power of two";
  let coeffs = Array.copy table in
  wht_in_place coeffs;
  let inv_n = 1. /. float_of_int n in
  Array.iteri (fun i c -> coeffs.(i) <- c *. inv_n) coeffs;
  { dim = dim_of_length n; coeffs }

let inverse t =
  let table = Array.copy t.coeffs in
  wht_in_place table;
  table

let coeff t s = t.coeffs.(s)

let mean t = t.coeffs.(0)

let norm2_sq t = Array.fold_left (fun acc c -> acc +. (c *. c)) 0. t.coeffs

let variance t = norm2_sq t -. (t.coeffs.(0) *. t.coeffs.(0))

let level_weight t r =
  let acc = ref 0. in
  Cube.iter_subsets_of_size ~dim:t.dim ~size:r (fun s ->
      acc := !acc +. (t.coeffs.(s) *. t.coeffs.(s)));
  !acc

let weight_up_to t r =
  let acc = ref 0. in
  for level = 1 to min r t.dim do
    acc := !acc +. level_weight t level
  done;
  !acc

let kkl_bound ~mu ~r ~delta =
  (delta ** float_of_int (-r)) *. (mu ** (2. /. (1. +. delta)))

let of_boolean g ~dim =
  let n = 1 lsl dim in
  let table = Array.init n (fun x -> if g x then 1. else 0.) in
  transform table

let noise ~rho t =
  if rho < -1. || rho > 1. then invalid_arg "Fourier.noise: rho outside [-1,1]";
  {
    dim = t.dim;
    coeffs =
      Array.mapi
        (fun s c -> c *. (rho ** float_of_int (Cube.popcount s)))
        t.coeffs;
  }

let lp_norm table ~p =
  if p < 1. then invalid_arg "Fourier.lp_norm: p < 1";
  let n = float_of_int (Array.length table) in
  let total =
    Array.fold_left (fun acc x -> acc +. (Float.abs x ** p)) 0. table
  in
  (total /. n) ** (1. /. p)

let hypercontractive_ratio table ~rho =
  let smoothed = inverse (noise ~rho (transform table)) in
  let numer = lp_norm smoothed ~p:2. in
  let denom = lp_norm table ~p:(1. +. (rho *. rho)) in
  if denom = 0. then 0. else numer /. denom

let inner_product f g =
  if f.dim <> g.dim then invalid_arg "Fourier.inner_product: dimension mismatch";
  let acc = ref 0. in
  for s = 0 to Array.length f.coeffs - 1 do
    acc := !acc +. (f.coeffs.(s) *. g.coeffs.(s))
  done;
  !acc
