type t = { dim : int; coeffs : float array }

let is_power_of_two n = n > 0 && n land (n - 1) = 0

(* A flat one-field float record: OCaml stores it unboxed and updates
   it in place, unlike a polymorphic [ref] whose float contents is a
   fresh box per assignment. All the accumulation loops below run on
   this, so a full transform/weight sweep allocates nothing. *)
type facc = { mutable v : float }

(* Butterfly passes h, 2h, ... while they stay inside the slice
   [lo, lo+len): shared by the blocked and the plain paths. *)
let passes_up_to a ~lo ~len ~h_max =
  let h = ref 1 in
  while !h <= h_max do
    let step = !h lsl 1 in
    let i = ref lo in
    let stop = lo + len in
    while !i < stop do
      let jstop = !i + !h - 1 in
      for j = !i to jstop do
        let x = Array.unsafe_get a j and y = Array.unsafe_get a (j + !h) in
        Array.unsafe_set a j (x +. y);
        Array.unsafe_set a (j + !h) (x -. y)
      done;
      i := !i + step
    done;
    h := step
  done

(* L1-sized block: 4096 floats = 32 KiB. For h < block every butterfly
   pair (j, j+h) lives inside one block-aligned slice, so running all
   small-h passes block by block performs exactly the same operations
   on exactly the same values as running each pass across the whole
   array — the dependency graph of those passes is block-local — while
   touching each cache line once per block instead of once per pass.
   The results are bit-identical, only the traversal order changes. *)
let block = 4096

let wht_in_place a =
  let n = Array.length a in
  if not (is_power_of_two n) then
    invalid_arg
      (Printf.sprintf "Fourier.wht_in_place: length %d is not a power of two" n);
  if n <= block then passes_up_to a ~lo:0 ~len:n ~h_max:(n lsr 1)
  else begin
    (* Small-h passes, cache-blocked. *)
    let lo = ref 0 in
    while !lo < n do
      passes_up_to a ~lo:!lo ~len:block ~h_max:(block lsr 1);
      lo := !lo + block
    done;
    (* Large-h passes span blocks; run them globally as before. *)
    let h = ref block in
    while !h < n do
      let step = !h lsl 1 in
      let i = ref 0 in
      while !i < n do
        let jstop = !i + !h - 1 in
        for j = !i to jstop do
          let x = Array.unsafe_get a j and y = Array.unsafe_get a (j + !h) in
          Array.unsafe_set a j (x +. y);
          Array.unsafe_set a (j + !h) (x -. y)
        done;
        i := !i + step
      done;
      h := step
    done
  end

(* n is a power of two here, so its dimension is the popcount of n-1 —
   no loop, no float log. *)
let dim_of_length n = Cube.popcount (n - 1)

let transform table =
  let n = Array.length table in
  if not (is_power_of_two n) then
    invalid_arg "Fourier.transform: length must be a power of two";
  let coeffs = Array.copy table in
  wht_in_place coeffs;
  let inv_n = 1. /. float_of_int n in
  for i = 0 to n - 1 do
    Array.unsafe_set coeffs i (Array.unsafe_get coeffs i *. inv_n)
  done;
  { dim = dim_of_length n; coeffs }

let inverse t =
  let table = Array.copy t.coeffs in
  wht_in_place table;
  table

let coeff t s = t.coeffs.(s)

let mean t = t.coeffs.(0)

let norm2_sq t =
  let acc = { v = 0. } in
  let c = t.coeffs in
  for i = 0 to Array.length c - 1 do
    let x = Array.unsafe_get c i in
    acc.v <- acc.v +. (x *. x)
  done;
  acc.v

let variance t = norm2_sq t -. (t.coeffs.(0) *. t.coeffs.(0))

let level_weight t r =
  let acc = { v = 0. } in
  Cube.iter_subsets_of_size ~dim:t.dim ~size:r (fun s ->
      let c = t.coeffs.(s) in
      acc.v <- acc.v +. (c *. c));
  acc.v

let weight_up_to t r =
  let acc = { v = 0. } in
  for level = 1 to min r t.dim do
    acc.v <- acc.v +. level_weight t level
  done;
  acc.v

let kkl_bound ~mu ~r ~delta =
  (delta ** float_of_int (-r)) *. (mu ** (2. /. (1. +. delta)))

let of_boolean g ~dim =
  let n = 1 lsl dim in
  let table = Array.init n (fun x -> if g x then 1. else 0.) in
  transform table

let noise ~rho t =
  if rho < -1. || rho > 1. then invalid_arg "Fourier.noise: rho outside [-1,1]";
  {
    dim = t.dim;
    coeffs =
      Array.mapi
        (fun s c -> c *. (rho ** float_of_int (Cube.popcount s)))
        t.coeffs;
  }

let lp_norm table ~p =
  if p < 1. then invalid_arg "Fourier.lp_norm: p < 1";
  let n = float_of_int (Array.length table) in
  let total = { v = 0. } in
  for i = 0 to Array.length table - 1 do
    total.v <- total.v +. (Float.abs (Array.unsafe_get table i) ** p)
  done;
  (total.v /. n) ** (1. /. p)

let hypercontractive_ratio table ~rho =
  let smoothed = inverse (noise ~rho (transform table)) in
  let numer = lp_norm smoothed ~p:2. in
  let denom = lp_norm table ~p:(1. +. (rho *. rho)) in
  if denom = 0. then 0. else numer /. denom

let inner_product f g =
  if f.dim <> g.dim then invalid_arg "Fourier.inner_product: dimension mismatch";
  let acc = { v = 0. } in
  for s = 0 to Array.length f.coeffs - 1 do
    acc.v <- acc.v +. (f.coeffs.(s) *. g.coeffs.(s))
  done;
  acc.v
