(** Fourier analysis of real-valued functions on the Boolean cube.

    A function f : {-1,1}^b → ℝ is represented by a [float array] of length
    2^b, indexed by the point encoding of {!Cube}. Its Fourier expansion is
    f = Σ_S f̂(S)·χ_S with f̂(S) = ⟨f, χ_S⟩ = E_x[f(x)χ_S(x)] — the
    normalization of the paper's Section 2. All transforms are exact
    (fast Walsh–Hadamard), O(b·2^b). *)

type t = {
  dim : int;  (** the cube dimension b *)
  coeffs : float array;  (** f̂(S) indexed by the bitmask of S, length 2^b *)
}
(** A Fourier transform: the full table of coefficients. *)

val wht_in_place : float array -> unit
(** [wht_in_place a] replaces [a] with its (unnormalized) Walsh–Hadamard
    transform: a'[s] = Σ_x a[x]·χ_S(x). Involutive up to the factor
    [Array.length a].

    @raise Invalid_argument if the length is not a power of two. *)

val transform : float array -> t
(** [transform table] is the Fourier transform of the function whose value
    table is [table] (not modified). *)

val inverse : t -> float array
(** [inverse t] recovers the value table; [inverse (transform f) = f] up to
    float rounding. *)

val coeff : t -> int -> float
(** [coeff t s] is f̂(S) for the bitmask [s]. *)

val mean : t -> float
(** μ(f) = f̂(∅) (Fact 2.2). *)

val variance : t -> float
(** var(f) = Σ_{S≠∅} f̂(S)² (Fact 2.2). *)

val norm2_sq : t -> float
(** ‖f‖₂² = Σ_S f̂(S)² (Parseval). *)

val level_weight : t -> int -> float
(** [level_weight t r] is W^r[f], the sum of f̂(S)² over sets of size
    exactly [r]. *)

val weight_up_to : t -> int -> float
(** [weight_up_to t r] is Σ_{1 ≤ |S| ≤ r} f̂(S)² — the low-level weight
    bounded by the KKL level inequality (the empty set excluded). *)

val kkl_bound : mu:float -> r:int -> delta:float -> float
(** [kkl_bound ~mu ~r ~delta] is the right-hand side δ^{−r}·μ^{2/(1+δ)} of
    the level inequality (Lemma 5.4) for a Boolean function of mean [mu].
    Note the paper states it for weight up to level [r] including the
    empty set's μ² term, for μ ≤ 1/2 and 0 < δ ≤ 1. *)

val of_boolean : (int -> bool) -> dim:int -> t
(** [of_boolean g ~dim] transforms the 0/1-valued function [g] given as a
    predicate on encoded points. *)

val inner_product : t -> t -> float
(** ⟨f, g⟩ = Σ_S f̂(S)ĝ(S) (Plancherel, Fact 2.1).

    @raise Invalid_argument on dimension mismatch. *)

val noise : rho:float -> t -> t
(** The noise operator T_ρ: multiplies each coefficient by ρ^card(S).
    T_ρ f(x) is the expectation of f over ρ-correlated inputs — the
    semigroup behind the level inequalities (Lemma 5.4 follows from its
    hypercontractivity).

    @raise Invalid_argument if ρ outside [-1, 1]. *)

val lp_norm : float array -> p:float -> float
(** ‖f‖_p = (E_x|f(x)|^p)^(1/p) over the uniform cube measure, from a
    value table.

    @raise Invalid_argument if p < 1. *)

val hypercontractive_ratio : float array -> rho:float -> float
(** ‖T_ρ f‖₂ / ‖f‖_(1+ρ²) for the function given by a value table — the
    Bonami–Beckner inequality says this never exceeds 1. Exported so
    tests and the Fourier explorer can exhibit the inequality behind
    the KKL bound. Returns 0 for the zero function. *)
