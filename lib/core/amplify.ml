let wrap ~rounds tester =
  if rounds <= 0 || rounds mod 2 = 0 then
    invalid_arg "Amplify.wrap: rounds must be positive and odd";
  {
    Evaluate.name = Printf.sprintf "majority-of-%d(%s)" rounds tester.Evaluate.name;
    accepts =
      (fun rng source ->
        let accepts = ref 0 in
        for _ = 1 to rounds do
          if tester.Evaluate.accepts (Dut_prng.Rng.split rng) source then
            incr accepts
        done;
        2 * !accepts > rounds);
  }

let error_bound ~rounds ~round_error =
  if round_error >= 0.5 then 1.
  else
    let gap = 0.5 -. round_error in
    Float.min 1. (exp (-2. *. float_of_int rounds *. gap *. gap))

let rounds_for ~target_error ~round_error =
  if round_error >= 0.5 then invalid_arg "Amplify.rounds_for: round error >= 1/2";
  if target_error <= 0. || target_error >= 1. then
    invalid_arg "Amplify.rounds_for: target out of (0,1)";
  let rec go r =
    if error_bound ~rounds:r ~round_error <= target_error then r else go (r + 2)
  in
  go 1
