(** Success amplification by independent repetition.

    The model of Section 2 demands success probability 2/3; deployments
    usually want much more. Running an entire protocol round r times
    (odd r) and taking the majority verdict drives the error down
    exponentially: if one round errs with probability δ < 1/2, the
    majority errs with probability ≤ exp(−2r(1/2 − δ)²) (Hoeffding).
    This module implements the wrapper — used by the robustness-gate
    example — and exposes the error bound and the round count needed for
    a target error, so tests can confront the measured amplification
    with the theory. *)

val wrap : rounds:int -> Evaluate.tester -> Evaluate.tester
(** [wrap ~rounds t] runs [t] [rounds] times on independent coin streams
    and fresh samples, answering the majority verdict.

    @raise Invalid_argument unless [rounds] is positive and odd. *)

val error_bound : rounds:int -> round_error:float -> float
(** Hoeffding bound on the majority's error: exp(−2r(1/2 − δ)²), or 1.
    when δ ≥ 1/2. *)

val rounds_for : target_error:float -> round_error:float -> int
(** Smallest odd r with [error_bound ~rounds:r ~round_error] ≤
    [target_error].

    @raise Invalid_argument if [round_error >= 0.5] or target not in
    (0,1). *)
