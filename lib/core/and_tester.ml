(* The AND tester is the clique comparison graph under the AND referee:
   all construction and decision logic lives in [Comparison_graph]; this
   module keeps the historical API, names, and validation messages. *)

type t = { n : int; k : int; q : int; g : Comparison_graph.t; cutoff : int }

let make ~n ~eps ~k ~q =
  if n <= 0 || k <= 0 || q < 0 then invalid_arg "And_tester.make: bad sizes";
  if eps <= 0. || eps >= 1. then invalid_arg "And_tester.make: eps out of (0,1)";
  (* Largest per-player alarm rate keeping the whole network's null
     rejection probability (any alarm fires) comfortably under 1/3 (0.18: margin for Monte-Carlo noise and the
     Poisson/normal tail model). *)
  let false_alarm = Dut_stats.Tail.binomial_max_p ~k ~t:1 ~level:0.18 in
  let g = Comparison_graph.build ~q Comparison_graph.Clique in
  { n; k; q; g; cutoff = Comparison_graph.alarm_cutoff ~n g ~false_alarm }

let local_cutoff t = t.cutoff

let accepts t rng source =
  let player ~index:_ _coins samples =
    Local_stat.accepts_alarm ~cutoff:t.cutoff
      (Comparison_graph.statistic ~n:t.n t.g samples)
  in
  Dut_protocol.Network.round_accept ~rng ~source ~k:t.k ~q:t.q ~player
    ~rule:Dut_protocol.Rule.And

let tester ~n ~eps ~k ~q =
  let t = make ~n ~eps ~k ~q in
  {
    Evaluate.name = Printf.sprintf "and(n=%d,k=%d,q=%d)" n k q;
    accepts = accepts t;
  }
