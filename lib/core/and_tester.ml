type t = { n : int; k : int; q : int; cutoff : int }

let make ~n ~eps ~k ~q =
  if n <= 0 || k <= 0 || q < 0 then invalid_arg "And_tester.make: bad sizes";
  if eps <= 0. || eps >= 1. then invalid_arg "And_tester.make: eps out of (0,1)";
  (* Largest per-player alarm rate keeping the whole network's null
     rejection probability (any alarm fires) comfortably under 1/3 (0.18: margin for Monte-Carlo noise and the
     Poisson/normal tail model). *)
  let false_alarm = Dut_stats.Tail.binomial_max_p ~k ~t:1 ~level:0.18 in
  { n; k; q; cutoff = Local_stat.alarm_cutoff ~n ~q ~false_alarm }

let local_cutoff t = t.cutoff

let accepts t rng source =
  let player ~index:_ _coins samples =
    Local_stat.collisions_bounded ~n:t.n samples < t.cutoff
  in
  Dut_protocol.Network.round_accept ~rng ~source ~k:t.k ~q:t.q ~player
    ~rule:Dut_protocol.Rule.And

let tester ~n ~eps ~k ~q =
  let t = make ~n ~eps ~k ~q in
  {
    Evaluate.name = Printf.sprintf "and(n=%d,k=%d,q=%d)" n k q;
    accepts = accepts t;
  }
