(** The AND-rule (fully local) distributed uniformity tester of [7],
    whose cost Theorem 1.2 lower-bounds.

    Each player compares its collision count to a rare-alarm cutoff
    calibrated so that the per-player false-alarm probability is about
    1/(5k) — under the uniform distribution the probability that {e any}
    of the k players raises an alarm then stays below 1/3. Rejection
    requires some single player to see, all by itself, statistically
    overwhelming evidence; this is exactly the "highly-biased bits carry
    even less information" regime of Lemma 4.3, and the reason the
    tester's sample complexity barely improves with k. *)

type t

val make : n:int -> eps:float -> k:int -> q:int -> t
(** Build the tester for a universe of size [n], proximity [eps], [k]
    players, [q] samples per player.

    @raise Invalid_argument on non-positive [n], [k], negative [q], or
    eps outside (0,1). *)

val local_cutoff : t -> int
(** The per-player alarm cutoff actually in force. *)

val accepts : t -> Dut_prng.Rng.t -> Dut_protocol.Network.source -> bool
(** Run one round: players draw samples, vote, the referee ANDs. *)

val tester : n:int -> eps:float -> k:int -> q:int -> Evaluate.tester
(** Package as an {!Evaluate.tester}. *)
