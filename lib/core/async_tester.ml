type t = {
  n : int;
  eps : float;
  qs : int array;
  referee_cutoff : int;
}

let counts_of ~rates ~tau =
  Array.map (fun r -> max 1 (int_of_float (ceil (r *. tau)))) rates

let reject_count t rng source =
  let player ~index (_coins : Dut_prng.Rng.t) samples =
    Local_stat.vote_midpoint ~n:t.n ~q:t.qs.(index) ~eps:t.eps samples
  in
  let round =
    Dut_protocol.Network.round_rates ~rng ~source ~qs:t.qs ~player
      ~rule:Dut_protocol.Rule.Majority
  in
  Array.fold_left (fun acc v -> if v then acc else acc + 1) 0 round.votes

let make ~n ~eps ~rates ~tau ~calibration_trials ~rng =
  if n <= 0 then invalid_arg "Async_tester.make: bad n";
  if Array.length rates = 0 then invalid_arg "Async_tester.make: no players";
  Array.iter (fun r -> if r <= 0. then invalid_arg "Async_tester.make: rate <= 0") rates;
  if tau <= 0. then invalid_arg "Async_tester.make: tau <= 0";
  if eps <= 0. || eps >= 1. then invalid_arg "Async_tester.make: eps out of (0,1)";
  if calibration_trials <= 0 then invalid_arg "Async_tester.make: trials <= 0";
  let qs = counts_of ~rates ~tau in
  let proto = { n; eps; qs; referee_cutoff = max_int } in
  let calibration_rng = Dut_prng.Rng.split rng in
  let cutoff =
    Dut_protocol.Calibrate.reject_count_cutoff ~trials:calibration_trials
      calibration_rng
      ~rejects:(fun r ->
        reject_count proto r (Dut_protocol.Network.uniform_source ~n))
      ~level:0.2
  in
  { proto with referee_cutoff = cutoff }

let sample_counts t = Array.copy t.qs

let accepts t rng source = reject_count t rng source < t.referee_cutoff

let tester ~n ~eps ~rates ~tau ~calibration_trials ~rng =
  let t = make ~n ~eps ~rates ~tau ~calibration_trials ~rng in
  {
    Evaluate.name =
      Printf.sprintf "async(n=%d,k=%d,tau=%.1f)" n (Array.length rates) tau;
    accepts = accepts t;
  }

let critical_tau ~trials ~level ~rng ~ell ~eps ~rates ~calibration_trials
    ?(hi = 1 lsl 20) () =
  let n = 1 lsl (ell + 1) in
  Dut_stats.Critical.search ~lo:1 ~hi (fun tau ->
      let probe_rng = Dut_prng.Rng.split rng in
      let build_rng = Dut_prng.Rng.split probe_rng in
      Evaluate.succeeds ~trials ~level ~rng:probe_rng ~ell ~eps
        (tester ~n ~eps ~rates ~tau:(float_of_int tau) ~calibration_trials
           ~rng:build_rng))
