(** The asymmetric-cost (sampling-rate) model of Section 6.2.

    Players run for a common time budget τ; player i samples at rate T_i
    and so collects q_i = ⌈T_i·τ⌉ samples. Each votes with its own
    midpoint collision cutoff; the referee uses a calibrated reject-count
    cutoff, weighting nothing — exactly the reduction [7] used from the
    LOCAL model. The paper shows the optimal time is
    τ = Θ(√n/(ε²·‖T‖₂)): only the ℓ2 norm of the rate vector matters,
    which the [T7-async] experiment confirms by giving differently-shaped
    rate profiles the same ‖T‖₂. *)

type t

val make :
  n:int ->
  eps:float ->
  rates:float array ->
  tau:float ->
  calibration_trials:int ->
  rng:Dut_prng.Rng.t ->
  t
(** @raise Invalid_argument on an empty/negative rate vector, τ ≤ 0, eps
    outside (0,1), or non-positive trials. *)

val sample_counts : t -> int array
(** The per-player q_i = ⌈T_i·τ⌉ in force. *)

val accepts : t -> Dut_prng.Rng.t -> Dut_protocol.Network.source -> bool

val tester :
  n:int ->
  eps:float ->
  rates:float array ->
  tau:float ->
  calibration_trials:int ->
  rng:Dut_prng.Rng.t ->
  Evaluate.tester

val critical_tau :
  trials:int ->
  level:float ->
  rng:Dut_prng.Rng.t ->
  ell:int ->
  eps:float ->
  rates:float array ->
  calibration_trials:int ->
  ?hi:int ->
  unit ->
  int option
(** Least integer time budget τ at which the tester succeeds. *)
