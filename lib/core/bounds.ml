let fi = float_of_int

let log2 x = log x /. log 2.

let centralized ~n ~eps = sqrt (fi n) /. (eps *. eps)

let thm11_lower ~n ~k ~eps = sqrt (fi n /. fi k) /. (eps *. eps)

let thm11_applies ~n ~k ~eps = fi k <= fi n /. (eps *. eps)

let thm61_lower ~n ~k ~eps =
  Float.min (sqrt (fi n /. fi k)) (fi n /. fi k) /. (eps *. eps)

let thm12_and_lower ~n ~k ~eps =
  if k <= 1 then centralized ~n ~eps
  else
    let lg = log2 (fi k) in
    sqrt (fi n) /. (lg *. lg *. eps *. eps)

let thm12_applies ~k ~eps ~c = log2 (fi k) <= c /. eps

let thm13_threshold_lower ~n ~k ~eps ~t =
  let lg = log (fi k /. eps) in
  sqrt (fi n) /. (fi t *. lg *. lg *. eps *. eps)

let thm13_applies ~n ~k ~eps ~t ~c =
  let lg = log (fi k /. eps) in
  fi k <= sqrt (fi n) && fi t < c /. (eps *. eps *. lg *. lg)

let thm14_learning_nodes ~n ~q = fi n *. fi n /. (fi q *. fi q)

let thm64_rbit_lower ~n ~k ~eps ~r =
  let kk = (2. ** fi r) *. fi k in
  Float.min (sqrt (fi n /. kk)) (fi n /. kk) /. (eps *. eps)

let fmo_and_upper ~n ~k ~eps =
  sqrt (fi n) /. ((fi k ** (eps *. eps)) *. eps *. eps)

let fmo_threshold_upper ~n ~k ~eps = sqrt (fi n /. fi k) /. (eps *. eps)

let act_single_sample_nodes ~n ~eps ~bits =
  fi n /. ((2. ** (fi bits /. 2.)) *. eps *. eps)

let act_learning_nodes ~n ~eps ~bits =
  fi n *. fi n /. ((2. ** fi bits) *. eps *. eps)

let l2_norm rates = sqrt (Array.fold_left (fun a r -> a +. (r *. r)) 0. rates)

let async_time_lower ~n ~eps ~rates =
  sqrt (fi n) /. (eps *. eps *. l2_norm rates)

let lemma51_rhs ~q ~n ~eps ~var_g =
  4. *. fi q *. eps *. eps /. sqrt (fi n) *. sqrt var_g

let lemma51_applies ~q ~n ~eps = fi q <= sqrt (fi n) /. (4. *. eps *. eps)

let lemma42_rhs ~q ~n ~eps ~var_g =
  ((20. *. fi q *. fi q *. (eps ** 4.) /. fi n) +. (fi q *. eps *. eps /. fi n))
  *. var_g

let lemma42_applies ~q ~n ~eps = fi q <= sqrt (fi n) /. (20. *. eps *. eps)

let lemma42_rhs_slack ~q ~n ~eps ~var_g =
  ((20. *. fi q *. fi q *. (eps ** 4.) /. fi n)
  +. (4. *. fi q *. eps *. eps /. fi n))
  *. var_g

let lemma43_rhs ~q ~n ~eps ~var_g ~m =
  let mf = fi m in
  let ratio = fi q /. sqrt (fi n) in
  (ratio +. (ratio ** (1. /. ((2. *. mf) +. 2.))))
  *. 40. *. mf *. mf *. eps *. eps
  *. (var_g ** (((2. *. mf) +. 1.) /. ((2. *. mf) +. 2.)))

let lemma43_applies ~q ~n ~eps ~m =
  let mf = fi m in
  let base = 40. *. mf *. mf *. eps *. eps in
  fi q <= sqrt (fi n) /. base
  && fi q <= sqrt (fi n) /. (base ** (mf +. 1.))

let lemma44_rhs ~q ~n ~eps ~var_g ~m ~c =
  let mf = fi m in
  let ratio = fi q /. sqrt (fi n) in
  (2. *. eps *. eps *. fi q /. fi n *. var_g)
  +. c
     *. (ratio +. (ratio ** (1. /. (mf +. 1.))))
     *. mf *. mf *. eps *. eps
     *. (var_g ** (2. -. (1. /. (mf +. 1.))))

let divergence_requirement ~k ~delta = log2 (1. /. delta) /. (10. *. fi k)

let asymmetric_divergence_requirement ~k ~delta1 ~delta0 =
  Dut_dist.Distance.kl_bernoulli delta1 (1. -. delta0) /. (10. *. fi k)

let divergence_budget ~q ~n ~eps =
  ((20. *. fi q *. fi q *. (eps ** 4.) /. fi n) +. (fi q *. eps *. eps /. fi n))
  /. log 2.
