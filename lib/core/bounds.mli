(** Every quantitative statement of the paper, as executable formulas.

    Each function returns the Θ/Ω/O expression with its leading constant
    set to 1 (the paper leaves constants unspecified); experiments compare
    {e shapes} — ratios across parameter sweeps — against these, never
    absolute values. Functions named [thmXX_*] are the paper's theorems;
    [fmo_*] are the upper bounds of Fischer–Meir–Oshman (PODC 2018, the
    paper's [7]); [act_*] are Acharya–Canonne–Tyagi (the paper's [1]). *)

val centralized : n:int -> eps:float -> float
(** Θ(√n/ε²), the centralized sample complexity [16]. *)

val thm11_lower : n:int -> k:int -> eps:float -> float
(** Theorem 1.1: Ω(√(n/k)/ε²) per player, any decision rule, valid for
    k ≤ n/ε². *)

val thm11_applies : n:int -> k:int -> eps:float -> bool

val thm61_lower : n:int -> k:int -> eps:float -> float
(** Theorem 6.1: (C/ε²)·min(√(n/k), n/k) — the full form without the
    k ≤ n/ε² restriction. *)

val thm12_and_lower : n:int -> k:int -> eps:float -> float
(** Theorem 1.2: Ω(√n/(log²k · ε²)) per player under the AND rule, valid
    for k ≤ 2^(c/ε). For k = 1 (log k = 0) this degrades to the
    centralized bound √n/ε². *)

val thm12_applies : k:int -> eps:float -> c:float -> bool
(** The k ≤ 2^(c/ε) applicability condition. *)

val thm13_threshold_lower : n:int -> k:int -> eps:float -> t:int -> float
(** Theorem 1.3: Ω(√n/(T·log²(k/ε)·ε²)) per player under the T-threshold
    rule, valid for T < c/(ε²·log²(k/ε)) and k ≤ √n. *)

val thm13_applies : n:int -> k:int -> eps:float -> t:int -> c:float -> bool

val thm14_learning_nodes : n:int -> q:int -> float
(** Theorem 1.4: Ω(n²/q²) nodes to learn a δ-approximation with q
    queries per node. *)

val thm64_rbit_lower : n:int -> k:int -> eps:float -> r:int -> float
(** Theorem 6.4: (C/ε²)·min(√(n/(2^r·k)), n/(2^r·k)) per player when
    players send r bits. *)

val fmo_and_upper : n:int -> k:int -> eps:float -> float
(** [7]'s AND-rule tester: O(√n/(k^(ε²)·ε²)) per player (exponent
    constant set to 1). *)

val fmo_threshold_upper : n:int -> k:int -> eps:float -> float
(** [7]'s threshold tester: O(√(n/k)/ε²) per player — matches
    Theorem 1.1, hence optimal. *)

val act_single_sample_nodes : n:int -> eps:float -> bits:int -> float
(** [1]: Θ(n/(2^(ℓ/2)·ε²)) single-sample nodes sending ℓ bits each. *)

val act_learning_nodes : n:int -> eps:float -> bits:int -> float
(** [1]: Θ(n²/(2^ℓ·ε²)) single-sample nodes to learn. *)

val async_time_lower : n:int -> eps:float -> rates:float array -> float
(** Section 6.2: τ = Ω(√n/(ε²·‖T‖₂)) for sampling-rate vector T. *)

val l2_norm : float array -> float
(** ‖T‖₂, exported for the asymmetric-cost experiment. *)

val lemma51_rhs : q:int -> n:int -> eps:float -> var_g:float -> float
(** Lemma 5.1: 4qε²/√n · √var(G), bounding |E_z[ν_z(G)] − μ(G)|. *)

val lemma51_applies : q:int -> n:int -> eps:float -> bool
(** q ≤ √n/(4ε²). *)

val lemma42_rhs : q:int -> n:int -> eps:float -> var_g:float -> float
(** Lemma 4.2: (20q²ε⁴/n + qε²/n)·var(G), bounding
    E_z[|ν_z(G) − μ(G)|²]. *)

val lemma42_applies : q:int -> n:int -> eps:float -> bool
(** q ≤ √n/(20ε²). *)

val lemma42_rhs_slack : q:int -> n:int -> eps:float -> var_g:float -> float
(** Lemma 4.2's right-hand side with the linear term's constant raised
    from 1 to 4: (20q²ε⁴/n + 4qε²/n)·var(G). Exhaustive verification
    (experiment F1) shows the literal constant 1 is violated by a factor
    up to 2 by the side-bit detector at q = 1 — a benign constant slip,
    since downstream uses absorb it into Ω(·) — while this slack form
    holds for every function we can enumerate. *)

val lemma43_rhs : q:int -> n:int -> eps:float -> var_g:float -> m:int -> float
(** Lemma 4.3: (q/√n + (q/√n)^(1/(2m+2)))·40m²ε²·var(G)^((2m+1)/(2m+2)),
    bounding |E_z[ν_z(G)] − μ(G)| for biased G. *)

val lemma43_applies : q:int -> n:int -> eps:float -> m:int -> bool
(** q ≤ min(√n/(40m²ε²), √n/(40m²ε²)^(m+1)). *)

val lemma44_rhs :
  q:int -> n:int -> eps:float -> var_g:float -> m:int -> c:float -> float
(** Lemma 4.4 with explicit constant [c]: 2ε²q/n·var(G) +
    C·(q/√n + (q/√n)^(1/(m+1)))·m²ε²·var(G)^(2−1/(m+1)). *)

val divergence_requirement : k:int -> delta:float -> float
(** (10): per-player divergence needed to succeed w.p. 1−δ,
    log(1/δ)/(10k) bits. *)

val asymmetric_divergence_requirement :
  k:int -> delta1:float -> delta0:float -> float
(** The Section 6.2 remark: with asymmetric error probabilities — δ₁ =
    P[reject uniform], δ₀ = P[accept far] — the log(1/δ) of (10) is
    replaced by D(B(δ₁) ‖ B(1−δ₀)); per player, divided by 10k. Recovers
    the symmetric form at δ₁ = δ₀ = δ up to the Bernoulli-vs-log
    slack, and shows highly-one-sided testers (δ₁ → 0) need {e more}
    divergence — the paper's "the highly biased tester of [7] is optimal"
    observation. *)

val divergence_budget : q:int -> n:int -> eps:float -> float
(** (12): per-player divergence available with q samples,
    (20q²ε⁴/n + qε²/n)/ln 2 bits. *)
