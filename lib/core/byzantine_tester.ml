type adversary = Push_accept | Push_reject | Smart

type t = {
  n : int;
  eps : float;
  k : int;
  q : int;
  byzantine : int;
  honest_cutoff : int;  (* reject-count cutoff for the honest votes alone *)
}

let make ~n ~eps ~k ~q ~byzantine ~calibration_trials ~rng =
  if n <= 0 || k <= 0 || q < 0 then invalid_arg "Byzantine_tester.make: bad sizes";
  if eps <= 0. || eps >= 1. then
    invalid_arg "Byzantine_tester.make: eps out of (0,1)";
  if byzantine < 0 || 2 * byzantine >= k then
    invalid_arg "Byzantine_tester.make: byzantine outside [0, k/2)";
  if calibration_trials <= 0 then invalid_arg "Byzantine_tester.make: trials <= 0";
  let honest = k - byzantine in
  let calibration_rng = Dut_prng.Rng.split rng in
  let null_rejects r =
    let count = ref 0 in
    for _ = 1 to honest do
      let samples = Array.init q (fun _ -> Dut_prng.Rng.int r n) in
      if not (Local_stat.vote_midpoint ~n ~q ~eps samples) then incr count
    done;
    !count
  in
  let honest_cutoff =
    Dut_protocol.Calibrate.reject_count_cutoff ~trials:calibration_trials
      calibration_rng ~rejects:null_rejects ~level:0.15
  in
  { n; eps; k; q; byzantine; honest_cutoff }

let accepts t ~adversary ~truth_is_far rng source =
  let honest = t.k - t.byzantine in
  let rejects = ref 0 in
  for _ = 1 to honest do
    let coins = Dut_prng.Rng.split rng in
    let samples = Array.init t.q (fun _ -> source coins) in
    if not (Local_stat.vote_midpoint ~n:t.n ~q:t.q ~eps:t.eps samples) then
      incr rejects
  done;
  let liar_rejects =
    match adversary with
    | Push_accept -> 0
    | Push_reject -> t.byzantine
    | Smart -> if truth_is_far then 0 else t.byzantine
  in
  (* Hardened rule: the referee widens its acceptance band by b, the
     most the liars could have inflated the count. *)
  !rejects + liar_rejects < t.honest_cutoff + t.byzantine

let tester ~n ~eps ~k ~q ~byzantine ~adversary ~calibration_trials ~rng ~far_flag
    =
  let t = make ~n ~eps ~k ~q ~byzantine ~calibration_trials ~rng in
  {
    Evaluate.name = Printf.sprintf "byz(b=%d,k=%d,q=%d)" byzantine k q;
    accepts = (fun rng source -> accepts t ~adversary ~truth_is_far:far_flag rng source);
  }

let tolerated_faults ~n ~eps ~k ~q =
  let mu0 = Local_stat.null_mean ~n ~q in
  let mu1 = Local_stat.far_mean ~n ~q ~eps in
  let cut = Local_stat.midpoint_cutoff ~n ~q ~eps in
  let p_of mu =
    if mu <= 0. then 0.
    else Dut_stats.Tail.normal_sf ((cut -. mu) /. sqrt mu)
  in
  float_of_int k *. (p_of mu1 -. p_of mu0) /. 2.
