(** Distributed uniformity testing with Byzantine players.

    Unlike crashes, Byzantine players are invisible: b of the k players
    send arbitrary bits chosen by an adversary. With one-bit messages
    the adversary's whole power is to shift the reject count by at most
    b in its preferred direction, so the calibrated-count tester
    tolerates b faults exactly when the honest signal — the gap between
    the null and far reject-count distributions — exceeds 2b plus the
    counting noise. The referee hardens by widening its acceptance band
    by b on both sides (it must assume the b liars pushed either way),
    which costs power but never safety. The T19-byzantine experiment
    measures the degradation and locates the tolerated-fault threshold;
    the tester also exposes its theoretical tolerance for comparison. *)

type adversary =
  | Push_accept  (** liars always vote accept: hides a far distribution *)
  | Push_reject  (** liars always vote reject: frames a uniform one *)
  | Smart
      (** liars see the true world and push in the harmful direction
          (accept under far, reject under uniform) — the worst case *)

type t

val make :
  n:int ->
  eps:float ->
  k:int ->
  q:int ->
  byzantine:int ->
  calibration_trials:int ->
  rng:Dut_prng.Rng.t ->
  t
(** A tester hardened against [byzantine] liars: referee cutoffs widened
    by that many votes on both sides.

    @raise Invalid_argument if [byzantine] outside [0, k/2), other
    arguments as the plain testers. *)

val accepts :
  t -> adversary:adversary -> truth_is_far:bool -> Dut_prng.Rng.t ->
  Dut_protocol.Network.source -> bool
(** One round against the given adversary. [truth_is_far] is what the
    {!Smart} adversary knows (the other adversaries ignore it). *)

val tester :
  n:int ->
  eps:float ->
  k:int ->
  q:int ->
  byzantine:int ->
  adversary:adversary ->
  calibration_trials:int ->
  rng:Dut_prng.Rng.t ->
  far_flag:bool ->
  Evaluate.tester
(** Package one (adversary, world) configuration for measurement;
    [far_flag] tells the {!Smart} adversary which world the evaluation
    harness will feed it. *)

val tolerated_faults : n:int -> eps:float -> k:int -> q:int -> float
(** The scale of b the signal can absorb: k·(p_far − p_null)/2 with the
    midpoint-cutoff vote probabilities approximated by the normal model
    — exposed so the experiment can compare measured vs predicted
    breakdown. *)
