type family =
  | Clique
  | Matching
  | Bipartite
  | Random_regular of { degree : int; seed : int }
  | Explicit of (int * int) array

type t = {
  q : int;
  family : family;
  (* Flattened edge list [|u0;v0;u1;v1;...|] with u < v, sorted; empty
     for the clique, whose statistic goes through the counting-sort
     collision kernel instead of an O(q^2) edge walk. *)
  edge_ends : int array;
  edge_count : int;
  triangle_count : int;
  (* Float edge/triangle counts fed to the cutoff core. For the clique
     these are computed by the same C(q,2)/C(q,3) float expressions
     Local_stat's clique wrappers use, so clique cutoffs are
     bit-identical to the hand-written testers' by construction. *)
  edges_f : float;
  triangles_f : float;
}

let family_name = function
  | Clique -> "clique"
  | Matching -> "matching"
  | Bipartite -> "bipartite"
  | Random_regular { degree; _ } -> Printf.sprintf "regular%d" degree
  | Explicit _ -> "explicit"

(* -- Construction ------------------------------------------------------- *)

let edge_key ~q u v = (u * q) + v

let normalize_edge name q (u, v) =
  if u < 0 || v < 0 || u >= q || v >= q then
    invalid_arg (Printf.sprintf "%s: edge endpoint outside [0,q)" name);
  if u = v then invalid_arg (Printf.sprintf "%s: self-loop" name);
  if u < v then (u, v) else (v, u)

let sort_edges pairs =
  List.sort
    (fun (a, b) (c, d) ->
      match Int.compare a c with 0 -> Int.compare b d | o -> o)
    pairs

let flatten_edges pairs =
  let m = List.length pairs in
  let ends = Array.make (2 * m) 0 in
  List.iteri
    (fun i (u, v) ->
      ends.(2 * i) <- u;
      ends.((2 * i) + 1) <- v)
    pairs;
  ends

(* Triangle count by sorted-adjacency merge: each triangle {a<b<c} is
   counted exactly once, at its lexicographically least edge (a,b) with
   common neighbour c > b. O(sum over edges of deg). *)
let count_triangles ~q pairs =
  let adj = Array.make q [] in
  List.iter
    (fun (u, v) ->
      adj.(u) <- v :: adj.(u);
      adj.(v) <- u :: adj.(v))
    pairs;
  let adj = Array.map (fun l -> Array.of_list (List.sort_uniq Int.compare l)) adj in
  let common_above floor a b =
    let la = Array.length a and lb = Array.length b in
    let rec go i j acc =
      if i >= la || j >= lb then acc
      else if a.(i) < b.(j) then go (i + 1) j acc
      else if a.(i) > b.(j) then go i (j + 1) acc
      else go (i + 1) (j + 1) (if a.(i) > floor then acc + 1 else acc)
    in
    go 0 0 0
  in
  List.fold_left
    (fun acc (u, v) -> acc + common_above v adj.(u) adj.(v))
    0 pairs

(* Deterministic random d-regular graph: a circulant base (always
   simple and d-regular for d <= q-1, with the q/2 chord when d is odd)
   randomized by double-edge swaps. Each swap replaces edges (a,b),(c,d)
   with (a,d),(c,b) when that keeps the graph simple, preserving every
   degree; 10·m accepted-or-skipped proposals mix the edge set. Fully
   determined by (q, degree, seed). *)
let random_regular_edges ~q ~degree ~seed =
  if degree < 1 || degree > q - 1 then
    invalid_arg "Comparison_graph: regular degree outside [1, q-1]";
  if degree * q mod 2 <> 0 then
    invalid_arg "Comparison_graph: regular graph needs q*degree even";
  let present = Hashtbl.create (q * degree) in
  let add u v = Hashtbl.replace present (edge_key ~q (min u v) (max u v)) () in
  let remove u v = Hashtbl.remove present (edge_key ~q (min u v) (max u v)) in
  let mem u v = Hashtbl.mem present (edge_key ~q (min u v) (max u v)) in
  for i = 0 to q - 1 do
    for j = 1 to degree / 2 do
      add i ((i + j) mod q)
    done;
    if degree land 1 = 1 && i < q / 2 then add i (i + (q / 2))
  done;
  let m = degree * q / 2 in
  let us = Array.make m 0 and vs = Array.make m 0 in
  let idx = ref 0 in
  Hashtbl.iter
    (fun key () ->
      us.(!idx) <- key / q;
      vs.(!idx) <- key mod q;
      incr idx)
    present;
  (* Hashtbl iteration order is implementation-defined; sort so the
     swap walk is a pure function of (q, degree, seed). *)
  let order = Array.init m Fun.id in
  Array.sort
    (fun i j -> Int.compare (edge_key ~q us.(i) vs.(i)) (edge_key ~q us.(j) vs.(j)))
    order;
  let us = Array.map (fun i -> us.(i)) order
  and vs = Array.map (fun i -> vs.(i)) order in
  let rng = Dut_prng.Rng.create (0x9e3779b9 lxor seed) in
  for _ = 1 to 10 * m do
    let i = Dut_prng.Rng.int rng m and j = Dut_prng.Rng.int rng m in
    if i <> j then begin
      let a = us.(i) and b = vs.(i) and c = us.(j) and d = vs.(j) in
      (* Propose (a,d) and (c,b). *)
      if a <> d && c <> b && (not (mem a d)) && not (mem c b) then begin
        remove a b;
        remove c d;
        add a d;
        add c b;
        us.(i) <- min a d;
        vs.(i) <- max a d;
        us.(j) <- min c b;
        vs.(j) <- max c b
      end
    end
  done;
  Array.to_list (Array.init m (fun i -> (us.(i), vs.(i))))

let clique_edges_f q = float_of_int q *. float_of_int (q - 1) /. 2.

let clique_triangles_f q =
  let qf = float_of_int q in
  qf *. (qf -. 1.) *. (qf -. 2.) /. 6.

let build ~q family =
  if q < 0 then invalid_arg "Comparison_graph.build: q must be non-negative";
  match family with
  | Clique ->
      {
        q;
        family;
        edge_ends = [||];
        edge_count = q * (q - 1) / 2;
        triangle_count = q * (q - 1) * (q - 2) / 6;
        edges_f = clique_edges_f q;
        triangles_f = clique_triangles_f q;
      }
  | _ ->
      let pairs =
        match family with
        | Clique -> assert false
        | Matching ->
            (* Consecutive disjoint pairs; an odd last sample is unmatched. *)
            List.init (q / 2) (fun i -> (2 * i, (2 * i) + 1))
        | Bipartite ->
            (* Complete bipartite between the first floor(q/2) samples
               and the rest. *)
            let a = q / 2 in
            List.concat_map
              (fun u -> List.init (q - a) (fun i -> (u, a + i)))
              (List.init a Fun.id)
        | Random_regular { degree; seed } ->
            random_regular_edges ~q ~degree ~seed
        | Explicit pairs ->
            let pairs =
              sort_edges
                (List.map
                   (normalize_edge "Comparison_graph.build" q)
                   (Array.to_list pairs))
            in
            let rec dup = function
              | (a, b) :: ((c, d) :: _ as rest) ->
                  if a = c && b = d then
                    invalid_arg "Comparison_graph.build: duplicate edge"
                  else dup rest
              | _ -> ()
            in
            dup pairs;
            pairs
      in
      let pairs = sort_edges pairs in
      let m = List.length pairs in
      let triangles = count_triangles ~q pairs in
      {
        q;
        family;
        edge_ends = flatten_edges pairs;
        edge_count = m;
        triangle_count = triangles;
        edges_f = float_of_int m;
        triangles_f = float_of_int triangles;
      }

let q t = t.q

let edge_count t = t.edge_count

let triangle_count t = t.triangle_count

let edges t =
  match t.family with
  | Clique ->
      (* The clique carries no explicit edge array; materialize it. *)
      let out = Array.make t.edge_count (0, 0) in
      let idx = ref 0 in
      for u = 0 to t.q - 1 do
        for v = u + 1 to t.q - 1 do
          out.(!idx) <- (u, v);
          incr idx
        done
      done;
      out
  | _ ->
      Array.init t.edge_count (fun i ->
          (t.edge_ends.(2 * i), t.edge_ends.((2 * i) + 1)))

let name t = family_name t.family

(* -- The statistic ------------------------------------------------------ *)

let statistic ~n t samples =
  if Array.length samples <> t.q then
    invalid_arg "Comparison_graph.statistic: sample count <> q";
  match t.family with
  | Clique -> Local_stat.collisions_bounded ~n samples
  | _ ->
      let ends = t.edge_ends in
      let acc = ref 0 in
      for i = 0 to t.edge_count - 1 do
        let u = Array.unsafe_get ends (2 * i)
        and v = Array.unsafe_get ends ((2 * i) + 1) in
        if Array.unsafe_get samples u = Array.unsafe_get samples v then incr acc
      done;
      !acc

(* -- Cutoffs (the shared core, graph-parameterized) --------------------- *)

let null_mean ~n t = Local_stat.null_mean_edges ~n ~edges:t.edges_f

let far_mean ~n t ~eps = Local_stat.far_mean_edges ~n ~edges:t.edges_f ~eps

let midpoint_cutoff ~n t ~eps =
  Local_stat.midpoint_cutoff_edges ~n ~edges:t.edges_f ~eps

let alarm_cutoff ~n t ~false_alarm =
  Local_stat.alarm_cutoff_edges ~n ~edges:t.edges_f ~triangles:t.triangles_f
    ~false_alarm

let vote_midpoint ~n ~eps t samples =
  Local_stat.accepts_midpoint ~cutoff:(midpoint_cutoff ~n t ~eps)
    (statistic ~n t samples)

let vote_alarm ~n ~false_alarm t samples =
  Local_stat.accepts_alarm ~cutoff:(alarm_cutoff ~n t ~false_alarm)
    (statistic ~n t samples)

(* -- Testers ------------------------------------------------------------ *)

let check ~n ~eps ~k ~q =
  if n <= 0 || k <= 0 || q < 0 then invalid_arg "Comparison_graph: bad sizes";
  if eps <= 0. || eps >= 1. then
    invalid_arg "Comparison_graph: eps out of (0,1)"

(* Cutoffs are functions of the tester alone: hoisted out of the player
   closure, computed once per tester — the same discipline (and for the
   clique the same floats) as the hand-written testers. *)

let tester_fixed ~n ~eps ~k ~q ~t:thr family =
  check ~n ~eps ~k ~q;
  if thr < 1 || thr > k then
    invalid_arg "Comparison_graph.tester_fixed: t outside [1,k]";
  let g = build ~q family in
  (* The most detection-friendly per-player alarm rate that keeps the
     referee's null rejection probability (>= t alarms) under 1/3 with
     margin — the same level the hand-written testers use. *)
  let false_alarm = Dut_stats.Tail.binomial_max_p ~k ~t:thr ~level:0.18 in
  let cutoff = alarm_cutoff ~n g ~false_alarm in
  let player ~index:_ _coins samples =
    Local_stat.accepts_alarm ~cutoff (statistic ~n g samples)
  in
  {
    Evaluate.name =
      Printf.sprintf "graph-%s-T=%d(n=%d,k=%d,q=%d)" (family_name family) thr n
        k q;
    accepts =
      (fun rng source ->
        Dut_protocol.Network.round_accept ~rng ~source ~k ~q ~player
          ~rule:(Dut_protocol.Rule.Reject_threshold thr));
  }

let tester_and ~n ~eps ~k ~q family =
  check ~n ~eps ~k ~q;
  let g = build ~q family in
  let false_alarm = Dut_stats.Tail.binomial_max_p ~k ~t:1 ~level:0.18 in
  let cutoff = alarm_cutoff ~n g ~false_alarm in
  let player ~index:_ _coins samples =
    Local_stat.accepts_alarm ~cutoff (statistic ~n g samples)
  in
  {
    Evaluate.name =
      Printf.sprintf "graph-%s-and(n=%d,k=%d,q=%d)" (family_name family) n k q;
    accepts =
      (fun rng source ->
        Dut_protocol.Network.round_accept ~rng ~source ~k ~q ~player
          ~rule:Dut_protocol.Rule.And);
  }

let reject_count_midpoint ~n ~eps g k rng =
  (* One uniform round's reject count with midpoint-cutoff players —
     the calibration statistic, identical round shape (and for the
     clique identical draws and votes) to the hand-written majority
     tester's. *)
  let source = Dut_protocol.Network.uniform_source ~n in
  let cutoff = midpoint_cutoff ~n g ~eps in
  let player ~index:_ _coins samples =
    Local_stat.accepts_midpoint ~cutoff (statistic ~n g samples)
  in
  let round =
    Dut_protocol.Network.round ~rng ~source ~k ~q:g.q ~player
      ~rule:Dut_protocol.Rule.Majority
  in
  Array.fold_left (fun acc v -> if v then acc else acc + 1) 0 round.votes

let tester_majority ~n ~eps ~k ~q ~calibration_trials ~rng family =
  check ~n ~eps ~k ~q;
  if calibration_trials <= 0 then
    invalid_arg "Comparison_graph.tester_majority: trials <= 0";
  let g = build ~q family in
  let calibration_rng = Dut_prng.Rng.split rng in
  let referee_cutoff =
    Dut_protocol.Calibrate.reject_count_cutoff ~trials:calibration_trials
      calibration_rng
      ~rejects:(fun r -> reject_count_midpoint ~n ~eps g k r)
      ~level:0.2
  in
  let cutoff = midpoint_cutoff ~n g ~eps in
  let player ~index:_ _coins samples =
    Local_stat.accepts_midpoint ~cutoff (statistic ~n g samples)
  in
  {
    Evaluate.name =
      Printf.sprintf "graph-%s-majority(n=%d,k=%d,q=%d)" (family_name family) n
        k q;
    accepts =
      (fun rng source ->
        Dut_protocol.Network.round_accept ~rng ~source ~k ~q ~player
          ~rule:(Dut_protocol.Rule.Reject_threshold referee_cutoff));
  }
