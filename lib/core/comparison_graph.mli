(** Comparison-graph uniformity testers (Meir, arXiv:2012.01882).

    Every collision-style statistic in the zoo is a sum of edge
    indicators 1[X_i = X_j] over some graph on the q samples: the
    classic collision count is the clique, pair testers are a perfect
    matching, cross-player comparisons are a complete bipartite graph.
    This module makes the graph a value: build one from a family or an
    explicit edge set, compute its statistic, and reuse the exact
    null/far means and cutoff layer of {!Local_stat} — parameterized
    only by the graph's edge and triangle counts.

    Determinism and bit-compatibility:
    - The clique's statistic routes through
      {!Local_stat.collisions_bounded} (scratch-histogram counting sort
      under the [Scratch.set_reuse] gate), and its float edge/triangle
      counts use the same expressions as {!Local_stat}'s clique
      wrappers, so clique-graph verdicts are bit-identical to the
      hand-written testers' by construction.
    - Non-clique statistics are a branch-free walk over a flattened,
      sorted edge array — no allocation per evaluation.
    - [Random_regular] graphs are a pure function of (q, degree, seed):
      a circulant base mixed by a deterministic double-edge-swap walk. *)

type family =
  | Clique  (** All pairs: the classic collision statistic. *)
  | Matching
      (** Perfect matching on consecutive pairs (2i, 2i+1); an odd last
          sample is unmatched. *)
  | Bipartite
      (** Complete bipartite between the first floor(q/2) samples and
          the rest — the "between-players" comparison pattern. *)
  | Random_regular of { degree : int; seed : int }
      (** Deterministic random d-regular graph on the q samples.
          Requires 1 <= degree <= q-1 and q*degree even. *)
  | Explicit of (int * int) array
      (** Arbitrary simple edge set; endpoints in [0, q), no
          self-loops, no duplicates (checked). *)

type t
(** A comparison graph on q samples, with precomputed edge array and
    edge/triangle counts. *)

val build : q:int -> family -> t
(** Construct the graph for [q] samples.

    @raise Invalid_argument on a negative [q], an infeasible
    [Random_regular] degree, or an invalid [Explicit] edge set. *)

val family_name : family -> string
(** Short stable name: ["clique"], ["matching"], ["bipartite"],
    ["regular<d>"], ["explicit"]. *)

val q : t -> int

val edge_count : t -> int

val triangle_count : t -> int

val edges : t -> (int * int) array
(** The edge set, sorted, each as (u, v) with u < v. For the clique
    this materializes all C(q,2) pairs — meant for tests and small q. *)

val name : t -> string
(** {!family_name} of the graph's family. *)

val statistic : n:int -> t -> int array -> int
(** Number of edges (i, j) with samples.(i) = samples.(j). The clique
    delegates to {!Local_stat.collisions_bounded}; other families walk
    the edge array.

    @raise Invalid_argument if the sample array's length is not [q t]. *)

(** {2 Cutoffs}

    Thin graph-parameterized wrappers over the edge core in
    {!Local_stat}; see there for the model ([edges]/n means, Poisson
    then Cornish–Fisher alarm tails with the triangle skew term) and
    the strict-below comparison convention. *)

val null_mean : n:int -> t -> float

val far_mean : n:int -> t -> eps:float -> float

val midpoint_cutoff : n:int -> t -> eps:float -> float

val alarm_cutoff : n:int -> t -> false_alarm:float -> int

val vote_midpoint : n:int -> eps:float -> t -> int array -> bool
(** Accept vote: statistic strictly below {!midpoint_cutoff}
    ({!Local_stat.accepts_midpoint}; ties reject). *)

val vote_alarm : n:int -> false_alarm:float -> t -> int array -> bool
(** Accept vote: statistic strictly below {!alarm_cutoff}
    ({!Local_stat.accepts_alarm}; ties alarm). *)

(** {2 Testers}

    Complete distributed testers over a graph family, with the same
    referee rules, calibration, and false-alarm levels as the
    hand-written zoo ([And_tester], [Threshold_tester]) — which are
    themselves these constructors at [Clique]. *)

val tester_and : n:int -> eps:float -> k:int -> q:int -> family -> Evaluate.tester
(** AND referee: every player must accept. Players alarm at the
    rare-alarm cutoff calibrated so the network's null rejection
    probability stays under 1/3 (level 0.18 with t = 1). *)

val tester_fixed :
  n:int -> eps:float -> k:int -> q:int -> t:int -> family -> Evaluate.tester
(** Reject-threshold referee: reject when at least [t] players alarm.
    Per-player alarm rate from [Tail.binomial_max_p ~k ~t ~level:0.18].

    @raise Invalid_argument if [t] is outside [1, k]. *)

val tester_majority :
  n:int ->
  eps:float ->
  k:int ->
  q:int ->
  calibration_trials:int ->
  rng:Dut_prng.Rng.t ->
  family ->
  Evaluate.tester
(** Calibrated-threshold referee over midpoint-cutoff players: the
    referee cutoff is the empirical null reject-count quantile
    ([Calibrate.reject_count_cutoff ~level:0.2], [calibration_trials]
    uniform rounds on a split of [rng]). *)
