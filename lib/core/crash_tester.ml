type t = {
  n : int;
  eps : float;
  k : int;
  q : int;
  crash_prob : float;
  null_reject_rate : float;  (* per-player, estimated in calibration *)
}

(* One round: per-player crash coin, live players vote with the midpoint
   cutoff; returns (live, rejects). *)
let round ~n ~eps ~k ~q ~crash_prob rng source =
  let live = ref 0 and rejects = ref 0 in
  let messenger ~index:_ coins samples =
    if Dut_prng.Rng.bernoulli coins crash_prob then None
    else Some (Local_stat.vote_midpoint ~n ~q ~eps samples)
  in
  let (_ : bool) =
    Dut_protocol.Network.round_messages ~rng ~source ~k ~q ~messenger
      ~referee:(fun messages ->
        Array.iter
          (function
            | None -> ()
            | Some vote ->
                incr live;
                if not vote then incr rejects)
          messages;
        true)
  in
  (!live, !rejects)

let make ~n ~eps ~k ~q ~crash_prob ~calibration_trials ~rng =
  if n <= 0 || k <= 0 || q < 0 then invalid_arg "Crash_tester.make: bad sizes";
  if eps <= 0. || eps >= 1. then invalid_arg "Crash_tester.make: eps out of (0,1)";
  if crash_prob < 0. || crash_prob >= 1. then
    invalid_arg "Crash_tester.make: crash probability out of [0,1)";
  if calibration_trials <= 0 then invalid_arg "Crash_tester.make: trials <= 0";
  (* Calibration estimates the per-player null reject rate directly
     (crashes don't change a live player's vote distribution); the
     referee then uses a live-count-adapted binomial cutoff, avoiding
     the granularity traps of a fixed fraction. *)
  let calibration_rng = Dut_prng.Rng.split rng in
  let rejects = ref 0 in
  let votes = calibration_trials * 8 in
  for _ = 1 to votes do
    let samples =
      Array.init q (fun _ -> Dut_prng.Rng.int calibration_rng n)
    in
    if not (Local_stat.vote_midpoint ~n ~q ~eps samples) then incr rejects
  done;
  let rate = float_of_int !rejects /. float_of_int votes in
  (* Clamp away from the endpoints so binomial cutoffs stay sane. *)
  let rate = Float.max 0.01 (Float.min 0.95 rate) in
  { n; eps; k; q; crash_prob; null_reject_rate = rate }

let fraction_cutoff t = t.null_reject_rate

let reject_cutoff t ~live =
  (* Smallest count whose null probability (under Bin(live, rate)) is at
     most 0.2. *)
  let rec go c =
    if c > live then live + 1
    else if Dut_stats.Tail.binomial_sf ~k:live ~p:t.null_reject_rate c <= 0.2
    then c
    else go (c + 1)
  in
  go 0

let accepts t rng source =
  let live, rejects =
    round ~n:t.n ~eps:t.eps ~k:t.k ~q:t.q ~crash_prob:t.crash_prob rng source
  in
  if live = 0 then false else rejects < reject_cutoff t ~live

let tester ~n ~eps ~k ~q ~crash_prob ~calibration_trials ~rng =
  let t = make ~n ~eps ~k ~q ~crash_prob ~calibration_trials ~rng in
  {
    Evaluate.name =
      Printf.sprintf "crash(phi=%.2f,n=%d,k=%d,q=%d)" crash_prob n k q;
    accepts = accepts t;
  }
