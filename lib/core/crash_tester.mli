(** Crash-tolerant distributed uniformity testing.

    Real fleets lose nodes. Here each player independently crashes
    (sends nothing) with probability φ before voting; the referee sees
    only the live votes. Because crashes are {e visible} — a missing
    message is observable in the simultaneous model — the referee can
    adapt: calibration estimates the per-player null reject rate (a
    live player's vote distribution doesn't depend on φ), and the
    referee applies a binomial-tail cutoff at whatever live count the
    round delivered. Power degrades as if k were (1−φ)k, and no
    further: the T18-crash experiment confirms the graceful
    degradation. A round in which every player crashed is rejected
    (fail-safe). *)

type t

val make :
  n:int ->
  eps:float ->
  k:int ->
  q:int ->
  crash_prob:float ->
  calibration_trials:int ->
  rng:Dut_prng.Rng.t ->
  t
(** @raise Invalid_argument on bad sizes, eps outside (0,1), crash
    probability outside [0,1), or non-positive trials. *)

val fraction_cutoff : t -> float
(** The calibrated per-player null reject rate the binomial cutoffs are
    built from. *)

val reject_cutoff : t -> live:int -> int
(** The reject-count cutoff applied when [live] players answered: the
    smallest count with null binomial tail ≤ 0.2. *)

val accepts : t -> Dut_prng.Rng.t -> Dut_protocol.Network.source -> bool

val tester :
  n:int ->
  eps:float ->
  k:int ->
  q:int ->
  crash_prob:float ->
  calibration_trials:int ->
  rng:Dut_prng.Rng.t ->
  Evaluate.tester
