type tester = {
  name : string;
  accepts : Dut_prng.Rng.t -> Dut_protocol.Network.source -> bool;
}

type power = {
  uniform_accept : Dut_stats.Binomial_ci.t;
  far_reject : Dut_stats.Binomial_ci.t;
}

let uniform_event ~n tester trial_rng =
  tester.accepts trial_rng (Dut_protocol.Network.uniform_source ~n)

let far_event ~ell ~eps tester trial_rng =
  (* A fresh perturbation per trial (the mixture adversary), built in a
     per-domain scratch buffer: same draws as [Paninski.random], no
     per-trial allocation. *)
  let hard = Dut_dist.Paninski.random_scratch ~ell ~eps trial_rng in
  not (tester.accepts trial_rng (Dut_protocol.Network.of_paninski hard))

let measure ~trials ~rng ~ell ~eps tester =
  let n = 1 lsl (ell + 1) in
  let uniform_accept =
    Dut_stats.Montecarlo.estimate_prob ~trials rng (uniform_event ~n tester)
  in
  let far_reject =
    Dut_stats.Montecarlo.estimate_prob ~trials rng (far_event ~ell ~eps tester)
  in
  { uniform_accept; far_reject }

let succeeds ?(adaptive = false) ~trials ~level ~rng ~ell ~eps tester =
  if adaptive then begin
    (* Adaptive sequential stopping: each side halts as soon as its
       Wilson interval is decisively on one side of [level] (capped at
       [trials]), and a decisively failing uniform side short-circuits
       the far side entirely. The verdict criterion is unchanged —
       point estimate >= level on both sides — only the trial spend
       adapts. *)
    let n = 1 lsl (ell + 1) in
    let accept =
      Dut_stats.Montecarlo.estimate_prob_adaptive ~max_trials:trials
        ~target:level rng (uniform_event ~n tester)
    in
    accept.ci.estimate >= level
    &&
    let reject =
      Dut_stats.Montecarlo.estimate_prob_adaptive ~max_trials:trials
        ~target:level rng (far_event ~ell ~eps tester)
    in
    reject.ci.estimate >= level
  end
  else begin
    let p = measure ~trials ~rng ~ell ~eps tester in
    p.uniform_accept.estimate >= level && p.far_reject.estimate >= level
  end

let critical_q ?adaptive ~trials ~level ~rng ~ell ~eps ?(lo = 1)
    ?(hi = 1 lsl 20) ?guess make =
  let ok q =
    let probe_rng = Dut_prng.Rng.split rng in
    succeeds ?adaptive ~trials ~level ~rng:probe_rng ~ell ~eps (make q)
  in
  match guess with
  | Some guess -> Dut_stats.Critical.search_seeded ~lo ~hi ~guess ok
  | None -> Dut_stats.Critical.search ~lo ~hi ok
