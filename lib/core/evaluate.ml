type tester = {
  name : string;
  accepts : Dut_prng.Rng.t -> Dut_protocol.Network.source -> bool;
}

type power = {
  uniform_accept : Dut_stats.Binomial_ci.t;
  far_reject : Dut_stats.Binomial_ci.t;
}

let measure ~trials ~rng ~ell ~eps tester =
  let n = 1 lsl (ell + 1) in
  let uniform_accept =
    Dut_stats.Montecarlo.estimate_prob ~trials rng (fun trial_rng ->
        tester.accepts trial_rng (Dut_protocol.Network.uniform_source ~n))
  in
  let far_reject =
    Dut_stats.Montecarlo.estimate_prob ~trials rng (fun trial_rng ->
        let hard = Dut_dist.Paninski.random ~ell ~eps trial_rng in
        not (tester.accepts trial_rng (Dut_protocol.Network.of_paninski hard)))
  in
  { uniform_accept; far_reject }

let succeeds ~trials ~level ~rng ~ell ~eps tester =
  let p = measure ~trials ~rng ~ell ~eps tester in
  p.uniform_accept.estimate >= level && p.far_reject.estimate >= level

let critical_q ~trials ~level ~rng ~ell ~eps ?(lo = 1) ?(hi = 1 lsl 20) make =
  Dut_stats.Critical.search ~lo ~hi (fun q ->
      let probe_rng = Dut_prng.Rng.split rng in
      succeeds ~trials ~level ~rng:probe_rng ~ell ~eps (make q))
