(** Empirical evaluation of testers against the paper's adversary.

    A tester is judged exactly as in Section 2: it must accept the
    uniform distribution with probability ≥ 2/3 and reject a random hard
    instance ν_z with probability ≥ 2/3, where a {e fresh} perturbation z
    is drawn for every trial (the mixture adversary of the lower bounds).
    The empirical "sample complexity" of a tester family is the least q
    at which both estimated probabilities clear a success level. *)

type tester = {
  name : string;
  accepts : Dut_prng.Rng.t -> Dut_protocol.Network.source -> bool;
      (** run one full round against a sampling oracle *)
}

type power = {
  uniform_accept : Dut_stats.Binomial_ci.t;
  far_reject : Dut_stats.Binomial_ci.t;
}
(** The two error sides, with Wilson intervals. *)

val measure :
  trials:int -> rng:Dut_prng.Rng.t -> ell:int -> eps:float -> tester -> power
(** [measure ~trials ~rng ~ell ~eps tester] estimates both success
    probabilities over [trials] rounds each: uniform rounds on U_n with
    n = 2^(ℓ+1), far rounds on ν_z with fresh random z per round. *)

val succeeds :
  ?adaptive:bool ->
  trials:int ->
  level:float ->
  rng:Dut_prng.Rng.t ->
  ell:int ->
  eps:float ->
  tester ->
  bool
(** Point-estimate success at [level] (use e.g. 0.75 to demand a margin
    over the definitional 2/3): both sides' estimates must reach it.

    With [~adaptive:true] (default [false]) each side uses
    {!Dut_stats.Montecarlo.estimate_prob_adaptive}: trials stop as soon
    as the Wilson interval is decisively above or below [level]
    (capped at [trials]), and a decisively failing uniform side skips
    the far side entirely. Off the decision boundary a probe costs
    O(chunk) trials instead of the full budget; the verdict criterion
    is the same point-estimate comparison, and the result is still
    bit-identical for every jobs count. *)

val critical_q :
  ?adaptive:bool ->
  trials:int ->
  level:float ->
  rng:Dut_prng.Rng.t ->
  ell:int ->
  eps:float ->
  ?lo:int ->
  ?hi:int ->
  ?guess:int ->
  (int -> tester) ->
  int option
(** [critical_q … make] is the least q with [succeeds (make q)], by
    doubling + bisection; [None] if even [hi] fails. Each probe gets an
    independent RNG stream derived from [rng], so probes are
    reproducible and (statistically) independent.

    [?adaptive] is forwarded to {!succeeds}. When [?guess] is given the
    bracket is warm-started there via
    {!Dut_stats.Critical.search_seeded} instead of cold-doubling from
    [lo] — grid experiments seed it with the previous grid point's q*
    scaled by the theory exponent, roughly halving the number of
    Monte-Carlo power estimates per point. *)
