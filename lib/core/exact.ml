type g = { ell : int; q : int; table : Bytes.t }

let ell g = g.ell
let q g = g.q

let domain_bits ~ell ~q = (ell + 1) * q

let domain_size ~ell ~q =
  let bits = domain_bits ~ell ~q in
  if ell < 0 || q <= 0 || bits > 24 then
    invalid_arg "Exact.domain_size: need ell >= 0, q >= 1, (ell+1)q <= 24";
  1 lsl bits

let decode_tuple ~ell ~q idx =
  let width = ell + 1 in
  let mask = (1 lsl width) - 1 in
  Array.init q (fun j -> (idx lsr (j * width)) land mask)

let of_predicate ~ell ~q f =
  let size = domain_size ~ell ~q in
  let table = Bytes.create size in
  for idx = 0 to size - 1 do
    Bytes.unsafe_set table idx
      (if f (decode_tuple ~ell ~q idx) then '\001' else '\000')
  done;
  { ell; q; table }

let collision_acceptor ~ell ~q ~cutoff =
  of_predicate ~ell ~q (fun tuple -> Local_stat.collisions tuple < cutoff)

let random_biased ~ell ~q ~accept_prob rng =
  of_predicate ~ell ~q (fun _ -> Dut_prng.Rng.bernoulli rng accept_prob)

let constant ~ell ~q value = of_predicate ~ell ~q (fun _ -> value)

let s_detector ~ell ~q =
  (* Element code 2x has s = +1 (low bit clear). *)
  of_predicate ~ell ~q (fun tuple -> tuple.(0) land 1 = 0)

let value g idx = if Bytes.unsafe_get g.table idx = '\001' then 1. else 0.

let size g = Bytes.length g.table

let mu g =
  let acc = ref 0 in
  for idx = 0 to size g - 1 do
    if Bytes.unsafe_get g.table idx = '\001' then incr acc
  done;
  float_of_int !acc /. float_of_int (size g)

let variance g =
  let m = mu g in
  m *. (1. -. m)

let nu g dist =
  if Dut_dist.Paninski.ell dist <> g.ell then
    invalid_arg "Exact.nu: family dimension mismatch";
  let n = 1 lsl (g.ell + 1) in
  let elem_prob = Array.init n (Dut_dist.Paninski.prob dist) in
  let width = g.ell + 1 in
  let mask = (1 lsl width) - 1 in
  let acc = ref 0. in
  for idx = 0 to size g - 1 do
    if Bytes.unsafe_get g.table idx = '\001' then begin
      let p = ref 1. in
      for j = 0 to g.q - 1 do
        p := !p *. elem_prob.((idx lsr (j * width)) land mask)
      done;
      acc := !acc +. !p
    end
  done;
  !acc

(* Lemma 4.1: nu_z(G) - mu(G) as a character sum. For each tuple x of
   left-cube values we extract G_x : {-1,1}^q -> {0,1} (the s-slice),
   Fourier-transform it, and accumulate
   eps^|S| * prod_{j in S} z(x_j) * Ghat_x(S) over non-empty S. *)
let diff_fourier g dist =
  if Dut_dist.Paninski.ell dist <> g.ell then
    invalid_arg "Exact.diff_fourier: family dimension mismatch";
  let eps = Dut_dist.Paninski.eps dist in
  let z = Dut_dist.Paninski.z dist in
  let m = 1 lsl g.ell in
  let width = g.ell + 1 in
  let two_q = 1 lsl g.q in
  (* The s-slice is a borrowed scratch slab, transformed in place and
     fully overwritten per x-tuple: the per-tuple [Fourier.transform]
     copy (and its record) are gone, the arithmetic is unchanged — the
     normalization [*. inv_n] is applied at the use site, on the same
     values in the same order. *)
  let slice = Dut_engine.Scratch.borrow_floats ~len:two_q in
  let inv_n = 1. /. float_of_int two_q in
  (* Iterate over x-tuples encoded base-m. *)
  let x = Array.make g.q 0 in
  let m_pow_q =
    let rec go acc i = if i = 0 then acc else go (acc * m) (i - 1) in
    go 1 g.q
  in
  let total = ref 0. in
  for xid = 0 to m_pow_q - 1 do
    (* Decode x and build the base tuple index with all s-bits = 0. *)
    let rest = ref xid in
    let base = ref 0 in
    for j = 0 to g.q - 1 do
      x.(j) <- !rest mod m;
      rest := !rest / m;
      base := !base lor ((2 * x.(j)) lsl (j * width))
    done;
    (* Fill the s-slice: s_mask bit j set means s_j = -1, i.e. element
       code 2x_j + 1, i.e. add (1 lsl (j*width)) to the index. *)
    for s_mask = 0 to two_q - 1 do
      let idx = ref !base in
      for j = 0 to g.q - 1 do
        if (s_mask lsr j) land 1 = 1 then idx := !idx lor (1 lsl (j * width))
      done;
      slice.(s_mask) <- value g !idx
    done;
    Dut_boolcube.Fourier.wht_in_place slice;
    (* Accumulate over non-empty S. *)
    for s = 1 to two_q - 1 do
      let zprod = ref 1. in
      for j = 0 to g.q - 1 do
        if (s lsr j) land 1 = 1 then zprod := !zprod *. float_of_int z.(x.(j))
      done;
      let coeff = slice.(s) *. inv_n in
      total :=
        !total
        +. (eps ** float_of_int (Dut_boolcube.Cube.popcount s))
           *. !zprod
           *. coeff
    done
  done;
  Dut_engine.Scratch.release_floats slice;
  (* Prefactor 2^q / n^q; note n^q = 2^q * m^q, so 2^q/n^q = 1/m^q. *)
  !total /. float_of_int m_pow_q

let iter_all_z ~ell f =
  if ell < 0 || ell > 4 then invalid_arg "Exact.iter_all_z: ell outside [0,4]";
  let m = 1 lsl ell in
  for z_mask = 0 to (1 lsl m) - 1 do
    f (Array.init m (fun i -> if (z_mask lsr i) land 1 = 1 then -1 else 1))
  done

let max_collisions q = q * (q - 1) / 2

let collision_pmf_of_probs ~ell ~q elem_prob =
  let n = 1 lsl (ell + 1) in
  let size = domain_size ~ell ~q in
  let width = ell + 1 in
  let mask = (1 lsl width) - 1 in
  let pmf = Array.make (max_collisions q + 1) 0. in
  let tuple = Array.make q 0 in
  for idx = 0 to size - 1 do
    let p = ref 1. in
    for j = 0 to q - 1 do
      let e = (idx lsr (j * width)) land mask in
      tuple.(j) <- e;
      p := !p *. elem_prob.(e)
    done;
    let c = Local_stat.collisions tuple in
    pmf.(c) <- pmf.(c) +. !p
  done;
  ignore n;
  pmf

let collision_pmf_uniform ~ell ~q =
  let n = 1 lsl (ell + 1) in
  collision_pmf_of_probs ~ell ~q (Array.make n (1. /. float_of_int n))

let collision_pmf_far ~ell ~q ~eps =
  let n = 1 lsl (ell + 1) in
  let acc = Array.make (max_collisions q + 1) 0. in
  let count = ref 0 in
  iter_all_z ~ell (fun z ->
      let d = Dut_dist.Paninski.create ~ell ~eps ~z in
      let pmf =
        collision_pmf_of_probs ~ell ~q (Array.init n (Dut_dist.Paninski.prob d))
      in
      Array.iteri (fun c p -> acc.(c) <- acc.(c) +. p) pmf;
      incr count);
  Array.map (fun p -> p /. float_of_int !count) acc

let message_divergence ~ell ~q ~eps ~levels message =
  let n = 1 lsl (ell + 1) in
  let size = domain_size ~ell ~q in
  let width = ell + 1 in
  let mask = (1 lsl width) - 1 in
  (* Precompute each tuple's message cell once. *)
  let cell = Array.make size 0 in
  let tuple = Array.make q 0 in
  for idx = 0 to size - 1 do
    for j = 0 to q - 1 do
      tuple.(j) <- (idx lsr (j * width)) land mask
    done;
    let m = message tuple in
    if m < 0 || m >= levels then
      invalid_arg "Exact.message_divergence: message out of range";
    cell.(idx) <- m
  done;
  let null_dist = Array.make levels 0. in
  let unif_p = 1. /. float_of_int size in
  Array.iter (fun m -> null_dist.(m) <- null_dist.(m) +. unif_p) cell;
  let log2 x = log x /. log 2. in
  let total = ref 0. in
  let count = ref 0 in
  iter_all_z ~ell (fun z ->
      let d = Dut_dist.Paninski.create ~ell ~eps ~z in
      let elem_prob = Array.init n (Dut_dist.Paninski.prob d) in
      let far_dist = Array.make levels 0. in
      for idx = 0 to size - 1 do
        let p = ref 1. in
        for j = 0 to q - 1 do
          p := !p *. elem_prob.((idx lsr (j * width)) land mask)
        done;
        far_dist.(cell.(idx)) <- far_dist.(cell.(idx)) +. !p
      done;
      let kl = ref 0. in
      for m = 0 to levels - 1 do
        if far_dist.(m) > 0. then
          kl := !kl +. (far_dist.(m) *. log2 (far_dist.(m) /. null_dist.(m)))
      done;
      total := !total +. !kl;
      incr count);
  !total /. float_of_int !count

let exact_test_power ~null ~far ~cutoff =
  let mass pmf =
    let acc = ref 0. in
    Array.iteri (fun c p -> if c < cutoff then acc := !acc +. p) pmf;
    !acc
  in
  (mass null, 1. -. mass far)

let best_cutoff_power ~null ~far =
  let best = ref (0, 0.) in
  for cutoff = 0 to Array.length null do
    let a, r = exact_test_power ~null ~far ~cutoff in
    let v = Float.min a r in
    if v > snd !best then best := (cutoff, v)
  done;
  !best

let fold_over_z g ~eps f init =
  let base = mu g in
  let acc = ref init in
  let count = ref 0 in
  iter_all_z ~ell:g.ell (fun z ->
      let dist = Dut_dist.Paninski.create ~ell:g.ell ~eps ~z in
      acc := f !acc (nu g dist -. base);
      incr count);
  (!acc, !count)

let mean_diff_over_z g ~eps =
  let total, count = fold_over_z g ~eps (fun acc d -> acc +. d) 0. in
  total /. float_of_int count

let mean_sq_diff_over_z g ~eps =
  let total, count = fold_over_z g ~eps (fun acc d -> acc +. (d *. d)) 0. in
  total /. float_of_int count

(* Constant G gives rhs exactly 0 while the lhs carries ~1e-16 of
   summation residue; treat anything below float-rounding scale as a true
   zero. *)
let safe_ratio lhs rhs =
  if rhs = 0. then if Float.abs lhs < 1e-11 then 0. else infinity
  else lhs /. rhs

let lemma51_ratio g ~eps =
  let n = 1 lsl (g.ell + 1) in
  let lhs = Float.abs (mean_diff_over_z g ~eps) in
  let rhs = Bounds.lemma51_rhs ~q:g.q ~n ~eps ~var_g:(variance g) in
  safe_ratio lhs rhs

let lemma42_ratio g ~eps =
  let n = 1 lsl (g.ell + 1) in
  let lhs = mean_sq_diff_over_z g ~eps in
  let rhs = Bounds.lemma42_rhs ~q:g.q ~n ~eps ~var_g:(variance g) in
  safe_ratio lhs rhs

let lemma42_slack_ratio g ~eps =
  let n = 1 lsl (g.ell + 1) in
  let lhs = mean_sq_diff_over_z g ~eps in
  let rhs = Bounds.lemma42_rhs_slack ~q:g.q ~n ~eps ~var_g:(variance g) in
  safe_ratio lhs rhs

let lemma43_ratio g ~eps ~m =
  let n = 1 lsl (g.ell + 1) in
  let lhs = Float.abs (mean_diff_over_z g ~eps) in
  let rhs = Bounds.lemma43_rhs ~q:g.q ~n ~eps ~var_g:(variance g) ~m in
  safe_ratio lhs rhs

let lemma44_ratio g ~eps ~m ~c =
  let n = 1 lsl (g.ell + 1) in
  let lhs = mean_sq_diff_over_z g ~eps in
  let rhs = Bounds.lemma44_rhs ~q:g.q ~n ~eps ~var_g:(variance g) ~m ~c in
  safe_ratio lhs rhs

let lemma44_min_constant g ~eps ~m =
  let n = 1 lsl (g.ell + 1) in
  let lhs = mean_sq_diff_over_z g ~eps in
  (* rhs(C) = base + C * slope with base = rhs at C=0 and slope the
     C-coefficient; solve lhs <= base + C*slope for the least C >= 0. *)
  let base = Bounds.lemma44_rhs ~q:g.q ~n ~eps ~var_g:(variance g) ~m ~c:0. in
  let slope =
    Bounds.lemma44_rhs ~q:g.q ~n ~eps ~var_g:(variance g) ~m ~c:1. -. base
  in
  if lhs <= base +. 1e-12 then 0.
  else if slope <= 0. then infinity
  else (lhs -. base) /. slope
