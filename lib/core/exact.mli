(** Exhaustive, exact verification of the paper's Fourier machinery on
    small universes.

    The paper's Lemmas 4.1–4.3 and 5.1 are finite statements about an
    arbitrary player function G : {-1,1}^((ℓ+1)q) → {0,1}: how far the
    acceptance probability ν_z(G) can drift from μ(G). For ℓ ≤ 3 and
    q ≤ 4 we can hold the entire truth table of G, enumerate the full
    sample space of q-tuples, and enumerate {e all} 2^(2^ℓ) perturbation
    vectors z — so both sides of every inequality are computed exactly
    (up to float rounding) rather than estimated. Tuples of encoded
    elements are indexed by bit-concatenation: element j occupies bits
    [j(ℓ+1), (j+1)(ℓ+1)) of the index, which makes the tuple index of the
    paper's cube point exactly the {!Dut_boolcube.Cube} encoding. *)

type g
(** A player function: ℓ, q, and the full 0/1 truth table over the n^q
    sample tuples. *)

val ell : g -> int
val q : g -> int

val domain_size : ell:int -> q:int -> int
(** n^q = 2^((ℓ+1)·q).

    @raise Invalid_argument when (ℓ+1)·q exceeds 24 bits. *)

val of_predicate : ell:int -> q:int -> (int array -> bool) -> g
(** [of_predicate ~ell ~q f] tabulates [f] over all tuples of encoded
    elements ([f] receives the decoded tuple, length [q], entries in
    [0, 2^(ℓ+1))). *)

val collision_acceptor : ell:int -> q:int -> cutoff:int -> g
(** The canonical "good" player: accept iff the tuple's collision count
    is strictly below [cutoff] — the G that actual testers use, and the
    one that extremizes the lemmas' ratios. *)

val random_biased : ell:int -> q:int -> accept_prob:float -> Dut_prng.Rng.t -> g
(** iid Bernoulli truth table; [accept_prob] near 1 gives the
    highly-biased functions of Lemma 4.3's regime. *)

val constant : ell:int -> q:int -> bool -> g

val s_detector : ell:int -> q:int -> g
(** The extremal single-coordinate player: accept iff the first sample's
    side bit is +1. Its drift under ν_z is (ε/n)·Σ_x z(x) — mean zero but
    second moment ε²/(2n), which {e exceeds} Lemma 4.2's literal
    (20q²ε⁴/n + qε²/n)·var(G) right-hand side by a factor 2 at q = 1.
    The inequality holds with the linear term's constant raised to 4
    (see {!Dut_core.Bounds.lemma42_rhs_slack}); the paper's constants are
    asymptotic and the slack is absorbed in the Ω(·) of Theorem 6.1.
    Kept in the verification family precisely to document this. *)

val mu : g -> float
(** μ(G): acceptance probability under uniform samples. *)

val variance : g -> float
(** var(G) = μ(G)(1 − μ(G)) for a Boolean G. *)

val nu : g -> Dut_dist.Paninski.t -> float
(** ν_z(G): acceptance probability when the q samples are iid ν_z —
    computed by exact summation over all n^q tuples.

    @raise Invalid_argument if the family's ℓ does not match. *)

val diff_fourier : g -> Dut_dist.Paninski.t -> float
(** ν_z(G) − μ(G) computed through Lemma 4.1's character expansion:
    (2^q/n^q)·Σ over non-empty S and left-tuples x of
    ε^card(S)·Π_(j∈S) z(x_j)·(Fourier coefficient of G_x at S).
    Must agree with [nu g d -. mu g] to float precision — the executable
    form of Lemma 4.1. *)

val iter_all_z : ell:int -> (int array -> unit) -> unit
(** Enumerate all 2^(2^ℓ) perturbation vectors (ℓ ≤ 4). *)

val collision_pmf_uniform : ell:int -> q:int -> float array
(** The exact distribution of the collision statistic for q iid uniform
    samples on n = 2^(ℓ+1) elements: entry c is P[collisions = c],
    indexed 0 .. C(q,2). Computed by full tuple enumeration. *)

val collision_pmf_far : ell:int -> q:int -> eps:float -> float array
(** The same under ν_z^q, averaged over {e all} perturbations z — the
    mixture the lower bounds play against. (For the collision statistic
    the distribution is identical for every z by the family's symmetry,
    but we average rather than assume it.) *)

val message_divergence :
  ell:int -> q:int -> eps:float -> levels:int -> (int array -> int) -> float
(** [message_divergence ~ell ~q ~eps ~levels message] is the exact
    E_z[D(message distribution under ν_z^q ‖ under μ^q)] in bits, for a
    player that sends [message tuple] ∈ [0, levels): the per-player
    information budget of Section 6 generalized to multi-valued
    messages (Theorem 6.4's subject). Computed by full enumeration of
    tuples and perturbations.

    @raise Invalid_argument if a message lands outside [0, levels). *)

val exact_test_power :
  null:float array -> far:float array -> cutoff:int -> float * float
(** [(accept-uniform, reject-far)] of the rule "accept iff statistic <
    cutoff", from two statistic distributions. *)

val best_cutoff_power : null:float array -> far:float array -> int * float
(** The cutoff maximizing min(accept-uniform, reject-far), with the
    achieved value — the exact optimal centralized collision tester. *)

val mean_diff_over_z : g -> eps:float -> float
(** E_z[ν_z(G)] − μ(G), exact over all z — Lemma 5.1's left-hand side. *)

val mean_sq_diff_over_z : g -> eps:float -> float
(** E_z[(ν_z(G) − μ(G))²], exact — Lemma 4.2's left-hand side. *)

val lemma51_ratio : g -> eps:float -> float
(** LHS/RHS of Lemma 5.1 (≤ 1 when the lemma's q-condition holds; 0/0 is
    reported as 0 for constant G). *)

val lemma42_ratio : g -> eps:float -> float
(** LHS/RHS of Lemma 4.2 with the paper's literal constants. *)

val lemma42_slack_ratio : g -> eps:float -> float
(** LHS/RHS of Lemma 4.2 against {!Dut_core.Bounds.lemma42_rhs_slack}
    (linear-term constant 4); ≤ 1 for every function we enumerate. *)

val lemma43_ratio : g -> eps:float -> m:int -> float
(** LHS/RHS of Lemma 4.3 at moment parameter [m]. *)

val lemma44_ratio : g -> eps:float -> m:int -> c:float -> float
(** LHS/RHS of Lemma 4.4 (the medium-variance interpolation) at moment
    parameter [m] with explicit constant [c] — the paper only asserts
    the existence of a suitable C, so the experiment reports the ratio
    at C = 1 and the smallest C that would make each instance pass. *)

val lemma44_min_constant : g -> eps:float -> m:int -> float
(** The smallest C ≥ 0 such that Lemma 4.4's inequality holds for this
    G (direct solve: the RHS is affine in C); 0 when even C = 0
    suffices, [infinity] when the C-term's coefficient vanishes while
    the inequality fails. *)
