type t = { n : int; k : int; q : int }

let make ~n ~k ~q =
  if n <= 0 || q <= 0 then invalid_arg "Learning.make: bad sizes";
  if k < n then invalid_arg "Learning.make: need at least one watcher per element";
  { n; k; q }

let estimate t rng source =
  let hits = Array.make t.n 0 in
  let watchers = Array.make t.n 0 in
  let messenger ~index _coins samples =
    let target = index mod t.n in
    let seen = Array.exists (fun s -> s = target) samples in
    (target, seen)
  in
  let (_ : bool) =
    Dut_protocol.Network.round_messages ~rng ~source ~k:t.k ~q:t.q ~messenger
      ~referee:(fun messages ->
        Array.iter
          (fun (target, seen) ->
            watchers.(target) <- watchers.(target) + 1;
            if seen then hits.(target) <- hits.(target) + 1)
          messages;
        true)
  in
  (* Invert the hit rate: f = 1 - (1-p)^q  =>  p = 1 - (1-f)^(1/q). *)
  let raw =
    Array.init t.n (fun e ->
        let f = float_of_int hits.(e) /. float_of_int watchers.(e) in
        let f = Float.min f (1. -. 1e-9) in
        1. -. ((1. -. f) ** (1. /. float_of_int t.q)))
  in
  let total = Array.fold_left ( +. ) 0. raw in
  if total <= 0. then Dut_dist.Pmf.uniform t.n
  else Dut_dist.Pmf.create (Array.map (fun p -> p /. total) raw)

let l1_error t rng ~truth =
  let sampler = Dut_dist.Sampler.of_pmf truth in
  let est = estimate t rng (Dut_protocol.Network.of_sampler sampler) in
  Dut_dist.Distance.l1 est truth

let mean_l1_error ~trials ~rng ~n ~k ~q ~truth =
  let t = make ~n ~k ~q in
  Dut_stats.Montecarlo.estimate_mean ~trials rng (fun r -> l1_error t r ~truth)

let critical_k ~trials ~rng ~ell ~eps ~q ~delta ?(hi = 1 lsl 22) () =
  let n = 1 lsl (ell + 1) in
  (* Search over multiples of n: k = n * w for w watchers per element. *)
  let ok w =
    let k = n * w in
    let probe_rng = Dut_prng.Rng.split rng in
    let t = make ~n ~k ~q in
    let mean_err =
      Dut_stats.Montecarlo.estimate_mean ~trials probe_rng (fun r ->
          let truth_pmf =
            Dut_dist.Paninski.pmf (Dut_dist.Paninski.random ~ell ~eps r)
          in
          l1_error t r ~truth:truth_pmf)
    in
    mean_err.mean < delta
  in
  match Dut_stats.Critical.search ~lo:1 ~hi:(max 1 (hi / n)) ok with
  | None -> None
  | Some w -> Some (n * w)
