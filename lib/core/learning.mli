(** Distributed learning of an unknown distribution (Theorem 1.4's
    problem, after [1]).

    k players each hold q samples and send a single bit; the referee must
    output a pmf within ℓ1 distance δ of the unknown input. The protocol:
    player i watches element i mod n and reports whether it saw it at
    all; the referee inverts the per-element hit rate
    f_e ≈ 1 − (1−p_e)^q into an estimate of p_e and normalizes. The
    measured k needed for a given δ decreases with q; Theorem 1.4 says no
    protocol beats k = Ω(n²/q²). *)

type t

val make : n:int -> k:int -> q:int -> t
(** @raise Invalid_argument if [k < n] (every element needs a watcher)
    or sizes are non-positive. *)

val estimate : t -> Dut_prng.Rng.t -> Dut_protocol.Network.source -> Dut_dist.Pmf.t
(** Run one round and return the referee's reconstructed pmf. *)

val l1_error :
  t -> Dut_prng.Rng.t -> truth:Dut_dist.Pmf.t -> float
(** One round against a known truth; returns ‖estimate − truth‖₁. *)

val mean_l1_error :
  trials:int ->
  rng:Dut_prng.Rng.t ->
  n:int ->
  k:int ->
  q:int ->
  truth:Dut_dist.Pmf.t ->
  Dut_stats.Summary.t
(** Error distribution over repeated rounds. *)

val critical_k :
  trials:int ->
  rng:Dut_prng.Rng.t ->
  ell:int ->
  eps:float ->
  q:int ->
  delta:float ->
  ?hi:int ->
  unit ->
  int option
(** The least k (restricted to multiples of n for watcher balance) whose
    mean ℓ1 error against random hard-family instances is below
    [delta]. *)
