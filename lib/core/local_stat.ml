let collisions samples =
  let a = Array.copy samples in
  Array.sort Int.compare a;
  let q = Array.length a in
  (* Sum C(run,2) over maximal runs of equal values. *)
  let total = ref 0 in
  let run = ref 1 in
  for i = 1 to q - 1 do
    if a.(i) = a.(i - 1) then incr run
    else begin
      total := !total + (!run * (!run - 1) / 2);
      run := 1
    end
  done;
  if q > 0 then total := !total + (!run * (!run - 1) / 2);
  !total

(* Largest universe for which the counting path (a per-domain
   generation-stamped histogram) is used; beyond it the backing arrays
   would outweigh the sort they replace. *)
let hist_universe_limit = 1 lsl 16

(* Top-level recursion instead of [Array.iter f] + a [ref]: the
   capturing closure and the accumulator cell were the last per-call
   allocations on the statistic every player evaluates every round. *)
let rec bump_all h samples i q acc =
  if i >= q then acc
  else
    bump_all h samples (i + 1) q
      (acc + Dut_engine.Scratch.bump h (Array.unsafe_get samples i) - 1)

let collisions_bounded ~n samples =
  if n <= 0 then invalid_arg "Local_stat.collisions_bounded: n <= 0";
  if n > hist_universe_limit || not (Dut_engine.Scratch.reuse_enabled ()) then
    collisions samples
  else
    (* Counting sort via scratch histogram: O(q) with zero allocation
       (clearing is a generation bump, not an O(n) zeroing). Growing a
       bucket from c-1 to c creates exactly c-1 new colliding pairs, so
       one pass accumulates sum C(count,2). *)
    let h = Dut_engine.Scratch.hist ~size:n in
    bump_all h samples 0 (Array.length samples) 0

let pairs q = float_of_int q *. float_of_int (q - 1) /. 2.

let triples q =
  let qf = float_of_int q in
  qf *. (qf -. 1.) *. (qf -. 2.) /. 6.

(* -- The edge-parameterized cutoff core --------------------------------

   Every collision-style statistic is a sum of edge indicators
   1[X_i = X_j] over some comparison graph on the samples (Meir,
   arXiv:2012.01882). Under the uniform null each edge fires with
   probability 1/n and any two distinct edges are pairwise independent
   (P[two shared-vertex edges both fire] = P[three samples equal]
   = 1/n^2 = P for disjoint edges), so the mean and variance depend on
   the graph only through its edge count; the third central moment
   additionally sees the triangle count. The clique specializes to the
   classic collision statistic: edges = C(q,2), triangles = C(q,3). *)

let null_mean_edges ~n ~edges = edges /. float_of_int n

let far_mean_edges ~n ~edges ~eps = edges *. (1. +. (eps *. eps)) /. float_of_int n

let midpoint_cutoff_edges ~n ~edges ~eps =
  edges *. (1. +. (eps *. eps /. 2.)) /. float_of_int n

let alarm_cutoff_edges ~n ~edges ~triangles ~false_alarm =
  let mean = null_mean_edges ~n ~edges in
  if mean <= 50. then Dut_stats.Tail.count_cutoff ~mean ~p:false_alarm
  else begin
    (* Beyond the Poisson regime the edge-collision count is
       right-skewed past normal: its third central moment is
       ~ mean + 6T/n^2 where T is the graph's triangle count (a triangle
       of edges fires together with probability 1/n^2, not 1/n^3; every
       other edge triple factorizes). For the clique T = C(q,3), the
       index-sharing pair triangles that matter once q > n.
       Cornish-Fisher upper quantile with that skew. The quantile is
       rounded up once — ceil(quantile + 0.5) double-rounded, inflating
       the cutoff by 1 whenever the quantile landed on an integer. *)
    let nf = float_of_int n in
    let sigma = sqrt (mean *. (1. -. (1. /. nf))) in
    let mu3 = mean +. (6. *. triangles /. (nf *. nf)) in
    let gamma = mu3 /. (sigma ** 3.) in
    let z = Dut_stats.Tail.normal_isf false_alarm in
    int_of_float
      (ceil (mean +. (sigma *. (z +. (gamma *. ((z *. z) -. 1.) /. 6.)))))
  end

(* -- The shared comparison convention -----------------------------------

   Accept iff the statistic is strictly below the cutoff; a statistic
   that ties the cutoff rejects (alarms). Midpoint cutoffs are floats
   compared in float space (exact: counts are far below 2^53); alarm
   cutoffs are integers compared in integer space. Every tester — hand
   written or graph-instantiated — must route its verdict through these
   two functions so boundary counts can never diverge between paths. *)

let accepts_midpoint ~cutoff count = float_of_int count < cutoff

let accepts_alarm ~cutoff count = count < cutoff

(* -- Clique instantiations ---------------------------------------------- *)

let null_mean ~n ~q = null_mean_edges ~n ~edges:(pairs q)

let far_mean ~n ~q ~eps = far_mean_edges ~n ~edges:(pairs q) ~eps

let midpoint_cutoff ~n ~q ~eps = midpoint_cutoff_edges ~n ~edges:(pairs q) ~eps

let alarm_cutoff ~n ~q ~false_alarm =
  alarm_cutoff_edges ~n ~edges:(pairs q) ~triangles:(triples q) ~false_alarm

let vote_midpoint ~n ~q ~eps samples =
  accepts_midpoint ~cutoff:(midpoint_cutoff ~n ~q ~eps)
    (collisions_bounded ~n samples)

let vote_alarm ~n ~q ~false_alarm samples =
  accepts_alarm ~cutoff:(alarm_cutoff ~n ~q ~false_alarm)
    (collisions_bounded ~n samples)
