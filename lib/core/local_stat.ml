let collisions samples =
  let a = Array.copy samples in
  Array.sort Int.compare a;
  let q = Array.length a in
  (* Sum C(run,2) over maximal runs of equal values. *)
  let total = ref 0 in
  let run = ref 1 in
  for i = 1 to q - 1 do
    if a.(i) = a.(i - 1) then incr run
    else begin
      total := !total + (!run * (!run - 1) / 2);
      run := 1
    end
  done;
  if q > 0 then total := !total + (!run * (!run - 1) / 2);
  !total

(* Largest universe for which the counting path (a per-domain
   generation-stamped histogram) is used; beyond it the backing arrays
   would outweigh the sort they replace. *)
let hist_universe_limit = 1 lsl 16

(* Top-level recursion instead of [Array.iter f] + a [ref]: the
   capturing closure and the accumulator cell were the last per-call
   allocations on the statistic every player evaluates every round. *)
let rec bump_all h samples i q acc =
  if i >= q then acc
  else
    bump_all h samples (i + 1) q
      (acc + Dut_engine.Scratch.bump h (Array.unsafe_get samples i) - 1)

let collisions_bounded ~n samples =
  if n <= 0 then invalid_arg "Local_stat.collisions_bounded: n <= 0";
  if n > hist_universe_limit || not (Dut_engine.Scratch.reuse_enabled ()) then
    collisions samples
  else
    (* Counting sort via scratch histogram: O(q) with zero allocation
       (clearing is a generation bump, not an O(n) zeroing). Growing a
       bucket from c-1 to c creates exactly c-1 new colliding pairs, so
       one pass accumulates sum C(count,2). *)
    let h = Dut_engine.Scratch.hist ~size:n in
    bump_all h samples 0 (Array.length samples) 0

let pairs q = float_of_int q *. float_of_int (q - 1) /. 2.

let null_mean ~n ~q = pairs q /. float_of_int n

let far_mean ~n ~q ~eps = pairs q *. (1. +. (eps *. eps)) /. float_of_int n

let midpoint_cutoff ~n ~q ~eps =
  pairs q *. (1. +. (eps *. eps /. 2.)) /. float_of_int n

let alarm_cutoff ~n ~q ~false_alarm =
  let mean = null_mean ~n ~q in
  if mean <= 50. then Dut_stats.Tail.count_cutoff ~mean ~p:false_alarm
  else begin
    (* Beyond the Poisson regime the collision count is right-skewed past
       normal: its third central moment is ~ mean + 6 C(q,3)/n^2 (the
       extra term from index-sharing pair triangles, which matters once
       q > n). Cornish-Fisher upper quantile with that skew. *)
    let qf = float_of_int q and nf = float_of_int n in
    let sigma = sqrt (mean *. (1. -. (1. /. nf))) in
    let triples = qf *. (qf -. 1.) *. (qf -. 2.) /. 6. in
    let mu3 = mean +. (6. *. triples /. (nf *. nf)) in
    let gamma = mu3 /. (sigma ** 3.) in
    let z = Dut_stats.Tail.normal_isf false_alarm in
    int_of_float
      (ceil (mean +. (sigma *. (z +. (gamma *. ((z *. z) -. 1.) /. 6.))) +. 0.5))
  end

let vote_midpoint ~n ~q ~eps samples =
  float_of_int (collisions_bounded ~n samples) < midpoint_cutoff ~n ~q ~eps

let vote_alarm ~n ~q ~false_alarm samples =
  collisions_bounded ~n samples < alarm_cutoff ~n ~q ~false_alarm
