(** The player-side local statistic shared by all distributed testers.

    Every player in the [7]-style protocols summarizes its q samples by
    the number of colliding pairs — the statistic the paper's Section 3
    identifies as the only source of signal — and compares it to a
    cutoff. Which cutoff depends on the decision rule: midpoint cutoffs
    give a constant-advantage vote (for threshold/majority referees);
    extreme tail cutoffs give rare-alarm votes (for the AND rule and
    small thresholds, where a single false alarm kills the round).

    The cutoff machinery is exposed twice: parameterized by an explicit
    edge/triangle count (the comparison-graph core shared with
    {!Comparison_graph}, where the statistic is a sum of edge indicators
    over an arbitrary graph on the samples), and specialized to the
    clique (the classic all-pairs collision count, edges = C(q,2),
    triangles = C(q,3)). The clique wrappers are thin instantiations of
    the core, so graph instances and the hand-written testers can never
    disagree on shared cutoffs. *)

val collisions : int array -> int
(** Number of unordered equal pairs among the samples, by sorting a
    scratch copy: O(q log q), independent of the universe size. *)

val collisions_bounded : n:int -> int array -> int
(** Same count for samples drawn from the universe [0 .. n-1]. For
    small universes (n ≤ 2^16) this is a counting sort through a
    per-domain generation-stamped scratch histogram — O(q) time, zero
    allocation, no O(n) clearing — and it falls back to {!collisions}
    beyond. Always returns exactly what {!collisions} would.

    @raise Invalid_argument if [n <= 0]; samples outside [0 .. n-1] are
    undefined behaviour on the counting path. *)

(** {2 The edge-parameterized cutoff core}

    [edges] and [triangles] are float counts of the comparison graph's
    edges and triangles. Under the uniform null every edge indicator
    fires with probability 1/n and any two distinct edges are pairwise
    independent, so mean and variance see only [edges]; the third
    central moment additionally sees [triangles]. *)

val null_mean_edges : n:int -> edges:float -> float
(** E[statistic] for uniform samples: edges/n. *)

val far_mean_edges : n:int -> edges:float -> eps:float -> float
(** E[statistic] under collision probability (1+ε²)/n — the minimum
    over ε-far distributions. *)

val midpoint_cutoff_edges : n:int -> edges:float -> eps:float -> float
(** The constant-advantage cutoff edges·(1+ε²/2)/n. *)

val alarm_cutoff_edges :
  n:int -> edges:float -> triangles:float -> false_alarm:float -> int
(** The rare-alarm cutoff: the smallest integer c such that
    P[statistic ≥ c] ≲ [false_alarm] under the uniform null. Uses the
    Poisson model in the sparse regime (mean ≤ 50) and a Cornish–Fisher
    corrected normal beyond it, whose third moment carries an extra
    6·triangles/n² term (a triangle of edges fires together with
    probability 1/n², which plain normal tails underestimate). The two
    regimes agree to ±1 at the handoff (pinned by test); the
    Cornish–Fisher quantile is rounded up exactly once. *)

(** {2 The comparison convention}

    Both cutoff styles accept strictly below the cutoff; a statistic
    {e equal} to the cutoff rejects (alarms). Midpoint comparisons are
    in float space (exact — counts are far below 2^53), alarm
    comparisons in integer space. Every tester must decide through
    these two functions so boundary counts cannot diverge between the
    hand-written and the graph-instantiated paths. *)

val accepts_midpoint : cutoff:float -> int -> bool
(** [accepts_midpoint ~cutoff count] is [float count < cutoff]: accept
    strictly below, reject on a tie. *)

val accepts_alarm : cutoff:int -> int -> bool
(** [accepts_alarm ~cutoff count] is [count < cutoff]: accept strictly
    below, alarm on a tie. *)

(** {2 Clique instantiations} *)

val null_mean : n:int -> q:int -> float
(** E[collisions] for q uniform samples: C(q,2)/n. *)

val far_mean : n:int -> q:int -> eps:float -> float
(** E[collisions] for q samples from a distribution with collision
    probability (1+ε²)/n — the minimum over ε-far distributions. *)

val midpoint_cutoff : n:int -> q:int -> eps:float -> float
(** The constant-advantage cutoff C(q,2)(1+ε²/2)/n. A player votes
    accept iff its collision count is strictly below this. *)

val alarm_cutoff : n:int -> q:int -> false_alarm:float -> int
(** {!alarm_cutoff_edges} at the clique: edges = C(q,2), triangles =
    C(q,3) — the count's "index-sharing pair triangle" skew term that
    matters once q > n. *)

val vote_midpoint : n:int -> q:int -> eps:float -> int array -> bool
(** Accept vote using the midpoint cutoff ({!accepts_midpoint}). *)

val vote_alarm : n:int -> q:int -> false_alarm:float -> int array -> bool
(** Accept vote using the rare-alarm cutoff ({!accepts_alarm}): [false]
    (alarm!) only when the collision count reaches the tail cutoff. *)
