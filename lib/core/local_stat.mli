(** The player-side local statistic shared by all distributed testers.

    Every player in the [7]-style protocols summarizes its q samples by
    the number of colliding pairs — the statistic the paper's Section 3
    identifies as the only source of signal — and compares it to a
    cutoff. Which cutoff depends on the decision rule: midpoint cutoffs
    give a constant-advantage vote (for threshold/majority referees);
    extreme tail cutoffs give rare-alarm votes (for the AND rule and
    small thresholds, where a single false alarm kills the round). *)

val collisions : int array -> int
(** Number of unordered equal pairs among the samples, by sorting a
    scratch copy: O(q log q), independent of the universe size. *)

val collisions_bounded : n:int -> int array -> int
(** Same count for samples drawn from the universe [0 .. n-1]. For
    small universes (n ≤ 2^16) this is a counting sort through a
    per-domain generation-stamped scratch histogram — O(q) time, zero
    allocation, no O(n) clearing — and it falls back to {!collisions}
    beyond. Always returns exactly what {!collisions} would.

    @raise Invalid_argument if [n <= 0]; samples outside [0 .. n-1] are
    undefined behaviour on the counting path. *)

val null_mean : n:int -> q:int -> float
(** E[collisions] for q uniform samples: C(q,2)/n. *)

val far_mean : n:int -> q:int -> eps:float -> float
(** E[collisions] for q samples from a distribution with collision
    probability (1+ε²)/n — the minimum over ε-far distributions. *)

val midpoint_cutoff : n:int -> q:int -> eps:float -> float
(** The constant-advantage cutoff C(q,2)(1+ε²/2)/n. A player votes
    accept iff its collision count is strictly below this. *)

val alarm_cutoff : n:int -> q:int -> false_alarm:float -> int
(** The rare-alarm cutoff: the smallest integer c such that
    P[collisions ≥ c] ≤ [false_alarm] under the uniform null. Uses the
    Poisson model in the sparse regime (mean ≤ 50) and a Cornish–Fisher
    corrected normal beyond it — the count's third moment carries an
    extra 6·C(q,3)/n² "triangle" term (index-sharing pairs) that plain
    normal tails underestimate once q > n. *)

val vote_midpoint : n:int -> q:int -> eps:float -> int array -> bool
(** Accept vote using the midpoint cutoff. *)

val vote_alarm : n:int -> q:int -> false_alarm:float -> int array -> bool
(** Accept vote using the rare-alarm cutoff: [false] (alarm!) only when
    the collision count reaches the tail cutoff. *)
