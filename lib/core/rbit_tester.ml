type t = {
  n : int;
  k : int;
  q : int;
  levels : int;
  null_mean : float;
  null_std : float;
  referee_cutoff : float;
}

let quantize_raw ~levels ~null_mean ~null_std count =
  (* Map z-scores in [-2, 2] linearly onto the bucket range. *)
  let z =
    if null_std > 0. then (float_of_int count -. null_mean) /. null_std else 0.
  in
  let unit = (z +. 2.) /. 4. in
  let idx = int_of_float (floor (unit *. float_of_int levels)) in
  if idx < 0 then 0 else if idx >= levels then levels - 1 else idx

let sum_round t rng source =
  let total = ref 0 in
  let messenger ~index:_ _coins samples =
    quantize_raw ~levels:t.levels ~null_mean:t.null_mean ~null_std:t.null_std
      (Local_stat.collisions_bounded ~n:t.n samples)
  in
  let (_ : bool) =
    Dut_protocol.Network.round_messages ~rng ~source ~k:t.k ~q:t.q ~messenger
      ~referee:(fun messages ->
        total := Array.fold_left ( + ) 0 messages;
        true)
  in
  !total

let make ~n ~eps ~k ~q ~bits ~calibration_trials ~rng =
  if n <= 0 || k <= 0 || q < 0 then invalid_arg "Rbit_tester.make: bad sizes";
  if eps <= 0. || eps >= 1. then invalid_arg "Rbit_tester.make: eps out of (0,1)";
  if bits < 1 || bits > 16 then invalid_arg "Rbit_tester.make: bits outside [1,16]";
  if calibration_trials <= 0 then invalid_arg "Rbit_tester.make: trials <= 0";
  let null_mean = Local_stat.null_mean ~n ~q in
  let null_std = sqrt null_mean in
  let proto =
    { n; k; q; levels = 1 lsl bits; null_mean; null_std; referee_cutoff = 0. }
  in
  let calibration_rng = Dut_prng.Rng.split rng in
  let cutoff =
    Dut_protocol.Calibrate.null_quantile ~trials:calibration_trials
      calibration_rng
      ~stat:(fun r ->
        float_of_int
          (sum_round proto r (Dut_protocol.Network.uniform_source ~n)))
      ~p:0.8
  in
  { proto with referee_cutoff = cutoff +. 0.5 }

let quantize t count =
  quantize_raw ~levels:t.levels ~null_mean:t.null_mean ~null_std:t.null_std count

let accepts t rng source = float_of_int (sum_round t rng source) < t.referee_cutoff

let tester ~n ~eps ~k ~q ~bits ~calibration_trials ~rng =
  let t = make ~n ~eps ~k ~q ~bits ~calibration_trials ~rng in
  {
    Evaluate.name = Printf.sprintf "rbit-%d(n=%d,k=%d,q=%d)" bits n k q;
    accepts = accepts t;
  }
