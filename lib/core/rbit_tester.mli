(** The r-bit message tester (Theorem 6.4's regime).

    Each player standardizes its collision count against the null mean
    and quantizes the z-score into 2^r buckets spanning [−2σ, +2σ]; the
    referee sums the bucket indices and rejects when the sum exceeds a
    cutoff calibrated on uniform runs. With r = 1 this degenerates to a
    one-bit vote; larger r transmits a finer sketch of the local
    statistic, buying sample complexity in line with the 2^r factor of
    Theorem 6.4 until the statistic's full resolution is exhausted. *)

type t

val make :
  n:int ->
  eps:float ->
  k:int ->
  q:int ->
  bits:int ->
  calibration_trials:int ->
  rng:Dut_prng.Rng.t ->
  t
(** @raise Invalid_argument on bad sizes, [bits] outside [1, 16], eps
    outside (0,1), or non-positive trials. *)

val quantize : t -> int -> int
(** The message (bucket index in [0, 2^bits)) a player sends for a given
    collision count. Exposed for tests. *)

val accepts : t -> Dut_prng.Rng.t -> Dut_protocol.Network.source -> bool

val tester :
  n:int ->
  eps:float ->
  k:int ->
  q:int ->
  bits:int ->
  calibration_trials:int ->
  rng:Dut_prng.Rng.t ->
  Evaluate.tester
