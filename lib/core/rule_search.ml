let vote_probs g ~eps =
  let a0 = Exact.mu g in
  let acc = ref [] in
  Exact.iter_all_z ~ell:(Exact.ell g) (fun z ->
      let d = Dut_dist.Paninski.create ~ell:(Exact.ell g) ~eps ~z in
      acc := Exact.nu g d :: !acc);
  (a0, Array.of_list (List.rev !acc))

let check_inputs ~k ~a0 ~a_far =
  if k <= 0 then invalid_arg "Rule_search: k must be positive";
  if a0 < 0. || a0 > 1. then invalid_arg "Rule_search: a0 out of [0,1]";
  if Array.length a_far = 0 then invalid_arg "Rule_search: empty far array";
  Array.iter
    (fun a -> if a < 0. || a > 1. then invalid_arg "Rule_search: a_far out of [0,1]")
    a_far

(* Layer weights: u_j = p^j (1-p)^(k-j) (per accepting input of layer j). *)
let layer_weights ~k p =
  Array.init (k + 1) (fun j ->
      (p ** float_of_int j) *. ((1. -. p) ** float_of_int (k - j)))

let far_layer_weights ~k a_far =
  let kz = Array.length a_far in
  let acc = Array.make (k + 1) 0. in
  Array.iter
    (fun a ->
      let w = layer_weights ~k a in
      Array.iteri (fun j x -> acc.(j) <- acc.(j) +. x) w)
    a_far;
  Array.map (fun x -> x /. float_of_int kz) acc

(* max_t [lambda*A(t) + (1-lambda)*R(t)] over the box: per layer take the
   whole layer iff its coefficient is positive. *)
let envelope ~k ~u ~v lambda =
  let total = ref (1. -. lambda) in
  for j = 0 to k do
    let coeff = (lambda *. u.(j)) -. ((1. -. lambda) *. v.(j)) in
    if coeff > 0. then
      total := !total +. (coeff *. Dut_boolcube.Cube.binomial k j)
  done;
  !total

(* Golden-section minimization with point reuse: each iteration
   evaluates [f] once (the surviving interior point is carried over),
   shrinking the bracket by 1/phi per step. Assumes [f] unimodal on
   [lo, hi]; returns the smallest value seen. *)
let golden_min f lo hi iters =
  let inv_phi = (sqrt 5. -. 1.) /. 2. in
  let rec go lo hi m1 f1 m2 f2 i =
    if i = 0 then Float.min f1 f2
    else if f1 < f2 then
      (* Minimum in [lo, m2]: m1 becomes the new upper probe. *)
      let m1' = lo +. ((1. -. inv_phi) *. (m2 -. lo)) in
      go lo m2 m1' (f m1') m1 f1 (i - 1)
    else
      let m2' = m1 +. (inv_phi *. (hi -. m1)) in
      go m1 hi m2 f2 m2' (f m2') (i - 1)
  in
  let m1 = lo +. ((1. -. inv_phi) *. (hi -. lo)) in
  let m2 = lo +. (inv_phi *. (hi -. lo)) in
  go lo hi m1 (f m1) m2 (f m2) iters

let envelope_value ~k ~a0 ~a_far lambda =
  check_inputs ~k ~a0 ~a_far;
  if lambda < 0. || lambda > 1. then
    invalid_arg "Rule_search: lambda out of [0,1]";
  envelope ~k ~u:(layer_weights ~k a0) ~v:(far_layer_weights ~k a_far) lambda

let best_rule_value ~k ~a0 ~a_far =
  check_inputs ~k ~a0 ~a_far;
  let u = layer_weights ~k a0 in
  let v = far_layer_weights ~k a_far in
  (* The envelope is convex in lambda. Bracket the minimizer with a
     201-point grid over [0,1] (the true minimizer lies within one grid
     step of the best grid point), then refine by golden-section on
     that one-step bracket. *)
  let f = envelope ~k ~u ~v in
  let step = 1. /. 200. in
  let best = ref infinity in
  let best_l = ref 0.5 in
  for i = 0 to 200 do
    let l = float_of_int i *. step in
    let value = f l in
    if value < !best then begin
      best := value;
      best_l := l
    end
  done;
  let lo = Float.max 0. (!best_l -. step)
  and hi = Float.min 1. (!best_l +. step) in
  Float.min !best (golden_min f lo hi 40)

let best_rule_value_integer ~k ~a0 ~a_far =
  check_inputs ~k ~a0 ~a_far;
  if k > 6 then invalid_arg "Rule_search.best_rule_value_integer: k > 6";
  let u = layer_weights ~k a0 in
  let v = far_layer_weights ~k a_far in
  (* Enumerate integer layer profiles t_j in [0, C(k,j)]. *)
  let caps = Array.init (k + 1) (fun j -> int_of_float (Dut_boolcube.Cube.binomial k j)) in
  let best = ref 0. in
  let rec go j a r =
    if j > k then begin
      let value = Float.min a (1. -. r) in
      if value > !best then best := value
    end
    else
      for t = 0 to caps.(j) do
        go (j + 1) (a +. (float_of_int t *. u.(j))) (r +. (float_of_int t *. v.(j)))
      done
  in
  go 0 0. 0.;
  !best

let and_rule_value ~k ~a0 ~a_far =
  check_inputs ~k ~a0 ~a_far;
  let kf = float_of_int k in
  let accept = a0 ** kf in
  let far_accept =
    Array.fold_left (fun acc a -> acc +. (a ** kf)) 0. a_far
    /. float_of_int (Array.length a_far)
  in
  Float.min accept (1. -. far_accept)

let strategy_family ~ell ~q =
  let max_cutoff = (q * (q - 1) / 2) + 1 in
  List.concat
    [
      List.init max_cutoff (fun c ->
          ( Printf.sprintf "collisions<%d" (c + 1),
            Exact.collision_acceptor ~ell ~q ~cutoff:(c + 1) ));
      [ ("s-detector", Exact.s_detector ~ell ~q) ];
    ]

let best_over_strategies ~ell ~q ~eps ~k =
  List.fold_left
    (fun (best, best_name) (name, g) ->
      let a0, a_far = vote_probs g ~eps in
      let value = best_rule_value ~k ~a0 ~a_far in
      if value > best then (value, name) else (best, best_name))
    (0., "-")
    (strategy_family ~ell ~q)

let best_and_over_strategies ~ell ~q ~eps ~k =
  List.fold_left
    (fun best (_, g) ->
      let a0, a_far = vote_probs g ~eps in
      Float.max best (and_rule_value ~k ~a0 ~a_far))
    0.
    (strategy_family ~ell ~q)

(* -- Graph-space strategies ---------------------------------------------
   A comparison graph plus an alarm cutoff is a player function; its
   truth table goes through the same exact-LP machinery as the built-in
   collision acceptors (the clique at every cutoff IS the collision
   family, which makes cross-checks free). *)

let graph_acceptor ~ell ~q ~cutoff family =
  let g = Comparison_graph.build ~q family in
  (* Exact tuples hold (ell+1)-bit encoded elements: n = 2^(ell+1). *)
  let n = 1 lsl (ell + 1) in
  Exact.of_predicate ~ell ~q (fun tuple ->
      Comparison_graph.statistic ~n g tuple < cutoff)

let graph_strategy_family ~ell ~q families =
  List.concat_map
    (fun family ->
      let g = Comparison_graph.build ~q family in
      let m = Comparison_graph.edge_count g in
      (* Cutoff m+1 accepts everything; still included as the "blind"
         baseline the LP can mix against. *)
      List.init (m + 1) (fun c ->
          ( Printf.sprintf "graph-%s<%d" (Comparison_graph.family_name family)
              (c + 1),
            graph_acceptor ~ell ~q ~cutoff:(c + 1) family )))
    families

let best_over_graphs ~ell ~q ~eps ~k families =
  List.fold_left
    (fun (best, best_name) (name, g) ->
      let a0, a_far = vote_probs g ~eps in
      let value = best_rule_value ~k ~a0 ~a_far in
      if value > best then (value, name) else (best, best_name))
    (0., "-")
    (graph_strategy_family ~ell ~q families)
