(** Exact optimization over {e every} decision rule — Theorem 1.1's
    "for any decision rule f" quantifier, taken literally on small
    instances.

    Fix a player function G (all k players identical, iid samples).
    Under the uniform input each bit is Bernoulli(a₀ = μ(G)); under ν_z
    it is Bernoulli(ν_z(G)). Because the bits are iid, any referee's
    acceptance probability depends on its rule f only through the layer
    counts t_j = #accepting inputs with j ones, 0 ≤ t_j ≤ C(k,j):

      accept-uniform A(t) = Σ_j t_j·a₀^j (1−a₀)^(k−j)
      reject-far     R(t) = 1 − Σ_j t_j·E_z[ν_z(G)^j (1−ν_z(G))^(k−j)]

    (the z-expectation is exact: all 2^(2^ℓ) perturbations enumerated).
    The best achievable success probability over all rules — randomized
    referees included — is max_t min(A, R) over the integer box, whose
    LP relaxation equals min_λ max_t [λA + (1−λ)R] by minimax duality
    and is computed here to high precision by minimizing the convex
    λ-envelope. A value < 2/3 is therefore an {e exact impossibility}
    for every decision rule at that (G, k, q). *)

val vote_probs : Exact.g -> eps:float -> float * float array
(** [(a0, a_z-array)]: the player's acceptance probability under
    uniform, and under every perturbation z (in {!Exact.iter_all_z}
    order). *)

val envelope_value : k:int -> a0:float -> a_far:float array -> float -> float
(** The dual λ-envelope max_t [λA(t) + (1−λ)R(t)] at one λ ∈ [0,1].
    Convex in λ; {!best_rule_value} is its minimum. Exposed so tests
    can pin both facts against the minimizer.

    @raise Invalid_argument on inputs out of range. *)

val best_rule_value : k:int -> a0:float -> a_far:float array -> float
(** The LP value of max over all (possibly randomized) rules of
    min(accept-uniform, average reject-far), for k iid player bits.
    Computed by minimizing the convex λ-envelope: a 201-point grid
    brackets the minimizer, then golden-section (with point reuse)
    refines within the one-step bracket.

    @raise Invalid_argument if [k <= 0], probabilities out of [0,1], or
    the far array is empty. *)

val best_rule_value_integer : k:int -> a0:float -> a_far:float array -> float
(** The same optimum restricted to deterministic rules (integer layer
    counts), by exact enumeration of layer profiles. Only for k ≤ 6
    (the profile count is Π(C(k,j)+1)).

    @raise Invalid_argument as above or if k > 6. *)

val and_rule_value : k:int -> a0:float -> a_far:float array -> float
(** min(accept-uniform, average reject-far) of the {e fixed} AND rule:
    a₀^k vs 1 − E_z[a_z^k]. Always ≤ {!best_rule_value}; the exact gap
    is the locality cost at this instance. *)

val best_over_strategies :
  ell:int -> q:int -> eps:float -> k:int -> float * string
(** Max of {!best_rule_value} over the built-in player-strategy family
    (collision acceptors at every cutoff and the s-detector; complements
    are unnecessary — the referee's layer counts absorb bit flips), with
    the name of the best strategy. *)

val best_and_over_strategies : ell:int -> q:int -> eps:float -> k:int -> float
(** Max of {!and_rule_value} over the same family. *)

(** {2 Graph-space strategies}

    Comparison-graph players for the exact-LP search: a graph family
    plus an alarm cutoff defines a player function, tabulated through
    {!Exact.of_predicate} like any other strategy. The clique at every
    cutoff coincides with the collision-acceptor family, so the two
    searches cross-check each other for free. *)

val graph_acceptor :
  ell:int -> q:int -> cutoff:int -> Comparison_graph.family -> Exact.g
(** The player accepting iff the graph's edge-collision statistic is
    strictly below [cutoff] (universe n = 2^(ell+1)). *)

val graph_strategy_family :
  ell:int -> q:int -> Comparison_graph.family list -> (string * Exact.g) list
(** For each family, the acceptors at every cutoff 1 .. edge_count + 1,
    named ["graph-<family><<cutoff>"]. *)

val best_over_graphs :
  ell:int ->
  q:int ->
  eps:float ->
  k:int ->
  Comparison_graph.family list ->
  float * string
(** Max of {!best_rule_value} over {!graph_strategy_family}, with the
    winning strategy's name. *)
