type t = { n : int; eps : float; k : int; buckets : int; groups : int }

let make ~n ~eps ~k ~bits =
  if n <= 0 || k <= 0 then invalid_arg "Single_sample.make: bad sizes";
  if bits < 1 || bits > 24 then invalid_arg "Single_sample.make: bits outside [1,24]";
  if 1 lsl bits > n then invalid_arg "Single_sample.make: more buckets than elements";
  if eps <= 0. || eps >= 1. then invalid_arg "Single_sample.make: eps out of (0,1)";
  (* With few buckets a single partition's signal is a low-dof chi-square
     and can land near zero; averaging over independent partitions across
     a constant number of player groups concentrates it. The group count
     must not depend on the bucket count, or it would distort the
     2^(l/2) scaling the experiment measures. *)
  let buckets = 1 lsl bits in
  let groups = max 1 (min (k / 2) 8) in
  { n; eps; k; buckets; groups }

let group_sizes t =
  Array.init t.groups (fun g ->
      let base = t.k / t.groups in
      if g < t.k mod t.groups then base + 1 else base)

let total_pairs t =
  Array.fold_left
    (fun acc kg -> acc +. (float_of_int kg *. float_of_int (kg - 1) /. 2.))
    0. (group_sizes t)

let expected_uniform t = total_pairs t /. float_of_int t.buckets

(* Under a balanced random partition into B buckets, a matched +-eps/n
   pair cancels whenever both halves land in the same bucket (probability
   ~ 1/B), so the expected squared l2 mass of the bucketed deviation is
   eps^2/n * (1 - 1/B), and the expected far-side collision count is
   (within-group pairs) * (1/B + eps^2/n * (1 - 1/B)). *)
let expected_far t =
  let b = float_of_int t.buckets in
  total_pairs t
  *. ((1. /. b) +. (t.eps *. t.eps /. float_of_int t.n *. (1. -. (1. /. b))))

let cutoff t = (expected_uniform t +. expected_far t) /. 2.

(* The pre-overhaul round body, kept verbatim: the engine benchmark's
   "before" leg (Scratch reuse off) runs it to measure the allocating
   kernels. It consumes exactly the same RNG draws as the scratch path
   below, so both produce the same verdict on the same stream. *)
let accepts_legacy t rng source =
  let block = t.n / t.buckets in
  let bucket_of =
    Array.init t.groups (fun _ ->
        let perm = Array.init t.n (fun i -> i) in
        Dut_prng.Rng.shuffle_in_place rng perm;
        let assignment = Array.make t.n 0 in
        Array.iteri (fun pos elt -> assignment.(elt) <- pos / block) perm;
        assignment)
  in
  let sizes = group_sizes t in
  let group_of_player =
    (* Players 0..k-1 assigned to groups in contiguous runs. *)
    let assignment = Array.make t.k 0 in
    let idx = ref 0 in
    Array.iteri
      (fun g kg ->
        for _ = 1 to kg do
          assignment.(!idx) <- g;
          incr idx
        done)
      sizes;
    assignment
  in
  let messenger ~index _coins samples =
    let g = group_of_player.(index) in
    (g, bucket_of.(g).(samples.(0)))
  in
  Dut_protocol.Network.round_messages ~rng ~source ~k:t.k ~q:1 ~messenger
    ~referee:(fun messages ->
      let counts = Array.make_matrix t.groups t.buckets 0 in
      Array.iter
        (fun (g, b) -> counts.(g).(b) <- counts.(g).(b) + 1)
        messages;
      let colliding = ref 0 in
      Array.iter
        (Array.iter (fun c -> colliding := !colliding + (c * (c - 1) / 2)))
        counts;
      float_of_int !colliding < cutoff t)

let accepts t =
  (* Everything that depends only on the tester's parameters is computed
     once per tester, not once per trial: the critical-k search runs
     hundreds of trials against the same [t]. *)
  let block = t.n / t.buckets in
  let cutoff = cutoff t in
  (* Players 0..k-1 are assigned to groups in contiguous runs: the first
     [k mod groups] groups carry one extra player (mirroring
     [group_sizes]), so the group of a player index is arithmetic. *)
  let base = t.k / t.groups and extra = t.k mod t.groups in
  let boundary = (base + 1) * extra in
  let group_of index =
    if index < boundary then index / (base + 1)
    else extra + ((index - boundary) / base)
  in
  fun rng source ->
    if not (Dut_engine.Scratch.reuse_enabled ()) then accepts_legacy t rng source
    else begin
    (* Public coins: one balanced random partition of [n] into equal
       buckets per player group (n and buckets are powers of two, so the
       blocks divide evenly). Balance makes the null bucket distribution
       exactly uniform; independent partitions across groups concentrate
       the far-side signal. The partitions live in borrowed per-domain
       scratch (one flat groups*n assignment table plus one permutation
       buffer) — the shuffles consume exactly the draws the old
       per-trial [Array.init] allocation did. *)
    let assignment = Dut_engine.Scratch.borrow ~len:(t.groups * t.n) in
    let perm = Dut_engine.Scratch.borrow ~len:t.n in
    for g = 0 to t.groups - 1 do
      for i = 0 to t.n - 1 do
        perm.(i) <- i
      done;
      Dut_prng.Rng.shuffle_in_place rng perm;
      let off = g * t.n in
      for pos = 0 to t.n - 1 do
        assignment.(off + perm.(pos)) <- pos / block
      done
    done;
    (* Messages are (group, bucket) pairs encoded as the single int
       g * buckets + bucket — the referee's collision count only needs
       equality within a group, and the flat code doubles as a histogram
       index. A bucket that reaches count c contributes c-1 new
       colliding pairs, so the referee is a running fold over messages:
       no message vector, no counts matrix. *)
    let messenger ~index _coins (samples : int array) =
      let g = group_of index in
      (g * t.buckets) + assignment.((g * t.n) + samples.(0))
    in
    let h = Dut_engine.Scratch.hist ~size:(t.groups * t.buckets) in
    let colliding =
      Dut_protocol.Network.round_fold ~rng ~source ~k:t.k ~q:1 ~messenger
        ~init:0
        ~f:(fun acc m -> acc + (Dut_engine.Scratch.bump h m - 1))
    in
    Dut_engine.Scratch.release perm;
    Dut_engine.Scratch.release assignment;
    float_of_int colliding < cutoff
    end

let tester ~n ~eps ~k ~bits =
  let t = make ~n ~eps ~k ~bits in
  {
    Evaluate.name = Printf.sprintf "single-sample-%dbit(n=%d,k=%d)" bits n k;
    accepts = accepts t;
  }

let critical_k ?adaptive ~trials ~level ~rng ~ell ~eps ~bits ?(hi = 1 lsl 22)
    ?guess () =
  let n = 1 lsl (ell + 1) in
  let ok k =
    let probe_rng = Dut_prng.Rng.split rng in
    Evaluate.succeeds ?adaptive ~trials ~level ~rng:probe_rng ~ell ~eps
      (tester ~n ~eps ~k ~bits)
  in
  match guess with
  | Some guess -> Dut_stats.Critical.search_seeded ~lo:2 ~hi ~guess ok
  | None -> Dut_stats.Critical.search ~lo:2 ~hi ok
