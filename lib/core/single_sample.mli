(** The single-sample, ℓ-bit protocol of Acharya–Canonne–Tyagi (the
    paper's [1]).

    Each of k players holds exactly one sample and sends ℓ bits: the
    block index of its sample under a public {e balanced} random
    partition of [n] into 2^ℓ equal blocks (public coins drawn by the
    referee each round). Balance matters: under U_n the induced block
    distribution is exactly uniform, so the partition contributes no null
    variance, while a random partition preserves the ε-far instance's
    ℓ2 deviation in expectation (the bucketed collision probability is
    1/2^ℓ + ε²/n on average). Because a single partition's signal is a
    low-degree-of-freedom chi-square that can land near zero, the players
    are split into groups with an independent partition each and the
    referee sums the within-group collision counts, thresholding the
    total at the midpoint. The protocol succeeds once
    k = Θ(n/(2^(ℓ/2)·ε²)) — the trade-off of [1] that the paper's
    Theorem 6.4 lower-bounds (and recovers at q = 1). *)

type t

val make : n:int -> eps:float -> k:int -> bits:int -> t
(** @raise Invalid_argument on bad sizes, [bits] outside [1, 24], more
    buckets than elements, or eps outside (0,1). *)

val expected_uniform : t -> float
(** E[within-group message collisions] under U_n: (Σ_g C(k_g,2))/2^ℓ
    (exact, by balance). *)

val expected_far : t -> float
(** Expected within-group collisions under an ε-far hard instance,
    averaged over the public partitions:
    (Σ_g C(k_g,2))·(1/B + ε²/n·(1−1/B)) with B = 2^ℓ — a matched pair's
    deviation cancels when both halves share a bucket. *)

val cutoff : t -> float
(** Midpoint referee cutoff. *)

val accepts : t -> Dut_prng.Rng.t -> Dut_protocol.Network.source -> bool
(** Run one round: fresh public partition, k single-sample messages,
    count collisions, threshold. *)

val tester : n:int -> eps:float -> k:int -> bits:int -> Evaluate.tester

val critical_k :
  ?adaptive:bool ->
  trials:int ->
  level:float ->
  rng:Dut_prng.Rng.t ->
  ell:int ->
  eps:float ->
  bits:int ->
  ?hi:int ->
  ?guess:int ->
  unit ->
  int option
(** The least number of players at which the protocol succeeds (the
    quantity [1] trades off against ℓ); doubling + bisection like
    {!Evaluate.critical_q}, with the same [?adaptive] stopping and
    [?guess] warm-started bracketing. *)
