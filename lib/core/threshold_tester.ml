type style =
  | Majority of { referee_cutoff : int }
  | Fixed of { t : int; local_cutoff : int }

type t = { n : int; eps : float; k : int; q : int; style : style }

let check ~n ~eps ~k ~q =
  if n <= 0 || k <= 0 || q < 0 then invalid_arg "Threshold_tester: bad sizes";
  if eps <= 0. || eps >= 1. then invalid_arg "Threshold_tester: eps out of (0,1)"

let reject_count_midpoint ~n ~eps ~q rng k =
  (* One uniform round's reject count with midpoint-cutoff players. *)
  let source = Dut_protocol.Network.uniform_source ~n in
  let cutoff = Local_stat.midpoint_cutoff ~n ~q ~eps in
  let player ~index:_ _coins samples =
    float_of_int (Local_stat.collisions_bounded ~n samples) < cutoff
  in
  let round =
    Dut_protocol.Network.round ~rng ~source ~k ~q ~player
      ~rule:Dut_protocol.Rule.Majority
  in
  Array.fold_left (fun acc v -> if v then acc else acc + 1) 0 round.votes

let make_majority ~n ~eps ~k ~q ~calibration_trials ~rng =
  check ~n ~eps ~k ~q;
  if calibration_trials <= 0 then
    invalid_arg "Threshold_tester.make_majority: trials <= 0";
  let calibration_rng = Dut_prng.Rng.split rng in
  let cutoff =
    Dut_protocol.Calibrate.reject_count_cutoff ~trials:calibration_trials
      calibration_rng
      ~rejects:(fun r -> reject_count_midpoint ~n ~eps ~q r k)
      ~level:0.2
  in
  { n; eps; k; q; style = Majority { referee_cutoff = cutoff } }

let make_fixed ~n ~eps ~k ~q ~t =
  check ~n ~eps ~k ~q;
  if t < 1 || t > k then invalid_arg "Threshold_tester.make_fixed: t outside [1,k]";
  (* The most detection-friendly per-player alarm rate that still keeps
     the referee's null rejection probability (>= t alarms) comfortably
     under 1/3 (0.18, leaving Monte-Carlo and tail-model margin). *)
  let false_alarm = Dut_stats.Tail.binomial_max_p ~k ~t ~level:0.18 in
  let local_cutoff = Local_stat.alarm_cutoff ~n ~q ~false_alarm in
  { n; eps; k; q; style = Fixed { t; local_cutoff } }

let referee_cutoff t =
  match t.style with
  | Majority { referee_cutoff } -> referee_cutoff
  | Fixed { t; _ } -> t

let accepts t rng source =
  (* Cutoffs are functions of the tester alone: computed here, once per
     round, not once per vote — the player closures compare against a
     captured constant. [vote_midpoint] recomputed its float cutoff per
     player; the captured value is the identical float, so verdicts are
     unchanged. *)
  let player =
    match t.style with
    | Majority _ ->
        let cutoff = Local_stat.midpoint_cutoff ~n:t.n ~q:t.q ~eps:t.eps in
        fun ~index:_ _coins samples ->
          float_of_int (Local_stat.collisions_bounded ~n:t.n samples) < cutoff
    | Fixed { local_cutoff; _ } ->
        fun ~index:_ _coins samples ->
          Local_stat.collisions_bounded ~n:t.n samples < local_cutoff
  in
  let rule = Dut_protocol.Rule.Reject_threshold (referee_cutoff t) in
  Dut_protocol.Network.round_accept ~rng ~source ~k:t.k ~q:t.q ~player ~rule

let tester_majority ~n ~eps ~k ~q ~calibration_trials ~rng =
  let t = make_majority ~n ~eps ~k ~q ~calibration_trials ~rng in
  {
    Evaluate.name = Printf.sprintf "majority(n=%d,k=%d,q=%d)" n k q;
    accepts = accepts t;
  }

let tester_fixed ~n ~eps ~k ~q ~t:thr =
  let t = make_fixed ~n ~eps ~k ~q ~t:thr in
  {
    Evaluate.name = Printf.sprintf "threshold-T=%d(n=%d,k=%d,q=%d)" thr n k q;
    accepts = accepts t;
  }
