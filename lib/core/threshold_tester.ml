(* Threshold testers are the clique comparison graph under a
   reject-threshold referee (fixed or calibrated): statistics and
   cutoffs come from [Comparison_graph]; this module keeps the
   historical API, names, and validation messages. *)

type style =
  | Majority of { referee_cutoff : int }
  | Fixed of { t : int; local_cutoff : int }

type t = {
  n : int;
  eps : float;
  k : int;
  q : int;
  g : Comparison_graph.t;
  style : style;
}

let check ~n ~eps ~k ~q =
  if n <= 0 || k <= 0 || q < 0 then invalid_arg "Threshold_tester: bad sizes";
  if eps <= 0. || eps >= 1. then invalid_arg "Threshold_tester: eps out of (0,1)"

let clique ~q = Comparison_graph.build ~q Comparison_graph.Clique

let reject_count_midpoint ~n ~eps g rng k =
  (* One uniform round's reject count with midpoint-cutoff players. *)
  let source = Dut_protocol.Network.uniform_source ~n in
  let cutoff = Comparison_graph.midpoint_cutoff ~n g ~eps in
  let player ~index:_ _coins samples =
    Local_stat.accepts_midpoint ~cutoff (Comparison_graph.statistic ~n g samples)
  in
  let round =
    Dut_protocol.Network.round ~rng ~source ~k ~q:(Comparison_graph.q g) ~player
      ~rule:Dut_protocol.Rule.Majority
  in
  Array.fold_left (fun acc v -> if v then acc else acc + 1) 0 round.votes

let make_majority ~n ~eps ~k ~q ~calibration_trials ~rng =
  check ~n ~eps ~k ~q;
  if calibration_trials <= 0 then
    invalid_arg "Threshold_tester.make_majority: trials <= 0";
  let g = clique ~q in
  let calibration_rng = Dut_prng.Rng.split rng in
  let cutoff =
    Dut_protocol.Calibrate.reject_count_cutoff ~trials:calibration_trials
      calibration_rng
      ~rejects:(fun r -> reject_count_midpoint ~n ~eps g r k)
      ~level:0.2
  in
  { n; eps; k; q; g; style = Majority { referee_cutoff = cutoff } }

let make_fixed ~n ~eps ~k ~q ~t =
  check ~n ~eps ~k ~q;
  if t < 1 || t > k then invalid_arg "Threshold_tester.make_fixed: t outside [1,k]";
  (* The most detection-friendly per-player alarm rate that still keeps
     the referee's null rejection probability (>= t alarms) comfortably
     under 1/3 (0.18, leaving Monte-Carlo and tail-model margin). *)
  let g = clique ~q in
  let false_alarm = Dut_stats.Tail.binomial_max_p ~k ~t ~level:0.18 in
  let local_cutoff = Comparison_graph.alarm_cutoff ~n g ~false_alarm in
  { n; eps; k; q; g; style = Fixed { t; local_cutoff } }

let referee_cutoff t =
  match t.style with
  | Majority { referee_cutoff } -> referee_cutoff
  | Fixed { t; _ } -> t

let accepts t rng source =
  (* Cutoffs are functions of the tester alone: computed here, once per
     round, not once per vote — the player closures compare against a
     captured constant. *)
  let player =
    match t.style with
    | Majority _ ->
        let cutoff = Comparison_graph.midpoint_cutoff ~n:t.n t.g ~eps:t.eps in
        fun ~index:_ _coins samples ->
          Local_stat.accepts_midpoint ~cutoff
            (Comparison_graph.statistic ~n:t.n t.g samples)
    | Fixed { local_cutoff; _ } ->
        fun ~index:_ _coins samples ->
          Local_stat.accepts_alarm ~cutoff:local_cutoff
            (Comparison_graph.statistic ~n:t.n t.g samples)
  in
  let rule = Dut_protocol.Rule.Reject_threshold (referee_cutoff t) in
  Dut_protocol.Network.round_accept ~rng ~source ~k:t.k ~q:t.q ~player ~rule

let tester_majority ~n ~eps ~k ~q ~calibration_trials ~rng =
  let t = make_majority ~n ~eps ~k ~q ~calibration_trials ~rng in
  {
    Evaluate.name = Printf.sprintf "majority(n=%d,k=%d,q=%d)" n k q;
    accepts = accepts t;
  }

let tester_fixed ~n ~eps ~k ~q ~t:thr =
  let t = make_fixed ~n ~eps ~k ~q ~t:thr in
  {
    Evaluate.name = Printf.sprintf "threshold-T=%d(n=%d,k=%d,q=%d)" thr n k q;
    accepts = accepts t;
  }
