(** Threshold-rule distributed uniformity testers, in the two regimes the
    paper contrasts.

    {b Calibrated majority} — the sample-optimal tester of [7] matching
    Theorem 1.1: every player votes with the constant-advantage midpoint
    cutoff, so each vote is a slightly-biased coin whose bias flips
    between the uniform and the far case; the referee counts reject votes
    and compares the count against a cutoff calibrated on simulated
    uniform runs. Each player only needs q = O(√(n/k)/ε²) samples because
    k weak votes aggregate.

    {b Fixed reject-threshold T} — the referee is constrained to reject
    iff at least T players reject (Theorem 1.3's rule). Players must then
    keep their individual false-alarm rate near T/k, pushing their
    cutoffs into the tail and costing samples as T shrinks; T = 1 is
    exactly the AND rule. *)

type t

val make_majority :
  n:int ->
  eps:float ->
  k:int ->
  q:int ->
  calibration_trials:int ->
  rng:Dut_prng.Rng.t ->
  t
(** Build the calibrated-majority tester. Calibration simulates
    [calibration_trials] uniform rounds on a stream split from [rng] and
    sets the referee cutoff at empirical false-alarm level 0.2.

    @raise Invalid_argument on bad sizes, eps, or trials. *)

val make_fixed : n:int -> eps:float -> k:int -> q:int -> t:int -> t
(** Build the fixed-threshold tester: referee rejects iff ≥ [t] players
    reject; players use rare-alarm cutoffs at level t/(5k).

    @raise Invalid_argument if [t] outside [1, k]. *)

val referee_cutoff : t -> int
(** The reject-count the referee is using (calibrated or fixed). *)

val accepts : t -> Dut_prng.Rng.t -> Dut_protocol.Network.source -> bool
(** Run one round. *)

val tester_majority :
  n:int ->
  eps:float ->
  k:int ->
  q:int ->
  calibration_trials:int ->
  rng:Dut_prng.Rng.t ->
  Evaluate.tester

val tester_fixed :
  n:int -> eps:float -> k:int -> q:int -> t:int -> Evaluate.tester
