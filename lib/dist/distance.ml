let check_sizes name p q =
  if Pmf.size p <> Pmf.size q then
    invalid_arg (Printf.sprintf "Distance.%s: universe size mismatch" name)

let fold2 name f init p q =
  check_sizes name p q;
  let acc = ref init in
  for i = 0 to Pmf.size p - 1 do
    acc := f !acc (Pmf.prob p i) (Pmf.prob q i)
  done;
  !acc

let l1 p q = fold2 "l1" (fun acc a b -> acc +. Float.abs (a -. b)) 0. p q

let tv p q = l1 p q /. 2.

let l2_sq p q =
  fold2 "l2_sq" (fun acc a b -> acc +. ((a -. b) *. (a -. b))) 0. p q

let log2 x = log x /. log 2.

let kl p q =
  fold2 "kl"
    (fun acc a b ->
      if a = 0. then acc
      else if b = 0. then infinity
      else acc +. (a *. log2 (a /. b)))
    0. p q

let chi2 p q =
  fold2 "chi2"
    (fun acc a b ->
      if b = 0. then if a = 0. then acc else infinity
      else acc +. ((a -. b) *. (a -. b) /. b))
    0. p q

let hellinger p q =
  let s =
    fold2 "hellinger"
      (fun acc a b ->
        let d = sqrt a -. sqrt b in
        acc +. (d *. d))
      0. p q
  in
  sqrt (s /. 2.)

let kl_bernoulli a b =
  let term x y = if x = 0. then 0. else if y = 0. then infinity else x *. log2 (x /. y) in
  term a b +. term (1. -. a) (1. -. b)

let chi2_bernoulli_bound a b =
  let var_b = b *. (1. -. b) in
  if var_b = 0. then infinity
  else (a -. b) *. (a -. b) /. (var_b *. log 2.)

let distance_to_uniformity p = l1 p (Pmf.uniform (Pmf.size p))
