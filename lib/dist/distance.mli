(** Distances and divergences between distributions on the same universe.

    All the measures the paper's Section 6 juggles: ℓ1 (the proximity
    measure of the testing problem), total variation, KL divergence
    (additive across independent players, Fact 6.2), χ²-divergence (the
    upper bound of Fact 6.3), and Hellinger. Every function raises
    [Invalid_argument] on a universe-size mismatch. *)

val l1 : Pmf.t -> Pmf.t -> float
(** ‖p − q‖₁ = Σ_i |p(i) − q(i)|. The paper's farness measure: a tester
    must reject every μ with ‖μ − U_n‖₁ ≥ ε. Twice the total variation. *)

val tv : Pmf.t -> Pmf.t -> float
(** Total variation distance = ‖p − q‖₁ / 2 ∈ [0,1]. *)

val l2_sq : Pmf.t -> Pmf.t -> float
(** Squared ℓ2 distance Σ_i (p(i) − q(i))². *)

val kl : Pmf.t -> Pmf.t -> float
(** D(p ‖ q) in bits (base-2 logarithm, matching Section 6). [infinity]
    when p puts mass where q has none; 0·log(0/·) = 0. *)

val chi2 : Pmf.t -> Pmf.t -> float
(** χ²(p ‖ q) = Σ_i (p(i) − q(i))²/q(i), over the support of q.
    [infinity] when p puts mass outside q's support. *)

val hellinger : Pmf.t -> Pmf.t -> float
(** Hellinger distance H(p,q) = (1/√2)·‖√p − √q‖₂ ∈ [0,1]. *)

val kl_bernoulli : float -> float -> float
(** [kl_bernoulli a b] = D(B(a) ‖ B(b)) in bits; the quantity bounded in
    (11)–(12) of the paper. *)

val chi2_bernoulli_bound : float -> float -> float
(** Fact 6.3's right-hand side: (a − b)² / (var(B(b))·ln 2) — an upper
    bound on [kl_bernoulli a b] for a, b ∈ (0,1). *)

val distance_to_uniformity : Pmf.t -> float
(** ‖μ − U_n‖₁ for the universe of μ. *)
