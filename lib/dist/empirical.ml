type t = { counts : int array; mutable total : int }

let create n =
  if n <= 0 then invalid_arg "Empirical.create: n must be positive";
  { counts = Array.make n 0; total = 0 }

let add t i =
  if i < 0 || i >= Array.length t.counts then
    invalid_arg "Empirical.add: sample out of range";
  t.counts.(i) <- t.counts.(i) + 1;
  t.total <- t.total + 1

let add_all t samples = Array.iter (add t) samples

let count t i =
  if i < 0 || i >= Array.length t.counts then
    invalid_arg "Empirical.count: index out of range";
  t.counts.(i)

let total t = t.total

let to_pmf t =
  if t.total = 0 then invalid_arg "Empirical.to_pmf: no samples";
  let denom = float_of_int t.total in
  Pmf.create (Array.map (fun c -> float_of_int c /. denom) t.counts)

let of_samples ~n samples =
  let t = create n in
  add_all t samples;
  t

let distinct t =
  Array.fold_left (fun acc c -> if c > 0 then acc + 1 else acc) 0 t.counts

let singletons t =
  Array.fold_left (fun acc c -> if c = 1 then acc + 1 else acc) 0 t.counts

let collision_pairs t =
  Array.fold_left (fun acc c -> acc + (c * (c - 1) / 2)) 0 t.counts
