(** Empirical distributions: histograms accumulated from samples.

    Used by the plug-in ℓ1 tester, the χ² tester and the distributed
    learning experiment (Theorem 1.4), where the referee's output {e is}
    an empirical distribution and its quality is its ℓ1 distance from the
    truth. *)

type t
(** A mutable histogram over a fixed universe. *)

val create : int -> t
(** [create n] is an empty histogram over {0,…,n−1}.

    @raise Invalid_argument if [n <= 0]. *)

val add : t -> int -> unit
(** Record one sample.

    @raise Invalid_argument if the sample is out of range. *)

val add_all : t -> int array -> unit
(** Record many samples. *)

val count : t -> int -> int
(** Occurrences of one element. *)

val total : t -> int
(** Number of samples recorded so far. *)

val to_pmf : t -> Pmf.t
(** The empirical pmf (counts / total).

    @raise Invalid_argument if no samples were recorded. *)

val of_samples : n:int -> int array -> t
(** Histogram of a sample array in one call. *)

val distinct : t -> int
(** Number of elements seen at least once (the Paninski statistic's raw
    material). *)

val singletons : t -> int
(** Number of elements seen exactly once. *)

val collision_pairs : t -> int
(** Σ_i C(count_i, 2): the number of colliding unordered pairs, the
    centralized collision tester's statistic. *)
