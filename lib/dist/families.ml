let zipf ~n ~s =
  if n <= 0 then invalid_arg "Families.zipf: n must be positive";
  if s < 0. then invalid_arg "Families.zipf: s must be non-negative";
  let w = Array.init n (fun i -> 1. /. (float_of_int (i + 1) ** s)) in
  let total = Array.fold_left ( +. ) 0. w in
  Pmf.create (Array.map (fun x -> x /. total) w)

let step ~n ~heavy_fraction ~heavy_mass =
  if heavy_fraction <= 0. || heavy_fraction >= 1. then
    invalid_arg "Families.step: heavy_fraction out of (0,1)";
  if heavy_mass <= 0. || heavy_mass >= 1. then
    invalid_arg "Families.step: heavy_mass out of (0,1)";
  let heavy = max 1 (int_of_float (ceil (heavy_fraction *. float_of_int n))) in
  let heavy = min heavy (n - 1) in
  let w =
    Array.init n (fun i ->
        if i < heavy then heavy_mass /. float_of_int heavy
        else (1. -. heavy_mass) /. float_of_int (n - heavy))
  in
  Pmf.create w

let truncated_geometric ~n ~ratio =
  if ratio <= 0. || ratio >= 1. then
    invalid_arg "Families.truncated_geometric: ratio out of (0,1)";
  let w = Array.init n (fun i -> ratio ** float_of_int i) in
  let total = Array.fold_left ( +. ) 0. w in
  Pmf.create (Array.map (fun x -> x /. total) w)

let perturb_pairwise rng ~eps p =
  let n = Pmf.size p in
  if n < 2 then invalid_arg "Families.perturb_pairwise: need >= 2 elements";
  if eps < 0. || eps >= 1. then
    invalid_arg "Families.perturb_pairwise: eps out of [0,1)";
  let w = Pmf.to_array p in
  (* Random perfect matching on indices (drop one element when n is
     odd), then transfer +-eps/n within each pair, clamped. *)
  let order = Array.init n Fun.id in
  Dut_prng.Rng.shuffle_in_place rng order;
  let delta = eps /. float_of_int n in
  let moved = ref 0. in
  let pairs = n / 2 in
  for j = 0 to pairs - 1 do
    let a = order.(2 * j) and b = order.((2 * j) + 1) in
    let src, dst = if Dut_prng.Rng.bool rng then (a, b) else (b, a) in
    let transfer = Float.min delta w.(src) in
    w.(src) <- w.(src) -. transfer;
    w.(dst) <- w.(dst) +. transfer;
    moved := !moved +. transfer
  done;
  (Pmf.create w, 2. *. !moved)
