(** Named distribution families for workloads and identity-testing
    targets. *)

val zipf : n:int -> s:float -> Pmf.t
(** Zipf/zeta law: mass of element i proportional to 1/(i+1)^s. The
    classic skewed-workload model.

    @raise Invalid_argument if [n <= 0] or [s < 0]. *)

val step : n:int -> heavy_fraction:float -> heavy_mass:float -> Pmf.t
(** Two-level distribution: the first ⌈heavy_fraction·n⌉ elements share
    [heavy_mass] of the probability; the rest share the remainder.

    @raise Invalid_argument if the fractions are outside (0,1). *)

val truncated_geometric : n:int -> ratio:float -> Pmf.t
(** Mass of element i proportional to ratio^i, 0 < ratio < 1. *)

val perturb_pairwise : Dut_prng.Rng.t -> eps:float -> Pmf.t -> Pmf.t * float
(** [perturb_pairwise rng ~eps p] produces a distribution at ℓ1 distance
    {e approximately} [eps] from [p] by moving ±eps/n between random
    matched pairs of elements (Paninski-style, generalized to a
    non-uniform base), clamping transfers so masses stay non-negative.
    Returns the perturbed pmf and its {e achieved} ℓ1 distance from [p]
    (≤ eps; equal when no clamping was needed).

    @raise Invalid_argument if eps outside [0,1) or the universe has
    fewer than 2 elements. *)
