type t = {
  ell : int;
  eps : float;
  z : int array;
  (* The per-sign acceptance thresholds of [draw], scaled by 2^53 so
     the Bernoulli coin is decided in the integer lattice of
     [Rng.bits53] (see Sampler for the exactness argument):
     thr.(1) = p_plus * 2^53 for z(x) = +1, thr.(0) for z(x) = -1.
     Indexing by (z+1) lsr 1 makes the sign selection a lookup, not a
     branch. Since eps < 1 both probabilities are strictly inside
     (0,1), so the coin always consumes exactly one draw — the same
     stream as [Rng.bernoulli]. *)
  thr : float array;
  (* The rejection mask [Rng.int] would rebuild per draw, hoisted. *)
  mask : int;
}

let thresholds eps =
  [| (1. -. eps) /. 2. *. 0x1.0p53; (1. +. eps) /. 2. *. 0x1.0p53 |]

let mask_covering n =
  let rec go m = if m >= n - 1 then m else go ((m lsl 1) lor 1) in
  go 1

let create ~ell ~eps ~z =
  if ell < 0 || ell > 20 then invalid_arg "Paninski.create: ell out of [0,20]";
  if eps < 0. || eps >= 1. then invalid_arg "Paninski.create: eps out of [0,1)";
  if Array.length z <> 1 lsl ell then
    invalid_arg "Paninski.create: z must have length 2^ell";
  Array.iter
    (fun v -> if v <> 1 && v <> -1 then invalid_arg "Paninski.create: z entries must be +-1")
    z;
  { ell; eps; z = Array.copy z; thr = thresholds eps; mask = mask_covering (1 lsl ell) }

let random ~ell ~eps rng =
  create ~ell ~eps ~z:(Dut_prng.Rng.rademacher_vector rng (1 lsl ell))

(* One scratch z-buffer per (domain, ell): the Monte-Carlo hot path
   draws a fresh hard instance per trial, and rebuilding the O(2^ell)
   vector in place avoids that allocation entirely. Indexed by ell
   (bounded by 20) so interleaved use at different sizes — e.g. a
   bench at ell = 7 and ell = 2 — never churns. *)
let scratch_z = Domain.DLS.new_key (fun () -> Array.make 21 [||])

let random_scratch ~ell ~eps rng =
  if ell < 0 || ell > 20 then invalid_arg "Paninski.random_scratch: ell out of [0,20]";
  if eps < 0. || eps >= 1. then invalid_arg "Paninski.random_scratch: eps out of [0,1)";
  if not (Dut_engine.Scratch.reuse_enabled ()) then random ~ell ~eps rng
  else
  let m = 1 lsl ell in
  let slots = Domain.DLS.get scratch_z in
  let z =
    if Array.length slots.(ell) = m then slots.(ell)
    else begin
      let b = Array.make m 1 in
      slots.(ell) <- b;
      b
    end
  in
  (* Same draws, in the same order, as [random]. *)
  Dut_prng.Rng.rademacher_vector_into rng z;
  { ell; eps; z; thr = thresholds eps; mask = mask_covering (1 lsl ell) }

let all_plus ~ell ~eps = create ~ell ~eps ~z:(Array.make (1 lsl ell) 1)

let ell t = t.ell
let eps t = t.eps
let n t = 1 lsl (t.ell + 1)
let m t = 1 lsl t.ell
let z t = Array.copy t.z

let encode ~x ~s = (2 * x) + if s = 1 then 0 else 1

let decode i = (i / 2, if i land 1 = 0 then 1 else -1)

let prob t i =
  let x, s = decode i in
  (1. +. (float_of_int s *. float_of_int t.z.(x) *. t.eps)) /. float_of_int (n t)

let pmf t = Pmf.create_exn_strict (Array.init (n t) (prob t))

(* Top-level, not a local [let rec]: a capturing rejection closure
   would cost six minor words per draw without flambda. *)
let rec masked_below rng mask n =
  let v = Dut_prng.Rng.bits63 rng land mask in
  if v < n then v else masked_below rng mask n

let draw t rng =
  let x = masked_below rng t.mask (m t) in
  let thr = Array.unsafe_get t.thr ((t.z.(x) + 1) lsr 1) in
  let plus = float_of_int (Dut_prng.Rng.bits53 rng) < thr in
  (2 * x) + Bool.to_int (not plus)

(* Batched draws with the rejection mask and tables hoisted: the same
   stream as repeated scalar [draw]s (one bounded draw, one coin per
   sample), no per-element closure. *)
let draw_block t rng buf =
  let mm = m t in
  let mask = t.mask in
  let z = t.z and thr = t.thr in
  for j = 0 to Array.length buf - 1 do
    let x = masked_below rng mask mm in
    let cut = Array.unsafe_get thr ((Array.unsafe_get z x + 1) lsr 1) in
    let plus = float_of_int (Dut_prng.Rng.bits53 rng) < cut in
    Array.unsafe_set buf j ((2 * x) + Bool.to_int (not plus))
  done

let draw_many_into t rng buf = draw_block t rng buf

let draw_many t rng q =
  let buf = Array.make q 0 in
  draw_block t rng buf;
  buf

let tuple_prob t tuple =
  Array.fold_left (fun acc i -> acc *. prob t i) 1. tuple

let tuple_prob_fourier t tuple =
  let q = Array.length tuple in
  let xs = Array.map (fun i -> fst (decode i)) tuple in
  let ss = Array.map (fun i -> snd (decode i)) tuple in
  (* Sum over all subsets S of positions: eps^|S| * prod_{j in S} s_j z(x_j). *)
  let acc = ref 0. in
  for s_mask = 0 to (1 lsl q) - 1 do
    let term = ref 1. in
    for j = 0 to q - 1 do
      if (s_mask lsr j) land 1 = 1 then
        term := !term *. t.eps *. float_of_int ss.(j) *. float_of_int t.z.(xs.(j))
    done;
    acc := !acc +. !term
  done;
  !acc /. (float_of_int (n t) ** float_of_int q)

let mixture_exact ~ell ~eps =
  let m_size = 1 lsl ell in
  if m_size > 16 then invalid_arg "Paninski.mixture_exact: ell too large to enumerate";
  let n_size = 1 lsl (ell + 1) in
  let acc = Array.make n_size 0. in
  let num_z = 1 lsl m_size in
  for z_mask = 0 to num_z - 1 do
    let z = Array.init m_size (fun x -> if (z_mask lsr x) land 1 = 1 then -1 else 1) in
    let d = create ~ell ~eps ~z in
    for i = 0 to n_size - 1 do
      acc.(i) <- acc.(i) +. prob d i
    done
  done;
  Pmf.create (Array.map (fun w -> w /. float_of_int num_z) acc)
