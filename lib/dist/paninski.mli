(** The hard distribution family of Section 3 (after Paninski 2008).

    The universe has n = 2^(ℓ+1) elements, viewed as pairs (x, s) with
    x ∈ {0,…,2^ℓ−1} (a vertex of the left cube) and s ∈ {+1,−1} (which of
    the two matched copies). Given a perturbation vector
    z : {0,…,2^ℓ−1} → {−1,+1} and proximity parameter ε, the distribution
    ν_z assigns

      ν_z(x, s) = (1 + s·z(x)·ε) / n.

    Every ν_z is exactly ε-far from uniform in ℓ1, and the mixture over a
    uniformly random z is exactly the uniform distribution — the property
    that makes the family hard. Elements are encoded as integers
    [2·x + (if s = +1 then 0 else 1)]. *)

type t
(** One member ν_z of the family (ℓ, ε and z fixed). *)

val create : ell:int -> eps:float -> z:int array -> t
(** [create ~ell ~eps ~z] builds ν_z.

    @raise Invalid_argument if [ell < 0] or [ell > 20], if [eps] ∉ [0,1),
    if [z] does not have length 2^ell, or has entries other than ±1. *)

val random : ell:int -> eps:float -> Dut_prng.Rng.t -> t
(** ν_z for a uniformly random perturbation z — the adversary of all the
    lower bounds. *)

val random_scratch : ell:int -> eps:float -> Dut_prng.Rng.t -> t
(** Exactly {!random} — same draws, same distribution — but the
    perturbation vector lives in a per-domain scratch buffer instead of
    a fresh allocation, so the Monte-Carlo loops that draw a new hard
    instance {e per trial} allocate nothing. The returned instance is
    valid until the next [random_scratch] call at the same [ell] on the
    same domain; use {!random} when the instance must outlive the
    trial.

    @raise Invalid_argument as {!random}. *)

val all_plus : ell:int -> eps:float -> t
(** The fixed member with z ≡ +1; a convenient deterministic ε-far
    distribution. *)

val ell : t -> int
val eps : t -> float

val n : t -> int
(** Universe size n = 2^(ℓ+1). *)

val m : t -> int
(** Left-cube size m = 2^ℓ = n/2. *)

val z : t -> int array
(** A copy of the perturbation vector. *)

val encode : x:int -> s:int -> int
(** Element encoding: [2x] for s = +1, [2x+1] for s = −1. *)

val decode : int -> int * int
(** Inverse of {!encode}: [decode i = (x, s)]. *)

val prob : t -> int -> float
(** ν_z(element). *)

val pmf : t -> Pmf.t
(** The full mass table (exact; sums to 1 by construction). *)

val draw : t -> Dut_prng.Rng.t -> int
(** One sample in O(1): x uniform on the left cube, then s = +1 with
    probability (1 + z(x)·ε)/2. *)

val draw_many : t -> Dut_prng.Rng.t -> int -> int array
(** [q] iid samples. *)

val draw_block : t -> Dut_prng.Rng.t -> int array -> unit
(** [draw_block t rng buf] fills the caller-owned [buf] with iid
    samples, bit-identical to repeated scalar {!draw}s — the batched
    kernel with the rejection mask and threshold tables hoisted out of
    the loop. [draw_many] and [draw_many_into] wrap it. *)

val draw_many_into : t -> Dut_prng.Rng.t -> int array -> unit
(** Fill a caller-owned buffer with iid samples — the allocation-free
    {!draw_many}. *)

val tuple_prob : t -> int array -> float
(** ν_z^q of a tuple of encoded elements: the product law of Section 3. *)

val tuple_prob_fourier : t -> int array -> float
(** The same probability computed through the character expansion of
    Claim 3.1 — Σ_S ε^{mass(S)} χ_S(s) Π_{j∈S} z(x_j) / n^q. Exponential in
    the tuple length; used to verify the claim numerically. *)

val mixture_exact : ell:int -> eps:float -> Pmf.t
(** The exact mixture E_z[ν_z] computed by enumerating all 2^(2^ℓ)
    perturbations (feasible for ℓ ≤ 4). Equals the uniform distribution;
    exported so tests can confirm it. *)
