type t = float array

let sum = Array.fold_left ( +. ) 0.

let validate weights =
  if Array.length weights = 0 then invalid_arg "Pmf: empty universe";
  Array.iter
    (fun w -> if w < 0. || Float.is_nan w then invalid_arg "Pmf: negative or NaN mass")
    weights

let create weights =
  validate weights;
  let s = sum weights in
  if s <= 0. then invalid_arg "Pmf.create: weights sum to zero";
  if Float.abs (s -. 1.) > 1e-6 then
    invalid_arg "Pmf.create: weights must sum to 1 (+-1e-6)";
  Array.map (fun w -> w /. s) weights

let create_exn_strict weights =
  validate weights;
  let s = sum weights in
  if Float.abs (s -. 1.) > 1e-9 then
    invalid_arg "Pmf.create_exn_strict: weights must sum to 1 (+-1e-9)";
  Array.copy weights

let uniform n =
  if n <= 0 then invalid_arg "Pmf.uniform: n must be positive";
  Array.make n (1. /. float_of_int n)

let point_mass ~n i =
  if n <= 0 || i < 0 || i >= n then invalid_arg "Pmf.point_mass";
  Array.init n (fun j -> if j = i then 1. else 0.)

let size = Array.length

let prob t i =
  if i < 0 || i >= Array.length t then invalid_arg "Pmf.prob: index out of range";
  t.(i)

let to_array = Array.copy

let mix a p q =
  if Array.length p <> Array.length q then invalid_arg "Pmf.mix: size mismatch";
  if a < 0. || a > 1. then invalid_arg "Pmf.mix: coefficient out of [0,1]";
  Array.init (Array.length p) (fun i -> (a *. p.(i)) +. ((1. -. a) *. q.(i)))

let collision_prob t = Array.fold_left (fun acc w -> acc +. (w *. w)) 0. t

let product p q =
  let n2 = Array.length q in
  Array.init
    (Array.length p * n2)
    (fun i -> p.(i / n2) *. q.(i mod n2))

let map_support t f ~n =
  if n <= 0 then invalid_arg "Pmf.map_support: n must be positive";
  let out = Array.make n 0. in
  Array.iteri
    (fun i w ->
      let j = f i in
      if j < 0 || j >= n then invalid_arg "Pmf.map_support: image out of range";
      out.(j) <- out.(j) +. w)
    t;
  out
