(** Probability mass functions on a finite universe {0, …, n−1}.

    The basic object every tester, protocol and experiment manipulates.
    Values are validated at construction (non-negative, summing to 1 up to
    a small tolerance) and then treated as exact. *)

type t
(** A pmf; immutable once built. *)

val create : float array -> t
(** [create weights] validates and normalizes [weights] into a pmf.

    @raise Invalid_argument if the array is empty, has a negative entry,
    or sums to something further than 1e-6 from a positive number. *)

val create_exn_strict : float array -> t
(** Like {!create} but requires the weights to already sum to 1 within
    1e-9, with no renormalization — used where exactness matters (hard
    family construction).

    @raise Invalid_argument as {!create}, or if the sum is off. *)

val uniform : int -> t
(** The uniform distribution U_n.

    @raise Invalid_argument if [n <= 0]. *)

val point_mass : n:int -> int -> t
(** [point_mass ~n i] puts all mass on element [i]. *)

val size : t -> int
(** Universe size n. *)

val prob : t -> int -> float
(** [prob t i] is the mass of element [i].

    @raise Invalid_argument if [i] is out of range. *)

val to_array : t -> float array
(** A fresh copy of the mass table. *)

val mix : float -> t -> t -> t
(** [mix a p q] is the mixture a·p + (1−a)·q.

    @raise Invalid_argument on size mismatch or a ∉ [0,1]. *)

val collision_prob : t -> float
(** ‖μ‖₂² = Σ_i μ(i)² — the probability two iid samples collide. Equals
    1/n exactly for the uniform distribution, and ≥ (1+ε²)/n for any
    distribution ε-far from uniform in ℓ2-matched families. *)

val product : t -> t -> t
(** [product p q] is the independent joint on a universe of size
    [size p * size q], with pair (a,b) at index a·(size q) + b — the
    encoding {!Dut_testers.Independence} uses. *)

val map_support : t -> (int -> int) -> n:int -> t
(** [map_support t f ~n] pushes the distribution forward through [f] into
    a universe of size [n] (mass of [i] is added to [f i]).

    @raise Invalid_argument if [f] maps outside [0, n). *)
