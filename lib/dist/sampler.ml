type t = {
  pmf : Pmf.t;
  (* Vose's alias method: cell i holds a coin with probability prob.(i) of
     returning i, otherwise alias.(i). *)
  prob : float array;
  alias : int array;
  (* prob scaled by 2^53: [unit_float rng < prob.(i)] is decided as
     [float_of_int (bits53 rng) < scaled.(i)] — the same strict
     comparison after an exact power-of-two scaling of both sides
     (unit_float = bits53 * 2^-53 by definition), saving the division
     and the boxed-float round trip on every draw. *)
  scaled : float array;
  (* The rejection mask [Rng.int] would rebuild per call, hoisted. *)
  mask : int;
}

let mask_covering n =
  let rec go m = if m >= n - 1 then m else go ((m lsl 1) lor 1) in
  go 1

let of_pmf pmf =
  let n = Pmf.size pmf in
  let scaled = Array.init n (fun i -> Pmf.prob pmf i *. float_of_int n) in
  let prob = Array.make n 1. in
  let alias = Array.init n (fun i -> i) in
  (* Work lists of under- and over-full cells. *)
  let small = ref [] and large = ref [] in
  Array.iteri
    (fun i w -> if w < 1. then small := i :: !small else large := i :: !large)
    scaled;
  let rec pair () =
    match (!small, !large) with
    | s :: srest, l :: lrest ->
        small := srest;
        large := lrest;
        prob.(s) <- scaled.(s);
        alias.(s) <- l;
        scaled.(l) <- scaled.(l) +. scaled.(s) -. 1.;
        if scaled.(l) < 1. then small := l :: !small else large := l :: !large;
        pair ()
    | _, _ -> ()
  in
  pair ();
  (* Leftovers (numerical residue) keep prob = 1, aliasing to themselves. *)
  List.iter (fun i -> prob.(i) <- 1.) !small;
  List.iter (fun i -> prob.(i) <- 1.) !large;
  {
    pmf;
    prob;
    alias;
    scaled = Array.map (fun p -> p *. 0x1.0p53) prob;
    mask = mask_covering n;
  }

(* Top-level, not a local [let rec]: a capturing rejection closure
   would cost six minor words per draw without flambda. *)
let rec masked_below rng mask n =
  let v = Dut_prng.Rng.bits63 rng land mask in
  if v < n then v else masked_below rng mask n

let draw t rng =
  let i = masked_below rng t.mask (Array.length t.prob) in
  if float_of_int (Dut_prng.Rng.bits53 rng) < t.scaled.(i) then i
  else t.alias.(i)

(* The batched kernel: one bounds check up front, hoisted mask and
   table pointers, unsafe accesses inside. Draws exactly the stream a
   scalar [draw] loop would — same rejection sequence, same coin —
   just without the per-element closure or float boxing. *)
let draw_block t rng buf =
  let n = Array.length t.prob in
  let mask = t.mask in
  let scaled = t.scaled and alias = t.alias in
  for j = 0 to Array.length buf - 1 do
    let i = masked_below rng mask n in
    let i =
      if float_of_int (Dut_prng.Rng.bits53 rng) < Array.unsafe_get scaled i
      then i
      else Array.unsafe_get alias i
    in
    Array.unsafe_set buf j i
  done

let draw_many_into t rng buf = draw_block t rng buf

let draw_many t rng q =
  let buf = Array.make q 0 in
  draw_block t rng buf;
  buf

let pmf t = t.pmf
