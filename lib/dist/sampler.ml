type t = {
  pmf : Pmf.t;
  (* Vose's alias method: cell i holds a coin with probability prob.(i) of
     returning i, otherwise alias.(i). *)
  prob : float array;
  alias : int array;
}

let of_pmf pmf =
  let n = Pmf.size pmf in
  let scaled = Array.init n (fun i -> Pmf.prob pmf i *. float_of_int n) in
  let prob = Array.make n 1. in
  let alias = Array.init n (fun i -> i) in
  (* Work lists of under- and over-full cells. *)
  let small = ref [] and large = ref [] in
  Array.iteri
    (fun i w -> if w < 1. then small := i :: !small else large := i :: !large)
    scaled;
  let rec pair () =
    match (!small, !large) with
    | s :: srest, l :: lrest ->
        small := srest;
        large := lrest;
        prob.(s) <- scaled.(s);
        alias.(s) <- l;
        scaled.(l) <- scaled.(l) +. scaled.(s) -. 1.;
        if scaled.(l) < 1. then small := l :: !small else large := l :: !large;
        pair ()
    | _, _ -> ()
  in
  pair ();
  (* Leftovers (numerical residue) keep prob = 1, aliasing to themselves. *)
  List.iter (fun i -> prob.(i) <- 1.) !small;
  List.iter (fun i -> prob.(i) <- 1.) !large;
  { pmf; prob; alias }

let draw t rng =
  let n = Array.length t.prob in
  let i = Dut_prng.Rng.int rng n in
  if Dut_prng.Rng.unit_float rng < t.prob.(i) then i else t.alias.(i)

let draw_many t rng q = Array.init q (fun _ -> draw t rng)

let draw_many_into t rng buf =
  for i = 0 to Array.length buf - 1 do
    buf.(i) <- draw t rng
  done

let pmf t = t.pmf
