(** Exact sampling from a finite pmf via Walker/Vose alias tables.

    Building the table is O(n); each draw is O(1) — two random numbers and
    one comparison — so protocols can draw millions of samples per second
    even on large universes. *)

type t
(** A prepared sampler for a fixed pmf. *)

val of_pmf : Pmf.t -> t
(** Build the alias table. *)

val draw : t -> Dut_prng.Rng.t -> int
(** One sample, distributed exactly according to the pmf. *)

val draw_many : t -> Dut_prng.Rng.t -> int -> int array
(** [draw_many t rng q] is [q] iid samples. *)

val draw_many_into : t -> Dut_prng.Rng.t -> int array -> unit
(** [draw_many_into t rng buf] fills [buf] with iid samples, drawing
    the same stream [draw_many t rng (Array.length buf)] would. The
    allocation-free variant for reusable scratch buffers. *)

val pmf : t -> Pmf.t
(** The pmf this sampler was built from. *)
