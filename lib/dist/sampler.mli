(** Exact sampling from a finite pmf via Walker/Vose alias tables.

    Building the table is O(n); each draw is O(1) — two random numbers and
    one comparison — so protocols can draw millions of samples per second
    even on large universes. *)

type t
(** A prepared sampler for a fixed pmf. *)

val of_pmf : Pmf.t -> t
(** Build the alias table. *)

val draw : t -> Dut_prng.Rng.t -> int
(** One sample, distributed exactly according to the pmf. *)

val draw_many : t -> Dut_prng.Rng.t -> int -> int array
(** [draw_many t rng q] is [q] iid samples. *)

val draw_block : t -> Dut_prng.Rng.t -> int array -> unit
(** [draw_block t rng buf] fills the caller-owned [buf] with iid
    samples — the batched kernel: one bounds check per call, the
    rejection mask and tables hoisted out of the loop, no per-element
    closures. Bit-identical to filling [buf] with repeated scalar
    {!draw}s. [draw_many] and [draw_many_into] are thin wrappers over
    this kernel. *)

val draw_many_into : t -> Dut_prng.Rng.t -> int array -> unit
(** [draw_many_into t rng buf] fills [buf] with iid samples, drawing
    the same stream [draw_many t rng (Array.length buf)] would. The
    allocation-free variant for reusable scratch buffers; same kernel
    as {!draw_block}. *)

val pmf : t -> Pmf.t
(** The pmf this sampler was built from. *)
