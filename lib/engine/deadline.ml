(* Cooperative per-experiment deadlines.

   A deadline is an absolute timestamp on the Dut_obs.Span.now_ns clock
   stored in domain-local storage. It propagates two ways: nested
   [with_timeout] calls on one domain tighten the stored value, and
   [Pool.run] snapshots the submitter's deadline into the job so worker
   domains check the same budget (and restore their own state after
   each task).

   Nothing is preemptive — a computation that never calls [check] (and
   never goes through the engine's claim points) runs to completion.
   The engine checks at every task claim, and the [Parallel]
   combinators check per element when a deadline is active, which puts
   a check inside every Monte-Carlo trial loop in the tree. *)

exception Exceeded

let () =
  Printexc.register_printer (function
    | Exceeded -> Some "Dut_engine.Deadline.Exceeded (cooperative timeout)"
    | _ -> None)

let key : int option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let get_ns () = Domain.DLS.get key

let set_ns d = Domain.DLS.set key d

let active () = Domain.DLS.get key <> None

let check () =
  match Domain.DLS.get key with
  | Some d when Dut_obs.Span.now_ns () > d -> raise Exceeded
  | _ -> ()

let with_timeout ?seconds f =
  match seconds with
  | None -> f ()
  | Some s ->
      if s <= 0. then invalid_arg "Deadline.with_timeout: seconds <= 0";
      let d = Dut_obs.Span.now_ns () + int_of_float (s *. 1e9) in
      let saved = get_ns () in
      (* An enclosing deadline can only tighten: a nested timeout never
         buys more time than the caller already granted. *)
      let d = match saved with Some p -> min p d | None -> d in
      set_ns (Some d);
      Fun.protect ~finally:(fun () -> set_ns saved) f
