(** Cooperative deadlines for bounded experiment execution.

    [with_timeout ~seconds f] arms a deadline on the calling domain for
    the duration of [f]; {!check} raises {!Exceeded} once it has
    passed. The engine checks at every task claim ({!Pool.run}
    propagates the submitter's deadline to its worker domains), and the
    {!Parallel} combinators check once per element while a deadline is
    active — so any computation built on the engine's Monte-Carlo loops
    is interrupted within one trial of the budget expiring.

    The mechanism is strictly cooperative: code that never reaches a
    check point runs to completion, and an expired deadline surfaces as
    an ordinary exception (isolated per-experiment by
    [Dut_experiments.Runner], reported as a [failed] status). With no
    deadline armed, {!check} is one domain-local read — the combinators
    skip even that unless {!active} says otherwise, so the watchdog
    costs nothing until opted into ([--timeout-s]). *)

exception Exceeded
(** Raised by {!check} (and hence from inside engine loops) once the
    armed deadline has passed. *)

val with_timeout : ?seconds:float -> (unit -> 'a) -> 'a
(** Run the thunk with a deadline of [seconds] from now, restoring the
    previous deadline state afterwards. Nested calls can only tighten
    the budget. [?seconds:None] is a plain call.

    @raise Invalid_argument if [seconds <= 0]. *)

val check : unit -> unit
(** @raise Exceeded if the calling domain's deadline has passed. *)

val active : unit -> bool
(** Whether a deadline is armed on the calling domain. *)

val get_ns : unit -> int option
(** The armed deadline as absolute nanoseconds on the
    {!Dut_obs.Span.now_ns} clock, for propagation into pool jobs. *)

val set_ns : int option -> unit
(** Overwrite the calling domain's deadline state; used by the pool to
    hand a submitter's deadline to worker domains (save/restore around
    each task). *)
