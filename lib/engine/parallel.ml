(* A malformed or non-positive DUT_JOBS falls back to 1, but never
   silently: a user who exported DUT_JOBS=0 or DUT_JOBS=four meant to
   set parallelism, and a quiet fallback reads as "parallelism is
   broken". One warning per process, matching the oversubscription
   clamp note in Pool.effective_jobs. *)
let env_warned = Atomic.make false

let env_jobs () =
  match Sys.getenv_opt "DUT_JOBS" with
  | None -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> j
      | Some _ | None ->
          if not (Atomic.exchange env_warned true) then
            Printf.eprintf
              "dut: ignoring DUT_JOBS=%s (expected an integer >= 1); using 1\n%!"
              (Filename.quote s);
          1)

let default = Atomic.make (env_jobs ())

let default_jobs () = Atomic.get default

let set_default_jobs j =
  if j < 1 then invalid_arg "Parallel.set_default_jobs: jobs < 1";
  Atomic.set default j

let resolve_jobs = function
  | None -> Pool.effective_jobs (default_jobs ())
  | Some j when j >= 1 -> Pool.effective_jobs j
  | Some _ -> invalid_arg "Parallel: jobs < 1"

let chunks ~n ~chunk =
  if n < 0 then invalid_arg "Parallel.chunks: n < 0";
  if chunk < 1 then invalid_arg "Parallel.chunks: chunk < 1";
  let nchunks = (n + chunk - 1) / chunk in
  Array.init nchunks (fun c ->
      let lo = c * chunk in
      (lo, min n (lo + chunk)))

(* One process-wide pool shared by every combinator, created lazily and
   resized when a different jobs count is requested. The jobs count is
   scheduling-only, so reuse across callers is always sound. *)
let pool_lock = Mutex.create ()

let shared : Pool.t option ref = ref None

let shutdown_shared_pool () =
  Mutex.lock pool_lock;
  (match !shared with Some p -> Pool.shutdown p | None -> ());
  shared := None;
  Mutex.unlock pool_lock

let with_pool ~jobs f =
  Mutex.lock pool_lock;
  let pool =
    match !shared with
    | Some p when Pool.jobs p = jobs -> p
    | prev ->
        (match prev with Some p -> Pool.shutdown p | None -> ());
        let p = Pool.create ~jobs in
        shared := Some p;
        p
  in
  Mutex.unlock pool_lock;
  f pool

(* Coarse chunks: enough tasks per domain for dynamic load balancing,
   few enough that claiming stays cheap. Granularity never affects
   results, only the schedule. *)
let chunk_for ~n ~jobs = max 1 (n / (jobs * 4))

(* Run [f_range lo hi -> 'a array] over the chunk ranges and concatenate
   the per-chunk slices in chunk (= index) order. *)
let chunked ~jobs ~n f_range =
  let bounds = chunks ~n ~chunk:(chunk_for ~n ~jobs) in
  let nchunks = Array.length bounds in
  let parts = Array.make nchunks [||] in
  with_pool ~jobs (fun pool ->
      Pool.run pool ~tasks:nchunks (fun c ->
          let lo, hi = bounds.(c) in
          parts.(c) <- f_range lo hi));
  Array.concat (Array.to_list parts)

(* Sequential fallbacks check the cooperative deadline once per element
   — but only when one is armed, so the default path pays a single DLS
   read per combinator call, never per element. This is what makes
   --timeout-s bite inside the Monte-Carlo trial loops, which run on
   these paths whenever they are nested under a pool task. *)
let checked f =
  if Deadline.active () then fun x ->
    Deadline.check ();
    f x
  else f

let map ?jobs f a =
  let jobs = resolve_jobs jobs in
  let n = Array.length a in
  if jobs <= 1 || n <= 1 || Pool.in_task () then Array.map (checked f) a
  else chunked ~jobs ~n (fun lo hi -> Array.init (hi - lo) (fun i -> f a.(lo + i)))

let init ?jobs ~rng ~n f =
  if n < 0 then invalid_arg "Parallel.init: n < 0";
  let jobs = resolve_jobs jobs in
  (* Pre-split one child stream per element, in index order, before any
     task runs: the schedule can never touch the streams, and the
     children are exactly those the sequential loop would draw. *)
  let rngs = Array.init n (fun _ -> Dut_prng.Rng.split rng) in
  if jobs <= 1 || n <= 1 || Pool.in_task () then
    let f = checked (fun (r, i) -> f r i) in
    Array.mapi (fun i r -> f (r, i)) rngs
  else
    chunked ~jobs ~n (fun lo hi ->
        Array.init (hi - lo) (fun i -> f rngs.(lo + i) (lo + i)))

(* Incremental fold: the chunk is the unit of {e seeding}, not just of
   scheduling. Chunk boundaries are fixed by [~chunk] alone — never by
   the jobs count — and one child stream is split per chunk, in chunk
   order, before any task runs. Partial results merge in chunk index
   order, so the merged value is bit-identical for every jobs count
   even when [merge] is not commutative. This is the ingestion path of
   Dut_stream: a growing stream is consumed chunk by chunk, each chunk
   reduced independently, without materialising per-element state for
   the whole prefix. *)
let fold_chunks ?jobs ~rng ~n ~chunk ~f ~init ~merge =
  if n < 0 then invalid_arg "Parallel.fold_chunks: n < 0";
  if chunk < 1 then invalid_arg "Parallel.fold_chunks: chunk < 1";
  let jobs = resolve_jobs jobs in
  let bounds = chunks ~n ~chunk in
  let nchunks = Array.length bounds in
  (* One child stream per chunk, split in chunk order on the submitting
     domain before any parallel execution: the schedule can never touch
     the streams. *)
  let rngs = Array.init nchunks (fun _ -> Dut_prng.Rng.split rng) in
  if jobs <= 1 || nchunks <= 1 || Pool.in_task () then begin
    let acc = ref init in
    for c = 0 to nchunks - 1 do
      (* The pooled path below checks the cooperative deadline once per
         task claim (Pool.run_task), i.e. once per chunk. Checking per
         chunk here — not per element — keeps the sequential fallback's
         cancellation granularity identical to the pooled one, the same
         inline/pooled parity run_inline restored for failures. *)
      Deadline.check ();
      let lo, hi = bounds.(c) in
      acc := merge !acc (f rngs.(c) ~lo ~hi)
    done;
    !acc
  end
  else begin
    let parts = Array.make nchunks None in
    with_pool ~jobs (fun pool ->
        Pool.run pool ~tasks:nchunks (fun c ->
            let lo, hi = bounds.(c) in
            parts.(c) <- Some (f rngs.(c) ~lo ~hi)));
    Array.fold_left
      (fun acc part ->
        match part with Some v -> merge acc v | None -> assert false)
      init parts
  end

(* [init] is shadowed by init_reduce's [~init] accumulator label. *)
let init_array = init

let init_reduce ?jobs ~rng ~n ~f ~init ~reduce =
  Array.fold_left reduce init (init_array ?jobs ~rng ~n f)

let count ?jobs ~rng ~n pred =
  let resolved = resolve_jobs jobs in
  if
    n >= 0
    && (resolved <= 1 || n <= 1 || Pool.in_task ())
    && Scratch.reuse_enabled ()
  then begin
    (* The Monte-Carlo trial loop. Same child streams as the [init]
       path — one split per element, in index order — but re-seeded
       into a single borrowed scratch source instead of materialising n
       generator records and an n-length hit vector. Children never
       feed back into the parent's splitter, so splitting lazily (per
       iteration) yields exactly the streams the pre-split loop saw. *)
    let deadline = Deadline.active () in
    let child = Dut_prng.Rng.borrow_child () in
    let acc = ref 0 in
    (try
       for i = 0 to n - 1 do
         if deadline then Deadline.check ();
         Dut_prng.Rng.split_into rng child;
         if pred child i then incr acc
       done
     with e ->
       Dut_prng.Rng.release_child child;
       raise e);
    Dut_prng.Rng.release_child child;
    !acc
  end
  else
    Array.fold_left
      (fun acc hit -> if hit then acc + 1 else acc)
      0
      (init ?jobs ~rng ~n pred)
