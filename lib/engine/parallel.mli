(** Deterministic data-parallel combinators over a shared domain pool.

    {b The determinism contract.} Work and randomness are assigned by
    {e index}: the [init]-family combinators pre-split one child
    {!Dut_prng.Rng.t} per element, in element order, on the submitting
    domain {e before} any parallel execution begins, and reductions fold
    results back in element order. A chunk of contiguous indices is the
    unit of scheduling, never of seeding. Consequently every combinator
    returns bit-identical results for every [jobs] count, including
    [jobs = 1]: the schedule can influence only wall-clock time, never a
    single output bit. [Parallel.init ~jobs ~rng ~n f] is, for every
    [jobs], exactly [Array.init n (fun i -> f (Rng.split rng) i)]
    evaluated left to right.

    User functions must draw randomness only from the [Rng.t] they are
    handed and must not mutate state shared across elements.

    [jobs] defaults to the ambient value (see {!set_default_jobs}),
    which is initialised from the [DUT_JOBS] environment variable, else
    1. Every jobs count — explicit or ambient — is clamped to the
    host's recommended domain count (see {!Pool.effective_jobs}):
    oversubscription cannot change a result, only slow it down. Calls
    made from inside a pool task run sequentially inline, so nesting is
    safe and never over-subscribes the machine. *)

val env_jobs : unit -> int
(** Parse [DUT_JOBS] from the environment. Accepted values are integers
    [>= 1] (values above the host's recommended domain count are later
    clamped by {!Pool.effective_jobs}); unset means 1. A malformed or
    non-positive value also falls back to 1, with a one-shot stderr
    warning naming the rejected value. *)

val default_jobs : unit -> int
(** The ambient jobs count used when [?jobs] is omitted; initially
    {!env_jobs}[ ()]. *)

val set_default_jobs : int -> unit
(** Set the ambient jobs count (process-wide).

    @raise Invalid_argument if the argument is [< 1]. *)

val chunks : n:int -> chunk:int -> (int * int) array
(** [chunks ~n ~chunk] partitions [0 .. n-1] into contiguous half-open
    index ranges [(lo, hi)] of size [chunk] (the last may be smaller),
    in order. Scheduling granularity only — exposed for tests.

    @raise Invalid_argument if [n < 0] or [chunk < 1]. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map f a] is [Array.map f a], computed on up to [jobs] domains.
    [f] must be pure (it may run on any domain, in any order). *)

val init :
  ?jobs:int ->
  rng:Dut_prng.Rng.t ->
  n:int ->
  (Dut_prng.Rng.t -> int -> 'a) ->
  'a array
(** [init ~rng ~n f] is [[| f r_0 0; …; f r_(n-1) (n-1) |]] where [r_i]
    is the [i]-th child split off [rng] — the same array for every
    [jobs], and the same streams the sequential
    [Array.init n (fun i -> f (Rng.split rng) i)] would see. *)

val init_reduce :
  ?jobs:int ->
  rng:Dut_prng.Rng.t ->
  n:int ->
  f:(Dut_prng.Rng.t -> int -> 'a) ->
  init:'b ->
  reduce:('b -> 'a -> 'b) ->
  'b
(** Left fold of [reduce] over the elements of [init ~rng ~n f], in
    index order (no associativity requirement on [reduce]). *)

val fold_chunks :
  ?jobs:int ->
  rng:Dut_prng.Rng.t ->
  n:int ->
  chunk:int ->
  f:(Dut_prng.Rng.t -> lo:int -> hi:int -> 'a) ->
  init:'b ->
  merge:('b -> 'a -> 'b) ->
  'b
(** Incremental fold over [0 .. n-1] in contiguous chunks of [chunk]
    elements (the last may be shorter): each chunk [c] with bounds
    [(lo, hi)] is reduced to a partial value by [f r_c ~lo ~hi], where
    [r_c] is the [c]-th child split off [rng], and the partials are
    merged left to right in chunk index order.

    Unlike the [init] family, the chunk — not the element — is the unit
    of {e seeding}: chunk boundaries depend only on [chunk], never on
    [jobs], so the result is bit-identical for every jobs count even
    when [merge] is not commutative, and a growing stream can be
    consumed chunk by chunk without per-element state for the whole
    prefix. This is the ingestion path of [Dut_stream]; [chunk] is part
    of the determinism contract (changing it changes which child
    streams exist).

    Cooperative cancellation ({!Deadline}) is checked once per chunk on
    the sequential fallback — exactly the granularity of the pooled
    path, which checks at every task claim — so [--timeout-s] bites the
    same way for every jobs count.

    @raise Invalid_argument if [n < 0] or [chunk < 1]. *)

val count :
  ?jobs:int ->
  rng:Dut_prng.Rng.t ->
  n:int ->
  (Dut_prng.Rng.t -> int -> bool) ->
  int
(** Number of indices on which the predicate holds — the Monte-Carlo
    success counter. *)

val shutdown_shared_pool : unit -> unit
(** Tear down the process-wide pool backing these combinators (it is
    re-created on demand). Useful in tests and at exit; safe to call
    when no pool exists. *)
