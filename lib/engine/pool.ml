type job = {
  f : int -> unit;
  tasks : int;
  next : int Atomic.t;  (* next unclaimed task index; >= tasks = no more work *)
  deadline : int option;  (* submitter's Deadline.get_ns at submission *)
  mutable running : int;  (* claimed but unfinished tasks, guarded by the pool mutex *)
  mutable failed : (exn * Printexc.raw_backtrace) option;
      (* first failure, guarded by the pool mutex *)
}

type t = {
  jobs : int;
  mutex : Mutex.t;
  has_work : Condition.t;  (* a new job was posted, or the pool stops *)
  job_done : Condition.t;  (* the current job finished *)
  mutable job : job option;
  mutable stop : bool;
  mutable workers : unit Domain.t array;
  mutable shut : bool;
}

(* Scheduling telemetry: how many task indices each domain claimed, and
   how long workers sat parked on the has-work condition. Both live in
   the claiming domain's own counter table (Dut_obs.Metrics), so the
   tallies cost one array write and never synchronise; they describe
   the schedule, which is the one thing the engine's determinism
   contract does NOT fix — sums are consistent, per-domain splits are
   not reproducible. *)
let m_tasks_claimed = Dut_obs.Metrics.counter "pool.tasks_claimed"

let m_idle_ns = Dut_obs.Metrics.counter "pool.idle_ns"

(* Tasks a job never started because an earlier task failed (or the
   deadline passed): the fast-fail path below jumps the claim counter
   past [tasks] so no domain keeps claiming doomed work. Claimed +
   cancelled always sums to the job's task count. *)
let m_tasks_cancelled = Dut_obs.Metrics.counter "pool.tasks_cancelled"

(* Duration of every task that ran to completion, pooled and inline
   alike. Only successes are observed, so the histogram's count equals
   tasks_claimed minus failures for every jobs value — the sum-
   consistency test in test_obs.ml leans on that. *)
let h_task_ns = Dut_obs.Metrics.histogram "pool.task_ns"

(* Per-domain nesting depth: > 0 while executing a pool task. Used to
   route nested parallel calls to the inline sequential path instead of
   blocking a worker on its own pool. *)
let task_depth = Domain.DLS.new_key (fun () -> 0)

let in_task () = Domain.DLS.get task_depth > 0

let run_task j i =
  Domain.DLS.set task_depth (Domain.DLS.get task_depth + 1);
  (* Worker domains inherit the submitter's deadline for the duration
     of the task, so a --timeout-s armed on the submitting domain bounds
     the whole job; the previous state is restored either way. *)
  let saved_deadline = Deadline.get_ns () in
  Deadline.set_ns j.deadline;
  Fun.protect
    ~finally:(fun () ->
      Deadline.set_ns saved_deadline;
      Domain.DLS.set task_depth (Domain.DLS.get task_depth - 1))
    (fun () ->
      Deadline.check ();
      j.f i)

(* Claim and run tasks of [j] until its counter is exhausted. Callable
   from workers and from the submitter alike.

   Failure fast-fails the job: the first exception is recorded (with
   its backtrace) and the claim counter jumps past [tasks], so no
   domain claims further work. Tasks already running on other domains
   complete; tasks never claimed are tallied as pool.tasks_cancelled. *)
let drain t j =
  let claim () =
    Mutex.lock t.mutex;
    let i = Atomic.get j.next in
    if i >= j.tasks then begin
      Mutex.unlock t.mutex;
      None
    end
    else begin
      Atomic.set j.next (i + 1);
      j.running <- j.running + 1;
      Mutex.unlock t.mutex;
      Some i
    end
  in
  let fail e bt =
    Mutex.lock t.mutex;
    if j.failed = None then j.failed <- Some (e, bt);
    let skipped = j.tasks - Atomic.get j.next in
    if skipped > 0 then begin
      Atomic.set j.next j.tasks;
      Dut_obs.Metrics.add m_tasks_cancelled skipped
    end;
    Mutex.unlock t.mutex
  in
  let finish () =
    Mutex.lock t.mutex;
    j.running <- j.running - 1;
    if j.running = 0 && Atomic.get j.next >= j.tasks then
      Condition.broadcast t.job_done;
    Mutex.unlock t.mutex
  in
  let rec go () =
    match claim () with
    | None -> ()
    | Some i ->
        Dut_obs.Metrics.incr m_tasks_claimed;
        let started = Dut_obs.Span.now_ns () in
        (try
           run_task j i;
           Dut_obs.Metrics.observe h_task_ns (Dut_obs.Span.now_ns () - started)
         with e -> fail e (Printexc.get_raw_backtrace ()));
        finish ();
        go ()
  in
  go ()

let rec worker t =
  Mutex.lock t.mutex;
  (* Prefer a runnable job over stopping, so shutdown lets in-flight
     work drain instead of abandoning it. *)
  let rec await () =
    match t.job with
    | Some j when Atomic.get j.next < j.tasks -> Some j
    | _ ->
        if t.stop then None
        else begin
          let parked = Dut_obs.Span.now_ns () in
          Condition.wait t.has_work t.mutex;
          Dut_obs.Metrics.add m_idle_ns (Dut_obs.Span.now_ns () - parked);
          await ()
        end
  in
  match await () with
  | None -> Mutex.unlock t.mutex
  | Some j ->
      Mutex.unlock t.mutex;
      drain t j;
      worker t

(* The OCaml 5 runtime supports at most 128 domains (Max_domains); one
   belongs to the submitter. Refuse early with a clear message instead
   of dying in Domain.spawn with "failed to allocate domain". *)
let max_jobs = 128

(* Oversubscribing a host buys only domain-synchronisation overhead
   (results are jobs-invariant anyway), so requests beyond the
   recommended domain count are clamped. Warn once per process. *)
let clamp_warned = Atomic.make false

let effective_jobs jobs =
  let cores = Domain.recommended_domain_count () in
  if jobs <= cores then jobs
  else begin
    if not (Atomic.exchange clamp_warned true) then
      Printf.eprintf
        "dut: clamping jobs %d -> %d (recommended domain count of this host)\n%!"
        jobs cores;
    cores
  end

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs < 1";
  if jobs > max_jobs then
    invalid_arg
      (Printf.sprintf "Pool.create: jobs > %d (OCaml's domain limit)" max_jobs);
  let jobs = effective_jobs jobs in
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      has_work = Condition.create ();
      job_done = Condition.create ();
      job = None;
      stop = false;
      workers = [||];
      shut = false;
    }
  in
  t.workers <- Array.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let jobs t = t.jobs

(* The inline path keeps the same [in_task] contract as worker
   execution, and the same failure semantics as the pooled path: the
   first exception cancels every task after the failing one (tallied as
   pool.tasks_cancelled) and re-raises with its original backtrace, so
   what a caller observes on failure does not depend on the jobs
   count. *)
let run_inline ~tasks f =
  Domain.DLS.set task_depth (Domain.DLS.get task_depth + 1);
  Fun.protect
    ~finally:(fun () -> Domain.DLS.set task_depth (Domain.DLS.get task_depth - 1))
    (fun () ->
      let i = ref 0 in
      try
        while !i < tasks do
          Deadline.check ();
          Dut_obs.Metrics.incr m_tasks_claimed;
          let started = Dut_obs.Span.now_ns () in
          f !i;
          Dut_obs.Metrics.observe h_task_ns (Dut_obs.Span.now_ns () - started);
          incr i
        done
      with e ->
        let bt = Printexc.get_raw_backtrace () in
        let skipped = tasks - !i - 1 in
        if skipped > 0 then Dut_obs.Metrics.add m_tasks_cancelled skipped;
        Printexc.raise_with_backtrace e bt)

let run t ~tasks f =
  if t.shut then invalid_arg "Pool.run: pool is shut down";
  if tasks > 0 then
    if t.jobs = 1 || tasks = 1 || in_task () then run_inline ~tasks f
    else begin
      let j =
        {
          f;
          tasks;
          next = Atomic.make 0;
          deadline = Deadline.get_ns ();
          running = 0;
          failed = None;
        }
      in
      Mutex.lock t.mutex;
      while t.job <> None do
        Condition.wait t.job_done t.mutex
      done;
      t.job <- Some j;
      Condition.broadcast t.has_work;
      Mutex.unlock t.mutex;
      drain t j;
      Mutex.lock t.mutex;
      (* Done when nothing is claimable and nothing claimed is still
         running — under cancellation the claim counter jumps, so the
         tasks-completed count can be smaller than [tasks]. *)
      while j.running > 0 || Atomic.get j.next < j.tasks do
        Condition.wait t.job_done t.mutex
      done;
      t.job <- None;
      (* Wake submitters queued behind this job. *)
      Condition.broadcast t.job_done;
      Mutex.unlock t.mutex;
      match j.failed with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end

let shutdown t =
  Mutex.lock t.mutex;
  if t.shut then Mutex.unlock t.mutex
  else begin
    t.shut <- true;
    t.stop <- true;
    Condition.broadcast t.has_work;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.workers
  end
