(** A fixed-size pool of worker domains with a chunked work queue.

    [create ~jobs] spawns [jobs - 1] worker domains on OCaml 5 stdlib
    primitives only ({!Domain}, {!Mutex}, {!Condition}); the submitting
    domain participates in every job, so a pool of size 1 spawns no
    domains and runs everything inline. One job is in flight at a time;
    concurrent submitters queue on the job-done condition.

    Task indices are claimed from a shared atomic counter, so the
    {e schedule} is dynamic — but the combinators built on top (see
    {!Parallel}) assign work and randomness by index and reduce in index
    order, which makes every result independent of the schedule. *)

type t

val max_jobs : int
(** Largest accepted [jobs]: OCaml 5's 128-domain runtime limit. *)

val effective_jobs : int -> int
(** [effective_jobs jobs] is [jobs] clamped to
    [Domain.recommended_domain_count ()]. Oversubscription buys only
    synchronisation overhead (results are jobs-invariant), so every
    jobs request in the engine goes through this clamp; the first
    clamping prints a one-line note to stderr. *)

val create : jobs:int -> t
(** [create ~jobs] builds a pool of total parallelism
    [effective_jobs jobs] (the submitter plus the spawned worker
    domains).

    @raise Invalid_argument if [jobs < 1] or [jobs > max_jobs]. *)

val jobs : t -> int
(** The parallelism the pool was created with. *)

val run : t -> tasks:int -> (int -> unit) -> unit
(** [run t ~tasks f] executes [f 0 .. f (tasks - 1)], distributing
    indices over the pool's domains, and returns once the job has
    drained. A call made from inside a pool task (see {!in_task}) runs
    the tasks sequentially inline, so nested data-parallelism never
    deadlocks and never over-subscribes.

    {b Failure semantics (identical for every jobs count).} The first
    exception a task raises {e cancels} the job: task indices not yet
    claimed are never run (tallied in the [pool.tasks_cancelled]
    counter), tasks already running on other domains complete, and once
    the job drains the first exception is re-raised to the submitter
    with its original backtrace. The inline path (jobs = 1, a single
    task, or a nested call) aborts at the first exception the same way,
    so failure behavior does not depend on [--jobs]. Results completed
    into caller-owned slots before the failure are unaffected.

    A deadline armed on the submitting domain ({!Deadline.with_timeout})
    is inherited by every task of the job and checked at each claim, so
    an expired budget surfaces as {!Deadline.Exceeded} through the same
    cancellation path.

    @raise Invalid_argument after {!shutdown}. *)

val shutdown : t -> unit
(** Stop and join every worker domain; idempotent. An in-flight job
    drains before the workers exit. *)

val in_task : unit -> bool
(** True while the calling domain is executing a pool task. *)
