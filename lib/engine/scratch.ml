(* Per-domain scratch arenas. Every structure here lives in domain-local
   storage: no locks, no sharing, and — because pool tasks never migrate
   between domains mid-task — no interference between concurrent trials.
   Reuse never changes a computed value, only where intermediate words
   live, so the engine's determinism contract is untouched. *)

(* Arena telemetry: total borrows vs free-list hits gives the reuse
   rate per run (hits/borrows -> 1.0 once the arenas are warm). *)
let m_borrows = Dut_obs.Metrics.counter "scratch.borrows"

let m_reuse_hits = Dut_obs.Metrics.counter "scratch.reuse_hits"

type arena = {
  free : (int, int array list ref) Hashtbl.t;
      (* exact length -> free list of released buffers *)
  free_floats : (int, float array list ref) Hashtbl.t;
      (* the same arena for float slabs (flat, unboxed storage) *)
  mutable counts : int array;  (* histogram counts, valid where stamped *)
  mutable stamp : int array;  (* generation stamp per histogram cell *)
  mutable gen : int;  (* current histogram generation *)
}

let arena_key =
  Domain.DLS.new_key (fun () ->
      {
        free = Hashtbl.create 16;
        free_floats = Hashtbl.create 16;
        counts = [||];
        stamp = [||];
        gen = 0;
      })

let arena () = Domain.DLS.get arena_key

(* Process-wide switch between the scratch hot paths and the legacy
   allocating kernels they replaced. Results are identical either way;
   the engine benchmark flips it off to measure an honest "before". *)
let reuse = Atomic.make true

let set_reuse b = Atomic.set reuse b

let reuse_enabled () = Atomic.get reuse

let borrow ~len =
  if len < 0 then invalid_arg "Scratch.borrow: len < 0";
  if len = 0 then [||]
  else begin
    Dut_obs.Metrics.incr m_borrows;
    if not (Atomic.get reuse) then Array.make len 0
    else
      let a = arena () in
      (* [Hashtbl.find] + exception, not [find_opt]: the option would
         be one small allocation per borrow, i.e. per protocol round. *)
      match Hashtbl.find a.free len with
      | { contents = buf :: rest } as cell ->
          cell := rest;
          Dut_obs.Metrics.incr m_reuse_hits;
          buf
      | { contents = [] } | (exception Not_found) -> Array.make len 0
  end

let release buf =
  let len = Array.length buf in
  if len > 0 && Atomic.get reuse then begin
    let a = arena () in
    match Hashtbl.find a.free len with
    | cell -> cell := buf :: !cell
    | exception Not_found -> Hashtbl.add a.free len (ref [ buf ])
  end

let borrow_floats ~len =
  if len < 0 then invalid_arg "Scratch.borrow_floats: len < 0";
  if len = 0 then [||]
  else begin
    Dut_obs.Metrics.incr m_borrows;
    if not (Atomic.get reuse) then Array.make len 0.
    else
      let a = arena () in
      match Hashtbl.find a.free_floats len with
      | { contents = buf :: rest } as cell ->
          cell := rest;
          Dut_obs.Metrics.incr m_reuse_hits;
          buf
      | { contents = [] } | (exception Not_found) -> Array.make len 0.
  end

let release_floats buf =
  let len = Array.length buf in
  if len > 0 && Atomic.get reuse then begin
    let a = arena () in
    match Hashtbl.find a.free_floats len with
    | cell -> cell := buf :: !cell
    | exception Not_found -> Hashtbl.add a.free_floats len (ref [ buf ])
  end

type hist = arena

let hist ~size =
  if size <= 0 then invalid_arg "Scratch.hist: size <= 0";
  let a = arena () in
  if Array.length a.counts < size then begin
    (* Grow once; stale stamps are impossible because the fresh stamp
       array starts below any generation ever issued. *)
    a.counts <- Array.make size 0;
    a.stamp <- Array.make size (-1)
  end;
  a.gen <- a.gen + 1;
  a

let bump h v =
  let c = if h.stamp.(v) = h.gen then h.counts.(v) + 1 else 1 in
  h.counts.(v) <- c;
  h.stamp.(v) <- h.gen;
  c

let count h v = if h.stamp.(v) = h.gen then h.counts.(v) else 0
