(** Per-domain scratch arenas for the Monte-Carlo hot path.

    The inner trial loops historically allocated fresh intermediate
    arrays — sample tuples, perturbation vectors, sorted copies — on
    every one of millions of trials. This module provides reusable
    per-domain buffers instead, cutting the per-trial minor-heap
    traffic to near zero without touching any computed value.

    Everything lives in {!Domain.DLS}: each domain owns a private
    arena, so no synchronisation is needed and concurrent pool tasks
    can never observe each other's scratch state. Reuse is invisible
    in the results by construction — callers fully overwrite what they
    borrow — so the engine's determinism contract ("bit-identical for
    every jobs count") is preserved.

    {b Discipline.} A borrowed buffer is private to the calling domain
    until released; release exactly what was borrowed. If user code
    raises between borrow and release, dropping the buffer is safe —
    it is simply collected — but it leaves the free list without that
    entry. *)

val set_reuse : bool -> unit
(** Switch the scratch hot paths on or off process-wide (default: on).
    With reuse off, {!borrow} hands out a fresh zeroed array on every
    call, {!release} drops its argument, and every gated kernel — the
    network round sample buffers, the counting-sort collision statistic,
    the hard-instance scratch draws, the single-sample referee — falls
    back to the legacy allocating code it replaced. Every computed value
    is identical either way; the switch exists so the engine benchmark
    can measure the pre-overhaul allocating kernels as its "before" leg
    in the same binary. *)

val reuse_enabled : unit -> bool
(** Current {!set_reuse} setting. Gated kernels consult it at most once
    per round or trial. *)

val borrow : len:int -> int array
(** [borrow ~len] returns an exact-length scratch buffer for this
    domain, reusing a previously released one when available. Contents
    are unspecified — callers must overwrite before reading.

    @raise Invalid_argument if [len < 0]. *)

val release : int array -> unit
(** Return a buffer obtained from {!borrow} to this domain's free
    list. Releasing a buffer that is still referenced elsewhere is a
    bug (the next borrower will overwrite it). *)

val borrow_floats : len:int -> float array
(** [borrow_floats ~len] is {!borrow} for float slabs: an exact-length
    flat (unboxed) float array private to this domain, contents
    unspecified. Used by the transform kernels whose per-call working
    set would otherwise be a fresh O(2{^b}) allocation.

    @raise Invalid_argument if [len < 0]. *)

val release_floats : float array -> unit
(** Return a slab obtained from {!borrow_floats} to this domain's free
    list; the same aliasing rule as {!release} applies. *)

type hist
(** A per-domain histogram over [0 .. size-1] with O(1) clearing:
    cells carry a generation stamp, so "clear" just bumps the
    generation instead of zeroing O(size) words. *)

val hist : size:int -> hist
(** [hist ~size] returns this domain's histogram, logically cleared,
    valid for values in [0 .. size-1]. The backing arrays grow
    monotonically to the largest size ever requested on the domain.
    Only one histogram per domain is live at a time: a second [hist]
    call invalidates the first (the statistic kernels that use it are
    leaf computations, so they never nest).

    @raise Invalid_argument if [size <= 0]. *)

val bump : hist -> int -> int
(** [bump h v] increments the count of value [v] and returns the new
    count (≥ 1). Values must lie in [0 .. size-1]. *)

val count : hist -> int -> int
(** Current count of [v] this generation (0 if never bumped). *)
