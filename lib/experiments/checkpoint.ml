(* Per-experiment result checkpoints for crash-safe, resumable run-alls.

   One file per experiment: a single JSON header line (everything the
   rendered bytes depend on — profile, seed, trials, output format,
   adaptive/warm-start, the git stamp — plus the payload length and the
   original elapsed time) followed by the experiment's rendered output,
   verbatim. Files are written through Dut_obs.Manifest.write_atomic,
   so a crash mid-write can never publish a truncated checkpoint; the
   header's byte count guards against out-of-band corruption anyway.

   The key deliberately excludes [jobs]: the engine's determinism
   contract makes outputs jobs-invariant, so a checkpoint taken at
   --jobs 8 replays under --jobs 1 byte for byte. *)

let schema = "dut-checkpoint/1"

let default_dir = Filename.concat "results" "checkpoints"

type key = {
  profile : string;
  seed : int;
  trials : int;
  csv : bool;
  timings : bool;
  adaptive : bool;
  warm_start : bool;
  git : string;
}

let key_of_config ~csv ~timings (cfg : Config.t) =
  {
    profile = Config.profile_to_string cfg.profile;
    seed = cfg.seed;
    trials = cfg.trials;
    csv;
    timings;
    adaptive = cfg.adaptive;
    warm_start = cfg.warm_start;
    git = Dut_obs.Manifest.git_describe ();
  }

let path ~dir id = Filename.concat dir (id ^ ".out")

let header ~key ~id ~seconds ~bytes =
  Dut_obs.Json.Obj
    [
      ("schema", Dut_obs.Json.Str schema);
      ("id", Dut_obs.Json.Str id);
      ("profile", Dut_obs.Json.Str key.profile);
      ("seed", Dut_obs.Json.int key.seed);
      ("trials", Dut_obs.Json.int key.trials);
      ("csv", Dut_obs.Json.Bool key.csv);
      ("timings", Dut_obs.Json.Bool key.timings);
      ("adaptive", Dut_obs.Json.Bool key.adaptive);
      ("warm_start", Dut_obs.Json.Bool key.warm_start);
      ("git", Dut_obs.Json.Str key.git);
      ("seconds", Dut_obs.Json.Num seconds);
      ("bytes", Dut_obs.Json.int bytes);
    ]

(* A checkpoint that cannot be written (read-only results/, full disk)
   must not fail the run — the rendered output is already correct — but
   it silently costs resumability: `--resume` will re-run the
   experiment. The counter makes that visible in the run manifest and
   `dut obs-report`, which warns when it is non-zero. *)
let m_write_failures = Dut_obs.Metrics.counter "checkpoint.write_failures"

(* Successful atomic publications only; failures are already counted
   above, and timing them would mix two different populations. *)
let h_write_ns = Dut_obs.Metrics.histogram "checkpoint.write_ns"

let save ~dir ~key ~id ~seconds output =
  let content =
    Dut_obs.Json.to_string
      (header ~key ~id ~seconds ~bytes:(String.length output))
    ^ "\n" ^ output
  in
  let started = Dut_obs.Span.now_ns () in
  try
    Dut_obs.Manifest.write_atomic ~path:(path ~dir id) content;
    Dut_obs.Metrics.observe h_write_ns (Dut_obs.Span.now_ns () - started)
  with Sys_error msg ->
    Dut_obs.Metrics.incr m_write_failures;
    Printf.eprintf "dut: cannot write checkpoint for %s: %s\n%!" id msg

(* [None] on any mismatch or malformation: a checkpoint that cannot be
   proven fresh is treated as absent and the experiment re-runs. *)
let load ~dir ~key id =
  let file = path ~dir id in
  match
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let header_line = input_line ic in
        let rest_len = in_channel_length ic - pos_in ic in
        (header_line, really_input_string ic rest_len))
  with
  | exception (Sys_error _ | End_of_file) -> None
  | header_line, payload -> (
      match Dut_obs.Json.parse header_line with
      | exception Dut_obs.Json.Malformed _ -> None
      | j -> (
          let open Dut_obs.Json in
          match
            want_str j "schema" = schema
            && want_str j "id" = id
            && want_str j "profile" = key.profile
            && int_of_float (want_num j "seed") = key.seed
            && int_of_float (want_num j "trials") = key.trials
            && want_bool j "csv" = key.csv
            && want_bool j "timings" = key.timings
            && want_bool j "adaptive" = key.adaptive
            && want_bool j "warm_start" = key.warm_start
            && want_str j "git" = key.git
            && int_of_float (want_num j "bytes") = String.length payload
          with
          | exception Malformed _ -> None
          | false -> None
          | true -> Some (payload, want_num j "seconds")))
