(** Per-experiment result checkpoints: the persistence layer behind
    [dut run-all --resume].

    After each experiment completes, [run-all] saves its rendered
    output (atomically — see {!Dut_obs.Manifest.write_atomic}) under
    [results/checkpoints/<id>.out], keyed by everything the bytes
    depend on: profile, seed, trials, output format ([csv]/[timings]),
    [adaptive]/[warm_start], and the [git describe] stamp of the code.
    A later [--resume] run replays every checkpoint whose key matches
    byte-identically and re-runs only missing, failed (failed
    experiments are never checkpointed) or stale ones.

    [jobs] is deliberately {e not} part of the key: outputs are
    jobs-invariant by the engine's determinism contract, so checkpoints
    replay across any [--jobs] value. *)

val default_dir : string
(** ["results/checkpoints"]. *)

type key
(** Everything a checkpoint's bytes depend on, derived from the run
    configuration plus the current [git describe]. *)

val key_of_config : csv:bool -> timings:bool -> Config.t -> key
(** Build the key for this run (stamps [git describe] once). *)

val path : dir:string -> string -> string
(** [path ~dir id] is [dir/<id>.out]. *)

val save : dir:string -> key:key -> id:string -> seconds:float -> string -> unit
(** Atomically persist an experiment's rendered output and elapsed
    seconds. A failure to write degrades to a stderr warning plus one
    [checkpoint.write_failures] counter tally — the run itself never
    fails on checkpointing, but the lost resumability is recorded in
    the run manifest (its counter snapshot) and flagged by
    [dut obs-report]. *)

val load : dir:string -> key:key -> string -> (string * float) option
(** [load ~dir ~key id] is [Some (output, seconds)] when a checkpoint
    exists, parses, and matches [key] (including its recorded byte
    count — a truncated or corrupt file never replays); [None]
    otherwise. *)
