type profile = Fast | Full

type t = {
  profile : profile;
  seed : int;
  trials : int;
  level : float;
  calibration_trials : int;
  jobs : int;
  jobs_requested : int;
  adaptive : bool;
  warm_start : bool;
}

let make ?(seed = 2019) ?trials ?jobs ?(adaptive = true) ?(warm_start = true)
    profile =
  let jobs_requested =
    match jobs with
    | Some j when j < 1 -> invalid_arg "Config.make: jobs must be positive"
    | Some j -> j
    | None -> Dut_engine.Parallel.env_jobs ()
  in
  let jobs = Dut_engine.Pool.effective_jobs jobs_requested in
  let base =
    match profile with
    | Fast ->
        {
          profile;
          seed;
          trials = 120;
          level = 0.72;
          calibration_trials = 200;
          jobs;
          jobs_requested;
          adaptive;
          warm_start;
        }
    | Full ->
        {
          profile;
          seed;
          trials = 240;
          level = 0.72;
          calibration_trials = 400;
          jobs;
          jobs_requested;
          adaptive;
          warm_start;
        }
  in
  match trials with
  | Some t when t <= 0 -> invalid_arg "Config.make: trials must be positive"
  | Some t -> { base with trials = t }
  | None -> base

let rng t = Dut_prng.Rng.create t.seed

let is_fast t = t.profile = Fast

let profile_of_string = function
  | "fast" -> Some Fast
  | "full" -> Some Full
  | _ -> None

let profile_to_string = function Fast -> "fast" | Full -> "full"
