type profile = Fast | Full

type t = {
  profile : profile;
  seed : int;
  trials : int;
  level : float;
  calibration_trials : int;
  jobs : int;
}

let make ?(seed = 2019) ?trials ?jobs profile =
  let jobs =
    match jobs with
    | Some j when j < 1 -> invalid_arg "Config.make: jobs must be positive"
    | Some j -> j
    | None -> Dut_engine.Parallel.env_jobs ()
  in
  let base =
    match profile with
    | Fast ->
        { profile; seed; trials = 120; level = 0.72; calibration_trials = 200; jobs }
    | Full ->
        { profile; seed; trials = 240; level = 0.72; calibration_trials = 400; jobs }
  in
  match trials with
  | Some t when t <= 0 -> invalid_arg "Config.make: trials must be positive"
  | Some t -> { base with trials = t }
  | None -> base

let rng t = Dut_prng.Rng.create t.seed

let is_fast t = t.profile = Fast

let profile_of_string = function
  | "fast" -> Some Fast
  | "full" -> Some Full
  | _ -> None

let profile_to_string = function Fast -> "fast" | Full -> "full"
