(** Run configuration shared by every experiment.

    Two parameter profiles: [Fast] keeps each experiment to seconds (used
    by [bench/main.exe] and CI); [Full] runs the sizes quoted in
    EXPERIMENTS.md. Everything is derived deterministically from the
    seed — [jobs] affects only wall-clock time, never a result bit (see
    {!Dut_engine.Parallel}). *)

type profile = Fast | Full

type t = {
  profile : profile;
  seed : int;
  trials : int;  (** Monte-Carlo rounds per probability estimate *)
  level : float;  (** success level demanded of both error sides *)
  calibration_trials : int;  (** uniform rounds for referee calibration *)
  jobs : int;
      (** domains used by the execution engine — the {e effective}
          value, after the {!Dut_engine.Pool.effective_jobs} clamp *)
  jobs_requested : int;
      (** the pre-clamp request ([--jobs]/[DUT_JOBS]); differs from
          [jobs] only when the host clamped it. Recorded in the run
          manifest so telemetry never overstates parallelism. *)
  adaptive : bool;
      (** stop Monte-Carlo probes early once the Wilson interval is
          decisive (see {!Dut_stats.Montecarlo.estimate_prob_adaptive}) *)
  warm_start : bool;
      (** seed each grid point's critical search from the previous
          point's q* scaled by the theory exponent *)
}

val make :
  ?seed:int ->
  ?trials:int ->
  ?jobs:int ->
  ?adaptive:bool ->
  ?warm_start:bool ->
  profile ->
  t
(** Defaults: seed 2019 (the paper's year), trials 120/240, level 0.72,
    calibration 200/400 for Fast/Full, [adaptive] and [warm_start] both
    on. [trials] overrides the profile's Monte-Carlo budget (it caps the
    adaptive spend); [jobs] defaults to the [DUT_JOBS] environment
    variable, else 1, and is clamped to the host's recommended domain
    count ({!Dut_engine.Pool.effective_jobs}) — oversubscribing domains
    only adds scheduling overhead, never speed.

    Turning [adaptive]/[warm_start] off reproduces the fixed-budget,
    cold-searched runs of earlier revisions bit for bit.

    @raise Invalid_argument if [trials] or [jobs] is non-positive. *)

val rng : t -> Dut_prng.Rng.t
(** A fresh root stream for this configuration. *)

val is_fast : t -> bool

val profile_of_string : string -> profile option
val profile_to_string : profile -> string
