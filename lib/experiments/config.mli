(** Run configuration shared by every experiment.

    Two parameter profiles: [Fast] keeps each experiment to seconds (used
    by [bench/main.exe] and CI); [Full] runs the sizes quoted in
    EXPERIMENTS.md. Everything is derived deterministically from the
    seed. *)

type profile = Fast | Full

type t = {
  profile : profile;
  seed : int;
  trials : int;  (** Monte-Carlo rounds per probability estimate *)
  level : float;  (** success level demanded of both error sides *)
  calibration_trials : int;  (** uniform rounds for referee calibration *)
}

val make : ?seed:int -> ?trials:int -> profile -> t
(** Defaults: seed 2019 (the paper's year), trials 120/240, level 0.72,
    calibration 200/400 for Fast/Full. [trials] overrides the profile's
    Monte-Carlo budget. *)

val rng : t -> Dut_prng.Rng.t
(** A fresh root stream for this configuration. *)

val is_fast : t -> bool

val profile_of_string : string -> profile option
val profile_to_string : profile -> string
