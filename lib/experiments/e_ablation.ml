let run (cfg : Config.t) =
  let rng = Config.rng cfg in
  let ell, eps, k =
    match cfg.profile with
    | Config.Fast -> (7, 0.3, 32)
    | Config.Full -> (9, 0.25, 64)
  in
  let n = 1 lsl (ell + 1) in
  let q = 4 * int_of_float (Dut_core.Bounds.fmo_threshold_upper ~n ~k ~eps) in
  let calibration_rows =
    List.map
      (fun calibration_trials ->
        let tester =
          Dut_core.Threshold_tester.tester_majority ~n ~eps ~k ~q
            ~calibration_trials ~rng:(Dut_prng.Rng.split rng)
        in
        let p =
          Dut_core.Evaluate.measure ~trials:cfg.trials
            ~rng:(Dut_prng.Rng.split rng) ~ell ~eps tester
        in
        [
          Table.Int calibration_trials;
          Table.Float p.uniform_accept.estimate;
          Table.Float p.far_reject.estimate;
          Table.Float
            (Float.min p.uniform_accept.estimate p.far_reject.estimate);
        ])
      [ 10; 25; 50; 100; 200; 400 ]
  in
  let hi = 16 * int_of_float (Dut_core.Bounds.centralized ~n ~eps) in
  let level_rows =
    (* q* grows with the demanded level: warm-start each level at the
       previous (lower) level's answer. *)
    let prev = ref None in
    List.map
      (fun level ->
        let guess = if cfg.warm_start then !prev else None in
        let qstar =
          Dut_core.Evaluate.critical_q ~adaptive:cfg.adaptive
            ~trials:cfg.trials ~level
            ~rng:(Dut_prng.Rng.split rng) ~ell ~eps ~hi ?guess (fun q ->
              Dut_core.Threshold_tester.tester_majority ~n ~eps ~k ~q
                ~calibration_trials:cfg.calibration_trials
                ~rng:(Dut_prng.Rng.split rng))
        in
        (match qstar with Some q -> prev := Some q | None -> ());
        [
          Table.Float level;
          (match qstar with Some q -> Table.Int q | None -> Table.Str "not found");
        ])
      [ 0.67; 0.72; 0.8; 0.88 ]
  in
  [
    Table.make
      ~title:
        (Printf.sprintf
           "A1-ablation: power vs calibration budget (n=%d, k=%d, q=%d)" n k q)
      ~columns:[ "calibration trials"; "accept uniform"; "reject far"; "min" ]
      ~notes:
        [
          "power should climb then plateau: the default budget sits on the plateau";
        ]
      calibration_rows;
    Table.make
      ~title:
        (Printf.sprintf "A1-ablation: critical q vs demanded success level (k=%d)" k)
      ~columns:[ "level"; "q*" ]
      ~notes:
        [
          "smooth growth across the operating range (<= 0.8); the harness's";
          "0.72 default sits well inside it. Demanding a level near the";
          "calibrated acceptance ceiling (1 - 0.2 false-alarm budget) explodes";
          "q*: the referee's own calibration bounds the achievable level";
        ]
      level_rows;
  ]

let experiment =
  {
    Exp.id = "A1-ablation";
    title = "Harness sensitivity: calibration budget and success level";
    statement = "DESIGN.md decisions 1 and 4 (calibrated referees; critical-q search)";
    run;
  }
