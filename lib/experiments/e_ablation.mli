(** Experiment A1-ablation — sensitivity of the harness's two main
    design knobs (DESIGN.md decisions 1 and 4).

    Table 1 sweeps the referee's calibration budget: with too few null
    rounds the calibrated cutoff is noisy and power collapses; past a
    couple hundred rounds the power curve plateaus — justifying the
    default calibration_trials.

    Table 2 sweeps the success level the critical-q search demands: q*
    grows smoothly (no cliff) as the demanded level rises from the
    definitional 2/3 towards 0.9, so the exponent fits of T1–T7 are
    insensitive to the 0.72 default. *)

val experiment : Exp.t
