let run (cfg : Config.t) =
  let ell, eps, ks, qs =
    match cfg.profile with
    | Config.Fast -> (2, 0.5, [ 2; 8; 32 ], [ 1; 2; 4; 5 ])
    | Config.Full -> (2, 0.5, [ 2; 4; 8; 16; 32; 64 ], [ 1; 2; 3; 4; 5 ])
  in
  let n = 1 lsl (ell + 1) in
  let rows =
    List.concat_map
      (fun k ->
        List.map
          (fun q ->
            let value, witness =
              Dut_core.Rule_search.best_over_strategies ~ell ~q ~eps ~k
            in
            let and_value =
              Dut_core.Rule_search.best_and_over_strategies ~ell ~q ~eps ~k
            in
            (* Deterministic-rule optimum for the witness strategy, for
               comparison (k <= 6 only). *)
            let det =
              if k <= 6 then begin
                let _, best_det =
                  List.fold_left
                    (fun (best, best_v) (_, g) ->
                      let a0, a_far = Dut_core.Rule_search.vote_probs g ~eps in
                      let v =
                        Dut_core.Rule_search.best_rule_value_integer ~k ~a0 ~a_far
                      in
                      if v > best then (v, v) else (best, best_v))
                    (0., 0.)
                    [
                      ( "c",
                        Dut_core.Exact.collision_acceptor ~ell ~q ~cutoff:1 );
                      ("s", Dut_core.Exact.s_detector ~ell ~q);
                    ]
                in
                Table.Float best_det
              end
              else Table.Str "-"
            in
            [
              Table.Int k;
              Table.Int q;
              Table.Float value;
              det;
              Table.Float and_value;
              Table.Bool (value >= 2. /. 3.);
              Table.Str witness;
            ])
          qs)
      ks
  in
  [
    Table.make
      ~title:
        (Printf.sprintf
           "T14-all-rules: exact best success over ALL decision rules (n=%d, eps=%.2f)"
           n eps)
      ~columns:
        [
          "k"; "q"; "best value (any rule)"; "best deterministic"; "AND rule (same strategies)";
          ">= 2/3"; "witness strategy";
        ]
      ~notes:
        [
          "values are exact: every perturbation z enumerated, rule polytope solved by LP duality";
          "rows below 2/3 are exact impossibilities for every referee at that (k, q)";
          "the AND column is the same search restricted to the AND referee:";
          "its collapse at q = 1 is the Section 6.3 impossibility, exactly";
          Printf.sprintf
            "theory scale: sqrt(n/k)/eps^2 = %.1f (k=4) with unspecified constant"
            (Dut_core.Bounds.thm11_lower ~n ~k:4 ~eps);
        ]
      rows;
  ]

let experiment =
  {
    Exp.id = "T14-all-rules";
    title = "Every decision rule at once";
    statement =
      "Theorem 1.1's quantifier: no decision rule tests with too few samples (exact, small n)";
    run;
  }
