(** Experiment T14-all-rules — Theorem 1.1's "any decision rule",
    quantified literally.

    On a small universe, the best achievable success probability over
    {e every} referee rule (randomized included — computed exactly by LP
    duality over the rule polytope) and over a family of player
    strategies, as the per-player sample count q grows. The table shows
    the exact value crossing the 2/3 line at a q consistent with
    Theorem 1.1's √(n/k)/ε² scale: below that q, {e no} decision rule
    works — not an estimate, an exact computation with every
    perturbation z enumerated. *)

val experiment : Exp.t
