(* The strongest fixed-set strategy: every player rejects iff its single
   sample lands in a common set A. Under AND, only the per-player reject
   probability matters, so sweeping |A| covers all deterministic
   strategies; randomized local strategies are mixtures of these. *)
let and_q1_tester ~k ~set_size =
  {
    Dut_core.Evaluate.name = Printf.sprintf "and-q1(k=%d,|A|=%d)" k set_size;
    accepts =
      (fun rng source ->
        let player ~index:_ _coins samples = samples.(0) >= set_size in
        let round =
          Dut_protocol.Network.round ~rng ~source ~k ~q:1 ~player
            ~rule:Dut_protocol.Rule.And
        in
        round.accept);
  }

let run (cfg : Config.t) =
  let rng = Config.rng cfg in
  let ell, eps, ks =
    match cfg.profile with
    | Config.Fast -> (6, 0.4, [ 16; 128 ])
    | Config.Full -> (7, 0.3, [ 16; 128; 1024 ])
  in
  let n = 1 lsl (ell + 1) in
  let rows =
    List.concat_map
      (fun k ->
        (* Set sizes spanning expected alarm counts from far below 1 to
           well above 1. *)
        let sizes =
          [ 1; max 1 (n / (4 * k)); n / k; 2 * n / k; 4 * n / k; n / 4 ]
          |> List.filter (fun s -> s >= 1 && s <= n / 2)
          |> List.sort_uniq compare
        in
        List.map
          (fun set_size ->
            let tester = and_q1_tester ~k ~set_size in
            let p =
              Dut_core.Evaluate.measure ~trials:cfg.trials
                ~rng:(Dut_prng.Rng.split rng) ~ell ~eps tester
            in
            let ua = p.uniform_accept.estimate and fr = p.far_reject.estimate in
            [
              Table.Int k;
              Table.Int set_size;
              Table.Float (float_of_int (k * set_size) /. float_of_int n);
              Table.Float ua;
              Table.Float fr;
              Table.Float (Float.min ua fr);
              Table.Bool (Float.min ua fr >= 2. /. 3.);
            ])
          sizes)
      ks
  in
  [
    Table.make
      ~title:
        (Printf.sprintf
           "T9-and-impossible: AND rule with q=1 never tests (n=%d, eps=%.2f)" n
           eps)
      ~columns:
        [
          "k"; "|A|"; "expected alarms"; "accept uniform"; "reject far"; "min";
          "succeeds";
        ]
      ~notes:
        [
          "players reject iff their sample lands in a set A of the given size";
          "no row should succeed (min < 2/3), at any k or |A|";
          "contrast: the same rule with q > 1 succeeds in experiment T2";
        ]
      rows;
  ]

let experiment =
  {
    Exp.id = "T9-and-impossible";
    title = "AND rule with a single sample is impossible";
    statement = "Section 6.3 remark: q > 1 is necessary for AND-rule testing";
    run;
  }
