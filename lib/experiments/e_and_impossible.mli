(** Experiment T9-and-impossible — the Section 6.3 remark: with q = 1,
    the AND rule cannot test uniformity at all, no matter how many
    players.

    A single-sample player's only deterministic strategy is a reject set
    A ⊆ [n]; under a random hard instance ν_z the mass of any fixed A
    concentrates on |A|/n, so the network's rejection probability under
    "far" tracks its rejection probability under "uniform". The table
    sweeps the per-player reject mass c/k over a wide range for several
    k and shows min(accept-uniform, reject-far) stays below 2/3
    everywhere — there is no calibration that works. *)

val experiment : Exp.t
