let run (cfg : Config.t) =
  let rng = Config.rng cfg in
  let ell, eps, ks =
    match cfg.profile with
    | Config.Fast -> (7, 0.3, [ 1; 4; 16; 64 ])
    | Config.Full -> (9, 0.25, [ 1; 4; 16; 64 ])
  in
  let n = 1 lsl (ell + 1) in
  let hi = 16 * int_of_float (Dut_core.Bounds.centralized ~n ~eps) in
  let critical ?guess make =
    Dut_core.Evaluate.critical_q ~adaptive:cfg.adaptive ~trials:cfg.trials
      ~level:cfg.level ~rng:(Dut_prng.Rng.split rng) ~ell ~eps ~hi ?guess make
  in
  let results =
    (* Warm starts from the previous k: Thm 1.2 says the AND-rule q* is
       flat in k (up to polylog), majority scales as k^(-1/2). *)
    let _, rev =
      List.fold_left
        (fun (prev, acc) k ->
          let guess_and, guess_maj =
            match prev with
            | Some (k0, a0, m0) when cfg.warm_start ->
                ( Option.map (fun a -> max 1 a) a0,
                  Option.map
                    (fun m ->
                      max 1
                        (int_of_float
                           (Float.round
                              (float_of_int m
                              *. sqrt (float_of_int k0 /. float_of_int k)))))
                    m0 )
            | _ -> (None, None)
          in
          let q_and =
            critical ?guess:guess_and (fun q ->
                Dut_core.And_tester.tester ~n ~eps ~k ~q)
          in
          let q_maj =
            critical ?guess:guess_maj (fun q ->
                Dut_core.Threshold_tester.tester_majority ~n ~eps ~k ~q
                  ~calibration_trials:cfg.calibration_trials
                  ~rng:(Dut_prng.Rng.split rng))
          in
          let prev =
            match (q_and, q_maj) with
            | None, None -> prev
            | _ -> Some (k, q_and, q_maj)
          in
          (prev, (k, q_and, q_maj) :: acc))
        (None, []) ks
    in
    List.rev rev
  in
  let fit extract =
    let pts =
      List.filter_map
        (fun (k, qa, qm) ->
          Option.map (fun q -> (float_of_int k, float_of_int q)) (extract (qa, qm)))
        results
    in
    if List.length pts >= 2 then
      Dut_stats.Fit.power_law_exponent (Array.of_list pts)
    else Float.nan
  in
  let exp_and = fit fst and exp_maj = fit snd in
  let rows =
    List.map
      (fun (k, q_and, q_maj) ->
        let cell = function None -> Table.Str "not found" | Some q -> Table.Int q in
        let ratio =
          match (q_and, q_maj) with
          | Some a, Some m when m > 0 -> Table.Float (float_of_int a /. float_of_int m)
          | _, _ -> Table.Str "-"
        in
        [
          Table.Int k;
          cell q_and;
          cell q_maj;
          ratio;
          Table.Float (Dut_core.Bounds.thm12_and_lower ~n ~k ~eps);
        ])
      results
  in
  [
    Table.make
      ~title:
        (Printf.sprintf "T2-and-rule: AND vs majority critical q (n=%d, eps=%.2f)"
           n eps)
      ~columns:
        [ "k"; "q* AND"; "q* majority"; "AND/majority"; "thm1.2 sqrt(n)/(lg^2 k e^2)" ]
      ~notes:
        [
          Printf.sprintf
            "fitted exponents: AND %.3f (Thm 1.2: ~0 up to polylog), majority %.3f (~-0.5)"
            exp_and exp_maj;
          "the AND/majority ratio grows with k: locality costs samples";
        ]
      rows;
  ]

let experiment =
  {
    Exp.id = "T2-and-rule";
    title = "The cost of the AND (local) decision rule";
    statement =
      "Theorem 1.2: AND rule needs q = Omega(sqrt(n)/(log^2(k) eps^2)) unless k = 2^Omega(1/eps)";
    run;
  }
