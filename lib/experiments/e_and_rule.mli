(** Experiment T2-and-rule — Theorem 1.2.

    Same sweep as T1 but with the AND decision rule: the measured q*(k)
    stays near the centralized √n/ε² with at most polylogarithmic gain,
    in contrast with T1's k^(−1/2) decay. The table reports both testers
    side by side, the ratio, and fitted exponents. *)

val experiment : Exp.t
