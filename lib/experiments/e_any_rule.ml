let run (cfg : Config.t) =
  let rng = Config.rng cfg in
  let ell, eps, ks =
    match cfg.profile with
    | Config.Fast -> (7, 0.3, [ 1; 4; 16; 64 ])
    | Config.Full -> (9, 0.25, [ 1; 2; 4; 8; 16; 32; 64; 128; 256 ])
  in
  let n = 1 lsl (ell + 1) in
  let hi = 16 * int_of_float (Dut_core.Bounds.centralized ~n ~eps) in
  let results =
    (* Warm-start each k from the previous q* scaled by Theorem 1.1's
       q* ∝ k^(-1/2), so the search brackets near the answer instead of
       cold-doubling from 1. *)
    let _, rev =
      List.fold_left
        (fun (prev, acc) k ->
          let guess =
            match prev with
            | Some (k0, q0) when cfg.warm_start ->
                Some
                  (max 1
                     (int_of_float
                        (Float.round
                           (float_of_int q0
                           *. sqrt (float_of_int k0 /. float_of_int k)))))
            | _ -> None
          in
          let qstar =
            Dut_core.Evaluate.critical_q ~adaptive:cfg.adaptive
              ~trials:cfg.trials ~level:cfg.level ~rng:(Dut_prng.Rng.split rng)
              ~ell ~eps ~hi ?guess (fun q ->
                Dut_core.Threshold_tester.tester_majority ~n ~eps ~k ~q
                  ~calibration_trials:cfg.calibration_trials
                  ~rng:(Dut_prng.Rng.split rng))
          in
          let prev = match qstar with Some q -> Some (k, q) | None -> prev in
          (prev, (k, qstar) :: acc))
        (None, []) ks
    in
    List.rev rev
  in
  let points =
    List.filter_map
      (fun (k, q) -> Option.map (fun q -> (float_of_int k, float_of_int q)) q)
      results
  in
  let exponent_note =
    if List.length points >= 3 then begin
      let ci =
        Dut_stats.Bootstrap.exponent_ci (Dut_prng.Rng.split rng)
          (Array.of_list points)
      in
      Printf.sprintf
        "fitted exponent of q*(k): %.3f [90%% bootstrap %.3f, %.3f] (Theorem 1.1 predicts -0.5)"
        ci.estimate ci.lower ci.upper
    end
    else "too few points to fit"
  in
  let rows =
    List.map
      (fun (k, qstar) ->
        match qstar with
        | None -> [ Table.Int k; Table.Str "not found"; Table.Str "-"; Table.Str "-" ]
        | Some q ->
            [
              Table.Int k;
              Table.Int q;
              Table.Float (float_of_int q *. sqrt (float_of_int k));
              Table.Float (Dut_core.Bounds.thm11_lower ~n ~k ~eps);
            ])
      results
  in
  [
    Table.make
      ~title:
        (Printf.sprintf
           "T1-any-rule: critical q vs k (majority rule, n=%d, eps=%.2f)" n eps)
      ~columns:[ "k"; "q*"; "q*.sqrt(k)"; "theory sqrt(n/k)/e^2" ]
      ~notes:
        [ exponent_note; "q*.sqrt(k) should be roughly constant across rows" ]
      rows;
  ]

let experiment =
  {
    Exp.id = "T1-any-rule";
    title = "Sample complexity under the best decision rule";
    statement = "Theorem 1.1 / 6.1: q = Theta(sqrt(n/k)/eps^2) for any rule";
    run;
  }
