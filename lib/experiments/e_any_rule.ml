let run (cfg : Config.t) =
  let rng = Config.rng cfg in
  let ell, eps, ks =
    match cfg.profile with
    | Config.Fast -> (7, 0.3, [ 1; 4; 16; 64 ])
    | Config.Full -> (9, 0.25, [ 1; 2; 4; 8; 16; 32; 64; 128; 256 ])
  in
  let n = 1 lsl (ell + 1) in
  let hi = 16 * int_of_float (Dut_core.Bounds.centralized ~n ~eps) in
  let results =
    List.map
      (fun k ->
        let qstar =
          Dut_core.Evaluate.critical_q ~trials:cfg.trials ~level:cfg.level
            ~rng:(Dut_prng.Rng.split rng) ~ell ~eps ~hi (fun q ->
              Dut_core.Threshold_tester.tester_majority ~n ~eps ~k ~q
                ~calibration_trials:cfg.calibration_trials
                ~rng:(Dut_prng.Rng.split rng))
        in
        (k, qstar))
      ks
  in
  let points =
    List.filter_map
      (fun (k, q) -> Option.map (fun q -> (float_of_int k, float_of_int q)) q)
      results
  in
  let exponent_note =
    if List.length points >= 3 then begin
      let ci =
        Dut_stats.Bootstrap.exponent_ci (Dut_prng.Rng.split rng)
          (Array.of_list points)
      in
      Printf.sprintf
        "fitted exponent of q*(k): %.3f [90%% bootstrap %.3f, %.3f] (Theorem 1.1 predicts -0.5)"
        ci.estimate ci.lower ci.upper
    end
    else "too few points to fit"
  in
  let rows =
    List.map
      (fun (k, qstar) ->
        match qstar with
        | None -> [ Table.Int k; Table.Str "not found"; Table.Str "-"; Table.Str "-" ]
        | Some q ->
            [
              Table.Int k;
              Table.Int q;
              Table.Float (float_of_int q *. sqrt (float_of_int k));
              Table.Float (Dut_core.Bounds.thm11_lower ~n ~k ~eps);
            ])
      results
  in
  [
    Table.make
      ~title:
        (Printf.sprintf
           "T1-any-rule: critical q vs k (majority rule, n=%d, eps=%.2f)" n eps)
      ~columns:[ "k"; "q*"; "q*.sqrt(k)"; "theory sqrt(n/k)/e^2" ]
      ~notes:
        [ exponent_note; "q*.sqrt(k) should be roughly constant across rows" ]
      rows;
  ]

let experiment =
  {
    Exp.id = "T1-any-rule";
    title = "Sample complexity under the best decision rule";
    statement = "Theorem 1.1 / 6.1: q = Theta(sqrt(n/k)/eps^2) for any rule";
    run;
  }
