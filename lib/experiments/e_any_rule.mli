(** Experiment T1-any-rule — Theorem 1.1 / Theorem 6.1.

    Measures the empirical critical sample count q* of the
    calibrated-majority tester (the optimal-rule tester of [7]) as the
    number of players k grows, at fixed n and ε. Theorem 1.1 says no
    decision rule can beat q = Ω(√(n/k)/ε²), and [7]'s tester attains it,
    so the measured q*(k) should scale like k^(−1/2): the table reports
    q*, the normalized product q*·√k (≈ constant), the theory value, and
    a fitted log-log exponent (≈ −0.5). *)

val experiment : Exp.t
