let profiles k_base =
  (* Same or similar l2 norm, different shapes. With k players at rate r,
     the norm is r*sqrt(k); all profiles below have norm 8 (for
     k_base = 64). *)
  let uniform k r = (Printf.sprintf "%d players @ rate %g" k r, Array.make k r) in
  let norm = sqrt (float_of_int k_base) in
  [
    uniform k_base 1.;
    uniform (k_base / 4) 2.;
    uniform 1 norm;
    (let slow = norm /. sqrt (2. *. float_of_int (k_base / 2)) in
     let fast = norm /. sqrt (2. *. float_of_int (k_base / 4)) in
     (* Squared-norm budget split half/half between the two groups. *)
     ( Printf.sprintf "mixed: %d @ %.2f + %d @ %.2f" (k_base / 2) slow
         (k_base / 4) fast,
       Array.append (Array.make (k_base / 2) slow) (Array.make (k_base / 4) fast)
     ));
  ]

let run (cfg : Config.t) =
  let rng = Config.rng cfg in
  let ell, eps, k_base =
    match cfg.profile with
    | Config.Fast -> (7, 0.3, 16)
    | Config.Full -> (9, 0.25, 64)
  in
  let n = 1 lsl (ell + 1) in
  let results =
    List.map
      (fun (label, rates) ->
        let tau =
          Dut_core.Async_tester.critical_tau ~trials:cfg.trials ~level:cfg.level
            ~rng:(Dut_prng.Rng.split rng) ~ell ~eps ~rates
            ~calibration_trials:cfg.calibration_trials ~hi:(1 lsl 18) ()
        in
        (label, rates, tau))
      (profiles k_base)
  in
  let rows =
    List.map
      (fun (label, rates, tau) ->
        let norm = Dut_core.Bounds.l2_norm rates in
        match tau with
        | None -> [ Table.Str label; Table.Float norm; Table.Str "not found"; Table.Str "-"; Table.Str "-" ]
        | Some t ->
            [
              Table.Str label;
              Table.Float norm;
              Table.Int t;
              Table.Float (float_of_int t *. norm);
              Table.Float (Dut_core.Bounds.async_time_lower ~n ~eps ~rates);
            ])
      results
  in
  [
    Table.make
      ~title:
        (Printf.sprintf
           "T7-async: critical time vs rate profile (n=%d, eps=%.2f, |T|_2 ~ %.1f)"
           n eps (sqrt (float_of_int k_base)))
      ~columns:[ "profile"; "|T|_2"; "tau*"; "tau*.|T|_2"; "theory sqrt(n)/(e^2 |T|_2)" ]
      ~notes:
        [
          "tau*.|T|_2 should be roughly constant across profiles (Section 6.2)";
        ]
      rows;
  ]

let experiment =
  {
    Exp.id = "T7-async";
    title = "Asymmetric sampling rates";
    statement = "Section 6.2: optimal time is tau = Theta(sqrt(n)/(eps^2 |T|_2))";
    run;
  }
