(** Experiment T7-async — Section 6.2's asymmetric-cost model.

    Rate profiles with very different shapes but (nearly) identical ℓ2
    norm should need (nearly) identical time budgets τ*, because the
    paper's bound τ = Θ(√n/(ε²·‖T‖₂)) depends on the rates only through
    ‖T‖₂. The table lists each profile, its ‖T‖₂, the measured τ*, and
    the product τ*·‖T‖₂, which should be roughly constant. *)

val experiment : Exp.t
