let run (cfg : Config.t) =
  let rng = Config.rng cfg in
  let ell, eps, k =
    match cfg.profile with
    | Config.Fast -> (7, 0.3, 32)
    | Config.Full -> (9, 0.25, 64)
  in
  let n = 1 lsl (ell + 1) in
  let q = 6 * int_of_float (Dut_core.Bounds.fmo_threshold_upper ~n ~k ~eps) in
  let predicted = Dut_core.Byzantine_tester.tolerated_faults ~n ~eps ~k ~q in
  let bs = [ 0; 1; 2; 4; 8; (k / 2) - 1 ] |> List.sort_uniq compare in
  let rows =
    List.map
      (fun b ->
        let measure ~far_flag =
          let tester =
            Dut_core.Byzantine_tester.tester ~n ~eps ~k ~q ~byzantine:b
              ~adversary:Dut_core.Byzantine_tester.Smart
              ~calibration_trials:cfg.calibration_trials
              ~rng:(Dut_prng.Rng.split rng) ~far_flag
          in
          let trial_rng = Dut_prng.Rng.split rng in
          (Dut_stats.Montecarlo.estimate_prob ~trials:cfg.trials trial_rng
             (fun r ->
               if far_flag then begin
                 let d = Dut_dist.Paninski.random ~ell ~eps r in
                 not (tester.accepts r (Dut_protocol.Network.of_paninski d))
               end
               else tester.accepts r (Dut_protocol.Network.uniform_source ~n)))
            .estimate
        in
        let ua = measure ~far_flag:false in
        let fr = measure ~far_flag:true in
        [
          Table.Int b;
          Table.Float ua;
          Table.Float fr;
          Table.Float (Float.min ua fr);
          Table.Bool (Float.min ua fr >= 2. /. 3.);
        ])
      bs
  in
  [
    Table.make
      ~title:
        (Printf.sprintf
           "T19-byzantine: power vs lying players (n=%d, k=%d, q=%d, smart adversary)"
           n k q)
      ~columns:[ "byzantine b"; "accept uniform"; "reject far"; "min"; "succeeds" ]
      ~notes:
        [
          Printf.sprintf "predicted tolerance scale: b ~ %.1f (k (p_far - p_null)/2)"
            predicted;
          "one-bit messages cap the adversary at shifting the count by b;";
          "the hardened referee widens its band by b (safety kept, detection pays 2b)";
        ]
      rows;
  ]

let experiment =
  {
    Exp.id = "T19-byzantine";
    title = "Byzantine players";
    statement =
      "Extension: one-bit messages bound the adversary too; tolerance ~ k(p_far-p_null)/2";
    run;
  }
