(** Experiment T19-byzantine — lying players.

    Sweep the number of Byzantine players b against the worst-case
    (world-aware) adversary, with the referee hardened by widening its
    acceptance band by b. The one-bit message model caps the adversary's
    power at shifting the count by b, so power should decay smoothly and
    break down near the predicted tolerance k·(p_far − p_null)/2 —
    another face of the paper's theme that a single bit carries little:
    it limits the players {e and} the adversary symmetrically. *)

val experiment : Exp.t
