let centralized_tester ~n ~eps ~q =
  {
    Dut_core.Evaluate.name = Printf.sprintf "collision(n=%d,q=%d)" n q;
    accepts =
      (fun rng source ->
        let samples = Array.init q (fun _ -> source rng) in
        Dut_testers.Collision.test ~n ~eps samples);
  }

let run (cfg : Config.t) =
  let rng = Config.rng cfg in
  let ells, eps_fixed, ell_fixed, epss =
    match cfg.profile with
    | Config.Fast -> ([ 5; 6; 7; 8 ], 0.3, 6, [ 0.2; 0.3; 0.4; 0.5 ])
    | Config.Full -> ([ 5; 6; 7; 8; 9; 10 ], 0.25, 8, [ 0.15; 0.2; 0.25; 0.3; 0.4; 0.5 ])
  in
  let critical ?guess ~ell ~eps () =
    let n = 1 lsl (ell + 1) in
    let hi = 16 * int_of_float (Dut_core.Bounds.centralized ~n ~eps) in
    Dut_core.Evaluate.critical_q ~adaptive:cfg.adaptive ~trials:cfg.trials
      ~level:cfg.level ~rng:(Dut_prng.Rng.split rng) ~ell ~eps ~hi ?guess
      (fun q -> centralized_tester ~n ~eps ~q)
  in
  (* Warm starts along both sweeps: m* ∝ sqrt(n) on the n grid,
     m* ∝ eps^(-2) on the eps grid. *)
  let scale f = max 1 (int_of_float (Float.round f)) in
  let n_sweep =
    let prev = ref None in
    List.map
      (fun ell ->
        let guess =
          match !prev with
          | Some (ell0, m0) when cfg.warm_start ->
              Some
                (scale
                   (float_of_int m0 *. (2. ** (float_of_int (ell - ell0) /. 2.))))
          | _ -> None
        in
        let m = critical ?guess ~ell ~eps:eps_fixed () in
        (match m with Some m -> prev := Some (ell, m) | None -> ());
        (ell, m))
      ells
  in
  let eps_sweep =
    let prev = ref None in
    List.map
      (fun eps ->
        let guess =
          match !prev with
          | Some (e0, m0) when cfg.warm_start ->
              Some (scale (float_of_int m0 *. ((e0 /. eps) ** 2.)))
          | _ -> None
        in
        let m = critical ?guess ~ell:ell_fixed ~eps () in
        (match m with Some m -> prev := Some (eps, m) | None -> ());
        (eps, m))
      epss
  in
  let fit pts =
    if List.length pts >= 2 then
      Dut_stats.Fit.power_law_exponent (Array.of_list pts)
    else Float.nan
  in
  let n_points =
    List.filter_map
      (fun (ell, q) ->
        Option.map (fun q -> (float_of_int (1 lsl (ell + 1)), float_of_int q)) q)
      n_sweep
  in
  let eps_points =
    List.filter_map
      (fun (eps, q) -> Option.map (fun q -> (eps, float_of_int q)) q)
      eps_sweep
  in
  let n_rows =
    List.map
      (fun (ell, qstar) ->
        let n = 1 lsl (ell + 1) in
        match qstar with
        | None -> [ Table.Int n; Table.Str "not found"; Table.Str "-" ]
        | Some q ->
            [
              Table.Int n;
              Table.Int q;
              Table.Float (Dut_core.Bounds.centralized ~n ~eps:eps_fixed);
            ])
      n_sweep
  in
  let eps_rows =
    List.map
      (fun (eps, qstar) ->
        let n = 1 lsl (ell_fixed + 1) in
        match qstar with
        | None -> [ Table.Float eps; Table.Str "not found"; Table.Str "-" ]
        | Some q ->
            [ Table.Float eps; Table.Int q; Table.Float (Dut_core.Bounds.centralized ~n ~eps) ])
      eps_sweep
  in
  [
    Table.make
      ~title:
        (Printf.sprintf "T5-centralized: critical samples vs n (eps=%.2f)" eps_fixed)
      ~columns:[ "n"; "m*"; "theory sqrt(n)/e^2" ]
      ~notes:
        [
          Printf.sprintf "fitted exponent in n: %.3f (theory 0.5)" (fit n_points);
        ]
      n_rows;
    Table.make
      ~title:
        (Printf.sprintf "T5-centralized: critical samples vs eps (n=%d)"
           (1 lsl (ell_fixed + 1)))
      ~columns:[ "eps"; "m*"; "theory sqrt(n)/e^2" ]
      ~notes:
        [
          Printf.sprintf "fitted exponent in eps: %.3f (theory -2)" (fit eps_points);
        ]
      eps_rows;
  ]

let experiment =
  {
    Exp.id = "T5-centralized";
    title = "Centralized baseline";
    statement = "Paninski 2008: centralized uniformity testing is Theta(sqrt(n)/eps^2)";
    run;
  }
