(** Experiment T5-centralized — the Θ(√n/ε²) baseline [16].

    Two sweeps of the centralized collision tester (k = 1): critical
    sample count vs n at fixed ε (fit ≈ +0.5), and vs ε at fixed n
    (fit ≈ −2). This is the yardstick the distributed results divide
    into, and a calibration check on the harness itself. *)

val experiment : Exp.t
