let max_claim31_error ~ell ~q ~eps rng =
  let n = 1 lsl (ell + 1) in
  let worst = ref 0. in
  (* All z for ell <= 2; random sample of z beyond. *)
  let zs =
    if ell <= 2 then begin
      let acc = ref [] in
      Dut_core.Exact.iter_all_z ~ell (fun z -> acc := Array.copy z :: !acc);
      !acc
    end
    else
      List.init 16 (fun _ -> Dut_prng.Rng.rademacher_vector rng (1 lsl ell))
  in
  List.iter
    (fun z ->
      let d = Dut_dist.Paninski.create ~ell ~eps ~z in
      let total = int_of_float (float_of_int n ** float_of_int q) in
      for idx = 0 to total - 1 do
        let tuple =
          Array.init q (fun j ->
              idx / int_of_float (float_of_int n ** float_of_int j) mod n)
        in
        let direct = Dut_dist.Paninski.tuple_prob d tuple in
        let fourier = Dut_dist.Paninski.tuple_prob_fourier d tuple in
        worst := Float.max !worst (Float.abs (direct -. fourier))
      done)
    zs;
  !worst

let max_lemma41_error ~ell ~q ~eps rng =
  let worst = ref 0. in
  let gs =
    [
      Dut_core.Exact.collision_acceptor ~ell ~q ~cutoff:1;
      Dut_core.Exact.random_biased ~ell ~q ~accept_prob:0.6 rng;
    ]
  in
  List.iter
    (fun g ->
      for _ = 1 to 8 do
        let d = Dut_dist.Paninski.random ~ell ~eps rng in
        let direct = Dut_core.Exact.nu g d -. Dut_core.Exact.mu g in
        let fourier = Dut_core.Exact.diff_fourier g d in
        worst := Float.max !worst (Float.abs (direct -. fourier))
      done)
    gs;
  !worst

let interchange_error ~ell ~q ~r =
  let m = 1 lsl ell in
  (* Sum a_r(x) over all x by enumeration vs the closed form. *)
  let total = int_of_float (float_of_int m ** float_of_int q) in
  let sum = ref 0. in
  for idx = 0 to total - 1 do
    let x =
      Array.init q (fun j -> idx / int_of_float (float_of_int m ** float_of_int j) mod m)
    in
    sum := !sum +. float_of_int (Dut_boolcube.Even_cover.a_r ~x ~r)
  done;
  let closed = Dut_boolcube.Even_cover.sum_a_r ~m ~q ~r in
  Float.abs (!sum -. closed)

let run (cfg : Config.t) =
  let rng = Config.rng cfg in
  let cases =
    match cfg.profile with
    | Config.Fast -> [ (1, 2); (2, 2); (2, 3) ]
    | Config.Full -> [ (1, 2); (1, 3); (2, 2); (2, 3); (3, 2) ]
  in
  let eps = 0.3 in
  let rows =
    List.map
      (fun (ell, q) ->
        let n = 1 lsl (ell + 1) in
        [
          Table.Int n;
          Table.Int q;
          Table.Float (max_claim31_error ~ell ~q ~eps (Dut_prng.Rng.split rng));
          Table.Float (max_lemma41_error ~ell ~q ~eps (Dut_prng.Rng.split rng));
          Table.Float (interchange_error ~ell ~q ~r:1);
        ])
      cases
  in
  [
    Table.make
      ~title:"T8-combinatorics: exhaustive identity checks (max abs error)"
      ~columns:
        [ "n"; "q"; "Claim 3.1 err"; "Lemma 4.1 err"; "sum a_r interchange err" ]
      ~notes:[ "all errors must be at float-rounding scale (< 1e-9)" ]
      rows;
  ]

let experiment =
  {
    Exp.id = "T8-combinatorics";
    title = "Exact identities";
    statement = "Claim 3.1, Lemma 4.1, and the Section 5.1 interchange identity";
    run;
  }
