(** Experiment T8-combinatorics — Claim 3.1, Lemma 4.1 and the
    even-cover identities, checked exhaustively.

    For small (ℓ, q): the maximum absolute discrepancy between the
    direct product probability ν_z^q and its character expansion
    (Claim 3.1) over all tuples and all z; the maximum discrepancy
    between ν_z(G) − μ(G) and Lemma 4.1's Fourier form over a family of
    G; and the interchange identity Σ_x a_r(x) = C(q,2r)·|X_2r|. All
    discrepancies must be at float-rounding scale. *)

val experiment : Exp.t
