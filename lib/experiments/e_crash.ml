let run (cfg : Config.t) =
  let rng = Config.rng cfg in
  let ell, eps, k =
    match cfg.profile with
    | Config.Fast -> (7, 0.3, 32)
    | Config.Full -> (9, 0.25, 64)
  in
  let n = 1 lsl (ell + 1) in
  let q = 5 * int_of_float (Dut_core.Bounds.fmo_threshold_upper ~n ~k ~eps) in
  let power tester =
    let p =
      Dut_core.Evaluate.measure ~trials:cfg.trials ~rng:(Dut_prng.Rng.split rng)
        ~ell ~eps tester
    in
    (p.uniform_accept.estimate, p.far_reject.estimate)
  in
  let rows =
    List.map
      (fun phi ->
        let ua, fr =
          power
            (Dut_core.Crash_tester.tester ~n ~eps ~k ~q ~crash_prob:phi
               ~calibration_trials:cfg.calibration_trials
               ~rng:(Dut_prng.Rng.split rng))
        in
        (* Reference: crash-free tester on the surviving fleet size. *)
        let k_eff = max 1 (int_of_float (Float.round ((1. -. phi) *. float_of_int k))) in
        let rua, rfr =
          power
            (Dut_core.Threshold_tester.tester_majority ~n ~eps ~k:k_eff ~q
               ~calibration_trials:cfg.calibration_trials
               ~rng:(Dut_prng.Rng.split rng))
        in
        [
          Table.Float phi;
          Table.Float ua;
          Table.Float fr;
          Table.Int k_eff;
          Table.Float (Float.min rua rfr);
          Table.Bool (Float.min ua fr >= Float.min rua rfr -. 0.12);
        ])
      [ 0.; 0.1; 0.25; 0.5 ]
  in
  [
    Table.make
      ~title:
        (Printf.sprintf
           "T18-crash: power under crash faults (n=%d, k=%d, q=%d)" n k q)
      ~columns:
        [
          "crash prob"; "accept uniform"; "reject far"; "k_eff = (1-phi)k";
          "crash-free power at k_eff"; "tracks k_eff";
        ]
      ~notes:
        [
          "the crash-aware referee decides on the live reject fraction;";
          "degradation should track the smaller effective fleet, not collapse";
        ]
      rows;
  ]

let experiment =
  {
    Exp.id = "T18-crash";
    title = "Crash faults";
    statement = "Extension: visible crashes cost only the effective fleet size";
    run;
  }
