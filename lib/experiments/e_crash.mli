(** Experiment T18-crash — fault tolerance of the distributed tester.

    Sweep the per-round crash probability φ at a fixed per-player sample
    budget: the crash-aware referee (live-fraction cutoff, calibrated
    under the same crash model) should degrade as if the fleet were
    (1−φ)k strong — its power at crash rate φ should track the
    crash-free tester's power at k' = (1−φ)k — rather than collapse.
    A fault-model extension the paper doesn't treat, but any deployment
    needs. *)

val experiment : Exp.t
