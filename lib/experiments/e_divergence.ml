let run (cfg : Config.t) =
  let ell, qs =
    match cfg.profile with
    | Config.Fast -> (2, [ 1; 2; 3 ])
    | Config.Full -> (2, [ 1; 2; 3; 4; 5 ])
  in
  let eps = 0.3 in
  let n = 1 lsl (ell + 1) in
  let rows =
    List.map
      (fun q ->
        let g = Dut_core.Exact.collision_acceptor ~ell ~q ~cutoff:1 in
        let mu = Dut_core.Exact.mu g in
        (* Exact E_z of the Bernoulli divergences between the bit the
           player sends under nu_z and under uniform. *)
        let total_kl = ref 0. in
        let total_chi2 = ref 0. in
        let fact63_ok = ref true in
        let count = ref 0 in
        Dut_core.Exact.iter_all_z ~ell (fun z ->
            let d = Dut_dist.Paninski.create ~ell ~eps ~z in
            let nu = Dut_core.Exact.nu g d in
            let kl = Dut_info.Divergence.kl_bernoulli ~alpha:nu ~beta:mu in
            let chi2 = Dut_info.Divergence.chi2_bound ~alpha:nu ~beta:mu in
            if kl > chi2 +. 1e-12 then fact63_ok := false;
            total_kl := !total_kl +. kl;
            total_chi2 := !total_chi2 +. chi2;
            incr count);
        let mean_kl = !total_kl /. float_of_int !count in
        let mean_chi2 = !total_chi2 /. float_of_int !count in
        let budget = Dut_core.Bounds.divergence_budget ~q ~n ~eps in
        [
          Table.Int q;
          Table.Float mu;
          Table.Float mean_kl;
          Table.Float mean_chi2;
          Table.Float budget;
          Table.Bool (mean_kl <= budget +. 1e-12);
          Table.Bool !fact63_ok;
        ])
      qs
  in
  [
    Table.make
      ~title:
        (Printf.sprintf
           "T11-divergence: exact per-player divergence vs the (12) budget (n=%d, eps=%.2f)"
           n eps)
      ~columns:
        [
          "q"; "mu(G)"; "E_z KL (bits)"; "E_z chi2 bound"; "budget (12)";
          "KL<=budget"; "Fact 6.3 holds";
        ]
      ~notes:
        [
          "budget = (20 q^2 e^4/n + q e^2/n)/ln2; a player cannot leak more than this";
          Printf.sprintf
            "requirement (10) at k players: %.4g/k bits per player (delta=1/3)"
            (Dut_info.Divergence.success_divergence_requirement ~delta:(1. /. 3.));
        ]
      rows;
  ]

let experiment =
  {
    Exp.id = "T11-divergence";
    title = "The information-theoretic pipeline";
    statement = "Section 6.1, (10)-(13): divergence requirement vs Lemma 4.2 budget";
    run;
  }
