(** Experiment T11-divergence — the Section 6 information pipeline,
    executed exactly.

    The proof of Theorem 6.1 runs: referee success ⇒ total KL divergence
    ≥ log(1/δ)/10 (10) ⇒ some player contributes ≥ log(1/δ)/(10k) ⇒ but
    Lemma 4.2 + Fact 6.3 cap each player at (20q²ε⁴/n + qε²/n)/ln2 (12).
    Here we compute, exactly on a small universe, the average divergence
    E_z[D(ν_z-bit ‖ uniform-bit)] actually achieved by the collision
    player at each q, verify it never exceeds the (12) budget, and also
    verify Fact 6.3 (χ² dominates KL) along the way. *)

val experiment : Exp.t
