let run (cfg : Config.t) =
  let rng = Config.rng cfg in
  let ell, k, epss =
    match cfg.profile with
    | Config.Fast -> (7, 16, [ 0.25; 0.35; 0.5 ])
    | Config.Full -> (9, 32, [ 0.15; 0.2; 0.25; 0.35; 0.5 ])
  in
  let n = 1 lsl (ell + 1) in
  let results =
    (* Warm-start along the eps grid with the shared q* ∝ eps^(-2). *)
    let scale e0 e q0 =
      max 1 (int_of_float (Float.round (float_of_int q0 *. (e0 /. e) ** 2.)))
    in
    let _, rev =
      List.fold_left
        (fun (prev, acc) eps ->
          let hi = 16 * int_of_float (Dut_core.Bounds.centralized ~n ~eps) in
          let guess_maj, guess_and =
            match prev with
            | Some (e0, m0, a0) when cfg.warm_start ->
                (Option.map (scale e0 eps) m0, Option.map (scale e0 eps) a0)
            | _ -> (None, None)
          in
          let q_maj =
            Dut_core.Evaluate.critical_q ~adaptive:cfg.adaptive
              ~trials:cfg.trials ~level:cfg.level ~rng:(Dut_prng.Rng.split rng)
              ~ell ~eps ~hi ?guess:guess_maj (fun q ->
                Dut_core.Threshold_tester.tester_majority ~n ~eps ~k ~q
                  ~calibration_trials:cfg.calibration_trials
                  ~rng:(Dut_prng.Rng.split rng))
          in
          let q_and =
            Dut_core.Evaluate.critical_q ~adaptive:cfg.adaptive
              ~trials:cfg.trials ~level:cfg.level ~rng:(Dut_prng.Rng.split rng)
              ~ell ~eps ~hi ?guess:guess_and (fun q ->
                Dut_core.And_tester.tester ~n ~eps ~k ~q)
          in
          let prev =
            match (q_maj, q_and) with
            | None, None -> prev
            | _ -> Some (eps, q_maj, q_and)
          in
          (prev, (eps, q_maj, q_and) :: acc))
        (None, []) epss
    in
    List.rev rev
  in
  let fit extract =
    let pts =
      List.filter_map
        (fun (eps, qm, qa) ->
          Option.map (fun q -> (eps, float_of_int q)) (extract (qm, qa)))
        results
    in
    if List.length pts >= 2 then
      Dut_stats.Fit.power_law_exponent (Array.of_list pts)
    else Float.nan
  in
  let rows =
    List.map
      (fun (eps, q_maj, q_and) ->
        let cell = function None -> Table.Str "not found" | Some q -> Table.Int q in
        [
          Table.Float eps;
          cell q_maj;
          cell q_and;
          Table.Float (Dut_core.Bounds.thm11_lower ~n ~k ~eps);
        ])
      results
  in
  [
    Table.make
      ~title:
        (Printf.sprintf "T15-eps: critical q vs eps, distributed testers (n=%d, k=%d)"
           n k)
      ~columns:[ "eps"; "q* majority"; "q* AND"; "thm1.1 sqrt(n/k)/e^2" ]
      ~notes:
        [
          Printf.sprintf
            "fitted eps-exponents: majority %.2f, AND %.2f (theory -2 for both)"
            (fit fst) (fit snd);
        ]
      rows;
  ]

let experiment =
  {
    Exp.id = "T15-eps";
    title = "The eps-dependence, distributed";
    statement = "Theorems 1.1/1.2 share the 1/eps^2 factor of the centralized bound";
    run;
  }
