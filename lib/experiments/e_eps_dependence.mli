(** Experiment T15-eps — the ε-dependence of distributed testing.

    The paper's introduction stresses that applications need ε = o(1),
    so the 1/ε² factor matters as much as the √(n/k). T5 verifies it for
    the centralized baseline; this experiment verifies that the
    {e distributed} majority tester keeps the same ε-exponent (the
    distributed lower bound Ω(√(n/k)/ε²) has the identical 1/ε² factor),
    and tabulates the AND tester alongside, whose ε-cost Theorem 1.2
    also puts at 1/ε² (times the polylog k). *)

val experiment : Exp.t
