let run (cfg : Config.t) =
  let ell, eps, qs =
    match cfg.profile with
    | Config.Fast -> (1, 0.6, [ 2; 4; 6; 8; 10 ])
    | Config.Full -> (1, 0.6, [ 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12 ])
  in
  let n = 1 lsl (ell + 1) in
  let rows =
    List.map
      (fun q ->
        let null = Dut_core.Exact.collision_pmf_uniform ~ell ~q in
        let far = Dut_core.Exact.collision_pmf_far ~ell ~q ~eps in
        let best_cutoff, best_value = Dut_core.Exact.best_cutoff_power ~null ~far in
        let midpoint =
          int_of_float (ceil (Dut_core.Local_stat.midpoint_cutoff ~n ~q ~eps))
        in
        let mid_accept, mid_reject =
          Dut_core.Exact.exact_test_power ~null ~far ~cutoff:midpoint
        in
        [
          Table.Int q;
          Table.Int best_cutoff;
          Table.Float best_value;
          Table.Bool (best_value >= 2. /. 3.);
          Table.Int midpoint;
          Table.Float (Float.min mid_accept mid_reject);
        ])
      qs
  in
  [
    Table.make
      ~title:
        (Printf.sprintf
           "F6-exact-power: exact collision-tester power vs q (n=%d, eps=%.2f)" n
           eps)
      ~columns:
        [
          "q"; "best cutoff"; "best min(acc,rej)"; ">= 2/3"; "midpoint cutoff";
          "midpoint min(acc,rej)";
        ]
      ~notes:
        [
          "both statistic distributions computed exactly (full enumeration, all z)";
          "the 2/3 crossing is the exact centralized sample complexity at this (n, eps)";
          Printf.sprintf "theory scale: sqrt(n)/eps^2 = %.1f"
            (Dut_core.Bounds.centralized ~n ~eps);
        ]
      rows;
  ]

let experiment =
  {
    Exp.id = "F6-exact-power";
    title = "Exact power of the centralized collision tester";
    statement = "Section 3 / [16]: the collision statistic's exact distributions and power";
    run;
  }
