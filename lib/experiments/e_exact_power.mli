(** Experiment F6-exact-power — the centralized tester's exact power
    curve.

    On a small universe everything about the collision tester can be
    computed without sampling: the full distribution of the collision
    statistic under μ^q and under the ν_z mixture, the power of every
    cutoff, and the optimal cutoff's value. The table shows exactly when
    testing becomes possible — where min(accept, reject) first crosses
    2/3 — and that the midpoint cutoff used by the implementation is
    near the exact optimum. This is F4's Monte-Carlo picture, made
    exact. *)

val experiment : Exp.t
