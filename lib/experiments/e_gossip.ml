let run (cfg : Config.t) =
  let rng = Config.rng cfg in
  let ell, eps, side =
    match cfg.profile with
    | Config.Fast -> (7, 0.3, 4)
    | Config.Full -> (9, 0.25, 6)
  in
  let n = 1 lsl (ell + 1) in
  let graph = Dut_netsim.Graph.grid side side in
  let k = Dut_netsim.Graph.n graph in
  let q = 5 * int_of_float (Dut_core.Bounds.fmo_threshold_upper ~n ~k ~eps) in
  let tree =
    Dut_netsim.Local_tester.make ~graph ~n ~eps ~q
      ~calibration_trials:cfg.calibration_trials ~rng:(Dut_prng.Rng.split rng)
  in
  let tree_rounds = (2 * Dut_netsim.Local_tester.height tree) + 1 in
  (* Gossip round budget: measured mixing time to 1/(4k) tolerance on a
     worst-case half/half vote vector, doubled for margin. *)
  let gossip_rounds =
    let values = Array.init k (fun i -> if i mod 2 = 0 then 1. else 0.) in
    match
      Dut_netsim.Gossip.rounds_to_tolerance ~graph ~rng:(Dut_prng.Rng.split rng)
        ~values
        ~tol:(1. /. (4. *. float_of_int k))
        ~max_rounds:20000
    with
    | Some r -> 2 * r
    | None -> 2000
  in
  let testers =
    [
      ("AND alarm wire", Dut_core.And_tester.tester ~n ~eps ~k ~q, 1, k);
      ( "tree convergecast",
        {
          Dut_core.Evaluate.name = "tree";
          accepts =
            (fun rng source -> (Dut_netsim.Local_tester.run tree rng source).accept);
        },
        tree_rounds,
        2 * (k - 1) );
      ( "push-sum gossip",
        Dut_netsim.Gossip.decentralized_tester ~graph ~n ~eps ~q ~gossip_rounds
          ~calibration_trials:cfg.calibration_trials
          ~rng:(Dut_prng.Rng.split rng),
        gossip_rounds,
        k * gossip_rounds );
    ]
  in
  let rows =
    List.map
      (fun (name, tester, rounds, messages) ->
        let p =
          Dut_core.Evaluate.measure ~trials:cfg.trials
            ~rng:(Dut_prng.Rng.split rng) ~ell ~eps tester
        in
        [
          Table.Str name;
          Table.Float p.uniform_accept.estimate;
          Table.Float p.far_reject.estimate;
          Table.Int rounds;
          Table.Int messages;
          Table.Str
            (match name with
            | "AND alarm wire" -> "none (any node decides)"
            | "tree convergecast" -> "root"
            | _ -> "none (all nodes decide)");
        ])
      testers
  in
  [
    Table.make
      ~title:
        (Printf.sprintf
           "T16-gossip: aggregation mechanisms on a %dx%d grid (n=%d, q=%d, eps=%.2f)"
           side side n q eps)
      ~columns:
        [ "mechanism"; "accept uniform"; "reject far"; "rounds"; "messages"; "referee" ]
      ~notes:
        [
          "same votes, same sample budget q (5x the threshold-tester scale)";
          "AND pays in power at this q (Thm 1.2: it needs ~sqrt(n) samples);";
          "tree pays a root; gossip pays mixing-time rounds for full decentralization";
        ]
      rows;
  ]

let experiment =
  {
    Exp.id = "T16-gossip";
    title = "The aggregation spectrum: alarm wire, tree, gossip";
    statement =
      "The title question, mechanically: what locality costs at a fixed sample budget";
    run;
  }
