(** Experiment T16-gossip — the aggregation spectrum.

    Three ways to combine the same per-node votes on the same topology:
    the AND alarm wire (maximally local, Theorem 1.2's cost in samples),
    tree convergecast to a root (the [7] reduction: cheap rounds, but a
    root), and refereeless push-sum gossip (no distinguished node at
    all: every node learns the reject fraction, at a mixing-time round
    cost). The table reports measured power at a common sample budget
    and the rounds/messages each mechanism used — the locality-vs-cost
    trade of the paper's title, in one table. *)

val experiment : Exp.t
