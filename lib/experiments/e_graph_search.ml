(* T22: search comparison-graph space.

   Table 1 measures the critical q of each graph family under the same
   referee and compares edge budgets: pairwise independence of edge
   indicators says detection power is governed by the edge count m(q)
   (SNR ~ eps^2 sqrt(m/n)), so the critical m should be roughly
   family-invariant even though the critical q is wildly different —
   the clique packs C(q,2) edges into q samples, a matching only q/2.
   The warm start exploits exactly this: each family's search is seeded
   by inverting its m(q) at the clique's measured critical edge count.

   Table 2 runs the exact-LP rule search (every referee at once) over
   graph strategies on a small universe, where the clique family
   coincides with the classic collision-acceptor family — a free
   cross-check of the graph plumbing against the hand-written search. *)

module Cg = Dut_core.Comparison_graph

let edge_count_at ~q family =
  if q < 2 then 0
  else
    match (family : Cg.family) with
    | Cg.Clique -> q * (q - 1) / 2
    | Cg.Matching -> q / 2
    | Cg.Bipartite -> q / 2 * (q - (q / 2))
    | Cg.Random_regular { degree; _ } when degree <= q - 1 -> degree * q / 2
    | Cg.Random_regular _ | Cg.Explicit _ -> 0

(* Least feasible q for the family (Random_regular needs degree <= q-1
   and q*degree even). *)
let min_q (family : Cg.family) =
  match family with
  | Cg.Random_regular { degree; _ } ->
      let q = degree + 1 in
      if q * degree mod 2 = 0 then q else q + 1
  | _ -> 1

(* Invert m(q) >= target: the warm-start guess for a family, given the
   clique's measured critical edge count. *)
let q_for_edges (family : Cg.family) target =
  let tf = float_of_int target in
  let guess =
    match family with
    | Cg.Clique -> int_of_float (ceil (0.5 +. sqrt ((2. *. tf) +. 0.25)))
    | Cg.Matching -> 2 * target
    | Cg.Bipartite -> int_of_float (ceil (2. *. sqrt tf))
    | Cg.Random_regular { degree; _ } ->
        int_of_float (ceil (2. *. tf /. float_of_int degree))
    | Cg.Explicit _ -> target
  in
  max (min_q family) guess

let run (cfg : Config.t) =
  let rng = Config.rng cfg in
  let ell, eps, k, degree =
    match cfg.profile with
    | Config.Fast -> (3, 0.4, 8, 4)
    | Config.Full -> (5, 0.3, 16, 6)
  in
  let n = 1 lsl (ell + 1) in
  let families =
    [
      Cg.Clique;
      Cg.Matching;
      Cg.Bipartite;
      Cg.Random_regular { degree; seed = 1 };
    ]
  in
  let hi = 64 * int_of_float (Dut_core.Bounds.centralized ~n ~eps) in
  let results =
    (* The clique runs first; later families warm-start from its
       critical edge count via their own m(q) inverse. *)
    let _, rev =
      List.fold_left
        (fun (clique_edges, acc) family ->
          let guess =
            match clique_edges with
            | Some m when cfg.warm_start -> Some (q_for_edges family m)
            | _ -> None
          in
          let qstar =
            Dut_core.Evaluate.critical_q ~adaptive:cfg.adaptive
              ~trials:cfg.trials ~level:cfg.level ~rng:(Dut_prng.Rng.split rng)
              ~ell ~eps ~lo:(min_q family) ~hi ?guess (fun q ->
                Cg.tester_fixed ~n ~eps ~k ~q ~t:1 family)
          in
          let clique_edges =
            match (family, qstar) with
            | Cg.Clique, Some q -> Some (edge_count_at ~q Cg.Clique)
            | _ -> clique_edges
          in
          (clique_edges, (family, qstar) :: acc))
        (None, []) families
    in
    List.rev rev
  in
  let clique_edges =
    match List.assoc_opt Cg.Clique results with
    | Some (Some q) -> Some (edge_count_at ~q Cg.Clique)
    | _ -> None
  in
  let rows =
    List.map
      (fun (family, qstar) ->
        let name = Cg.family_name family in
        match qstar with
        | None -> [ Table.Str name; Table.Str "not found"; Table.Str "-"; Table.Str "-" ]
        | Some q ->
            let m = edge_count_at ~q family in
            let ratio =
              match clique_edges with
              | Some mc when mc > 0 -> Table.Float (float_of_int m /. float_of_int mc)
              | _ -> Table.Str "-"
            in
            [ Table.Str name; Table.Int q; Table.Int m; ratio ])
      results
  in
  let measured =
    Table.make
      ~title:
        (Printf.sprintf
           "T22-graph-search: critical q per comparison-graph family (n=%d, k=%d, eps=%.2f, T=1)"
           n k eps)
      ~columns:[ "family"; "q*"; "edges m(q*)"; "m(q*) / clique m*" ]
      ~notes:
        [
          "edge indicators are pairwise independent: power is governed by the edge count,";
          "so the critical m should be roughly family-invariant (ratio near 1)";
          "sparser graphs pay in samples: matching needs ~m samples for m edges, the clique ~sqrt(2m)";
          "search warm-started by inverting each family's m(q) at the clique's critical edge count";
        ]
      rows
  in
  (* Exact-LP search over graph strategies on a small universe. *)
  let lp_ell, lp_eps, lp_k, lp_qs =
    match cfg.profile with
    | Config.Fast -> (2, 0.5, 8, [ 2; 3; 4 ])
    | Config.Full -> (2, 0.5, 16, [ 2; 3; 4; 5; 6 ])
  in
  let lp_families = [ Cg.Clique; Cg.Matching; Cg.Bipartite ] in
  let lp_rows =
    List.map
      (fun q ->
        let value, witness =
          Dut_core.Rule_search.best_over_graphs ~ell:lp_ell ~q ~eps:lp_eps
            ~k:lp_k lp_families
        in
        let clique_value, _ =
          Dut_core.Rule_search.best_over_graphs ~ell:lp_ell ~q ~eps:lp_eps
            ~k:lp_k [ Cg.Clique ]
        in
        let collision_value, _ =
          Dut_core.Rule_search.best_over_strategies ~ell:lp_ell ~q ~eps:lp_eps
            ~k:lp_k
        in
        [
          Table.Int q;
          Table.Float value;
          Table.Str witness;
          Table.Float clique_value;
          Table.Bool (collision_value >= clique_value);
        ])
      lp_qs
  in
  let lp =
    Table.make
      ~title:
        (Printf.sprintf
           "T22-graph-search: exact best rule over graph strategies (n=%d, k=%d, eps=%.2f)"
           (1 lsl (lp_ell + 1)) lp_k lp_eps)
      ~columns:
        [ "q"; "best value (graphs)"; "witness"; "clique only"; "collision family >= clique" ]
      ~notes:
        [
          "values are exact: every perturbation z enumerated, rule polytope solved by LP duality";
          "the clique-at-every-cutoff family is the classic collision family, so the";
          "last column cross-checks the graph plumbing against the hand-written search";
        ]
      lp_rows
  in
  [ measured; lp ]

let experiment =
  {
    Exp.id = "T22-graph-search";
    title = "Searching comparison-graph space";
    statement =
      "Comparison graphs (arXiv:2012.01882): collision-style testers are graph choices; \
       detection power tracks the edge budget across families";
    run;
  }
