(** T22: comparison-graph space search — measured critical q per graph
    family against the clique baseline (edge-budget invariance), plus
    the exact-LP best-rule search over graph strategies on a small
    universe. *)

val experiment : Exp.t
