let targets n =
  [
    ("uniform", Dut_dist.Pmf.uniform n);
    ("zipf s=0.5", Dut_dist.Families.zipf ~n ~s:0.5);
    ("two-level", Dut_dist.Families.step ~n ~heavy_fraction:0.25 ~heavy_mass:0.5);
    ("trunc-geom", Dut_dist.Families.truncated_geometric ~n ~ratio:0.995);
  ]

let run (cfg : Config.t) =
  let rng = Config.rng cfg in
  let n, eps, trials =
    match cfg.profile with
    | Config.Fast -> (128, 0.35, 80)
    | Config.Full -> (512, 0.3, 200)
  in
  let identity_rows =
    List.map
      (fun (name, target) ->
        let reduction = Dut_testers.Identity.make ~target ~eps in
        let m_samples = Dut_testers.Identity.recommended_samples ~n ~eps in
        let sampler = Dut_dist.Sampler.of_pmf target in
        let accept_on pmf_sampler r =
          Dut_testers.Identity.test reduction target r
            (Dut_dist.Sampler.draw_many pmf_sampler r m_samples)
        in
        let on_target =
          Dut_stats.Montecarlo.estimate_prob ~trials (Dut_prng.Rng.split rng)
            (fun r -> accept_on sampler r)
        in
        (* Fresh perturbation per trial; track the achieved distances. *)
        let achieved = ref [] in
        let on_far =
          Dut_stats.Montecarlo.estimate_prob ~trials (Dut_prng.Rng.split rng)
            (fun r ->
              let far, dist = Dut_dist.Families.perturb_pairwise r ~eps target in
              achieved := dist :: !achieved;
              not (accept_on (Dut_dist.Sampler.of_pmf far) r))
        in
        let mean_dist =
          List.fold_left ( +. ) 0. !achieved /. float_of_int (List.length !achieved)
        in
        [
          Table.Str name;
          Table.Int (Dut_testers.Identity.flattened_size reduction);
          Table.Int m_samples;
          Table.Float on_target.estimate;
          Table.Float on_far.estimate;
          Table.Float mean_dist;
          Table.Bool (on_target.estimate >= 2. /. 3. && on_far.estimate >= 2. /. 3.);
        ])
      (targets n)
  in
  let closeness_rows =
    let m = Dut_testers.Closeness.recommended_samples ~n ~eps in
    List.map
      (fun (name, target) ->
        let sampler = Dut_dist.Sampler.of_pmf target in
        let equal_case =
          Dut_stats.Montecarlo.estimate_prob ~trials (Dut_prng.Rng.split rng)
            (fun r ->
              Dut_testers.Closeness.test ~n ~eps
                (Dut_dist.Sampler.draw_many sampler r m)
                (Dut_dist.Sampler.draw_many sampler r m))
        in
        let far_case =
          Dut_stats.Montecarlo.estimate_prob ~trials (Dut_prng.Rng.split rng)
            (fun r ->
              let far, _ = Dut_dist.Families.perturb_pairwise r ~eps target in
              not
                (Dut_testers.Closeness.test ~n ~eps
                   (Dut_dist.Sampler.draw_many sampler r m)
                   (Dut_dist.Sampler.draw_many (Dut_dist.Sampler.of_pmf far) r m)))
        in
        [
          Table.Str name;
          Table.Int m;
          Table.Float equal_case.estimate;
          Table.Float far_case.estimate;
          Table.Bool (equal_case.estimate >= 2. /. 3. && far_case.estimate >= 2. /. 3.);
        ])
      (targets n)
  in
  [
    Table.make
      ~title:
        (Printf.sprintf
           "T12-identity: identity testing via the uniformity reduction (n=%d, eps=%.2f)"
           n eps)
      ~columns:
        [
          "target"; "flattened m"; "samples"; "accept target"; "reject far";
          "mean far l1"; "succeeds";
        ]
      ~notes:
        [
          "every verdict is produced by the plain uniformity tester on the flattened domain";
          "completeness (abstract / Goldreich [11]): one tester serves every target";
        ]
      identity_rows;
    Table.make
      ~title:
        (Printf.sprintf "T12-identity: closeness-tester baseline (n=%d, eps=%.2f)"
           n eps)
      ~columns:[ "target"; "samples each"; "accept equal"; "reject far"; "succeeds" ]
      ~notes:
        [
          "two unknown distributions: the n^(2/3) problem that contains uniformity";
        ]
      closeness_rows;
  ]

let experiment =
  {
    Exp.id = "T12-identity";
    title = "Completeness: identity testing through uniformity";
    statement =
      "Abstract / [11]: testing identity to any fixed distribution reduces to uniformity";
    run;
  }
