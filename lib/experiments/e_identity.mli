(** Experiment T12-identity — the completeness reduction.

    "Uniformity testing is complete for testing identity to any fixed
    distribution" (abstract; Goldreich [11]): run the flatten-and-mix
    reduction against several targets (uniform, Zipf, two-level,
    truncated geometric), each time on (a) samples from the target
    itself and (b) samples from a pairwise perturbation at ℓ1 distance
    ≈ ε, and report both empirical success rates — all carried by the
    plain uniformity tester underneath. Also reports the closeness
    tester on the same instances as the "harder sibling" baseline. *)

val experiment : Exp.t
