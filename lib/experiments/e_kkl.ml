let and_of_first_j j x =
  (* 1 iff the first j coordinates are all +1 (bits clear). *)
  x land ((1 lsl j) - 1) = 0

let run (cfg : Config.t) =
  let rng = Config.rng cfg in
  let dim = match cfg.profile with Config.Fast -> 10 | Config.Full -> 12 in
  let js = [ 2; 4; 6 ] in
  let deltas = [ 1.; 0.5; 1. /. 3. ] in
  let rs = [ 1; 2 ] in
  let funcs =
    List.map
      (fun j ->
        ( Printf.sprintf "AND_%d" j,
          Dut_boolcube.Fourier.of_boolean (and_of_first_j j) ~dim ))
      js
    @ List.map
        (fun p ->
          ( Printf.sprintf "random(mu~%.2f)" p,
            Dut_boolcube.Fourier.of_boolean
              (fun _ -> Dut_prng.Rng.bernoulli rng p)
              ~dim ))
        [ 0.05; 0.2 ]
  in
  let rows =
    List.concat_map
      (fun (name, ft) ->
        let mu = Dut_boolcube.Fourier.mean ft in
        (* The inequality is stated for mu <= 1/2 (apply to 1-f otherwise);
           all functions here satisfy it. *)
        List.concat_map
          (fun r ->
            List.map
              (fun delta ->
                let weight = Dut_boolcube.Fourier.weight_up_to ft r in
                let bound = Dut_boolcube.Fourier.kkl_bound ~mu ~r ~delta in
                [
                  Table.Str name;
                  Table.Float mu;
                  Table.Int r;
                  Table.Float delta;
                  Table.Float weight;
                  Table.Float bound;
                  Table.Float (if bound > 0. then weight /. bound else 0.);
                ])
              deltas)
          rs)
      funcs
  in
  [
    Table.make
      ~title:
        (Printf.sprintf
           "F3-kkl: low-level Fourier weight vs delta^-r mu^(2/(1+delta)) (dim=%d)"
           dim)
      ~columns:[ "f"; "mu"; "level r"; "delta"; "weight<=r"; "KKL bound"; "ratio" ]
      ~notes:
        [
          "ratios must be <= 1; AND functions approach the bound, random ones sit far below";
        ]
      rows;
  ]

let experiment =
  {
    Exp.id = "F3-kkl";
    title = "The level inequality";
    statement = "Lemma 5.4 (KKL): weight up to level r is at most delta^-r mu^(2/(1+delta))";
    run;
  }
