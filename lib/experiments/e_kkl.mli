(** Experiment F3-kkl — the level inequality (Lemma 5.4, after
    Kahn–Kalai–Linial).

    For AND-of-j-coordinates functions (the classical near-extremal
    family, mean 2^(−j)) and for random biased functions, compute the
    exact low-level Fourier weight by FWHT and compare with
    δ^(−r)·μ^(2/(1+δ)). AND functions should approach the bound; random
    functions sit far below it. All ratios must be ≤ 1. *)

val experiment : Exp.t
