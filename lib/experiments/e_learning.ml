let run (cfg : Config.t) =
  let rng = Config.rng cfg in
  let ell, eps, delta, qs, err_trials =
    match cfg.profile with
    | Config.Fast -> (4, 0.5, 0.30, [ 1; 2; 4; 8 ], 12)
    | Config.Full -> (5, 0.5, 0.25, [ 1; 2; 4; 8; 16 ], 24)
  in
  let n = 1 lsl (ell + 1) in
  let results =
    List.map
      (fun q ->
        let kstar =
          Dut_core.Learning.critical_k ~trials:err_trials
            ~rng:(Dut_prng.Rng.split rng) ~ell ~eps ~q ~delta ~hi:(1 lsl 22) ()
        in
        (q, kstar))
      qs
  in
  let points =
    List.filter_map
      (fun (q, k) -> Option.map (fun k -> (float_of_int q, float_of_int k)) k)
      results
  in
  let exponent =
    if List.length points >= 2 then
      Dut_stats.Fit.power_law_exponent (Array.of_list points)
    else Float.nan
  in
  let rows =
    List.map
      (fun (q, kstar) ->
        let lower = Dut_core.Bounds.thm14_learning_nodes ~n ~q in
        match kstar with
        | None -> [ Table.Int q; Table.Str "not found"; Table.Float lower; Table.Str "-" ]
        | Some k ->
            [
              Table.Int q;
              Table.Int k;
              Table.Float lower;
              Table.Bool (float_of_int k >= lower);
            ])
      results
  in
  [
    Table.make
      ~title:
        (Printf.sprintf
           "T4-learning: nodes needed to learn within l1 %.2f vs q (n=%d)" delta n)
      ~columns:[ "q"; "k*"; "thm1.4 lower n^2/q^2"; "respects bound" ]
      ~notes:
        [
          Printf.sprintf
            "fitted exponent of k*(q): %.3f (protocol theory ~ -1; Thm 1.4 allows down to -2)"
            exponent;
          "hard instances: fresh Paninski nu_z per trial at eps=0.5";
        ]
      rows;
  ]

let experiment =
  {
    Exp.id = "T4-learning";
    title = "Distributed learning of the input distribution";
    statement = "Theorem 1.4: learning needs k = Omega(n^2/q^2) nodes";
    run;
  }
