(** Experiment T4-learning — Theorem 1.4.

    Distributed learning with one-bit messages: measure the least number
    of nodes k at which the watcher protocol reconstructs random hard
    instances within ℓ1 error δ, as the per-node sample count q grows.
    Theorem 1.4 lower-bounds any protocol by k = Ω(n²/q²); the
    implemented protocol's own guarantee is k = O(n²/(q·δ²)). The table
    reports the measured k*(q), its fitted exponent in q, and both
    reference curves — the measured points must respect the lower
    bound. *)

val experiment : Exp.t
