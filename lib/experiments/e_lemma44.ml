let family ~ell ~q rng =
  let max_cutoff = (q * (q - 1) / 2) + 1 in
  List.concat
    [
      List.init max_cutoff (fun c ->
          Dut_core.Exact.collision_acceptor ~ell ~q ~cutoff:(c + 1));
      [ Dut_core.Exact.s_detector ~ell ~q ];
      List.map
        (fun p -> Dut_core.Exact.random_biased ~ell ~q ~accept_prob:p rng)
        [ 0.5; 0.9; 0.99 ];
    ]

let run (cfg : Config.t) =
  let rng = Config.rng cfg in
  let cases =
    match cfg.profile with
    | Config.Fast -> [ (1, 1); (1, 2); (2, 2); (2, 3) ]
    | Config.Full -> [ (1, 1); (1, 2); (1, 3); (2, 1); (2, 2); (2, 3); (2, 4); (3, 2) ]
  in
  let epss = [ 0.1; 0.3 ] in
  let m = 1 in
  let rows =
    List.concat_map
      (fun (ell, q) ->
        List.map
          (fun eps ->
            let n = 1 lsl (ell + 1) in
            let gs = family ~ell ~q (Dut_prng.Rng.split rng) in
            let worst_c =
              List.fold_left
                (fun acc g ->
                  Float.max acc (Dut_core.Exact.lemma44_min_constant g ~eps ~m))
                0. gs
            in
            let ratio_at_4 =
              List.fold_left
                (fun acc g ->
                  Float.max acc (Dut_core.Exact.lemma44_ratio g ~eps ~m ~c:4.))
                0. gs
            in
            [
              Table.Int n;
              Table.Int q;
              Table.Float eps;
              Table.Float worst_c;
              Table.Float ratio_at_4;
              Table.Bool (ratio_at_4 <= 1.);
            ])
          epss)
      cases
  in
  [
    Table.make
      ~title:"F5-lemma44: the smallest constant C making Lemma 4.4 hold (m=1)"
      ~columns:
        [ "n"; "q"; "eps"; "min C (worst G)"; "ratio at C=4"; "C=4 suffices" ]
      ~notes:
        [
          "Lemma 4.4 asserts 'there exists C'; the table computes the least C exactly";
          "on every enumerated instance the first (2e^2 q/n var) term already";
          "covers the exact LHS (min C = 0) -- note its constant 2, vs Lemma 4.2's 1,";
          "which is precisely the slack the F1 finding points at";
        ]
      rows;
  ]

let experiment =
  {
    Exp.id = "F5-lemma44";
    title = "The medium-variance lemma's constant";
    statement =
      "Lemma 4.4: E_z[(nu_z(G)-mu(G))^2] <= 2e^2 q/n var(G) + C (...) var(G)^(2-1/(m+1))";
    run;
  }
