(** Experiment F5-lemma44 — Lemma 4.4, the medium-variance
    interpolation.

    Lemma 4.4 asserts the existence of a constant C making
    E_z[(ν_z(G)−μ(G))²] ≤ 2ε²q/n·var(G) + C·(…)·m²ε²·var(G)^(2−1/(m+1))
    hold. For each small instance we compute, exactly, the {e smallest}
    C that works, over the same function family as F1. The table shows
    a modest uniform constant (single digits) suffices everywhere the
    side condition on q holds — the executable form of "there exists
    C > 0". *)

val experiment : Exp.t
