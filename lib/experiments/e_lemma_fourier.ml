type ratios = {
  l51 : float;
  l42 : float;
  l42_slack : float;
  l43 : float;
  witness : string;
}

let family ~ell ~q rng =
  let max_cutoff = (q * (q - 1) / 2) + 1 in
  let cutoffs = List.init max_cutoff (fun c -> c + 1) in
  List.concat
    [
      List.map
        (fun c ->
          ( Printf.sprintf "collisions<%d" c,
            Dut_core.Exact.collision_acceptor ~ell ~q ~cutoff:c ))
        cutoffs;
      [ ("s-detector", Dut_core.Exact.s_detector ~ell ~q) ];
      List.map
        (fun p ->
          ( Printf.sprintf "random(p=%.2f)" p,
            Dut_core.Exact.random_biased ~ell ~q ~accept_prob:p rng ))
        [ 0.5; 0.9; 0.99 ];
      [ ("constant-1", Dut_core.Exact.constant ~ell ~q true) ];
    ]

let worst_ratios ~ell ~q ~eps ~m rng =
  let gs = family ~ell ~q rng in
  List.fold_left
    (fun acc (name, g) ->
      let r51 = Dut_core.Exact.lemma51_ratio g ~eps in
      let r42 = Dut_core.Exact.lemma42_ratio g ~eps in
      let r42s = Dut_core.Exact.lemma42_slack_ratio g ~eps in
      let r43 = Dut_core.Exact.lemma43_ratio g ~eps ~m in
      {
        l51 = Float.max acc.l51 r51;
        l42 = Float.max acc.l42 r42;
        l42_slack = Float.max acc.l42_slack r42s;
        l43 = Float.max acc.l43 r43;
        witness = (if r42 > acc.l42 then name else acc.witness);
      })
    { l51 = 0.; l42 = 0.; l42_slack = 0.; l43 = 0.; witness = "-" }
    gs

let run (cfg : Config.t) =
  let rng = Config.rng cfg in
  let cases =
    match cfg.profile with
    | Config.Fast -> [ (1, 1); (1, 2); (2, 2); (2, 3) ]
    | Config.Full ->
        [ (1, 1); (1, 2); (1, 3); (2, 1); (2, 2); (2, 3); (2, 4); (3, 2); (3, 3) ]
  in
  let epss =
    match cfg.profile with
    | Config.Fast -> [ 0.1; 0.3 ]
    | Config.Full -> [ 0.1; 0.2; 0.3; 0.5 ]
  in
  let m = 1 in
  let rows =
    List.concat_map
      (fun (ell, q) ->
        List.map
          (fun eps ->
            let n = 1 lsl (ell + 1) in
            let w = worst_ratios ~ell ~q ~eps ~m (Dut_prng.Rng.split rng) in
            [
              Table.Int n;
              Table.Int q;
              Table.Float eps;
              Table.Float w.l51;
              Table.Bool (Dut_core.Bounds.lemma51_applies ~q ~n ~eps);
              Table.Float w.l42;
              Table.Float w.l42_slack;
              Table.Bool (Dut_core.Bounds.lemma42_applies ~q ~n ~eps);
              Table.Float w.l43;
              Table.Str w.witness;
            ])
          epss)
      cases
  in
  [
    Table.make
      ~title:"F1-lemma51: exact worst-case LHS/RHS ratios over player functions"
      ~columns:
        [
          "n"; "q"; "eps"; "L5.1 ratio"; "L5.1 applies"; "L4.2 ratio";
          "L4.2 slack ratio"; "L4.2 applies"; "L4.3 ratio (m=1)"; "worst G (L4.2)";
        ]
      ~notes:
        [
          "ratios are exact (full enumeration of z and the cube)";
          "L5.1 and the slack form of L4.2 must be <= 1 whenever their conditions hold";
          "finding: the literal L4.2 constant is exceeded (ratio up to 2) by the";
          "s-detector at q=1; raising the linear term's constant to 4 restores it";
          "(benign: downstream uses absorb constants into the Omega)";
        ]
      rows;
  ]

let experiment =
  {
    Exp.id = "F1-lemma51";
    title = "Exact verification of the main lemmas";
    statement =
      "Lemmas 5.1/4.2/4.3: |E_z nu_z(G) - mu(G)| and its square are bounded by the Fourier RHS";
    run;
  }
