(** Experiment F1-lemma51 — Lemmas 5.1, 4.2 and 4.3, verified exactly.

    For each (ℓ, q, ε) in range, enumerate the full truth table of a
    family of player functions G — collision acceptors at every cutoff,
    biased and unbiased random functions, and constants — compute
    E_z[ν_z(G)] − μ(G) and E_z[(ν_z(G) − μ(G))²] exactly over all
    2^(2^ℓ) perturbations, and report the worst LHS/RHS ratio of each
    lemma over the family. Lemma 5.1's ratio must be ≤ 1 whenever its
    side-condition on q holds.

    Reproduction finding: Lemma 4.2's {e literal} constants are exceeded
    (ratio up to 2) by the side-bit detector at q = 1; the inequality
    holds once the linear term's constant is raised from 1 to 4 (the
    "slack" column). This is a benign constant-level slip — every
    downstream use wraps the lemma in Ω(·). *)

val experiment : Exp.t
