let topologies rng k =
  let side = int_of_float (sqrt (float_of_int k)) in
  [
    ("complete", Dut_netsim.Graph.complete k);
    ("star", Dut_netsim.Graph.star k);
    ("binary tree", Dut_netsim.Graph.binary_tree k);
    (Printf.sprintf "grid %dx%d" side (k / side), Dut_netsim.Graph.grid side (k / side));
    ("cycle", Dut_netsim.Graph.cycle k);
    ("path", Dut_netsim.Graph.path k);
    ("random connected", Dut_netsim.Graph.random_connected rng ~n:k ~extra_edges:k);
  ]

let run (cfg : Config.t) =
  let rng = Config.rng cfg in
  let ell, eps, k =
    match cfg.profile with
    | Config.Fast -> (7, 0.3, 36)
    | Config.Full -> (9, 0.25, 64)
  in
  let n = 1 lsl (ell + 1) in
  let hi = 16 * int_of_float (Dut_core.Bounds.centralized ~n ~eps) in
  let rows =
    (* q* is topology-independent (same votes, different transport), so
       each topology warm-starts at the previous one's answer. *)
    let prev = ref None in
    List.map
      (fun (name, graph) ->
        let guess = if cfg.warm_start then !prev else None in
        let qstar =
          Dut_core.Evaluate.critical_q ~adaptive:cfg.adaptive
            ~trials:cfg.trials ~level:cfg.level
            ~rng:(Dut_prng.Rng.split rng) ~ell ~eps ~hi ?guess (fun q ->
              Dut_netsim.Local_tester.tester ~graph ~n ~eps ~q
                ~calibration_trials:cfg.calibration_trials
                ~rng:(Dut_prng.Rng.split rng))
        in
        (match qstar with Some q -> prev := Some q | None -> ());
        match qstar with
        | None ->
            [ Table.Str name; Table.Str "-"; Table.Str "not found"; Table.Str "-";
              Table.Str "-"; Table.Str "-"; Table.Str "-" ]
        | Some q ->
            (* One full instrumented execution at q* for the cost columns. *)
            let t =
              Dut_netsim.Local_tester.make ~graph ~n ~eps ~q
                ~calibration_trials:cfg.calibration_trials
                ~rng:(Dut_prng.Rng.split rng)
            in
            let r =
              Dut_netsim.Local_tester.run t (Dut_prng.Rng.split rng)
                (Dut_protocol.Network.uniform_source ~n)
            in
            [
              Table.Str name;
              Table.Int (Dut_netsim.Local_tester.height t);
              Table.Int q;
              Table.Int r.local_time;
              Table.Int r.messages;
              Table.Int r.max_message_bits;
              Table.Bool r.all_agree;
            ])
      (topologies (Dut_prng.Rng.split rng) k)
  in
  [
    Table.make
      ~title:
        (Printf.sprintf
           "T13-local-model: LOCAL-time decomposition across topologies (n=%d, k=%d, eps=%.2f)"
           n k eps)
      ~columns:
        [
          "topology"; "tree height"; "q*"; "local time q*+2h+1"; "messages";
          "max msg bits"; "all agree";
        ]
      ~notes:
        [
          "q* is topology-independent (same votes, different transport)";
          "local time = sampling q* + aggregation 2h+1: the path pays in rounds";
          "message counts and sizes are measured by the Sync_net simulator";
          "max msg bits <= ceil(lg(k+1)): the protocol also fits CONGEST(log n)";
        ]
      rows;
  ]

let experiment =
  {
    Exp.id = "T13-local-model";
    title = "Uniformity testing in the LOCAL model";
    statement =
      "[7]'s reduction / Section 6.2: LOCAL cost = sampling time + tree aggregation";
    run;
  }
