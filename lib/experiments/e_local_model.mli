(** Experiment T13-local-model — the LOCAL-model reduction of [7],
    executed on a real synchronous message-passing simulator.

    Fixed player count k, one node per graph vertex, across topologies
    of very different diameters. The empirical critical per-node sample
    count q* is topology-independent (the votes don't care how they
    travel), while the measured LOCAL time q* + 2·height + 1 and message
    count vary with the topology — on a path the aggregation term
    dominates, on a star or clique the sampling term (the simultaneous
    model's Theorem 1.1 cost) does. *)

val experiment : Exp.t
