let run (cfg : Config.t) =
  let cases =
    match cfg.profile with
    | Config.Fast -> [ (2, 4, 1, 1); (2, 4, 1, 2); (2, 4, 2, 1); (2, 6, 1, 2) ]
    | Config.Full ->
        [
          (2, 4, 1, 1); (2, 4, 1, 2); (2, 4, 1, 3); (2, 4, 2, 1); (2, 4, 2, 2);
          (2, 6, 1, 1); (2, 6, 1, 2); (2, 6, 2, 2); (2, 6, 3, 1);
          (3, 4, 1, 1); (3, 4, 1, 2); (3, 4, 2, 1); (3, 5, 1, 2);
        ]
  in
  let moment_rows =
    List.map
      (fun (ell, q, r, power) ->
        let m = 1 lsl ell in
        let n = 2 * m in
        let exact = Dut_boolcube.Even_cover.moment_a_r_exact ~m ~q ~r ~power in
        let bound = Dut_boolcube.Even_cover.moment_a_r_bound ~n ~q ~r ~power in
        [
          Table.Int n;
          Table.Int q;
          Table.Int r;
          Table.Int power;
          Table.Float exact;
          Table.Float bound;
          Table.Float (if bound > 0. then exact /. bound else 0.);
        ])
      cases
  in
  let xs_cases =
    match cfg.profile with
    | Config.Fast -> [ (2, 4, 2); (2, 4, 4); (2, 6, 2) ]
    | Config.Full ->
        [ (2, 4, 2); (2, 4, 4); (2, 6, 2); (2, 6, 4); (2, 6, 6); (3, 4, 2); (3, 4, 4); (3, 6, 4) ]
  in
  let xs_rows =
    List.map
      (fun (ell, q, s_size) ->
        let m = 1 lsl ell in
        let exact = Dut_boolcube.Even_cover.count_x_s ~m ~q ~s_size in
        let bound = Dut_boolcube.Even_cover.x_s_upper_bound ~m ~q ~s_size in
        [
          Table.Int (2 * m);
          Table.Int q;
          Table.Int s_size;
          Table.Float exact;
          Table.Float bound;
          Table.Float (if bound > 0. then exact /. bound else 0.);
        ])
      xs_cases
  in
  [
    Table.make ~title:"F2-moments: exact E[a_r(x)^m] vs the Lemma 5.5 bound"
      ~columns:[ "n"; "q"; "r"; "m"; "exact moment"; "lemma 5.5 bound"; "ratio" ]
      ~notes:[ "every ratio must be <= 1; exact values by full enumeration" ]
      moment_rows;
    Table.make ~title:"F2-moments: exact |X_S| vs the Proposition 5.2 bound"
      ~columns:[ "n"; "q"; "|S|"; "exact |X_S|"; "(|S|-1)!! (n/2)^(q-|S|/2)"; "ratio" ]
      ~notes:[ "every ratio must be <= 1" ]
      xs_rows;
  ]

let experiment =
  {
    Exp.id = "F2-moments";
    title = "Evenly-covered combinatorics: moments and counts";
    statement = "Lemma 5.5 moment bounds and Proposition 5.2 counting bounds";
    run;
  }
