(** Experiment F2-moments — Lemma 5.5 and Proposition 5.2, exactly.

    Enumerates all sample tuples over the left-cube alphabet and
    computes the moments E_x[a_r(x)^m] of the evenly-covered-subset count
    exactly, comparing against Lemma 5.5's bound; also tabulates the
    exact size of X_S against Proposition 5.2's
    (|S|−1)!!·(n/2)^(q−|S|/2) bound. Every ratio must be ≤ 1. *)

val experiment : Exp.t
