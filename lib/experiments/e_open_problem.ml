let run (cfg : Config.t) =
  let rng = Config.rng cfg in
  let ell, epss, ks =
    match cfg.profile with
    | Config.Fast -> (7, [ 0.3; 0.5 ], [ 1; 4; 16; 64 ])
    | Config.Full -> (8, [ 0.25; 0.4; 0.6 ], [ 1; 4; 16; 64; 256 ])
  in
  let n = 1 lsl (ell + 1) in
  let rows =
    List.map
      (fun eps ->
        let hi = 16 * int_of_float (Dut_core.Bounds.centralized ~n ~eps) in
        let points =
          (* The AND tester's q* is nearly flat in k: the previous grid
             point's answer is already a tight warm-start bracket. *)
          let prev = ref None in
          List.filter_map
            (fun k ->
              let guess = if cfg.warm_start then !prev else None in
              let qstar =
                Dut_core.Evaluate.critical_q ~adaptive:cfg.adaptive
                  ~trials:cfg.trials ~level:cfg.level
                  ~rng:(Dut_prng.Rng.split rng) ~ell ~eps ~hi ?guess (fun q ->
                    Dut_core.And_tester.tester ~n ~eps ~k ~q)
              in
              (match qstar with Some q -> prev := Some q | None -> ());
              Option.map (fun q -> (float_of_int k, float_of_int q)) qstar)
            ks
        in
        if List.length points < 3 then
          [ Table.Float eps; Table.Str "not enough points"; Table.Str "-";
            Table.Str "-"; Table.Str "-"; Table.Str "-" ]
        else begin
          let ci =
            Dut_stats.Bootstrap.exponent_ci (Dut_prng.Rng.split rng)
              (Array.of_list points)
          in
          (* The AND tester's gain exponent theta satisfies q* ~ k^-theta,
             so theta-hat = -slope. *)
          let theta = -.ci.estimate in
          [
            Table.Float eps;
            Table.Float theta;
            Table.Str (Printf.sprintf "[%.3f, %.3f]" (-.ci.upper) (-.ci.lower));
            Table.Float (eps *. eps);
            Table.Float eps;
            Table.Str
              (if Float.abs (theta -. (eps *. eps)) < Float.abs (theta -. eps)
               then "eps^2 (the [7] tester)"
               else "eps (the lower bound's allowance)");
          ]
        end)
      epss
  in
  [
    Table.make
      ~title:
        (Printf.sprintf
           "T20-open-problem: the AND tester's k-exponent vs eps (n=%d)" n)
      ~columns:
        [
          "eps"; "measured theta (q* ~ k^-theta)"; "90% bootstrap";
          "eps^2 candidate"; "eps candidate"; "closer to";
        ]
      ~notes:
        [
          "the paper leaves open whether the AND gain exponent is Theta(eps) or Theta(eps^2);";
          "the implemented tester follows [7], so eps^2-tracking is expected --";
          "a measured theta near eps would indicate a better tester exists";
        ]
      rows;
  ]

let experiment =
  {
    Exp.id = "T20-open-problem";
    title = "The open problem, probed";
    statement =
      "Post-Thm-1.2 remark: is the AND rule's k-exponent Theta(eps) or Theta(eps^2)?";
    run;
  }
