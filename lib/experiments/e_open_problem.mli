(** Experiment T20-open-problem — the paper's open question, probed.

    After Theorem 1.2 the paper notes a possible quadratic gap: the
    lower bound permits the AND tester's gain to scale like k^Θ(ε),
    while [7]'s tester achieves k^Θ(ε²) — "leaving open a possible
    quadratic improvement in the exponent of k". This experiment
    measures the implemented AND tester's k-exponent θ̂(ε) at several ε
    (with bootstrap intervals) and tabulates it against the two
    candidate scalings ε·c and ε²·c. The implemented tester follows
    [7]'s construction, so θ̂ tracking ε² (not ε) is the expected
    outcome — the open question is whether a cleverer tester could do
    better, and the measured gap quantifies what's at stake. *)

val experiment : Exp.t
