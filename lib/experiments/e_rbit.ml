let run (cfg : Config.t) =
  let rng = Config.rng cfg in
  let ell, eps, k, bits_list =
    match cfg.profile with
    | Config.Fast -> (7, 0.3, 32, [ 1; 2; 3 ])
    | Config.Full -> (9, 0.25, 64, [ 1; 2; 3; 4 ])
  in
  let n = 1 lsl (ell + 1) in
  let hi = 16 * int_of_float (Dut_core.Bounds.centralized ~n ~eps) in
  let results =
    (* Warm-start along the message-size grid with Theorem 6.4's
       q* ∝ 2^(-r/2). *)
    let _, rev =
      List.fold_left
        (fun (prev, acc) bits ->
          let guess =
            match prev with
            | Some (b0, q0) when cfg.warm_start ->
                Some
                  (max 1
                     (int_of_float
                        (Float.round
                           (float_of_int q0
                           /. (2. ** (float_of_int (bits - b0) /. 2.))))))
            | _ -> None
          in
          let qstar =
            Dut_core.Evaluate.critical_q ~adaptive:cfg.adaptive
              ~trials:cfg.trials ~level:cfg.level ~rng:(Dut_prng.Rng.split rng)
              ~ell ~eps ~hi ?guess (fun q ->
                Dut_core.Rbit_tester.tester ~n ~eps ~k ~q ~bits
                  ~calibration_trials:cfg.calibration_trials
                  ~rng:(Dut_prng.Rng.split rng))
          in
          let prev = match qstar with Some q -> Some (bits, q) | None -> prev in
          (prev, (bits, qstar) :: acc))
        (None, []) bits_list
    in
    List.rev rev
  in
  let rows =
    List.map
      (fun (bits, qstar) ->
        match qstar with
        | None -> [ Table.Int bits; Table.Str "not found"; Table.Str "-" ]
        | Some q ->
            [
              Table.Int bits;
              Table.Int q;
              Table.Float (Dut_core.Bounds.thm64_rbit_lower ~n ~k ~eps ~r:bits);
            ])
      results
  in
  [
    Table.make
      ~title:
        (Printf.sprintf "T6-rbit: critical q vs message bits (n=%d, k=%d, eps=%.2f)"
           n k eps)
      ~columns:[ "r (bits)"; "q*"; "thm6.4 lower" ]
      ~notes:
        [
          "q* decreases with r, with diminishing returns (Theorem 6.4's 2^r factor)";
        ]
      rows;
  ]

let experiment =
  {
    Exp.id = "T6-rbit";
    title = "Longer messages";
    statement =
      "Theorem 6.4: with r-bit messages, q = Omega(min(sqrt(n/(2^r k)), n/(2^r k))/eps^2)";
    run;
  }
