(** Experiment T6-rbit — Theorem 6.4.

    Sweep the per-player message length r with n, k, ε fixed: critical q
    decreases with r (each extra bit refines the transmitted sketch of
    the local statistic) but with diminishing returns, consistent with
    the 2^r factor in Theorem 6.4's min(√(n/(2^r k)), n/(2^r k))/ε²
    bound and its eventual saturation at the statistic's full
    resolution. *)

val experiment : Exp.t
