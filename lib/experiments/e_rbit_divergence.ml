let quantized_message ~n ~q ~levels tuple =
  (* Collision count clipped into the available levels: with enough
     levels this is the full statistic, with 2 it is a one-bit vote at
     the first collision. *)
  ignore n;
  ignore q;
  min (levels - 1) (Dut_core.Local_stat.collisions tuple)

let run (cfg : Config.t) =
  let ell, qs, eps =
    match cfg.profile with
    | Config.Fast -> (2, [ 3; 4 ], 0.3)
    | Config.Full -> (2, [ 3; 4; 5 ], 0.3)
  in
  let n = 1 lsl (ell + 1) in
  let rows =
    List.concat_map
      (fun q ->
        let max_stat = (q * (q - 1) / 2) + 1 in
        List.filter_map
          (fun r ->
            let levels = min (1 lsl r) max_stat in
            if r > 1 && levels < 1 lsl (r - 1) then None
            else begin
              let div =
                Dut_core.Exact.message_divergence ~ell ~q ~eps ~levels
                  (quantized_message ~n ~q ~levels)
              in
              let one_bit =
                Dut_core.Exact.message_divergence ~ell ~q ~eps ~levels:2
                  (quantized_message ~n ~q ~levels:2)
              in
              Some
                [
                  Table.Int q;
                  Table.Int r;
                  Table.Int levels;
                  Table.Float div;
                  Table.Float (if one_bit > 0. then div /. one_bit else 0.);
                  Table.Float (Dut_core.Bounds.divergence_budget ~q ~n ~eps);
                ]
            end)
          [ 1; 2; 3; 4 ])
      qs
  in
  [
    Table.make
      ~title:
        (Printf.sprintf
           "F7-rbit-divergence: exact per-player leakage vs message bits (n=%d, eps=%.2f)"
           n eps)
      ~columns:
        [
          "q"; "r (bits)"; "levels used"; "E_z KL (bits)"; "gain over 1 bit";
          "one-bit budget (12)";
        ]
      ~notes:
        [
          "exact over all z and the whole cube; message = quantized collision count";
          "leakage grows with r then saturates once the statistic is fully sent --";
          "the 2^Theta(l) budget of Theorem 6.4 is an upper envelope, not a guarantee";
        ]
      rows;
  ]

let experiment =
  {
    Exp.id = "F7-rbit-divergence";
    title = "What r bits leak";
    statement =
      "Theorem 6.4 / 'lower bounds decay as 2^-Theta(l)': the message-length budget, exactly";
    run;
  }
