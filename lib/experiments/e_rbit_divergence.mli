(** Experiment F7-rbit-divergence — how much an r-bit message leaks,
    exactly.

    The paper's lower bounds "decay as 2^−Θ(ℓ)" with the message length
    — equivalently, an ℓ-bit message can carry up to ~2^Θ(ℓ) times the
    one-bit divergence budget. Here the per-player divergence
    E_z[D(message under ν_z ‖ under μ)] is computed exactly for the
    collision-count message quantized to r bits, r = 0-bits-of-sketch
    (the one-bit vote) up to the full statistic. The growth with r and
    its saturation — once the statistic is fully transmitted, more bits
    carry nothing — are both visible, bounding the useful message
    length at these parameters. *)

val experiment : Exp.t
