(* Exactly-eps-far families over [n], each with a different l2 profile. *)
let far_families ~n ~eps rng =
  let uniform = Dut_dist.Pmf.uniform n in
  let pairwise =
    let pmf, achieved = Dut_dist.Families.perturb_pairwise rng ~eps uniform in
    ("pairwise +-eps/n (the hard profile)", pmf, achieved)
  in
  let heavy_element =
    (* (1-a) U + a delta_0 has l1 distance 2a(1-1/n); solve for a. *)
    let a = eps /. (2. *. (1. -. (1. /. float_of_int n))) in
    let pmf = Dut_dist.Pmf.mix a (Dut_dist.Pmf.point_mass ~n 0) uniform in
    ("one heavy element", pmf, Dut_dist.Distance.distance_to_uniformity pmf)
  in
  let half_shifted =
    (* First half heavier by d, second half lighter: l1 = n d; d = eps/n. *)
    let d = eps /. float_of_int n in
    let pmf =
      Dut_dist.Pmf.create
        (Array.init n (fun i ->
             if i < n / 2 then (1. /. float_of_int n) +. d
             else (1. /. float_of_int n) -. d))
    in
    ("half-universe shift", pmf, Dut_dist.Distance.distance_to_uniformity pmf)
  in
  let few_heavy =
    (* eps/2 extra mass on n/16 elements, removed from the rest. *)
    let heavy = max 1 (n / 16) in
    let add = eps /. 2. /. float_of_int heavy in
    let sub = eps /. 2. /. float_of_int (n - heavy) in
    let pmf =
      Dut_dist.Pmf.create
        (Array.init n (fun i ->
             if i < heavy then (1. /. float_of_int n) +. add
             else (1. /. float_of_int n) -. sub))
    in
    ("concentrated on n/16", pmf, Dut_dist.Distance.distance_to_uniformity pmf)
  in
  [ pairwise; heavy_element; half_shifted; few_heavy ]

let run (cfg : Config.t) =
  let rng = Config.rng cfg in
  let ell, eps, k =
    match cfg.profile with
    | Config.Fast -> (7, 0.3, 16)
    | Config.Full -> (9, 0.25, 32)
  in
  let n = 1 lsl (ell + 1) in
  let q = 5 * int_of_float (Dut_core.Bounds.fmo_threshold_upper ~n ~k ~eps) in
  let tester =
    Dut_core.Threshold_tester.tester_majority ~n ~eps ~k ~q
      ~calibration_trials:cfg.calibration_trials ~rng:(Dut_prng.Rng.split rng)
  in
  let reject_prob pmf =
    let sampler = Dut_dist.Sampler.of_pmf pmf in
    (Dut_stats.Montecarlo.estimate_prob ~trials:cfg.trials
       (Dut_prng.Rng.split rng) (fun r ->
         not (tester.accepts r (Dut_protocol.Network.of_sampler sampler))))
      .estimate
  in
  let uniform_accept =
    (Dut_stats.Montecarlo.estimate_prob ~trials:cfg.trials
       (Dut_prng.Rng.split rng) (fun r ->
         tester.accepts r (Dut_protocol.Network.uniform_source ~n)))
      .estimate
  in
  let families = far_families ~n ~eps (Dut_prng.Rng.split rng) in
  let hard_reject =
    match families with (_, pmf, _) :: _ -> reject_prob pmf | [] -> 0.
  in
  let rows =
    List.map
      (fun (name, pmf, achieved) ->
        let reject = reject_prob pmf in
        [
          Table.Str name;
          Table.Float achieved;
          Table.Float (float_of_int n *. Dut_dist.Distance.l2_sq pmf (Dut_dist.Pmf.uniform n));
          Table.Float reject;
          Table.Bool (reject >= hard_reject -. 0.1);
        ])
      families
  in
  [
    Table.make
      ~title:
        (Printf.sprintf
           "T17-robustness: the calibrated tester vs other eps-far shapes (n=%d, k=%d, q=%d)"
           n k q)
      ~columns:
        [ "far family"; "l1 distance"; "n x l2^2 signal"; "reject prob"; ">= hard family" ]
      ~notes:
        [
          Printf.sprintf "uniform acceptance of the same tester: %.2f" uniform_accept;
          "the pairwise profile minimizes the l2 signal at fixed l1: every other";
          "shape should be rejected at least as often (worst-case adversary justified)";
        ]
      rows;
  ]

let experiment =
  {
    Exp.id = "T17-robustness";
    title = "Beyond the hard family";
    statement =
      "Section 3: the matched-pair profile is the least-l2 (hardest) eps-far shape";
    run;
  }
