(** Experiment T17-robustness — beyond the hard family.

    The Paninski family is the {e worst case}: it spreads the ε of ℓ1
    distance as thinly as possible (every element perturbed by ε/n), so
    its ℓ2 signal (1+ε²)/n is the minimum over ε-far distributions. Any
    other ε-far input concentrates more ℓ2 mass and must be easier for a
    collision-based tester. This experiment confronts the calibrated
    majority tester — calibrated once, against the uniform null only —
    with several other exactly-ε-far families and checks the rejection
    probability is at least the hard family's on every row. *)

val experiment : Exp.t
