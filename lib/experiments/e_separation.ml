let run (cfg : Config.t) =
  let rng = Config.rng cfg in
  let ell, eps, trials =
    match cfg.profile with
    | Config.Fast -> (7, 0.3, 300)
    | Config.Full -> (9, 0.25, 1000)
  in
  let n = 1 lsl (ell + 1) in
  let q_star = Dut_core.Bounds.centralized ~n ~eps in
  let qs =
    List.map
      (fun frac -> max 2 (int_of_float (frac *. q_star)))
      [ 0.125; 0.25; 0.5; 1.0; 2.0 ]
  in
  let collisions_of source r q =
    float_of_int (Dut_core.Local_stat.collisions (Array.init q (fun _ -> source r)))
  in
  let rows =
    List.map
      (fun q ->
        let null =
          Dut_stats.Montecarlo.estimate_mean ~trials rng (fun r ->
              collisions_of (Dut_protocol.Network.uniform_source ~n) r q)
        in
        let far =
          Dut_stats.Montecarlo.estimate_mean ~trials rng (fun r ->
              let d = Dut_dist.Paninski.random ~ell ~eps r in
              collisions_of (Dut_protocol.Network.of_paninski d) r q)
        in
        let gap = far.mean -. null.mean in
        let z = if null.std > 0. then gap /. null.std else Float.nan in
        [
          Table.Int q;
          Table.Float null.mean;
          Table.Float null.std;
          Table.Float far.mean;
          Table.Float gap;
          Table.Float z;
          Table.Float (Dut_core.Local_stat.far_mean ~n ~q ~eps -. Dut_core.Local_stat.null_mean ~n ~q);
        ])
      qs
  in
  [
    Table.make
      ~title:
        (Printf.sprintf
           "F4-separation: collision statistic under uniform vs nu_z (n=%d, eps=%.2f, q*~%.0f)"
           n eps q_star)
      ~columns:
        [ "q"; "null mean"; "null std"; "far mean"; "gap"; "gap z-score"; "theory gap" ]
      ~notes:
        [
          "the z-score crosses ~1 near q = sqrt(n)/eps^2: the centralized sample complexity";
          "theory gap = C(q,2) eps^2 / n";
        ]
      rows;
  ]

let experiment =
  {
    Exp.id = "F4-separation";
    title = "Collisions carry the signal";
    statement = "Section 3: testers gain information only by counting collisions";
    run;
  }
