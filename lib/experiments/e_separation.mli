(** Experiment F4-separation — Section 3's "collisions carry the signal".

    Tabulates the collision statistic's distribution under μ^q versus
    ν_z^q (fresh z per round) as q grows: null mean and standard
    deviation, far-side mean, and the standardized gap (z-score). The
    gap crosses z ≈ 1 near q ≈ √n/ε² — the exact place the centralized
    sample complexity sits, and the mechanism every tester in this
    repository exploits. *)

val experiment : Exp.t
