let run (cfg : Config.t) =
  let rng = Config.rng cfg in
  let ell, eps, bits_list =
    match cfg.profile with
    | Config.Fast -> (6, 0.4, [ 1; 2; 3; 4 ])
    | Config.Full -> (7, 0.3, [ 1; 2; 3; 4; 5; 6 ])
  in
  let n = 1 lsl (ell + 1) in
  let results =
    (* Warm-start along the bits grid with [1]'s k* ∝ 2^(-l/2). A warm
       grid is computed in DESCENDING bits order: k* shrinks with the
       message size, so the one cold search runs at the cheapest grid
       point and every pricier point inherits a scaled bracket. (A
       probe's cost is itself ~k, so cold-searching at l=1 — the
       largest k* — is the single most expensive step of the whole fast
       profile.) With warm starts off every point is cold and order is
       cost-neutral, so the historical ascending order is kept — this
       is what lets `--cold-search` reproduce pre-overhaul records
       stream for stream. *)
    let order = if cfg.warm_start then List.rev bits_list else bits_list in
    let _, acc =
      List.fold_left
        (fun (prev, acc) bits ->
          let guess =
            match prev with
            | Some (b0, k0) when cfg.warm_start ->
                Some
                  (max 2
                     (int_of_float
                        (Float.round
                           (float_of_int k0
                           /. (2. ** (float_of_int (bits - b0) /. 2.))))))
            | _ -> None
          in
          let kstar =
            Dut_core.Single_sample.critical_k ~adaptive:cfg.adaptive
              ~trials:cfg.trials ~level:cfg.level ~rng:(Dut_prng.Rng.split rng)
              ~ell ~eps ~bits ~hi:(1 lsl 20) ?guess ()
          in
          let prev = match kstar with Some k -> Some (bits, k) | None -> prev in
          (prev, (bits, kstar) :: acc))
        (None, []) order
    in
    if cfg.warm_start then acc else List.rev acc
  in
  let points =
    List.filter_map
      (fun (bits, k) ->
        Option.map (fun k -> (2. ** float_of_int bits, float_of_int k)) k)
      results
  in
  let exponent =
    if List.length points >= 2 then
      Dut_stats.Fit.power_law_exponent (Array.of_list points)
    else Float.nan
  in
  let rows =
    List.map
      (fun (bits, kstar) ->
        match kstar with
        | None -> [ Table.Int bits; Table.Str "not found"; Table.Str "-"; Table.Str "-" ]
        | Some k ->
            [
              Table.Int bits;
              Table.Int k;
              Table.Float (float_of_int k *. (2. ** (float_of_int bits /. 2.)));
              Table.Float (Dut_core.Bounds.act_single_sample_nodes ~n ~eps ~bits);
            ])
      results
  in
  [
    Table.make
      ~title:
        (Printf.sprintf
           "T10-single-sample: critical players vs message bits (n=%d, eps=%.2f, q=1)"
           n eps)
      ~columns:[ "l (bits)"; "k*"; "k*.2^(l/2)"; "theory n/(2^(l/2) e^2)" ]
      ~notes:
        [
          Printf.sprintf
            "fitted exponent of k* in 2^l: %.3f ([1] predicts -0.5)" exponent;
          "k*.2^(l/2) should be roughly constant for l >= 2; l = 1 pays an extra";
          "constant: with 2 buckets the partitioned signal is a low-dof chi-square";
        ]
      rows;
  ]

let experiment =
  {
    Exp.id = "T10-single-sample";
    title = "Single-sample players with l-bit messages";
    statement = "[1] (recovered by Thm 6.4 at q=1): k = Theta(n/(2^(l/2) eps^2))";
    run;
  }
