(** Experiment T10-single-sample — the q = 1 regime of [1] / Theorem 6.4.

    Sweep the message length ℓ with every player holding exactly one
    sample: the measured critical number of players k* decreases like
    2^(−ℓ/2), the trade-off Acharya–Canonne–Tyagi proved optimal and the
    paper's techniques recover. The table reports k*, the normalized
    k*·2^(ℓ/2), and the theory curve. *)

val experiment : Exp.t
