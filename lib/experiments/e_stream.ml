(* T21-stream: streaming, memory-bounded uniformity testing.

   Two measurements, both against the paper's hard family:

   1. The anytime referee: k players each ingest a per-round chunk of
      samples into a budgeted sketch, the referee merges the round's
      player sketches and emits an eps-spending checkpoint verdict.
      Reported per (sketch, budget): final-verdict power on both
      sides, the anytime (stop-early) detection rate on far streams
      for growing and sliding windows, and the mean stopping round.

   2. The memory/sample tradeoff: the critical stream length q* at
      which the budgeted sketch's batch-rule verdict reaches the
      success level, via the same critical-search machinery as
      T5-centralized — so the exact-budget row IS the batch collision
      tester's critical q, and the sub-linear budgets chart what the
      lost resolution costs in samples (theory: q* ~ n/sqrt(B), the
      communication/memory tradeoff shape of Diakonikolas-Gouleakis-
      Kane-Rao 2019). *)

module Sketch = Dut_stream.Sketch
module Anytime = Dut_stream.Anytime

let sketch_seed = 77

(* Draw [q] samples from [source] through the incremental engine fold:
   fixed chunk boundaries, one child RNG per chunk, sketches merged in
   chunk order — the streaming ingestion path, used here exactly as
   `dut stream` uses it. *)
let sketch_stream ?jobs ~rng ~chunk ~q ~cfg_sk source =
  Dut_engine.Parallel.fold_chunks ?jobs ~rng ~n:q ~chunk
    ~f:(fun rng ~lo ~hi ->
      let sk = Sketch.create cfg_sk in
      for _ = lo to hi - 1 do
        Sketch.add sk (source rng)
      done;
      sk)
    ~init:(Sketch.create cfg_sk) ~merge:Sketch.merge

let stream_tester ~cfg_sk ~chunk ~eps ~q =
  {
    Dut_core.Evaluate.name =
      Printf.sprintf "stream-%s(b=%d,q=%d)"
        (Sketch.kind_to_string (Sketch.kind_of cfg_sk))
        (Sketch.buckets cfg_sk) q;
    accepts =
      (fun rng source ->
        Sketch.accepts (sketch_stream ~rng ~chunk ~q ~cfg_sk source) ~eps);
  }

type trial = {
  final_accept : bool;
  grow_rejected : bool;
  slide_rejected : bool;
  reject_round : int;  (* first rejecting checkpoint; 0 = never *)
}

(* One full streamed protocol round: k players, [rounds] chunks each,
   referees observing the merged per-round sketch. *)
let run_trial ~rng ~k ~rounds ~chunk ~eps ~slide_w ~cfg_sk source =
  let grow = Anytime.create ~window:Anytime.Growing ~eps cfg_sk in
  let slide = Anytime.create ~window:(Anytime.Sliding slide_w) ~eps cfg_sk in
  let prngs = Dut_prng.Rng.split_n rng k in
  for _ = 1 to rounds do
    let round_sk = ref (Sketch.create cfg_sk) in
    for p = 0 to k - 1 do
      let sk = Sketch.create cfg_sk in
      for _ = 1 to chunk do
        Sketch.add sk (source prngs.(p))
      done;
      round_sk := Sketch.merge !round_sk sk
    done;
    ignore (Anytime.observe grow !round_sk);
    ignore (Anytime.observe slide !round_sk)
  done;
  {
    final_accept = not (Anytime.final grow).Anytime.reject;
    grow_rejected = Anytime.rejected grow <> None;
    slide_rejected = Anytime.rejected slide <> None;
    reject_round =
      (match Anytime.rejected grow with
      | Some v -> v.Anytime.index
      | None -> 0);
  }

let anytime_row (cfg : Config.t) ~rng ~ell ~eps ~k ~rounds ~chunk ~slide_w
    ~kind ~budget =
  let n = 1 lsl (ell + 1) in
  let cfg_sk = Sketch.config ~kind ~n ~budget_words:budget ~seed:sketch_seed in
  let trials = cfg.trials in
  let run_side source_of =
    Dut_engine.Parallel.init ~jobs:cfg.jobs ~rng:(Dut_prng.Rng.split rng)
      ~n:trials (fun rng _ ->
        run_trial ~rng ~k ~rounds ~chunk ~eps ~slide_w ~cfg_sk (source_of rng))
  in
  let uniform = run_side (fun _ -> Dut_protocol.Network.uniform_source ~n) in
  let far =
    run_side (fun rng ->
        Dut_protocol.Network.of_paninski (Dut_dist.Paninski.random ~ell ~eps rng))
  in
  let frac pred a =
    float_of_int (Array.fold_left (fun c t -> if pred t then c + 1 else c) 0 a)
    /. float_of_int (Array.length a)
  in
  let mean_reject_round =
    let rejecting = Array.to_list far |> List.filter (fun t -> t.reject_round > 0) in
    match rejecting with
    | [] -> Float.nan
    | l ->
        List.fold_left (fun acc t -> acc +. float_of_int t.reject_round) 0. l
        /. float_of_int (List.length l)
  in
  let words = Sketch.words_used (Sketch.create cfg_sk) in
  [
    Table.Str (Sketch.kind_to_string kind);
    Table.Int budget;
    Table.Int words;
    Table.Bool (Sketch.is_exact cfg_sk);
    Table.Float (frac (fun t -> t.final_accept) uniform);
    Table.Float (frac (fun t -> not t.final_accept) far);
    Table.Float (frac (fun t -> t.grow_rejected) uniform);
    Table.Float (frac (fun t -> t.grow_rejected) far);
    Table.Float (frac (fun t -> t.slide_rejected) far);
    Table.Float mean_reject_round;
  ]

let run (cfg : Config.t) =
  let rng = Config.rng cfg in
  let ell, eps, k, rounds, chunk, slide_w =
    (* Per-player round size is what powers the anytime stop: the
       eps-spending slack and the eps-far excess both grow ~ j^2 on a
       growing window, so their ratio is set once by (chunk * k) —
       roughly chunk*k > 23*j*sqrt(n/2)/eps^2 per checkpoint j is
       needed for the Chebyshev threshold to ever fire. *)
    match cfg.profile with
    | Config.Fast -> (5, 0.3, 4, 8, 384, 4)
    | Config.Full -> (7, 0.25, 8, 8, 512, 4)
  in
  let n = 1 lsl (ell + 1) in
  let hist_budgets, ams_budgets =
    match cfg.profile with
    | Config.Fast -> ([ Sketch.exact_budget ~n; 40; 24; 16 ], [ 40; 24; 16 ])
    | Config.Full -> ([ Sketch.exact_budget ~n; 136; 72; 40; 24 ], [ 72; 40; 24 ])
  in
  let anytime_rows =
    List.concat_map
      (fun (kind, budgets) ->
        List.map
          (fun budget ->
            anytime_row cfg ~rng:(Dut_prng.Rng.split rng) ~ell ~eps ~k ~rounds
              ~chunk ~slide_w ~kind ~budget)
          budgets)
      [ (Sketch.Hist, hist_budgets); (Sketch.Ams, ams_budgets) ]
  in
  (* -- memory/sample tradeoff: critical stream length per budget ------- *)
  let critical_for ~kind ~budget ~guess =
    let cfg_sk = Sketch.config ~kind ~n ~budget_words:budget ~seed:sketch_seed in
    let b = float_of_int (Sketch.buckets cfg_sk) in
    let hi =
      max 256
        (int_of_float
           (32. *. float_of_int n /. (sqrt b *. eps *. eps)))
    in
    let qstar =
      Dut_core.Evaluate.critical_q ~adaptive:cfg.adaptive ~trials:cfg.trials
        ~level:cfg.level ~rng:(Dut_prng.Rng.split rng) ~ell ~eps ~hi
        ?guess:(if cfg.warm_start then guess else None)
        (fun q -> stream_tester ~cfg_sk ~chunk ~eps ~q)
    in
    (cfg_sk, qstar)
  in
  let tradeoff kind budgets =
    let prev = ref None in
    List.map
      (fun budget ->
        let guess =
          match !prev with
          | Some (b0, q0) ->
              (* q* ~ B^(-1/2): scale the previous point's critical
                 length by the bucket-count ratio. *)
              Some
                (max 1
                   (int_of_float
                      (Float.round
                         (float_of_int q0 *. sqrt (float_of_int b0 /. float_of_int budget)))))
          | None -> None
        in
        let cfg_sk, qstar = critical_for ~kind ~budget ~guess in
        (match qstar with
        | Some q -> prev := Some (budget, q)
        | None -> ());
        (kind, budget, cfg_sk, qstar))
      budgets
  in
  let trade_rows = tradeoff Sketch.Hist hist_budgets @ tradeoff Sketch.Ams ams_budgets in
  let batch_q =
    List.find_map
      (fun (kind, _, cfg_sk, qstar) ->
        if kind = Sketch.Hist && Sketch.is_exact cfg_sk then qstar else None)
      trade_rows
  in
  let trade_table_rows =
    List.map
      (fun (kind, budget, cfg_sk, qstar) ->
        let words = Sketch.words_used (Sketch.create cfg_sk) in
        [
          Table.Str (Sketch.kind_to_string kind);
          Table.Int budget;
          Table.Int words;
          Table.Int (Sketch.buckets cfg_sk);
          Table.Bool (Sketch.is_exact cfg_sk);
          (match qstar with Some q -> Table.Int q | None -> Table.Str "not found");
          (match (qstar, batch_q) with
          | Some q, Some b -> Table.Float (float_of_int q /. float_of_int b)
          | _ -> Table.Str "-");
        ])
      trade_rows
  in
  let hist_fit =
    let pts =
      List.filter_map
        (fun (kind, _, cfg_sk, qstar) ->
          match qstar with
          | Some q when kind = Sketch.Hist && not (Sketch.is_exact cfg_sk) ->
              Some (float_of_int (Sketch.buckets cfg_sk), float_of_int q)
          | _ -> None)
        trade_rows
    in
    if List.length pts >= 2 then
      Dut_stats.Fit.power_law_exponent (Array.of_list pts)
    else Float.nan
  in
  [
    Table.make
      ~title:
        (Printf.sprintf
           "T21-stream: anytime verdicts, %d players x %d rounds of %d (n=%d, eps=%.2f)"
           k rounds chunk n eps)
      ~columns:
        [
          "sketch"; "budget"; "words used"; "exact"; "uniform accept";
          "far reject"; "false stop"; "anytime reject";
          Printf.sprintf "sliding(%d) reject" slide_w; "mean stop round";
        ]
      ~notes:
        [
          "final verdict = batch midpoint rule on the full stream; anytime = \
           eps-spending stop (alpha=0.05); false stop = anytime rejections \
           on uniform streams (validity: stays below alpha)";
          "words used is measured (Sketch.words_used), never exceeds the budget";
        ]
      anytime_rows;
    Table.make
      ~title:
        (Printf.sprintf
           "T21-stream: critical stream length vs per-player memory (n=%d, eps=%.2f)"
           n eps)
      ~columns:
        [ "sketch"; "budget"; "words used"; "buckets"; "exact"; "q*"; "q*/batch" ]
      ~notes:
        [
          "exact-budget row = the batch collision tester's critical q \
           (T5-centralized machinery)";
          Printf.sprintf
            "fitted exponent of q* in buckets (hashed hist rows): %.3f (theory -0.5)"
            hist_fit;
        ]
      trade_table_rows;
  ]

let experiment =
  {
    Exp.id = "T21-stream";
    title = "Streaming, memory-bounded testing";
    statement =
      "Memory-limited streaming testers (after Diakonikolas-Gouleakis-Kane-Rao \
       2019): bounded sketches trade per-player words for stream length as q* \
       ~ n/sqrt(B), and eps-spending checkpoints give anytime-valid verdicts";
    run;
  }
