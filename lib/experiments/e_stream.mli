(** Experiment T21-stream — streaming, memory-bounded testing.

    k players ingest unbounded sample streams into budgeted
    {!Dut_stream.Sketch}es; the referee merges per-round sketches and
    emits anytime-valid eps-spending verdicts ({!Dut_stream.Anytime}).
    Measures final and anytime detection power per memory budget
    (growing and sliding windows), and the critical stream length q*
    per budget against the batch collision tester's critical q — the
    memory/sample tradeoff q* ~ n/√B of Diakonikolas–Gouleakis–Kane–Rao
    (arXiv:1906.04709). *)

val experiment : Exp.t
