let run (cfg : Config.t) =
  let rng = Config.rng cfg in
  let ell, eps, k, ts =
    match cfg.profile with
    | Config.Fast -> (7, 0.3, 32, [ 1; 2; 4; 8; 16 ])
    | Config.Full -> (9, 0.25, 64, [ 1; 2; 4; 8; 16; 32 ])
  in
  let n = 1 lsl (ell + 1) in
  let hi = 16 * int_of_float (Dut_core.Bounds.centralized ~n ~eps) in
  let results =
    (* Warm-start along the T grid with Theorem 1.3's q* ∝ 1/T. *)
    let _, rev =
      List.fold_left
        (fun (prev, acc) t ->
          let guess =
            match prev with
            | Some (t0, q0) when cfg.warm_start ->
                Some (max 1 (q0 * t0 / t))
            | _ -> None
          in
          let qstar =
            Dut_core.Evaluate.critical_q ~adaptive:cfg.adaptive
              ~trials:cfg.trials ~level:cfg.level ~rng:(Dut_prng.Rng.split rng)
              ~ell ~eps ~hi ?guess (fun q ->
                Dut_core.Threshold_tester.tester_fixed ~n ~eps ~k ~q ~t)
          in
          let prev = match qstar with Some q -> Some (t, q) | None -> prev in
          (prev, (t, qstar) :: acc))
        (None, []) ts
    in
    List.rev rev
  in
  let points =
    List.filter_map
      (fun (t, q) -> Option.map (fun q -> (float_of_int t, float_of_int q)) q)
      results
  in
  let exponent =
    if List.length points >= 2 then
      Dut_stats.Fit.power_law_exponent (Array.of_list points)
    else Float.nan
  in
  let rows =
    List.map
      (fun (t, qstar) ->
        match qstar with
        | None -> [ Table.Int t; Table.Str "not found"; Table.Str "-"; Table.Str "-" ]
        | Some q ->
            [
              Table.Int t;
              Table.Int q;
              Table.Float (float_of_int (q * t));
              Table.Float (Dut_core.Bounds.thm13_threshold_lower ~n ~k ~eps ~t);
            ])
      results
  in
  [
    Table.make
      ~title:
        (Printf.sprintf
           "T3-threshold-T: critical q vs reject-threshold T (n=%d, k=%d, eps=%.2f)"
           n k eps)
      ~columns:[ "T"; "q*"; "q*.T"; "thm1.3 sqrt(n)/(T lg^2(k/e) e^2)" ]
      ~notes:
        [
          Printf.sprintf
            "fitted exponent of q*(T): %.3f (Theorem 1.3 predicts about -1 before saturation)"
            exponent;
          "T=1 is the AND rule; q*.T should be roughly flat in the 1/T regime";
        ]
      rows;
  ]

let experiment =
  {
    Exp.id = "T3-threshold-T";
    title = "The cost of small reject thresholds";
    statement =
      "Theorem 1.3: the T-threshold rule needs q = Omega(sqrt(n)/(T log^2(k/eps) eps^2))";
    run;
  }
