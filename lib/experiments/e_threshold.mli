(** Experiment T3-threshold-T — Theorem 1.3.

    Fix n, k, ε and sweep the referee's reject-threshold T from 1 (the
    AND rule) towards k/2 (majority): the measured critical q falls
    roughly like 1/T before saturating at the T1 level, matching
    Theorem 1.3's Ω(√n/(T·log²(k/ε)·ε²)) shape — small thresholds force
    players into the rare-alarm regime and cost samples. *)

val experiment : Exp.t
