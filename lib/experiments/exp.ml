type t = {
  id : string;
  title : string;
  statement : string;
  run : Config.t -> Table.t list;
}
