(** The experiment interface: an id, the statement of the paper it
    regenerates, and a run function from configuration to result
    tables. *)

type t = {
  id : string;  (** stable identifier, e.g. "T1-any-rule" *)
  title : string;
  statement : string;  (** the theorem/lemma being reproduced *)
  run : Config.t -> Table.t list;
}
