let all =
  [
    E_any_rule.experiment;
    E_and_rule.experiment;
    E_threshold.experiment;
    E_learning.experiment;
    E_centralized.experiment;
    E_rbit.experiment;
    E_async.experiment;
    E_lemma_fourier.experiment;
    E_moments.experiment;
    E_kkl.experiment;
    E_separation.experiment;
    E_combinatorics.experiment;
    E_and_impossible.experiment;
    E_single_sample.experiment;
    E_divergence.experiment;
    E_local_model.experiment;
    E_identity.experiment;
    E_lemma44.experiment;
    E_ablation.experiment;
    E_all_rules.experiment;
    E_eps_dependence.experiment;
    E_exact_power.experiment;
    E_gossip.experiment;
    E_robustness.experiment;
    E_crash.experiment;
    E_byzantine.experiment;
    E_rbit_divergence.experiment;
    E_open_problem.experiment;
    E_stream.experiment;
    E_graph_search.experiment;
  ]

let find id = List.find_opt (fun e -> e.Exp.id = id) all

let ids () = List.map (fun e -> e.Exp.id) all
