(** The experiment registry: every table of EXPERIMENTS.md, by id. *)

val all : Exp.t list
(** All experiments, in the order of the per-experiment index of
    DESIGN.md. *)

val find : string -> Exp.t option
(** Lookup by id (case-sensitive, e.g. "T1-any-rule"). *)

val ids : unit -> string list
