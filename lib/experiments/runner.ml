(* Experiments render into per-experiment buffers so that [run_all] can
   execute the registry concurrently (one engine task per experiment)
   while emitting output in registry order, byte-identical to the
   sequential run.

   Telemetry is strictly out of band: spans go to the Dut_obs sink (a
   file), counters to per-domain tables, and neither touches the
   channel — stdout with tracing enabled is byte-identical to stdout
   without. *)

type report = {
  wall_seconds : float;
  cpu_seconds : float;
  experiments : (string * float) list;
}

let render_to_buffer ?(csv = false) ~timings cfg exp =
  Dut_obs.Span.with_ ~name:"experiment"
    ~attrs:
      [
        ("id", Dut_obs.Json.Str exp.Exp.id);
        ("profile", Dut_obs.Json.Str (Config.profile_to_string cfg.Config.profile));
      ]
  @@ fun () ->
  let buf = Buffer.create 4096 in
  Printf.bprintf buf "# %s — %s\n# %s\n# profile=%s seed=%d\n" exp.Exp.id
    exp.title exp.statement
    (Config.profile_to_string cfg.Config.profile)
    cfg.seed;
  let started = Unix.gettimeofday () in
  let tables =
    Dut_obs.Span.with_ ~name:"experiment.run"
      ~attrs:[ ("id", Dut_obs.Json.Str exp.Exp.id) ]
      (fun () -> exp.run cfg)
  in
  List.iteri
    (fun i t ->
      Dut_obs.Span.with_ ~name:"table"
        ~attrs:
          [
            ("title", Dut_obs.Json.Str t.Table.title);
            ("index", Dut_obs.Json.int i);
            ("rows", Dut_obs.Json.int (List.length t.Table.rows));
          ]
        (fun () ->
          Buffer.add_string buf (if csv then Table.to_csv t else Table.render t);
          Buffer.add_char buf '\n'))
    tables;
  let elapsed = Unix.gettimeofday () -. started in
  if timings then Printf.bprintf buf "# elapsed: %.1fs\n\n" elapsed
  else Buffer.add_char buf '\n';
  (buf, elapsed)

let run_to_channel ?csv ?(timings = true) cfg exp channel =
  Dut_engine.Parallel.set_default_jobs cfg.Config.jobs;
  let buf, elapsed = render_to_buffer ?csv ~timings cfg exp in
  Buffer.output_buffer channel buf;
  flush channel;
  elapsed

let run_all_to_channel ?csv ?(timings = true) cfg channel =
  (* Make Monte-Carlo loops inside a single experiment use cfg.jobs when
     experiments themselves run one at a time (jobs taken by the map
     below otherwise: nested calls fall back to inline execution). *)
  Dut_engine.Parallel.set_default_jobs cfg.Config.jobs;
  let started = Unix.gettimeofday () in
  let exps = Array.of_list Registry.all in
  let rendered =
    Dut_obs.Span.with_ ~name:"run-all"
      ~attrs:[ ("jobs", Dut_obs.Json.int cfg.Config.jobs) ]
      (fun () ->
        Dut_engine.Parallel.map ~jobs:cfg.Config.jobs
          (fun exp -> render_to_buffer ?csv ~timings cfg exp)
          exps)
  in
  Array.iter (fun (buf, _) -> Buffer.output_buffer channel buf) rendered;
  (* Concurrent experiments overlap, so the per-experiment elapsed
     times sum to busy (CPU-ish) time, not to the run's duration:
     report both rather than passing the sum off as a total. *)
  let wall = Unix.gettimeofday () -. started in
  let cpu = Array.fold_left (fun t (_, e) -> t +. e) 0. rendered in
  if timings then
    Printf.fprintf channel "# total: %.1fs wall, %.1fs summed-cpu (jobs=%d)\n"
      wall cpu cfg.Config.jobs;
  flush channel;
  {
    wall_seconds = wall;
    cpu_seconds = cpu;
    experiments =
      Array.to_list
        (Array.mapi (fun i (_, e) -> (exps.(i).Exp.id, e)) rendered);
  }
