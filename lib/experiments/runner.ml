(* Experiments render into per-experiment buffers so that [run_all] can
   execute the registry concurrently (one engine task per experiment)
   while emitting output in registry order, byte-identical to the
   sequential run. *)

let render_to_buffer ?(csv = false) ~timings cfg exp =
  let buf = Buffer.create 4096 in
  Printf.bprintf buf "# %s — %s\n# %s\n# profile=%s seed=%d\n" exp.Exp.id
    exp.title exp.statement
    (Config.profile_to_string cfg.Config.profile)
    cfg.seed;
  let started = Unix.gettimeofday () in
  let tables = exp.run cfg in
  List.iter
    (fun t ->
      Buffer.add_string buf (if csv then Table.to_csv t else Table.render t);
      Buffer.add_char buf '\n')
    tables;
  let elapsed = Unix.gettimeofday () -. started in
  if timings then Printf.bprintf buf "# elapsed: %.1fs\n\n" elapsed
  else Buffer.add_char buf '\n';
  (buf, elapsed)

let run_to_channel ?csv ?(timings = true) cfg exp channel =
  Dut_engine.Parallel.set_default_jobs cfg.Config.jobs;
  let buf, elapsed = render_to_buffer ?csv ~timings cfg exp in
  Buffer.output_buffer channel buf;
  flush channel;
  elapsed

let run_all_to_channel ?csv ?(timings = true) cfg channel =
  (* Make Monte-Carlo loops inside a single experiment use cfg.jobs when
     experiments themselves run one at a time (jobs taken by the map
     below otherwise: nested calls fall back to inline execution). *)
  Dut_engine.Parallel.set_default_jobs cfg.Config.jobs;
  let exps = Array.of_list Registry.all in
  let rendered =
    Dut_engine.Parallel.map ~jobs:cfg.Config.jobs
      (fun exp -> render_to_buffer ?csv ~timings cfg exp)
      exps
  in
  Array.iter (fun (buf, _) -> Buffer.output_buffer channel buf) rendered;
  flush channel;
  Array.fold_left (fun total (_, elapsed) -> total +. elapsed) 0. rendered
