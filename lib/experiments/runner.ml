(* Experiments render into per-experiment buffers so that [run_all] can
   execute the registry concurrently (one engine task per experiment)
   while emitting output in registry order, byte-identical to the
   sequential run.

   Failure is isolated at the same boundary: an experiment that raises
   renders an `# ERROR` block into its own buffer and is reported as a
   failed outcome — the other experiments run, print and checkpoint
   exactly as in a clean run (each derives its randomness independently
   from the config seed, so a neighbour's crash cannot shift a single
   stream).

   Telemetry is strictly out of band: spans go to the Dut_obs sink (a
   file), counters to per-domain tables, and neither touches the
   channel — stdout with tracing enabled is byte-identical to stdout
   without. Timings use the monotonised Dut_obs.Span.now_ns clock, so
   an NTP step can never produce a negative or wildly wrong elapsed
   line. *)

type status = Ok | Failed of { exn : string; backtrace : string } | Interrupted

type outcome = { id : string; seconds : float; status : status; resumed : bool }

type report = {
  wall_seconds : float;
  cpu_seconds : float;
  experiments : outcome list;
}

let failed o = match o.status with Failed _ -> true | _ -> false

(* -- Graceful interruption ---------------------------------------------- *)

let interrupt_flag = Atomic.make false

let interrupted () = Atomic.get interrupt_flag

let request_interrupt () = Atomic.set interrupt_flag true

let with_sigint_guard f =
  Atomic.set interrupt_flag false;
  (* First signal: note it and let in-flight experiments drain (the
     run-all loop skips everything not yet started). Second signal:
     the user means it — die immediately with the conventional
     128+SIGINT code. *)
  let handle _ = if Atomic.exchange interrupt_flag true then Stdlib.exit 130 in
  let install s =
    match Sys.signal s (Sys.Signal_handle handle) with
    | prev -> Some (s, prev)
    | exception (Invalid_argument _ | Sys_error _) -> None
  in
  let saved = List.filter_map install [ Sys.sigint; Sys.sigterm ] in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set interrupt_flag false;
      List.iter
        (fun (s, prev) ->
          try Sys.set_signal s prev with Invalid_argument _ | Sys_error _ -> ())
        saved)
    f

(* -- Rendering ----------------------------------------------------------- *)

let seconds_since start_ns = float_of_int (Dut_obs.Span.now_ns () - start_ns) /. 1e9

(* Test-only fault hook: DUT_FAIL_EXPERIMENT=<id> makes exactly that
   experiment raise at the top of its run, exercising the whole
   isolation / non-zero-exit / resume path from the outside. *)
let fault_injected id =
  match Sys.getenv_opt "DUT_FAIL_EXPERIMENT" with
  | Some v -> v = id
  | None -> false

let describe_exn = function
  | Dut_engine.Deadline.Exceeded ->
      "timeout: per-experiment --timeout-s budget exhausted"
  | e -> Printexc.to_string e

let add_header buf cfg (exp : Exp.t) =
  Printf.bprintf buf "# %s — %s\n# %s\n# profile=%s seed=%d\n" exp.Exp.id
    exp.title exp.statement
    (Config.profile_to_string cfg.Config.profile)
    cfg.seed

(* The `# ERROR` block an isolated failure renders in the experiment's
   slot. The elapsed figure is gated on ~timings like every other
   wall-clock line, so --no-timings output stays byte-reproducible even
   for failing runs. *)
let add_error_block buf ~timings ~elapsed (exp : Exp.t) ~exn_text ~backtrace =
  if timings then
    Printf.bprintf buf "# ERROR in %s after %.1fs\n" exp.Exp.id elapsed
  else Printf.bprintf buf "# ERROR in %s\n" exp.Exp.id;
  Printf.bprintf buf "# exception: %s\n" exn_text;
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' backtrace)
  in
  if lines = [] then
    Buffer.add_string buf "#   (no backtrace recorded — run with OCAMLRUNPARAM=b)\n"
  else List.iter (fun l -> Printf.bprintf buf "#   %s\n" l) lines;
  Buffer.add_char buf '\n'

let render_to_buffer ?(csv = false) ~timings ?timeout_s cfg exp =
  Dut_obs.Span.with_ ~name:"experiment"
    ~attrs:
      [
        ("id", Dut_obs.Json.Str exp.Exp.id);
        ("profile", Dut_obs.Json.Str (Config.profile_to_string cfg.Config.profile));
      ]
  @@ fun () ->
  let buf = Buffer.create 4096 in
  add_header buf cfg exp;
  let started = Dut_obs.Span.now_ns () in
  let result =
    match
      Dut_obs.Span.with_ ~name:"experiment.run"
        ~attrs:[ ("id", Dut_obs.Json.Str exp.Exp.id) ]
        (fun () ->
          Dut_engine.Deadline.with_timeout ?seconds:timeout_s (fun () ->
              if fault_injected exp.Exp.id then
                failwith
                  ("injected failure (DUT_FAIL_EXPERIMENT=" ^ exp.Exp.id ^ ")");
              exp.run cfg))
    with
    | tables -> Stdlib.Ok tables
    | exception e -> Stdlib.Error (e, Printexc.get_raw_backtrace ())
  in
  let elapsed = seconds_since started in
  match result with
  | Stdlib.Ok tables ->
      List.iteri
        (fun i t ->
          Dut_obs.Span.with_ ~name:"table"
            ~attrs:
              [
                ("title", Dut_obs.Json.Str t.Table.title);
                ("index", Dut_obs.Json.int i);
                ("rows", Dut_obs.Json.int (List.length t.Table.rows));
              ]
            (fun () ->
              Buffer.add_string buf (if csv then Table.to_csv t else Table.render t);
              Buffer.add_char buf '\n'))
        tables;
      if timings then Printf.bprintf buf "# elapsed: %.1fs\n\n" elapsed
      else Buffer.add_char buf '\n';
      (buf, elapsed, Ok)
  | Stdlib.Error (e, bt) ->
      let exn_text = describe_exn e in
      add_error_block buf ~timings ~elapsed exp ~exn_text
        ~backtrace:(Printexc.raw_backtrace_to_string bt);
      (buf, elapsed, Failed { exn = exn_text; backtrace = Printexc.raw_backtrace_to_string bt })

(* The slot of an experiment the interrupt handler kept from starting:
   header plus a marker, so the partial output still reads section by
   section and says how to finish the run. *)
let render_interrupted cfg exp =
  let buf = Buffer.create 256 in
  add_header buf cfg exp;
  Buffer.add_string buf
    "# INTERRUPTED — not run; finish with `dut run-all --resume`\n\n";
  buf

let run_to_channel ?csv ?(timings = true) ?timeout_s cfg exp channel =
  Dut_engine.Parallel.set_default_jobs cfg.Config.jobs;
  let buf, seconds, status = render_to_buffer ?csv ~timings ?timeout_s cfg exp in
  Buffer.output_buffer channel buf;
  flush channel;
  { id = exp.Exp.id; seconds; status; resumed = false }

let run_all_to_channel ?csv ?(timings = true) ?checkpoint_dir ?(resume = false)
    ?timeout_s ?(experiments = Registry.all) cfg channel =
  (* Make Monte-Carlo loops inside a single experiment use cfg.jobs when
     experiments themselves run one at a time (jobs taken by the map
     below otherwise: nested calls fall back to inline execution). *)
  Dut_engine.Parallel.set_default_jobs cfg.Config.jobs;
  let started = Dut_obs.Span.now_ns () in
  let exps = Array.of_list experiments in
  let key =
    match checkpoint_dir with
    | None -> None
    | Some _ ->
        Some
          (Checkpoint.key_of_config
             ~csv:(Option.value csv ~default:false)
             ~timings cfg)
  in
  (* Resume decisions are made up front, on the submitting domain, so
     the work the pool sees is exactly the missing/failed/stale set. *)
  let cached =
    match (checkpoint_dir, key) with
    | Some dir, Some key when resume ->
        Array.map (fun e -> Checkpoint.load ~dir ~key e.Exp.id) exps
    | _ -> Array.map (fun _ -> None) exps
  in
  let work i =
    let exp = exps.(i) in
    match cached.(i) with
    | Some (bytes, seconds) ->
        let buf = Buffer.create (String.length bytes) in
        Buffer.add_string buf bytes;
        ({ id = exp.Exp.id; seconds; status = Ok; resumed = true }, buf)
    | None ->
        if interrupted () then
          ( { id = exp.Exp.id; seconds = 0.; status = Interrupted; resumed = false },
            render_interrupted cfg exp )
        else begin
          let buf, seconds, status =
            render_to_buffer ?csv ~timings ?timeout_s cfg exp
          in
          (match (checkpoint_dir, key, status) with
          | Some dir, Some key, Ok ->
              Checkpoint.save ~dir ~key ~id:exp.Exp.id ~seconds
                (Buffer.contents buf)
          | _ -> ());
          ({ id = exp.Exp.id; seconds; status; resumed = false }, buf)
        end
  in
  let rendered =
    Dut_obs.Span.with_ ~name:"run-all"
      ~attrs:
        ([ ("jobs", Dut_obs.Json.int cfg.Config.jobs) ]
        @ (if cfg.Config.jobs_requested <> cfg.Config.jobs then
             [ ("jobs_requested", Dut_obs.Json.int cfg.Config.jobs_requested) ]
           else [])
        @ if resume then [ ("resume", Dut_obs.Json.Bool true) ] else [])
      (fun () ->
        Dut_engine.Parallel.map ~jobs:cfg.Config.jobs work
          (Array.init (Array.length exps) Fun.id))
  in
  Array.iter (fun (_, buf) -> Buffer.output_buffer channel buf) rendered;
  (* Concurrent experiments overlap, so the per-experiment elapsed
     times sum to busy (CPU-ish) time, not to the run's duration:
     report both rather than passing the sum off as a total. Replayed
     checkpoints cost no CPU this run and are excluded from the sum. *)
  let wall = seconds_since started in
  let cpu =
    Array.fold_left
      (fun t (o, _) -> if o.resumed then t else t +. o.seconds)
      0. rendered
  in
  if timings then
    Printf.fprintf channel "# total: %.1fs wall, %.1fs summed-cpu (jobs=%d)\n"
      wall cpu cfg.Config.jobs;
  flush channel;
  {
    wall_seconds = wall;
    cpu_seconds = cpu;
    experiments = Array.to_list (Array.map fst rendered);
  }
