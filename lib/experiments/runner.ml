let run_to_channel ?(csv = false) cfg exp channel =
  Printf.fprintf channel "# %s — %s\n# %s\n# profile=%s seed=%d\n%!"
    exp.Exp.id exp.title exp.statement
    (Config.profile_to_string cfg.Config.profile)
    cfg.seed;
  let started = Unix.gettimeofday () in
  let tables = exp.run cfg in
  List.iter
    (fun t ->
      output_string channel (if csv then Table.to_csv t else Table.render t);
      output_char channel '\n')
    tables;
  let elapsed = Unix.gettimeofday () -. started in
  Printf.fprintf channel "# elapsed: %.1fs\n\n%!" elapsed;
  elapsed

let run_all_to_channel ?csv cfg channel =
  List.fold_left
    (fun total exp -> total +. run_to_channel ?csv cfg exp channel)
    0. Registry.all
