(** Shared experiment execution/printing used by the CLI and the bench
    harness.

    Both entry points honour [cfg.jobs] via {!Dut_engine.Parallel}:
    [run_to_channel] parallelises the Monte-Carlo trials inside the
    experiment, [run_all_to_channel] runs whole experiments concurrently
    while buffering per-experiment output, so the bytes written — table
    order and content — are identical for every jobs count. Only the
    ["# elapsed"] timing lines vary run to run; pass [~timings:false] to
    omit them when diffing outputs. *)

val run_to_channel :
  ?csv:bool -> ?timings:bool -> Config.t -> Exp.t -> out_channel -> float
(** Run one experiment, print its header, tables and (unless
    [timings:false]) elapsed time to the channel; returns the elapsed
    seconds. *)

val run_all_to_channel :
  ?csv:bool -> ?timings:bool -> Config.t -> out_channel -> float
(** Run the whole registry, up to [cfg.jobs] experiments concurrently,
    printing in registry order; returns total elapsed seconds (sum of
    per-experiment times, not wall-clock). *)
