(** Shared experiment execution/printing used by the CLI and the bench
    harness.

    Both entry points honour [cfg.jobs] via {!Dut_engine.Parallel}:
    [run_to_channel] parallelises the Monte-Carlo trials inside the
    experiment, [run_all_to_channel] runs whole experiments concurrently
    while buffering per-experiment output, so the bytes written — table
    order and content — are identical for every jobs count. Only the
    ["# elapsed"]/["# total"] timing lines vary run to run; pass
    [~timings:false] to omit them when diffing outputs. All timings are
    taken on the monotonised {!Dut_obs.Span.now_ns} clock, never on the
    raw wall clock.

    {b Failure isolation.} An experiment that raises does not abort the
    run: its slot renders an [# ERROR] block (exception, backtrace, and
    — unless [~timings:false] — elapsed time), the other experiments'
    output is byte-identical to a clean run's, and the failure is
    reported as a {!status} in the returned {!outcome}s so callers can
    exit non-zero. A cooperative [?timeout_s] budget
    ({!Dut_engine.Deadline}) surfaces through the same path.

    {b Checkpoint/resume.} With [?checkpoint_dir], [run_all_to_channel]
    persists each successful experiment's bytes through {!Checkpoint}
    as soon as it completes; with [~resume:true] it replays matching
    checkpoints byte-identically (marked [resumed]) and executes only
    missing, failed or stale ones.

    {b Interruption.} {!with_sigint_guard} converts the first
    SIGINT/SIGTERM into a flag ([a second one force-exits 130]):
    experiments already running complete and print, experiments not yet
    started render an [# INTERRUPTED] marker and report
    {!Interrupted} — so the caller still gets ordered partial output
    and a full report to put in a valid partial manifest.

    Both emit {!Dut_obs} spans — one [experiment] span per experiment
    (with a nested [experiment.run] span around the computation and a
    [table] span per rendered table), and [run_all_to_channel] a
    [run-all] root — when a trace sink is open, and nothing otherwise.
    Telemetry never writes to the channel: output bytes are identical
    with and without tracing. *)

type status =
  | Ok  (** ran to completion (or replayed from a checkpoint) *)
  | Failed of { exn : string; backtrace : string }
      (** raised; rendered as an [# ERROR] block in its slot *)
  | Interrupted  (** never started: SIGINT/SIGTERM arrived first *)

type outcome = {
  id : string;
  seconds : float;
      (** elapsed on the monotonic clock; the checkpointed value when
          [resumed] *)
  status : status;
  resumed : bool;  (** replayed from a checkpoint, not executed *)
}

type report = {
  wall_seconds : float;  (** duration of the whole run *)
  cpu_seconds : float;
      (** per-experiment elapsed summed across concurrent tasks,
          excluding replayed checkpoints; exceeds [wall_seconds] when
          [cfg.jobs > 1] *)
  experiments : outcome list;  (** in registry order *)
}

val failed : outcome -> bool
(** Whether the outcome is a {!Failed}. *)

val run_to_channel :
  ?csv:bool ->
  ?timings:bool ->
  ?timeout_s:float ->
  Config.t ->
  Exp.t ->
  out_channel ->
  outcome
(** Run one experiment, print its header, tables and (unless
    [timings:false]) elapsed time to the channel. A raising experiment
    prints an [# ERROR] block instead of tables and returns a
    {!Failed} outcome rather than raising. *)

val run_all_to_channel :
  ?csv:bool ->
  ?timings:bool ->
  ?checkpoint_dir:string ->
  ?resume:bool ->
  ?timeout_s:float ->
  ?experiments:Exp.t list ->
  Config.t ->
  out_channel ->
  report
(** Run the whole registry, up to [cfg.jobs] experiments concurrently,
    printing in registry order, followed (unless [timings:false]) by a
    ["# total"] line reporting wall-clock and summed-CPU separately.
    [?checkpoint_dir] enables checkpointing (and, with [~resume:true],
    checkpoint replay); [?timeout_s] arms the per-experiment
    watchdog. Never raises on experiment failure — inspect the
    returned outcomes. [?experiments] overrides the registry — the
    failure-path tests drive the full machinery over a small synthetic
    set. *)

(** {2 Interruption} *)

val interrupted : unit -> bool
(** Whether an interrupt has been requested (signal or
    {!request_interrupt}). *)

val request_interrupt : unit -> unit
(** Ask in-progress [run_all_to_channel] calls to stop starting new
    experiments. What the signal handler installed by
    {!with_sigint_guard} calls; exposed for tests and embedders. *)

val with_sigint_guard : (unit -> 'a) -> 'a
(** Run the thunk with SIGINT/SIGTERM converted into
    {!request_interrupt} (first signal graceful, second force-exits
    130). Clears the flag on entry and exit and restores the previous
    signal dispositions; on platforms without these signals it is a
    plain call. *)
