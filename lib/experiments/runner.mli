(** Shared experiment execution/printing used by the CLI and the bench
    harness.

    Both entry points honour [cfg.jobs] via {!Dut_engine.Parallel}:
    [run_to_channel] parallelises the Monte-Carlo trials inside the
    experiment, [run_all_to_channel] runs whole experiments concurrently
    while buffering per-experiment output, so the bytes written — table
    order and content — are identical for every jobs count. Only the
    ["# elapsed"]/["# total"] timing lines vary run to run; pass
    [~timings:false] to omit them when diffing outputs.

    Both emit {!Dut_obs} spans — one [experiment] span per experiment
    (with a nested [experiment.run] span around the computation and a
    [table] span per rendered table), and [run_all_to_channel] a
    [run-all] root — when a trace sink is open, and nothing otherwise.
    Telemetry never writes to the channel: output bytes are identical
    with and without tracing. *)

type report = {
  wall_seconds : float;  (** duration of the whole run *)
  cpu_seconds : float;
      (** per-experiment elapsed summed across concurrent tasks; exceeds
          [wall_seconds] when [cfg.jobs > 1] *)
  experiments : (string * float) list;
      (** [(id, elapsed seconds)] in registry order *)
}

val run_to_channel :
  ?csv:bool -> ?timings:bool -> Config.t -> Exp.t -> out_channel -> float
(** Run one experiment, print its header, tables and (unless
    [timings:false]) elapsed time to the channel; returns the elapsed
    seconds. *)

val run_all_to_channel :
  ?csv:bool -> ?timings:bool -> Config.t -> out_channel -> report
(** Run the whole registry, up to [cfg.jobs] experiments concurrently,
    printing in registry order, followed (unless [timings:false]) by a
    ["# total"] line reporting wall-clock and summed-CPU separately. *)
