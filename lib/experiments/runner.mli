(** Shared experiment execution/printing used by the CLI and the bench
    harness. *)

val run_to_channel :
  ?csv:bool -> Config.t -> Exp.t -> out_channel -> float
(** Run one experiment, print its header, tables and elapsed time to the
    channel; returns the elapsed seconds. *)

val run_all_to_channel : ?csv:bool -> Config.t -> out_channel -> float
(** Run the whole registry in order; returns total elapsed seconds. *)
