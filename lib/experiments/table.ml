type cell = Int of int | Float of float | Str of string | Bool of bool

type t = {
  title : string;
  columns : string list;
  rows : cell list list;
  notes : string list;
}

let make ~title ~columns ?(notes = []) rows =
  let width = List.length columns in
  List.iteri
    (fun i row ->
      if List.length row <> width then
        invalid_arg
          (Printf.sprintf "Table.make(%s): row %d has %d cells, expected %d"
             title i (List.length row) width))
    rows;
  { title; columns; rows; notes }

let trim_float x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.5g" x

let cell_to_string = function
  | Int i -> string_of_int i
  | Float f ->
      (* Non-finite values are rendered as "n/a", the spelling the bench
         JSON standardised on — one vocabulary across tables, CSV and
         machine-readable outputs (JSON itself has no NaN/inf). *)
      if Float.is_nan f || Float.abs f = infinity then "n/a" else trim_float f
  | Str s -> s
  | Bool b -> if b then "yes" else "no"

let render t =
  let header = t.columns in
  let body = List.map (List.map cell_to_string) t.rows in
  let all = header :: body in
  let ncols = List.length header in
  let widths =
    List.init ncols (fun c ->
        List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all)
  in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let rtrim s =
    let len = ref (String.length s) in
    while !len > 0 && s.[!len - 1] = ' ' do
      decr len
    done;
    String.sub s 0 !len
  in
  let render_row row =
    rtrim (String.concat "  " (List.mapi (fun c s -> pad s (List.nth widths c)) row))
  in
  let sep =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf (render_row header ^ "\n");
  Buffer.add_string buf (sep ^ "\n");
  List.iter (fun row -> Buffer.add_string buf (render_row row ^ "\n")) body;
  List.iter (fun note -> Buffer.add_string buf ("  note: " ^ note ^ "\n")) t.notes;
  Buffer.contents buf

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("# " ^ t.title ^ "\n");
  Buffer.add_string buf (String.concat "," (List.map csv_escape t.columns) ^ "\n");
  List.iter
    (fun row ->
      Buffer.add_string buf
        (String.concat "," (List.map (fun c -> csv_escape (cell_to_string c)) row)
        ^ "\n"))
    t.rows;
  List.iter (fun note -> Buffer.add_string buf ("# " ^ note ^ "\n")) t.notes;
  Buffer.contents buf

let get_float t ~row ~col =
  match List.nth_opt t.rows row with
  | None -> invalid_arg "Table.get_float: row out of range"
  | Some r -> (
      match List.nth_opt r col with
      | None -> invalid_arg "Table.get_float: column out of range"
      | Some (Int i) -> float_of_int i
      | Some (Float f) -> f
      | Some (Str _ | Bool _) -> invalid_arg "Table.get_float: non-numeric cell")

let column_floats t ~col =
  List.filter_map
    (fun row ->
      match List.nth_opt row col with
      | Some (Int i) -> Some (float_of_int i)
      | Some (Float f) -> Some f
      | Some (Str _ | Bool _) | None -> None)
    t.rows
  |> Array.of_list
