(** Result tables: the uniform output format of every experiment.

    An experiment produces one or more titled tables; the harness renders
    them column-aligned for the terminal or as CSV. Keeping the cells
    typed (rather than pre-formatted strings) lets tests assert on the
    numbers directly. *)

type cell = Int of int | Float of float | Str of string | Bool of bool

type t = {
  title : string;
  columns : string list;
  rows : cell list list;
  notes : string list;  (** free-form lines printed under the table *)
}

val make : title:string -> columns:string list -> ?notes:string list -> cell list list -> t
(** @raise Invalid_argument if any row's width differs from the header's. *)

val cell_to_string : cell -> string
(** Floats are rendered with up to 4 significant decimals, trimmed;
    non-finite floats (NaN, ±inf) render as ["n/a"] in both the aligned
    and the CSV output, matching the bench JSON's spelling. *)

val render : t -> string
(** Column-aligned plain text, ready for the terminal. *)

val to_csv : t -> string
(** RFC-4180-ish CSV (title and notes as comment lines). *)

val get_float : t -> row:int -> col:int -> float
(** Typed accessor for tests: Int cells are widened to float.

    @raise Invalid_argument on out-of-range indices or a non-numeric
    cell. *)

val column_floats : t -> col:int -> float array
(** All numeric values of one column (skipping non-numeric cells). *)
