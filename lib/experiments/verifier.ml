type verdict = { experiment : string; checks : int; failures : string list }

(* Each checker folds over the rows of one table and returns failure
   descriptions. Columns are addressed by index into the known layout of
   the experiment that produced them; the layouts are pinned by the
   structural tests in test_experiments.ml. *)

let ratio_column ?(tolerance = 1e-9) table ~col ~label =
  let failures = ref [] in
  let checks = ref 0 in
  Array.iteri
    (fun i r ->
      incr checks;
      if r > 1. +. tolerance then
        failures :=
          Printf.sprintf "%s: row %d ratio %.6f > 1" label i r :: !failures)
    (Table.column_floats table ~col);
  (!checks, List.rev !failures)

let error_column ?(limit = 1e-9) table ~col ~label =
  let failures = ref [] in
  let checks = ref 0 in
  Array.iteri
    (fun i e ->
      incr checks;
      if e > limit then
        failures := Printf.sprintf "%s: row %d error %g" label i e :: !failures)
    (Table.column_floats table ~col);
  (!checks, List.rev !failures)

let bool_column table ~col ~label =
  let failures = ref [] in
  let checks = ref 0 in
  List.iteri
    (fun i row ->
      match List.nth_opt row col with
      | Some (Table.Bool b) ->
          incr checks;
          if not b then
            failures := Printf.sprintf "%s: row %d is 'no'" label i :: !failures
      | Some _ | None -> ())
    table.Table.rows;
  (!checks, List.rev !failures)

(* Conditional ratio check: ratio column <= 1 whenever a companion bool
   column ("applies") is true. *)
let conditional_ratio table ~ratio_col ~cond_col ~label =
  let failures = ref [] in
  let checks = ref 0 in
  List.iteri
    (fun i row ->
      match (List.nth_opt row ratio_col, List.nth_opt row cond_col) with
      | Some (Table.Float r), Some (Table.Bool true) ->
          incr checks;
          if r > 1. +. 1e-9 then
            failures :=
              Printf.sprintf "%s: row %d ratio %.6f > 1" label i r :: !failures
      | _, _ -> ())
    table.Table.rows;
  (!checks, List.rev !failures)

let combine parts =
  List.fold_left
    (fun (c, f) (c', f') -> (c + c', f @ f'))
    (0, []) parts

let check_f1 = function
  | [ t ] ->
      combine
        [
          conditional_ratio t ~ratio_col:3 ~cond_col:4 ~label:"Lemma 5.1";
          conditional_ratio t ~ratio_col:6 ~cond_col:7 ~label:"Lemma 4.2 (slack)";
        ]
  | _ -> (0, [ "F1: unexpected table count" ])

let check_f2 = function
  | [ moments; xs ] ->
      combine
        [
          ratio_column moments ~col:6 ~label:"Lemma 5.5";
          ratio_column xs ~col:5 ~label:"Prop 5.2";
        ]
  | _ -> (0, [ "F2: unexpected table count" ])

let check_f3 = function
  | [ t ] -> ratio_column t ~col:6 ~label:"KKL"
  | _ -> (0, [ "F3: unexpected table count" ])

let check_f5 = function
  | [ t ] -> bool_column t ~col:5 ~label:"Lemma 4.4 at C=4"
  | _ -> (0, [ "F5: unexpected table count" ])

let check_t8 = function
  | [ t ] ->
      combine
        [
          error_column t ~col:2 ~label:"Claim 3.1";
          error_column t ~col:3 ~label:"Lemma 4.1";
          error_column t ~col:4 ~label:"interchange";
        ]
  | _ -> (0, [ "T8: unexpected table count" ])

let check_f7 = function
  | [ t ] ->
      (* Data processing: refining the message never loses divergence,
         so every gain-over-1-bit is >= 1. *)
      let failures = ref [] in
      let checks = ref 0 in
      Array.iteri
        (fun i g ->
          incr checks;
          if g < 1. -. 1e-9 then
            failures :=
              Printf.sprintf "F7: row %d gain %.6f < 1 (data processing violated)" i g
              :: !failures)
        (Table.column_floats t ~col:4);
      (!checks, List.rev !failures)
  | _ -> (0, [ "F7: unexpected table count" ])

let check_t11 = function
  | [ t ] ->
      combine
        [
          bool_column t ~col:5 ~label:"KL within budget";
          bool_column t ~col:6 ~label:"Fact 6.3";
        ]
  | _ -> (0, [ "T11: unexpected table count" ])

let checkers =
  [
    ("F1-lemma51", check_f1);
    ("F2-moments", check_f2);
    ("F3-kkl", check_f3);
    ("F5-lemma44", check_f5);
    ("F7-rbit-divergence", check_f7);
    ("T8-combinatorics", check_t8);
    ("T11-divergence", check_t11);
  ]

let checked_ids = List.map fst checkers

let verify_one cfg id =
  match (Registry.find id, List.assoc_opt id checkers) with
  | Some exp, Some checker ->
      let tables = exp.Exp.run cfg in
      let checks, failures = checker tables in
      Some { experiment = id; checks; failures }
  | _, _ -> None

let verify_all cfg = List.filter_map (verify_one cfg) checked_ids

let all_passed verdicts = List.for_all (fun v -> v.failures = []) verdicts
