(** The paper checker: run every {e exact} experiment and assert its
    inequalities programmatically.

    Monte-Carlo experiments (T1–T7, …) produce shapes a human reads;
    the exact experiments (F1/F2/F3/F5, T8, T11) produce inequalities a
    machine can check. This module runs them and turns each table into
    pass/fail verdicts, so `dut verify` can answer "do the paper's
    finite claims hold?" with an exit code. *)

type verdict = { experiment : string; checks : int; failures : string list }

val verify_one : Config.t -> string -> verdict option
(** Run one exact experiment by id and check its invariants; [None] for
    ids without registered checks. *)

val verify_all : Config.t -> verdict list
(** Run every exact experiment with registered checks. *)

val checked_ids : string list
(** The experiments `verify` covers. *)

val all_passed : verdict list -> bool
