let kl_bits p q = Dut_dist.Distance.kl p q

let kl_product ds = List.fold_left ( +. ) 0. ds

let kl_bernoulli ~alpha ~beta = Dut_dist.Distance.kl_bernoulli alpha beta

let chi2_bound ~alpha ~beta = Dut_dist.Distance.chi2_bernoulli_bound alpha beta

let log2 x = log x /. log 2.

let success_divergence_requirement ~delta =
  if delta <= 0. || delta >= 1. then
    invalid_arg "Divergence.success_divergence_requirement: delta out of (0,1)";
  0.1 *. log2 (1. /. delta)

let required_divergence_per_player ~k ~delta =
  if k <= 0 then invalid_arg "Divergence.required_divergence_per_player: k <= 0";
  success_divergence_requirement ~delta /. float_of_int k

let divergence_budget_bound ~q ~n ~eps =
  let qf = float_of_int q and nf = float_of_int n in
  ((20. *. qf *. qf *. (eps ** 4.) /. nf) +. (qf *. eps *. eps /. nf)) /. log 2.

let pinsker_tv_bound ~kl_bits = sqrt (log 2. *. kl_bits /. 2.)
