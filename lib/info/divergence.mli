(** The information-theoretic toolkit of Section 6.

    The lower-bound argument converts a referee's success requirement into
    a KL-divergence budget, splits it across players by additivity
    (Fact 6.2), and bounds each player's share through the χ² bound
    (Fact 6.3). This module implements each step as an executable
    function, in bits (base-2 logs) as in the paper. *)

val kl_bits : Dut_dist.Pmf.t -> Dut_dist.Pmf.t -> float
(** D(P ‖ Q) in bits. Alias of {!Dut_dist.Distance.kl}. *)

val kl_product : float list -> float
(** Additivity (Fact 6.2): the divergence of a product of independent
    coordinates is the sum of coordinate divergences. [kl_product ds]
    simply sums — provided so call sites read like the paper's (9). *)

val kl_bernoulli : alpha:float -> beta:float -> float
(** D(B(α) ‖ B(β)) in bits. *)

val chi2_bound : alpha:float -> beta:float -> float
(** Fact 6.3: (α − β)² / (var(B(β))·ln 2) ≥ D(B(α) ‖ B(β)) for
    α, β ∈ (0,1). *)

val success_divergence_requirement : delta:float -> float
(** The divergence a protocol's message distributions must exhibit to
    succeed with probability 1 − δ: the paper's (1/10)·log(1/δ) threshold
    from the proof of Theorem 6.1 (bits). *)

val required_divergence_per_player : k:int -> delta:float -> float
(** (10): the average player must contribute at least
    log(1/δ) / (10·k) bits. *)

val divergence_budget_bound : q:int -> n:int -> eps:float -> float
(** (12): the most a q-sample player can contribute, by Lemma 4.2 +
    Fact 6.3: (20·q²ε⁴/n + qε²/n) / ln 2. *)

val pinsker_tv_bound : kl_bits:float -> float
(** Pinsker: TV(P,Q) ≤ √(ln 2 · kl_bits / 2). Used by tests to relate the
    divergence measures. *)
