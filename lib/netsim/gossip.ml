let push_sum ~graph ~rng ~values ~rounds =
  let k = Graph.n graph in
  if Array.length values <> k then
    invalid_arg "Gossip.push_sum: one value per node required";
  if rounds < 0 then invalid_arg "Gossip.push_sum: negative rounds";
  let value = Array.copy values in
  let weight = Array.make k 1. in
  let coins = Dut_prng.Rng.split_n rng k in
  for _ = 1 to rounds do
    let next_value = Array.make k 0. in
    let next_weight = Array.make k 0. in
    for v = 0 to k - 1 do
      let half_value = value.(v) /. 2. and half_weight = weight.(v) /. 2. in
      (* Keep half, push half to a uniformly random neighbor (or keep
         everything on an isolated node). *)
      next_value.(v) <- next_value.(v) +. half_value;
      next_weight.(v) <- next_weight.(v) +. half_weight;
      match Graph.neighbors graph v with
      | [] ->
          next_value.(v) <- next_value.(v) +. half_value;
          next_weight.(v) <- next_weight.(v) +. half_weight
      | neighbors ->
          let target =
            List.nth neighbors (Dut_prng.Rng.int coins.(v) (List.length neighbors))
          in
          next_value.(target) <- next_value.(target) +. half_value;
          next_weight.(target) <- next_weight.(target) +. half_weight
    done;
    Array.blit next_value 0 value 0 k;
    Array.blit next_weight 0 weight 0 k
  done;
  Array.init k (fun v -> if weight.(v) > 0. then value.(v) /. weight.(v) else 0.)

let rounds_to_tolerance ~graph ~rng ~values ~tol ~max_rounds =
  let k = Graph.n graph in
  let truth = Array.fold_left ( +. ) 0. values /. float_of_int k in
  let rec search rounds =
    if rounds > max_rounds then None
    else begin
      let estimates = push_sum ~graph ~rng:(Dut_prng.Rng.split rng) ~values ~rounds in
      if Array.for_all (fun e -> Float.abs (e -. truth) <= tol) estimates then
        Some rounds
      else search (rounds + max 1 (rounds / 4))
    end
  in
  search 1

let decentralized_tester ~graph ~n ~eps ~q ~gossip_rounds ~calibration_trials ~rng
    =
  if calibration_trials <= 0 then
    invalid_arg "Gossip.decentralized_tester: trials <= 0";
  let k = Graph.n graph in
  (* Same calibrated cutoff as the tree-based tester, expressed as a
     fraction so each node can compare its local average estimate. *)
  let calibration_rng = Dut_prng.Rng.split rng in
  let null_rejects r =
    let count = ref 0 in
    for _ = 1 to k do
      let samples = Array.init q (fun _ -> Dut_prng.Rng.int r n) in
      if not (Dut_core.Local_stat.vote_midpoint ~n ~q ~eps samples) then incr count
    done;
    !count
  in
  let cutoff_count =
    Dut_protocol.Calibrate.reject_count_cutoff ~trials:calibration_trials
      calibration_rng ~rejects:null_rejects ~level:0.2
  in
  (* Compare strictly-below against the midpoint of cutoff-1 and cutoff,
     so gossip estimates straddling the integer cutoff break the right
     way. *)
  let cutoff_fraction =
    (float_of_int cutoff_count -. 0.5) /. float_of_int k
  in
  {
    Dut_core.Evaluate.name =
      Printf.sprintf "gossip(k=%d,q=%d,r=%d)" k q gossip_rounds;
    accepts =
      (fun rng source ->
        let votes =
          Array.init k (fun _ ->
              let coins = Dut_prng.Rng.split rng in
              let samples = Array.init q (fun _ -> source coins) in
              if Dut_core.Local_stat.vote_midpoint ~n ~q ~eps samples then 0.
              else 1.)
        in
        let estimates =
          push_sum ~graph ~rng:(Dut_prng.Rng.split rng) ~values:votes
            ~rounds:gossip_rounds
        in
        let accepts =
          Array.fold_left
            (fun acc e -> if e < cutoff_fraction then acc + 1 else acc)
            0 estimates
        in
        2 * accepts > k);
  }
