(** Referee-free vote aggregation by push-sum gossip (Kempe–Dobra–
    Gehrke).

    The paper's locality question has two poles: the AND rule (one alarm
    wire, no aggregation) and the global referee. Gossip sits between —
    {e no} referee, no tree, no single point of failure: every node
    repeatedly splits its (value, weight) pair and pushes half to a
    random neighbor; the value/weight ratio at every node converges to
    the network average. Applied to the reject votes, each node learns
    the reject {e fraction} and applies the calibrated cutoff itself, so
    the whole network reaches the referee's verdict without a referee.
    The price is rounds: convergence needs O(mixing time · log(1/tol))
    rounds instead of the tree's 2·height. *)

val push_sum :
  graph:Graph.t ->
  rng:Dut_prng.Rng.t ->
  values:float array ->
  rounds:int ->
  float array
(** [push_sum ~graph ~rng ~values ~rounds] returns each node's estimate
    of the average of [values] after [rounds] synchronous push-sum
    rounds.

    @raise Invalid_argument if the value count differs from the node
    count or rounds < 0. *)

val rounds_to_tolerance :
  graph:Graph.t ->
  rng:Dut_prng.Rng.t ->
  values:float array ->
  tol:float ->
  max_rounds:int ->
  int option
(** The first round count at which {e every} node's estimate is within
    [tol] (absolute) of the true average — measured by re-running, so
    the returned count is a faithful sample of the protocol's behavior
    on this topology. [None] if [max_rounds] doesn't reach it. *)

val decentralized_tester :
  graph:Graph.t ->
  n:int ->
  eps:float ->
  q:int ->
  gossip_rounds:int ->
  calibration_trials:int ->
  rng:Dut_prng.Rng.t ->
  Dut_core.Evaluate.tester
(** The refereeless uniformity tester: midpoint votes, push-sum of the
    votes, every node compares its estimated reject fraction to the
    calibrated cutoff; the tester's verdict is the {e majority} of the
    per-node verdicts (they agree once gossip has mixed). *)
