type t = { n : int; adj : int list array; edges : int }

let check_node t v =
  if v < 0 || v >= t.n then invalid_arg "Graph: node out of range"

let create n edges =
  if n <= 0 then invalid_arg "Graph.create: n must be positive";
  let adj = Array.make n [] in
  let seen = Hashtbl.create (List.length edges) in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Graph.create: endpoint out of range";
      if u = v then invalid_arg "Graph.create: self-loop";
      let key = (min u v, max u v) in
      if Hashtbl.mem seen key then invalid_arg "Graph.create: duplicate edge";
      Hashtbl.add seen key ();
      adj.(u) <- v :: adj.(u);
      adj.(v) <- u :: adj.(v))
    edges;
  Array.iteri (fun i l -> adj.(i) <- List.sort compare l) adj;
  { n; adj; edges = List.length edges }

let n t = t.n

let edge_count t = t.edges

let neighbors t v =
  check_node t v;
  t.adj.(v)

let degree t v = List.length (neighbors t v)

let mem_edge t u v =
  check_node t u;
  check_node t v;
  List.mem v t.adj.(u)

let path n = create n (List.init (n - 1) (fun i -> (i, i + 1)))

let cycle n =
  if n < 3 then invalid_arg "Graph.cycle: need n >= 3";
  create n ((n - 1, 0) :: List.init (n - 1) (fun i -> (i, i + 1)))

let star n = create n (List.init (n - 1) (fun i -> (0, i + 1)))

let complete n =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  create n !edges

let grid rows cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Graph.grid: bad dimensions";
  let id r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (id r c, id r (c + 1)) :: !edges;
      if r + 1 < rows then edges := (id r c, id (r + 1) c) :: !edges
    done
  done;
  create (rows * cols) !edges

let binary_tree n =
  let edges = ref [] in
  for i = 0 to n - 1 do
    if (2 * i) + 1 < n then edges := (i, (2 * i) + 1) :: !edges;
    if (2 * i) + 2 < n then edges := (i, (2 * i) + 2) :: !edges
  done;
  create n !edges

let random_connected rng ~n ~extra_edges =
  if n <= 0 then invalid_arg "Graph.random_connected: n must be positive";
  (* Random attachment tree guarantees connectivity. *)
  let edges = ref [] in
  let seen = Hashtbl.create (n + extra_edges) in
  let add u v =
    let key = (min u v, max u v) in
    if u <> v && not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      edges := (u, v) :: !edges;
      true
    end
    else false
  in
  for v = 1 to n - 1 do
    ignore (add v (Dut_prng.Rng.int rng v))
  done;
  let added = ref 0 in
  let attempts = ref 0 in
  let max_extra = (n * (n - 1) / 2) - (n - 1) in
  let target = min extra_edges max_extra in
  while !added < target && !attempts < 100 * (target + 1) do
    incr attempts;
    let u = Dut_prng.Rng.int rng n and v = Dut_prng.Rng.int rng n in
    if add u v then incr added
  done;
  create n !edges

let bfs t ~root =
  check_node t root;
  let dist = Array.make t.n max_int in
  let parent = Array.make t.n (-1) in
  let queue = Queue.create () in
  dist.(root) <- 0;
  Queue.add root queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun v ->
        if dist.(v) = max_int then begin
          dist.(v) <- dist.(u) + 1;
          parent.(v) <- u;
          Queue.add v queue
        end)
      t.adj.(u)
  done;
  (dist, parent)

let is_connected t =
  let dist, _ = bfs t ~root:0 in
  Array.for_all (fun d -> d < max_int) dist

let eccentricity t v =
  let dist, _ = bfs t ~root:v in
  Array.fold_left
    (fun acc d ->
      if d = max_int then invalid_arg "Graph.eccentricity: disconnected graph"
      else max acc d)
    0 dist

let diameter t =
  let best = ref 0 in
  for v = 0 to t.n - 1 do
    best := max !best (eccentricity t v)
  done;
  !best
