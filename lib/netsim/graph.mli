(** Undirected graphs for the LOCAL-model experiments.

    The paper's reference [7] reduces uniformity testing in the LOCAL
    network model to the simultaneous-message model: sample locally,
    aggregate votes over a spanning tree, broadcast the verdict. The
    aggregation cost is a function of the topology only, so this module
    provides the topologies the T13 experiment sweeps, plus the BFS
    machinery the reduction needs. Nodes are integers 0 .. n−1. *)

type t

val create : int -> (int * int) list -> t
(** [create n edges] builds a graph on [n] nodes. Self-loops and
    duplicate edges are rejected.

    @raise Invalid_argument if [n <= 0], an endpoint is out of range, an
    edge is a self-loop, or an edge repeats. *)

val n : t -> int
(** Number of nodes. *)

val edge_count : t -> int

val neighbors : t -> int -> int list
(** Adjacent nodes, ascending.

    @raise Invalid_argument if the node is out of range. *)

val degree : t -> int -> int

val mem_edge : t -> int -> int -> bool

(* Standard topologies. All require n >= 1 and raise Invalid_argument
   otherwise. *)

val path : int -> t
(** 0 − 1 − 2 − … − (n−1): diameter n−1, the worst case for
    aggregation. *)

val cycle : int -> t
(** A ring (needs n ≥ 3). *)

val star : int -> t
(** Node 0 adjacent to all others: diameter 2. *)

val complete : int -> t
(** Diameter 1, the simultaneous model's implicit topology. *)

val grid : int -> int -> t
(** [grid rows cols]: the rows×cols mesh. *)

val binary_tree : int -> t
(** The complete binary tree shape on n nodes (node i's children are
    2i+1, 2i+2): depth ⌊lg n⌋. *)

val random_connected : Dut_prng.Rng.t -> n:int -> extra_edges:int -> t
(** A random connected graph: a uniform random spanning tree (random
    attachment) plus [extra_edges] additional random non-duplicate
    edges. *)

val bfs : t -> root:int -> int array * int array
(** [bfs g ~root] is [(dist, parent)]: hop distances from the root
    ([max_int] for unreachable nodes) and BFS parents ([-1] for the root
    and unreachable nodes). *)

val is_connected : t -> bool

val eccentricity : t -> int -> int
(** Largest finite BFS distance from a node.

    @raise Invalid_argument on a disconnected graph. *)

val diameter : t -> int
(** Max eccentricity (exact, O(n·(n+m))).

    @raise Invalid_argument on a disconnected graph. *)
