type t = {
  graph : Graph.t;
  tree : Span_tree.t;
  n : int;
  eps : float;
  q : int;
  root_cutoff : int;
}

type node_state = {
  reject : bool;  (** this node's own vote *)
  pending : int;  (** children yet to report *)
  subtotal : int;  (** reject count accumulated from reported children *)
  sent_up : bool;
  verdict : bool option;
}

type message = Count of int | Verdict of bool

let make ~graph ~n ~eps ~q ~calibration_trials ~rng =
  if n <= 0 || q < 0 then invalid_arg "Local_tester.make: bad sizes";
  if eps <= 0. || eps >= 1. then invalid_arg "Local_tester.make: eps out of (0,1)";
  if calibration_trials <= 0 then invalid_arg "Local_tester.make: trials <= 0";
  let tree = Span_tree.of_graph graph ~root:0 in
  let k = Graph.n graph in
  (* Root cutoff: same calibration as the simultaneous majority tester —
     the reject-count distribution of k iid midpoint votes under the
     uniform null (the topology doesn't change the votes, only their
     transport). *)
  let calibration_rng = Dut_prng.Rng.split rng in
  let null_rejects r =
    let count = ref 0 in
    for _ = 1 to k do
      let samples = Array.init q (fun _ -> Dut_prng.Rng.int r n) in
      if not (Dut_core.Local_stat.vote_midpoint ~n ~q ~eps samples) then incr count
    done;
    !count
  in
  let root_cutoff =
    Dut_protocol.Calibrate.reject_count_cutoff ~trials:calibration_trials
      calibration_rng ~rejects:null_rejects ~level:0.2
  in
  { graph; tree; n; eps; q; root_cutoff }

type result = {
  accept : bool;
  rounds : int;
  messages : int;
  max_message_bits : int;
  local_time : int;
  all_agree : bool;
}

let bits_needed v =
  let rec go b x = if x = 0 then max b 1 else go (b + 1) (x lsr 1) in
  go 0 v

let height t = t.tree.Span_tree.height

let run t rng source =
  let tree = t.tree in
  let rounds = 2 * tree.Span_tree.height in
  let max_bits = ref 0 in
  let note_message = function
    | Count c -> max_bits := max !max_bits (bits_needed c)
    | Verdict _ -> max_bits := max !max_bits 1
  in
  let raw_step ~node state inbox =
          (* Absorb incoming reports and verdicts. *)
          let state =
            List.fold_left
              (fun st msg ->
                match msg with
                | Count c ->
                    { st with pending = st.pending - 1; subtotal = st.subtotal + c }
                | Verdict v -> { st with verdict = Some v })
              state inbox
          in
          let own = if state.reject then 1 else 0 in
          let is_root = tree.Span_tree.parent.(node) < 0 in
          (* Leaf/internal node with all children reported: send up once. *)
          if (not is_root) && state.pending = 0 && not state.sent_up then
            ( { state with sent_up = true },
              [ (tree.Span_tree.parent.(node), Count (state.subtotal + own)) ] )
          else if is_root && state.pending = 0 && state.verdict = None then begin
            (* Root decides and starts the broadcast. *)
            let total = state.subtotal + own in
            let verdict = total < t.root_cutoff in
            ( { state with verdict = Some verdict },
              List.map
                (fun c -> (c, Verdict verdict))
                tree.Span_tree.children.(node) )
          end
          else
            (* Forward a freshly learned verdict to children. *)
            match (state.verdict, inbox) with
            | Some v, _ :: _
              when List.exists (function Verdict _ -> true | Count _ -> false) inbox
              ->
                ( state,
                  List.map (fun c -> (c, Verdict v)) tree.Span_tree.children.(node)
                )
            | _, _ -> (state, [])
  in
  let logic =
    {
      Sync_net.init =
        (fun node coins ->
          let samples = Array.init t.q (fun _ -> source coins) in
          {
            reject =
              not
                (Dut_core.Local_stat.vote_midpoint ~n:t.n ~q:t.q ~eps:t.eps
                   samples);
            pending = List.length tree.Span_tree.children.(node);
            subtotal = 0;
            sent_up = false;
            verdict = None;
          });
      step =
        (fun ~round:_ ~node _coins state inbox ->
          let state, outbox = raw_step ~node state inbox in
          List.iter (fun (_, m) -> note_message m) outbox;
          (state, outbox));
    }
  in
  Sync_net.reset_counters ();
  let states = Sync_net.run ~graph:t.graph ~rng ~rounds:(rounds + 1) ~logic in
  let root_verdict =
    match states.(tree.Span_tree.root).verdict with
    | Some v -> v
    | None -> invalid_arg "Local_tester.run: root did not decide (internal error)"
  in
  let all_agree =
    Array.for_all (fun st -> st.verdict = Some root_verdict) states
  in
  {
    accept = root_verdict;
    rounds = rounds + 1;
    messages = Sync_net.messages_sent ();
    max_message_bits = !max_bits;
    local_time = t.q + rounds + 1;
    all_agree;
  }

let tester ~graph ~n ~eps ~q ~calibration_trials ~rng =
  let t = make ~graph ~n ~eps ~q ~calibration_trials ~rng in
  {
    Dut_core.Evaluate.name =
      Printf.sprintf "local(k=%d,h=%d,q=%d)" (Graph.n graph) (height t) q;
    accepts = (fun rng source -> (run t rng source).accept);
  }
