(** Uniformity testing in the LOCAL network model, by the reduction of
    the paper's reference [7] (and priced by Section 6.2).

    Every node of a connected graph draws q samples locally and computes
    a one-bit vote (midpoint collision cutoff). The votes are then
    aggregated over a BFS spanning tree by convergecast — each node
    forwards its subtree's reject count to its parent — the root applies
    a cutoff calibrated against the uniform null, and broadcasts the
    verdict back down. The LOCAL time is

      total = q (sampling at unit rate) + 2·height (aggregation),

    so on low-diameter topologies the simultaneous-model sample bounds
    (Theorems 1.1–1.3) dominate the cost, and on a path the aggregation
    term takes over — exactly the trade the T13 experiment tabulates.
    The message-passing itself runs on the {!Sync_net} simulator, so the
    round and message counts are measured, not assumed. *)

type t

val make :
  graph:Graph.t ->
  n:int ->
  eps:float ->
  q:int ->
  calibration_trials:int ->
  rng:Dut_prng.Rng.t ->
  t
(** Build the tester: BFS tree from node 0, root cutoff calibrated on
    simulated uniform vote rounds at false-alarm level 0.2.

    @raise Invalid_argument on a disconnected graph, bad sizes, or eps
    outside (0,1). *)

type result = {
  accept : bool;  (** the verdict every node ends up holding *)
  rounds : int;  (** communication rounds executed (2·height) *)
  messages : int;  (** messages delivered during the execution *)
  max_message_bits : int;
      (** largest payload sent: ≤ ⌈lg(k+1)⌉ (a subtree reject count), so
          the protocol also runs unchanged in CONGEST(log n) — the other
          model [7] studied *)
  local_time : int;  (** q + rounds: the Section 6.2 cost *)
  all_agree : bool;  (** did the broadcast reach every node? *)
}

val run : t -> Dut_prng.Rng.t -> Dut_protocol.Network.source -> result
(** One full execution: sample, convergecast, decide, broadcast. *)

val tester :
  graph:Graph.t ->
  n:int ->
  eps:float ->
  q:int ->
  calibration_trials:int ->
  rng:Dut_prng.Rng.t ->
  Dut_core.Evaluate.tester
(** Package for the critical-q search (verdict only). *)

val height : t -> int
(** The spanning tree height (aggregation rounds each way). *)
