type t = {
  root : int;
  parent : int array;
  children : int list array;
  depth : int array;
  height : int;
}

let of_graph g ~root =
  let dist, parent = Graph.bfs g ~root in
  if Array.exists (fun d -> d = max_int) dist then
    invalid_arg "Span_tree.of_graph: disconnected graph";
  let k = Graph.n g in
  let children = Array.make k [] in
  for v = 0 to k - 1 do
    if parent.(v) >= 0 then children.(parent.(v)) <- v :: children.(parent.(v))
  done;
  Array.iteri (fun i l -> children.(i) <- List.sort compare l) children;
  { root; parent; children; depth = dist; height = Array.fold_left max 0 dist }

let subtree_sizes t =
  let k = Array.length t.parent in
  let sizes = Array.make k 1 in
  (* Process nodes by decreasing depth: children before parents. *)
  let order = Array.init k Fun.id in
  Array.sort (fun a b -> compare t.depth.(b) t.depth.(a)) order;
  Array.iter
    (fun v -> if t.parent.(v) >= 0 then sizes.(t.parent.(v)) <- sizes.(t.parent.(v)) + sizes.(v))
    order;
  sizes

let rec is_ancestor t a v =
  if v = a then true
  else if t.parent.(v) < 0 then false
  else is_ancestor t a t.parent.(v)
