(** Rooted BFS spanning trees: the aggregation skeleton of the
    LOCAL-model tester. *)

type t = {
  root : int;
  parent : int array;  (** -1 for the root *)
  children : int list array;
  depth : int array;
  height : int;  (** max depth — the convergecast round count *)
}

val of_graph : Graph.t -> root:int -> t
(** BFS spanning tree.

    @raise Invalid_argument if the graph is disconnected. *)

val subtree_sizes : t -> int array
(** Number of nodes in each node's subtree (itself included). *)

val is_ancestor : t -> int -> int -> bool
(** [is_ancestor t a v] — is [a] on the root path of [v] (reflexive)? *)
