type 'msg outbox = (int * 'msg) list

type ('state, 'msg) node_logic = {
  init : int -> Dut_prng.Rng.t -> 'state;
  step :
    round:int ->
    node:int ->
    Dut_prng.Rng.t ->
    'state ->
    'msg list ->
    'state * 'msg outbox;
}

let message_counter = ref 0

let messages_sent () = !message_counter

let reset_counters () = message_counter := 0

let run ~graph ~rng ~rounds ~logic =
  if rounds < 0 then invalid_arg "Sync_net.run: negative rounds";
  let k = Graph.n graph in
  let coins = Dut_prng.Rng.split_n rng k in
  let states = Array.init k (fun v -> logic.init v coins.(v)) in
  let inboxes = Array.make k [] in
  for round = 0 to rounds - 1 do
    let next_inboxes = Array.make k [] in
    for v = 0 to k - 1 do
      let state, outbox =
        logic.step ~round ~node:v coins.(v) states.(v) (List.rev inboxes.(v))
      in
      states.(v) <- state;
      List.iter
        (fun (dst, msg) ->
          if not (Graph.mem_edge graph v dst) then
            invalid_arg
              (Printf.sprintf "Sync_net.run: node %d sent to non-neighbor %d" v dst);
          incr message_counter;
          next_inboxes.(dst) <- msg :: next_inboxes.(dst))
        outbox
    done;
    Array.blit next_inboxes 0 inboxes 0 k
  done;
  states
