(** A synchronous message-passing simulator (the LOCAL model).

    Computation proceeds in lock-step rounds. In each round every node
    reads the messages delivered to it (sent in the previous round),
    updates its state, and emits messages to neighbors; messages to
    non-neighbors are rejected. This is the standard LOCAL model —
    unbounded message size, synchronous rounds — which is what [7]
    reduces to the simultaneous model and Section 6.2 prices in
    sampling-rate terms. *)

type 'msg outbox = (int * 'msg) list
(** Messages to send this round, as (neighbor, payload) pairs. *)

type ('state, 'msg) node_logic = {
  init : int -> Dut_prng.Rng.t -> 'state;
      (** [init node coins] — state before round 0; [coins] is the
          node's private stream for the whole execution. *)
  step :
    round:int ->
    node:int ->
    Dut_prng.Rng.t ->
    'state ->
    'msg list ->
    'state * 'msg outbox;
      (** one synchronous round: inbox is every message addressed to
          this node in the previous round (sender order unspecified). *)
}

val run :
  graph:Graph.t ->
  rng:Dut_prng.Rng.t ->
  rounds:int ->
  logic:('state, 'msg) node_logic ->
  'state array
(** Execute [rounds] rounds and return the final states. Each node's
    private stream is split deterministically from [rng], so executions
    are reproducible.

    @raise Invalid_argument if [rounds < 0] or a node addresses a
    non-neighbor. *)

val messages_sent : unit -> int
(** Total messages delivered by [run] calls since the last
    {!reset_counters} — a crude global cost meter for experiments. *)

val reset_counters : unit -> unit
