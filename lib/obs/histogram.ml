(* HDR-style log2 histogram over non-negative integers.

   Values 0..15 land in exact unit buckets. Every larger value lands in
   one of 16 sub-buckets of its octave [2^m, 2^(m+1)): the sub-bucket
   index is the 4 bits below the leading bit, so relative resolution is
   bounded by 1/16 everywhere. The bucket array is a plain dense
   [int array]; merge is pointwise sum, which is exactly associative
   and commutative — the property the per-domain Metrics tables rely on
   to make snapshots independent of the merge order at pool join.

   59 octaves cover every OCaml native int (up to 2^62), so [record]
   never needs a range check beyond clamping negatives to 0. *)

let sub_bits = 4
let subs = 16
let octaves = 59
let buckets = subs + (octaves * subs)

type t = { counts : int array }

let create () = { counts = Array.make buckets 0 }
let copy t = { counts = Array.copy t.counts }
let clear t = Array.fill t.counts 0 buckets 0

(* Index of the highest set bit; [v >= 1]. *)
let msb v =
  let v = ref v and r = ref 0 in
  if !v lsr 32 <> 0 then (
    r := !r + 32;
    v := !v lsr 32);
  if !v lsr 16 <> 0 then (
    r := !r + 16;
    v := !v lsr 16);
  if !v lsr 8 <> 0 then (
    r := !r + 8;
    v := !v lsr 8);
  if !v lsr 4 <> 0 then (
    r := !r + 4;
    v := !v lsr 4);
  if !v lsr 2 <> 0 then (
    r := !r + 2;
    v := !v lsr 2);
  if !v lsr 1 <> 0 then incr r;
  !r

let bucket_of v =
  let v = if v < 0 then 0 else v in
  if v < subs then v
  else
    (* Octave 1 is [16, 32): [m - sub_bits] is 1-based exactly like the
       octave recovered by [bucket_lo]'s [1 + (b - subs) / subs]. *)
    let m = msb v in
    let octave = m - sub_bits + 1 in
    let sub = (v lsr (m - sub_bits)) land (subs - 1) in
    subs + ((octave - 1) * subs) + sub

let bucket_lo b =
  if b < 0 then invalid_arg "Histogram.bucket_lo";
  if b < subs then b
  else
    let octave = 1 + ((b - subs) / subs) and sub = (b - subs) mod subs in
    (subs + sub) lsl (octave - 1)

let bucket_hi b =
  if b < subs then b
  else
    let octave = 1 + ((b - subs) / subs) in
    bucket_lo b + (1 lsl (octave - 1)) - 1

let record t v =
  let b = bucket_of v in
  t.counts.(b) <- t.counts.(b) + 1

let count t = Array.fold_left ( + ) 0 t.counts
let is_empty t = count t = 0

let merge_into ~into src =
  for b = 0 to buckets - 1 do
    into.counts.(b) <- into.counts.(b) + src.counts.(b)
  done

let merge a b =
  let t = copy a in
  merge_into ~into:t b;
  t

(* [newer] minus [older], for interval stats (e.g. one service batch out
   of a session-long histogram). Clamped at zero so a snapshot pair read
   without mutual exclusion can never produce negative counts. *)
let diff newer older =
  let t = create () in
  for b = 0 to buckets - 1 do
    t.counts.(b) <- max 0 (newer.counts.(b) - older.counts.(b))
  done;
  t

let equal a b = a.counts = b.counts

(* Smallest bucket whose cumulative count reaches rank ceil(q*n): the
   bucket holding the exact q-quantile of the recorded multiset, so the
   exact quantile always lies within [bucket_lo b, bucket_hi b]. *)
let quantile_bucket t q =
  if not (q >= 0. && q <= 1.) then invalid_arg "Histogram.quantile_bucket";
  let n = count t in
  if n = 0 then None
  else
    let rank = int_of_float (ceil (q *. float_of_int n)) in
    let rank = if rank < 1 then 1 else if rank > n then n else rank in
    let rec go b acc =
      let acc = acc + t.counts.(b) in
      if acc >= rank then b else go (b + 1) acc
    in
    Some (go 0 0)

let quantile t q =
  match quantile_bucket t q with
  | None -> None
  | Some b -> Some ((bucket_lo b + bucket_hi b) / 2)

(* Upper bound of the highest non-empty bucket: a conservative (never
   under-reporting) estimate of the largest recorded value. *)
let max_value t =
  let rec go b = if b < 0 then None else if t.counts.(b) > 0 then Some (bucket_hi b) else go (b - 1) in
  go (buckets - 1)

let sum_estimate t =
  let acc = ref 0 in
  for b = 0 to buckets - 1 do
    if t.counts.(b) > 0 then acc := !acc + (t.counts.(b) * ((bucket_lo b + bucket_hi b) / 2))
  done;
  !acc

let q_or_zero t q = match quantile t q with Some v -> v | None -> 0

(* Sparse [[bucket, count], ...] pairs: the exact bucket contents, so a
   histogram serialised in one process and merged in another loses
   nothing — fleet aggregation over per-shard summaries depends on
   round-tripping being lossless. *)
let to_json t =
  let pairs = ref [] in
  for b = buckets - 1 downto 0 do
    if t.counts.(b) > 0 then
      pairs := Json.Arr [ Json.int b; Json.int t.counts.(b) ] :: !pairs
  done;
  Json.Arr !pairs

let of_json j =
  let t = create () in
  (match j with
  | Json.Arr pairs ->
      List.iter
        (fun pair ->
          match pair with
          | Json.Arr [ Json.Num b; Json.Num c ]
            when Float.is_integer b && Float.is_integer c ->
              let b = int_of_float b and c = int_of_float c in
              if b < 0 || b >= buckets || c < 0 then
                raise (Json.Malformed "histogram: bucket out of range");
              t.counts.(b) <- t.counts.(b) + c
          | _ -> raise (Json.Malformed "histogram: expected [bucket, count]"))
        pairs
  | _ -> raise (Json.Malformed "histogram: expected an array"));
  t

let summary_json t =
  let n = count t in
  if n = 0 then Json.Obj [ ("count", Json.Num 0.) ]
  else
    Json.Obj
      [
        ("count", Json.Num (float_of_int n));
        ("p50", Json.Num (float_of_int (q_or_zero t 0.5)));
        ("p90", Json.Num (float_of_int (q_or_zero t 0.9)));
        ("p95", Json.Num (float_of_int (q_or_zero t 0.95)));
        ("p99", Json.Num (float_of_int (q_or_zero t 0.99)));
        ( "max",
          Json.Num (float_of_int (match max_value t with Some v -> v | None -> 0)) );
      ]
