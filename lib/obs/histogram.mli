(** HDR-style log2-bucketed histogram over non-negative integers.

    Values 0..15 are exact; every larger value lands in one of 16
    sub-buckets per power-of-two octave, bounding relative bucket width
    by 1/16 across the full native-int range. Merge is pointwise count
    addition — exactly associative and commutative — so per-domain
    histograms can be combined in any order at pool join without
    changing the result.

    A [t] is not thread-safe: each domain records into its own instance
    (see {!Metrics.observe}) and instances are only merged at
    quiescence, or read mid-flight by the timeline sampler, which
    tolerates torn-but-initialized counts per the OCaml memory model. *)

type t

val buckets : int
(** Total number of buckets (960). *)

val create : unit -> t
val copy : t -> t
val clear : t -> unit

val record : t -> int -> unit
(** Record one observation. Negative values clamp to 0. *)

val count : t -> int
val is_empty : t -> bool

val bucket_of : int -> int
(** Bucket index for a value; monotone non-decreasing in the value. *)

val bucket_lo : int -> int
(** Smallest value mapping to the bucket. *)

val bucket_hi : int -> int
(** Largest value mapping to the bucket; [bucket_lo b <= v <= bucket_hi b]
    holds exactly when [bucket_of v = b]. *)

val merge : t -> t -> t
val merge_into : into:t -> t -> unit

val diff : t -> t -> t
(** [diff newer older] is the per-bucket difference clamped at zero:
    interval statistics between two snapshots of a growing histogram. *)

val equal : t -> t -> bool

val quantile_bucket : t -> float -> int option
(** Bucket containing the exact q-quantile (rank [ceil (q*n)]) of the
    recorded multiset; [None] when empty. Raises [Invalid_argument]
    unless [0 <= q <= 1]. *)

val quantile : t -> float -> int option
(** Midpoint of {!quantile_bucket}: within half a bucket's width of the
    exact sorted-sample quantile. *)

val q_or_zero : t -> float -> int
(** {!quantile} defaulting to 0 on an empty histogram. *)

val max_value : t -> int option
(** Upper bound of the highest non-empty bucket — never under-reports
    the true maximum. *)

val sum_estimate : t -> int
(** Sum of bucket-midpoint times count: an estimate of the total of all
    recorded values, within one sub-bucket's relative error. *)

val summary_json : t -> Json.t
(** [{"count":n,"p50":..,"p90":..,"p95":..,"p99":..,"max":..}], or just
    [{"count":0}] when empty. *)

val to_json : t -> Json.t
(** Sparse exact encoding, [[bucket, count], ...] for every non-empty
    bucket: unlike {!summary_json} this loses nothing, so histograms
    serialised by different processes can be {!of_json}-ed and
    {!merge}-d with the same result as recording into one instance
    (the fleet summary aggregates per-shard latency this way). *)

val of_json : Json.t -> t
(** Inverse of {!to_json} (duplicate buckets sum).
    @raise Json.Malformed on any other shape. *)
