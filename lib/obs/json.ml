type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Malformed of string

let int i = Num (float_of_int i)

(* -- Writer ------------------------------------------------------------ *)

let add_escaped b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let add_num b f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then
    (* JSON has no NaN/inf; null is the conventional spelling. *)
    Buffer.add_string b "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" f)
  else Buffer.add_string b (Printf.sprintf "%.17g" f)

let rec to_buffer b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Num f -> add_num b f
  | Str s -> add_escaped b s
  | Arr elts ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          to_buffer b v)
        elts;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          add_escaped b k;
          Buffer.add_char b ':';
          to_buffer b v)
        kvs;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  to_buffer b v;
  Buffer.contents b

(* -- Reader ------------------------------------------------------------ *)

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Malformed (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then s.[!pos] else fail "unexpected end" in
  let advance () = incr pos in
  let rec skip_ws () =
    if
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    then begin
      advance ();
      skip_ws ()
    end
  in
  let expect c =
    if peek () <> c then fail (Printf.sprintf "expected %c" c);
    advance ()
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' ->
          advance ();
          Buffer.contents b
      | '\\' ->
          advance ();
          (match peek () with
          | '"' | '\\' | '/' -> Buffer.add_char b (peek ())
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              (* Keep the reader tiny: skip the four hex digits and
                 substitute, exactly like the bench checker always did. *)
              advance ();
              advance ();
              advance ();
              Buffer.add_char b '?'
          | _ -> fail "bad escape");
          advance ();
          go ()
      | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e'
      || c = 'E'
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let literal lit v =
    if
      !pos + String.length lit <= n
      && String.sub s !pos (String.length lit) = lit
    then begin
      pos := !pos + String.length lit;
      v
    end
    else fail ("expected " ^ lit)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                members ((key, v) :: acc)
            | '}' ->
                advance ();
                Obj (List.rev ((key, v) :: acc))
            | _ -> fail "expected , or }"
          in
          members []
        end
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                elements (v :: acc)
            | ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          elements []
        end
    | '"' -> Str (parse_string ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | _ -> Num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* -- Accessors --------------------------------------------------------- *)

let field_opt v name =
  match v with
  | Obj kvs -> List.assoc_opt name kvs
  | _ -> raise (Malformed (Printf.sprintf "expected object holding %S" name))

let field v name =
  match field_opt v name with
  | Some m -> m
  | None -> raise (Malformed (Printf.sprintf "missing field %S" name))

let want_num v name =
  match field v name with
  | Num f -> f
  | _ -> raise (Malformed (Printf.sprintf "field %S: expected number" name))

let want_str v name =
  match field v name with
  | Str s -> s
  | _ -> raise (Malformed (Printf.sprintf "field %S: expected string" name))

let want_bool v name =
  match field v name with
  | Bool b -> b
  | _ -> raise (Malformed (Printf.sprintf "field %S: expected bool" name))
