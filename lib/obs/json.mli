(** A dependency-free subset of JSON, shared by the telemetry sinks.

    The writer emits exactly the constructs the reader parses — objects,
    arrays, strings with simple backslash escapes, numbers, booleans,
    null — which is all the manifest, the trace and the bench results
    file need. Round-tripping through {!to_string} and {!parse} is the
    contract the observability tests pin. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Malformed of string
(** Raised by {!parse} with a byte offset, and by the [want_*]
    accessors with the offending field name. *)

val parse : string -> t
(** Parse one complete JSON value; trailing garbage is an error.

    @raise Malformed on any syntax error. *)

val to_buffer : Buffer.t -> t -> unit
(** Compact rendering (no insignificant whitespace), suitable for JSON
    Lines: the output never contains a newline. *)

val to_string : t -> string

val int : int -> t
(** [Num] of an integer, rendered without a decimal point. *)

val field : t -> string -> t
(** Member access.

    @raise Malformed if the value is not an object or lacks the key. *)

val field_opt : t -> string -> t option
(** [None] when the key is absent; still raises on non-objects. *)

val want_num : t -> string -> float

val want_str : t -> string -> string

val want_bool : t -> string -> bool
(** Typed member access; @raise Malformed on a missing field or a type
    mismatch. *)
