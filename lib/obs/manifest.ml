let default_path = Filename.concat "results" "manifest.json"

let git_describe () =
  try
    let ic = Unix.open_process_in "git describe --always --dirty 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown"
  with _ -> "unknown"

let make ~command ~profile ~seed ~jobs ~adaptive ~warm_start ~wall_seconds
    ~cpu_seconds ~experiments =
  let counters =
    List.map
      (fun (name, v) ->
        ( name,
          match v with
          | Metrics.Count c -> Json.int c
          | Metrics.Value f -> Json.Num f ))
      (Metrics.snapshot ())
  in
  Json.Obj
    [
      ("schema", Json.Str "dut-manifest/1");
      ("command", Json.Str command);
      ("profile", Json.Str profile);
      ("seed", Json.int seed);
      ("jobs", Json.int jobs);
      ("adaptive", Json.Bool adaptive);
      ("warm_start", Json.Bool warm_start);
      ("git", Json.Str (git_describe ()));
      ("created_unix", Json.Num (Unix.time ()));
      ("wall_seconds", Json.Num wall_seconds);
      ("cpu_seconds", Json.Num cpu_seconds);
      ( "experiments",
        Json.Arr
          (List.map
             (fun (id, seconds) ->
               Json.Obj [ ("id", Json.Str id); ("seconds", Json.Num seconds) ])
             experiments) );
      ("counters", Json.Obj counters);
    ]

(* Two-space-indented rendering: the manifest is meant to be opened by
   humans as often as by `dut obs-report`. *)
let rec pretty b indent v =
  let pad n = String.make n ' ' in
  match v with
  | Json.Arr (_ :: _ as elts) ->
      Buffer.add_string b "[\n";
      List.iteri
        (fun i e ->
          if i > 0 then Buffer.add_string b ",\n";
          Buffer.add_string b (pad (indent + 2));
          pretty b (indent + 2) e)
        elts;
      Buffer.add_char b '\n';
      Buffer.add_string b (pad indent);
      Buffer.add_char b ']'
  | Json.Obj (_ :: _ as kvs) ->
      Buffer.add_string b "{\n";
      List.iteri
        (fun i (k, e) ->
          if i > 0 then Buffer.add_string b ",\n";
          Buffer.add_string b (pad (indent + 2));
          Json.to_buffer b (Json.Str k);
          Buffer.add_string b ": ";
          pretty b (indent + 2) e)
        kvs;
      Buffer.add_char b '\n';
      Buffer.add_string b (pad indent);
      Buffer.add_char b '}'
  | v -> Json.to_buffer b v

let mkdir_p dir =
  if dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir && not (Sys.file_exists parent) then
      (try Sys.mkdir parent 0o755 with Sys_error _ -> ());
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let write ?(path = default_path) manifest =
  try
    mkdir_p (Filename.dirname path);
    let oc = open_out path in
    let b = Buffer.create 4096 in
    pretty b 0 manifest;
    Buffer.add_char b '\n';
    Buffer.output_buffer oc b;
    close_out oc
  with Sys_error msg -> Printf.eprintf "dut: cannot write manifest: %s\n%!" msg
