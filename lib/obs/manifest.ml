let default_path = Filename.concat "results" "manifest.json"

let git_describe () =
  try
    let ic = Unix.open_process_in "git describe --always --dirty 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown"
  with _ -> "unknown"

type experiment = {
  id : string;
  seconds : float;
  status : string;
  resumed : bool;
  error : string option;
}

let run_status experiments =
  (* Interruption dominates (the run was cut short, whatever else
     happened inside it), then failure, then ok. *)
  if List.exists (fun e -> e.status = "interrupted") experiments then
    "interrupted"
  else if List.exists (fun e -> e.status = "failed") experiments then "failed"
  else "ok"

let make ~command ~profile ~seed ~jobs ~jobs_requested ~adaptive ~warm_start
    ~wall_seconds ~cpu_seconds ~experiments =
  let counters =
    List.map
      (fun (name, v) ->
        ( name,
          match v with
          | Metrics.Count c -> Json.int c
          | Metrics.Value f -> Json.Num f ))
      (Metrics.snapshot ())
  in
  let histograms =
    List.filter_map
      (fun (name, h) ->
        if Histogram.is_empty h then None
        else Some (name, Histogram.summary_json h))
      (Metrics.histogram_snapshot ())
  in
  let experiment e =
    Json.Obj
      ([
         ("id", Json.Str e.id);
         ("seconds", Json.Num e.seconds);
         ("status", Json.Str e.status);
         ("resumed", Json.Bool e.resumed);
       ]
      @ match e.error with None -> [] | Some m -> [ ("error", Json.Str m) ])
  in
  Json.Obj
    ([
       ("schema", Json.Str "dut-manifest/3");
       ("command", Json.Str command);
       ("status", Json.Str (run_status experiments));
       ("profile", Json.Str profile);
       ("seed", Json.int seed);
       ("jobs", Json.int jobs);
     ]
    (* [jobs] is the parallelism the run actually had (post
       Pool.effective_jobs clamp); the pre-clamp request rides along
       only when the clamp changed it, so a manifest never silently
       claims parallelism the host could not deliver. *)
    @ (if jobs_requested <> jobs then
         [ ("jobs_requested", Json.int jobs_requested) ]
       else [])
    @ [
        ("adaptive", Json.Bool adaptive);
        ("warm_start", Json.Bool warm_start);
        ("git", Json.Str (git_describe ()));
        ("created_unix", Json.Num (Unix.time ()));
        ("wall_seconds", Json.Num wall_seconds);
        ("cpu_seconds", Json.Num cpu_seconds);
        ("experiments", Json.Arr (List.map experiment experiments));
        ("counters", Json.Obj counters);
        ("histograms", Json.Obj histograms);
      ])

(* Two-space-indented rendering: the manifest is meant to be opened by
   humans as often as by `dut obs-report`. *)
let rec pretty b indent v =
  let pad n = String.make n ' ' in
  match v with
  | Json.Arr (_ :: _ as elts) ->
      Buffer.add_string b "[\n";
      List.iteri
        (fun i e ->
          if i > 0 then Buffer.add_string b ",\n";
          Buffer.add_string b (pad (indent + 2));
          pretty b (indent + 2) e)
        elts;
      Buffer.add_char b '\n';
      Buffer.add_string b (pad indent);
      Buffer.add_char b ']'
  | Json.Obj (_ :: _ as kvs) ->
      Buffer.add_string b "{\n";
      List.iteri
        (fun i (k, e) ->
          if i > 0 then Buffer.add_string b ",\n";
          Buffer.add_string b (pad (indent + 2));
          Json.to_buffer b (Json.Str k);
          Buffer.add_string b ": ";
          pretty b (indent + 2) e)
        kvs;
      Buffer.add_char b '\n';
      Buffer.add_string b (pad indent);
      Buffer.add_char b '}'
  | v -> Json.to_buffer b v

let mkdir_p dir =
  if dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir && not (Sys.file_exists parent) then
      (try Sys.mkdir parent 0o755 with Sys_error _ -> ());
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

(* All-or-nothing file replacement: render next to the target and
   [Sys.rename] over it (atomic within one directory on POSIX), so a
   crash mid-write can truncate only the temp file, never the published
   one. Shared by the manifest and the checkpoint store. *)
let write_atomic ~path content =
  mkdir_p (Filename.dirname path);
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir (Filename.basename path ^ ".") ".tmp" in
  match
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc content)
  with
  | () -> Sys.rename tmp path
  | exception e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e

let write ?(path = default_path) manifest =
  try
    let b = Buffer.create 4096 in
    pretty b 0 manifest;
    Buffer.add_char b '\n';
    write_atomic ~path (Buffer.contents b)
  with Sys_error msg -> Printf.eprintf "dut: cannot write manifest: %s\n%!" msg
