(** Run manifests: one JSON file per run recording what was run, at
    what cost, under which code — and whether each experiment actually
    finished.

    Schema ([dut-manifest/3]): [command], [status] (the run as a whole:
    ["ok"] | ["failed"] | ["interrupted"], interruption dominating
    failure), [profile], [seed], [jobs] (the {e effective} parallelism
    after the {!Dut_engine.Pool.effective_jobs} clamp) plus
    [jobs_requested] (present only when the clamp changed the request),
    [adaptive], [warm_start], [git] (describe output or ["unknown"]),
    [created_unix], [wall_seconds], [cpu_seconds] (summed
    per-experiment time over the work {e executed this run} — exceeds
    wall time under [--jobs]), [experiments] (array of
    [{id, seconds, status, resumed, error?}] in registry order; [error]
    only on failed entries), [counters] (the final {!Metrics.snapshot};
    counter totals for the jobs-invariant metrics are bit-equal across
    [--jobs] values, see [doc/observability.md]) and [histograms] (one
    {!Histogram.summary_json} object per non-empty registered histogram
    — [pool.task_ns], [checkpoint.write_ns], … — merged across domains;
    new in /3).

    A run cut short by SIGINT/SIGTERM still writes a {e valid} partial
    manifest: completed experiments carry [status "ok"], never-started
    ones [status "interrupted"], and the top-level [status] says
    ["interrupted"].

    The manifest is out-of-band telemetry: it is written next to the
    run ([results/manifest.json] by default) via {!write_atomic} — a
    crash can never leave a truncated file — never to stdout, and a
    failure to write it degrades to a one-line stderr warning rather
    than failing the run. *)

val default_path : string
(** ["results/manifest.json"]. *)

val git_describe : unit -> string
(** [git describe --always --dirty], or ["unknown"] when git or the
    repository is unavailable. *)

type experiment = {
  id : string;
  seconds : float;  (** elapsed (monotonic clock); the checkpointed
                        value for resumed entries *)
  status : string;  (** ["ok"] | ["failed"] | ["interrupted"] *)
  resumed : bool;  (** replayed from a checkpoint, not executed *)
  error : string option;  (** exception text for failed entries *)
}

val make :
  command:string ->
  profile:string ->
  seed:int ->
  jobs:int ->
  jobs_requested:int ->
  adaptive:bool ->
  warm_start:bool ->
  wall_seconds:float ->
  cpu_seconds:float ->
  experiments:experiment list ->
  Json.t
(** Assemble the manifest object, stamping [git], [created_unix], the
    derived run [status] and the current counter snapshot. [jobs] is
    the effective parallelism; [jobs_requested] the pre-clamp request
    (emitted only when the two differ). *)

val write_atomic : path:string -> string -> unit
(** Write [content] to a temp file in [path]'s directory (created if
    needed) and [Sys.rename] it over [path]: readers observe either the
    old bytes or the new, never a truncated mix. Used for the manifest
    and the checkpoint files.

    @raise Sys_error when the directory or file cannot be written. *)

val write : ?path:string -> Json.t -> unit
(** Pretty-print the manifest atomically to [path] (default
    {!default_path}), creating the parent directory if needed. On
    failure prints a warning to stderr and returns. *)
