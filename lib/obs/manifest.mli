(** Run manifests: one JSON file per run recording what was run, at
    what cost, under which code.

    Schema ([dut-manifest/1]): [command], [profile], [seed], [jobs],
    [adaptive], [warm_start], [git] (describe output or ["unknown"]),
    [created_unix], [wall_seconds], [cpu_seconds] (summed
    per-experiment time — exceeds wall time under [--jobs]),
    [experiments] (array of [{id, seconds}] in registry order) and
    [counters] (the final {!Metrics.snapshot}; counter totals for the
    jobs-invariant metrics are bit-equal across [--jobs] values, see
    [doc/observability.md]).

    The manifest is out-of-band telemetry: it is written next to the
    run ([results/manifest.json] by default), never to stdout, and a
    failure to write it degrades to a one-line stderr warning rather
    than failing the run. *)

val default_path : string
(** ["results/manifest.json"]. *)

val git_describe : unit -> string
(** [git describe --always --dirty], or ["unknown"] when git or the
    repository is unavailable. *)

val make :
  command:string ->
  profile:string ->
  seed:int ->
  jobs:int ->
  adaptive:bool ->
  warm_start:bool ->
  wall_seconds:float ->
  cpu_seconds:float ->
  experiments:(string * float) list ->
  Json.t
(** Assemble the manifest object, stamping [git], [created_unix] and
    the current counter snapshot. *)

val write : ?path:string -> Json.t -> unit
(** Pretty-print the manifest to [path] (default {!default_path}),
    creating the parent directory if needed. On failure prints a
    warning to stderr and returns. *)
