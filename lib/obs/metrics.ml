(* Counters are dense ids into per-domain int tables. The registry —
   name <-> id, the list of every per-domain table ever created, the
   gauge map — is guarded by one mutex; it is touched only on first
   use of a name or a domain, and at snapshot/reset. The increment hot
   path is one DLS get plus one plain array write on the calling
   domain's own table, so concurrent pool tasks never contend.

   Snapshot sums plain (non-atomic) fields written by other domains.
   That is deliberate: the harness aggregates only at quiescent points
   (after a pool join, at the end of a run), where every write is
   published by the join's synchronisation. Mid-flight snapshots would
   merely be stale, never corrupt — OCaml's memory model keeps racy
   int reads well-defined. *)

let lock = Mutex.create ()

type counter = int

let counter_names : string list ref = ref []  (* newest first; length = count *)

let counter_ids : (string, int) Hashtbl.t = Hashtbl.create 32

let n_counters = Atomic.make 0

(* Every per-domain table ever created, kept forever: worker domains die
   on pool resize/shutdown and their tallies must survive them. *)
let tables : int array ref list ref = ref []

let table_key =
  Domain.DLS.new_key (fun () ->
      let t = ref [||] in
      Mutex.lock lock;
      tables := t :: !tables;
      Mutex.unlock lock;
      t)

let counter name =
  Mutex.lock lock;
  let id =
    match Hashtbl.find_opt counter_ids name with
    | Some id -> id
    | None ->
        let id = Atomic.get n_counters in
        Hashtbl.add counter_ids name id;
        counter_names := name :: !counter_names;
        Atomic.set n_counters (id + 1);
        id
  in
  Mutex.unlock lock;
  id

let add c n =
  let t = Domain.DLS.get table_key in
  let a = !t in
  if c < Array.length a then a.(c) <- a.(c) + n
  else begin
    let grown = Array.make (max (c + 1) (Atomic.get n_counters)) 0 in
    Array.blit a 0 grown 0 (Array.length a);
    grown.(c) <- n;
    t := grown
  end

let incr c = add c 1

type gauge = float Atomic.t

let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 8

let gauge name =
  Mutex.lock lock;
  let g =
    match Hashtbl.find_opt gauges name with
    | Some g -> g
    | None ->
        let g = Atomic.make 0. in
        Hashtbl.add gauges name g;
        g
  in
  Mutex.unlock lock;
  g

let set_gauge g v = Atomic.set g v

(* Histograms mirror the counter layout exactly: dense ids, one table
   per domain kept forever, registry under the same lock. The per-domain
   slot is an [Histogram.t option] created lazily on the first
   observation, so registering a histogram costs nothing on domains that
   never record into it. *)

type hist = int

let hist_names : string list ref = ref []  (* newest first *)

let hist_ids : (string, int) Hashtbl.t = Hashtbl.create 8

let n_hists = Atomic.make 0

let hist_tables : Histogram.t option array ref list ref = ref []

let hist_table_key =
  Domain.DLS.new_key (fun () ->
      let t = ref [||] in
      Mutex.lock lock;
      hist_tables := t :: !hist_tables;
      Mutex.unlock lock;
      t)

let histogram name =
  Mutex.lock lock;
  let id =
    match Hashtbl.find_opt hist_ids name with
    | Some id -> id
    | None ->
        let id = Atomic.get n_hists in
        Hashtbl.add hist_ids name id;
        hist_names := name :: !hist_names;
        Atomic.set n_hists (id + 1);
        id
  in
  Mutex.unlock lock;
  id

let observe h v =
  let t = Domain.DLS.get hist_table_key in
  let a = !t in
  if h < Array.length a then
    match a.(h) with
    | Some hg -> Histogram.record hg v
    | None ->
        let hg = Histogram.create () in
        a.(h) <- Some hg;
        Histogram.record hg v
  else begin
    let grown = Array.make (max (h + 1) (Atomic.get n_hists)) None in
    Array.blit a 0 grown 0 (Array.length a);
    let hg = Histogram.create () in
    grown.(h) <- Some hg;
    Histogram.record hg v;
    t := grown
  end

type value = Count of int | Value of float

let sum_counter_locked id =
  List.fold_left
    (fun acc t ->
      let a = !t in
      if id < Array.length a then acc + a.(id) else acc)
    0 !tables

let snapshot () =
  Mutex.lock lock;
  let counters =
    List.rev_map
      (fun name ->
        (name, Count (sum_counter_locked (Hashtbl.find counter_ids name))))
      !counter_names
  in
  let gs = Hashtbl.fold (fun name g acc -> (name, Value (Atomic.get g)) :: acc) gauges [] in
  Mutex.unlock lock;
  List.sort (fun (a, _) (b, _) -> String.compare a b) (counters @ gs)

let value name =
  Mutex.lock lock;
  let v =
    match Hashtbl.find_opt counter_ids name with
    | Some id -> sum_counter_locked id
    | None -> 0
  in
  Mutex.unlock lock;
  v

let merge_hist_locked id =
  let acc = Histogram.create () in
  List.iter
    (fun t ->
      let a = !t in
      if id < Array.length a then
        match a.(id) with
        | Some hg -> Histogram.merge_into ~into:acc hg
        | None -> ())
    !hist_tables;
  acc

let histogram_snapshot () =
  Mutex.lock lock;
  let hs =
    List.rev_map
      (fun name -> (name, merge_hist_locked (Hashtbl.find hist_ids name)))
      !hist_names
  in
  Mutex.unlock lock;
  List.sort (fun (a, _) (b, _) -> String.compare a b) hs

let histogram_value name =
  Mutex.lock lock;
  let h =
    match Hashtbl.find_opt hist_ids name with
    | Some id -> merge_hist_locked id
    | None -> Histogram.create ()
  in
  Mutex.unlock lock;
  h

let reset () =
  Mutex.lock lock;
  List.iter (fun t -> Array.fill !t 0 (Array.length !t) 0) !tables;
  List.iter
    (fun t ->
      Array.iter (function Some hg -> Histogram.clear hg | None -> ()) !t)
    !hist_tables;
  Hashtbl.iter (fun _ g -> Atomic.set g 0.) gauges;
  Mutex.unlock lock

let dump oc =
  let snap = snapshot () in
  let hists = histogram_snapshot () in
  let width =
    List.fold_left (fun w (name, _) -> max w (String.length name)) 0 snap
  in
  let width =
    List.fold_left (fun w (name, _) -> max w (String.length name)) width hists
  in
  List.iter
    (fun (name, v) ->
      match v with
      | Count c -> Printf.fprintf oc "%-*s %d\n" width name c
      | Value f -> Printf.fprintf oc "%-*s %g\n" width name f)
    snap;
  List.iter
    (fun (name, h) ->
      if not (Histogram.is_empty h) then
        Printf.fprintf oc "%-*s count=%d p50=%d p90=%d p95=%d p99=%d max<=%d\n"
          width name (Histogram.count h)
          (Histogram.q_or_zero h 0.5)
          (Histogram.q_or_zero h 0.9)
          (Histogram.q_or_zero h 0.95)
          (Histogram.q_or_zero h 0.99)
          (match Histogram.max_value h with Some v -> v | None -> 0))
    hists;
  flush oc
