(** Named counters and gauges for the engine and experiment stack.

    {b Counters} are monotone event tallies ([mc.trials_used],
    [search.probes], [scratch.borrows], …). Each domain increments its
    own table — a plain [int array] in domain-local storage, so the hot
    path is one DLS read and one unsynchronised array write: no locks,
    no cache-line contention. {!snapshot} sums the per-domain tables;
    it is exact whenever no increments are in flight, which is how the
    harness uses it — the engine's pool join is the aggregation point
    (every task has finished, every write is published by the join).

    {b Gauges} are last-value-wins measurements ([monitor.fraction_cutoff],
    [monitor.detection_latency_epochs]) stored process-wide.

    Names are registered once, on first use, and live for the process:
    handles are cheap to keep in module-level [let]s. Registration takes
    a lock; increments never do.

    {b Jobs-invariance.} A counter counts {e events}, and the engine's
    determinism contract makes the event sequence of the jobs-invariant
    quantities ([mc.trials_used], [mc.adaptive_early_stops],
    [search.probes], [search.exact_hits]) identical for every jobs
    count — only the domain a given event lands on changes. Summing
    over domains therefore yields bit-equal totals for any [--jobs].
    Scheduling counters ([pool.tasks_claimed], [pool.idle_ns]) measure
    the schedule itself and are only sum-consistent, not invariant.
    [test/test_obs.ml] pins both halves of this contract. *)

type counter

val counter : string -> counter
(** Register (or look up) the counter [name]. Idempotent: the same name
    always yields a handle onto the same tally. *)

val incr : counter -> unit

val add : counter -> int -> unit
(** Bump the calling domain's tally. Never blocks, never allocates
    after the first use on a domain. *)

type gauge

val gauge : string -> gauge
(** Register (or look up) the gauge [name]. *)

val set_gauge : gauge -> float -> unit

type hist

val histogram : string -> hist
(** Register (or look up) the histogram [name]. Idempotent, like
    {!counter}. *)

val observe : hist -> int -> unit
(** Record one observation into the calling domain's own
    {!Histogram.t}. Same concurrency story as {!add}: no locks on the
    hot path, the per-domain instance is created lazily on first use. *)

val histogram_snapshot : unit -> (string * Histogram.t) list
(** Every registered histogram, sorted by name, merged across all
    domains that ever observed into it (including terminated ones).
    Exact at quiescence; mid-flight it is stale but never corrupt —
    the merge is pointwise over plain int buckets. *)

val histogram_value : string -> Histogram.t
(** The merged histogram for [name]; empty if never registered. *)

type value = Count of int | Value of float

val snapshot : unit -> (string * value) list
(** Every registered metric, sorted by name: counters summed across all
    domains that ever incremented them (including domains that have
    since terminated), gauges at their last set value. Exact at
    quiescence (e.g. after a pool join); see the module preamble. *)

val value : string -> int
(** The summed total of counter [name]; 0 if never registered. *)

val reset : unit -> unit
(** Zero every counter and histogram on every domain and clear every
    gauge. Intended
    for harnesses that measure deltas around a quiescent region (the
    bench legs, the tests); calling it while pool tasks are running
    would race with their increments. *)

val dump : out_channel -> unit
(** Print the snapshot as an aligned [name value] table — the
    [--metrics] output of the binaries. Gauges print with [%g],
    counters as integers; non-empty histograms follow as one
    [count=… p50=… … max<=…] summary line each. *)
