(* Offline analysis of Span trace files: linting, per-name self-time
   aggregation, and folded-stack export for flamegraph tooling.

   Self time of a span is its duration minus the summed durations of
   its direct children. Parent links only exist within a domain (see
   Span), so an experiment span running as a pool task is a root and
   its time is attributed to itself, not double-counted under the
   submitting domain's run-all span. Summed self time over all spans
   therefore equals summed root durations — the "summed CPU" a manifest
   reports, up to the instants outside any span. *)

type span = {
  id : int;
  name : string;
  parent : int;  (* -1 when root *)
  domain : int;
  start_ns : int;
  dur_ns : int;
  raised : bool;
}

type read_result = {
  spans : span list;  (* file order *)
  truncated : bool;  (* last line has no terminating newline *)
}

let span_of_json j =
  let num k = int_of_float (Json.want_num j k) in
  {
    id = num "span";
    name = Json.want_str j "name";
    parent = (match Json.field j "parent" with Json.Null -> -1 | _ -> num "parent");
    domain = num "domain";
    start_ns = num "start_ns";
    dur_ns = num "dur_ns";
    raised =
      (match Json.field_opt j "raised" with Some (Json.Bool b) -> b | _ -> false);
  }

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | contents ->
      let n = String.length contents in
      let truncated = n > 0 && contents.[n - 1] <> '\n' in
      let lines = String.split_on_char '\n' contents in
      (* A trailing newline leaves one empty tail element; a truncated
         file leaves the partial line there instead — drop it either
         way, it is not a parseable span. *)
      let lines =
        match List.rev lines with [] -> [] | _ :: rest -> List.rev rest
      in
      let rec parse acc lineno = function
        | [] -> Ok { spans = List.rev acc; truncated }
        | "" :: rest -> parse acc (lineno + 1) rest
        | line :: rest -> (
            match span_of_json (Json.parse line) with
            | s -> parse (s :: acc) (lineno + 1) rest
            | exception _ ->
                Error (Printf.sprintf "line %d: malformed span record" lineno))
      in
      parse [] 1 lines

(* -- Aggregation --------------------------------------------------------- *)

type agg = {
  agg_name : string;
  count : int;
  total_ns : int;
  self_ns : int;
  max_ns : int;
}

let self_times spans =
  let child_ns = Hashtbl.create 256 in
  List.iter
    (fun s ->
      if s.parent >= 0 then
        let prev = match Hashtbl.find_opt child_ns s.parent with Some v -> v | None -> 0 in
        Hashtbl.replace child_ns s.parent (prev + s.dur_ns))
    spans;
  List.map
    (fun s ->
      let children = match Hashtbl.find_opt child_ns s.id with Some v -> v | None -> 0 in
      (s, max 0 (s.dur_ns - children)))
    spans

let aggregate spans =
  let by_name : (string, agg) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (s, self) ->
      let a =
        match Hashtbl.find_opt by_name s.name with
        | Some a -> a
        | None -> { agg_name = s.name; count = 0; total_ns = 0; self_ns = 0; max_ns = 0 }
      in
      Hashtbl.replace by_name s.name
        {
          a with
          count = a.count + 1;
          total_ns = a.total_ns + s.dur_ns;
          self_ns = a.self_ns + self;
          max_ns = max a.max_ns s.dur_ns;
        })
    (self_times spans);
  let all = Hashtbl.fold (fun _ a acc -> a :: acc) by_name [] in
  List.sort
    (fun a b ->
      match compare b.self_ns a.self_ns with
      | 0 -> String.compare a.agg_name b.agg_name
      | c -> c)
    all

let total_self_ns ?(except = []) spans =
  List.fold_left
    (fun acc (s, self) -> if List.mem s.name except then acc else acc + self)
    0 (self_times spans)

(* Trace extent: max end minus min start over every span. *)
let wall_ns spans =
  match spans with
  | [] -> 0
  | s0 :: _ ->
      let lo, hi =
        List.fold_left
          (fun (lo, hi) s -> (min lo s.start_ns, max hi (s.start_ns + s.dur_ns)))
          (s0.start_ns, s0.start_ns + s0.dur_ns)
          spans
      in
      hi - lo

(* -- Folded stacks ------------------------------------------------------- *)

(* One "root;child;leaf self_ns" line per distinct stack, self times
   summed, sorted by stack string — the input format of standard
   flamegraph renderers. *)
let folded spans =
  let by_id = Hashtbl.create 256 in
  List.iter (fun s -> Hashtbl.replace by_id s.id s) spans;
  let stack_of s =
    let rec climb acc s =
      match if s.parent >= 0 then Hashtbl.find_opt by_id s.parent else None with
      | Some p -> climb (s.name :: acc) p
      | None -> s.name :: acc
    in
    String.concat ";" (climb [] s)
  in
  let tally = Hashtbl.create 64 in
  List.iter
    (fun (s, self) ->
      if self > 0 then
        let k = stack_of s in
        let prev = match Hashtbl.find_opt tally k with Some v -> v | None -> 0 in
        Hashtbl.replace tally k (prev + self))
    (self_times spans);
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tally [])
