(** Offline analysis of {!Span} trace files: reading/linting,
    per-span-name self-time aggregation, and folded-stack export.

    {e Self time} = a span's duration minus the summed durations of its
    direct children (floored at 0). Parent links exist only within a
    domain, so pool-task spans are roots: summed self time over a trace
    approximates the summed CPU seconds the run's manifest reports
    (subtract the [run-all] umbrella span's self when experiments run
    on the submitting domain — [dut obs-report --profile] does). *)

type span = {
  id : int;
  name : string;
  parent : int;  (** [-1] when root *)
  domain : int;
  start_ns : int;
  dur_ns : int;
  raised : bool;
}

type read_result = {
  spans : span list;  (** in file order *)
  truncated : bool;
      (** the file's last line has no terminating newline — evidence of
          a crash mid-write *)
}

val read_file : string -> (read_result, string) result
(** Parse a trace file. [Error] carries a message for an unreadable
    file or a malformed complete line; a partial {e final} line is not
    an error — it is reported via [truncated] with every complete span
    still returned. An empty file yields [Ok] with no spans. *)

type agg = {
  agg_name : string;
  count : int;
  total_ns : int;
  self_ns : int;
  max_ns : int;  (** largest single duration *)
}

val aggregate : span list -> agg list
(** Per-name totals, sorted by self time descending (name as
    tie-break). *)

val total_self_ns : ?except:string list -> span list -> int
(** Summed self time, excluding spans whose name is in [except]. *)

val wall_ns : span list -> int
(** Trace extent: latest span end minus earliest span start. *)

val folded : span list -> (string * int) list
(** Folded-stack lines [("root;child;leaf", self_ns)], self times
    summed per distinct stack, sorted by stack — the input format of
    standard flamegraph tooling. Zero-self stacks are omitted. *)
