(* -- Monotonised process clock ----------------------------------------- *)

let t0 = Unix.gettimeofday ()

let last_ns = Atomic.make 0

let now_ns () =
  let raw = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9) in
  let rec clamp () =
    let prev = Atomic.get last_ns in
    if raw <= prev then prev
    else if Atomic.compare_and_set last_ns prev raw then raw
    else clamp ()
  in
  clamp ()

(* -- Sink --------------------------------------------------------------- *)

let sink_lock = Mutex.create ()

let sink : out_channel option ref = ref None

(* Read without the lock on the hot no-trace path: a stale [None] only
   drops a span raced with [set_sink], and stale [Some] is harmless
   because emission re-checks under the lock. *)
let enabled () = !sink <> None

let close_locked () =
  match !sink with
  | None -> ()
  | Some oc ->
      sink := None;
      close_out_noerr oc

let set_sink path =
  Mutex.lock sink_lock;
  close_locked ();
  (match path with Some p -> sink := Some (open_out p) | None -> ());
  Mutex.unlock sink_lock

let () = at_exit (fun () ->
    Mutex.lock sink_lock;
    close_locked ();
    Mutex.unlock sink_lock)

let emit_line json =
  (* Render outside the lock; only the write is serialised. *)
  let line = Json.to_string json in
  Mutex.lock sink_lock;
  (match !sink with
  | Some oc ->
      output_string oc line;
      output_char oc '\n';
      flush oc
  | None -> ());
  Mutex.unlock sink_lock

(* -- Spans -------------------------------------------------------------- *)

let next_id = Atomic.make 1

(* Stack of open span ids on the calling domain, for parent links. *)
let stack_key = Domain.DLS.new_key (fun () -> ref [])

let domain_id () = (Domain.self () :> int)

let emit ~name ~attrs ~id ~parent ~start ~stop ~raised =
  let base =
    [
      ("name", Json.Str name);
      ("span", Json.int id);
      ("parent", match parent with Some p -> Json.int p | None -> Json.Null);
      ("domain", Json.int (domain_id ()));
      ("start_ns", Json.int start);
      ("dur_ns", Json.int (stop - start));
    ]
  in
  let base = if raised then base @ [ ("raised", Json.Bool true) ] else base in
  let base =
    if attrs = [] then base else base @ [ ("attrs", Json.Obj attrs) ]
  in
  emit_line (Json.Obj base)

let with_ ?(attrs = []) ~name f =
  if not (enabled ()) then f ()
  else begin
    let stack = Domain.DLS.get stack_key in
    let parent = match !stack with [] -> None | p :: _ -> Some p in
    let id = Atomic.fetch_and_add next_id 1 in
    let start = now_ns () in
    stack := id :: !stack;
    let finish raised =
      (match !stack with
      | s :: rest when s = id -> stack := rest
      | _ -> ());
      emit ~name ~attrs ~id ~parent ~start ~stop:(now_ns ()) ~raised
    in
    match f () with
    | v ->
        finish false;
        v
    | exception e ->
        finish true;
        raise e
  end
