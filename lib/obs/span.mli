(** Structured span tracing to a JSON Lines sink.

    A span is one timed region — an experiment, a table, a monitor
    epoch. [with_ ~name ~attrs f] runs [f] and, if a sink is open,
    appends one JSON object on its own line when the region ends:

    {v
    {"name":"experiment","span":3,"parent":2,"domain":0,
     "start_ns":1200345,"dur_ns":88211,"attrs":{"id":"T1-any-rule"}}
    v}

    [span] ids are unique per process; [parent] is the id of the
    enclosing span {e on the same domain} ([null] at top level —
    experiment spans running as pool tasks are roots, because the
    parent lives on the submitting domain). [start_ns] is nanoseconds
    since process start on a monotonised wall clock: timestamps never
    decrease, across all domains. Lines from concurrent domains are
    serialised by a mutex, so the sink is always valid JSONL.

    Tracing is strictly out of band: with no sink open [with_] is just
    a call to [f] — no ids, no clock reads, no stack — so enabling
    [--trace] can never perturb results, and stdout stays byte-identical
    either way. *)

val set_sink : string option -> unit
(** [set_sink (Some path)] opens (truncates) [path] and starts emitting;
    [set_sink None] flushes and closes. The process exit hook closes an
    open sink. *)

val enabled : unit -> bool
(** Whether a sink is currently open. *)

val now_ns : unit -> int
(** Nanoseconds since process start, monotone non-decreasing across
    domains (a wall-clock read clamped to the latest timestamp already
    issued). Also used by the engine's [pool.idle_ns] accounting. *)

val with_ : ?attrs:(string * Json.t) list -> name:string -> (unit -> 'a) -> 'a
(** Run the thunk as a span. If it raises, the span is still emitted,
    with an extra ["raised": true] member, and the exception is
    re-raised. *)
