(* A background sampler domain appending periodic JSONL snapshots of
   the metrics registry and the GC to a timeline file.

   Strictly out of band, like Span: the sampler only *reads* shared
   state (counter tables, gauges, histograms, Gc.quick_stat), so running
   it can never perturb results or stdout. Mid-flight reads of the
   per-domain tables are stale-but-not-corrupt (see the Metrics
   preamble); for a flow metric a stale read just shifts a little volume
   to the next tick's delta.

   File format (dut-timeline/1): a header object, then one object per
   tick. Counters and GC words are emitted as deltas against the
   previous tick (zero deltas omitted), gauges as absolute values,
   histograms as absolute summaries, heap_words as an absolute level. *)

let default_path = Filename.concat "results" "timeline.jsonl"

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

type sampler = { stop : bool Atomic.t; domain : unit Domain.t }

let lock = Mutex.create ()
let active : sampler option ref = ref None

let counter_deltas ~prev snap =
  List.filter_map
    (fun (name, v) ->
      match v with
      | Metrics.Count c ->
          let before = match Hashtbl.find_opt prev name with Some b -> b | None -> 0 in
          Hashtbl.replace prev name c;
          if c <> before then Some (name, Json.Num (float_of_int (c - before)))
          else None
      | Metrics.Value _ -> None)
    snap

let gauge_values snap =
  List.filter_map
    (fun (name, v) ->
      match v with Metrics.Value f -> Some (name, Json.Num f) | Metrics.Count _ -> None)
    snap

let sample ~prev ~prev_gc () =
  let t = Span.now_ns () in
  let gc = Gc.quick_stat () in
  let pminor, pmajor = !prev_gc in
  prev_gc := (gc.Gc.minor_words, gc.Gc.major_words);
  let snap = Metrics.snapshot () in
  let hists =
    List.filter_map
      (fun (name, h) ->
        if Histogram.is_empty h then None else Some (name, Histogram.summary_json h))
      (Metrics.histogram_snapshot ())
  in
  Json.Obj
    [
      ("t_ns", Json.Num (float_of_int t));
      ( "gc",
        Json.Obj
          [
            ("minor_words", Json.Num (gc.Gc.minor_words -. pminor));
            ("major_words", Json.Num (gc.Gc.major_words -. pmajor));
            ("heap_words", Json.Num (float_of_int gc.Gc.heap_words));
          ] );
      ("counters", Json.Obj (counter_deltas ~prev snap));
      ("gauges", Json.Obj (gauge_values snap));
      ("histograms", Json.Obj hists);
    ]

let run ~path ~interval_ms stop =
  mkdir_p (Filename.dirname path);
  let oc = open_out path in
  let emit j =
    output_string oc (Json.to_string j);
    output_char oc '\n';
    flush oc
  in
  let gc0 = Gc.quick_stat () in
  emit
    (Json.Obj
       [
         ("schema", Json.Str "dut-timeline/1");
         ("interval_ms", Json.Num (float_of_int interval_ms));
         ("started_ns", Json.Num (float_of_int (Span.now_ns ())));
       ]);
  let prev = Hashtbl.create 32 in
  let prev_gc = ref (gc0.Gc.minor_words, gc0.Gc.major_words) in
  (* Sleep in short slices so [stop] never waits longer than ~50ms even
     under a coarse interval. *)
  let rec pause remaining_ms =
    if remaining_ms > 0 && not (Atomic.get stop) then begin
      Unix.sleepf (float_of_int (min remaining_ms 50) /. 1000.);
      pause (remaining_ms - 50)
    end
  in
  let rec loop () =
    pause interval_ms;
    emit (sample ~prev ~prev_gc ());
    if not (Atomic.get stop) then loop ()
  in
  (try loop () with _ -> ());
  close_out_noerr oc

let start ?(path = default_path) ~interval_ms () =
  if interval_ms < 1 then invalid_arg "Timeline.start: interval_ms < 1";
  Mutex.lock lock;
  let already = !active <> None in
  if not already then begin
    let stop = Atomic.make false in
    let domain = Domain.spawn (fun () -> run ~path ~interval_ms stop) in
    active := Some { stop; domain }
  end;
  Mutex.unlock lock;
  if already then invalid_arg "Timeline.start: sampler already running"

let stop () =
  Mutex.lock lock;
  let s = !active in
  active := None;
  Mutex.unlock lock;
  match s with
  | None -> ()
  | Some { stop; domain } ->
      Atomic.set stop true;
      Domain.join domain

let enabled () =
  Mutex.lock lock;
  let on = !active <> None in
  Mutex.unlock lock;
  on
