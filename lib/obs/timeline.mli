(** Periodic run-timeline sampling to a JSONL file ([dut-timeline/1]).

    {!start} spawns one background domain that appends a snapshot line
    every [interval_ms]: counter deltas since the previous tick, gauge
    values, histogram summaries, and [Gc.quick_stat] minor/major word
    deltas. Pool utilization falls out of the [pool.idle_ns] counter
    deltas. {!stop} signals the sampler, waits for it to emit one final
    line, and joins it — so even a run shorter than the interval gets at
    least one sample.

    Sampling is strictly out of band: the sampler only reads, so stdout
    and results are byte-identical with it on or off. Mid-flight reads
    of the per-domain metric tables are stale but never corrupt (see
    {!Metrics}).

    File layout: a header object
    [{"schema":"dut-timeline/1","interval_ms":..,"started_ns":..}]
    followed by one object per tick with [t_ns], [gc], [counters]
    (non-zero deltas), [gauges], and [histograms] members. Rendered by
    [dut obs-report --timeline]. *)

val default_path : string
(** [results/timeline.jsonl]. *)

val start : ?path:string -> interval_ms:int -> unit -> unit
(** Truncate [path] (default {!default_path}, parent directories
    created) and begin sampling. Raises [Invalid_argument] if a sampler
    is already running or [interval_ms < 1]. *)

val stop : unit -> unit
(** Stop and join the sampler, flushing a final sample. No-op when none
    is running. *)

val enabled : unit -> bool
