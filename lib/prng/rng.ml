type t = {
  gen : Xoshiro.t;
  (* Splitting is delegated to a SplitMix64 stream carried alongside the
     main generator, so child seeds never collide with output bits. *)
  splitter : Splitmix.t;
}

let m32 = 0xFFFFFFFF

let of_int64 seed =
  {
    gen = Xoshiro.create seed;
    splitter = Splitmix.create (Splitmix.mix (Int64.lognot seed));
  }

let create seed = of_int64 (Int64.of_int seed)

let split t =
  let child_seed = Splitmix.next_int64 t.splitter in
  of_int64 child_seed

(* In-place split: re-seed [child] with exactly the state [split t]
   would have built, drawing the same single word from [t]'s splitter —
   but without allocating the two generator records. The child's own
   splitter doubles as the SplitMix stream that seeds its xoshiro state
   (that is precisely what [Xoshiro.create] does with a fresh one), and
   is then re-pointed at mix(lognot child_seed), matching [of_int64]. *)
let split_into t child =
  Splitmix.next_pair t.splitter;
  let sh = Splitmix.out_hi t.splitter and sl = Splitmix.out_lo t.splitter in
  Splitmix.set_state child.splitter ~hi:sh ~lo:sl;
  Xoshiro.reseed child.gen child.splitter;
  (* splitter state := mix (lognot child_seed); lognot in the pair
     domain is xor with all-ones halves. *)
  Splitmix.mix_pair child.splitter ~hi:(sh lxor m32) ~lo:(sl lxor m32);
  Splitmix.set_state child.splitter
    ~hi:(Splitmix.out_hi child.splitter)
    ~lo:(Splitmix.out_lo child.splitter)

let split_n t k = Array.init k (fun _ -> split t)

(* A per-domain free list of scratch children for [split_into] loops:
   borrow once per chunk of work, re-seed in place once per trial. A
   free list (not a single cell) keeps nested borrowers safe. *)
let scratch_children = Domain.DLS.new_key (fun () -> ref [])

let borrow_child () =
  let cell = Domain.DLS.get scratch_children in
  match !cell with
  | [] -> create 0
  | r :: rest ->
      cell := rest;
      r

let release_child r =
  let cell = Domain.DLS.get scratch_children in
  cell := r :: !cell

let bits64 t = Xoshiro.next_int64 t.gen

(* The allocation-free draws below read the step output back as halves;
   [bits63] and [bits53] are the integer lattices behind [int] and
   [unit_float], exposed so samplers can hoist comparisons into the
   integer domain. *)

let[@inline] bits63 t =
  let g = t.gen in
  Xoshiro.step g;
  ((Xoshiro.out_hi g land 0x7FFFFFFF) lsl 32) lor Xoshiro.out_lo g

let[@inline] bits53 t =
  let g = t.gen in
  Xoshiro.step g;
  (Xoshiro.out_hi g lsl 21) lor (Xoshiro.out_lo g lsr 11)

(* Lemire's nearly-divisionless unbiased bounded generation, specialised to
   OCaml's 63-bit ints. We draw 64 bits, keep the low 63 (non-negative as an
   OCaml int), and reject into the unbiased range. *)

let[@inline] mask_for bound =
  let rec mask_of m = if m >= bound - 1 then m else mask_of ((m lsl 1) lor 1) in
  mask_of 1

(* Top-level recursion, not a local [let rec]: a local recursive
   function capturing [t]/[mask] is a fresh closure on every call
   without flambda — six minor words per draw on the hottest line in
   the tree. *)
let rec masked_int t ~mask ~bound =
  let v = bits63 t land mask in
  if v < bound then v else masked_int t ~mask ~bound

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Power-of-two mask covering the bound, then rejection: unbiased and
     fast (expected < 2 draws). *)
  masked_int t ~mask:(mask_for bound) ~bound

let ints_into t ~bound buf =
  if bound <= 0 then invalid_arg "Rng.ints_into: bound must be positive";
  let mask = mask_for bound in
  for i = 0 to Array.length buf - 1 do
    Array.unsafe_set buf i (masked_int t ~mask ~bound)
  done

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let[@inline] unit_float t =
  (* 53 random bits into [0,1). *)
  float_of_int (bits53 t) *. 0x1.0p-53

let unit_floats_into t buf =
  for i = 0 to Array.length buf - 1 do
    Array.unsafe_set buf i (float_of_int (bits53 t) *. 0x1.0p-53)
  done

let float t bound = bound *. unit_float t

let bool t =
  let g = t.gen in
  Xoshiro.step g;
  Xoshiro.out_lo g land 1 = 1

let sign t = if bool t then 1 else -1

let bernoulli t p =
  if p <= 0. then false else if p >= 1. then true else unit_float t < p

let binomial t n p =
  if n < 0 then invalid_arg "Rng.binomial: negative n";
  if p <= 0. then 0
  else if p >= 1. then n
  else if float_of_int n *. p < 32. then begin
    (* Waiting-time method: sum geometric gaps between successes. *)
    let log1mp = log1p (-.p) in
    let count = ref 0 and pos = ref 0 in
    let continue = ref true in
    while !continue do
      let u = 1. -. unit_float t in
      let gap = int_of_float (floor (log u /. log1mp)) in
      pos := !pos + gap + 1;
      if !pos <= n then incr count else continue := false
    done;
    !count
  end
  else begin
    (* Direct trial loop; only used when n*p is large and n is moderate in
       this project (players draw at most a few thousand samples). *)
    let count = ref 0 in
    for _ = 1 to n do
      if unit_float t < p then incr count
    done;
    !count
  end

let poisson t lambda =
  if lambda < 0. then invalid_arg "Rng.poisson: negative lambda";
  if lambda = 0. then 0
  else if lambda <= 30. then begin
    (* Knuth: count factors until the product of uniforms drops under
       e^-lambda. *)
    let limit = exp (-.lambda) in
    let rec go k prod =
      let prod = prod *. unit_float t in
      if prod <= limit then k else go (k + 1) prod
    in
    go 0 1.
  end
  else begin
    (* Normal approximation via Box-Muller, good to ~1% tail error at
       lambda > 30, ample for calibration workloads. *)
    let u1 = 1. -. unit_float t and u2 = unit_float t in
    let gauss = sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2) in
    max 0 (int_of_float (Float.round (lambda +. (sqrt lambda *. gauss))))
  end

let geometric t p =
  if p <= 0. || p > 1. then invalid_arg "Rng.geometric: p out of (0,1]";
  if p = 1. then 0
  else
    let u = 1. -. unit_float t in
    int_of_float (floor (log u /. log1p (-.p)))

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))

let rademacher_vector t m = Array.init m (fun _ -> sign t)

let rademacher_vector_into t z =
  for i = 0 to Array.length z - 1 do
    z.(i) <- sign t
  done
