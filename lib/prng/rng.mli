(** The project-wide random source.

    A thin, allocation-light layer over {!Xoshiro} that adds the sampling
    primitives the simulators need: bounded integers, floats, Bernoulli /
    binomial / geometric draws, shuffles — and {e splitting}, which gives
    every player in a distributed protocol its own independent stream so
    that whole protocol executions are reproducible from one root seed. *)

type t
(** Mutable random source. *)

val create : int -> t
(** [create seed] builds a source from an integer seed. Equal seeds give
    identical streams. *)

val of_int64 : int64 -> t
(** Like {!create} with the full 64-bit seed space. *)

val split : t -> t
(** [split t] derives a child source. The child's stream is independent of
    the parent's subsequent draws: used to give each player in a protocol a
    private coin sequence. *)

val split_n : t -> int -> t array
(** [split_n t k] is [k] children, one per player. *)

val split_into : t -> t -> unit
(** [split_into t child] re-seeds [child] in place with exactly the
    state [split t] would return, advancing [t]'s splitter by the same
    single word — the allocation-free split for hot loops that recycle
    one child record per trial. Any previous state of [child] is
    overwritten. *)

val borrow_child : unit -> t
(** [borrow_child ()] takes a scratch source from a per-domain free
    list (or makes one). Its state is unspecified: callers must
    {!split_into} it before drawing. Pair with {!release_child}; the
    borrow is per-domain, so a source must never cross domains or
    outlive the borrowing scope. *)

val release_child : t -> unit
(** [release_child r] returns a source obtained from {!borrow_child} to
    the domain-local free list for reuse. *)

val bits64 : t -> int64
(** 64 uniformly random bits. *)

val bits63 : t -> int
(** The low 63 bits of a 64-bit draw, as a non-negative native int:
    the integer lattice behind {!int}. One call consumes exactly one
    64-bit draw. *)

val bits53 : t -> int
(** The top 53 bits of a 64-bit draw: the integer lattice behind
    {!unit_float}, which equals [float_of_int (bits53 t) *. 2.{^-53}].
    Exposed so samplers can compare in the integer/scaled domain
    without a division or boxing. One call consumes exactly one 64-bit
    draw. *)

val int : t -> int -> int
(** [int t bound] is uniform on [0 .. bound-1], unbiased (power-of-two
    mask + rejection).

    @raise Invalid_argument if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform on [lo .. hi] inclusive.

    @raise Invalid_argument if [hi < lo]. *)

val ints_into : t -> bound:int -> int array -> unit
(** [ints_into t ~bound buf] fills [buf] with independent draws of
    [int t bound], bit-identical to that scalar loop but with the
    rejection mask hoisted out of it and no per-element closure.

    @raise Invalid_argument if [bound <= 0]. *)

val unit_floats_into : t -> float array -> unit
(** [unit_floats_into t buf] fills [buf] with independent {!unit_float}
    draws, bit-identical to the scalar loop; the flat float array
    stores unboxed. *)

val float : t -> float -> float
(** [float t bound] is uniform on [0, bound) with 53 random mantissa
    bits. *)

val unit_float : t -> float
(** Uniform on [0, 1). *)

val bool : t -> bool
(** A fair coin. *)

val sign : t -> int
(** Uniform on {-1, +1}: a Rademacher draw, used for perturbation
    vectors z. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p] (clamped to [0,1]). *)

val binomial : t -> int -> float -> int
(** [binomial t n p] counts successes among [n] independent [bernoulli p]
    trials. Uses inversion for small [n*p] and a waiting-time method
    otherwise; exact in distribution either way. *)

val poisson : t -> float -> int
(** [poisson t lambda] draws from Poisson(λ): Knuth's product method for
    λ ≤ 30, normal approximation with continuity correction (clamped at
    0) beyond. Poissonized sampling makes per-element counts independent
    — the classical device of the distribution-testing literature.

    @raise Invalid_argument if λ < 0. *)

val geometric : t -> float -> int
(** [geometric t p] is the number of failures before the first success of a
    Bernoulli([p]) sequence (support 0, 1, 2, ...).

    @raise Invalid_argument if [p <= 0. || p > 1.]. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniformly random element.

    @raise Invalid_argument on an empty array. *)

val rademacher_vector : t -> int -> int array
(** [rademacher_vector t m] is an array of [m] independent uniform
    {-1,+1} entries — the perturbation vector z of the hard family. *)

val rademacher_vector_into : t -> int array -> unit
(** [rademacher_vector_into t z] overwrites [z] with independent
    uniform {-1,+1} entries, drawing exactly the stream
    [rademacher_vector t (Array.length z)] would — the allocation-free
    variant for scratch buffers on the Monte-Carlo hot path. *)
