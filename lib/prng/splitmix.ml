type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy t = { state = t.state }

let next_state s = Int64.add s golden_gamma

(* Stafford's "mix13" finalizer, the output function of SplitMix64. *)
let mix s =
  let s = Int64.mul (Int64.logxor s (Int64.shift_right_logical s 30)) 0xBF58476D1CE4E5B9L in
  let s = Int64.mul (Int64.logxor s (Int64.shift_right_logical s 27)) 0x94D049BB133111EBL in
  Int64.logxor s (Int64.shift_right_logical s 31)

let next_int64 t =
  t.state <- next_state t.state;
  mix t.state

(* For splitting we use a second finalizer on the advanced state so the
   child's seed is decorrelated from the parent's output at the same
   state. *)
let mix_gamma s =
  let g = Int64.logor (mix (Int64.logxor s 0xA5A5A5A5A5A5A5A5L)) 1L in
  g

let split t =
  let seed = next_int64 t in
  t.state <- next_state t.state;
  let gamma_source = mix_gamma t.state in
  create (Int64.logxor seed gamma_source)
