(* SplitMix64 with the 64-bit state held as two native-int 32-bit
   halves. Without flambda, every [Int64] intermediate is a 3-word heap
   box, so the original representation allocated ~10 boxes per draw —
   the dominant term in the Monte-Carlo minor-word profile. The pair
   representation does the same arithmetic on untagged-compare-free
   immediates: zero allocation per draw, bit-identical streams (the
   pure [Int64] helpers below stay as the executable specification and
   the tests compare the two word by word).

   Pair arithmetic conventions: each half lives in [0, 2^32); native
   products of 32-bit halves fit in 63-bit ints only after splitting
   into 16-bit limbs, except where we only need the result mod 2^32 —
   there the native multiply wraps mod 2^63 and [land 0xFFFFFFFF]
   recovers the exact low 32 bits. *)

type t = {
  mutable hi : int;  (* state bits 32..63 *)
  mutable lo : int;  (* state bits 0..31 *)
  (* Last mixed output, written by [next_pair] / [mix_pair]: reading
     results through fields instead of return values keeps every call
     allocation-free (no tuples, no boxed int64). *)
  mutable out_hi : int;
  mutable out_lo : int;
}

let m32 = 0xFFFFFFFF

let golden_gamma = 0x9E3779B97F4A7C15L

let gg_hi = 0x9E3779B9

let gg_lo = 0x7F4A7C15

let[@inline] lo32 (s : int64) = Int64.to_int (Int64.logand s 0xFFFFFFFFL)

let[@inline] hi32 (s : int64) = Int64.to_int (Int64.shift_right_logical s 32)

let[@inline] to_int64 ~hi ~lo =
  Int64.logor (Int64.shift_left (Int64.of_int hi) 32) (Int64.of_int lo)

let create seed = { hi = hi32 seed; lo = lo32 seed; out_hi = 0; out_lo = 0 }

let copy t = { hi = t.hi; lo = t.lo; out_hi = t.out_hi; out_lo = t.out_lo }

let set_state t ~hi ~lo =
  t.hi <- hi;
  t.lo <- lo

let out_hi t = t.out_hi

let out_lo t = t.out_lo

(* Pure 64-bit reference transition and output function: kept verbatim
   from the original implementation. These are the specification the
   pair kernel below is tested against, and remain the right tool for
   cold paths (seeding, splitting, hashing). *)

let next_state s = Int64.add s golden_gamma

(* Stafford's "mix13" finalizer, the output function of SplitMix64. *)
let mix s =
  let s = Int64.mul (Int64.logxor s (Int64.shift_right_logical s 30)) 0xBF58476D1CE4E5B9L in
  let s = Int64.mul (Int64.logxor s (Int64.shift_right_logical s 27)) 0x94D049BB133111EBL in
  Int64.logxor s (Int64.shift_right_logical s 31)

(* mix13 multiplier constants as 32-bit halves. *)
let c1_hi = 0xBF58476D

let c1_lo = 0x1CE4E5B9

let c2_hi = 0x94D049BB

let c2_lo = 0x133111EB

(* mix13 on a half pair, result into [out_hi]/[out_lo]. The two 64-bit
   multiplies are schoolbook on 16-bit limbs for the low word; the high
   word only needs the cross products mod 2^32, where native wrap-around
   (mod 2^63) followed by masking is exact. *)
let mix_pair t ~hi ~lo =
  (* x ^= x >> 30 *)
  let l = lo lxor (((lo lsr 30) lor (hi lsl 2)) land m32)
  and h = hi lxor (hi lsr 30) in
  (* x *= 0xBF58476D1CE4E5B9 *)
  let a0 = l land 0xFFFF and a1 = l lsr 16 in
  let ll = a0 * 0xE5B9 and lh = a0 * 0x1CE4 and hl = a1 * 0xE5B9 in
  let mid = lh + hl + (ll lsr 16) in
  let l' = ((mid land 0xFFFF) lsl 16) lor (ll land 0xFFFF) in
  let h' = ((a1 * 0x1CE4) + (mid lsr 16) + (l * c1_hi) + (h * c1_lo)) land m32 in
  (* x ^= x >> 27 *)
  let l = l' lxor (((l' lsr 27) lor (h' lsl 5)) land m32)
  and h = h' lxor (h' lsr 27) in
  (* x *= 0x94D049BB133111EB *)
  let a0 = l land 0xFFFF and a1 = l lsr 16 in
  let ll = a0 * 0x11EB and lh = a0 * 0x1331 and hl = a1 * 0x11EB in
  let mid = lh + hl + (ll lsr 16) in
  let l' = ((mid land 0xFFFF) lsl 16) lor (ll land 0xFFFF) in
  let h' = ((a1 * 0x1331) + (mid lsr 16) + (l * c2_hi) + (h * c2_lo)) land m32 in
  (* x ^= x >> 31 *)
  t.out_lo <- l' lxor (((l' lsr 31) lor (h' lsl 1)) land m32);
  t.out_hi <- h' lxor (h' lsr 31)

let next_pair t =
  (* state += golden_gamma *)
  let l = t.lo + gg_lo in
  t.hi <- (t.hi + gg_hi + (l lsr 32)) land m32;
  t.lo <- l land m32;
  mix_pair t ~hi:t.hi ~lo:t.lo

let next_int64 t =
  next_pair t;
  to_int64 ~hi:t.out_hi ~lo:t.out_lo

(* For splitting we use a second finalizer on the advanced state so the
   child's seed is decorrelated from the parent's output at the same
   state. *)
let mix_gamma s =
  let g = Int64.logor (mix (Int64.logxor s 0xA5A5A5A5A5A5A5A5L)) 1L in
  g

let split t =
  let seed = next_int64 t in
  (* t.state <- next_state t.state, in the pair domain. *)
  let l = t.lo + gg_lo in
  t.hi <- (t.hi + gg_hi + (l lsr 32)) land m32;
  t.lo <- l land m32;
  let gamma_source = mix_gamma (to_int64 ~hi:t.hi ~lo:t.lo) in
  create (Int64.logxor seed gamma_source)
