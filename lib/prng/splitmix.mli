(** SplitMix64 pseudo-random number generator (Steele, Lea & Flood 2014).

    A tiny, fast, splittable generator with a 64-bit state. It passes
    BigCrush when used as a stream and, crucially for this project, supports
    {e splitting}: deriving statistically independent child generators from
    a parent. We use it both as a stand-alone generator and as the seeding
    mechanism for {!Dut_prng.Xoshiro}. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] makes a fresh generator. Distinct seeds give streams that
    are independent for all practical purposes. *)

val copy : t -> t
(** [copy t] is a generator with the same state that evolves independently
    from [t] afterwards. *)

val next_int64 : t -> int64
(** [next_int64 t] advances the state and returns 64 uniformly random
    bits. *)

val next_state : int64 -> int64
(** [next_state s] is the raw state transition (adds the golden-gamma
    constant). Exposed for testing and for stateless derivations. *)

val mix : int64 -> int64
(** [mix s] is the SplitMix64 output function (variant "mix13" of
    Stafford). A high-quality 64-bit finalizer; also useful as a hash. *)

val split : t -> t
(** [split t] advances [t] and returns a child generator whose stream is
    independent of the parent's subsequent outputs. *)

(** {1 Allocation-free pair kernel}

    The 64-bit state is stored as two native-int 32-bit halves, and the
    hot-path entry points below neither allocate nor return boxed
    values: a step writes its mixed output into the generator record,
    and the caller reads it back through {!out_hi}/{!out_lo}. The
    streams are bit-identical to {!next_int64} (which is implemented on
    this kernel); the pure {!next_state}/{!mix} functions above remain
    the executable specification the kernel is tested against. *)

val next_pair : t -> unit
(** [next_pair t] advances the state and mixes the output into the
    [out_hi]/[out_lo] fields — the allocation-free equivalent of
    {!next_int64}. *)

val out_hi : t -> int
(** Bits 32..63 of the last output produced by {!next_pair} or
    {!mix_pair}, in [0, 2{^32}). *)

val out_lo : t -> int
(** Bits 0..31 of the last output, in [0, 2{^32}). *)

val set_state : t -> hi:int -> lo:int -> unit
(** [set_state t ~hi ~lo] re-seeds [t] in place with the 64-bit state
    [hi * 2{^32} + lo]; both halves must be in [0, 2{^32}). Used to
    recycle one scratch generator across in-place splits. *)

val mix_pair : t -> hi:int -> lo:int -> unit
(** [mix_pair t ~hi ~lo] applies the mix13 finalizer to the given pair
    (the pair-domain {!mix}) without touching [t]'s state; the result
    lands in [out_hi]/[out_lo]. *)
