(** SplitMix64 pseudo-random number generator (Steele, Lea & Flood 2014).

    A tiny, fast, splittable generator with a 64-bit state. It passes
    BigCrush when used as a stream and, crucially for this project, supports
    {e splitting}: deriving statistically independent child generators from
    a parent. We use it both as a stand-alone generator and as the seeding
    mechanism for {!Dut_prng.Xoshiro}. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] makes a fresh generator. Distinct seeds give streams that
    are independent for all practical purposes. *)

val copy : t -> t
(** [copy t] is a generator with the same state that evolves independently
    from [t] afterwards. *)

val next_int64 : t -> int64
(** [next_int64 t] advances the state and returns 64 uniformly random
    bits. *)

val next_state : int64 -> int64
(** [next_state s] is the raw state transition (adds the golden-gamma
    constant). Exposed for testing and for stateless derivations. *)

val mix : int64 -> int64
(** [mix s] is the SplitMix64 output function (variant "mix13" of
    Stafford). A high-quality 64-bit finalizer; also useful as a hash. *)

val split : t -> t
(** [split t] advances [t] and returns a child generator whose stream is
    independent of the parent's subsequent outputs. *)
