(* xoshiro256++ with each of the four 64-bit state words held as two
   native-int 32-bit halves. The original [int64] representation boxed
   every intermediate (no flambda), costing hundreds of minor words per
   draw on the Monte-Carlo hot path; the pair kernel below performs the
   same adds/xors/rotates on immediates and writes its output into the
   record, so a [step] allocates nothing. xoshiro256++ needs no 64-bit
   multiply, so every pair operation is exact by construction; the
   streams are bit-identical to the reference implementation (checked
   word-by-word by the tests). *)

type t = {
  mutable s0h : int;
  mutable s0l : int;
  mutable s1h : int;
  mutable s1l : int;
  mutable s2h : int;
  mutable s2l : int;
  mutable s3h : int;
  mutable s3l : int;
  (* Last output of [step], as 32-bit halves: callers read fields
     instead of a return value so the hot path never boxes. *)
  mutable out_hi : int;
  mutable out_lo : int;
}

let m32 = 0xFFFFFFFF

let[@inline] lo32 (s : int64) = Int64.to_int (Int64.logand s 0xFFFFFFFFL)

let[@inline] hi32 (s : int64) = Int64.to_int (Int64.shift_right_logical s 32)

let[@inline] to_int64 ~hi ~lo =
  Int64.logor (Int64.shift_left (Int64.of_int hi) 32) (Int64.of_int lo)

let of_state s0 s1 s2 s3 =
  if s0 = 0L && s1 = 0L && s2 = 0L && s3 = 0L then
    invalid_arg "Xoshiro.of_state: all-zero state";
  {
    s0h = hi32 s0;
    s0l = lo32 s0;
    s1h = hi32 s1;
    s1l = lo32 s1;
    s2h = hi32 s2;
    s2l = lo32 s2;
    s3h = hi32 s3;
    s3l = lo32 s3;
    out_hi = 0;
    out_lo = 0;
  }

(* [reseed t sm] refills [t]'s state with four successive SplitMix64
   words drawn from [sm] — the in-place equivalent of [create], letting
   one generator record be re-seeded across protocol rounds without
   allocation. The all-zero guard mirrors [create]. *)
let reseed t sm =
  Splitmix.next_pair sm;
  t.s0h <- Splitmix.out_hi sm;
  t.s0l <- Splitmix.out_lo sm;
  Splitmix.next_pair sm;
  t.s1h <- Splitmix.out_hi sm;
  t.s1l <- Splitmix.out_lo sm;
  Splitmix.next_pair sm;
  t.s2h <- Splitmix.out_hi sm;
  t.s2l <- Splitmix.out_lo sm;
  Splitmix.next_pair sm;
  t.s3h <- Splitmix.out_hi sm;
  t.s3l <- Splitmix.out_lo sm;
  if
    t.s0h lor t.s0l lor t.s1h lor t.s1l lor t.s2h lor t.s2l lor t.s3h
    lor t.s3l = 0
  then begin
    (* SplitMix64 never yields four zero words in a row for any seed,
       but we keep the guard for safety: fall back to state (1,0,0,0)
       exactly as [create] always did. *)
    t.s0h <- 0;
    t.s0l <- 1
  end

let create seed =
  let sm = Splitmix.create seed in
  let t =
    {
      s0h = 0;
      s0l = 1;
      s1h = 0;
      s1l = 0;
      s2h = 0;
      s2l = 0;
      s3h = 0;
      s3l = 0;
      out_hi = 0;
      out_lo = 0;
    }
  in
  reseed t sm;
  t

let copy t =
  {
    s0h = t.s0h;
    s0l = t.s0l;
    s1h = t.s1h;
    s1l = t.s1l;
    s2h = t.s2h;
    s2l = t.s2l;
    s3h = t.s3h;
    s3l = t.s3l;
    out_hi = t.out_hi;
    out_lo = t.out_lo;
  }

(* One xoshiro256++ step: result = rotl(s0 + s3, 23) + s0, then the
   linear state transition. Pair identities used below (all halves in
   [0, 2^32), [m32] masks restore the invariant after every shift/add):
   - add: low = al + bl; carry = low lsr 32; high = ah + bh + carry
   - rotl k (k < 32): hi' = (h lsl k) lor (l lsr (32-k)),
                      lo' = (l lsl k) lor (h lsr (32-k))
   - rotl 45 = swap halves, then rotl 13
   - shl 17: hi' = (h lsl 17) lor (l lsr 15), lo' = l lsl 17 *)
let step t =
  (* s0 + s3 *)
  let al = t.s0l + t.s3l in
  let ah = (t.s0h + t.s3h + (al lsr 32)) land m32 in
  let al = al land m32 in
  (* rotl 23 *)
  let rh = ((ah lsl 23) lor (al lsr 9)) land m32 in
  let rl = ((al lsl 23) lor (ah lsr 9)) land m32 in
  (* + s0 *)
  let ol = rl + t.s0l in
  t.out_hi <- (rh + t.s0h + (ol lsr 32)) land m32;
  t.out_lo <- ol land m32;
  (* tmp = s1 << 17 *)
  let th = ((t.s1h lsl 17) lor (t.s1l lsr 15)) land m32 in
  let tl = (t.s1l lsl 17) land m32 in
  t.s2h <- t.s2h lxor t.s0h;
  t.s2l <- t.s2l lxor t.s0l;
  t.s3h <- t.s3h lxor t.s1h;
  t.s3l <- t.s3l lxor t.s1l;
  t.s1h <- t.s1h lxor t.s2h;
  t.s1l <- t.s1l lxor t.s2l;
  t.s0h <- t.s0h lxor t.s3h;
  t.s0l <- t.s0l lxor t.s3l;
  t.s2h <- t.s2h lxor th;
  t.s2l <- t.s2l lxor tl;
  (* s3 = rotl(s3, 45) *)
  let h = t.s3h and l = t.s3l in
  t.s3h <- ((l lsl 13) lor (h lsr 19)) land m32;
  t.s3l <- ((h lsl 13) lor (l lsr 19)) land m32

let out_hi t = t.out_hi

let out_lo t = t.out_lo

let next_int64 t =
  step t;
  to_int64 ~hi:t.out_hi ~lo:t.out_lo

(* Jump polynomial coefficients, as (hi, lo) half pairs of the original
   64-bit constants. *)
let jump_constants =
  [|
    (0x180EC6D3, 0x3CFD0ABA);
    (0xD5A61266, 0xF0C9392C);
    (0xA9582618, 0xE03FC9AA);
    (0x39ABDC45, 0x29B1661C);
  |]

let jump t =
  let s0h = ref 0 and s0l = ref 0 in
  let s1h = ref 0 and s1l = ref 0 in
  let s2h = ref 0 and s2l = ref 0 in
  let s3h = ref 0 and s3l = ref 0 in
  Array.iter
    (fun (ch, cl) ->
      for b = 0 to 63 do
        let bit =
          if b < 32 then (cl lsr b) land 1 else (ch lsr (b - 32)) land 1
        in
        if bit = 1 then begin
          s0h := !s0h lxor t.s0h;
          s0l := !s0l lxor t.s0l;
          s1h := !s1h lxor t.s1h;
          s1l := !s1l lxor t.s1l;
          s2h := !s2h lxor t.s2h;
          s2l := !s2l lxor t.s2l;
          s3h := !s3h lxor t.s3h;
          s3l := !s3l lxor t.s3l
        end;
        step t
      done)
    jump_constants;
  t.s0h <- !s0h;
  t.s0l <- !s0l;
  t.s1h <- !s1h;
  t.s1l <- !s1l;
  t.s2h <- !s2h;
  t.s2l <- !s2l;
  t.s3h <- !s3h;
  t.s3l <- !s3l
