(** xoshiro256++ pseudo-random number generator (Blackman & Vigna 2019).

    256 bits of state, period 2^256 − 1, excellent statistical quality and
    very fast. This is the workhorse generator behind {!Dut_prng.Rng}; it is
    seeded from {!Dut_prng.Splitmix} as its authors recommend. *)

type t
(** Mutable generator state. Never all-zero. *)

val create : int64 -> t
(** [create seed] seeds the four state words from a SplitMix64 stream
    started at [seed]. *)

val of_state : int64 -> int64 -> int64 -> int64 -> t
(** [of_state s0 s1 s2 s3] builds a generator from raw state words.

    @raise Invalid_argument if all four words are zero. *)

val copy : t -> t
(** Independent copy of the current state. *)

val next_int64 : t -> int64
(** 64 fresh uniformly random bits. *)

val jump : t -> unit
(** [jump t] advances [t] by 2^128 steps; used to derive long
    non-overlapping subsequences from a single stream. *)

(** {1 Allocation-free pair kernel}

    The state words are stored as native-int 32-bit halves and a step
    writes its output into the record, so the hot path never boxes an
    [int64]. Streams are bit-identical to {!next_int64}, which is
    implemented on this kernel. *)

val step : t -> unit
(** [step t] advances the generator one draw; the 64 output bits land in
    the fields read by {!out_hi}/{!out_lo}. Equivalent to
    {!next_int64} without the boxed return. *)

val out_hi : t -> int
(** Bits 32..63 of the last {!step} output, in [0, 2{^32}). *)

val out_lo : t -> int
(** Bits 0..31 of the last {!step} output, in [0, 2{^32}). *)

val reseed : t -> Splitmix.t -> unit
(** [reseed t sm] refills [t]'s four state words with successive draws
    from [sm], exactly as {!create} seeds a fresh generator — the
    in-place, allocation-free variant used to recycle one generator
    record across protocol rounds. *)
