(** xoshiro256++ pseudo-random number generator (Blackman & Vigna 2019).

    256 bits of state, period 2^256 − 1, excellent statistical quality and
    very fast. This is the workhorse generator behind {!Dut_prng.Rng}; it is
    seeded from {!Dut_prng.Splitmix} as its authors recommend. *)

type t
(** Mutable generator state. Never all-zero. *)

val create : int64 -> t
(** [create seed] seeds the four state words from a SplitMix64 stream
    started at [seed]. *)

val of_state : int64 -> int64 -> int64 -> int64 -> t
(** [of_state s0 s1 s2 s3] builds a generator from raw state words.

    @raise Invalid_argument if all four words are zero. *)

val copy : t -> t
(** Independent copy of the current state. *)

val next_int64 : t -> int64
(** 64 fresh uniformly random bits. *)

val jump : t -> unit
(** [jump t] advances [t] by 2^128 steps; used to derive long
    non-overlapping subsequences from a single stream. *)
