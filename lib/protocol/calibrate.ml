let null_quantile ?jobs ~trials rng ~stat ~p =
  if trials <= 0 then invalid_arg "Calibrate.null_quantile: trials <= 0";
  let draws =
    Dut_engine.Parallel.init ?jobs ~rng ~n:trials (fun r _ -> stat r)
  in
  Dut_stats.Summary.quantile draws p

let reject_count_cutoff ?jobs ~trials rng ~rejects ~level =
  if trials <= 0 then invalid_arg "Calibrate.reject_count_cutoff: trials <= 0";
  if level <= 0. || level >= 1. then
    invalid_arg "Calibrate.reject_count_cutoff: level out of (0,1)";
  let draws =
    Dut_engine.Parallel.init ?jobs ~rng ~n:trials (fun r _ -> rejects r)
  in
  (* Monomorphic int sort: same order as polymorphic [compare], without
     the per-comparison generic dispatch. *)
  Array.sort Int.compare draws;
  (* Smallest t with #(draws >= t) / trials <= level; scanning from the
     top of the sorted array. *)
  let budget = int_of_float (floor (level *. float_of_int trials)) in
  (* draws.(trials - budget - 1) is the largest value with more than
     [budget] draws at or above it; cutoff is one more. *)
  let idx = trials - budget - 1 in
  if idx < 0 then 1 else draws.(idx) + 1
