(** Referee calibration against the null hypothesis.

    A deployed tester knows the null (the uniform distribution), so it can
    set its cutoffs by simulating itself under the null — standard
    practice, and the only "training" any tester here gets. Calibration
    always runs on a dedicated RNG stream, so calibration draws never
    overlap evaluation draws.

    Null simulations run through {!Dut_engine.Parallel} with per-trial
    streams pre-split in index order, so cutoffs are bit-identical for
    every [jobs] count ([DUT_JOBS] or 1 when omitted). *)

val null_quantile :
  ?jobs:int ->
  trials:int ->
  Dut_prng.Rng.t ->
  stat:(Dut_prng.Rng.t -> float) ->
  p:float ->
  float
(** [null_quantile ~trials rng ~stat ~p] simulates the statistic under
    the null [trials] times and returns its empirical [p]-quantile.

    @raise Invalid_argument if [trials <= 0] or p ∉ [0,1]. *)

val reject_count_cutoff :
  ?jobs:int ->
  trials:int ->
  Dut_prng.Rng.t ->
  rejects:(Dut_prng.Rng.t -> int) ->
  level:float ->
  int
(** [reject_count_cutoff ~trials rng ~rejects ~level] returns the
    smallest integer cutoff [t] such that the empirical null probability
    of seeing ≥ [t] rejections is at most [level]. A referee rejecting
    iff the reject count reaches [t] then has empirical false-alarm rate
    ≤ [level]. *)
