type source = Dut_prng.Rng.t -> int

type player = index:int -> Dut_prng.Rng.t -> int array -> bool

type 'm messenger = index:int -> Dut_prng.Rng.t -> int array -> 'm

type transcript = { votes : bool array; accept : bool }

(* Per-player sample tuples live in per-domain scratch buffers: the
   uniform-q rounds borrow ONE q-word buffer per round and refill it k
   times, instead of allocating k fresh tuples per trial. The draws —
   and therefore every vote — are identical to the allocating path;
   players receive the buffer only for the duration of their call (none
   retains it). *)
let fill_samples coins source q samples =
  for j = 0 to q - 1 do
    samples.(j) <- source coins
  done

(* Uniform-q rounds share this shape: borrow once, split per-player
   coins in index order, refill, act. [with_round_buffer] keeps the
   borrow/release exception-safe without a per-player closure. *)
let with_round_buffer q use =
  let samples = Dut_engine.Scratch.borrow ~len:q in
  let result =
    try use samples
    with e ->
      Dut_engine.Scratch.release samples;
      raise e
  in
  Dut_engine.Scratch.release samples;
  result

(* On the scratch paths, per-player coins recycle ONE borrowed child
   source, re-seeded in place per player by [Rng.split_into] — the same
   child streams [Rng.split] would return, without the two fresh
   generator records per player. Players receive the coins only for the
   duration of their call (the same non-retention contract as the
   samples buffer). *)
let with_scratch_coins use =
  let coins = Dut_prng.Rng.borrow_child () in
  let result =
    try use coins
    with e ->
      Dut_prng.Rng.release_child coins;
      raise e
  in
  Dut_prng.Rng.release_child coins;
  result

let round_rates ~rng ~source ~qs ~player ~rule =
  let k = Array.length qs in
  if k <= 0 then invalid_arg "Network.round_rates: no players";
  Array.iter (fun q -> if q < 0 then invalid_arg "Network.round_rates: negative q") qs;
  (* Tuple lengths vary per player here (the async experiment), so each
     player borrows its own exact-length buffer. *)
  let votes =
    Array.init k (fun i ->
        let coins = Dut_prng.Rng.split rng in
        with_round_buffer qs.(i) (fun samples ->
            fill_samples coins source qs.(i) samples;
            player ~index:i coins samples))
  in
  { votes; accept = Rule.apply rule votes }

let round ~rng ~source ~k ~q ~player ~rule =
  if k <= 0 then invalid_arg "Network.round: k must be positive";
  if q < 0 then invalid_arg "Network.round: q must be non-negative";
  if not (Dut_engine.Scratch.reuse_enabled ()) then
    (* Legacy shape: delegate through the per-player-allocating
       asymmetric round, exactly as before the scratch arenas. *)
    round_rates ~rng ~source ~qs:(Array.make k q) ~player ~rule
  else
    with_round_buffer q (fun samples ->
        with_scratch_coins (fun coins ->
            let votes =
              Array.init k (fun i ->
                  Dut_prng.Rng.split_into rng coins;
                  fill_samples coins source q samples;
                  player ~index:i coins samples)
            in
            { votes; accept = Rule.apply rule votes }))

(* The counting referee: for count-decidable rules the verdict is
   [ones >= accept_min], so the round folds votes into one integer —
   no vote vector, no per-player coins allocation, no per-player
   branch beyond the player's own decision. Draw-for-draw identical to
   [round] (same split order, same fills). *)
let round_accept ~rng ~source ~k ~q ~player ~rule =
  if k <= 0 then invalid_arg "Network.round_accept: k must be positive";
  if q < 0 then invalid_arg "Network.round_accept: q must be non-negative";
  if
    (not (Dut_engine.Scratch.reuse_enabled ()))
    || not (Rule.count_decidable rule)
  then (round ~rng ~source ~k ~q ~player ~rule).accept
  else
    let min_ones = Rule.accept_min rule ~k in
    with_round_buffer q (fun samples ->
        with_scratch_coins (fun coins ->
            let ones = ref 0 in
            for i = 0 to k - 1 do
              Dut_prng.Rng.split_into rng coins;
              fill_samples coins source q samples;
              ones := !ones + Bool.to_int (player ~index:i coins samples)
            done;
            !ones >= min_ones))

let round_messages ~rng ~source ~k ~q ~messenger ~referee =
  if k <= 0 then invalid_arg "Network.round_messages: k must be positive";
  if q < 0 then invalid_arg "Network.round_messages: q must be non-negative";
  if not (Dut_engine.Scratch.reuse_enabled ()) then begin
    let messages =
      Array.init k (fun i ->
          let coins = Dut_prng.Rng.split rng in
          let samples = Array.init q (fun _ -> source coins) in
          messenger ~index:i coins samples)
    in
    referee messages
  end
  else
    with_round_buffer q (fun samples ->
        with_scratch_coins (fun coins ->
            let messages =
              Array.init k (fun i ->
                  Dut_prng.Rng.split_into rng coins;
                  fill_samples coins source q samples;
                  messenger ~index:i coins samples)
            in
            referee messages))

let round_fold ~rng ~source ~k ~q ~messenger ~init ~f =
  if k <= 0 then invalid_arg "Network.round_fold: k must be positive";
  if q < 0 then invalid_arg "Network.round_fold: q must be non-negative";
  with_round_buffer q (fun samples ->
      if Dut_engine.Scratch.reuse_enabled () then
        with_scratch_coins (fun coins ->
            let acc = ref init in
            for i = 0 to k - 1 do
              Dut_prng.Rng.split_into rng coins;
              fill_samples coins source q samples;
              acc := f !acc (messenger ~index:i coins samples)
            done;
            !acc)
      else begin
        let acc = ref init in
        for i = 0 to k - 1 do
          let coins = Dut_prng.Rng.split rng in
          fill_samples coins source q samples;
          acc := f !acc (messenger ~index:i coins samples)
        done;
        !acc
      end)

let of_sampler s rng = Dut_dist.Sampler.draw s rng

let of_paninski d rng = Dut_dist.Paninski.draw d rng

(* Top-level, not a local [let rec] inside the source closure: a
   capturing rejection closure would cost six minor words per draw
   without flambda. *)
let rec masked_below rng mask n =
  let v = Dut_prng.Rng.bits63 rng land mask in
  if v < n then v else masked_below rng mask n

let uniform_source ~n =
  if n <= 0 then invalid_arg "Network.uniform_source: n must be positive";
  (* [Rng.int] with the rejection mask hoisted out of the closure:
     bit-identical draws, no per-sample mask rebuild. *)
  let rec mask_of m = if m >= n - 1 then m else mask_of ((m lsl 1) lor 1) in
  let mask = mask_of 1 in
  fun rng -> masked_below rng mask n
