type source = Dut_prng.Rng.t -> int

type player = index:int -> Dut_prng.Rng.t -> int array -> bool

type 'm messenger = index:int -> Dut_prng.Rng.t -> int array -> 'm

type transcript = { votes : bool array; accept : bool }

let draw_samples rng source q = Array.init q (fun _ -> source rng)

let round_rates ~rng ~source ~qs ~player ~rule =
  let k = Array.length qs in
  if k <= 0 then invalid_arg "Network.round_rates: no players";
  Array.iter (fun q -> if q < 0 then invalid_arg "Network.round_rates: negative q") qs;
  let votes =
    Array.init k (fun i ->
        let coins = Dut_prng.Rng.split rng in
        let samples = draw_samples coins source qs.(i) in
        player ~index:i coins samples)
  in
  { votes; accept = Rule.apply rule votes }

let round ~rng ~source ~k ~q ~player ~rule =
  if k <= 0 then invalid_arg "Network.round: k must be positive";
  if q < 0 then invalid_arg "Network.round: q must be non-negative";
  round_rates ~rng ~source ~qs:(Array.make k q) ~player ~rule

let round_messages ~rng ~source ~k ~q ~messenger ~referee =
  if k <= 0 then invalid_arg "Network.round_messages: k must be positive";
  if q < 0 then invalid_arg "Network.round_messages: q must be non-negative";
  let messages =
    Array.init k (fun i ->
        let coins = Dut_prng.Rng.split rng in
        let samples = draw_samples coins source q in
        messenger ~index:i coins samples)
  in
  referee messages

let of_sampler s rng = Dut_dist.Sampler.draw s rng

let of_paninski d rng = Dut_dist.Paninski.draw d rng

let uniform_source ~n =
  if n <= 0 then invalid_arg "Network.uniform_source: n must be positive";
  fun rng -> Dut_prng.Rng.int rng n
