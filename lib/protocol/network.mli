(** The simultaneous-message network of Section 2.

    One round: each of k players privately draws q iid samples from the
    unknown distribution and sends a message to the referee, who outputs
    accept/reject. Players get independent RNG streams split from the
    round's root stream, so a whole round is a deterministic function of
    (root seed, distribution, player logic, rule) — runs are exactly
    reproducible and embarrassingly parallel. *)

type source = Dut_prng.Rng.t -> int
(** The unknown distribution, as a sampling oracle: one draw per call. *)

type player = index:int -> Dut_prng.Rng.t -> int array -> bool
(** A player's local algorithm: given its index, private coins and its
    sample tuple, vote [true] = accept. The sample tuple is a
    per-domain scratch buffer valid only for the duration of the call —
    copy it if it must outlive the vote. *)

type 'm messenger = index:int -> Dut_prng.Rng.t -> int array -> 'm
(** Generalization to r-bit (or arbitrary) messages. The same
    scratch-buffer lifetime rule as {!player} applies: the message must
    not alias the sample array. *)

type transcript = { votes : bool array; accept : bool }
(** What happened in one round. *)

val round :
  rng:Dut_prng.Rng.t ->
  source:source ->
  k:int ->
  q:int ->
  player:player ->
  rule:Rule.t ->
  transcript
(** Run one complete round with [k] players of [q] samples each.

    @raise Invalid_argument if [k <= 0] or [q < 0]. *)

val round_accept :
  rng:Dut_prng.Rng.t ->
  source:source ->
  k:int ->
  q:int ->
  player:player ->
  rule:Rule.t ->
  bool
(** [round_accept] is [(round ...).accept] — draw-for-draw the same
    round (same per-player split order, same fills) — but for
    count-decidable rules ({!Rule.count_decidable}) the referee counts
    votes against the precomputed {!Rule.accept_min} cutoff instead of
    materialising the vote vector, and the per-player coins recycle one
    scratch source re-seeded in place per player: the whole round
    allocates nothing. Falls back to {!round} verbatim for {!Rule.Custom}
    or when [Dut_engine.Scratch.set_reuse] disabled the scratch kernels.

    @raise Invalid_argument if [k <= 0] or [q < 0]. *)

val round_rates :
  rng:Dut_prng.Rng.t ->
  source:source ->
  qs:int array ->
  player:player ->
  rule:Rule.t ->
  transcript
(** Asymmetric-cost variant (Section 6.2): player i draws [qs.(i)]
    samples. *)

val round_messages :
  rng:Dut_prng.Rng.t ->
  source:source ->
  k:int ->
  q:int ->
  messenger:'m messenger ->
  referee:('m array -> bool) ->
  bool
(** General-message round: players send values of any type; the referee
    is an arbitrary function of the message vector. Used by the r-bit
    protocol. *)

val round_fold :
  rng:Dut_prng.Rng.t ->
  source:source ->
  k:int ->
  q:int ->
  messenger:'m messenger ->
  init:'a ->
  f:('a -> 'm -> 'a) ->
  'a
(** Streaming variant of {!round_messages} for referees that reduce the
    message vector left-to-right: message i is folded into the
    accumulator as soon as player i sends it, so no k-length message
    array is materialized. Players draw from streams split in index
    order — exactly the streams {!round_messages} would give them — so
    [round_fold ~init:[] ~f:(fun acc m -> m :: acc)] reproduces the
    message vector (reversed) bit for bit. Used by the single-sample
    protocol, whose referee is a running collision count. *)

val of_sampler : Dut_dist.Sampler.t -> source
(** View a prepared alias sampler as a source. *)

val of_paninski : Dut_dist.Paninski.t -> source
(** View a hard-family member as a source (O(1) direct draws). *)

val uniform_source : n:int -> source
(** The null hypothesis U_n as a source. *)
