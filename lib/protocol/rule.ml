type t =
  | And
  | Or
  | Reject_threshold of int
  | Accept_at_least of int
  | Majority
  | Custom of string * (bool array -> bool)

let count_ones bits =
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 bits

let apply rule bits =
  let k = Array.length bits in
  if k = 0 then invalid_arg "Rule.apply: no players";
  match rule with
  | And -> count_ones bits = k
  | Or -> count_ones bits > 0
  | Reject_threshold t ->
      if t <= 0 then invalid_arg "Rule.apply: threshold must be positive";
      k - count_ones bits < t
  | Accept_at_least c ->
      if c <= 0 then invalid_arg "Rule.apply: count must be positive";
      count_ones bits >= c
  | Majority -> 2 * count_ones bits > k
  | Custom (_, f) -> f bits

let count_decidable = function Custom _ -> false | _ -> true

let accept_min rule ~k =
  if k <= 0 then invalid_arg "Rule.accept_min: no players";
  match rule with
  | And -> k
  | Or -> 1
  | Reject_threshold t ->
      if t <= 0 then invalid_arg "Rule.accept_min: threshold must be positive";
      k - t + 1
  | Accept_at_least c ->
      if c <= 0 then invalid_arg "Rule.accept_min: count must be positive";
      c
  | Majority -> (k / 2) + 1
  | Custom _ -> invalid_arg "Rule.accept_min: custom rule has no count cutoff"

let name = function
  | And -> "AND"
  | Or -> "OR"
  | Reject_threshold t -> Printf.sprintf "reject>=%d" t
  | Accept_at_least c -> Printf.sprintf "accept>=%d" c
  | Majority -> "majority"
  | Custom (n, _) -> n

let is_local = function
  | And | Reject_threshold 1 -> true
  | Or | Reject_threshold _ | Accept_at_least _ | Majority | Custom _ -> false
