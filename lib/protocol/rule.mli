(** Referee decision rules (Section 2).

    Each of the k players sends a bit x_i ∈ {0,1} (1 = "accept"); the
    referee applies f : {0,1}^k → {0,1}. The paper's central question is
    how much the {e shape} of f costs:

    - {!And} — the local-decision rule: the network rejects as soon as one
      node raises an alarm (Theorem 1.2: expensive);
    - {!Reject_threshold} T — reject iff at least T nodes reject, i.e.
      f(x) = 1 exactly when Σ x_i ≥ k − T + 1 (Theorem 1.3; the paper
      writes the acceptance condition as Σ x_i ≥ k − t);
    - {!Majority} — a calibrated count cutoff, the shape of the optimal
      tester (Theorem 1.1);
    - {!Custom} — an arbitrary f, the fully general referee. *)

type t =
  | And  (** accept iff every bit is 1 *)
  | Or  (** accept iff some bit is 1 *)
  | Reject_threshold of int
      (** [Reject_threshold t]: reject iff at least [t] zeros; accepts
          when t > number of players that rejected. [Reject_threshold 1]
          coincides with {!And}. *)
  | Accept_at_least of int
      (** accept iff at least that many ones (a count cutoff). *)
  | Majority  (** accept iff ones > k/2 *)
  | Custom of string * (bool array -> bool)
      (** arbitrary decision function, with a display name *)

val apply : t -> bool array -> bool
(** [apply rule bits] — the referee's output; [true] = accept. [bits.(i)]
    is player i's vote, [true] = accept.

    @raise Invalid_argument on an empty vote vector, or a non-positive
    threshold. *)

val count_decidable : t -> bool
(** [true] when the referee's verdict depends on the votes only through
    the number of ones — every rule except {!Custom}. Such rules reduce
    to a single precomputed cutoff (see {!accept_min}), so a round can
    fold votes into one counter instead of materialising the vector. *)

val accept_min : t -> k:int -> int
(** [accept_min rule ~k] is the cutoff c such that, for [k] players,
    [apply rule bits = (count of ones >= c)]. The branchless-referee
    form: precompute once per round, then one integer compare. For
    {!Reject_threshold} the cutoff may be ≤ 0 (always accept).

    @raise Invalid_argument on {!Custom}, [k <= 0], or a non-positive
    threshold/count (mirroring {!apply}). *)

val name : t -> string
(** Human-readable name for tables and logs. *)

val is_local : t -> bool
(** The locality notion of the introduction: [true] for {!And} (and
    [Reject_threshold 1]) — any single node can force rejection, so no
    decision collection logic is needed beyond an alarm wire. *)
