module J = Dut_obs.Json

let m_duplicates = Dut_obs.Metrics.counter "service.duplicate_responses"

(* Re-key an input line with the client-assigned id. The line is parsed
   (not spliced textually) so a malformed query is caught here and
   answered locally — the server never sees it, and the output still
   carries one response per input line. *)
let prepare i line =
  match J.parse line with
  | exception J.Malformed msg ->
      Error (Query.error_payload ("bad query: " ^ msg))
  | J.Obj kvs ->
      let kvs = List.remove_assoc "id" kvs in
      Ok (J.to_string (J.Obj (("id", J.int i) :: kvs)))
  | _ -> Error (Query.error_payload "bad query: expected a JSON object")

let write_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd b !off (len - !off)
  done

let run ?timeout_s ~socket ~out lines =
  let lines = List.filter (fun l -> String.trim l <> "") lines in
  let n = List.length lines in
  let prepared = List.mapi prepare lines in
  let responses = Array.make n None in
  (* Local errors occupy their slot up front; only the rest go out. *)
  let to_send =
    List.concat
      (List.mapi
         (fun i p ->
           match p with
           | Ok line -> [ line ]
           | Error payload ->
               responses.(i) <- Some (Query.response_line ~id:i payload);
               [])
         prepared)
  in
  let outstanding = ref (List.length to_send) in
  let timed_out = ref false in
  let connect_and_exchange () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        Unix.connect fd (Unix.ADDR_UNIX socket);
        write_all fd (String.concat "" (List.map (fun l -> l ^ "\n") to_send));
        let buf = Bytes.create 65536 in
        let acc = Buffer.create 4096 in
        let record line =
          if String.trim line <> "" then
            match J.parse line with
            | exception J.Malformed _ -> ()
            | j -> (
                match J.field_opt j "id" with
                | Some (J.Num f)
                  when Float.is_integer f
                       && int_of_float f >= 0
                       && int_of_float f < n -> (
                    let id = int_of_float f in
                    match responses.(id) with
                    | None ->
                        responses.(id) <- Some line;
                        decr outstanding
                    | Some _ ->
                        (* A second answer for a filled slot must not
                           decrement [outstanding] (that would end the
                           wait early and drop a sibling's answer) —
                           it is a counted, logged no-op. *)
                        Dut_obs.Metrics.incr m_duplicates;
                        Printf.eprintf
                          "dut query: duplicate response for id %d (ignored)\n%!"
                          id)
                | _ -> ())
        in
        (* Absolute deadline across the whole read phase: without one, a
           server that drops a response would park this loop in read(2)
           forever — the bug the --timeout-s flag exists to bound. *)
        let deadline =
          Option.map (fun s -> Unix.gettimeofday () +. s) timeout_s
        in
        while !outstanding > 0 && not !timed_out do
          let readable =
            match deadline with
            | None -> true
            | Some d ->
                let remaining_ms =
                  int_of_float (ceil ((d -. Unix.gettimeofday ()) *. 1000.))
                in
                if remaining_ms <= 0 then false
                else
                  (Poll.wait ~timeout_ms:remaining_ms [| (fd, Poll.rd) |]).(0)
                    .Poll.read
          in
          if not readable then timed_out := true
          else
            match Unix.read fd buf 0 (Bytes.length buf) with
            | 0 -> failwith "server closed the connection before responding"
            | len -> (
                Buffer.add_subbytes acc buf 0 len;
                let data = Buffer.contents acc in
                match String.rindex_opt data '\n' with
                | None -> ()
                | Some last ->
                    Buffer.clear acc;
                    Buffer.add_string acc
                      (String.sub data (last + 1)
                         (String.length data - last - 1));
                    List.iter record
                      (String.split_on_char '\n' (String.sub data 0 last)))
        done)
  in
  match (if !outstanding > 0 then connect_and_exchange ()) with
  | exception Unix.Unix_error (err, _, _) ->
      Printf.eprintf "dut query: %s: %s\n%!" socket (Unix.error_message err);
      2
  | exception Failure msg ->
      Printf.eprintf "dut query: %s\n%!" msg;
      2
  | () ->
      if !timed_out then
        Printf.eprintf
          "dut query: timed out after %gs with %d response(s) missing\n%!"
          (Option.value timeout_s ~default:0.)
          !outstanding;
      let all_ok = ref true in
      Array.iteri
        (fun i r ->
          match r with
          | Some line ->
              output_string out (line ^ "\n");
              let ok =
                match J.parse line with
                | exception J.Malformed _ -> false
                | j -> (
                    match J.field_opt j "status" with
                    | Some (J.Str "ok") -> true
                    | _ -> false)
              in
              if not ok then all_ok := false
          | None ->
              (* Only reachable on timeout: the read loop otherwise
                 returns once every outstanding id is filled. *)
              output_string out
                (Query.response_line ~id:i
                   (Query.error_payload "no response received")
                ^ "\n");
              all_ok := false)
        responses;
      flush out;
      if !timed_out then 2 else if !all_ok then 0 else 1
