(** The [dut query] side of the wire: send a batch of query lines to a
    running server and print the responses in request order.

    The client owns request ids: input line [i] (blank lines skipped)
    becomes the request with [id = i], and the output is exactly one
    response line per input line, ordered by id — so replaying the same
    batch file always produces the same bytes, which is what the CI
    smoke diffs. Lines that fail to parse client-side are answered
    locally with an [error] response (never sent), mirroring the
    server's isolation semantics.

    A duplicate response for an already-filled id is a counted
    ([service.duplicate_responses]), logged no-op — it can neither
    overwrite the first answer nor end the wait early. *)

val run :
  ?timeout_s:float -> socket:string -> out:out_channel -> string list -> int
(** [run ~socket ~out lines] sends every non-blank line, waits for all
    responses, prints them to [out] in id order, and returns the exit
    code: [0] when every response has [status "ok"], [1] when any
    response is an error, [2] when the server cannot be reached, closes
    the connection early, or — with [timeout_s] — fails to answer every
    id before the deadline (after printing a diagnostic to stderr).
    Without [timeout_s] the wait is unbounded; on expiry every
    unanswered slot is filled with the
    [{"status":"error","error":"no response received"}] payload so the
    output still carries one line per input line. *)
