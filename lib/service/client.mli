(** The [dut query] side of the wire: send a batch of query lines to a
    running server and print the responses in request order.

    The client owns request ids: input line [i] (blank lines skipped)
    becomes the request with [id = i], and the output is exactly one
    response line per input line, ordered by id — so replaying the same
    batch file always produces the same bytes, which is what the CI
    smoke diffs. Lines that fail to parse client-side are answered
    locally with an [error] response (never sent), mirroring the
    server's isolation semantics. *)

val run : socket:string -> out:out_channel -> string list -> int
(** [run ~socket ~out lines] sends every non-blank line, waits for all
    responses, prints them to [out] in id order, and returns the exit
    code: [0] when every response has [status "ok"], [1] when any
    response is an error, [2] when the server cannot be reached or
    closes the connection early (after printing a diagnostic to
    stderr). *)
