/* poll(2) binding for the service event loops.
 *
 * Unix.select is capped at FD_SETSIZE (1024) descriptors; a server
 * meant to hold thousands of idle client connections needs poll.
 * On Unix an OCaml Unix.file_descr is an immediate int, so the fds
 * cross the boundary as a plain int array and no unixsupport.h glue
 * is required.
 *
 * Interest and readiness travel as one byte per fd (bit 0 = readable,
 * bit 1 = writable); readiness folds POLLHUP/POLLERR/POLLNVAL into
 * "readable" so the OCaml side discovers the condition from the read
 * it was about to do anyway.
 */

#include <caml/mlvalues.h>
#include <caml/memory.h>
#include <caml/fail.h>
#include <caml/threads.h>

#include <errno.h>
#include <poll.h>
#include <stdlib.h>
#include <string.h>

#define DUT_POLL_RD 1
#define DUT_POLL_WR 2

CAMLprim value dut_poll_stub(value v_fds, value v_events, value v_revents,
                             value v_timeout_ms)
{
  CAMLparam4(v_fds, v_events, v_revents, v_timeout_ms);
  nfds_t n = Wosize_val(v_fds);
  int timeout = Int_val(v_timeout_ms);
  struct pollfd *pfds = NULL;
  int ready;

  if (n > 0) {
    pfds = malloc(n * sizeof(struct pollfd));
    if (pfds == NULL) caml_failwith("poll: out of memory");
    for (nfds_t i = 0; i < n; i++) {
      unsigned char ev = Bytes_val(v_events)[i];
      pfds[i].fd = Int_val(Field(v_fds, i));
      pfds[i].events = ((ev & DUT_POLL_RD) ? POLLIN : 0)
                     | ((ev & DUT_POLL_WR) ? POLLOUT : 0);
      pfds[i].revents = 0;
    }
  }

  /* The heap pointers above are dead past this point: the GC may move
   * the arrays while the lock is down, so v_revents is re-read after
   * reacquisition. */
  caml_release_runtime_system();
  ready = poll(pfds, n, timeout);
  caml_acquire_runtime_system();

  if (ready < 0) {
    int err = errno;
    free(pfds);
    if (err == EINTR) CAMLreturn(Val_int(0));
    caml_failwith("poll: system call failed");
  }

  for (nfds_t i = 0; i < n; i++) {
    short re = pfds[i].revents;
    unsigned char out = 0;
    if (re & (POLLIN | POLLHUP | POLLERR | POLLNVAL)) out |= DUT_POLL_RD;
    if (re & (POLLOUT | POLLERR)) out |= DUT_POLL_WR;
    Bytes_val(v_revents)[i] = out;
  }
  free(pfds);
  CAMLreturn(Val_int(ready));
}
