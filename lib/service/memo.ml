let schema = "dut-memo/1"

let default_dir = Filename.concat "results" "memo"

let m_hits = Dut_obs.Metrics.counter "cache.hits"

let m_misses = Dut_obs.Metrics.counter "cache.misses"

let m_stores = Dut_obs.Metrics.counter "cache.stores"

let m_evictions = Dut_obs.Metrics.counter "cache.evictions"

let m_write_failures = Dut_obs.Metrics.counter "cache.write_failures"

let m_store_races = Dut_obs.Metrics.counter "cache.store_races"

(* Lookup and persist latency, hit or miss: the cost of asking the
   cache is what a caller pays either way, and the disk tier dominating
   p99 is exactly what these exist to make visible. *)
let h_load_ns = Dut_obs.Metrics.histogram "memo.load_ns"

let h_store_ns = Dut_obs.Metrics.histogram "memo.store_ns"

type entry = { payload : string; mutable last_use : int }

type t = {
  capacity : int;
  dir : string option;
  table : (string, entry) Hashtbl.t;  (* key text -> entry *)
  mutable clock : int;  (* bumped per touch; orders LRU eviction *)
}

let create ?(capacity = 512) ?(dir = None) () =
  if capacity < 1 then invalid_arg "Memo.create: capacity < 1";
  { capacity; dir; table = Hashtbl.create 64; clock = 0 }

let entries t = Hashtbl.length t.table

let touch t e =
  t.clock <- t.clock + 1;
  e.last_use <- t.clock

(* Eviction scans for the least-recently-used key: O(entries), but only
   on overflow of a front that is small by construction — correctness
   never depends on what gets evicted (the disk tier still holds it). *)
let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key e acc ->
        match acc with
        | Some (_, best) when best <= e.last_use -> acc
        | _ -> Some (key, e.last_use))
      t.table None
  in
  match victim with
  | Some (key, _) ->
      Hashtbl.remove t.table key;
      Dut_obs.Metrics.incr m_evictions
  | None -> ()

let put_front t ~key payload =
  if not (Hashtbl.mem t.table key) then begin
    if Hashtbl.length t.table >= t.capacity then evict_lru t;
    let e = { payload; last_use = 0 } in
    touch t e;
    Hashtbl.add t.table key e
  end

(* -- Disk tier ---------------------------------------------------------- *)

let path_of_key ~dir key =
  Filename.concat dir (Digest.to_hex (Digest.string key) ^ ".json")

let header ~key ~bytes =
  Dut_obs.Json.Obj
    [
      ("schema", Dut_obs.Json.Str schema);
      ("key", Dut_obs.Json.Str key);
      ("bytes", Dut_obs.Json.int bytes);
    ]

(* [None] on any malformation or key mismatch: an entry that cannot be
   proven to answer exactly this key is treated as absent — the hash
   collision / corruption path costs a recomputation, never a wrong
   byte. *)
let disk_find ~dir key =
  let file = path_of_key ~dir key in
  match
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let header_line = input_line ic in
        let rest_len = in_channel_length ic - pos_in ic in
        (header_line, really_input_string ic rest_len))
  with
  | exception (Sys_error _ | End_of_file) -> None
  | header_line, payload -> (
      match Dut_obs.Json.parse header_line with
      | exception Dut_obs.Json.Malformed _ -> None
      | j -> (
          let open Dut_obs.Json in
          match
            want_str j "schema" = schema
            && want_str j "key" = key
            && int_of_float (want_num j "bytes") = String.length payload
          with
          | exception Malformed _ -> None
          | false -> None
          | true -> Some payload))

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Write-once publication: the content lands in a private temp file and
   is published with [Unix.link], which fails with EEXIST if any other
   process (another shard of the fleet) already published the key. The
   loser's bytes are discarded — both writers computed the same
   canonical answer, so either copy serves — and the collision is
   tallied as [cache.store_races], never as a write failure. link keeps
   write_atomic's guarantee too: readers see a complete entry or none. *)
let publish_once ~path content =
  let dir = Filename.dirname path in
  mkdir_p dir;
  let tmp = Filename.temp_file ~temp_dir:dir "memo" ".tmp" in
  let remove_tmp () = try Sys.remove tmp with Sys_error _ -> () in
  match
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc content);
    Unix.link tmp path
  with
  | () ->
      remove_tmp ();
      `Won
  | exception Unix.Unix_error (Unix.EEXIST, _, _) ->
      remove_tmp ();
      `Lost
  | exception (Unix.Unix_error _ | Sys_error _) ->
      remove_tmp ();
      `Failed

let disk_store ~dir ~key payload =
  let path = path_of_key ~dir key in
  if Sys.file_exists path then
    (* Another process published this key since our lookup missed. *)
    Dut_obs.Metrics.incr m_store_races
  else
    let content =
      Dut_obs.Json.to_string (header ~key ~bytes:(String.length payload))
      ^ "\n" ^ payload
    in
    match publish_once ~path content with
    | `Won -> ()
    | `Lost -> Dut_obs.Metrics.incr m_store_races
    | `Failed ->
        Dut_obs.Metrics.incr m_write_failures;
        Printf.eprintf "dut: cannot persist memo entry: %s\n%!" path

(* -- Public API --------------------------------------------------------- *)

let find t ~key =
  let started = Dut_obs.Span.now_ns () in
  let result =
    match Hashtbl.find_opt t.table key with
    | Some e ->
        touch t e;
        Dut_obs.Metrics.incr m_hits;
        Some e.payload
    | None -> (
        match Option.bind t.dir (fun dir -> disk_find ~dir key) with
        | Some payload ->
            put_front t ~key payload;
            Dut_obs.Metrics.incr m_hits;
            Some payload
        | None ->
            Dut_obs.Metrics.incr m_misses;
            None)
  in
  Dut_obs.Metrics.observe h_load_ns (Dut_obs.Span.now_ns () - started);
  result

let store t ~key payload =
  let started = Dut_obs.Span.now_ns () in
  Dut_obs.Metrics.incr m_stores;
  put_front t ~key payload;
  (match t.dir with Some dir -> disk_store ~dir ~key payload | None -> ());
  Dut_obs.Metrics.observe h_store_ns (Dut_obs.Span.now_ns () - started)
