(** Persistent, content-addressed result cache for the query server.

    Generalises the checkpoint store's key discipline: the key {e text}
    is the query's canonical JSON plus the provenance stamp (git
    describe), so everything the answer depends on — parameters, seed,
    trials, adaptive/warm-start, code version — is in the key, and a
    hit can be replayed byte for byte. Keys are hashed (MD5, hex) into
    file names; the key text is stored alongside the payload and
    verified on load, so a hash collision degrades to a miss, never to
    a wrong answer.

    Two tiers:
    - an in-memory LRU front (bounded; [cache.evictions] counts
      overflow), and
    - an optional on-disk store (one file per key under [dir], written
      once: the content lands in a temp file and is published with
      [Unix.link], so a crash can never expose a truncated entry and
      concurrent stores of the same key — shards of a fleet sharing
      [dir] — leave exactly one intact winner; a malformed or
      mismatched file reads as a miss).

    Lookups tally [cache.hits] / [cache.misses]; stores tally
    [cache.stores], and a store that loses the write-once race (or
    finds the key already published) tallies [cache.store_races] — a
    benign event, both writers held byte-identical payloads. The cache
    is {e not} thread-safe within a process: the server calls it only
    from the submitting domain (lookups before a batch is dispatched,
    stores after it joins); cross-{e process} sharing of [dir] is safe
    by the write-once discipline. *)

type t

val schema : string
(** ["dut-memo/1"], the header schema of on-disk entries. *)

val default_dir : string
(** ["results/memo"]. *)

val create : ?capacity:int -> ?dir:string option -> unit -> t
(** [create ()] is a memory-only cache holding up to [capacity]
    (default 512) payloads. [~dir:(Some d)] adds the persistent tier
    under [d] (created on first store). *)

val find : t -> key:string -> string option
(** The payload stored under [key], from the LRU front if present, else
    from disk (re-promoting into the front). Tallies one [cache.hits]
    or [cache.misses]. *)

val store : t -> key:string -> string -> unit
(** Publish [payload] under [key] in both tiers. The disk tier is
    write-once: if another process already published the key, the store
    is a counted no-op ([cache.store_races]) and the existing file is
    left untouched. A disk-tier write failure (read-only or full disk)
    degrades to a one-line stderr warning and a [cache.write_failures]
    tally: the server keeps answering, merely without persistence. *)

val entries : t -> int
(** Number of payloads in the in-memory front (tests). *)
