type interest = { read : bool; write : bool }

let rd = { read = true; write = false }

let rw = { read = true; write = true }

external poll_stub :
  Unix.file_descr array -> Bytes.t -> Bytes.t -> int -> int = "dut_poll_stub"

let byte_of { read; write } =
  Char.chr ((if read then 1 else 0) lor if write then 2 else 0)

let wait ~timeout_ms entries =
  let n = Array.length entries in
  let fds = Array.map fst entries in
  let events = Bytes.create n in
  Array.iteri (fun i (_, it) -> Bytes.set events i (byte_of it)) entries;
  let revents = Bytes.make n '\000' in
  let _ready = poll_stub fds events revents timeout_ms in
  Array.init n (fun i ->
      let b = Char.code (Bytes.get revents i) in
      { read = b land 1 <> 0; write = b land 2 <> 0 })
