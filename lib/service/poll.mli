(** Thin poll(2) binding for the service event loops.

    [Unix.select] is limited to FD_SETSIZE (1024 on Linux) descriptors
    — one busy [dut bench --service] run blows past it. poll carries no
    such cap, so the server, router and load generator all wait on this
    instead. The runtime lock is released for the duration of the
    blocking call; EINTR reads as "nothing ready" so a SIGINT lands at
    the loop's [Runner.interrupted] check. *)

type interest = { read : bool; write : bool }

val rd : interest
(** Readable only — the common case for idle connections. *)

val rw : interest
(** Readable and writable — a connection with output queued. *)

val wait : timeout_ms:int -> (Unix.file_descr * interest) array -> interest array
(** [wait ~timeout_ms entries] polls every descriptor for its declared
    interest and returns per-entry readiness, index-aligned with the
    input. Hangups and errors report as readable (the subsequent read
    returns 0 or raises, which is how the caller learns). A timeout or
    EINTR returns all-false readiness. [timeout_ms < 0] blocks
    indefinitely. *)
