type graph_family = Clique | Matching | Bipartite | Regular of int

type tester =
  | And
  | Threshold of int
  | Graph of { family : graph_family; t : int }

type t =
  | Bound of { name : string; params : (string * float) list }
  | Power of {
      tester : tester;
      ell : int;
      eps : float;
      k : int;
      q : int;
      trials : int;
      level : float;
      seed : int;
      adaptive : bool;
    }
  | Critical of {
      tester : tester;
      ell : int;
      eps : float;
      k : int;
      trials : int;
      level : float;
      seed : int;
      adaptive : bool;
      hi : int option;
      guess : int option;
    }

module J = Dut_obs.Json

(* -- Bound dispatch ----------------------------------------------------- *)

(* Each bound pulls its named parameters out of the (sorted) params
   list; a missing one fails with the field name, which the server
   turns into an error response for just that request. *)
let need params name =
  match List.assoc_opt name params with
  | Some v -> v
  | None -> failwith (Printf.sprintf "bound: missing parameter %S" name)

let need_int params name =
  let f = need params name in
  let i = int_of_float f in
  if Float.of_int i <> f || i <= 0 then
    failwith (Printf.sprintf "bound: parameter %S must be a positive integer" name);
  i

let bounds_table :
    (string * ((string * float) list -> float)) list =
  let open Dut_core.Bounds in
  [
    ("act_learning_nodes", fun p -> act_learning_nodes ~n:(need_int p "n") ~eps:(need p "eps") ~bits:(need_int p "bits"));
    ("act_single_sample_nodes", fun p -> act_single_sample_nodes ~n:(need_int p "n") ~eps:(need p "eps") ~bits:(need_int p "bits"));
    ("centralized", fun p -> centralized ~n:(need_int p "n") ~eps:(need p "eps"));
    ("divergence_budget", fun p -> divergence_budget ~q:(need_int p "q") ~n:(need_int p "n") ~eps:(need p "eps"));
    ("divergence_requirement", fun p -> divergence_requirement ~k:(need_int p "k") ~delta:(need p "delta"));
    ("fmo_and_upper", fun p -> fmo_and_upper ~n:(need_int p "n") ~k:(need_int p "k") ~eps:(need p "eps"));
    ("fmo_threshold_upper", fun p -> fmo_threshold_upper ~n:(need_int p "n") ~k:(need_int p "k") ~eps:(need p "eps"));
    ("thm11_lower", fun p -> thm11_lower ~n:(need_int p "n") ~k:(need_int p "k") ~eps:(need p "eps"));
    ("thm12_and_lower", fun p -> thm12_and_lower ~n:(need_int p "n") ~k:(need_int p "k") ~eps:(need p "eps"));
    ("thm13_threshold_lower", fun p -> thm13_threshold_lower ~n:(need_int p "n") ~k:(need_int p "k") ~eps:(need p "eps") ~t:(need_int p "t"));
    ("thm14_learning_nodes", fun p -> thm14_learning_nodes ~n:(need_int p "n") ~q:(need_int p "q"));
    ("thm61_lower", fun p -> thm61_lower ~n:(need_int p "n") ~k:(need_int p "k") ~eps:(need p "eps"));
    ("thm64_rbit_lower", fun p -> thm64_rbit_lower ~n:(need_int p "n") ~k:(need_int p "k") ~eps:(need p "eps") ~r:(need_int p "r"));
  ]

let bound_names = List.map fst bounds_table

(* -- Canonical JSON ----------------------------------------------------- *)

let family_fields = function
  | Clique -> [ ("family", J.Str "clique") ]
  | Matching -> [ ("family", J.Str "matching") ]
  | Bipartite -> [ ("family", J.Str "bipartite") ]
  | Regular degree -> [ ("family", J.Str "regular"); ("degree", J.int degree) ]

let tester_fields = function
  | And -> [ ("tester", J.Str "and") ]
  | Threshold t -> [ ("tester", J.Str "threshold"); ("t", J.int t) ]
  | Graph { family; t } ->
      (("tester", J.Str "graph") :: family_fields family) @ [ ("t", J.int t) ]

let to_json = function
  | Bound { name; params } ->
      J.Obj
        [
          ("kind", J.Str "bound");
          ("name", J.Str name);
          ("params", J.Obj (List.map (fun (k, v) -> (k, J.Num v)) params));
        ]
  | Power { tester; ell; eps; k; q; trials; level; seed; adaptive } ->
      J.Obj
        ([ ("kind", J.Str "power") ]
        @ tester_fields tester
        @ [
            ("ell", J.int ell);
            ("eps", J.Num eps);
            ("k", J.int k);
            ("q", J.int q);
            ("trials", J.int trials);
            ("level", J.Num level);
            ("seed", J.int seed);
            ("adaptive", J.Bool adaptive);
          ])
  | Critical { tester; ell; eps; k; trials; level; seed; adaptive; hi; guess }
    ->
      J.Obj
        ([ ("kind", J.Str "critical") ]
        @ tester_fields tester
        @ [
            ("ell", J.int ell);
            ("eps", J.Num eps);
            ("k", J.int k);
            ("trials", J.int trials);
            ("level", J.Num level);
            ("seed", J.int seed);
            ("adaptive", J.Bool adaptive);
          ]
        @ (match hi with Some h -> [ ("hi", J.int h) ] | None -> [])
        @ match guess with Some g -> [ ("guess", J.int g) ] | None -> [])

let canonical q = J.to_string (to_json q)

(* -- Parsing ------------------------------------------------------------ *)

(* Defaults match the fast profile's Monte-Carlo settings, so a bare
   {"kind":"power",...} query answers the same question the batch CLI
   would under `--profile fast`. *)
let default_trials = 120

let default_level = 0.72

let default_seed = 2019

let get_int j name =
  let f = J.want_num j name in
  let i = int_of_float f in
  if Float.of_int i <> f then
    raise (J.Malformed (Printf.sprintf "field %S: expected an integer" name));
  i

let get_int_opt j name ~default =
  match J.field_opt j name with Some _ -> get_int j name | None -> default

let get_num_opt j name ~default =
  match J.field_opt j name with Some _ -> J.want_num j name | None -> default

let get_bool_opt j name ~default =
  match J.field_opt j name with Some _ -> J.want_bool j name | None -> default

let positive name i =
  if i <= 0 then
    raise (J.Malformed (Printf.sprintf "field %S: must be positive" name));
  i

let parse_family j =
  match J.want_str j "family" with
  | "clique" -> Clique
  | "matching" -> Matching
  | "bipartite" -> Bipartite
  | "regular" ->
      let degree = positive "degree" (get_int j "degree") in
      (* Odd degrees constrain q's parity (a d-regular graph needs q*d
         even), which a critical-q bisection cannot honour; the wire
         language keeps to even degrees. *)
      if degree land 1 = 1 then
        raise (J.Malformed "field \"degree\": must be even");
      Regular degree
  | s ->
      raise
        (J.Malformed
           (Printf.sprintf
              "field \"family\": unknown family %S (clique|matching|bipartite|regular)"
              s))

let parse_tester j =
  match J.want_str j "tester" with
  | "and" -> And
  | "threshold" -> Threshold (positive "t" (get_int j "t"))
  | "graph" ->
      let family = parse_family j in
      Graph { family; t = positive "t" (get_int_opt j "t" ~default:1) }
  | s ->
      raise
        (J.Malformed
           (Printf.sprintf
              "field \"tester\": unknown tester %S (and|threshold|graph)" s))

let parse_mc j =
  let ell = positive "ell" (get_int j "ell") in
  let eps = J.want_num j "eps" in
  if not (eps > 0. && eps < 1.) then
    raise (J.Malformed "field \"eps\": must be in (0, 1)");
  let k = positive "k" (get_int j "k") in
  let trials = positive "trials" (get_int_opt j "trials" ~default:default_trials) in
  let level = get_num_opt j "level" ~default:default_level in
  if not (level > 0. && level < 1.) then
    raise (J.Malformed "field \"level\": must be in (0, 1)");
  let seed = get_int_opt j "seed" ~default:default_seed in
  let adaptive = get_bool_opt j "adaptive" ~default:true in
  (ell, eps, k, trials, level, seed, adaptive)

let of_json j =
  match
    match J.want_str j "kind" with
    | "bound" ->
        let name = J.want_str j "name" in
        let params =
          match J.field j "params" with
          | J.Obj kvs ->
              List.sort
                (fun (a, _) (b, _) -> String.compare a b)
                (List.map
                   (fun (k, v) ->
                     match v with
                     | J.Num f -> (k, f)
                     | _ ->
                         raise
                           (J.Malformed
                              (Printf.sprintf "field %S: expected number" k)))
                   kvs)
          | _ -> raise (J.Malformed "field \"params\": expected object")
        in
        Bound { name; params }
    | "power" ->
        let tester = parse_tester j in
        let ell, eps, k, trials, level, seed, adaptive = parse_mc j in
        let q = positive "q" (get_int j "q") in
        Power { tester; ell; eps; k; q; trials; level; seed; adaptive }
    | "critical" ->
        let tester = parse_tester j in
        let ell, eps, k, trials, level, seed, adaptive = parse_mc j in
        let hi =
          match J.field_opt j "hi" with
          | Some _ -> Some (positive "hi" (get_int j "hi"))
          | None -> None
        in
        let guess =
          match J.field_opt j "guess" with
          | Some _ -> Some (positive "guess" (get_int j "guess"))
          | None -> None
        in
        Critical { tester; ell; eps; k; trials; level; seed; adaptive; hi; guess }
    | s -> raise (J.Malformed (Printf.sprintf "unknown kind %S (bound|power|critical)" s))
  with
  | q -> Ok q
  | exception J.Malformed msg -> Error msg

(* -- Evaluation --------------------------------------------------------- *)

(* The graph seed is not part of the wire language: every served
   Random_regular instance uses seed 1, so equal canonical queries keep
   naming the same graph. *)
let core_family = function
  | Clique -> Dut_core.Comparison_graph.Clique
  | Matching -> Dut_core.Comparison_graph.Matching
  | Bipartite -> Dut_core.Comparison_graph.Bipartite
  | Regular degree -> Dut_core.Comparison_graph.Random_regular { degree; seed = 1 }

let make_tester tester ~n ~eps ~k q =
  match tester with
  | And -> Dut_core.And_tester.tester ~n ~eps ~k ~q
  | Threshold t -> Dut_core.Threshold_tester.tester_fixed ~n ~eps ~k ~q ~t
  | Graph { family; t } ->
      Dut_core.Comparison_graph.tester_fixed ~n ~eps ~k ~q ~t
        (core_family family)

(* A Regular-family critical search must not probe q <= degree, where
   the graph does not exist; even degrees put no parity constraint on
   q, so degree + 1 is the least feasible q. *)
let tester_lo = function
  | Graph { family = Regular degree; _ } -> Some (degree + 1)
  | And | Threshold _ | Graph _ -> None

let eval = function
  | Bound { name; params } -> (
      match List.assoc_opt name bounds_table with
      | Some f -> J.Num (f params)
      | None -> failwith (Printf.sprintf "bound: unknown name %S" name))
  | Power { tester; ell; eps; k; q; trials; level; seed; adaptive } ->
      let n = 1 lsl (ell + 1) in
      let rng = Dut_prng.Rng.create seed in
      J.Bool
        (Dut_core.Evaluate.succeeds ~adaptive ~trials ~level ~rng ~ell ~eps
           (make_tester tester ~n ~eps ~k q))
  | Critical { tester; ell; eps; k; trials; level; seed; adaptive; hi; guess }
    -> (
      let n = 1 lsl (ell + 1) in
      let rng = Dut_prng.Rng.create seed in
      match
        Dut_core.Evaluate.critical_q ~adaptive ~trials ~level ~rng ~ell ~eps
          ?lo:(tester_lo tester) ?hi ?guess
          (make_tester tester ~n ~eps ~k)
      with
      | Some q -> J.int q
      | None -> J.Null)

(* -- Requests and responses --------------------------------------------- *)

type request = { id : int; query : (t, string) result }

let request_of_line line =
  match J.parse line with
  | exception J.Malformed msg -> { id = -1; query = Error msg }
  | j ->
      let id =
        match J.field_opt j "id" with
        | Some (J.Num f) when Float.is_integer f -> int_of_float f
        | _ -> -1
      in
      { id; query = of_json j }

let request_to_line ~id q =
  match to_json q with
  | J.Obj kvs -> J.to_string (J.Obj (("id", J.int id) :: kvs))
  | _ -> assert false

let ok_payload value =
  J.to_string (J.Obj [ ("status", J.Str "ok"); ("value", value) ])

let error_payload msg =
  J.to_string (J.Obj [ ("status", J.Str "error"); ("error", J.Str msg) ])

(* The payload bytes are spliced in verbatim (they always start with
   '{'), so a memoized payload and a freshly computed one produce
   byte-identical response lines. *)
let response_line ~id payload =
  Printf.sprintf "{\"id\":%d,%s" id
    (String.sub payload 1 (String.length payload - 1))
