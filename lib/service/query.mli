(** The service's typed query language and its JSONL wire codec.

    Three query kinds, mirroring what the batch CLI can compute:

    - [Bound]: a closed-form bound from {!Dut_core.Bounds}, looked up by
      name with named numeric parameters — pure arithmetic, no
      randomness.
    - [Power]: one {!Dut_core.Evaluate.succeeds} verdict for a tester at
      a fixed per-player sample count [q].
    - [Critical]: the least succeeding [q]
      ({!Dut_core.Evaluate.critical_q}), warm-started through
      {!Dut_stats.Critical.search_seeded} when a [guess] rides along.

    Every source of randomness is part of the query ([seed], [trials],
    [adaptive]), so a query {e is} its answer's full provenance: equal
    canonical forms give byte-equal responses, for any jobs count — the
    property the memo cache and the determinism contract rest on.

    Wire format (one JSON object per line; see [doc/service.md]):

    {v
    {"id":0,"kind":"bound","name":"thm11_lower",
     "params":{"n":4096,"k":64,"eps":0.25}}
    {"id":1,"kind":"power","tester":"threshold","t":4,"ell":7,
     "eps":0.3,"k":32,"q":24,"trials":120,"level":0.72,"seed":2019}
    {"id":2,"kind":"critical","tester":"and","ell":7,"eps":0.3,"k":32,
     "guess":48}
    {"id":3,"kind":"power","tester":"graph","family":"bipartite","t":1,
     "ell":5,"eps":0.4,"k":16,"q":40}
    v}

    Responses repeat the request [id] and carry either
    [{"status":"ok","value":…}] or [{"status":"error","error":…}]. *)

type graph_family = Clique | Matching | Bipartite | Regular of int
    (** Comparison-graph families servable over the wire. [Regular d]
        requires an even [d] (odd degrees constrain q's parity, which a
        critical-q bisection cannot honour); its graph seed is fixed at
        1, so equal canonical queries always name the same graph. *)

type tester =
  | And
  | Threshold of int  (** reject threshold [t] *)
  | Graph of { family : graph_family; t : int }
      (** {!Dut_core.Comparison_graph.tester_fixed} over [family] with
          reject threshold [t] (wire default 1). *)

type t =
  | Bound of { name : string; params : (string * float) list }
      (** [params] is kept sorted by name: the constructor set is the
          canonical form. *)
  | Power of {
      tester : tester;
      ell : int;
      eps : float;
      k : int;
      q : int;
      trials : int;
      level : float;
      seed : int;
      adaptive : bool;
    }
  | Critical of {
      tester : tester;
      ell : int;
      eps : float;
      k : int;
      trials : int;
      level : float;
      seed : int;
      adaptive : bool;
      hi : int option;
      guess : int option;  (** warm start for {!Dut_stats.Critical.search_seeded} *)
    }

val bound_names : string list
(** Every name {!eval} accepts for a [Bound] query, sorted. *)

val to_json : t -> Dut_obs.Json.t
(** Canonical rendering: fixed field order, defaults spelled out,
    [params] sorted — two equal queries always serialise to the same
    bytes. Never includes a request [id]. *)

val of_json : Dut_obs.Json.t -> (t, string) result
(** Parse a request object (ignoring any [id] member). Unknown [kind]s,
    missing or non-positive parameters and unknown testers are [Error]s
    describing the offending field. *)

val canonical : t -> string
(** [Dut_obs.Json.to_string (to_json q)] — the text the memo key is
    hashed from. *)

val eval : t -> Dut_obs.Json.t
(** Compute the answer: a number for [Bound], a boolean for [Power], a
    number or [Null] (not found below [hi]) for [Critical]. All
    randomness derives from the query's own [seed], so the result is
    independent of jobs count, batching, and evaluation order.

    @raise Failure on an unknown bound name or missing parameter. *)

(* -- Requests and responses --------------------------------------------- *)

type request = { id : int; query : (t, string) result }
(** One parsed wire line. A line that fails to parse still yields a
    request (with the parse error as its [query]) so the server can
    answer it with an error response instead of dropping it. *)

val request_of_line : string -> request
(** Parse one JSONL request line. A missing or non-numeric [id] becomes
    [-1] (the response will carry [-1] back, flagging the bug to the
    client). *)

val request_to_line : id:int -> t -> string
(** The canonical request line for [t] with [id] prepended — what the
    client sends. *)

val ok_payload : Dut_obs.Json.t -> string
(** [{"status":"ok","value":V}] — the id-less response payload, the unit
    the memo cache stores. *)

val error_payload : string -> string
(** [{"status":"error","error":msg}]. *)

val response_line : id:int -> string -> string
(** Splice the request id into an id-less payload:
    [{"id":N,"status":…}]. The payload bytes are embedded verbatim, so
    cached and fresh payloads yield byte-identical response lines. *)
