module J = Dut_obs.Json

type config = {
  socket : string;
  jobs : int;
  cache : Memo.t option;
  deadline_s : float option;
  max_pending : int;
  summary_path : string;
}

let default_socket = Filename.concat "results" "dut.sock"

let default_summary_path = Filename.concat "results" "service_manifest.json"

let m_requests = Dut_obs.Metrics.counter "service.requests"

let m_batches = Dut_obs.Metrics.counter "service.batches"

let m_errors = Dut_obs.Metrics.counter "service.errors"

let m_rejected = Dut_obs.Metrics.counter "service.rejected"

(* Per-request service latency, cache hits and misses alike: the
   distribution a client actually experiences. The sharding decision
   the ROADMAP gates on reads the p95/p99 of exactly this histogram. *)
let h_request_ns = Dut_obs.Metrics.histogram "service.request_ns"

(* Statistics of the most recent batch, for the dut-service/2 summary.
   Written by handle_batch on the submitting domain and read when the
   summary is assembled (same domain in the serve loop), so a plain ref
   suffices. *)
type batch_stats = {
  b_requests : int;
  b_seconds : float;
  b_hits : int;
  b_latency : Dut_obs.Histogram.t;
}

let last_batch : batch_stats option ref = ref None

let kind_of (r : Query.request) =
  match r.query with
  | Error _ -> "invalid"
  | Ok (Query.Bound _) -> "bound"
  | Ok (Query.Power _) -> "power"
  | Ok (Query.Critical _) -> "critical"

(* -- Batch evaluation --------------------------------------------------- *)

(* One batch: memo lookups happen before dispatch and stores after the
   pool joins — both on the submitting domain, so the cache needs no
   locking — while the evaluations in between run as one engine job.
   The work function catches everything (including the cooperative
   deadline) and returns an error payload: a task that raised would
   fast-fail the whole pool job, which is exactly the blast radius the
   per-request isolation contract rules out. *)
let handle_batch ?cache ?deadline_s ?(stamp = "") ~jobs
    (requests : Query.request array) =
  let n = Array.length requests in
  Dut_obs.Metrics.add m_requests n;
  Dut_obs.Metrics.incr m_batches;
  let keys =
    Array.map
      (fun (r : Query.request) ->
        match r.query with
        | Ok q -> Some (Query.canonical q ^ "\n" ^ stamp)
        | Error _ -> None)
      requests
  in
  let cached =
    Array.map
      (fun key ->
        match (cache, key) with
        | Some c, Some key -> Memo.find c ~key
        | _ -> None)
      keys
  in
  let evaluate (r : Query.request) =
    match r.query with
    | Error msg ->
        Dut_obs.Metrics.incr m_errors;
        Query.error_payload ("bad query: " ^ msg)
    | Ok q -> (
        match
          Dut_engine.Deadline.with_timeout ?seconds:deadline_s (fun () ->
              Query.ok_payload (Query.eval q))
        with
        | payload -> payload
        | exception e ->
            Dut_obs.Metrics.incr m_errors;
            let msg =
              match e with
              | Dut_engine.Deadline.Exceeded ->
                  "deadline exceeded (per-request --deadline-s budget)"
              | Failure msg | Invalid_argument msg -> msg
              | e -> Printexc.to_string e
            in
            Query.error_payload msg)
  in
  let work i =
    let r = requests.(i) in
    let started = Dut_obs.Span.now_ns () in
    let payload =
      Dut_obs.Span.with_ ~name:"service.request"
        ~attrs:
          [
            ("id", J.int r.Query.id);
            ("kind", J.Str (kind_of r));
            ("cached", J.Bool (cached.(i) <> None));
          ]
        (fun () ->
          match cached.(i) with Some payload -> payload | None -> evaluate r)
    in
    Dut_obs.Metrics.observe h_request_ns (Dut_obs.Span.now_ns () - started);
    payload
  in
  let latency_before = Dut_obs.Metrics.histogram_value "service.request_ns" in
  let batch_started = Dut_obs.Span.now_ns () in
  let payloads =
    Dut_obs.Span.with_ ~name:"service.batch"
      ~attrs:[ ("requests", J.int n); ("jobs", J.int jobs) ]
      (fun () -> Dut_engine.Parallel.map ~jobs work (Array.init n Fun.id))
  in
  last_batch :=
    Some
      {
        b_requests = n;
        b_seconds =
          float_of_int (Dut_obs.Span.now_ns () - batch_started) /. 1e9;
        b_hits = Array.fold_left (fun acc c -> if c <> None then acc + 1 else acc) 0 cached;
        b_latency =
          Dut_obs.Histogram.diff
            (Dut_obs.Metrics.histogram_value "service.request_ns")
            latency_before;
      };
  (* Only fresh ok answers are published to the cache: error responses
     (bad query, deadline, raise) must be recomputed next time — a
     transient failure memoized forever would violate the "cached =
     byte-identical to fresh" contract. *)
  let ok_prefix = "{\"status\":\"ok\"" in
  Array.iteri
    (fun i payload ->
      match (cache, keys.(i), cached.(i)) with
      | Some c, Some key, None
        when String.length payload >= String.length ok_prefix
             && String.sub payload 0 (String.length ok_prefix) = ok_prefix ->
          Memo.store c ~key payload
      | _ -> ())
    payloads;
  Array.mapi
    (fun i payload -> Query.response_line ~id:requests.(i).Query.id payload)
    payloads

(* -- Session summary ---------------------------------------------------- *)

let ratio hits misses =
  let total = hits + misses in
  if total = 0 then J.Null
  else J.Num (float_of_int hits /. float_of_int total)

let summary ?shard ~config ~status ~git ~created_unix ~started_ns () =
  let count name = J.int (Dut_obs.Metrics.value name) in
  let counters =
    List.map
      (fun (name, v) ->
        ( name,
          match v with
          | Dut_obs.Metrics.Count c -> J.int c
          | Dut_obs.Metrics.Value f -> J.Num f ))
      (Dut_obs.Metrics.snapshot ())
  in
  let histograms =
    List.filter_map
      (fun (name, h) ->
        if Dut_obs.Histogram.is_empty h then None
        else Some (name, Dut_obs.Histogram.summary_json h))
      (Dut_obs.Metrics.histogram_snapshot ())
  in
  let uptime_seconds =
    float_of_int (Dut_obs.Span.now_ns () - started_ns) /. 1e9
  in
  let requests = Dut_obs.Metrics.value "service.requests" in
  let last_batch_json =
    match !last_batch with
    | None -> J.Null
    | Some b ->
        J.Obj
          [
            ("requests", J.int b.b_requests);
            ("seconds", J.Num b.b_seconds);
            ( "qps",
              if b.b_seconds > 0. then
                J.Num (float_of_int b.b_requests /. b.b_seconds)
              else J.Null );
            ("latency_ns", Dut_obs.Histogram.summary_json b.b_latency);
            ("cache_hit_ratio", ratio b.b_hits (b.b_requests - b.b_hits));
          ]
  in
  J.Obj
    ([
       ("schema", J.Str "dut-service/3");
       ("command", J.Str "serve");
       ("status", J.Str status);
       ("socket", J.Str config.socket);
       ("jobs", J.int config.jobs);
       ("pid", J.int (Unix.getpid ()));
     ]
    @ (match shard with Some s -> [ ("shard", J.int s) ] | None -> [])
    @ [
      ("git", J.Str git);
      ("created_unix", J.Num created_unix);
      ("uptime_seconds", J.Num uptime_seconds);
      ("requests", count "service.requests");
      ("batches", count "service.batches");
      ("cache_hits", count "cache.hits");
      ("cache_misses", count "cache.misses");
      ("errors", count "service.errors");
      ("rejected", count "service.rejected");
      ( "qps",
        if uptime_seconds > 0. then
          J.Num (float_of_int requests /. uptime_seconds)
        else J.Null );
      ( "latency_ns",
        Dut_obs.Histogram.summary_json
          (Dut_obs.Metrics.histogram_value "service.request_ns") );
      (* Exact bucket contents alongside the summary (new in /3): the
         fleet aggregate merges per-shard latency losslessly from
         these instead of averaging pre-computed quantiles. *)
      ( "latency_buckets",
        Dut_obs.Histogram.to_json
          (Dut_obs.Metrics.histogram_value "service.request_ns") );
      ( "cache_hit_ratio",
        ratio
          (Dut_obs.Metrics.value "cache.hits")
          (Dut_obs.Metrics.value "cache.misses") );
      ("last_batch", last_batch_json);
      ("counters", J.Obj counters);
      ("histograms", J.Obj histograms);
    ])

let write_summary ?shard ~config ~status ~git ~created_unix ~started_ns () =
  let content =
    J.to_string (summary ?shard ~config ~status ~git ~created_unix ~started_ns ())
    ^ "\n"
  in
  try Dut_obs.Manifest.write_atomic ~path:config.summary_path content
  with Sys_error msg ->
    Printf.eprintf "dut: cannot write service summary: %s\n%!" msg

(* -- Socket loop -------------------------------------------------------- *)

type conn = {
  fd : Unix.file_descr;
  pending_input : Buffer.t;  (* bytes read but not yet newline-terminated *)
  mutable alive : bool;
  mutable eof : bool;  (* peer half-closed: answer, then close *)
}

let read_chunk_size = 65536

(* Append freshly read bytes and peel off every complete line. *)
let take_lines conn (bytes : Bytes.t) len =
  Buffer.add_subbytes conn.pending_input bytes 0 len;
  let data = Buffer.contents conn.pending_input in
  match String.rindex_opt data '\n' with
  | None -> []
  | Some last ->
      Buffer.clear conn.pending_input;
      Buffer.add_string conn.pending_input
        (String.sub data (last + 1) (String.length data - last - 1));
      String.split_on_char '\n' (String.sub data 0 last)
      |> List.filter (fun l -> String.trim l <> "")

(* On EOF the tail of [pending_input] — a final request the client sent
   without a trailing newline before closing — is still a request.
   Flushing it through the same non-blank-line semantics keeps "one
   response per line" true for clients that close right after their
   last byte. *)
let flush_pending conn =
  let data = Buffer.contents conn.pending_input in
  Buffer.clear conn.pending_input;
  if String.trim data = "" then [] else [ data ]

let write_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd b !off (len - !off)
  done

let send conn line =
  if conn.alive then
    try write_all conn.fd (line ^ "\n")
    with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
      conn.alive <- false

let close_conn conn =
  conn.alive <- false;
  try Unix.close conn.fd with Unix.Unix_error _ -> ()

(* Probing before unlinking is what makes `dut serve` safe to restart:
   a stale socket file left by a crash refuses the connect and is
   removed, but a live server accepts it — and this process must then
   refuse to start rather than steal the path out from under it (the
   old loop's stat-and-unlink silently orphaned the running server). *)
let prepare_socket path =
  match Unix.stat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_SOCK; _ } ->
      let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let live =
        Fun.protect
          ~finally:(fun () ->
            try Unix.close probe with Unix.Unix_error _ -> ())
          (fun () ->
            match Unix.connect probe (Unix.ADDR_UNIX path) with
            | () -> true
            | exception
                Unix.Unix_error
                  ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
                false)
      in
      if live then
        failwith
          (path
         ^ ": a running server already answers on this socket; stop it or \
            pass a different --socket")
      else ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | _ -> failwith (path ^ ": exists and is not a socket")

let bind_listener path =
  prepare_socket path;
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX path);
  Unix.listen listener 256;
  (* Non-blocking so one poll wake-up can drain the whole accept queue
     (the old loop accepted one connection per select tick). *)
  Unix.set_nonblock listener;
  listener

let accept_pending listener conns =
  let rec go () =
    match Unix.accept listener with
    | fd, _ ->
        conns :=
          { fd; pending_input = Buffer.create 256; alive = true; eof = false }
          :: !conns;
        go ()
    | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) -> ()
    | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
        go ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

let serve ?shard config =
  (* A client that disconnects mid-response must cost the server one
     dropped connection, not a fatal SIGPIPE. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  Dut_engine.Parallel.set_default_jobs config.jobs;
  let listener = bind_listener config.socket in
  let git = Dut_obs.Manifest.git_describe () in
  let created_unix = Unix.time () in
  let started_ns = Dut_obs.Span.now_ns () in
  let publish status =
    write_summary ?shard ~config ~status ~git ~created_unix ~started_ns ()
  in
  publish "serving";
  Printf.eprintf "dut: serving on %s (jobs=%d%s)\n%!" config.socket config.jobs
    (match config.cache with None -> ", cache off" | Some _ -> "");
  (* Connections are prepended (O(1)); every traversal that must see
     arrival order reverses once (O(n) per tick — the old
     [!conns @ [c]] rebuild was O(n²) across n accepts). *)
  let conns = ref [] in
  let module Runner = Dut_experiments.Runner in
  Runner.with_sigint_guard (fun () ->
      let buf = Bytes.create read_chunk_size in
      while not (Runner.interrupted ()) do
        let ordered = List.rev !conns in
        let entries =
          Array.of_list
            ((listener, Poll.rd) :: List.map (fun c -> (c.fd, Poll.rd)) ordered)
        in
        let ready = Poll.wait ~timeout_ms:250 entries in
        if ready.(0).Poll.read then accept_pending listener conns;
        (* Arrival order over all ready clients defines the batch
           order; each response carries its request id, so clients
           are insensitive to interleaving across connections. *)
        let pending = ref [] in
        let n_pending = ref 0 in
        List.iteri
          (fun i conn ->
            if conn.alive && ready.(i + 1).Poll.read then
              let lines =
                match Unix.read conn.fd buf 0 read_chunk_size with
                | 0 ->
                    conn.eof <- true;
                    flush_pending conn
                | len -> take_lines conn buf len
                | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
                    close_conn conn;
                    []
                | exception
                    Unix.Unix_error
                      ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _) ->
                    []
              in
              List.iter
                (fun line ->
                  let request = Query.request_of_line line in
                  if !n_pending >= config.max_pending then begin
                    Dut_obs.Metrics.incr m_rejected;
                    send conn
                      (Query.response_line ~id:request.Query.id
                         (Query.error_payload
                            (Printf.sprintf
                               "server overloaded (%d requests pending); \
                                retry"
                               !n_pending)))
                  end
                  else begin
                    incr n_pending;
                    pending := (conn, request) :: !pending
                  end)
                lines)
          ordered;
        (match List.rev !pending with
        | [] -> ()
        | batch ->
            let requests = Array.of_list (List.map snd batch) in
            let responses =
              handle_batch ?cache:config.cache ?deadline_s:config.deadline_s
                ~stamp:git ~jobs:config.jobs requests
            in
            (* Publish the refreshed summary before the responses go
               out: once a client has its answer, `dut obs-report`
               already accounts for it. *)
            publish "serving";
            List.iteri (fun i (conn, _) -> send conn responses.(i)) batch);
        (* Half-closed peers have their answers by now; finish the
           close so they never re-enter the poll set. *)
        List.iter (fun c -> if c.eof && c.alive then close_conn c) ordered;
        conns := List.filter (fun c -> c.alive) !conns
      done);
  List.iter close_conn !conns;
  (try Unix.close listener with Unix.Unix_error _ -> ());
  (try Unix.unlink config.socket with Unix.Unix_error _ -> ());
  publish "closed";
  Printf.eprintf "dut: service drained — summary at %s\n%!" config.summary_path
