(** The resident query server behind [dut serve].

    A long-running loop over a Unix-domain socket speaking the JSONL
    codec of {!Query}. Concurrent requests — across clients and within
    one client's burst — are coalesced into batches and dispatched onto
    the shared {!Dut_engine} pool, so the whole batch evaluates with
    [jobs]-way parallelism while every response stays byte-identical to
    a sequential evaluation (each query derives all randomness from its
    own seed).

    Semantics, mirroring the batch runner's crash-safety layer:
    - {e failure isolation}: a request that fails to parse, names an
      unknown bound, or raises during evaluation gets an [error]
      response; every sibling request in the batch completes untouched.
      A request can never take down the server or the batch.
    - {e deadlines}: [deadline_s] arms a cooperative
      {!Dut_engine.Deadline} per request; an over-budget evaluation is
      cancelled at the next engine check point and answered with an
      [error] response.
    - {e backpressure}: at most [max_pending] requests are queued per
      batch cycle; overflow requests are answered immediately with an
      [error] response (tallied as [service.rejected]) instead of
      growing the queue without bound.
    - {e memoization}: with a {!Memo} cache attached, [ok] responses are
      stored under the query's canonical form + git stamp and replayed
      byte-identically on the next ask ([cache.hits]/[cache.misses]).
    - {e graceful shutdown}: the loop runs under
      {!Dut_experiments.Runner.with_sigint_guard} — the first
      SIGINT/SIGTERM finishes the in-flight batch, flushes responses,
      writes the final session summary and returns normally (the CLI
      exits 0); a second signal force-exits.

    The connection loop waits on poll(2) (see {!Poll}), so the number
    of concurrent clients is bounded by the fd ulimit, not
    FD_SETSIZE, and each wake-up drains the whole accept queue. A peer
    that half-closes after its last byte still gets every answer: the
    unterminated tail of its input buffer is flushed through the line
    semantics on EOF before the connection is reaped.

    The session summary ([summary_path], schema [dut-service/3]) is
    rewritten atomically after every batch, so a live server can be
    inspected with [dut obs-report --manifest] at any time. Beyond the
    session counters it carries [qps] (requests over uptime),
    [latency_ns] (the {!Dut_obs.Histogram.summary_json} of
    [service.request_ns]: p50/p90/p95/p99/max per-request latency),
    [cache_hit_ratio], and [last_batch] — the same quartet computed for
    the most recent batch alone, from the histogram delta across it.
    Spans ([service.batch], [service.request]) go to the
    {!Dut_obs.Span} sink when one is open; counters
    ([service.requests], [service.batches], [service.errors],
    [service.rejected], [cache.*]) and the latency histograms always
    tally. *)

type config = {
  socket : string;  (** path of the Unix-domain socket to bind *)
  jobs : int;  (** engine parallelism for batch evaluation *)
  cache : Memo.t option;
  deadline_s : float option;  (** per-request cooperative budget *)
  max_pending : int;  (** backpressure cap per batch cycle *)
  summary_path : string;  (** where the session summary is published *)
}

val default_socket : string
(** ["results/dut.sock"]. *)

val default_summary_path : string
(** ["results/service_manifest.json"]. *)

val handle_batch :
  ?cache:Memo.t ->
  ?deadline_s:float ->
  ?stamp:string ->
  jobs:int ->
  Query.request array ->
  string array
(** Evaluate one batch: response lines in request order, one per
    request, never raising. [stamp] is the provenance suffix of the
    memo key (the server passes its git describe). Exposed for tests;
    {!serve} is this in a socket loop. *)

val prepare_socket : string -> unit
(** Make [path] bindable: a missing path is fine, a stale socket file
    (connect refused) is unlinked, anything else refuses.

    @raise Failure if a live server already answers on [path] (the
    connect probe succeeds) or [path] exists and is not a socket —
    starting anyway would steal the path from the running server. *)

val bind_listener : string -> Unix.file_descr
(** {!prepare_socket}, then bind, listen and set non-blocking: the
    accept loop (here and in the {!Shard} router) drains the whole
    queue per poll wake-up. *)

val serve : ?shard:int -> config -> unit
(** Bind the socket (replacing only a {e stale} file, per
    {!prepare_socket}), loop until the first SIGINT/SIGTERM, then drain
    and return. Prints one ["serving on <socket>"] line to stderr when
    ready. [shard] stamps the summary with this worker's index when the
    server runs as part of a {!Shard} fleet.

    @raise Failure if a live server already owns the socket.
    @raise Unix.Unix_error if the socket cannot be bound. *)
