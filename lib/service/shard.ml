module J = Dut_obs.Json

let fleet_schema = "dut-service-fleet/1"

(* Router-side tallies. [shard.routed] counts requests forwarded to a
   worker; the rest are answered at the router itself: parse failures
   ([shard.local_errors], byte-identical to the single server's error
   responses) and requests whose shard is gone ([shard.dead_rejects]).
   [shard.stray_responses] counts worker lines with no matching
   in-flight id — a worker bug surfacing as telemetry, never a hang. *)
let m_routed = Dut_obs.Metrics.counter "shard.routed"

let m_local_errors = Dut_obs.Metrics.counter "shard.local_errors"

let m_dead_rejects = Dut_obs.Metrics.counter "shard.dead_rejects"

let m_stray = Dut_obs.Metrics.counter "shard.stray_responses"

(* -- Consistent-hash ring ------------------------------------------------ *)

(* 63-bit point from the MD5 of a string: stable across runs, processes
   and architectures — the property the shared memo store leans on
   (same canonical bytes, same shard, forever). *)
let point_of s =
  let d = Digest.string s in
  let b i = Char.code d.[i] in
  (b 0 lsl 55) lor (b 1 lsl 47) lor (b 2 lsl 39) lor (b 3 lsl 31)
  lor (b 4 lsl 23) lor (b 5 lsl 15) lor (b 6 lsl 7) lor (b 7 lsr 1)

let vnodes = 64

type ring = { points : (int * int) array  (* sorted (point, shard) *) }

let ring ~shards =
  if shards < 1 then invalid_arg "Shard.ring: shards < 1";
  let points =
    Array.init (shards * vnodes) (fun i ->
        let shard = i / vnodes and v = i mod vnodes in
        (point_of (Printf.sprintf "shard:%d:%d" shard v), shard))
  in
  Array.sort compare points;
  { points }

(* First ring point clockwise of the key's point (wrapping): adding a
   shard only captures the keys whose new successor belongs to it, so
   growing the fleet remaps ~1/N of the keyspace instead of all of it. *)
let lookup ring key =
  let p = point_of key in
  let n = Array.length ring.points in
  let rec bsearch lo hi =
    (* smallest index with point >= p, or n *)
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if fst ring.points.(mid) >= p then bsearch lo mid else bsearch (mid + 1) hi
  in
  let i = bsearch 0 n in
  snd ring.points.(if i = n then 0 else i)

let rings : (int, ring) Hashtbl.t = Hashtbl.create 4

let shard_of_key ~shards key =
  let r =
    match Hashtbl.find_opt rings shards with
    | Some r -> r
    | None ->
        let r = ring ~shards in
        Hashtbl.add rings shards r;
        r
  in
  lookup r key

(* -- Worker paths -------------------------------------------------------- *)

let shard_socket base i = Printf.sprintf "%s.shard%d" base i

let shard_summary base i = Printf.sprintf "%s.shard%d" base i

(* -- In-process routing model (the spec the socket router implements) --- *)

let route_batch ?caches ?deadline_s ?stamp ~jobs ~shards
    (requests : Query.request array) =
  let ring = ring ~shards in
  let n = Array.length requests in
  let where =
    Array.map
      (fun (r : Query.request) ->
        match r.query with
        | Ok q -> lookup ring (Query.canonical q)
        | Error _ -> -1)
      requests
  in
  let responses = Array.make n "" in
  (* Shard partitions evaluate independently (each preserving request
     order within the partition, exactly like one worker's batch); the
     responses land back in request slots, so the reassembled array is
     ordered as if one server had handled the whole batch. *)
  for s = 0 to shards - 1 do
    let idxs = ref [] in
    for i = n - 1 downto 0 do
      if where.(i) = s then idxs := i :: !idxs
    done;
    match !idxs with
    | [] -> ()
    | idxs ->
        let sub = Array.of_list (List.map (fun i -> requests.(i)) idxs) in
        let cache =
          match caches with Some a -> a.(s) | None -> None
        in
        let resp = Server.handle_batch ?cache ?deadline_s ?stamp ~jobs sub in
        List.iteri (fun j i -> responses.(i) <- resp.(j)) idxs
  done;
  Array.iteri
    (fun i (r : Query.request) ->
      if where.(i) = -1 then begin
        let msg = match r.query with Error m -> m | Ok _ -> assert false in
        Dut_obs.Metrics.incr m_local_errors;
        responses.(i) <-
          Query.response_line ~id:r.Query.id
            (Query.error_payload ("bad query: " ^ msg))
      end)
    requests;
  responses

(* -- Fleet orchestration ------------------------------------------------- *)

type outq = { out : Buffer.t; mutable out_start : int }

let new_outq () = { out = Buffer.create 256; out_start = 0 }

let q_empty q = q.out_start >= Buffer.length q.out

let q_push q s = Buffer.add_string q.out s

(* Non-blocking flush; [`Closed] when the peer is gone. A fully-drained
   buffer is reset so it never grows without bound. *)
let q_flush fd q =
  let result = ref `Done in
  (try
     while not (q_empty q) && !result = `Done do
       let len = min 65536 (Buffer.length q.out - q.out_start) in
       let chunk = Buffer.sub q.out q.out_start len in
       match Unix.write_substring fd chunk 0 len with
       | written ->
           q.out_start <- q.out_start + written;
           if written < len then result := `More
       | exception
           Unix.Unix_error
             ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _) ->
           result := `More
     done
   with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
     result := `Closed);
  if q_empty q then begin
    Buffer.clear q.out;
    q.out_start <- 0
  end;
  !result

type cconn = {
  c_fd : Unix.file_descr;
  c_in : Buffer.t;
  c_q : outq;
  mutable c_alive : bool;
  mutable c_eof : bool;
  mutable c_inflight : int;  (* routed requests not yet answered *)
}

type wconn = {
  w_shard : int;
  w_pid : int;
  w_socket : string;
  w_summary : string;
  mutable w_fd : Unix.file_descr option;  (* None once dead *)
  w_in : Buffer.t;
  w_q : outq;
}

type route = { r_client : cconn; r_client_id : int; r_shard : int }

let take_lines buf (bytes : Bytes.t) len =
  Buffer.add_subbytes buf bytes 0 len;
  let data = Buffer.contents buf in
  match String.rindex_opt data '\n' with
  | None -> []
  | Some last ->
      Buffer.clear buf;
      Buffer.add_string buf
        (String.sub data (last + 1) (String.length data - last - 1));
      String.split_on_char '\n' (String.sub data 0 last)
      |> List.filter (fun l -> String.trim l <> "")

let flush_trailing buf =
  let data = Buffer.contents buf in
  Buffer.clear buf;
  if String.trim data = "" then [] else [ data ]

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Some (really_input_string ic (in_channel_length ic)))

(* -- Fleet summary ------------------------------------------------------- *)

let num_field j name =
  match J.field_opt j name with
  | Some (J.Num f) when Float.is_integer f -> int_of_float f
  | _ -> 0

let fleet_summary ~(config : Server.config) ~status ~git ~created_unix
    ~started_ns ~workers =
  let uptime_seconds =
    float_of_int (Dut_obs.Span.now_ns () - started_ns) /. 1e9
  in
  let summaries =
    List.map
      (fun w ->
        ( w,
          Option.bind (read_file w.w_summary) (fun s ->
              match J.parse (String.trim s) with
              | exception J.Malformed _ -> None
              | j -> Some j) ))
      workers
  in
  let sum name =
    List.fold_left
      (fun acc (_, j) ->
        match j with Some j -> acc + num_field j name | None -> acc)
      0 summaries
  in
  let latency = Dut_obs.Histogram.create () in
  List.iter
    (fun (_, j) ->
      match Option.bind j (fun j -> J.field_opt j "latency_buckets") with
      | Some buckets -> (
          match Dut_obs.Histogram.of_json buckets with
          | h -> Dut_obs.Histogram.merge_into ~into:latency h
          | exception J.Malformed _ -> ())
      | None -> ())
    summaries;
  let requests = sum "requests" in
  let hits = sum "cache_hits" and misses = sum "cache_misses" in
  let alive =
    List.fold_left
      (fun acc w -> if w.w_fd <> None then acc + 1 else acc)
      0 workers
  in
  let count name = J.int (Dut_obs.Metrics.value name) in
  J.Obj
    [
      ("schema", J.Str fleet_schema);
      ("command", J.Str "serve");
      ("status", J.Str status);
      ("socket", J.Str config.Server.socket);
      ("shards", J.int (List.length workers));
      ("jobs", J.int config.Server.jobs);
      ("pid", J.int (Unix.getpid ()));
      ("git", J.Str git);
      ("created_unix", J.Num created_unix);
      ("uptime_seconds", J.Num uptime_seconds);
      ( "router",
        J.Obj
          [
            ("routed", count "shard.routed");
            ("local_errors", count "shard.local_errors");
            ("dead_rejects", count "shard.dead_rejects");
            ("stray_responses", count "shard.stray_responses");
            ("shards_live", J.int alive);
          ] );
      ( "workers",
        J.Arr
          (List.map
             (fun (w, j) ->
               J.Obj
                 [
                   ("shard", J.int w.w_shard);
                   ("pid", J.int w.w_pid);
                   ("socket", J.Str w.w_socket);
                   ("summary", J.Str w.w_summary);
                   ("alive", J.Bool (w.w_fd <> None));
                   ( "status",
                     match Option.bind j (fun j -> J.field_opt j "status") with
                     | Some s -> s
                     | None -> J.Null );
                 ])
             summaries) );
      (* Worker sums only: the router's own local answers live under
         "router" above, so the two sections reconcile independently
         against the per-shard summaries. *)
      ( "aggregate",
        J.Obj
          [
            ("requests", J.int requests);
            ("batches", J.int (sum "batches"));
            ("errors", J.int (sum "errors"));
            ("rejected", J.int (sum "rejected"));
            ("cache_hits", J.int hits);
            ("cache_misses", J.int misses);
            ( "cache_hit_ratio",
              if hits + misses = 0 then J.Null
              else J.Num (float_of_int hits /. float_of_int (hits + misses)) );
            ( "qps",
              if uptime_seconds > 0. then
                J.Num (float_of_int requests /. uptime_seconds)
              else J.Null );
            ("latency_ns", Dut_obs.Histogram.summary_json latency);
          ] );
    ]

let write_fleet_summary ~config ~status ~git ~created_unix ~started_ns ~workers
    =
  let content =
    J.to_string
      (fleet_summary ~config ~status ~git ~created_unix ~started_ns ~workers)
    ^ "\n"
  in
  try
    Dut_obs.Manifest.write_atomic ~path:config.Server.summary_path content
  with Sys_error msg ->
    Printf.eprintf "dut: cannot write fleet summary: %s\n%!" msg

(* -- The router ---------------------------------------------------------- *)

let connect_retrying path =
  let rec go tries =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () ->
        Unix.set_nonblock fd;
        Some fd
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        if tries >= 400 then None
        else begin
          Unix.sleepf 0.025;
          go (tries + 1)
        end
    | exception e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e
  in
  go 0

let response_id line =
  match J.parse line with
  | exception J.Malformed _ -> None
  | j -> (
      match J.field_opt j "id" with
      | Some (J.Num f) when Float.is_integer f -> Some (int_of_float f)
      | _ -> None)

(* Re-key a worker response line with the client's id. Worker lines are
   [Query.response_line] output — "{\"id\":N," then the payload bytes
   verbatim — so splicing at the first comma reproduces exactly the
   bytes the single-process server would have sent. *)
let rekey_response ~client_id line =
  match String.index_opt line ',' with
  | Some comma ->
      Printf.sprintf "{\"id\":%d,%s" client_id
        (String.sub line (comma + 1) (String.length line - comma - 1))
  | None -> Printf.sprintf "{\"id\":%d}" client_id

let serve_fleet ~shards (config : Server.config) =
  if shards < 1 then invalid_arg "Shard.serve_fleet: shards < 1";
  if shards = 1 then Server.serve config
  else begin
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ | Sys_error _ -> ());
    (* Claim the public path before forking: a second fleet racing for
       the same socket must refuse before it spawns anything. *)
    let listener = Server.bind_listener config.Server.socket in
    let git = Dut_obs.Manifest.git_describe () in
    let created_unix = Unix.time () in
    let started_ns = Dut_obs.Span.now_ns () in
    (* Workers fork before the parent touches any engine state: OCaml 5
       domains do not survive fork, so the split must happen while both
       sides are still single-domain. Each child is a complete PR-5
       server on its own socket; they share only the on-disk memo
       directory, which Memo's write-once discipline makes safe. *)
    let spawn i =
      let wconfig =
        {
          config with
          Server.socket = shard_socket config.Server.socket i;
          summary_path = shard_summary config.Server.summary_path i;
        }
      in
      match Unix.fork () with
      | 0 ->
          (try Unix.close listener with Unix.Unix_error _ -> ());
          let code =
            try
              Server.serve ~shard:i wconfig;
              0
            with e ->
              Printf.eprintf "dut: shard %d: %s\n%!" i (Printexc.to_string e);
              1
          in
          Unix._exit code
      | pid -> pid
    in
    let pids = Array.init shards spawn in
    let kill_workers signal =
      Array.iter
        (fun pid -> try Unix.kill pid signal with Unix.Unix_error _ -> ())
        pids
    in
    let workers =
      Array.to_list
        (Array.init shards (fun i ->
             match connect_retrying (shard_socket config.Server.socket i) with
             | Some fd ->
                 {
                   w_shard = i;
                   w_pid = pids.(i);
                   w_socket = shard_socket config.Server.socket i;
                   w_summary = shard_summary config.Server.summary_path i;
                   w_fd = Some fd;
                   w_in = Buffer.create 4096;
                   w_q = new_outq ();
                 }
             | None ->
                 kill_workers Sys.sigterm;
                 Array.iter
                   (fun pid ->
                     try ignore (Unix.waitpid [] pid)
                     with Unix.Unix_error _ -> ())
                   pids;
                 failwith
                   (Printf.sprintf "shard %d never came up on %s" i
                      (shard_socket config.Server.socket i))))
    in
    let warr = Array.of_list workers in
    let routing = ring ~shards in
    let routes : (int, route) Hashtbl.t = Hashtbl.create 256 in
    let next_rid = ref 0 in
    let clients = ref [] in
    let dirty = ref false in
    let last_publish = ref 0. in
    let publish ?(force = false) status =
      let now = Unix.gettimeofday () in
      if force || (!dirty && now -. !last_publish > 0.25) then begin
        write_fleet_summary ~config ~status ~git ~created_unix ~started_ns
          ~workers;
        dirty := false;
        last_publish := now
      end
    in
    let respond_local client id payload =
      if client.c_alive then q_push client.c_q (Query.response_line ~id payload ^ "\n");
      dirty := true
    in
    (* A worker vanishing mid-batch fails exactly the requests routed to
       it — in flight now, or arriving while it is down — with an error
       naming the shard; every other shard keeps answering. *)
    let mark_dead w =
      (match w.w_fd with
      | Some fd -> (try Unix.close fd with Unix.Unix_error _ -> ())
      | None -> ());
      w.w_fd <- None;
      let dead = ref [] in
      Hashtbl.iter
        (fun rid route -> if route.r_shard = w.w_shard then dead := (rid, route) :: !dead)
        routes;
      List.iter
        (fun (rid, route) ->
          Hashtbl.remove routes rid;
          Dut_obs.Metrics.incr m_dead_rejects;
          route.r_client.c_inflight <- route.r_client.c_inflight - 1;
          respond_local route.r_client route.r_client_id
            (Query.error_payload
               (Printf.sprintf "shard %d died mid-batch; retry" w.w_shard)))
        !dead
    in
    let handle_client_line client line =
      let request = Query.request_of_line line in
      match request.Query.query with
      | Error msg ->
          Dut_obs.Metrics.incr m_local_errors;
          respond_local client request.Query.id
            (Query.error_payload ("bad query: " ^ msg))
      | Ok q -> (
          let s = lookup routing (Query.canonical q) in
          match warr.(s).w_fd with
          | None ->
              Dut_obs.Metrics.incr m_dead_rejects;
              respond_local client request.Query.id
                (Query.error_payload
                   (Printf.sprintf "shard %d unavailable; retry" s))
          | Some _ ->
              let rid = !next_rid in
              incr next_rid;
              Hashtbl.add routes rid
                { r_client = client; r_client_id = request.Query.id; r_shard = s };
              client.c_inflight <- client.c_inflight + 1;
              Dut_obs.Metrics.incr m_routed;
              q_push warr.(s).w_q (Query.request_to_line ~id:rid q ^ "\n"))
    in
    let handle_worker_line w line =
      match response_id line with
      | None -> Dut_obs.Metrics.incr m_stray
      | Some rid -> (
          match Hashtbl.find_opt routes rid with
          | None -> Dut_obs.Metrics.incr m_stray
          | Some route ->
              Hashtbl.remove routes rid;
              route.r_client.c_inflight <- route.r_client.c_inflight - 1;
              if route.r_client.c_alive then
                q_push route.r_client.c_q
                  (rekey_response ~client_id:route.r_client_id line ^ "\n");
              dirty := true;
              ignore w)
    in
    let close_client c =
      c.c_alive <- false;
      try Unix.close c.c_fd with Unix.Unix_error _ -> ()
    in
    let accept_pending () =
      let rec go () =
        match Unix.accept listener with
        | fd, _ ->
            Unix.set_nonblock fd;
            clients :=
              {
                c_fd = fd;
                c_in = Buffer.create 256;
                c_q = new_outq ();
                c_alive = true;
                c_eof = false;
                c_inflight = 0;
              }
              :: !clients;
            go ()
        | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) ->
            ()
        | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
            go ()
        | exception Unix.Unix_error _ -> ()
      in
      go ()
    in
    let buf = Bytes.create 65536 in
    (* One router tick: poll everything, accept, shuttle lines both
       ways, flush what can be flushed. [accepting] is false during the
       shutdown drain. *)
    let tick ~accepting =
      let ordered = List.rev !clients in
      let live_workers = List.filter (fun w -> w.w_fd <> None) workers in
      let entries =
        Array.of_list
          ((if accepting then [ (listener, Poll.rd) ] else [])
          @ List.map
              (fun c ->
                (c.c_fd, if q_empty c.c_q then Poll.rd else Poll.rw))
              ordered
          @ List.map
              (fun w ->
                ( Option.get w.w_fd,
                  if q_empty w.w_q then Poll.rd else Poll.rw ))
              live_workers)
      in
      let ready = Poll.wait ~timeout_ms:250 entries in
      let base = if accepting then 1 else 0 in
      if accepting && ready.(0).Poll.read then accept_pending ();
      List.iteri
        (fun i c ->
          let r = ready.(base + i) in
          if c.c_alive && r.Poll.read then begin
            let lines =
              match Unix.read c.c_fd buf 0 (Bytes.length buf) with
              | 0 ->
                  c.c_eof <- true;
                  flush_trailing c.c_in
              | len -> take_lines c.c_in buf len
              | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
                  close_client c;
                  []
              | exception
                  Unix.Unix_error
                    ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _) ->
                  []
            in
            List.iter (handle_client_line c) lines
          end;
          if c.c_alive && (r.Poll.write || not (q_empty c.c_q)) then
            match q_flush c.c_fd c.c_q with
            | `Closed -> close_client c
            | `Done | `More -> ())
        ordered;
      let nclients = List.length ordered in
      List.iteri
        (fun i w ->
          let r = ready.(base + nclients + i) in
          match w.w_fd with
          | None -> ()
          | Some fd ->
              (if r.Poll.read then
                 let lines =
                   match Unix.read fd buf 0 (Bytes.length buf) with
                   | 0 ->
                       mark_dead w;
                       []
                   | len -> take_lines w.w_in buf len
                   | exception
                       Unix.Unix_error
                         ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
                       mark_dead w;
                       []
                   | exception
                       Unix.Unix_error
                         ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _)
                     ->
                       []
                 in
                 List.iter (handle_worker_line w) lines);
              (match w.w_fd with
              | Some fd when r.Poll.write || not (q_empty w.w_q) -> (
                  match q_flush fd w.w_q with
                  | `Closed -> mark_dead w
                  | `Done | `More -> ())
              | _ -> ()))
        live_workers;
      (* Reap clients that are done: half-closed with every routed
         request answered and every byte flushed. *)
      List.iter
        (fun c ->
          if c.c_alive && c.c_eof && c.c_inflight = 0 && q_empty c.c_q then
            close_client c)
        ordered;
      clients := List.filter (fun c -> c.c_alive) !clients
    in
    let module Runner = Dut_experiments.Runner in
    Printf.eprintf "dut: fleet of %d shards on %s (jobs=%d per shard)\n%!"
      shards config.Server.socket config.Server.jobs;
    publish ~force:true "serving";
    Runner.with_sigint_guard (fun () ->
        while not (Runner.interrupted ()) do
          tick ~accepting:true;
          publish "serving"
        done;
        (* Shutdown: stop accepting, pass the signal on, then keep
           relaying until every in-flight request is answered or its
           worker is gone (bounded by a 10s grace period). *)
        (try Unix.close listener with Unix.Unix_error _ -> ());
        (try Unix.unlink config.Server.socket with Unix.Unix_error _ -> ());
        kill_workers Sys.sigint;
        let grace_until = Unix.gettimeofday () +. 10. in
        while
          (Hashtbl.length routes > 0
          || List.exists (fun c -> c.c_alive && not (q_empty c.c_q)) !clients)
          && List.exists (fun w -> w.w_fd <> None) workers
          && Unix.gettimeofday () < grace_until
        do
          tick ~accepting:false
        done;
        (* Anything still unanswered loses its worker's reply: fill the
           slot so no client is left hanging. *)
        let leftovers = Hashtbl.fold (fun rid r acc -> (rid, r) :: acc) routes [] in
        List.iter
          (fun (rid, route) ->
            Hashtbl.remove routes rid;
            Dut_obs.Metrics.incr m_dead_rejects;
            respond_local route.r_client route.r_client_id
              (Query.error_payload "fleet shutting down; response dropped"))
          leftovers;
        List.iter
          (fun c ->
            if c.c_alive then ignore (q_flush c.c_fd c.c_q);
            close_client c)
          !clients;
        List.iter
          (fun w ->
            match w.w_fd with
            | Some fd ->
                (try Unix.close fd with Unix.Unix_error _ -> ());
                w.w_fd <- None
            | None -> ())
          workers);
    Array.iter
      (fun pid ->
        try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
      pids;
    write_fleet_summary ~config ~status:"closed" ~git ~created_unix ~started_ns
      ~workers;
    Printf.eprintf "dut: fleet drained — summary at %s\n%!"
      config.Server.summary_path
  end
