(** Consistent-hash sharding of the query service across worker
    processes — [dut serve --shards N].

    The routing rule is a pure function of the query's canonical bytes
    ({!Query.canonical}): an MD5-derived point on a 64-vnode-per-shard
    hash ring picks the worker, so the same query always lands on the
    same shard (across runs, shard processes, and client
    interleavings), and growing the fleet from N to N+1 shards remaps
    only ~1/(N+1) of the keyspace. Because the memo key is the
    canonical bytes plus the git stamp, shards agree by construction
    and can share one on-disk store — {!Memo}'s write-once discipline
    makes the concurrent stores safe.

    The fleet is one router process (the one that ran [dut serve]) plus
    N forked workers, each a complete {!Server.serve} loop on
    [socket ^ ".shardI"], publishing its own [dut-service/3] summary at
    [summary_path ^ ".shardI"]. The router owns the public socket,
    assigns fleet-unique ids to forwarded requests and splices the
    client's id back into each response — byte-identical to what a
    single server would have sent, which is what keeps the cold/warm
    replay contract shard-count-invariant. Lines that fail to parse
    are answered at the router with the same error bytes the single
    server produces.

    {e Failure semantics}: a worker dying mid-batch fails exactly the
    requests routed to it — in flight at the time, or arriving while it
    is down — with an [error] response naming the shard
    ([shard.dead_rejects]); every other shard keeps answering. The
    router never restarts workers.

    {e Shutdown}: SIGINT/SIGTERM stops the accept loop, forwards the
    signal to every worker, relays the drained responses (10s grace),
    fills anything still unanswered with an [error] response, reaps the
    workers and writes the final fleet summary (schema
    [dut-service-fleet/1]: router counters, per-worker status, and an
    aggregate over the worker summaries with the latency histograms
    merged exactly from their [latency_buckets]). *)

val fleet_schema : string
(** ["dut-service-fleet/1"]. *)

val shard_of_key : shards:int -> string -> int
(** Ring lookup for a canonical key: which of [shards] workers owns it.
    Deterministic across processes and runs. *)

val shard_socket : string -> int -> string
(** [shard_socket base i] is worker [i]'s socket path, [base ^ ".shardI"]. *)

val shard_summary : string -> int -> string
(** Worker [i]'s summary path. *)

val route_batch :
  ?caches:Memo.t option array ->
  ?deadline_s:float ->
  ?stamp:string ->
  jobs:int ->
  shards:int ->
  Query.request array ->
  string array
(** The in-process model of the fleet, and the spec the socket router
    implements: partition requests over the ring, evaluate each
    partition with {!Server.handle_batch} (worker [i] drawing on
    [caches.(i)]), answer unparseable requests locally, and reassemble
    the responses in request order. For any [shards] the result is
    byte-identical to [Server.handle_batch] over the whole batch —
    the property the determinism tests pin. *)

val serve_fleet : shards:int -> Server.config -> unit
(** Fork [shards] workers and run the router until SIGINT/SIGTERM.
    [shards = 1] degenerates to plain {!Server.serve} — no fork, no
    router, exactly the PR-5 server.

    @raise Failure if the public socket is owned by a live server or a
    worker fails to come up (spawned workers are reaped first). *)
