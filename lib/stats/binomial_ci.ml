type t = { estimate : float; lower : float; upper : float }

let wilson ~successes ~trials ~z =
  if trials <= 0 then invalid_arg "Binomial_ci.wilson: trials <= 0";
  if successes < 0 || successes > trials then
    invalid_arg "Binomial_ci.wilson: inconsistent counts";
  let n = float_of_int trials in
  let p = float_of_int successes /. n in
  let z2 = z *. z in
  let denom = 1. +. (z2 /. n) in
  let center = (p +. (z2 /. (2. *. n))) /. denom in
  let half =
    z /. denom *. sqrt ((p *. (1. -. p) /. n) +. (z2 /. (4. *. n *. n)))
  in
  { estimate = p; lower = Float.max 0. (center -. half); upper = Float.min 1. (center +. half) }

let wilson95 ~successes ~trials = wilson ~successes ~trials ~z:1.96

let lower_bound_clears ~successes ~trials ~threshold =
  (wilson95 ~successes ~trials).lower > threshold

let upper_bound_below ~successes ~trials ~threshold =
  (wilson95 ~successes ~trials).upper < threshold
