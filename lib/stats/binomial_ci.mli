(** Wilson score confidence intervals for Bernoulli proportions.

    Every success-probability estimate in the experiment harness carries a
    Wilson interval so "the tester succeeds with probability ≥ 2/3" is a
    statistically defensible claim rather than a point estimate. *)

type t = { estimate : float; lower : float; upper : float }

val wilson : successes:int -> trials:int -> z:float -> t
(** [wilson ~successes ~trials ~z] is the Wilson score interval at
    normal-quantile [z] (e.g. 1.96 for 95%).

    @raise Invalid_argument if [trials <= 0] or counts are inconsistent. *)

val wilson95 : successes:int -> trials:int -> t
(** {!wilson} at z = 1.96. *)

val lower_bound_clears : successes:int -> trials:int -> threshold:float -> bool
(** Does the 95% lower confidence bound exceed [threshold]? Used by the
    critical-q search to declare a sample size sufficient. *)

val upper_bound_below : successes:int -> trials:int -> threshold:float -> bool
(** Does the 95% upper confidence bound fall below [threshold]? *)
