type interval = { estimate : float; lower : float; upper : float }

let percentile_interval ~confidence draws ~estimate =
  let tail = (1. -. confidence) /. 2. in
  {
    estimate;
    lower = Summary.quantile draws tail;
    upper = Summary.quantile draws (1. -. tail);
  }

let resample rng points =
  let n = Array.length points in
  Array.init n (fun _ -> points.(Dut_prng.Rng.int rng n))

let exponent_ci ?(resamples = 1000) ?(confidence = 0.9) rng points =
  if Array.length points < 3 then
    invalid_arg "Bootstrap.exponent_ci: need at least 3 points";
  if confidence <= 0. || confidence >= 1. then
    invalid_arg "Bootstrap.exponent_ci: confidence out of (0,1)";
  let estimate = Fit.power_law_exponent points in
  let draws = ref [] in
  let attempts = ref 0 in
  while List.length !draws < resamples && !attempts < 10 * resamples do
    incr attempts;
    let sample = resample rng points in
    (* A resample with no x-variation cannot be fitted; skip it. *)
    match Fit.power_law_exponent sample with
    | slope -> draws := slope :: !draws
    | exception Invalid_argument _ -> ()
  done;
  if !draws = [] then { estimate; lower = Float.nan; upper = Float.nan }
  else percentile_interval ~confidence (Array.of_list !draws) ~estimate

let mean_ci ?(resamples = 1000) ?(confidence = 0.9) rng values =
  if Array.length values = 0 then invalid_arg "Bootstrap.mean_ci: empty sample";
  if confidence <= 0. || confidence >= 1. then
    invalid_arg "Bootstrap.mean_ci: confidence out of (0,1)";
  let estimate = Summary.mean values in
  let draws =
    Array.init resamples (fun _ -> Summary.mean (resample rng values))
  in
  percentile_interval ~confidence draws ~estimate
