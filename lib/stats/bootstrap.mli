(** Bootstrap confidence intervals for fitted quantities.

    The experiment tables report fitted power-law exponents; a point
    estimate from 4–9 noisy points deserves an uncertainty. Resampling
    the points with replacement and refitting gives the standard
    percentile bootstrap interval. *)

type interval = { estimate : float; lower : float; upper : float }

val exponent_ci :
  ?resamples:int ->
  ?confidence:float ->
  Dut_prng.Rng.t ->
  (float * float) array ->
  interval
(** [exponent_ci rng points] is the percentile bootstrap interval for
    the log-log slope of [points]. Degenerate resamples (all-equal x)
    are skipped. Defaults: 1000 resamples, 0.9 confidence.

    @raise Invalid_argument with fewer than 3 points, or confidence
    outside (0,1). *)

val mean_ci :
  ?resamples:int ->
  ?confidence:float ->
  Dut_prng.Rng.t ->
  float array ->
  interval
(** Percentile bootstrap interval for a sample mean. *)
