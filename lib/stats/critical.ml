let bracket_then_bisect ~lo ~hi ok =
  if lo < 0 || hi < lo then invalid_arg "Critical.search: bad bounds";
  (* Doubling phase: find the first power-of-two-scaled point that passes. *)
  let rec double v prev =
    if v >= hi then if ok hi then Some (prev, hi) else None
    else if ok v then Some (prev, v)
    else double (min hi ((2 * v) + 1)) v
  in
  match double lo (lo - 1) with
  | None -> None
  | Some (below, above) ->
      (* Invariant: ok above = true; ok below = false (or below = lo-1). *)
      let rec bisect below above =
        if above - below <= 1 then above
        else begin
          let mid = below + ((above - below) / 2) in
          if ok mid then bisect below mid else bisect mid above
        end
      in
      Some (bisect below above)

let search ?(lo = 1) ?(hi = 1 lsl 22) ok = bracket_then_bisect ~lo ~hi ok
