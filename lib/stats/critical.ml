(* Every evaluation of a caller's predicate — typically a full
   Monte-Carlo power estimate — counts one `search.probes`; a seeded
   search that certifies its guess in two probes also counts one
   `search.exact_hits`. The probe sequence is a deterministic function
   of the predicate's answers, so the totals are jobs-invariant. The
   wrapping happens once per search entry point: [bisect] must always
   be handed an already-counted predicate. *)
let m_probes = Dut_obs.Metrics.counter "search.probes"

let m_exact_hits = Dut_obs.Metrics.counter "search.exact_hits"

let counted ok v =
  Dut_obs.Metrics.incr m_probes;
  ok v

(* Invariant for [bisect]: ok above = true; ok below = false (or below
   is one past the lower search bound). *)
let bisect ~below ~above ok =
  let rec go below above =
    if above - below <= 1 then above
    else begin
      let mid = below + ((above - below) / 2) in
      if ok mid then go below mid else go mid above
    end
  in
  go below above

let bracket_then_bisect ~lo ~hi ok =
  if lo < 0 || hi < lo then invalid_arg "Critical.search: bad bounds";
  let ok = counted ok in
  (* Doubling phase: find the first power-of-two-scaled point that passes. *)
  let rec double v prev =
    if v >= hi then if ok hi then Some (prev, hi) else None
    else if ok v then Some (prev, v)
    else double (min hi ((2 * v) + 1)) v
  in
  match double lo (lo - 1) with
  | None -> None
  | Some (below, above) -> Some (bisect ~below ~above ok)

let search ?(lo = 1) ?(hi = 1 lsl 22) ok = bracket_then_bisect ~lo ~hi ok

let search_seeded ?(lo = 1) ?(hi = 1 lsl 22) ~guess ok =
  if lo < 0 || hi < lo then invalid_arg "Critical.search_seeded: bad bounds";
  let ok = counted ok in
  let guess = min hi (max lo guess) in
  if ok guess then begin
    if guess = lo then Some lo
    else if not (ok (guess - 1)) then begin
      (* Exact hit: the point below the guess fails, so the guess is the
         least passing value. Costs one probe when the guess is merely
         close, but collapses the frequent parameter-invariant case
         (e.g. a grid whose answer does not move between points) from a
         halve-and-bisect descent to two probes. *)
      Dut_obs.Metrics.incr m_exact_hits;
      Some guess
    end
    else begin
      (* The guess passes: walk down geometrically until a failing lower
         bracket (or [lo] itself passes), then bisect. With an accurate
         guess this skips the whole cold doubling phase. *)
      let rec down above =
        if above = lo then Some lo
        else begin
          let cand = max lo (above / 2) in
          if ok cand then down cand else Some (bisect ~below:cand ~above ok)
        end
      in
      down (guess - 1)
    end
  end
  else begin
    (* The guess fails: it is a certified lower bracket — grow upward
       from it instead of from [lo]. *)
    let rec up below =
      if below >= hi then None
      else begin
        let cand = min hi ((2 * below) + 1) in
        if ok cand then Some (bisect ~below ~above:cand ok) else up cand
      end
    in
    up guess
  end
