(** Search for the critical value of a monotone resource parameter.

    The empirical analogue of "sample complexity": the smallest per-player
    sample count q at which a tester succeeds. The success predicate is
    assumed monotone in the parameter (all implemented testers can ignore
    extra samples, so more never hurts). The search brackets by doubling
    and then bisects, so finding the critical value costs logarithmically
    many predicate evaluations — each of which is typically a full
    Monte-Carlo power estimate. *)

val search : ?lo:int -> ?hi:int -> (int -> bool) -> int option
(** [search ~lo ~hi ok] is the least [v] in [lo..hi] with [ok v], assuming
    [ok] is monotone (false … false true … true); [None] if [ok hi] is
    false. Defaults: [lo = 1], [hi = 1 lsl 22]. Evaluates [ok] O(log)
    times via doubling + bisection.

    @raise Invalid_argument if [lo < 0] or [hi < lo]. *)

val bracket_then_bisect : lo:int -> hi:int -> (int -> bool) -> int option
(** Same as {!search} with explicit bounds; exposed for testing. *)
