(** Search for the critical value of a monotone resource parameter.

    The empirical analogue of "sample complexity": the smallest per-player
    sample count q at which a tester succeeds. The success predicate is
    assumed monotone in the parameter (all implemented testers can ignore
    extra samples, so more never hurts). The search brackets by doubling
    and then bisects, so finding the critical value costs logarithmically
    many predicate evaluations — each of which is typically a full
    Monte-Carlo power estimate.

    Every predicate evaluation tallies one [search.probes] on
    {!Dut_obs.Metrics} (and each two-probe certified guess of
    {!search_seeded} one [search.exact_hits]); the probe sequence is
    deterministic in the predicate's answers, so both totals are
    jobs-invariant. *)

val search : ?lo:int -> ?hi:int -> (int -> bool) -> int option
(** [search ~lo ~hi ok] is the least [v] in [lo..hi] with [ok v], assuming
    [ok] is monotone (false … false true … true); [None] if [ok hi] is
    false. Defaults: [lo = 1], [hi = 1 lsl 22]. Evaluates [ok] O(log)
    times via doubling + bisection.

    @raise Invalid_argument if [lo < 0] or [hi < lo]. *)

val bracket_then_bisect : lo:int -> hi:int -> (int -> bool) -> int option
(** Same as {!search} with explicit bounds; exposed for testing. *)

val search_seeded :
  ?lo:int -> ?hi:int -> guess:int -> (int -> bool) -> int option
(** [search_seeded ~guess ok] is {!search} warm-started at [guess]
    (clamped into [lo..hi]): if [ok guess] holds the search shrinks
    geometrically below it for a failing bracket, otherwise it grows
    geometrically above it — either way replacing the cold doubling
    phase from [lo]. Returns the same answer as {!search} for every
    monotone predicate; an accurate guess (e.g. the previous grid
    point's critical value scaled by the theory exponent) roughly
    halves the number of predicate evaluations, each of which is a
    full Monte-Carlo power estimate.

    @raise Invalid_argument if [lo < 0] or [hi < lo]. *)
