type t = { slope : float; intercept : float; r2 : float }

let linear pts =
  let n = Array.length pts in
  if n < 2 then invalid_arg "Fit.linear: need at least 2 points";
  let nf = float_of_int n in
  let sx = Array.fold_left (fun a (x, _) -> a +. x) 0. pts in
  let sy = Array.fold_left (fun a (_, y) -> a +. y) 0. pts in
  let mx = sx /. nf and my = sy /. nf in
  let sxx = Array.fold_left (fun a (x, _) -> a +. ((x -. mx) *. (x -. mx))) 0. pts in
  let sxy = Array.fold_left (fun a (x, y) -> a +. ((x -. mx) *. (y -. my))) 0. pts in
  let syy = Array.fold_left (fun a (_, y) -> a +. ((y -. my) *. (y -. my))) 0. pts in
  if sxx = 0. then invalid_arg "Fit.linear: zero x-variance";
  let slope = sxy /. sxx in
  let intercept = my -. (slope *. mx) in
  let r2 = if syy = 0. then 1. else sxy *. sxy /. (sxx *. syy) in
  { slope; intercept; r2 }

let log_log pts =
  Array.iter
    (fun (x, y) ->
      if x <= 0. || y <= 0. then invalid_arg "Fit.log_log: coordinates must be positive")
    pts;
  linear (Array.map (fun (x, y) -> (log x, log y)) pts)

let power_law_exponent pts = (log_log pts).slope
