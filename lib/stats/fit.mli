(** Least-squares fits used to recover scaling exponents from measured
    tables: fitting q*(k) ~ C·k^b on a log-log scale turns Theorem 1.1's
    prediction into "the fitted b is ≈ −1/2". *)

type t = {
  slope : float;
  intercept : float;
  r2 : float;  (** coefficient of determination; 1 = perfect fit *)
}

val linear : (float * float) array -> t
(** Ordinary least squares y = intercept + slope·x.

    @raise Invalid_argument with fewer than 2 points or zero x-variance. *)

val log_log : (float * float) array -> t
(** Fit y = C·x^slope by OLS on (ln x, ln y); [intercept] is ln C.

    @raise Invalid_argument if any coordinate is ≤ 0, or as {!linear}. *)

val power_law_exponent : (float * float) array -> float
(** Shorthand for [(log_log pts).slope]. *)
