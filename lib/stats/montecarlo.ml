let estimate_prob ~trials rng event =
  if trials <= 0 then invalid_arg "Montecarlo.estimate_prob: trials <= 0";
  let successes = ref 0 in
  for _ = 1 to trials do
    if event (Dut_prng.Rng.split rng) then incr successes
  done;
  Binomial_ci.wilson95 ~successes:!successes ~trials

let estimate_mean ~trials rng f =
  if trials <= 0 then invalid_arg "Montecarlo.estimate_mean: trials <= 0";
  Summary.of_array (Array.init trials (fun _ -> f (Dut_prng.Rng.split rng)))
