(* Trials actually executed, tallied on the shared metric vocabulary
   (`mc.trials_used` in Dut_obs) so the bench harness, the manifest and
   the --metrics dump all read one number. One counter add per
   *estimate* (not per trial): negligible overhead, and still exact
   because every estimator knows how many trials it ran. Adaptivity
   makes trials_used jobs-invariant (stopping depends only on counts at
   fixed chunk boundaries), so the summed total is bit-equal for every
   jobs count. *)
let m_trials_used = Dut_obs.Metrics.counter "mc.trials_used"

let m_early_stops = Dut_obs.Metrics.counter "mc.adaptive_early_stops"

let note_trials n = Dut_obs.Metrics.add m_trials_used n

let estimate_prob ?jobs ~trials rng event =
  if trials <= 0 then invalid_arg "Montecarlo.estimate_prob: trials <= 0";
  let successes =
    Dut_engine.Parallel.count ?jobs ~rng ~n:trials (fun r _ -> event r)
  in
  note_trials trials;
  Binomial_ci.wilson95 ~successes ~trials

type adaptive = { ci : Binomial_ci.t; trials_used : int }

(* 16 is the smallest batch whose Wilson interval can decide the
   harness's default 0.72 level in one chunk on both sides (16/16 has
   lower bound 0.806, 0/16 has upper bound 0.194), so an off-boundary
   probe costs one batch. Stricter levels just take another batch. *)
let default_chunk = 16

let estimate_prob_adaptive ?jobs ?(chunk = default_chunk) ~max_trials ~target
    rng event =
  if max_trials <= 0 then
    invalid_arg "Montecarlo.estimate_prob_adaptive: max_trials <= 0";
  if chunk <= 0 then invalid_arg "Montecarlo.estimate_prob_adaptive: chunk <= 0";
  if target < 0. || target > 1. then
    invalid_arg "Montecarlo.estimate_prob_adaptive: target out of [0,1]";
  (* Chunked sequential stopping: batches of [chunk] trials, halting as
     soon as the Wilson 95% interval is decisively on one side of
     [target]. Chunk boundaries and the stopping decision depend only
     on accumulated counts, and each batch pre-splits its child streams
     in index order, so the result is bit-identical for every [jobs]
     count — the engine contract survives adaptivity. *)
  let successes = ref 0 in
  let used = ref 0 in
  let rec go () =
    let batch = min chunk (max_trials - !used) in
    successes :=
      !successes
      + Dut_engine.Parallel.count ?jobs ~rng ~n:batch (fun r _ -> event r);
    used := !used + batch;
    let ci = Binomial_ci.wilson95 ~successes:!successes ~trials:!used in
    if !used >= max_trials || ci.lower > target || ci.upper < target then ci
    else go ()
  in
  let ci = go () in
  note_trials !used;
  if !used < max_trials then Dut_obs.Metrics.incr m_early_stops;
  { ci; trials_used = !used }

let estimate_mean ?jobs ~trials rng f =
  if trials <= 0 then invalid_arg "Montecarlo.estimate_mean: trials <= 0";
  note_trials trials;
  Summary.of_array (Dut_engine.Parallel.init ?jobs ~rng ~n:trials (fun r _ -> f r))
