let estimate_prob ?jobs ~trials rng event =
  if trials <= 0 then invalid_arg "Montecarlo.estimate_prob: trials <= 0";
  let successes =
    Dut_engine.Parallel.count ?jobs ~rng ~n:trials (fun r _ -> event r)
  in
  Binomial_ci.wilson95 ~successes ~trials

let estimate_mean ?jobs ~trials rng f =
  if trials <= 0 then invalid_arg "Montecarlo.estimate_mean: trials <= 0";
  Summary.of_array (Dut_engine.Parallel.init ?jobs ~rng ~n:trials (fun r _ -> f r))
