(** Monte-Carlo estimation of event probabilities.

    Both estimators run their trials through {!Dut_engine.Parallel}:
    child RNG streams are pre-split per trial in index order, so the
    result is bit-identical for every [jobs] count (and identical to the
    historical sequential loop). [jobs] defaults to the ambient
    {!Dut_engine.Parallel.default_jobs}, i.e. [DUT_JOBS] or 1. *)

val estimate_prob :
  ?jobs:int ->
  trials:int ->
  Dut_prng.Rng.t ->
  (Dut_prng.Rng.t -> bool) ->
  Binomial_ci.t
(** [estimate_prob ~trials rng event] runs [event] on [trials]
    independent child streams of [rng] (up to [jobs] at a time) and
    returns the Wilson 95% interval of the success probability. [event]
    must draw randomness only from the stream it is handed.

    @raise Invalid_argument if [trials <= 0]. *)

val estimate_mean :
  ?jobs:int ->
  trials:int ->
  Dut_prng.Rng.t ->
  (Dut_prng.Rng.t -> float) ->
  Summary.t
(** Summary of [trials] evaluations of a random quantity, parallelised
    like {!estimate_prob}. *)
