(** Monte-Carlo estimation of event probabilities.

    All estimators run their trials through {!Dut_engine.Parallel}:
    child RNG streams are pre-split per trial in index order, so the
    result is bit-identical for every [jobs] count (and identical to the
    historical sequential loop). [jobs] defaults to the ambient
    {!Dut_engine.Parallel.default_jobs}, i.e. [DUT_JOBS] or 1. *)

val estimate_prob :
  ?jobs:int ->
  trials:int ->
  Dut_prng.Rng.t ->
  (Dut_prng.Rng.t -> bool) ->
  Binomial_ci.t
(** [estimate_prob ~trials rng event] runs [event] on [trials]
    independent child streams of [rng] (up to [jobs] at a time) and
    returns the Wilson 95% interval of the success probability. [event]
    must draw randomness only from the stream it is handed.

    @raise Invalid_argument if [trials <= 0]. *)

type adaptive = { ci : Binomial_ci.t; trials_used : int }
(** Result of an adaptive estimate: the Wilson interval at the stopping
    point and how many trials were actually spent. *)

val estimate_prob_adaptive :
  ?jobs:int ->
  ?chunk:int ->
  max_trials:int ->
  target:float ->
  Dut_prng.Rng.t ->
  (Dut_prng.Rng.t -> bool) ->
  adaptive
(** [estimate_prob_adaptive ~max_trials ~target rng event] estimates
    the same probability as {!estimate_prob} but spends trials in
    batches of [chunk] (default 16 — the smallest batch that can
    decide the harness's default 0.72 level in one chunk on either
    side) and {e stops early} as soon as the
    running Wilson 95% interval lies decisively above or below
    [target] (interval lower bound > target, or upper bound < target),
    with a hard cap of [max_trials]. Far from the decision boundary
    one batch settles the verdict, so a probe costs O(chunk) instead
    of the full budget; near the boundary the full budget is spent,
    exactly as the fixed estimator would.

    The Wilson interval always contains the point estimate, so a
    decisive stop and the point-estimate comparison
    [ci.estimate >= target] agree by construction. Because the
    interval is monitored after every batch the 95% coverage is
    nominal, not exact — the harness treats [target] as a verdict
    threshold, not an inference boundary.

    Stopping depends only on accumulated counts at fixed chunk
    boundaries and every batch pre-splits its streams in index order,
    so the result — estimate {e and} trials_used — is bit-identical
    for every [jobs] count.

    @raise Invalid_argument if [max_trials <= 0], [chunk <= 0], or
    [target] is outside [0,1]. *)

val estimate_mean :
  ?jobs:int ->
  trials:int ->
  Dut_prng.Rng.t ->
  (Dut_prng.Rng.t -> float) ->
  Summary.t
(** Summary of [trials] evaluations of a random quantity, parallelised
    like {!estimate_prob}. *)

(** {2 Trial accounting}

    Every estimator above tallies the trials it actually executed onto
    the {!Dut_obs.Metrics} counter [mc.trials_used] — the natural
    "work" unit that adaptive stopping optimises — and each decisive
    early stop onto [mc.adaptive_early_stops]. Both totals are
    jobs-invariant (stopping depends only on accumulated counts at
    fixed chunk boundaries). Read them with
    [Dut_obs.Metrics.value "mc.trials_used"] or a snapshot delta; the
    bench harness and the run manifest do exactly that, so every
    surface shares one metric vocabulary (see [doc/observability.md]). *)
