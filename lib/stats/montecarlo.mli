(** Monte-Carlo estimation of event probabilities. *)

val estimate_prob :
  trials:int -> Dut_prng.Rng.t -> (Dut_prng.Rng.t -> bool) -> Binomial_ci.t
(** [estimate_prob ~trials rng event] runs [event] on [trials] independent
    child streams of [rng] and returns the Wilson 95% interval of the
    success probability.

    @raise Invalid_argument if [trials <= 0]. *)

val estimate_mean :
  trials:int -> Dut_prng.Rng.t -> (Dut_prng.Rng.t -> float) -> Summary.t
(** Summary of [trials] evaluations of a random quantity. *)
