type t = {
  count : int;
  mean : float;
  variance : float;
  std : float;
  min : float;
  max : float;
}

let mean a =
  if Array.length a = 0 then invalid_arg "Summary.mean: empty array";
  Array.fold_left ( +. ) 0. a /. float_of_int (Array.length a)

let variance a =
  let n = Array.length a in
  if n < 2 then 0.
  else begin
    let m = mean a in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. a in
    ss /. float_of_int (n - 1)
  end

let of_array a =
  if Array.length a = 0 then invalid_arg "Summary.of_array: empty array";
  let m = mean a and v = variance a in
  {
    count = Array.length a;
    mean = m;
    variance = v;
    std = sqrt v;
    min = Array.fold_left Float.min a.(0) a;
    max = Array.fold_left Float.max a.(0) a;
  }

let quantile a p =
  if Array.length a = 0 then invalid_arg "Summary.quantile: empty array";
  if p < 0. || p > 1. then invalid_arg "Summary.quantile: p out of [0,1]";
  let sorted = Array.copy a in
  (* Monomorphic comparison: same total order as the polymorphic
     [compare] on floats (NaN included), minus the dispatch cost. *)
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let h = p *. float_of_int (n - 1) in
  let lo = int_of_float (floor h) in
  let hi = min (lo + 1) (n - 1) in
  let frac = h -. float_of_int lo in
  sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let zscore ~null_mean ~null_std x =
  if null_std > 0. then (x -. null_mean) /. null_std
  else if x = null_mean then 0.
  else if x > null_mean then infinity
  else neg_infinity
