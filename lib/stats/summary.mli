(** Basic summary statistics over float samples. *)

type t = {
  count : int;
  mean : float;
  variance : float;  (** unbiased (n−1) sample variance; 0 when count < 2 *)
  std : float;
  min : float;
  max : float;
}

val of_array : float array -> t
(** @raise Invalid_argument on an empty array. *)

val mean : float array -> float
val variance : float array -> float

val quantile : float array -> float -> float
(** [quantile a p] for p ∈ [0,1], by linear interpolation on the sorted
    copy ("type 7"). Used for calibrating referee cutoffs from null runs.

    @raise Invalid_argument on an empty array or p outside [0,1]. *)

val zscore : null_mean:float -> null_std:float -> float -> float
(** Standardized deviation from a null distribution; [infinity] when the
    null std is 0 and the value differs from the mean, 0 when equal. *)
