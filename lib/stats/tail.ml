let poisson_sf ~lambda c =
  if lambda < 0. then invalid_arg "Tail.poisson_sf: negative lambda";
  if c <= 0 then 1.
  else if lambda = 0. then 0.
  else begin
    (* P[X >= c] = 1 - sum_{i<c} e^-l l^i / i!, accumulated in log space
       free form via the running term. *)
    let term = ref (exp (-.lambda)) in
    let cdf = ref !term in
    for i = 1 to c - 1 do
      term := !term *. lambda /. float_of_int i;
      cdf := !cdf +. !term
    done;
    Float.max 0. (1. -. !cdf)
  end

let poisson_isf ~lambda ~p =
  if p <= 0. || p > 1. then invalid_arg "Tail.poisson_isf: p out of (0,1]";
  let rec go c = if poisson_sf ~lambda c <= p then c else go (c + 1) in
  go 0

(* Abramowitz & Stegun 7.1.26. *)
let erf x =
  let a1 = 0.254829592
  and a2 = -0.284496736
  and a3 = 1.421413741
  and a4 = -1.453152027
  and a5 = 1.061405429
  and p = 0.3275911 in
  let sign = if x < 0. then -1. else 1. in
  let x = Float.abs x in
  let t = 1. /. (1. +. (p *. x)) in
  let y =
    1.
    -. ((((((((a5 *. t) +. a4) *. t) +. a3) *. t) +. a2) *. t) +. a1)
       *. t *. exp (-.x *. x)
  in
  sign *. y

let normal_cdf x = 0.5 *. (1. +. erf (x /. sqrt 2.))

let normal_sf x = 1. -. normal_cdf x

let normal_isf p =
  if p <= 1e-12 || p >= 1. then invalid_arg "Tail.normal_isf: p out of range";
  let rec bisect lo hi i =
    if i = 0 then (lo +. hi) /. 2.
    else begin
      let mid = (lo +. hi) /. 2. in
      if normal_sf mid > p then bisect mid hi (i - 1) else bisect lo mid (i - 1)
    end
  in
  bisect (-10.) 10. 100

let binomial_sf ~k ~p t =
  if k < 0 || p < 0. || p > 1. then invalid_arg "Tail.binomial_sf";
  if t <= 0 then 1.
  else if t > k then 0.
  else if p = 0. then 0.
  else if p = 1. then 1.
  else begin
    (* Sum the cdf below t in log space so extreme tails don't underflow
       the whole computation (0.5^1024 is 0. in float). *)
    let logfact = Array.make (k + 1) 0. in
    for i = 2 to k do
      logfact.(i) <- logfact.(i - 1) +. log (float_of_int i)
    done;
    let lp = log p and lq = log (1. -. p) in
    let cdf = ref 0. in
    for i = 0 to t - 1 do
      let lpmf =
        logfact.(k) -. logfact.(i) -. logfact.(k - i)
        +. (float_of_int i *. lp)
        +. (float_of_int (k - i) *. lq)
      in
      cdf := !cdf +. exp lpmf
    done;
    Float.max 0. (Float.min 1. (1. -. !cdf))
  end

let binomial_max_p ~k ~t ~level =
  if t < 1 || t > k then invalid_arg "Tail.binomial_max_p: t outside [1,k]";
  if level <= 0. || level >= 1. then invalid_arg "Tail.binomial_max_p: bad level";
  let rec bisect lo hi i =
    if i = 0 then lo
    else begin
      let mid = (lo +. hi) /. 2. in
      if binomial_sf ~k ~p:mid t <= level then bisect mid hi (i - 1)
      else bisect lo mid (i - 1)
    end
  in
  bisect 0. 1. 30

let count_cutoff ~mean ~p =
  if mean < 0. then invalid_arg "Tail.count_cutoff: negative mean";
  if mean <= 50. then poisson_isf ~lambda:mean ~p
  else begin
    let z = normal_isf p in
    int_of_float (ceil (mean +. (z *. sqrt mean) +. 0.5))
  end
