(** Tail probabilities and tail quantiles of the reference distributions
    used to set referee and player cutoffs.

    Collision counts under the uniform distribution are (pairwise
    independent) sums of rare indicators: Poisson in the sparse regime,
    normal beyond. The AND- and small-threshold testers need {e extreme}
    cutoffs (per-player false-alarm ≈ 1/k), which is exactly where
    Monte-Carlo calibration would need ≫ k runs — so these closed forms
    are what make those testers implementable. *)

val poisson_sf : lambda:float -> int -> float
(** [poisson_sf ~lambda c] = P[Poisson(λ) ≥ c]. Exact summation with
    early termination; [1.] for c ≤ 0.

    @raise Invalid_argument if λ < 0. *)

val poisson_isf : lambda:float -> p:float -> int
(** Smallest [c] with [poisson_sf ~lambda c <= p] — the one-sided upper
    cutoff at false-alarm level [p].

    @raise Invalid_argument if p ≤ 0 or p > 1. *)

val normal_cdf : float -> float
(** Standard normal CDF Φ, via the Abramowitz–Stegun 7.1.26 erf
    approximation (absolute error < 1.5e-7). *)

val normal_sf : float -> float
(** 1 − Φ. *)

val normal_isf : float -> float
(** [normal_isf p] is the z with [normal_sf z = p], by bisection
    (robust for p ∈ (1e-12, 1)).

    @raise Invalid_argument outside that range. *)

val binomial_sf : k:int -> p:float -> int -> float
(** [binomial_sf ~k ~p t] = P[Bin(k,p) ≥ t], by exact pmf summation.

    @raise Invalid_argument if k < 0 or p outside [0,1]. *)

val binomial_max_p : k:int -> t:int -> level:float -> float
(** The largest success probability p such that
    [binomial_sf ~k ~p t <= level] — the most detection-friendly
    per-player alarm rate that still keeps a reject-iff-≥t referee's
    false-alarm under [level]. Bisection to 1e-6.

    @raise Invalid_argument if t outside [1,k] or level outside (0,1). *)

val count_cutoff : mean:float -> p:float -> int
(** One-sided upper cutoff for a count statistic with null mean [mean]:
    the smallest integer c such that a count ≥ c has null probability
    ≤ [p], using the Poisson model for mean ≤ 50 and a continuity-
    corrected normal (variance = mean) beyond. *)
