type window = Growing | Sliding of int

let window_to_string = function
  | Growing -> "growing"
  | Sliding w -> Printf.sprintf "sliding:%d" w

type verdict = {
  index : int;
  samples_seen : int;
  window_samples : int;
  stat : float;
  threshold : float;
  reject : bool;
  alpha_spent : float;
}

type t = {
  eps : float;
  alpha : float;
  window : window;
  every : int;
  mutable cum : Sketch.t;
  ring : Sketch.t option array;  (* last [w] chunk sketches, mod-indexed *)
  mutable nchunks : int;
  mutable checkpoints : int;
  mutable spent : float;
  mutable first_reject : verdict option;
  mutable emitted : verdict list;  (* reverse emission order *)
}

let m_verdicts = Dut_obs.Metrics.counter "stream.verdicts_emitted"

let create ?(window = Growing) ?(alpha = 0.05) ?(every = 1) ~eps cfg =
  if not (eps > 0. && eps <= 1.) then invalid_arg "Anytime.create: eps not in (0,1]";
  if not (alpha > 0. && alpha < 1.) then
    invalid_arg "Anytime.create: alpha not in (0,1)";
  if every < 1 then invalid_arg "Anytime.create: every < 1";
  let ring =
    match window with
    | Growing -> [||]
    | Sliding w when w >= 1 -> Array.make w None
    | Sliding _ -> invalid_arg "Anytime.create: sliding window < 1 chunk"
  in
  {
    eps;
    alpha;
    window;
    every;
    cum = Sketch.create cfg;
    ring;
    nchunks = 0;
    checkpoints = 0;
    spent = 0.;
    first_reject = None;
    emitted = [];
  }

(* α_j = α · 6/(π²·j²): a convergent spending schedule whose tail decays
   polynomially, so late checkpoints keep usable budget (a 2^-j
   schedule starves a long run's sliding windows). *)
let alpha_at t j = t.alpha *. 6. /. (Float.pi *. Float.pi *. float_of_int j *. float_of_int j)

let window_sketch t =
  match t.window with
  | Growing -> t.cum
  | Sliding w ->
      let first = max 0 (t.nchunks - w) in
      let sk = ref None in
      for c = first to t.nchunks - 1 do
        match t.ring.(c mod w) with
        | None -> assert false
        | Some chunk ->
            sk := Some (match !sk with None -> chunk | Some acc -> Sketch.merge acc chunk)
      done;
      (match !sk with None -> t.cum (* no chunks yet: empty cum *) | Some sk -> sk)

let checkpoint t =
  t.checkpoints <- t.checkpoints + 1;
  let j = t.checkpoints in
  let aj = alpha_at t j in
  t.spent <- t.spent +. aj;
  let sk = window_sketch t in
  let stat = Sketch.excess sk in
  let slack = Sketch.null_sd sk /. sqrt aj in
  let threshold = Float.max (Sketch.gap sk ~eps:t.eps /. 2.) slack in
  let v =
    {
      index = j;
      samples_seen = Sketch.count t.cum;
      window_samples = Sketch.count sk;
      stat;
      threshold;
      reject = stat > threshold;
      alpha_spent = t.spent;
    }
  in
  if v.reject && t.first_reject = None then t.first_reject <- Some v;
  t.emitted <- v :: t.emitted;
  Dut_obs.Metrics.incr m_verdicts;
  v

let observe t chunk =
  t.cum <- Sketch.merge t.cum chunk;
  (match t.window with
  | Growing -> ()
  | Sliding w -> t.ring.(t.nchunks mod w) <- Some chunk);
  t.nchunks <- t.nchunks + 1;
  if t.nchunks mod t.every = 0 then Some (checkpoint t) else None

let rejected t = t.first_reject

let chunks_seen t = t.nchunks

let samples_seen t = Sketch.count t.cum

let cumulative t = t.cum

let verdicts t = List.rev t.emitted

let final t =
  let stat = Sketch.decision_stat t.cum in
  let cutoff = Sketch.cutoff t.cum ~eps:t.eps in
  let v =
    {
      index = 0;
      samples_seen = Sketch.count t.cum;
      window_samples = Sketch.count t.cum;
      stat;
      threshold = cutoff;
      reject = not (stat < cutoff);
      alpha_spent = t.spent;
    }
  in
  Dut_obs.Metrics.incr m_verdicts;
  v
