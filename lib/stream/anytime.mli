(** Anytime-valid uniformity verdicts over growing and sliding windows.

    The referee consumes the per-chunk sketches emitted by {!Ingest}
    (already merged across players, or per player — sketches merge
    freely) and emits a verdict at every checkpoint: is the stream seen
    so far (growing window) or the last [w] chunks of it (sliding
    window) consistent with the uniform distribution?

    {b The eps-spending rule.} Checkpoint [j] is granted a failure
    budget α_j = α · 6/(π²·j²), so Σ_j α_j ≤ α: by a Chebyshev bound on
    the collision statistic, the probability that a truly uniform
    stream is {e ever} rejected — at any checkpoint, no matter how long
    the stream runs — is at most α. A rejection is therefore
    {e anytime-valid}: the referee may stop at the first rejection
    without multiple-testing inflation. The rejection threshold at
    checkpoint [j] is

    [max (gap/2) (null_sd / sqrt α_j)]

    on the zero-centered {!Sketch.excess} statistic — never below the
    batch midpoint cutoff, widened while the spent confidence demands
    it.

    {b Determinism.} Verdicts are pure integer/float arithmetic on the
    sketch state; with the same chunk sequence they are bit-identical
    for every jobs count. {b Final-verdict contract:} {!final} applies
    the batch midpoint rule to the full cumulative sketch, so on a
    fully-consumed stream with an exact sketch it equals the batch
    collision tester's verdict on the same samples, bit for bit. *)

type window =
  | Growing  (** every checkpoint judges the whole prefix *)
  | Sliding of int  (** judge the last [w] chunks only *)

val window_to_string : window -> string

type verdict = {
  index : int;  (** 1-based checkpoint number ([0] for {!final}) *)
  samples_seen : int;  (** stream samples consumed at emission *)
  window_samples : int;  (** samples inside the judged window *)
  stat : float;
      (** decision statistic of the window sketch: the zero-centered
          {!Sketch.excess} at checkpoints; {!Sketch.decision_stat} for
          {!final} *)
  threshold : float;  (** rejection threshold in force *)
  reject : bool;
  alpha_spent : float;  (** cumulative α spent through this checkpoint *)
}

type t

val create :
  ?window:window -> ?alpha:float -> ?every:int -> eps:float -> Sketch.config -> t
(** [create ~eps cfg] builds a referee for ε-far-ness testing.
    [window] defaults to [Growing]; [alpha] (total anytime false-reject
    budget) to [0.05]; [every] (chunks between checkpoints) to [1].

    @raise Invalid_argument if [eps] ∉ (0,1\], [alpha] ∉ (0,1),
    [every < 1], or [Sliding w] with [w < 1]. *)

val observe : t -> Sketch.t -> verdict option
(** Feed the next chunk sketch; [Some v] when this chunk completes a
    checkpoint (tallied as [stream.verdicts_emitted]). Rejections are
    sticky for {!rejected} but observation may continue — a sliding
    window can legitimately report recovery, and the caller decides
    whether to stop at the first rejection. *)

val rejected : t -> verdict option
(** The first rejecting checkpoint verdict, if any — the anytime-valid
    stopping decision. *)

val chunks_seen : t -> int

val samples_seen : t -> int

val cumulative : t -> Sketch.t
(** The merged sketch of everything observed (maintained in both window
    modes). *)

val verdicts : t -> verdict list
(** Every checkpoint verdict emitted so far, in emission order. *)

val final : t -> verdict
(** The batch-rule verdict ([index = 0]) on the full cumulative sketch:
    [stat < Sketch.cutoff] accepts, exactly the batch collision
    tester's decision when the sketch is exact. Also tallied as
    [stream.verdicts_emitted]. *)
