(* The buffer holds at most [batch] = chunk * 4 * jobs samples: enough
   full chunks to keep every domain busy per engine dispatch, small
   enough that memory stays bounded by the chunk size and jobs count,
   never by the stream length. Chunk boundaries are sample-index
   arithmetic only — the batch threshold (which does depend on jobs)
   decides merely when buffered chunks get sketched, not where they
   start or end, so the emitted sketch sequence is jobs-invariant. *)

type t = {
  cfg : Sketch.config;
  chunk : int;
  jobs : int;
  on_chunk : Sketch.t -> unit;
  buf : int array;  (* capacity = batch size *)
  mutable len : int;  (* pending samples in [buf] *)
  mutable fed : int;
  mutable emitted : int;
  mutable flushed : bool;
}

let create ?jobs ~chunk ~on_chunk cfg =
  if chunk < 1 then invalid_arg "Ingest.create: chunk < 1";
  let jobs =
    Dut_engine.Pool.effective_jobs
      (match jobs with
      | Some j when j >= 1 -> j
      | Some _ -> invalid_arg "Ingest.create: jobs < 1"
      | None -> Dut_engine.Parallel.default_jobs ())
  in
  {
    cfg;
    chunk;
    jobs;
    on_chunk;
    buf = Array.make (chunk * 4 * jobs) 0;
    len = 0;
    fed = 0;
    emitted = 0;
    flushed = false;
  }

(* Time every chunk sketched, full (pooled drain) and partial tail
   (flush) alike: one histogram observation per on_chunk emission. *)
let h_chunk_ns = Dut_obs.Metrics.histogram "ingest.chunk_ns"

let sketch_range t lo hi =
  let started = Dut_obs.Span.now_ns () in
  let sk = Sketch.create t.cfg in
  for i = lo to hi - 1 do
    Sketch.add sk t.buf.(i)
  done;
  Dut_obs.Metrics.observe h_chunk_ns (Dut_obs.Span.now_ns () - started);
  sk

(* Sketch every full chunk currently buffered (concurrently: chunks are
   independent) and emit the sketches in chunk order; the partial tail
   chunk slides to the front of the buffer. *)
let drain_full t =
  let nfull = t.len / t.chunk in
  if nfull > 0 then begin
    let ranges =
      Array.init nfull (fun c -> (c * t.chunk, (c + 1) * t.chunk))
    in
    let sketches =
      Dut_engine.Parallel.map ~jobs:t.jobs
        (fun (lo, hi) -> sketch_range t lo hi)
        ranges
    in
    Array.iter t.on_chunk sketches;
    t.emitted <- t.emitted + nfull;
    let consumed = nfull * t.chunk in
    let rest = t.len - consumed in
    if rest > 0 then Array.blit t.buf consumed t.buf 0 rest;
    t.len <- rest
  end

let feed t x =
  if t.flushed && t.fed mod t.chunk <> 0 then
    invalid_arg "Ingest.feed: stream already flushed mid-chunk";
  t.flushed <- false;
  t.buf.(t.len) <- x;
  t.len <- t.len + 1;
  t.fed <- t.fed + 1;
  if t.len = Array.length t.buf then drain_full t

let feed_array t xs = Array.iter (feed t) xs

let flush t =
  if not t.flushed then begin
    drain_full t;
    if t.len > 0 then begin
      t.on_chunk (sketch_range t 0 t.len);
      t.emitted <- t.emitted + 1;
      t.len <- 0
    end;
    t.flushed <- true
  end

let samples_fed t = t.fed

let chunks_emitted t = t.emitted
