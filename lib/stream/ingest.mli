(** Deterministic chunked ingestion of an unbounded sample stream.

    [Ingest] turns a stream of samples into a stream of per-chunk
    {!Sketch.t}s: every [chunk] consecutive samples become one sketch,
    emitted to the [on_chunk] callback {e in chunk order}. Full chunks
    are sketched on the execution engine (up to [jobs] concurrently),
    but chunk boundaries depend only on [chunk] — never on [jobs] or on
    how the samples were batched into {!feed} calls — so the emitted
    sketch sequence is bit-identical for every jobs count: the
    streaming analogue of the engine's determinism contract, and the
    ingestion path the anytime referee (and the service's batching)
    consume.

    Nothing here retains per-sample state beyond the current partial
    chunk: memory is [O(chunk + jobs · words_per_sketch)] regardless of
    stream length. *)

type t

val create : ?jobs:int -> chunk:int -> on_chunk:(Sketch.t -> unit) -> Sketch.config -> t
(** [create ~chunk ~on_chunk cfg] ingests into sketches configured by
    [cfg], emitting one sketch per [chunk] samples. [jobs] defaults to
    the ambient {!Dut_engine.Parallel.default_jobs} and affects
    wall-clock only.

    @raise Invalid_argument if [chunk < 1]. *)

val feed : t -> int -> unit
(** Ingest one sample. Emits buffered full chunks (in order) whenever
    enough have accumulated to keep [jobs] busy. *)

val feed_array : t -> int array -> unit
(** Ingest a batch; equivalent to feeding each element in order. *)

val flush : t -> unit
(** Emit every remaining full chunk, then the final partial chunk (if
    any) as a short sketch. Call at end of stream; feeding after a
    partial-chunk flush would misalign chunk boundaries, so {!feed}
    afterwards raises [Invalid_argument]. Idempotent. *)

val samples_fed : t -> int
(** Samples ingested so far (including buffered, not-yet-emitted
    ones). *)

val chunks_emitted : t -> int
