(* Mergeability drives every representation choice here: a sketch is a
   config pointer plus an int bucket array plus a sample count, merge
   is pointwise addition, and every statistic is a pure function of
   that state — so merging chunk sketches in any grouping reproduces
   the sketch of the concatenated stream exactly, which is what lets
   Ingest parallelise chunks and the referee combine players without
   touching the verdict bytes. *)

type kind = Hist | Ams

let kind_to_string = function Hist -> "hist" | Ams -> "ams"

let kind_of_string = function
  | "hist" -> Some Hist
  | "ams" -> Some Ams
  | _ -> None

type config = {
  ckind : kind;
  n : int;
  nbuckets : int;
  exact : bool;
  salt : int64;
  c_null_rate : float;
  shrink : float;  (* retained fraction of the per-pair eps^2/n gap *)
  c_loads : float array;
      (* Hist, hashed: q_b = (domain elements in bucket b) / n — the
         exact hashed-uniform bucket distribution. [||] otherwise. *)
  c_mu : float array;
      (* Ams: mu_k = (sum of the k-th ±1 hash over the domain) / n —
         the exact per-counter null drift of the frozen signs. [||]
         otherwise. *)
}

(* kind + n + salt + count + bucket-array pointer/length + the three
   cached floats: a deliberate over-count, so the words_used <= budget
   claim in the tests holds against any honest accounting. *)
let header_words = 8

let mix64 = Dut_prng.Splitmix.mix

(* Bucket of a sample under the shared salted hash. The identity map
   when the budget covers the domain: the histogram is then exact and
   bit-compatible with the batch statistic. *)
let bucket cfg x =
  if cfg.exact then x
  else
    let h = mix64 (Int64.logxor cfg.salt (Int64.of_int x)) in
    Int64.to_int (Int64.unsigned_rem h (Int64.of_int cfg.nbuckets))

(* k-th ±1 hash for the AMS counters: one SplitMix finalisation per
   counter, keyed by salt, counter index and sample. *)
let golden = 0x9E3779B97F4A7C15L

let sign cfg k x =
  let key =
    Int64.logxor
      (Int64.add cfg.salt (Int64.mul (Int64.of_int (k + 1)) golden))
      (Int64.of_int x)
  in
  if Int64.equal (Int64.logand (mix64 key) 1L) 0L then 1 else -1

let config ~kind ~n ~budget_words ~seed =
  if n <= 0 then invalid_arg "Sketch.config: n <= 0";
  if budget_words <= header_words then
    invalid_arg
      (Printf.sprintf "Sketch.config: budget_words <= %d (the fixed header)"
         header_words);
  let room = budget_words - header_words in
  let salt = mix64 (Int64.of_int seed) in
  match kind with
  | Ams ->
      let cfg =
        {
          ckind = Ams;
          n;
          nbuckets = room;
          exact = false;
          salt;
          c_null_rate = 0.;
          shrink = 1.;
          c_loads = [||];
          c_mu = [||];
        }
      in
      (* One frozen salt means the domain sign-sums S_k do not vanish,
         and the raw estimate E[(z_k^2 - m)/2] = pairs * (S_k/n)^2 is
         biased by exactly that drift. Compute every mu_k = S_k/n once
         here: the centered statistics subtract the bias instead of
         hoping a random salt averages it away. *)
      let mu =
        Array.init room (fun k ->
            let s = ref 0 in
            for x = 0 to n - 1 do
              s := !s + sign cfg k x
            done;
            float_of_int !s /. float_of_int n)
      in
      let rate =
        Array.fold_left (fun acc m -> acc +. (m *. m)) 0. mu
        /. float_of_int room
      in
      { cfg with c_null_rate = rate; c_mu = mu }
  | Hist ->
      let nbuckets = min n room in
      let exact = nbuckets >= n in
      let cfg =
        {
          ckind = Hist;
          n;
          nbuckets;
          exact;
          salt;
          c_null_rate = 0.;
          shrink = (if exact then 1. else 1. -. (1. /. float_of_int nbuckets));
          c_loads = [||];
          c_mu = [||];
        }
      in
      if exact then { cfg with c_null_rate = 1. /. float_of_int n }
      else begin
        (* The hash is fixed, so the null bucket distribution of the
           hashed uniform stream is not flat but exactly q_b = L_b/n
           over the actual bucket loads — computed once here, never
           estimated. The null collision rate is sum_b q_b^2. *)
        let loads = Array.make nbuckets 0 in
        for x = 0 to n - 1 do
          let b = bucket cfg x in
          loads.(b) <- loads.(b) + 1
        done;
        let fn = float_of_int n in
        let q = Array.map (fun l -> float_of_int l /. fn) loads in
        let rate = Array.fold_left (fun acc w -> acc +. (w *. w)) 0. q in
        { cfg with c_null_rate = rate; c_loads = q }
      end

let exact_budget ~n = n + header_words

let kind_of cfg = cfg.ckind

let universe cfg = cfg.n

let buckets cfg = cfg.nbuckets

let is_exact cfg = cfg.exact

let null_rate cfg = cfg.c_null_rate

type t = { cfg : config; counts : int array; mutable total : int }

let m_samples = Dut_obs.Metrics.counter "stream.samples_ingested"

let m_merges = Dut_obs.Metrics.counter "stream.sketch_merges"

let create cfg = { cfg; counts = Array.make cfg.nbuckets 0; total = 0 }

let config_of t = t.cfg

let check_sample t x =
  if x < 0 || x >= t.cfg.n then invalid_arg "Sketch.add: sample out of range"

let add_unchecked t x =
  (match t.cfg.ckind with
  | Hist ->
      let b = bucket t.cfg x in
      t.counts.(b) <- t.counts.(b) + 1
  | Ams ->
      for k = 0 to t.cfg.nbuckets - 1 do
        t.counts.(k) <- t.counts.(k) + sign t.cfg k x
      done);
  t.total <- t.total + 1

let add t x =
  check_sample t x;
  add_unchecked t x;
  Dut_obs.Metrics.incr m_samples

let add_array t xs =
  Array.iter (check_sample t) xs;
  Array.iter (add_unchecked t) xs;
  Dut_obs.Metrics.add m_samples (Array.length xs)

let count t = t.total

let words_used t = Array.length t.counts + header_words

let merge a b =
  if a.cfg != b.cfg && a.cfg <> b.cfg then
    invalid_arg "Sketch.merge: differently-configured sketches";
  Dut_obs.Metrics.incr m_merges;
  {
    cfg = a.cfg;
    counts = Array.init (Array.length a.counts) (fun i -> a.counts.(i) + b.counts.(i));
    total = a.total + b.total;
  }

let equal a b = a.cfg = b.cfg && a.total = b.total && a.counts = b.counts

let fingerprint t =
  let buf = Buffer.create (16 + (Array.length t.counts * 4)) in
  Buffer.add_string buf (kind_to_string t.cfg.ckind);
  Buffer.add_char buf ':';
  Buffer.add_string buf (string_of_int t.total);
  Array.iter
    (fun c ->
      Buffer.add_char buf ',';
      Buffer.add_string buf (string_of_int c))
    t.counts;
  Buffer.contents buf

(* -- statistics --------------------------------------------------------- *)

let pairs m = float_of_int m *. float_of_int (m - 1) /. 2.

let collision_stat t =
  match t.cfg.ckind with
  | Hist ->
      float_of_int
        (Array.fold_left (fun acc c -> acc + (c * (c - 1) / 2)) 0 t.counts)
  | Ams ->
      (* E[z_k^2] = sum_x c_x^2 = count + 2*pairs for pairwise
         independent ±1 signs; average the K unbiased estimates. *)
      let k = Array.length t.counts in
      let m = float_of_int t.total in
      let acc =
        Array.fold_left
          (fun acc z ->
            let z = float_of_int z in
            acc +. (((z *. z) -. m) /. 2.))
          0. t.counts
      in
      acc /. float_of_int k

let null_mean t = pairs t.total *. t.cfg.c_null_rate

(* The centered decision statistic: exactly zero-mean under the
   uniform null, per the frozen hash. Centering is what makes the
   budgeted sketches usable at all — the raw collision count of the
   hashed stream fluctuates with the uneven bucket loads (a
   6*C(m,3)*(sum q^3 - p^2) variance term that swamps the eps^2 gap),
   and the raw AMS estimate carries the per-salt drift bias
   pairs*(S_k/n)^2. Judging the deviation from the exact null
   expectation of each bucket/counter kills both: the null variance
   drops to ~ C(m,2)*p(1-p), the identity-testing chi-square rate, and
   the eps-far excess stays ~ C(m,2)*shrink*eps^2/n — which is what
   gives the q* ~ n/sqrt(B) memory/sample tradeoff. *)
let excess t =
  let m = float_of_int t.total in
  match t.cfg.ckind with
  | Hist when t.cfg.exact -> collision_stat t -. null_mean t
  | Hist ->
      let acc = ref 0. in
      Array.iteri
        (fun b c ->
          let c = float_of_int c in
          let mq = m *. t.cfg.c_loads.(b) in
          let d = c -. mq in
          acc := !acc +. ((d *. d) -. (c *. (1. -. t.cfg.c_loads.(b)))))
        t.counts;
      !acc /. 2.
  | Ams ->
      let k = Array.length t.counts in
      let acc = ref 0. in
      for i = 0 to k - 1 do
        let mu = t.cfg.c_mu.(i) in
        let z = float_of_int t.counts.(i) -. (m *. mu) in
        acc := !acc +. (((z *. z) -. (m *. (1. -. (mu *. mu)))) /. 2.)
      done;
      !acc /. float_of_int k

let null_sd t =
  (* sd of [excess] under the null: the centered chi-square rate
     sqrt(C(m,2) p (1-p)) with p the exact null collision rate, plus
     the AMS estimator's own variance ~ m^2/2K for the K-average. *)
  let p = t.cfg.c_null_rate in
  let base = pairs t.total *. p *. (1. -. p) in
  match t.cfg.ckind with
  | Hist -> sqrt base
  | Ams ->
      let m = float_of_int t.total in
      sqrt (base +. (m *. m /. (2. *. float_of_int (Array.length t.counts))))

let gap t ~eps =
  pairs t.total *. t.cfg.shrink *. eps *. eps /. float_of_int t.cfg.n

let decision_stat t = if t.cfg.exact then collision_stat t else excess t

let cutoff t ~eps =
  if t.cfg.exact then
    (* Bit-identical to the batch tester's cutoff, so exact sketches
       reproduce batch verdicts on every stream, ties included. *)
    Dut_testers.Collision.cutoff ~n:t.cfg.n ~m:t.total ~eps
  else gap t ~eps /. 2.

let accepts t ~eps = decision_stat t < cutoff t ~eps
