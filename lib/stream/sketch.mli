(** Bounded-memory per-player stream state.

    A sketch summarises an unbounded sample stream from the universe
    [0 .. n-1] in a fixed number of machine words, chosen up front as a
    {e memory budget}, and supports the collision statistic the batch
    testers decide on. Two kinds:

    - {!Hist} — a bounded histogram: samples hash into [B] buckets
      (identity when the budget covers the whole domain, in which case
      the sketch is {e exact} and reproduces the batch collision
      statistic bit for bit); the statistic is the collision-pair count
      of the hashed stream. Hashing shrinks the ℓ2 distance signal by a
      factor [1 - 1/B] in expectation — the measurable price of memory.
    - {!Ams} — a pairwise-collision (second-moment) sketch after
      Alon–Matias–Szegedy: [K] counters of ±1-signed sums whose squares
      estimate Σ_x c_x² and hence the collision-pair count, unbiased at
      any budget, with variance growing as the budget shrinks.

    Both are {e mergeable}: [merge] is pointwise integer addition, so it
    is exactly associative and commutative — [merge (merge a b) c],
    [merge a (merge b c)] and any reordering produce structurally equal
    sketches. All players (and all chunks of one player's stream) must
    share one {!config}: the hash salt derives from the root seed, so a
    distributed fleet agrees on bucket assignments by construction.

    Memory claims are measured, not asserted: {!words_used} counts the
    words a sketch actually holds (bucket array plus a fixed
    {!header_words} overhead) and never exceeds the configured budget. *)

type kind = Hist  (** bounded histogram *) | Ams  (** ±1 second-moment sketch *)

val kind_to_string : kind -> string

val kind_of_string : string -> kind option

type config
(** Shared sketch parameters: kind, universe size, bucket count, hash
    salt, and the exact null collision rate of the hashed uniform
    distribution. Immutable; build once per stream setup and share it
    across every player and chunk. *)

val header_words : int
(** Fixed per-sketch overhead charged against the budget (bookkeeping
    fields: kind, universe, salt, counts, …). *)

val config : kind:kind -> n:int -> budget_words:int -> seed:int -> config
(** [config ~kind ~n ~budget_words ~seed] allocates
    [budget_words - header_words] words of bucket state. For [Hist] the
    bucket count is additionally capped at [n] (beyond that the
    histogram is exact and more memory buys nothing). The hash salt is
    derived from [seed] with SplitMix64, so equal seeds give identical
    sketches on every player, every jobs count, every process.

    @raise Invalid_argument if [n <= 0] or
    [budget_words <= header_words]. *)

val exact_budget : n:int -> int
(** The smallest budget at which a [Hist] sketch is exact (identity
    hashing): [n + header_words]. *)

val kind_of : config -> kind

val universe : config -> int

val buckets : config -> int
(** Bucket (or counter) count the budget bought. *)

val is_exact : config -> bool
(** Whether a [Hist] config covers the domain exactly. [false] for
    [Ams]. *)

val null_rate : config -> float
(** Exact per-pair rate of {!collision_stat} under the uniform null,
    {e for the frozen hash}: Σ_b (L_b/n)² over bucket loads L_b for
    [Hist] (= 1/n when exact), and the mean over counters of (S_k/n)²
    for [Ams], where S_k is the k-th sign hash summed over the domain —
    the per-salt drift the raw AMS estimate is biased by. Computed once
    at {!config} time, never estimated. *)

type t
(** One mutable sketch instance. *)

val create : config -> t
(** A fresh empty sketch. *)

val config_of : t -> config

val add : t -> int -> unit
(** Ingest one sample (tallied as [stream.samples_ingested]).

    @raise Invalid_argument if the sample is outside [0 .. n-1]. *)

val add_array : t -> int array -> unit

val count : t -> int
(** Samples ingested so far. *)

val words_used : t -> int
(** Measured footprint in words: bucket array length plus
    {!header_words}. By construction [words_used t <= budget_words]. *)

val merge : t -> t -> t
(** Pointwise sum, as a fresh sketch; both inputs are left untouched.
    Exactly associative and commutative. Tallied as
    [stream.sketch_merges].

    @raise Invalid_argument if the two sketches were built from
    different configs. *)

val equal : t -> t -> bool
(** Structural equality (same config, same counts, same buckets). *)

val fingerprint : t -> string
(** A stable textual digest of the full sketch state; equal sketches
    have equal fingerprints. Used by the determinism tests. *)

(** {2 The collision statistic} *)

val collision_stat : t -> float
(** Raw collision estimate: the number of colliding (unordered equal)
    pairs of the {e hashed} stream for [Hist] (of the raw stream too
    when {!is_exact}), and the mean per-counter estimate
    ((z_k² - count)/2) for [Ams]. Its null expectation is
    {!null_mean}; for a single frozen salt the raw [Ams] value is
    biased by the sign drift folded into {!null_rate} — decisions
    therefore run on {!excess}/{!decision_stat}, not on this. *)

val null_mean : t -> float
(** E\[{!collision_stat}\] when the stream is uniform, exact for the
    frozen hash: C(count, 2) · {!null_rate}. *)

val excess : t -> float
(** The centered decision statistic: the deviation of the sketch from
    the {e exact} null expectation of every bucket (resp. counter)
    under the frozen hash —
    Σ_b ((N_b - m·q_b)² - N_b(1 - q_b))/2 for [Hist] (which reduces
    to [collision_stat - null_mean] when exact), and the mean over
    counters of ((z_k - m·μ_k)² - m(1 - μ_k²))/2 for [Ams]. Exactly
    zero-mean on uniform streams; ≈ {!gap} in expectation on ε-far
    streams. Centering is what kills both the bucket-load variance
    term (~ C(m,3)·Σq³) and the AMS per-salt bias, so the memory/
    sample tradeoff q* ~ n/√B is actually attained. *)

val null_sd : t -> float
(** Standard deviation of {!excess} under the uniform null:
    ≈ sqrt(C(count,2) · p(1-p)) with [p = null_rate] (the
    identity-testing chi-square rate), plus the sketch's own estimator
    variance ≈ count²/2K for [Ams]. Feeds the eps-spending thresholds
    of {!Anytime}. *)

val gap : t -> eps:float -> float
(** Expected value of {!excess} for an ε-far stream, {e as retained by
    this sketch}: C(count,2) · ε²/n scaled by the hash's
    distance-retention factor [1 - 1/B] (1 when exact, and 1 for
    [Ams]). *)

val decision_stat : t -> float
(** What {!accepts} compares against {!cutoff}: {!collision_stat} when
    {!is_exact} (preserving bit-compatibility with the batch tester),
    {!excess} otherwise. *)

val cutoff : t -> eps:float -> float
(** The batch decision threshold on {!decision_stat}. When
    {!is_exact} this is {!Dut_testers.Collision.cutoff} — bit-identical
    to the batch tester's, so verdicts agree exactly. Otherwise the
    midpoint [gap/2] on the zero-centered {!excess}. *)

val accepts : t -> eps:float -> bool
(** [decision_stat t < cutoff t ~eps] — the batch decision rule on the
    sketched stream. *)
