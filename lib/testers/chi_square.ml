let statistic samples ~n =
  let hist = Dut_dist.Empirical.create n in
  Dut_dist.Empirical.add_all hist samples;
  let m = float_of_int (Array.length samples) in
  let expected = m /. float_of_int n in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    let d = float_of_int (Dut_dist.Empirical.count hist i) -. expected in
    acc := !acc +. (d *. d /. expected)
  done;
  !acc

let expected_uniform ~n ~m =
  ignore m;
  float_of_int (n - 1)

let cutoff ~n ~m ~eps =
  expected_uniform ~n ~m +. (float_of_int m *. eps *. eps /. 2.)

let test ~n ~eps samples =
  let m = Array.length samples in
  statistic samples ~n < cutoff ~n ~m ~eps

let recommended_samples ~n ~eps =
  int_of_float (ceil (5. *. sqrt (float_of_int n) /. (eps *. eps)))
