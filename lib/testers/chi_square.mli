(** Pearson χ² uniformity tester.

    Statistic: Σ_i (c_i − m/n)² / (m/n) over the empirical counts c_i.
    Under U_n its mean is exactly n−1 with standard deviation Θ(√n); an
    ε-far distribution adds a bias term Σ_i m²(p_i − 1/n)²/(m/n) ≥ m·ε²
    (Cauchy–Schwarz; equality for the matched-pair hard family).
    Accepting below n−1 + m·ε²/2 therefore distinguishes the cases once
    m·ε² dominates √n — the same Θ(√n/ε²) regime as the collision
    tester, computed in a single pass. *)

val statistic : int array -> n:int -> float
(** The Pearson statistic of the sample histogram. *)

val expected_uniform : n:int -> m:int -> float
(** Null mean of the statistic: exactly n−1 under the multinomial null
    (Σ var(c_i)/(m/n) with var(c_i) = m·(1/n)(1−1/n)). *)

val cutoff : n:int -> m:int -> eps:float -> float
(** Acceptance cutoff n−1 + m·ε²/2. *)

val test : n:int -> eps:float -> int array -> bool
(** [true] = "looks uniform". *)

val recommended_samples : n:int -> eps:float -> int
(** Empirically sufficient sample count, 5·√n/ε². *)
