let statistic ~n xs ys =
  if Array.length xs <> Array.length ys then
    invalid_arg "Closeness.statistic: sample counts differ";
  let hx = Dut_dist.Empirical.of_samples ~n xs in
  let hy = Dut_dist.Empirical.of_samples ~n ys in
  let z = ref 0. in
  for i = 0 to n - 1 do
    let x = float_of_int (Dut_dist.Empirical.count hx i) in
    let y = float_of_int (Dut_dist.Empirical.count hy i) in
    z := !z +. (((x -. y) *. (x -. y)) -. x -. y)
  done;
  !z

let expected_far ~n ~m ~eps =
  float_of_int m *. float_of_int (m - 1) *. eps *. eps /. (2. *. float_of_int n)

let cutoff ~n ~m ~eps = expected_far ~n ~m ~eps /. 2.

let test ~n ~eps xs ys =
  let m = Array.length xs in
  statistic ~n xs ys < cutoff ~n ~m ~eps

let recommended_samples ~n ~eps =
  int_of_float
    (ceil (6. *. (float_of_int n ** (2. /. 3.)) /. (eps ** (4. /. 3.))))
