(** Closeness testing: are two unknown distributions equal or ε-far?

    The paper's introduction lists closeness testing among the problems
    that contain uniformity testing as a special case (take one of the
    two distributions to be — or to be known to be — uniform), so lower
    bounds on uniformity transfer to it. This is the centralized
    collision-based tester of Batu et al. / Chan–Diakonikolas–Valiant–
    Valiant: with X_i, Y_i the per-element counts of m samples from each
    distribution, the statistic

      Z = Σ_i ((X_i − Y_i)² − X_i − Y_i)

    is an unbiased estimator of m(m−1)·‖p − q‖₂² (the −X−Y terms remove
    the Poisson/binomial diagonal), so it is 0 in expectation when
    p = q and at least m(m−1)·ε²/(2n) when ‖p − q‖₁ ≥ ε (Cauchy–Schwarz
    over the ≤ 2n support). Sample complexity Θ(n^(2/3)) at constant
    ε — strictly harder than uniformity's √n. *)

val statistic : n:int -> int array -> int array -> float
(** [statistic ~n xs ys] with equal-length sample arrays.

    @raise Invalid_argument on length mismatch or out-of-range
    samples. *)

val expected_far : n:int -> m:int -> eps:float -> float
(** The minimum expectation of the statistic when ‖p−q‖₁ ≥ ε:
    m(m−1)·ε²/(2n). *)

val cutoff : n:int -> m:int -> eps:float -> float
(** Acceptance cutoff: half of {!expected_far}. *)

val test : n:int -> eps:float -> int array -> int array -> bool
(** [true] = "the distributions look equal". *)

val recommended_samples : n:int -> eps:float -> int
(** Per-distribution sample count, 6·n^(2/3)/ε^(4/3) (empirical
    constant). *)
