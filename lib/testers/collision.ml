let statistic samples ~n =
  let hist = Dut_dist.Empirical.create n in
  Dut_dist.Empirical.add_all hist samples;
  Dut_dist.Empirical.collision_pairs hist

let pairs m = float_of_int m *. float_of_int (m - 1) /. 2.

let expected_uniform ~n ~m = pairs m /. float_of_int n

let expected_far ~n ~m ~eps = pairs m *. (1. +. (eps *. eps)) /. float_of_int n

let cutoff ~n ~m ~eps = pairs m *. (1. +. (eps *. eps /. 2.)) /. float_of_int n

let test ~n ~eps samples =
  let m = Array.length samples in
  float_of_int (statistic samples ~n) < cutoff ~n ~m ~eps

let recommended_samples ~n ~eps =
  int_of_float (ceil (4. *. sqrt (float_of_int n) /. (eps *. eps)))
