(** The centralized collision-counting uniformity tester
    (Goldreich–Ron 2000; Paninski 2008; see the paper's Section 3
    "informal discussion": collisions are exactly what carries the
    signal).

    Statistic: the number of colliding unordered pairs among m samples.
    Under U_n its expectation is C(m,2)/n; under any distribution with
    collision probability ‖μ‖₂² it is C(m,2)·‖μ‖₂², and every
    distribution ε-far from uniform has ‖μ‖₂² ≥ (1+ε²)/n. The tester
    accepts when the count is below the midpoint of those two means and
    distinguishes the cases with Θ(√n/ε²)-scale sample counts — the
    baseline all the distributed results are measured against. *)

val statistic : int array -> n:int -> int
(** Number of colliding pairs among the samples (universe only used for
    bounds checking).

    @raise Invalid_argument if a sample is outside [0, n). *)

val expected_uniform : n:int -> m:int -> float
(** E[statistic] under U_n with m samples: C(m,2)/n. *)

val expected_far : n:int -> m:int -> eps:float -> float
(** The smallest possible E[statistic] for an ε-far distribution:
    C(m,2)·(1+ε²)/n. *)

val cutoff : n:int -> m:int -> eps:float -> float
(** Midpoint acceptance cutoff C(m,2)·(1+ε²/2)/n. *)

val test : n:int -> eps:float -> int array -> bool
(** [test ~n ~eps samples] — [true] = "looks uniform" (statistic below
    {!cutoff}). *)

val recommended_samples : n:int -> eps:float -> int
(** A sample count at which the tester achieves ≥ 2/3 on both sides for
    the hard family: 4·√n/ε² (determined empirically; the theory constant
    is of the same order). *)
