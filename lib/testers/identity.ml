type reduction = {
  n : int;
  eps : float;
  m : int;  (* flattened domain size *)
  copies : int array;  (* granules per element, sum = m *)
  offsets : int array;  (* start of element i's granule range *)
}

(* Largest-remainder apportionment of m granules proportionally to the
   mixed masses (p(i) + 1/n)/2. Every element gets at least one granule
   because its mixed mass is >= 1/(2n) and m >= 2n. *)
let apportion ~mixed ~m =
  let n = Array.length mixed in
  let exact = Array.map (fun w -> w *. float_of_int m) mixed in
  let floors = Array.map (fun x -> int_of_float (floor x)) exact in
  let assigned = Array.fold_left ( + ) 0 floors in
  let remainders =
    Array.mapi (fun i x -> (x -. float_of_int floors.(i), i)) exact
  in
  Array.sort (fun (a, _) (b, _) -> compare b a) remainders;
  let rec top_up k idx =
    if k = 0 then ()
    else begin
      let _, i = remainders.(idx mod n) in
      floors.(i) <- floors.(i) + 1;
      top_up (k - 1) (idx + 1)
    end
  in
  top_up (m - assigned) 0;
  floors

let make ~target ~eps =
  if eps <= 0. || eps >= 1. then invalid_arg "Identity.make: eps out of (0,1)";
  let n = Dut_dist.Pmf.size target in
  let m = int_of_float (ceil (8. *. float_of_int n /. eps)) in
  let mixed =
    Array.init n (fun i ->
        (Dut_dist.Pmf.prob target i +. (1. /. float_of_int n)) /. 2.)
  in
  let copies = apportion ~mixed ~m in
  let offsets = Array.make n 0 in
  for i = 1 to n - 1 do
    offsets.(i) <- offsets.(i - 1) + copies.(i - 1)
  done;
  { n; eps; m; copies; offsets }

let flattened_size r = r.m

let copies r = Array.copy r.copies

let map_sample r rng raw =
  if raw < 0 || raw >= r.n then invalid_arg "Identity.map_sample: sample out of range";
  (* Mixing step: with probability 1/2 substitute a uniform element. *)
  let i = if Dut_prng.Rng.bool rng then raw else Dut_prng.Rng.int rng r.n in
  r.offsets.(i) + Dut_prng.Rng.int rng r.copies.(i)

let test r target rng samples =
  if Dut_dist.Pmf.size target <> r.n then
    invalid_arg "Identity.test: target size mismatch";
  let flattened = Array.map (map_sample r rng) samples in
  Collision.test ~n:r.m ~eps:(r.eps /. 4.) flattened

let recommended_samples ~n ~eps =
  let m = int_of_float (ceil (8. *. float_of_int n /. eps)) in
  Collision.recommended_samples ~n:m ~eps:(eps /. 4.)
