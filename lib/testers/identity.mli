(** Identity testing by reduction to uniformity — the completeness
    property the paper's abstract leans on ("uniformity testing is a
    particularly useful building-block, because it is complete for the
    problem of testing identity to any fixed distribution"), after
    Goldreich 2016 [11].

    To test whether unknown samples come from a {e known} target p, or
    from something ε-far from p:

    + mix: replace each sample by a uniform one with probability 1/2
      (so every effective mass is ≥ 1/(2n), at the price of halving
      distances);
    + flatten: split element i into c_i ∝ (p(i)+1/n)/2 equal-mass
      copies on a granulated domain of m = ⌈8n/ε⌉ elements, and send
      each sample to a uniformly random copy of itself;
    + test uniformity of the flattened samples on [m] at proximity
      ε/4 (splitting preserves ℓ1 exactly; granulation costs ≤ ε/8;
      mixing halves the distance).

    Soundness/completeness therefore ride entirely on the uniformity
    tester — which is the point. *)

type reduction
(** The flattening tables for one target distribution. *)

val make : target:Dut_dist.Pmf.t -> eps:float -> reduction
(** Build the reduction at proximity [eps].

    @raise Invalid_argument if eps outside (0,1). *)

val flattened_size : reduction -> int
(** The granulated domain size m. *)

val copies : reduction -> int array
(** c_i: how many granules element i owns (Σ c_i = m, every c_i ≥ 1). *)

val map_sample : reduction -> Dut_prng.Rng.t -> int -> int
(** Mix-and-flatten one raw sample into [0, m). *)

val test :
  reduction -> Dut_dist.Pmf.t -> Dut_prng.Rng.t -> int array -> bool
(** [test r target rng samples] — [true] = "consistent with the
    target". [target] must be the pmf the reduction was built from
    (used only for sanity checking sizes).

    @raise Invalid_argument on a universe-size mismatch. *)

val recommended_samples : n:int -> eps:float -> int
(** Samples for reliable identity testing through the reduction:
    the collision tester's count on the m ≈ 8n/ε-element flattened
    domain at proximity ε/4 — Θ(√(n/ε)/ε²·…). *)
