let encode ~n2 (a, b) = (a * n2) + b

let decode ~n2 i = (i / n2, i mod n2)

let decorrelate rng ~n2 samples =
  let seconds = Array.map (fun s -> snd (decode ~n2 s)) samples in
  Dut_prng.Rng.shuffle_in_place rng seconds;
  Array.mapi (fun i s -> encode ~n2 (fst (decode ~n2 s), seconds.(i))) samples

let test ~n1 ~n2 ~eps rng samples =
  let n = n1 * n2 in
  Array.iter
    (fun s -> if s < 0 || s >= n then invalid_arg "Independence.test: sample out of range")
    samples;
  let total = Array.length samples in
  if total < 4 then invalid_arg "Independence.test: need at least 4 samples";
  let half = total / 2 in
  let joint = Array.sub samples 0 half in
  let product = decorrelate rng ~n2 (Array.sub samples half half) in
  Closeness.test ~n ~eps joint product

let recommended_samples ~n1 ~n2 ~eps =
  2 * Closeness.recommended_samples ~n:(n1 * n2) ~eps
