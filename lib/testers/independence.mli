(** Independence testing over a product domain [n1]×[n2].

    The third generalization the paper's introduction names (uniformity
    is a special case: a joint that is uniform is in particular
    independent with uniform marginals, and lower bounds transfer).
    Tested by the classical reduction to closeness (Batu et al.): split
    the samples in two halves; the first half estimates the joint; the
    second half is {e decorrelated} by randomly permuting its second
    coordinates, which preserves both marginals exactly but produces
    (approximate) draws from the product of marginals. A joint that is
    independent is unchanged in distribution by the shuffle; a joint
    ε-far from every product distribution is ≥ ε-far from its own
    marginal product, so the closeness tester separates the halves. *)

val encode : n2:int -> int * int -> int
(** Pair (a, b) ↦ a·n2 + b, the flattened element. *)

val decode : n2:int -> int -> int * int

val decorrelate : Dut_prng.Rng.t -> n2:int -> int array -> int array
(** Shuffle the second coordinates across the samples (a uniformly
    random permutation), preserving both marginals exactly. *)

val test :
  n1:int -> n2:int -> eps:float -> Dut_prng.Rng.t -> int array -> bool
(** [test ~n1 ~n2 ~eps rng samples] over flattened pair samples; [true]
    = "looks independent". Uses half the samples as joint draws and the
    decorrelated other half as product draws, then runs the closeness
    tester on [n1·n2].

    @raise Invalid_argument if a sample is out of range or fewer than 4
    samples are supplied. *)

val recommended_samples : n1:int -> n2:int -> eps:float -> int
(** Total pair samples: 2× the closeness tester's per-side count on the
    n1·n2 universe. *)
