let statistic samples ~n =
  let hist = Dut_dist.Empirical.of_samples ~n samples in
  Dut_dist.Distance.l1 (Dut_dist.Empirical.to_pmf hist) (Dut_dist.Pmf.uniform n)

let test ~n ~eps samples = statistic samples ~n < eps /. 2.

let recommended_samples ~n ~eps =
  int_of_float (ceil (8. *. float_of_int n /. (eps *. eps)))
