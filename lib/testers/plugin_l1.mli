(** The plug-in (learning-based) ℓ1 uniformity tester.

    Learn the empirical distribution and accept iff its ℓ1 distance from
    U_n is below ε/2. Correct, but needs m = Θ(n/ε²) samples — a factor
    √n more than the collision tester. Included as the "learning is
    overkill for testing" baseline that motivates the whole field, and as
    the building block for the Theorem 1.4 learning experiment. *)

val statistic : int array -> n:int -> float
(** ‖empirical − U_n‖₁. *)

val test : n:int -> eps:float -> int array -> bool
(** [true] iff the statistic is below ε/2. *)

val recommended_samples : n:int -> eps:float -> int
(** Empirically sufficient sample count, 8·n/ε². *)
