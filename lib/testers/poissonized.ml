let draw_counts rng ~pmf ~mean_samples =
  if mean_samples < 0 then invalid_arg "Poissonized.draw_counts: negative mean";
  let m = float_of_int mean_samples in
  Array.init (Dut_dist.Pmf.size pmf) (fun i ->
      Dut_prng.Rng.poisson rng (m *. Dut_dist.Pmf.prob pmf i))

let collision_statistic counts =
  Array.fold_left (fun acc c -> acc + (c * (c - 1) / 2)) 0 counts

let expected_uniform ~n ~m =
  let mf = float_of_int m in
  mf *. mf /. (2. *. float_of_int n)

let expected_far ~n ~m ~eps =
  expected_uniform ~n ~m *. (1. +. (eps *. eps))

let cutoff ~n ~m ~eps = expected_uniform ~n ~m *. (1. +. (eps *. eps /. 2.))

let test_counts ~n ~eps ~m counts =
  float_of_int (collision_statistic counts) < cutoff ~n ~m ~eps

let test ~n ~eps ~m rng pmf =
  if Dut_dist.Pmf.size pmf <> n then invalid_arg "Poissonized.test: size mismatch";
  test_counts ~n ~eps ~m (draw_counts rng ~pmf ~mean_samples:m)
