(** Poissonized uniformity testing.

    The classical analysis device: instead of exactly m samples, draw
    N ~ Poisson(m) samples; the per-element counts become {e independent}
    Poisson(m·p_i) variables, which is what makes moments of count
    statistics tractable (the paper's Section 3 informal discussion, and
    the variance computations behind the cutoffs here, are cleanest in
    this model). This module provides the Poissonized collision tester
    so experiments can confirm the fixed-m and Poissonized testers have
    the same power profile — justifying the fixed-m implementation used
    everywhere else. *)

val draw_counts :
  Dut_prng.Rng.t -> pmf:Dut_dist.Pmf.t -> mean_samples:int -> int array
(** Per-element counts under Poissonized sampling: independent
    Poisson(m·p_i) draws.

    @raise Invalid_argument if [mean_samples < 0]. *)

val collision_statistic : int array -> int
(** Σ_i C(c_i, 2) from a count vector. *)

val expected_uniform : n:int -> m:int -> float
(** E[statistic] under U_n: n·(m/n)²/2 = m²/(2n). *)

val expected_far : n:int -> m:int -> eps:float -> float
(** Minimum E[statistic] for an ε-far distribution: (m²/2)·(1+ε²)/n. *)

val cutoff : n:int -> m:int -> eps:float -> float

val test : n:int -> eps:float -> m:int -> Dut_prng.Rng.t -> Dut_dist.Pmf.t -> bool
(** One Poissonized test round against a known pmf (the sampling is part
    of the tester here, since the sample count itself is random). *)

val test_counts : n:int -> eps:float -> m:int -> int array -> bool
(** Decision from an externally drawn count vector. *)
