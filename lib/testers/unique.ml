let statistic samples ~n =
  let hist = Dut_dist.Empirical.create n in
  Dut_dist.Empirical.add_all hist samples;
  Dut_dist.Empirical.distinct hist

let expected_uniform ~n ~m =
  let nf = float_of_int n and mf = float_of_int m in
  nf *. (1. -. ((1. -. (1. /. nf)) ** mf))

let expected_far ~n ~m ~eps =
  let nf = float_of_int n and mf = float_of_int m in
  let side w = nf /. 2. *. (1. -. ((1. -. (w /. nf)) ** mf)) in
  side (1. +. eps) +. side (1. -. eps)

let cutoff ~n ~m ~eps =
  (expected_uniform ~n ~m +. expected_far ~n ~m ~eps) /. 2.

let test ~n ~eps samples =
  let m = Array.length samples in
  float_of_int (statistic samples ~n) > cutoff ~n ~m ~eps

let recommended_samples ~n ~eps =
  int_of_float (ceil (8. *. sqrt (float_of_int n) /. (eps *. eps)))
