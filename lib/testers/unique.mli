(** The coincidence-based (distinct-elements) uniformity tester, after
    Paninski [16].

    Statistic: the number of {e distinct} values observed among m
    samples. Under U_n its expectation n·(1 − (1 − 1/n)^m) is the
    maximum over all distributions (by concavity of 1 − (1−p)^m), so the
    ordering "uniform sees the most distinct values" holds at {e every}
    sample size — any bias recycles elements. The separation against
    ε-far distributions is strongest in the near-sparse regime
    m ≲ n (equivalently ε² ≳ √(1/n), where √n/ε² ≲ n); the
    {!recommended_samples} constant is tuned for that regime. *)

val statistic : int array -> n:int -> int
(** Number of distinct values among the samples. *)

val expected_uniform : n:int -> m:int -> float
(** E[distinct] under U_n: n·(1 − (1 − 1/n)^m). *)

val expected_far : n:int -> m:int -> eps:float -> float
(** E[distinct] under a Paninski-family member ν_z: half the universe has
    mass (1+ε)/n and half (1−ε)/n, so the expectation is
    (n/2)·(1 − (1 − (1+ε)/n)^m) + (n/2)·(1 − (1 − (1−ε)/n)^m), which is
    strictly smaller than the uniform expectation. *)

val cutoff : n:int -> m:int -> eps:float -> float
(** Midpoint acceptance cutoff between the two expectations above. *)

val test : n:int -> eps:float -> int array -> bool
(** [true] = "looks uniform" (distinct count above {!cutoff}). *)

val recommended_samples : n:int -> eps:float -> int
(** Empirically sufficient sample count in the tester's regime,
    8·√n/ε². *)
