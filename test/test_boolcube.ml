(* Tests for dut_boolcube: cube encodings, characters, the fast
   Walsh-Hadamard transform, level weights, and the evenly-covered
   combinatorics of the paper's Section 5. *)

open Dut_boolcube

let check_float = Alcotest.(check (float 1e-9))

(* -- Cube ------------------------------------------------------------ *)

let test_coord () =
  Alcotest.(check int) "bit clear = +1" 1 (Cube.coord 0b010 0);
  Alcotest.(check int) "bit set = -1" (-1) (Cube.coord 0b010 1)

let test_signs_roundtrip () =
  for x = 0 to 31 do
    let signs = Cube.to_signs ~dim:5 x in
    Alcotest.(check int) "roundtrip" x (Cube.of_signs signs)
  done

let test_of_signs_invalid () =
  Alcotest.check_raises "bad sign"
    (Invalid_argument "Cube.of_signs: entries must be +1 or -1") (fun () ->
      ignore (Cube.of_signs [| 1; 0; -1 |]))

let test_popcount () =
  Alcotest.(check int) "popcount 0" 0 (Cube.popcount 0);
  Alcotest.(check int) "popcount 0b1011" 3 (Cube.popcount 0b1011);
  Alcotest.(check int) "popcount max" 10 (Cube.popcount 0b1111111111)

let test_chi_basics () =
  (* chi_{} = 1 everywhere; chi_{i}(x) = x_i. *)
  for x = 0 to 15 do
    Alcotest.(check int) "empty char" 1 (Cube.chi 0 x);
    Alcotest.(check int) "singleton char" (Cube.coord x 2) (Cube.chi 0b100 x)
  done

let test_chi_multiplicative () =
  (* chi_S(x) * chi_T(x) = chi_{S xor T}(x). *)
  for s = 0 to 15 do
    for t = 0 to 15 do
      for x = 0 to 15 do
        Alcotest.(check int) "group law"
          (Cube.chi (s lxor t) x)
          (Cube.chi s x * Cube.chi t x)
      done
    done
  done

let test_chi_orthogonality () =
  (* sum_x chi_S(x) = 0 for S <> empty. *)
  for s = 1 to 31 do
    let total = ref 0 in
    Cube.iter_points ~dim:5 (fun x -> total := !total + Cube.chi s x);
    Alcotest.(check int) "orthogonal to constants" 0 !total
  done

let test_subsets_of_size_count () =
  List.iter
    (fun (dim, size) ->
      let count = List.length (Cube.subsets_of_size ~dim ~size) in
      Alcotest.(check int)
        (Printf.sprintf "C(%d,%d)" dim size)
        (int_of_float (Cube.binomial dim size))
        count)
    [ (5, 0); (5, 1); (5, 2); (5, 5); (8, 3); (10, 4) ]

let test_subsets_have_right_popcount () =
  Cube.iter_subsets_of_size ~dim:8 ~size:3 (fun s ->
      Alcotest.(check int) "popcount" 3 (Cube.popcount s))

let test_binomial_values () =
  check_float "C(0,0)" 1. (Cube.binomial 0 0);
  check_float "C(5,2)" 10. (Cube.binomial 5 2);
  check_float "C(10,5)" 252. (Cube.binomial 10 5);
  check_float "C(5,-1)" 0. (Cube.binomial 5 (-1));
  check_float "C(5,6)" 0. (Cube.binomial 5 6);
  check_float "C(50,25)" 126410606437752. (Cube.binomial 50 25)

let test_double_factorial () =
  check_float "(-1)!!" 1. (Cube.double_factorial (-1));
  check_float "0!!" 1. (Cube.double_factorial 0);
  check_float "1!!" 1. (Cube.double_factorial 1);
  check_float "5!!" 15. (Cube.double_factorial 5);
  check_float "6!!" 48. (Cube.double_factorial 6);
  check_float "7!!" 105. (Cube.double_factorial 7)

(* -- Fourier ---------------------------------------------------------- *)

let test_wht_involution () =
  let a = [| 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8. |] in
  let b = Array.copy a in
  Fourier.wht_in_place b;
  Fourier.wht_in_place b;
  Array.iteri (fun i x -> check_float "involution up to N" (a.(i) *. 8.) x) b

let test_wht_bad_length () =
  Alcotest.check_raises "non power of two"
    (Invalid_argument "Fourier.wht_in_place: length 3 is not a power of two")
    (fun () -> Fourier.wht_in_place [| 1.; 2.; 3. |]);
  Alcotest.check_raises "zero length"
    (Invalid_argument "Fourier.wht_in_place: length 0 is not a power of two")
    (fun () -> Fourier.wht_in_place [||])

let test_wht_blocked_equals_reference () =
  (* The production transform runs cache-blocked passes for lengths
     past the 4096-float block; it must stay bit-identical to the
     naive h-doubling loop on sizes below, at, and well above the
     block boundary. *)
  let naive a =
    let n = Array.length a in
    let h = ref 1 in
    while !h < n do
      let h2 = !h * 2 in
      let i = ref 0 in
      while !i < n do
        for j = !i to !i + !h - 1 do
          let x = a.(j) and y = a.(j + !h) in
          a.(j) <- x +. y;
          a.(j + !h) <- x -. y
        done;
        i := !i + h2
      done;
      h := h2
    done
  in
  List.iter
    (fun bits ->
      let n = 1 lsl bits in
      let a =
        Array.init n (fun i -> float_of_int ((i * 31) land 63) -. 17.5)
      in
      let b = Array.copy a in
      naive a;
      Fourier.wht_in_place b;
      Alcotest.(check bool)
        (Printf.sprintf "2^%d bit-identical" bits)
        true (a = b))
    [ 0; 1; 5; 12; 13; 14 ]

let test_transform_inverse () =
  let rng = Dut_prng.Rng.create 42 in
  let table = Array.init 64 (fun _ -> Dut_prng.Rng.unit_float rng) in
  let recovered = Fourier.inverse (Fourier.transform table) in
  Array.iteri (fun i x -> check_float "roundtrip" table.(i) x) recovered

let test_transform_of_character () =
  (* The transform of chi_S is the indicator of S. *)
  let dim = 4 in
  let s0 = 0b0101 in
  let table =
    Array.init (1 lsl dim) (fun x -> float_of_int (Cube.chi s0 x))
  in
  let ft = Fourier.transform table in
  for s = 0 to (1 lsl dim) - 1 do
    check_float "delta at S" (if s = s0 then 1. else 0.) (Fourier.coeff ft s)
  done

let test_mean_and_variance () =
  let rng = Dut_prng.Rng.create 43 in
  let table = Array.init 128 (fun _ -> Dut_prng.Rng.unit_float rng) in
  let ft = Fourier.transform table in
  let direct_mean = Array.fold_left ( +. ) 0. table /. 128. in
  let direct_var =
    Array.fold_left (fun a x -> a +. (x *. x)) 0. table /. 128.
    -. (direct_mean *. direct_mean)
  in
  check_float "mean = coeff(empty)" direct_mean (Fourier.mean ft);
  check_float "variance" direct_var (Fourier.variance ft)

let test_parseval () =
  let rng = Dut_prng.Rng.create 44 in
  let table = Array.init 64 (fun _ -> Dut_prng.Rng.unit_float rng -. 0.5) in
  let ft = Fourier.transform table in
  let norm_direct = Array.fold_left (fun a x -> a +. (x *. x)) 0. table /. 64. in
  check_float "Parseval" norm_direct (Fourier.norm2_sq ft)

let test_level_weights_sum () =
  let rng = Dut_prng.Rng.create 45 in
  let dim = 6 in
  let ft =
    Fourier.of_boolean (fun _ -> Dut_prng.Rng.bernoulli rng 0.4) ~dim
  in
  let total = ref 0. in
  for r = 0 to dim do
    total := !total +. Fourier.level_weight ft r
  done;
  check_float "levels partition the norm" (Fourier.norm2_sq ft) !total;
  check_float "weight_up_to dim = variance" (Fourier.variance ft)
    (Fourier.weight_up_to ft dim)

let test_inner_product_plancherel () =
  let rng = Dut_prng.Rng.create 46 in
  let f = Array.init 32 (fun _ -> Dut_prng.Rng.unit_float rng) in
  let g = Array.init 32 (fun _ -> Dut_prng.Rng.unit_float rng) in
  let direct =
    let acc = ref 0. in
    Array.iteri (fun i x -> acc := !acc +. (x *. g.(i))) f;
    !acc /. 32.
  in
  check_float "Plancherel" direct
    (Fourier.inner_product (Fourier.transform f) (Fourier.transform g))

let test_kkl_on_and_function () =
  (* AND of j coordinates: weight at levels <= r is sum_{i<=r} C(j,i)/4^j
     (without the empty set for i>=1); must respect the bound. *)
  let dim = 10 in
  List.iter
    (fun j ->
      let ft =
        Fourier.of_boolean (fun x -> x land ((1 lsl j) - 1) = 0) ~dim
      in
      let mu = Fourier.mean ft in
      check_float "mu of AND_j" (1. /. float_of_int (1 lsl j)) mu;
      List.iter
        (fun r ->
          List.iter
            (fun delta ->
              let w = Fourier.weight_up_to ft r in
              let bound = Fourier.kkl_bound ~mu ~r ~delta in
              if w > bound +. 1e-9 then
                Alcotest.failf "KKL violated: j=%d r=%d delta=%f w=%f bound=%f"
                  j r delta w bound)
            [ 1.; 0.5; 1. /. 3. ])
        [ 1; 2; 3 ])
    [ 2; 4; 6 ]

let test_noise_operator () =
  let rng = Dut_prng.Rng.create 48 in
  let table = Array.init 64 (fun _ -> Dut_prng.Rng.unit_float rng) in
  let ft = Fourier.transform table in
  (* rho = 1 is the identity; rho = 0 collapses to the mean. *)
  let id = Fourier.noise ~rho:1. ft in
  for s = 0 to 63 do
    check_float "identity at rho=1" (Fourier.coeff ft s) (Fourier.coeff id s)
  done;
  let collapsed = Fourier.inverse (Fourier.noise ~rho:0. ft) in
  Array.iter (fun v -> check_float "constant at rho=0" (Fourier.mean ft) v) collapsed

let test_noise_contracts_variance () =
  let rng = Dut_prng.Rng.create 49 in
  let ft =
    Fourier.of_boolean (fun _ -> Dut_prng.Rng.bernoulli rng 0.5) ~dim:8
  in
  Alcotest.(check bool) "variance shrinks" true
    (Fourier.variance (Fourier.noise ~rho:0.6 ft) <= Fourier.variance ft)

let test_lp_norm () =
  let table = [| 1.; -1.; 1.; -1. |] in
  check_float "l2 of +-1" 1. (Fourier.lp_norm table ~p:2.);
  check_float "l1 of +-1" 1. (Fourier.lp_norm table ~p:1.);
  check_float "homogeneity" 2.
    (Fourier.lp_norm [| 2.; 2.; 2.; 2. |] ~p:3.
    /. Fourier.lp_norm [| 1.; 1.; 1.; 1. |] ~p:3.);
  (* Jensen: p-norms are non-decreasing in p. *)
  let table = [| 0.1; 0.9; 0.4; 0.7 |] in
  Alcotest.(check bool) "monotone in p" true
    (Fourier.lp_norm table ~p:1. <= Fourier.lp_norm table ~p:2.
    && Fourier.lp_norm table ~p:2. <= Fourier.lp_norm table ~p:4.)

let test_hypercontractivity () =
  (* Bonami-Beckner: ||T_rho f||_2 <= ||f||_{1+rho^2}, for random tables
     and for boolean functions. *)
  let rng = Dut_prng.Rng.create 148 in
  List.iter
    (fun rho ->
      for _ = 1 to 20 do
        let table =
          Array.init 64 (fun _ -> (2. *. Dut_prng.Rng.unit_float rng) -. 1.)
        in
        let r = Fourier.hypercontractive_ratio table ~rho in
        if r > 1. +. 1e-9 then Alcotest.failf "hypercontractivity violated: %f" r
      done)
    [ 0.2; 0.5; 0.8; 1. ]

(* -- Even_cover ------------------------------------------------------- *)

let test_evenly_covered_basics () =
  let x = [| 0; 0; 1; 1; 2 |] in
  Alcotest.(check bool) "empty set" true (Even_cover.evenly_covered ~x ~s:0);
  Alcotest.(check bool) "pair of equal" true (Even_cover.evenly_covered ~x ~s:0b00011);
  Alcotest.(check bool) "pair of distinct" false (Even_cover.evenly_covered ~x ~s:0b00101);
  Alcotest.(check bool) "two pairs" true (Even_cover.evenly_covered ~x ~s:0b01111);
  Alcotest.(check bool) "odd singleton" false (Even_cover.evenly_covered ~x ~s:0b10000);
  Alcotest.(check bool) "triple + singleton" false
    (Even_cover.evenly_covered ~x:[| 3; 3; 3; 3 |] ~s:0b0111)

let test_a_r_brute_force () =
  (* a_r(x) equals the brute-force count for random tuples. *)
  let rng = Dut_prng.Rng.create 47 in
  for _ = 1 to 50 do
    let q = 2 + Dut_prng.Rng.int rng 5 in
    let x = Array.init q (fun _ -> Dut_prng.Rng.int rng 3) in
    for r = 1 to q / 2 do
      let brute = ref 0 in
      Cube.iter_subsets_of_size ~dim:q ~size:(2 * r) (fun s ->
          if Even_cover.evenly_covered ~x ~s then incr brute);
      Alcotest.(check int) "a_r matches brute force" !brute (Even_cover.a_r ~x ~r)
    done
  done

let test_count_even_sequences_small () =
  (* Length 2 over m letters: m sequences (aa). *)
  check_float "len 2" 4. (Even_cover.count_even_sequences ~m:4 ~len:2);
  (* Length 4 over 2 letters: aaaa, bbbb, and the 6 arrangements of aabb. *)
  check_float "len 4 m 2" 8. (Even_cover.count_even_sequences ~m:2 ~len:4);
  check_float "odd length" 0. (Even_cover.count_even_sequences ~m:3 ~len:3);
  check_float "len 0" 1. (Even_cover.count_even_sequences ~m:5 ~len:0)

let test_count_even_sequences_brute () =
  (* Exhaustive check against direct enumeration. *)
  List.iter
    (fun (m, len) ->
      let count = ref 0 in
      let total = int_of_float (float_of_int m ** float_of_int len) in
      for idx = 0 to total - 1 do
        let x =
          Array.init len (fun j ->
              idx / int_of_float (float_of_int m ** float_of_int j) mod m)
        in
        if Even_cover.evenly_covered ~x ~s:((1 lsl len) - 1) then incr count
      done;
      check_float
        (Printf.sprintf "m=%d len=%d" m len)
        (float_of_int !count)
        (Even_cover.count_even_sequences ~m ~len))
    [ (2, 2); (2, 4); (2, 6); (3, 4); (4, 4); (3, 6) ]

let test_count_x_s_vs_brute () =
  let m = 3 and q = 4 in
  List.iter
    (fun s_size ->
      let s = (1 lsl s_size) - 1 in
      let count = ref 0 in
      let total = int_of_float (float_of_int m ** float_of_int q) in
      for idx = 0 to total - 1 do
        let x =
          Array.init q (fun j ->
              idx / int_of_float (float_of_int m ** float_of_int j) mod m)
        in
        if Even_cover.evenly_covered ~x ~s then incr count
      done;
      check_float
        (Printf.sprintf "|X_S| s=%d" s_size)
        (float_of_int !count)
        (Even_cover.count_x_s ~m ~q ~s_size))
    [ 0; 1; 2; 3; 4 ]

let test_x_s_upper_bound_holds () =
  List.iter
    (fun (m, q, s_size) ->
      let exact = Even_cover.count_x_s ~m ~q ~s_size in
      let bound = Even_cover.x_s_upper_bound ~m ~q ~s_size in
      if s_size mod 2 = 0 && exact > bound +. 1e-9 then
        Alcotest.failf "Prop 5.2 violated at m=%d q=%d s=%d: %f > %f" m q s_size
          exact bound)
    [ (2, 4, 2); (2, 4, 4); (4, 4, 2); (4, 6, 4); (8, 6, 6); (8, 5, 2) ]

let test_sum_a_r_identity () =
  (* sum_x a_r(x) = C(q,2r)|X_2r| -- check by enumeration. *)
  let m = 3 and q = 4 and r = 1 in
  let total = int_of_float (float_of_int m ** float_of_int q) in
  let sum = ref 0 in
  for idx = 0 to total - 1 do
    let x =
      Array.init q (fun j ->
          idx / int_of_float (float_of_int m ** float_of_int j) mod m)
    in
    sum := !sum + Even_cover.a_r ~x ~r
  done;
  check_float "interchange identity" (float_of_int !sum)
    (Even_cover.sum_a_r ~m ~q ~r)

let test_moment_exact_vs_bound () =
  List.iter
    (fun (m, q, r, power) ->
      let n = 2 * m in
      let exact = Even_cover.moment_a_r_exact ~m ~q ~r ~power in
      let bound = Even_cover.moment_a_r_bound ~n ~q ~r ~power in
      if exact > bound +. 1e-9 then
        Alcotest.failf "Lemma 5.5 violated at m=%d q=%d r=%d power=%d" m q r power)
    [ (2, 4, 1, 1); (2, 4, 1, 2); (2, 4, 2, 1); (4, 4, 1, 2); (4, 5, 1, 3) ]

let test_moment_power_one_equals_mean () =
  (* E[a_r] from enumeration should match sum_a_r / m^q. *)
  let m = 4 and q = 4 and r = 1 in
  let mean = Even_cover.moment_a_r_exact ~m ~q ~r ~power:1 in
  let closed =
    Even_cover.sum_a_r ~m ~q ~r /. (float_of_int m ** float_of_int q)
  in
  check_float "mean identity" closed mean

let test_mean_a_r_upper_bound () =
  let m = 4 and q = 4 and r = 1 in
  let mean = Even_cover.moment_a_r_exact ~m ~q ~r ~power:1 in
  Alcotest.(check bool) "E[a_r] <= (q^2/n)^r" true
    (mean <= Even_cover.mean_a_r_upper_bound ~m ~q ~r +. 1e-9)

(* -- qcheck ----------------------------------------------------------- *)

let prop_wht_linear =
  QCheck.Test.make ~name:"WHT is linear" ~count:100
    QCheck.(pair (list_of_size (Gen.return 8) (float_bound_exclusive 1.)) (float_bound_exclusive 1.))
    (fun (xs, c) ->
      let a = Array.of_list xs in
      let scaled = Array.map (fun x -> c *. x) a in
      Fourier.wht_in_place a;
      Fourier.wht_in_place scaled;
      Array.for_all2 (fun x y -> Float.abs ((c *. x) -. y) < 1e-9) a scaled)

let prop_transform_roundtrip =
  QCheck.Test.make ~name:"transform/inverse roundtrip" ~count:100
    QCheck.(list_of_size (Gen.return 16) (float_bound_exclusive 1.))
    (fun xs ->
      let a = Array.of_list xs in
      let b = Fourier.inverse (Fourier.transform a) in
      Array.for_all2 (fun x y -> Float.abs (x -. y) < 1e-9) a b)

let prop_variance_nonneg =
  QCheck.Test.make ~name:"variance is non-negative" ~count:100
    QCheck.(list_of_size (Gen.return 16) (float_bound_exclusive 1.))
    (fun xs ->
      Fourier.variance (Fourier.transform (Array.of_list xs)) >= -1e-12)

let () =
  Alcotest.run "dut_boolcube"
    [
      ( "cube",
        [
          Alcotest.test_case "coord" `Quick test_coord;
          Alcotest.test_case "signs roundtrip" `Quick test_signs_roundtrip;
          Alcotest.test_case "of_signs invalid" `Quick test_of_signs_invalid;
          Alcotest.test_case "popcount" `Quick test_popcount;
          Alcotest.test_case "chi basics" `Quick test_chi_basics;
          Alcotest.test_case "chi multiplicative" `Quick test_chi_multiplicative;
          Alcotest.test_case "chi orthogonality" `Quick test_chi_orthogonality;
          Alcotest.test_case "subset counts" `Quick test_subsets_of_size_count;
          Alcotest.test_case "subset popcounts" `Quick test_subsets_have_right_popcount;
          Alcotest.test_case "binomial" `Quick test_binomial_values;
          Alcotest.test_case "double factorial" `Quick test_double_factorial;
        ] );
      ( "fourier",
        [
          Alcotest.test_case "WHT involution" `Quick test_wht_involution;
          Alcotest.test_case "WHT bad length" `Quick test_wht_bad_length;
          Alcotest.test_case "WHT blocked = naive reference" `Quick
            test_wht_blocked_equals_reference;
          Alcotest.test_case "transform inverse" `Quick test_transform_inverse;
          Alcotest.test_case "transform of character" `Quick test_transform_of_character;
          Alcotest.test_case "mean and variance" `Quick test_mean_and_variance;
          Alcotest.test_case "Parseval" `Quick test_parseval;
          Alcotest.test_case "level weights partition" `Quick test_level_weights_sum;
          Alcotest.test_case "Plancherel" `Quick test_inner_product_plancherel;
          Alcotest.test_case "KKL on AND functions" `Quick test_kkl_on_and_function;
          Alcotest.test_case "noise operator" `Quick test_noise_operator;
          Alcotest.test_case "noise contracts variance" `Quick test_noise_contracts_variance;
          Alcotest.test_case "lp norms" `Quick test_lp_norm;
          Alcotest.test_case "hypercontractivity" `Quick test_hypercontractivity;
        ] );
      ( "even_cover",
        [
          Alcotest.test_case "evenly covered basics" `Quick test_evenly_covered_basics;
          Alcotest.test_case "a_r brute force" `Quick test_a_r_brute_force;
          Alcotest.test_case "even sequences small" `Quick test_count_even_sequences_small;
          Alcotest.test_case "even sequences brute" `Quick test_count_even_sequences_brute;
          Alcotest.test_case "X_S vs brute" `Quick test_count_x_s_vs_brute;
          Alcotest.test_case "Prop 5.2 bound" `Quick test_x_s_upper_bound_holds;
          Alcotest.test_case "interchange identity" `Quick test_sum_a_r_identity;
          Alcotest.test_case "Lemma 5.5 bound" `Quick test_moment_exact_vs_bound;
          Alcotest.test_case "moment power 1" `Quick test_moment_power_one_equals_mean;
          Alcotest.test_case "mean a_r bound" `Quick test_mean_a_r_upper_bound;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_wht_linear; prop_transform_roundtrip; prop_variance_nonneg ] );
    ]
