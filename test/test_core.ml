(* Tests for dut_core: the bound formulas, the local statistic, every
   distributed tester (construction, errors, end-to-end power), the
   learning protocol, and the evaluation harness. *)

let check_float = Alcotest.(check (float 1e-9))
let check_float_loose = Alcotest.(check (float 1e-6))

(* -- Bounds ----------------------------------------------------------- *)

let test_centralized_bound () =
  check_float "sqrt(n)/e^2" 1024. (Dut_core.Bounds.centralized ~n:4096 ~eps:0.25)

let test_thm11 () =
  check_float "sqrt(n/k)/e^2" 128.
    (Dut_core.Bounds.thm11_lower ~n:4096 ~k:64 ~eps:0.25);
  Alcotest.(check bool) "applies for small k" true
    (Dut_core.Bounds.thm11_applies ~n:4096 ~k:64 ~eps:0.25);
  Alcotest.(check bool) "fails for huge k" false
    (Dut_core.Bounds.thm11_applies ~n:64 ~k:100000 ~eps:0.25)

let test_thm61_min_form () =
  (* For k <= n the sqrt branch is active; beyond, the linear branch. *)
  let small_k = Dut_core.Bounds.thm61_lower ~n:1024 ~k:16 ~eps:0.5 in
  check_float "sqrt branch" (8. /. 0.25) small_k;
  let large_k = Dut_core.Bounds.thm61_lower ~n:16 ~k:256 ~eps:0.5 in
  check_float "linear branch" (16. /. 256. /. 0.25) large_k

let test_thm12 () =
  (* k = 1: centralized. *)
  check_float "k=1" (Dut_core.Bounds.centralized ~n:1024 ~eps:0.25)
    (Dut_core.Bounds.thm12_and_lower ~n:1024 ~k:1 ~eps:0.25);
  (* k = 16: sqrt(n)/(16 e^2). *)
  check_float "k=16" (32. /. 16. /. 0.0625)
    (Dut_core.Bounds.thm12_and_lower ~n:1024 ~k:16 ~eps:0.25);
  Alcotest.(check bool) "applies" true
    (Dut_core.Bounds.thm12_applies ~k:16 ~eps:0.1 ~c:1.);
  Alcotest.(check bool) "does not apply" false
    (Dut_core.Bounds.thm12_applies ~k:(1 lsl 30) ~eps:0.5 ~c:1.)

let test_thm13_decreasing_in_t () =
  let b t = Dut_core.Bounds.thm13_threshold_lower ~n:4096 ~k:64 ~eps:0.25 ~t in
  Alcotest.(check bool) "1/T shape" true (b 1 > b 2 && b 2 > b 8);
  check_float "exact factor" (b 1 /. 4.) (b 4)

let test_thm14 () =
  check_float "n^2/q^2" 16384. (Dut_core.Bounds.thm14_learning_nodes ~n:1024 ~q:8)

let test_thm64_halves_per_bit_squared () =
  let b r = Dut_core.Bounds.thm64_rbit_lower ~n:65536 ~k:4 ~eps:0.5 ~r in
  (* In the sqrt branch each bit buys a sqrt(2) factor. *)
  check_float_loose "sqrt(2) per bit" (b 1 /. sqrt 2.) (b 2)

let test_fmo_upper_bounds () =
  Alcotest.(check bool) "threshold tester beats AND tester" true
    (Dut_core.Bounds.fmo_threshold_upper ~n:4096 ~k:64 ~eps:0.25
    < Dut_core.Bounds.fmo_and_upper ~n:4096 ~k:64 ~eps:0.25);
  check_float "threshold matches thm11"
    (Dut_core.Bounds.thm11_lower ~n:4096 ~k:64 ~eps:0.25)
    (Dut_core.Bounds.fmo_threshold_upper ~n:4096 ~k:64 ~eps:0.25)

let test_act_bounds () =
  check_float "single sample" (1024. /. (2. *. 0.0625))
    (Dut_core.Bounds.act_single_sample_nodes ~n:1024 ~eps:0.25 ~bits:2);
  Alcotest.(check bool) "learning needs more nodes" true
    (Dut_core.Bounds.act_learning_nodes ~n:1024 ~eps:0.25 ~bits:2
    > Dut_core.Bounds.act_single_sample_nodes ~n:1024 ~eps:0.25 ~bits:2)

let test_l2_norm () =
  check_float "3-4-5" 5. (Dut_core.Bounds.l2_norm [| 3.; 4. |]);
  check_float "uniform rates" 8. (Dut_core.Bounds.l2_norm (Array.make 64 1.))

let test_async_bound_depends_only_on_norm () =
  let a = Dut_core.Bounds.async_time_lower ~n:4096 ~eps:0.25 ~rates:(Array.make 64 1.) in
  let b =
    Dut_core.Bounds.async_time_lower ~n:4096 ~eps:0.25 ~rates:(Array.make 16 2.)
  in
  check_float "norm is sufficient statistic" a b

let test_lemma_rhs_monotonicity () =
  (* All lemma bounds grow with var(G) and with q. *)
  let l51 v = Dut_core.Bounds.lemma51_rhs ~q:10 ~n:1024 ~eps:0.25 ~var_g:v in
  Alcotest.(check bool) "51 monotone in var" true (l51 0.1 < l51 0.2);
  let l42 q = Dut_core.Bounds.lemma42_rhs ~q ~n:1024 ~eps:0.25 ~var_g:0.25 in
  Alcotest.(check bool) "42 monotone in q" true (l42 5 < l42 50);
  Alcotest.(check bool) "51 applies small q" true
    (Dut_core.Bounds.lemma51_applies ~q:10 ~n:1024 ~eps:0.25);
  Alcotest.(check bool) "51 fails huge q" false
    (Dut_core.Bounds.lemma51_applies ~q:10000 ~n:1024 ~eps:0.25)

let test_lemma43_applies () =
  Alcotest.(check bool) "applies" true
    (Dut_core.Bounds.lemma43_applies ~q:2 ~n:4096 ~eps:0.1 ~m:1);
  Alcotest.(check bool) "fails for large m" false
    (Dut_core.Bounds.lemma43_applies ~q:100 ~n:4096 ~eps:0.3 ~m:5)

let test_asymmetric_divergence_requirement () =
  (* Symmetric case is finite and positive; pushing delta1 to 0 raises
     the requirement (one-sided testers pay). *)
  let sym =
    Dut_core.Bounds.asymmetric_divergence_requirement ~k:4 ~delta1:(1. /. 3.)
      ~delta0:(1. /. 3.)
  in
  Alcotest.(check bool) "positive" true (sym > 0.);
  let one_sided =
    Dut_core.Bounds.asymmetric_divergence_requirement ~k:4 ~delta1:0.001
      ~delta0:(1. /. 3.)
  in
  Alcotest.(check bool) "one-sided needs more" true (one_sided > sym)

let test_divergence_formulas_match_info () =
  check_float "budget = info module"
    (Dut_info.Divergence.divergence_budget_bound ~q:20 ~n:1024 ~eps:0.25)
    (Dut_core.Bounds.divergence_budget ~q:20 ~n:1024 ~eps:0.25);
  check_float "requirement = info module"
    (Dut_info.Divergence.required_divergence_per_player ~k:8 ~delta:0.25)
    (Dut_core.Bounds.divergence_requirement ~k:8 ~delta:0.25)

(* -- Local_stat ------------------------------------------------------- *)

let test_collisions_crafted () =
  Alcotest.(check int) "empty" 0 (Dut_core.Local_stat.collisions [||]);
  Alcotest.(check int) "distinct" 0 (Dut_core.Local_stat.collisions [| 3; 1; 2 |]);
  Alcotest.(check int) "pair" 1 (Dut_core.Local_stat.collisions [| 5; 5 |]);
  Alcotest.(check int) "two pairs" 2 (Dut_core.Local_stat.collisions [| 1; 2; 1; 2 |]);
  Alcotest.(check int) "quadruple" 6 (Dut_core.Local_stat.collisions [| 9; 9; 9; 9 |])

let test_cutoff_ordering () =
  let n = 1024 and q = 100 and eps = 0.3 in
  Alcotest.(check bool) "null < midpoint < far" true
    (Dut_core.Local_stat.null_mean ~n ~q < Dut_core.Local_stat.midpoint_cutoff ~n ~q ~eps
    && Dut_core.Local_stat.midpoint_cutoff ~n ~q ~eps
       < Dut_core.Local_stat.far_mean ~n ~q ~eps)

let test_alarm_cutoff_monotone_in_level () =
  let n = 1024 and q = 200 in
  Alcotest.(check bool) "rarer alarms need higher cutoffs" true
    (Dut_core.Local_stat.alarm_cutoff ~n ~q ~false_alarm:0.001
    >= Dut_core.Local_stat.alarm_cutoff ~n ~q ~false_alarm:0.1)

let test_alarm_cutoff_calibrated_beyond_poisson () =
  (* In the q > n regime the cutoff's skew correction must keep the
     empirical false-alarm near (and not far above) the target. *)
  let n = 256 and q = 1024 in
  let target = 0.05 in
  let cutoff = Dut_core.Local_stat.alarm_cutoff ~n ~q ~false_alarm:target in
  let rng = Dut_prng.Rng.create 149 in
  let trials = 3000 in
  let alarms = ref 0 in
  for _ = 1 to trials do
    let samples = Array.init q (fun _ -> Dut_prng.Rng.int rng n) in
    if Dut_core.Local_stat.collisions samples >= cutoff then incr alarms
  done;
  let rate = float_of_int !alarms /. float_of_int trials in
  if rate > 1.6 *. target then
    Alcotest.failf "false alarm %.3f far above target %.3f" rate target;
  if rate < target /. 4. then
    Alcotest.failf "false alarm %.3f far below target %.3f (cutoff too deep)" rate
      target

let test_votes () =
  let n = 1024 and q = 50 and eps = 0.3 in
  (* No collisions: always accept. *)
  Alcotest.(check bool) "distinct accepts (midpoint)" true
    (Dut_core.Local_stat.vote_midpoint ~n ~q ~eps (Array.init q Fun.id));
  Alcotest.(check bool) "distinct accepts (alarm)" true
    (Dut_core.Local_stat.vote_alarm ~n ~q ~false_alarm:0.01 (Array.init q Fun.id));
  (* All-equal samples: reject under both. *)
  Alcotest.(check bool) "constant rejects (midpoint)" false
    (Dut_core.Local_stat.vote_midpoint ~n ~q ~eps (Array.make q 7));
  Alcotest.(check bool) "constant rejects (alarm)" false
    (Dut_core.Local_stat.vote_alarm ~n ~q ~false_alarm:0.01 (Array.make q 7))

(* -- Evaluate --------------------------------------------------------- *)

let perfect_tester =
  (* Accepts iff the source is statistically uniform; we fake it with an
     oracle that inspects a large sample's collision count. *)
  {
    Dut_core.Evaluate.name = "oracle";
    accepts =
      (fun rng source ->
        let n = 64 in
        let samples = Array.init 2000 (fun _ -> source rng) in
        Dut_testers.Collision.test ~n ~eps:0.3 samples);
  }

let test_measure_oracle () =
  let rng = Dut_prng.Rng.create 120 in
  let p = Dut_core.Evaluate.measure ~trials:60 ~rng ~ell:5 ~eps:0.3 perfect_tester in
  Alcotest.(check bool) "oracle accepts uniform" true
    (p.uniform_accept.estimate > 0.9);
  Alcotest.(check bool) "oracle rejects far" true (p.far_reject.estimate > 0.9)

let test_measure_deterministic () =
  let run () =
    let rng = Dut_prng.Rng.create 121 in
    let p = Dut_core.Evaluate.measure ~trials:40 ~rng ~ell:4 ~eps:0.3 perfect_tester in
    (p.uniform_accept.estimate, p.far_reject.estimate)
  in
  Alcotest.(check bool) "same seed, same measurement" true (run () = run ())

let test_succeeds_levels () =
  let rng = Dut_prng.Rng.create 122 in
  Alcotest.(check bool) "oracle succeeds at 0.75" true
    (Dut_core.Evaluate.succeeds ~trials:60 ~level:0.75 ~rng ~ell:5 ~eps:0.3
       perfect_tester)

let test_critical_q_synthetic () =
  (* A synthetic tester that succeeds exactly when q >= 37. *)
  let rng = Dut_prng.Rng.create 123 in
  let make q =
    {
      Dut_core.Evaluate.name = "synthetic";
      accepts =
        (fun rng source ->
          if q >= 37 then begin
            (* behave like the oracle *)
            let samples = Array.init 2000 (fun _ -> source rng) in
            Dut_testers.Collision.test ~n:64 ~eps:0.3 samples
          end
          else Dut_prng.Rng.bool rng);
    }
  in
  match
    Dut_core.Evaluate.critical_q ~trials:50 ~level:0.75 ~rng ~ell:5 ~eps:0.3
      ~hi:1000 make
  with
  | Some q -> Alcotest.(check int) "finds 37" 37 q
  | None -> Alcotest.fail "critical q not found"

(* -- And_tester ------------------------------------------------------- *)

let test_and_tester_errors () =
  Alcotest.check_raises "bad eps" (Invalid_argument "And_tester.make: eps out of (0,1)")
    (fun () -> ignore (Dut_core.And_tester.make ~n:64 ~eps:1.5 ~k:4 ~q:10));
  Alcotest.check_raises "bad sizes" (Invalid_argument "And_tester.make: bad sizes")
    (fun () -> ignore (Dut_core.And_tester.make ~n:64 ~eps:0.3 ~k:0 ~q:10))

let test_and_tester_cutoff_grows_with_k () =
  (* More players -> rarer per-player alarms -> higher cutoffs. *)
  let cutoff k = Dut_core.And_tester.local_cutoff (Dut_core.And_tester.make ~n:1024 ~eps:0.3 ~k ~q:300) in
  Alcotest.(check bool) "monotone" true (cutoff 4 <= cutoff 64 && cutoff 64 <= cutoff 1024)

let test_and_tester_power () =
  let ell = 5 in
  let n = 1 lsl (ell + 1) in
  let eps = 0.3 in
  let q = 3 * int_of_float (Dut_core.Bounds.centralized ~n ~eps) in
  let rng = Dut_prng.Rng.create 124 in
  let p =
    Dut_core.Evaluate.measure ~trials:80 ~rng ~ell ~eps
      (Dut_core.And_tester.tester ~n ~eps ~k:8 ~q)
  in
  Alcotest.(check bool) "uniform accepted" true (p.uniform_accept.estimate >= 0.7);
  Alcotest.(check bool) "far rejected" true (p.far_reject.estimate >= 0.7)

(* -- Threshold_tester -------------------------------------------------- *)

let test_threshold_fixed_errors () =
  Alcotest.check_raises "t out of range"
    (Invalid_argument "Threshold_tester.make_fixed: t outside [1,k]") (fun () ->
      ignore (Dut_core.Threshold_tester.make_fixed ~n:64 ~eps:0.3 ~k:4 ~q:10 ~t:5))

let test_threshold_fixed_referee_cutoff () =
  let t = Dut_core.Threshold_tester.make_fixed ~n:64 ~eps:0.3 ~k:8 ~q:10 ~t:3 in
  Alcotest.(check int) "fixed cutoff" 3 (Dut_core.Threshold_tester.referee_cutoff t)

let test_threshold_majority_power () =
  let ell = 5 in
  let n = 1 lsl (ell + 1) in
  let eps = 0.3 in
  let k = 16 in
  let q = 3 * int_of_float (Dut_core.Bounds.fmo_threshold_upper ~n ~k ~eps) in
  let rng = Dut_prng.Rng.create 125 in
  let tester =
    Dut_core.Threshold_tester.tester_majority ~n ~eps ~k ~q ~calibration_trials:200
      ~rng:(Dut_prng.Rng.split rng)
  in
  let p = Dut_core.Evaluate.measure ~trials:80 ~rng ~ell ~eps tester in
  Alcotest.(check bool) "uniform accepted" true (p.uniform_accept.estimate >= 0.7);
  Alcotest.(check bool) "far rejected" true (p.far_reject.estimate >= 0.7)

let test_threshold_uses_fewer_samples_than_and () =
  (* The headline contrast of the paper, as a concrete pair of runs:
     at q = fmo_threshold_upper scale, majority works but AND does not
     reject far inputs reliably for moderate k. *)
  let ell = 6 in
  let n = 1 lsl (ell + 1) in
  let eps = 0.3 in
  let k = 32 in
  let q = 6 * int_of_float (Dut_core.Bounds.fmo_threshold_upper ~n ~k ~eps) in
  let rng = Dut_prng.Rng.create 126 in
  let majority =
    Dut_core.Threshold_tester.tester_majority ~n ~eps ~k ~q ~calibration_trials:200
      ~rng:(Dut_prng.Rng.split rng)
  in
  let and_t = Dut_core.And_tester.tester ~n ~eps ~k ~q in
  let pm = Dut_core.Evaluate.measure ~trials:60 ~rng ~ell ~eps majority in
  let pa = Dut_core.Evaluate.measure ~trials:60 ~rng ~ell ~eps and_t in
  Alcotest.(check bool) "majority works here" true
    (Float.min pm.uniform_accept.estimate pm.far_reject.estimate >= 0.7);
  Alcotest.(check bool) "AND needs more samples" true
    (Float.min pa.uniform_accept.estimate pa.far_reject.estimate
    < Float.min pm.uniform_accept.estimate pm.far_reject.estimate)

(* -- Rbit_tester ------------------------------------------------------- *)

let test_rbit_errors () =
  let rng = Dut_prng.Rng.create 127 in
  Alcotest.check_raises "bits range"
    (Invalid_argument "Rbit_tester.make: bits outside [1,16]") (fun () ->
      ignore
        (Dut_core.Rbit_tester.make ~n:64 ~eps:0.3 ~k:4 ~q:10 ~bits:0
           ~calibration_trials:10 ~rng))

let test_rbit_quantize_range () =
  let rng = Dut_prng.Rng.create 128 in
  let t =
    Dut_core.Rbit_tester.make ~n:1024 ~eps:0.3 ~k:8 ~q:100 ~bits:3
      ~calibration_trials:50 ~rng
  in
  for count = 0 to 100 do
    let m = Dut_core.Rbit_tester.quantize t count in
    if m < 0 || m >= 8 then Alcotest.failf "quantize out of range: %d" m
  done;
  (* Monotone in the count. *)
  Alcotest.(check bool) "monotone" true
    (Dut_core.Rbit_tester.quantize t 0 <= Dut_core.Rbit_tester.quantize t 50)

let test_rbit_power () =
  let ell = 5 in
  let n = 1 lsl (ell + 1) in
  let eps = 0.3 in
  let k = 16 in
  let q = 3 * int_of_float (Dut_core.Bounds.fmo_threshold_upper ~n ~k ~eps) in
  let rng = Dut_prng.Rng.create 129 in
  let tester =
    Dut_core.Rbit_tester.tester ~n ~eps ~k ~q ~bits:3 ~calibration_trials:200
      ~rng:(Dut_prng.Rng.split rng)
  in
  let p = Dut_core.Evaluate.measure ~trials:80 ~rng ~ell ~eps tester in
  Alcotest.(check bool) "works at threshold-tester scale" true
    (Float.min p.uniform_accept.estimate p.far_reject.estimate >= 0.7)

(* -- Single_sample ------------------------------------------------------ *)

let test_single_sample_errors () =
  Alcotest.check_raises "too many buckets"
    (Invalid_argument "Single_sample.make: more buckets than elements") (fun () ->
      ignore (Dut_core.Single_sample.make ~n:8 ~eps:0.3 ~k:100 ~bits:4))

let test_single_sample_expectations () =
  let t = Dut_core.Single_sample.make ~n:64 ~eps:0.3 ~k:100 ~bits:3 in
  Alcotest.(check bool) "far mean above uniform mean" true
    (Dut_core.Single_sample.expected_far t > Dut_core.Single_sample.expected_uniform t);
  Alcotest.(check bool) "cutoff between" true
    (Dut_core.Single_sample.cutoff t > Dut_core.Single_sample.expected_uniform t
    && Dut_core.Single_sample.cutoff t < Dut_core.Single_sample.expected_far t)

let test_single_sample_power () =
  let ell = 5 in
  let n = 1 lsl (ell + 1) in
  let eps = 0.4 in
  let rng = Dut_prng.Rng.create 130 in
  let k = 12 * int_of_float (Dut_core.Bounds.act_single_sample_nodes ~n ~eps ~bits:4) in
  let p =
    Dut_core.Evaluate.measure ~trials:80 ~rng ~ell ~eps
      (Dut_core.Single_sample.tester ~n ~eps ~k ~bits:4)
  in
  Alcotest.(check bool) "single-sample protocol works" true
    (Float.min p.uniform_accept.estimate p.far_reject.estimate >= 0.7)

(* -- Async_tester -------------------------------------------------------- *)

let test_async_sample_counts () =
  let rng = Dut_prng.Rng.create 131 in
  let t =
    Dut_core.Async_tester.make ~n:64 ~eps:0.3 ~rates:[| 1.; 2.; 0.5 |] ~tau:10.
      ~calibration_trials:20 ~rng
  in
  Alcotest.(check (array int)) "q_i = ceil(rate*tau)" [| 10; 20; 5 |]
    (Dut_core.Async_tester.sample_counts t)

let test_async_errors () =
  let rng = Dut_prng.Rng.create 132 in
  Alcotest.check_raises "zero rate" (Invalid_argument "Async_tester.make: rate <= 0")
    (fun () ->
      ignore
        (Dut_core.Async_tester.make ~n:64 ~eps:0.3 ~rates:[| 1.; 0. |] ~tau:5.
           ~calibration_trials:10 ~rng))

let test_async_power () =
  let ell = 5 in
  let n = 1 lsl (ell + 1) in
  let eps = 0.3 in
  let rng = Dut_prng.Rng.create 133 in
  let rates = Array.make 16 1. in
  let tau = 3. *. Dut_core.Bounds.async_time_lower ~n ~eps ~rates in
  let tester =
    Dut_core.Async_tester.tester ~n ~eps ~rates ~tau ~calibration_trials:200
      ~rng:(Dut_prng.Rng.split rng)
  in
  let p = Dut_core.Evaluate.measure ~trials:80 ~rng ~ell ~eps tester in
  Alcotest.(check bool) "async tester works" true
    (Float.min p.uniform_accept.estimate p.far_reject.estimate >= 0.7)

(* -- Learning ------------------------------------------------------------ *)

let test_learning_errors () =
  Alcotest.check_raises "k < n"
    (Invalid_argument "Learning.make: need at least one watcher per element")
    (fun () -> ignore (Dut_core.Learning.make ~n:64 ~k:32 ~q:1))

let test_learning_recovers_point_mass_shape () =
  (* With many watchers, a heavily biased distribution should be learned
     closely. *)
  let n = 8 in
  let truth = Dut_dist.Pmf.create [| 0.3; 0.1; 0.1; 0.1; 0.1; 0.1; 0.1; 0.1 |] in
  let rng = Dut_prng.Rng.create 134 in
  let t = Dut_core.Learning.make ~n ~k:(n * 4000) ~q:2 in
  let err = Dut_core.Learning.l1_error t rng ~truth in
  Alcotest.(check bool) "small l1 error" true (err < 0.1)

let test_learning_error_decreases_with_k () =
  let n = 16 in
  let truth = Dut_dist.Pmf.uniform 16 in
  let rng = Dut_prng.Rng.create 135 in
  let mean_err k =
    (Dut_core.Learning.mean_l1_error ~trials:10 ~rng ~n ~k ~q:2 ~truth).mean
  in
  Alcotest.(check bool) "more nodes, less error" true
    (mean_err (n * 2000) < mean_err (n * 20))

let test_learning_estimate_is_pmf () =
  let rng = Dut_prng.Rng.create 136 in
  let t = Dut_core.Learning.make ~n:8 ~k:64 ~q:3 in
  let est =
    Dut_core.Learning.estimate t rng (Dut_protocol.Network.uniform_source ~n:8)
  in
  let total = ref 0. in
  for i = 0 to 7 do
    total := !total +. Dut_dist.Pmf.prob est i
  done;
  check_float_loose "normalized" 1. !total

(* -- Crash_tester ------------------------------------------------------------ *)

let test_crash_tester_errors () =
  let rng = Dut_prng.Rng.create 150 in
  Alcotest.check_raises "crash prob"
    (Invalid_argument "Crash_tester.make: crash probability out of [0,1)")
    (fun () ->
      ignore
        (Dut_core.Crash_tester.make ~n:64 ~eps:0.3 ~k:8 ~q:10 ~crash_prob:1.
           ~calibration_trials:10 ~rng))

let test_crash_cutoff_scales_with_live () =
  let rng = Dut_prng.Rng.create 151 in
  let t =
    Dut_core.Crash_tester.make ~n:1024 ~eps:0.3 ~k:64 ~q:200 ~crash_prob:0.2
      ~calibration_trials:100 ~rng
  in
  Alcotest.(check bool) "more live players, higher count cutoff" true
    (Dut_core.Crash_tester.reject_cutoff t ~live:64
    >= Dut_core.Crash_tester.reject_cutoff t ~live:16);
  Alcotest.(check bool) "cutoff within range" true
    (Dut_core.Crash_tester.reject_cutoff t ~live:10 <= 11)

let test_crash_zero_matches_plain_power () =
  (* At crash_prob = 0 the crash tester is a plain calibrated tester. *)
  let ell = 5 in
  let n = 1 lsl (ell + 1) in
  let eps = 0.3 in
  let k = 16 in
  let q = 5 * int_of_float (Dut_core.Bounds.fmo_threshold_upper ~n ~k ~eps) in
  let rng = Dut_prng.Rng.create 152 in
  let tester =
    Dut_core.Crash_tester.tester ~n ~eps ~k ~q ~crash_prob:0.
      ~calibration_trials:150 ~rng:(Dut_prng.Rng.split rng)
  in
  let p = Dut_core.Evaluate.measure ~trials:80 ~rng ~ell ~eps tester in
  Alcotest.(check bool) "works crash-free" true
    (Float.min p.uniform_accept.estimate p.far_reject.estimate >= 0.7)

let test_crash_half_fleet_still_works () =
  let ell = 5 in
  let n = 1 lsl (ell + 1) in
  let eps = 0.3 in
  let k = 32 in
  let q = 6 * int_of_float (Dut_core.Bounds.fmo_threshold_upper ~n ~k ~eps) in
  let rng = Dut_prng.Rng.create 153 in
  let tester =
    Dut_core.Crash_tester.tester ~n ~eps ~k ~q ~crash_prob:0.5
      ~calibration_trials:150 ~rng:(Dut_prng.Rng.split rng)
  in
  let p = Dut_core.Evaluate.measure ~trials:80 ~rng ~ell ~eps tester in
  Alcotest.(check bool)
    (Printf.sprintf "survives 50%% crashes (unif %.2f far %.2f)"
       p.uniform_accept.estimate p.far_reject.estimate)
    true
    (Float.min p.uniform_accept.estimate p.far_reject.estimate >= 0.65)

(* -- Byzantine_tester --------------------------------------------------------- *)

let test_byzantine_errors () =
  let rng = Dut_prng.Rng.create 154 in
  Alcotest.check_raises "too many liars"
    (Invalid_argument "Byzantine_tester.make: byzantine outside [0, k/2)")
    (fun () ->
      ignore
        (Dut_core.Byzantine_tester.make ~n:64 ~eps:0.3 ~k:8 ~q:10 ~byzantine:4
           ~calibration_trials:10 ~rng))

let test_byzantine_safety_under_framing () =
  (* Push_reject liars try to frame a uniform stream; the hardened
     referee must keep accepting. *)
  let ell = 5 in
  let n = 1 lsl (ell + 1) in
  let eps = 0.3 in
  let k = 32 in
  let q = 6 * int_of_float (Dut_core.Bounds.fmo_threshold_upper ~n ~k ~eps) in
  let rng = Dut_prng.Rng.create 155 in
  List.iter
    (fun b ->
      let t =
        Dut_core.Byzantine_tester.make ~n ~eps ~k ~q ~byzantine:b
          ~calibration_trials:150 ~rng:(Dut_prng.Rng.split rng)
      in
      let accepts = ref 0 in
      let trials = 80 in
      for _ = 1 to trials do
        if
          Dut_core.Byzantine_tester.accepts t
            ~adversary:Dut_core.Byzantine_tester.Push_reject ~truth_is_far:false
            (Dut_prng.Rng.split rng)
            (Dut_protocol.Network.uniform_source ~n)
        then incr accepts
      done;
      if float_of_int !accepts /. float_of_int trials < 0.7 then
        Alcotest.failf "framed at b=%d: only %d/%d accepted" b !accepts trials)
    [ 0; 2; 8; 15 ]

let test_byzantine_tolerance_formula_positive () =
  let b = Dut_core.Byzantine_tester.tolerated_faults ~n:1024 ~eps:0.25 ~k:64 ~q:400 in
  Alcotest.(check bool) "positive and below k" true (b > 0. && b < 64.)

(* -- Rule_search ----------------------------------------------------------- *)

let test_rule_search_indistinguishable_gives_half () =
  (* If the bit distribution is identical under both hypotheses, no rule
     beats a coin flip: the LP value is exactly 1/2. *)
  check_float "coin flip" 0.5
    (Dut_core.Rule_search.best_rule_value ~k:5 ~a0:0.3 ~a_far:[| 0.3; 0.3 |])

let test_rule_search_perfect_bits () =
  (* Perfectly separated bits: value 1 (accept iff all ones, k=1). *)
  check_float_loose "separated" 1.
    (Dut_core.Rule_search.best_rule_value ~k:1 ~a0:1. ~a_far:[| 0. |])

let test_rule_search_lp_dominates_integer () =
  let rng = Dut_prng.Rng.create 138 in
  for _ = 1 to 30 do
    let k = 1 + Dut_prng.Rng.int rng 5 in
    let a0 = Dut_prng.Rng.unit_float rng in
    let a_far = Array.init 4 (fun _ -> Dut_prng.Rng.unit_float rng) in
    let lp = Dut_core.Rule_search.best_rule_value ~k ~a0 ~a_far in
    let integer = Dut_core.Rule_search.best_rule_value_integer ~k ~a0 ~a_far in
    if integer > lp +. 1e-6 then
      Alcotest.failf "integer %f beats LP %f (duality violated)" integer lp;
    if lp < 0.5 -. 1e-9 then Alcotest.failf "LP value %f below the coin flip" lp
  done

let test_rule_search_vote_probs () =
  let g = Dut_core.Exact.collision_acceptor ~ell:1 ~q:2 ~cutoff:1 in
  let a0, a_far = Dut_core.Rule_search.vote_probs g ~eps:0.3 in
  check_float "a0 = mu" (Dut_core.Exact.mu g) a0;
  Alcotest.(check int) "one entry per z" 4 (Array.length a_far);
  (* For the q=2 collision acceptor a_z = 1 - (1+eps^2)/n for every z. *)
  Array.iter (fun a -> check_float "a_z closed form" (1. -. (1.09 /. 4.)) a) a_far

let test_rule_search_matches_truth_table_brute_force () =
  (* k = 2: enumerate all 16 boolean rules directly and confirm the
     integer layer-profile optimum matches. *)
  let rng = Dut_prng.Rng.create 139 in
  for _ = 1 to 25 do
    let a0 = Dut_prng.Rng.unit_float rng in
    let a_far = Array.init 3 (fun _ -> Dut_prng.Rng.unit_float rng) in
    let accept_prob rule p =
      (* bits (b1, b2) iid Bernoulli(p); rule indexed by b1 + 2*b2. *)
      let pr b = if b = 1 then p else 1. -. p in
      let acc = ref 0. in
      for b1 = 0 to 1 do
        for b2 = 0 to 1 do
          if (rule lsr (b1 + (2 * b2))) land 1 = 1 then
            acc := !acc +. (pr b1 *. pr b2)
        done
      done;
      !acc
    in
    let brute = ref 0. in
    for rule = 0 to 15 do
      let a = accept_prob rule a0 in
      let r =
        1.
        -. Array.fold_left (fun acc af -> acc +. accept_prob rule af) 0. a_far
           /. float_of_int (Array.length a_far)
      in
      brute := Float.max !brute (Float.min a r)
    done;
    let via_layers = Dut_core.Rule_search.best_rule_value_integer ~k:2 ~a0 ~a_far in
    if Float.abs (!brute -. via_layers) > 1e-9 then
      Alcotest.failf "layer optimum %f <> truth-table optimum %f" via_layers !brute
  done

let test_rule_search_value_grows_with_q () =
  let value q =
    fst (Dut_core.Rule_search.best_over_strategies ~ell:2 ~q ~eps:0.5 ~k:8)
  in
  Alcotest.(check bool) "more samples help" true (value 4 >= value 1 -. 1e-9)

(* -- Amplify -------------------------------------------------------------- *)

let test_amplify_errors () =
  let t = perfect_tester in
  Alcotest.check_raises "even rounds"
    (Invalid_argument "Amplify.wrap: rounds must be positive and odd") (fun () ->
      ignore (Dut_core.Amplify.wrap ~rounds:4 t))

let test_amplify_error_bound_shape () =
  Alcotest.(check bool) "decreasing in rounds" true
    (Dut_core.Amplify.error_bound ~rounds:9 ~round_error:0.3
    < Dut_core.Amplify.error_bound ~rounds:3 ~round_error:0.3);
  Alcotest.(check (float 1e-9)) "useless at 1/2" 1.
    (Dut_core.Amplify.error_bound ~rounds:99 ~round_error:0.5)

let test_amplify_rounds_for () =
  let r = Dut_core.Amplify.rounds_for ~target_error:0.01 ~round_error:(1. /. 3.) in
  Alcotest.(check bool) "odd" true (r mod 2 = 1);
  Alcotest.(check bool) "achieves target" true
    (Dut_core.Amplify.error_bound ~rounds:r ~round_error:(1. /. 3.) <= 0.01);
  Alcotest.(check bool) "minimal" true
    (r = 1
    || Dut_core.Amplify.error_bound ~rounds:(r - 2) ~round_error:(1. /. 3.) > 0.01)

let test_amplify_improves_marginal_tester () =
  (* A tester with ~75% per-round success: majority-of-9 should be
     measurably better on both sides. *)
  let ell = 5 in
  let n = 1 lsl (ell + 1) in
  let eps = 0.3 in
  let rng = Dut_prng.Rng.create 137 in
  let weak =
    {
      Dut_core.Evaluate.name = "weak";
      accepts =
        (fun rng source ->
          let samples = Array.init 250 (fun _ -> source rng) in
          Dut_testers.Collision.test ~n ~eps samples);
    }
  in
  let strong = Dut_core.Amplify.wrap ~rounds:9 weak in
  let pw = Dut_core.Evaluate.measure ~trials:80 ~rng:(Dut_prng.Rng.split rng) ~ell ~eps weak in
  let ps = Dut_core.Evaluate.measure ~trials:80 ~rng:(Dut_prng.Rng.split rng) ~ell ~eps strong in
  let score (p : Dut_core.Evaluate.power) =
    Float.min p.uniform_accept.estimate p.far_reject.estimate
  in
  Alcotest.(check bool) "amplification helps" true (score ps >= score pw);
  Alcotest.(check bool) "amplified is reliable" true (score ps >= 0.85)

let () =
  Alcotest.run "dut_core"
    [
      ( "bounds",
        [
          Alcotest.test_case "centralized" `Quick test_centralized_bound;
          Alcotest.test_case "thm 1.1" `Quick test_thm11;
          Alcotest.test_case "thm 6.1 min form" `Quick test_thm61_min_form;
          Alcotest.test_case "thm 1.2" `Quick test_thm12;
          Alcotest.test_case "thm 1.3 1/T" `Quick test_thm13_decreasing_in_t;
          Alcotest.test_case "thm 1.4" `Quick test_thm14;
          Alcotest.test_case "thm 6.4 per-bit factor" `Quick test_thm64_halves_per_bit_squared;
          Alcotest.test_case "FMO uppers" `Quick test_fmo_upper_bounds;
          Alcotest.test_case "ACT bounds" `Quick test_act_bounds;
          Alcotest.test_case "l2 norm" `Quick test_l2_norm;
          Alcotest.test_case "async norm sufficiency" `Quick test_async_bound_depends_only_on_norm;
          Alcotest.test_case "lemma RHS monotone" `Quick test_lemma_rhs_monotonicity;
          Alcotest.test_case "lemma 4.3 side condition" `Quick test_lemma43_applies;
          Alcotest.test_case "divergence = info module" `Quick test_divergence_formulas_match_info;
          Alcotest.test_case "asymmetric errors" `Quick test_asymmetric_divergence_requirement;
        ] );
      ( "local_stat",
        [
          Alcotest.test_case "collisions crafted" `Quick test_collisions_crafted;
          Alcotest.test_case "cutoff ordering" `Quick test_cutoff_ordering;
          Alcotest.test_case "alarm cutoff monotone" `Quick test_alarm_cutoff_monotone_in_level;
          Alcotest.test_case "skew-corrected calibration" `Slow
            test_alarm_cutoff_calibrated_beyond_poisson;
          Alcotest.test_case "votes" `Quick test_votes;
        ] );
      ( "evaluate",
        [
          Alcotest.test_case "oracle measurement" `Slow test_measure_oracle;
          Alcotest.test_case "determinism" `Slow test_measure_deterministic;
          Alcotest.test_case "succeeds levels" `Slow test_succeeds_levels;
          Alcotest.test_case "critical q synthetic" `Slow test_critical_q_synthetic;
        ] );
      ( "and_tester",
        [
          Alcotest.test_case "errors" `Quick test_and_tester_errors;
          Alcotest.test_case "cutoff grows with k" `Quick test_and_tester_cutoff_grows_with_k;
          Alcotest.test_case "power" `Slow test_and_tester_power;
        ] );
      ( "threshold_tester",
        [
          Alcotest.test_case "fixed errors" `Quick test_threshold_fixed_errors;
          Alcotest.test_case "fixed referee cutoff" `Quick test_threshold_fixed_referee_cutoff;
          Alcotest.test_case "majority power" `Slow test_threshold_majority_power;
          Alcotest.test_case "majority beats AND" `Slow test_threshold_uses_fewer_samples_than_and;
        ] );
      ( "rbit_tester",
        [
          Alcotest.test_case "errors" `Quick test_rbit_errors;
          Alcotest.test_case "quantize range" `Quick test_rbit_quantize_range;
          Alcotest.test_case "power" `Slow test_rbit_power;
        ] );
      ( "single_sample",
        [
          Alcotest.test_case "errors" `Quick test_single_sample_errors;
          Alcotest.test_case "expectations" `Quick test_single_sample_expectations;
          Alcotest.test_case "power" `Slow test_single_sample_power;
        ] );
      ( "async_tester",
        [
          Alcotest.test_case "sample counts" `Quick test_async_sample_counts;
          Alcotest.test_case "errors" `Quick test_async_errors;
          Alcotest.test_case "power" `Slow test_async_power;
        ] );
      ( "learning",
        [
          Alcotest.test_case "errors" `Quick test_learning_errors;
          Alcotest.test_case "recovers bias" `Slow test_learning_recovers_point_mass_shape;
          Alcotest.test_case "error decreases with k" `Slow test_learning_error_decreases_with_k;
          Alcotest.test_case "estimate is a pmf" `Quick test_learning_estimate_is_pmf;
        ] );
      ( "crash_tester",
        [
          Alcotest.test_case "errors" `Quick test_crash_tester_errors;
          Alcotest.test_case "cutoff scales with live" `Quick
            test_crash_cutoff_scales_with_live;
          Alcotest.test_case "crash-free power" `Slow test_crash_zero_matches_plain_power;
          Alcotest.test_case "half fleet" `Slow test_crash_half_fleet_still_works;
        ] );
      ( "byzantine_tester",
        [
          Alcotest.test_case "errors" `Quick test_byzantine_errors;
          Alcotest.test_case "safety under framing" `Slow test_byzantine_safety_under_framing;
          Alcotest.test_case "tolerance formula" `Quick test_byzantine_tolerance_formula_positive;
        ] );
      ( "rule_search",
        [
          Alcotest.test_case "indistinguishable = 1/2" `Quick
            test_rule_search_indistinguishable_gives_half;
          Alcotest.test_case "perfect bits" `Quick test_rule_search_perfect_bits;
          Alcotest.test_case "LP dominates integer" `Quick
            test_rule_search_lp_dominates_integer;
          Alcotest.test_case "vote probs" `Quick test_rule_search_vote_probs;
          Alcotest.test_case "truth-table brute force" `Quick
            test_rule_search_matches_truth_table_brute_force;
          Alcotest.test_case "value grows with q" `Quick
            test_rule_search_value_grows_with_q;
        ] );
      ( "amplify",
        [
          Alcotest.test_case "errors" `Quick test_amplify_errors;
          Alcotest.test_case "bound shape" `Quick test_amplify_error_bound_shape;
          Alcotest.test_case "rounds_for" `Quick test_amplify_rounds_for;
          Alcotest.test_case "improves marginal tester" `Slow
            test_amplify_improves_marginal_tester;
        ] );
    ]
