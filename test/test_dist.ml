(* Tests for dut_dist: pmf validation, distances, the alias sampler, the
   empirical histogram, and the Paninski hard family of Section 3. *)

open Dut_dist

let check_float = Alcotest.(check (float 1e-9))
let check_float_loose = Alcotest.(check (float 1e-4))

(* -- Pmf -------------------------------------------------------------- *)

let test_pmf_create_normalizes () =
  let p = Pmf.create [| 0.25; 0.25; 0.25; 0.25 |] in
  Alcotest.(check int) "size" 4 (Pmf.size p);
  check_float "prob" 0.25 (Pmf.prob p 0)

let test_pmf_create_rejects_negative () =
  Alcotest.check_raises "negative" (Invalid_argument "Pmf: negative or NaN mass")
    (fun () -> ignore (Pmf.create [| 0.5; -0.1; 0.6 |]))

let test_pmf_create_rejects_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Pmf: empty universe") (fun () ->
      ignore (Pmf.create [||]))

let test_pmf_create_rejects_bad_sum () =
  Alcotest.check_raises "bad sum"
    (Invalid_argument "Pmf.create: weights must sum to 1 (+-1e-6)") (fun () ->
      ignore (Pmf.create [| 0.5; 0.2 |]))

let test_pmf_strict () =
  let p = Pmf.create_exn_strict [| 0.5; 0.5 |] in
  check_float "strict ok" 0.5 (Pmf.prob p 0);
  Alcotest.check_raises "strict bad"
    (Invalid_argument "Pmf.create_exn_strict: weights must sum to 1 (+-1e-9)")
    (fun () -> ignore (Pmf.create_exn_strict [| 0.5; 0.5000001 |]))

let test_pmf_uniform () =
  let u = Pmf.uniform 10 in
  for i = 0 to 9 do
    check_float "uniform mass" 0.1 (Pmf.prob u i)
  done;
  Alcotest.check_raises "n=0" (Invalid_argument "Pmf.uniform: n must be positive")
    (fun () -> ignore (Pmf.uniform 0))

let test_pmf_point_mass () =
  let p = Pmf.point_mass ~n:5 2 in
  check_float "mass at point" 1. (Pmf.prob p 2);
  check_float "mass elsewhere" 0. (Pmf.prob p 0)

let test_pmf_prob_out_of_range () =
  let u = Pmf.uniform 3 in
  Alcotest.check_raises "index" (Invalid_argument "Pmf.prob: index out of range")
    (fun () -> ignore (Pmf.prob u 3))

let test_pmf_mix () =
  let p = Pmf.point_mass ~n:2 0 and q = Pmf.point_mass ~n:2 1 in
  let m = Pmf.mix 0.3 p q in
  check_float "mix left" 0.3 (Pmf.prob m 0);
  check_float "mix right" 0.7 (Pmf.prob m 1)

let test_pmf_collision_prob () =
  check_float "uniform collision" 0.125 (Pmf.collision_prob (Pmf.uniform 8));
  check_float "point mass collision" 1.
    (Pmf.collision_prob (Pmf.point_mass ~n:8 3))

let test_pmf_product () =
  let p = Pmf.create [| 0.25; 0.75 |] and q = Pmf.create [| 0.5; 0.3; 0.2 |] in
  let joint = Pmf.product p q in
  Alcotest.(check int) "size" 6 (Pmf.size joint);
  check_float "(0,0)" 0.125 (Pmf.prob joint 0);
  check_float "(1,2)" 0.15 (Pmf.prob joint 5);
  (* Marginals recovered by folding. *)
  let marg1 = Pmf.map_support joint (fun i -> i / 3) ~n:2 in
  check_float "first marginal" 0.25 (Pmf.prob marg1 0)

let test_pmf_map_support () =
  let u = Pmf.uniform 4 in
  let folded = Pmf.map_support u (fun i -> i / 2) ~n:2 in
  check_float "folded mass" 0.5 (Pmf.prob folded 0)

(* -- Distance --------------------------------------------------------- *)

let test_l1_known () =
  let p = Pmf.create [| 0.5; 0.5 |] and q = Pmf.create [| 0.25; 0.75 |] in
  check_float "l1" 0.5 (Distance.l1 p q);
  check_float "tv" 0.25 (Distance.tv p q)

let test_l1_self_zero () =
  let u = Pmf.uniform 7 in
  check_float "self distance" 0. (Distance.l1 u u)

let test_size_mismatch () =
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Distance.l1: universe size mismatch") (fun () ->
      ignore (Distance.l1 (Pmf.uniform 2) (Pmf.uniform 3)))

let test_kl_known () =
  (* D([1/2,1/2] || [1/4,3/4]) in bits = 0.5 lg 2 + 0.5 lg (2/3). *)
  let p = Pmf.create [| 0.5; 0.5 |] and q = Pmf.create [| 0.25; 0.75 |] in
  check_float_loose "kl" 0.2075 (Distance.kl p q)

let test_kl_infinite () =
  let p = Pmf.point_mass ~n:2 0 and q = Pmf.point_mass ~n:2 1 in
  Alcotest.(check bool) "kl infinite" true (Distance.kl p q = infinity)

let random_pmf rng size =
  let w = Array.init size (fun _ -> 0.01 +. Dut_prng.Rng.unit_float rng) in
  let s = Array.fold_left ( +. ) 0. w in
  Pmf.create (Array.map (fun x -> x /. s) w)

let test_kl_nonneg_random () =
  let rng = Dut_prng.Rng.create 50 in
  for _ = 1 to 50 do
    let d = Distance.kl (random_pmf rng 6) (random_pmf rng 6) in
    if d < -1e-12 then Alcotest.failf "negative KL: %f" d
  done

let test_chi2_known () =
  let p = Pmf.create [| 0.5; 0.5 |] and q = Pmf.create [| 0.25; 0.75 |] in
  (* (0.25)^2/0.25 + (0.25)^2/0.75 = 1/3. *)
  check_float_loose "chi2" 0.333333 (Distance.chi2 p q)

let test_hellinger_range () =
  let p = Pmf.point_mass ~n:2 0 and q = Pmf.point_mass ~n:2 1 in
  check_float "max hellinger" 1. (Distance.hellinger p q);
  check_float "self hellinger" 0. (Distance.hellinger p p)

let test_hellinger_vs_tv () =
  (* H^2 <= TV <= sqrt(2) H, the classical comparison. *)
  let rng = Dut_prng.Rng.create 51 in
  for _ = 1 to 50 do
    let p = random_pmf rng 5 and q = random_pmf rng 5 in
    let h = Distance.hellinger p q and tv = Distance.tv p q in
    if (h *. h) > tv +. 1e-9 then Alcotest.fail "H^2 > TV";
    if tv > (sqrt 2. *. h) +. 1e-9 then Alcotest.fail "TV > sqrt2 H"
  done

let test_kl_bernoulli_complement () =
  check_float "kl(a,b) = kl(1-a,1-b)"
    (Distance.kl_bernoulli 0.3 0.6)
    (Distance.kl_bernoulli 0.7 0.4)

let test_chi2_bernoulli_dominates_kl () =
  let rng = Dut_prng.Rng.create 52 in
  for _ = 1 to 200 do
    let a = 0.01 +. (0.98 *. Dut_prng.Rng.unit_float rng) in
    let b = 0.01 +. (0.98 *. Dut_prng.Rng.unit_float rng) in
    let kl = Distance.kl_bernoulli a b in
    let bound = Distance.chi2_bernoulli_bound a b in
    if kl > bound +. 1e-9 then
      Alcotest.failf "Fact 6.3 violated at a=%f b=%f: %f > %f" a b kl bound
  done

(* -- Sampler ---------------------------------------------------------- *)

let test_sampler_support () =
  let rng = Dut_prng.Rng.create 53 in
  let s = Sampler.of_pmf (Pmf.create [| 0.5; 0.; 0.5 |]) in
  for _ = 1 to 1000 do
    let v = Sampler.draw s rng in
    if v = 1 then Alcotest.fail "drew a zero-mass element";
    if v < 0 || v > 2 then Alcotest.failf "out of support: %d" v
  done

let test_sampler_frequencies () =
  let rng = Dut_prng.Rng.create 54 in
  let p = Pmf.create [| 0.1; 0.2; 0.3; 0.4 |] in
  let s = Sampler.of_pmf p in
  let counts = Array.make 4 0 in
  let trials = 100000 in
  for _ = 1 to trials do
    let v = Sampler.draw s rng in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let freq = float_of_int c /. float_of_int trials in
      if Float.abs (freq -. Pmf.prob p i) > 0.01 then
        Alcotest.failf "freq %d: %f vs %f" i freq (Pmf.prob p i))
    counts

let test_sampler_point_mass () =
  let rng = Dut_prng.Rng.create 55 in
  let s = Sampler.of_pmf (Pmf.point_mass ~n:10 7) in
  for _ = 1 to 100 do
    Alcotest.(check int) "always the point" 7 (Sampler.draw s rng)
  done

let test_sampler_draw_many () =
  let rng = Dut_prng.Rng.create 56 in
  let s = Sampler.of_pmf (Pmf.uniform 4) in
  Alcotest.(check int) "count" 17 (Array.length (Sampler.draw_many s rng 17))

let test_sampler_pmf_accessor () =
  let s = Sampler.of_pmf (Pmf.uniform 5) in
  check_float "pmf roundtrip" 0.2 (Pmf.prob (Sampler.pmf s) 0)

(* -- Empirical -------------------------------------------------------- *)

let test_empirical_counts () =
  let h = Empirical.of_samples ~n:4 [| 0; 1; 1; 3; 3; 3 |] in
  Alcotest.(check int) "count 0" 1 (Empirical.count h 0);
  Alcotest.(check int) "count 1" 2 (Empirical.count h 1);
  Alcotest.(check int) "count 2" 0 (Empirical.count h 2);
  Alcotest.(check int) "count 3" 3 (Empirical.count h 3);
  Alcotest.(check int) "total" 6 (Empirical.total h)

let test_empirical_statistics () =
  let h = Empirical.of_samples ~n:4 [| 0; 1; 1; 3; 3; 3 |] in
  Alcotest.(check int) "distinct" 3 (Empirical.distinct h);
  Alcotest.(check int) "singletons" 1 (Empirical.singletons h);
  (* C(2,2) + C(3,2) = 1 + 3. *)
  Alcotest.(check int) "collision pairs" 4 (Empirical.collision_pairs h)

let test_empirical_to_pmf () =
  let h = Empirical.of_samples ~n:2 [| 0; 0; 1; 0 |] in
  check_float "pmf 0" 0.75 (Pmf.prob (Empirical.to_pmf h) 0)

let test_empirical_errors () =
  let h = Empirical.create 3 in
  Alcotest.check_raises "range" (Invalid_argument "Empirical.add: sample out of range")
    (fun () -> Empirical.add h 3);
  Alcotest.check_raises "empty pmf" (Invalid_argument "Empirical.to_pmf: no samples")
    (fun () -> ignore (Empirical.to_pmf h))

(* -- Paninski --------------------------------------------------------- *)

let test_paninski_pmf_sums_to_one () =
  let rng = Dut_prng.Rng.create 57 in
  for ell = 0 to 4 do
    let d = Paninski.random ~ell ~eps:0.3 rng in
    let p = Paninski.pmf d in
    let total = ref 0. in
    for i = 0 to Pmf.size p - 1 do
      total := !total +. Pmf.prob p i
    done;
    check_float "sums to 1" 1. !total
  done

let test_paninski_exactly_eps_far () =
  let rng = Dut_prng.Rng.create 58 in
  List.iter
    (fun eps ->
      let d = Paninski.random ~ell:3 ~eps rng in
      check_float "l1 distance is eps" eps
        (Distance.distance_to_uniformity (Paninski.pmf d)))
    [ 0.1; 0.25; 0.5; 0.9 ]

let test_paninski_encode_decode () =
  for i = 0 to 15 do
    let x, s = Paninski.decode i in
    Alcotest.(check int) "roundtrip" i (Paninski.encode ~x ~s)
  done

let test_paninski_matched_pairs () =
  (* nu_z(x,+1) + nu_z(x,-1) = 2/n: perturbation moves mass only within a
     matched pair. *)
  let rng = Dut_prng.Rng.create 59 in
  let d = Paninski.random ~ell:3 ~eps:0.4 rng in
  let n = Paninski.n d in
  for x = 0 to Paninski.m d - 1 do
    check_float "pair mass conserved"
      (2. /. float_of_int n)
      (Paninski.prob d (Paninski.encode ~x ~s:1)
      +. Paninski.prob d (Paninski.encode ~x ~s:(-1)))
  done

let test_paninski_draw_frequencies () =
  let rng = Dut_prng.Rng.create 60 in
  let d = Paninski.all_plus ~ell:2 ~eps:0.5 in
  let n = Paninski.n d in
  let counts = Array.make n 0 in
  let trials = 200000 in
  for _ = 1 to trials do
    let v = Paninski.draw d rng in
    counts.(v) <- counts.(v) + 1
  done;
  for i = 0 to n - 1 do
    let freq = float_of_int counts.(i) /. float_of_int trials in
    if Float.abs (freq -. Paninski.prob d i) > 0.01 then
      Alcotest.failf "draw frequency off at %d: %f vs %f" i freq (Paninski.prob d i)
  done

let test_paninski_mixture_uniform () =
  List.iter
    (fun ell ->
      let mix = Paninski.mixture_exact ~ell ~eps:0.7 in
      Alcotest.(check bool) "mixture is uniform" true
        (Distance.distance_to_uniformity mix < 1e-12))
    [ 0; 1; 2; 3 ]

let test_paninski_tuple_prob_product () =
  let rng = Dut_prng.Rng.create 61 in
  let d = Paninski.random ~ell:2 ~eps:0.3 rng in
  let expected = Paninski.prob d 1 *. Paninski.prob d 5 *. Paninski.prob d 2 in
  check_float "product law" expected (Paninski.tuple_prob d [| 1; 5; 2 |])

let test_paninski_claim31_exhaustive () =
  let rng = Dut_prng.Rng.create 62 in
  let d = Paninski.random ~ell:1 ~eps:0.45 rng in
  let n = Paninski.n d in
  for t0 = 0 to n - 1 do
    for t1 = 0 to n - 1 do
      let tuple = [| t0; t1 |] in
      check_float "claim 3.1"
        (Paninski.tuple_prob d tuple)
        (Paninski.tuple_prob_fourier d tuple)
    done
  done

let test_paninski_collision_prob () =
  (* ||nu_z||_2^2 = (1+eps^2)/n for every z. *)
  let rng = Dut_prng.Rng.create 63 in
  let d = Paninski.random ~ell:3 ~eps:0.3 rng in
  check_float "collision prob"
    ((1. +. (0.3 *. 0.3)) /. float_of_int (Paninski.n d))
    (Pmf.collision_prob (Paninski.pmf d))

let test_paninski_create_errors () =
  Alcotest.check_raises "z length"
    (Invalid_argument "Paninski.create: z must have length 2^ell") (fun () ->
      ignore (Paninski.create ~ell:2 ~eps:0.3 ~z:[| 1; -1 |]));
  Alcotest.check_raises "eps" (Invalid_argument "Paninski.create: eps out of [0,1)")
    (fun () -> ignore (Paninski.create ~ell:1 ~eps:1.0 ~z:[| 1; 1 |]));
  Alcotest.check_raises "z values"
    (Invalid_argument "Paninski.create: z entries must be +-1") (fun () ->
      ignore (Paninski.create ~ell:1 ~eps:0.3 ~z:[| 1; 0 |]))

(* -- qcheck ----------------------------------------------------------- *)

let pmf_pair_gen =
  QCheck.make
    QCheck.Gen.(
      let* n = int_range 2 8 in
      let mk =
        let* ws = list_size (return n) (float_range 0.01 1.) in
        let s = List.fold_left ( +. ) 0. ws in
        return (Pmf.create (Array.of_list (List.map (fun w -> w /. s) ws)))
      in
      pair mk mk)

let prop_pinsker =
  QCheck.Test.make ~name:"Pinsker: TV <= sqrt(ln2 KL / 2)" ~count:200
    pmf_pair_gen (fun (p, q) ->
      let kl = Distance.kl p q in
      kl = infinity || Distance.tv p q <= sqrt (log 2. *. kl /. 2.) +. 1e-9)

let prop_l1_symmetric =
  QCheck.Test.make ~name:"l1 is symmetric" ~count:200 pmf_pair_gen
    (fun (p, q) -> Float.abs (Distance.l1 p q -. Distance.l1 q p) < 1e-12)

let prop_claim31 =
  QCheck.Test.make ~name:"Claim 3.1 on random tuples" ~count:100
    QCheck.(pair small_int (list_of_size (Gen.int_range 1 4) (int_bound 7)))
    (fun (seed, tuple) ->
      let ell = 1 in
      let n = 1 lsl (ell + 1) in
      let tuple = Array.of_list (List.map (fun t -> t mod n) tuple) in
      let rng = Dut_prng.Rng.create seed in
      let d = Paninski.random ~ell ~eps:0.35 rng in
      Float.abs
        (Paninski.tuple_prob d tuple -. Paninski.tuple_prob_fourier d tuple)
      < 1e-12)

let () =
  Alcotest.run "dut_dist"
    [
      ( "pmf",
        [
          Alcotest.test_case "create" `Quick test_pmf_create_normalizes;
          Alcotest.test_case "reject negative" `Quick test_pmf_create_rejects_negative;
          Alcotest.test_case "reject empty" `Quick test_pmf_create_rejects_empty;
          Alcotest.test_case "reject bad sum" `Quick test_pmf_create_rejects_bad_sum;
          Alcotest.test_case "strict" `Quick test_pmf_strict;
          Alcotest.test_case "uniform" `Quick test_pmf_uniform;
          Alcotest.test_case "point mass" `Quick test_pmf_point_mass;
          Alcotest.test_case "prob range" `Quick test_pmf_prob_out_of_range;
          Alcotest.test_case "mix" `Quick test_pmf_mix;
          Alcotest.test_case "product" `Quick test_pmf_product;
          Alcotest.test_case "collision prob" `Quick test_pmf_collision_prob;
          Alcotest.test_case "map support" `Quick test_pmf_map_support;
        ] );
      ( "distance",
        [
          Alcotest.test_case "l1 known" `Quick test_l1_known;
          Alcotest.test_case "self zero" `Quick test_l1_self_zero;
          Alcotest.test_case "size mismatch" `Quick test_size_mismatch;
          Alcotest.test_case "kl known" `Quick test_kl_known;
          Alcotest.test_case "kl infinite" `Quick test_kl_infinite;
          Alcotest.test_case "kl non-negative" `Quick test_kl_nonneg_random;
          Alcotest.test_case "chi2 known" `Quick test_chi2_known;
          Alcotest.test_case "hellinger range" `Quick test_hellinger_range;
          Alcotest.test_case "hellinger vs tv" `Quick test_hellinger_vs_tv;
          Alcotest.test_case "kl bernoulli complement" `Quick test_kl_bernoulli_complement;
          Alcotest.test_case "Fact 6.3" `Quick test_chi2_bernoulli_dominates_kl;
        ] );
      ( "sampler",
        [
          Alcotest.test_case "support" `Quick test_sampler_support;
          Alcotest.test_case "frequencies" `Quick test_sampler_frequencies;
          Alcotest.test_case "point mass" `Quick test_sampler_point_mass;
          Alcotest.test_case "draw many" `Quick test_sampler_draw_many;
          Alcotest.test_case "pmf accessor" `Quick test_sampler_pmf_accessor;
        ] );
      ( "empirical",
        [
          Alcotest.test_case "counts" `Quick test_empirical_counts;
          Alcotest.test_case "statistics" `Quick test_empirical_statistics;
          Alcotest.test_case "to pmf" `Quick test_empirical_to_pmf;
          Alcotest.test_case "errors" `Quick test_empirical_errors;
        ] );
      ( "paninski",
        [
          Alcotest.test_case "pmf sums to 1" `Quick test_paninski_pmf_sums_to_one;
          Alcotest.test_case "exactly eps-far" `Quick test_paninski_exactly_eps_far;
          Alcotest.test_case "encode/decode" `Quick test_paninski_encode_decode;
          Alcotest.test_case "matched pairs" `Quick test_paninski_matched_pairs;
          Alcotest.test_case "draw frequencies" `Quick test_paninski_draw_frequencies;
          Alcotest.test_case "mixture uniform" `Quick test_paninski_mixture_uniform;
          Alcotest.test_case "tuple product" `Quick test_paninski_tuple_prob_product;
          Alcotest.test_case "Claim 3.1 exhaustive" `Quick test_paninski_claim31_exhaustive;
          Alcotest.test_case "collision prob" `Quick test_paninski_collision_prob;
          Alcotest.test_case "create errors" `Quick test_paninski_create_errors;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_pinsker; prop_l1_symmetric; prop_claim31 ] );
    ]
