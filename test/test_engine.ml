(* Tests for Dut_engine: pool lifecycle, the index-ordered seed-splitting
   determinism contract of the parallel combinators, and jobs-invariance
   of the Monte-Carlo and runner paths built on them. *)

open Dut_engine

(* -- Pool -------------------------------------------------------------- *)

let test_pool_runs_every_task () =
  let p = Pool.create ~jobs:4 in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) @@ fun () ->
  let hits = Array.make 1000 0 in
  Pool.run p ~tasks:1000 (fun i -> hits.(i) <- hits.(i) + 1);
  Alcotest.(check (array int)) "each index exactly once" (Array.make 1000 1) hits

let test_pool_create_teardown_no_leak () =
  (* OCaml caps live domains at a small fixed limit (128 in 5.1): if
     shutdown failed to join its workers, repeatedly creating pools
     would exhaust the limit and Domain.spawn would raise. *)
  for _ = 1 to 100 do
    let p = Pool.create ~jobs:3 in
    let total = Atomic.make 0 in
    Pool.run p ~tasks:64 (fun i -> ignore (Atomic.fetch_and_add total i));
    Alcotest.(check int) "sum of indices" (64 * 63 / 2) (Atomic.get total);
    Pool.shutdown p
  done

let test_pool_shutdown_idempotent_and_blocks_run () =
  let p = Pool.create ~jobs:2 in
  Pool.shutdown p;
  Pool.shutdown p;
  Alcotest.check_raises "run after shutdown"
    (Invalid_argument "Pool.run: pool is shut down") (fun () ->
      Pool.run p ~tasks:1 (fun _ -> ()))

let test_pool_create_bounds () =
  Alcotest.check_raises "jobs < 1" (Invalid_argument "Pool.create: jobs < 1")
    (fun () -> ignore (Pool.create ~jobs:0));
  Alcotest.check_raises "jobs > domain limit"
    (Invalid_argument
       (Printf.sprintf "Pool.create: jobs > %d (OCaml's domain limit)"
          Pool.max_jobs)) (fun () ->
      ignore (Pool.create ~jobs:(Pool.max_jobs + 1)))

let test_pool_propagates_exception () =
  let p = Pool.create ~jobs:3 in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) @@ fun () ->
  Alcotest.check_raises "first failure re-raised" (Failure "task 7") (fun () ->
      Pool.run p ~tasks:16 (fun i -> if i = 7 then failwith "task 7"));
  (* The pool survives a failed job. *)
  let count = Atomic.make 0 in
  Pool.run p ~tasks:8 (fun _ -> ignore (Atomic.fetch_and_add count 1));
  Alcotest.(check int) "pool usable after failure" 8 (Atomic.get count)

let test_pool_nested_run_is_inline () =
  let p = Pool.create ~jobs:2 in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) @@ fun () ->
  let inner_flags = Array.make 4 false in
  Pool.run p ~tasks:4 (fun i ->
      Alcotest.(check bool) "in_task inside a task" true (Pool.in_task ());
      (* A nested submission to the same pool must not deadlock. *)
      Pool.run p ~tasks:2 (fun _ -> inner_flags.(i) <- true));
  Alcotest.(check (array bool)) "nested tasks ran" (Array.make 4 true) inner_flags;
  Alcotest.(check bool) "flag cleared outside" false (Pool.in_task ())

(* -- Parallel: determinism contract ------------------------------------ *)

let test_map_matches_array_map () =
  let a = Array.init 1001 (fun i -> i - 500) in
  let f x = (x * 7919) mod 65537 in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d" jobs)
        (Array.map f a)
        (Parallel.map ~jobs f a))
    [ 1; 2; 3; 4; 8 ]

let test_init_equals_sequential_split_loop () =
  (* The engine's contract: init ~n f == the plain sequential loop that
     splits one child per element off the root, in index order. *)
  let n = 257 in
  let f r i = Int64.add (Dut_prng.Rng.bits64 r) (Int64.of_int i) in
  let expected =
    let rng = Dut_prng.Rng.create 7 in
    Array.init n (fun i -> f (Dut_prng.Rng.split rng) i)
  in
  List.iter
    (fun jobs ->
      let got = Parallel.init ~jobs ~rng:(Dut_prng.Rng.create 7) ~n f in
      Alcotest.(check (array int64)) (Printf.sprintf "jobs=%d" jobs) expected got)
    [ 1; 2; 4; 7 ]

let test_init_reduce_order () =
  (* A non-commutative reduction exposes any out-of-order fold. *)
  let reduce acc x = acc ^ "," ^ string_of_int x in
  let run jobs =
    Parallel.init_reduce ~jobs ~rng:(Dut_prng.Rng.create 3) ~n:100
      ~f:(fun _ i -> i)
      ~init:"" ~reduce
  in
  let base = run 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check string) (Printf.sprintf "jobs=%d" jobs) base (run jobs))
    [ 2; 3; 4 ]

let test_count_jobs_invariant () =
  let run jobs =
    Parallel.count ~jobs ~rng:(Dut_prng.Rng.create 11) ~n:999 (fun r _ ->
        Dut_prng.Rng.unit_float r < 0.37)
  in
  let base = run 1 in
  Alcotest.(check bool) "plausible count" true (base > 200 && base < 550);
  List.iter
    (fun jobs ->
      Alcotest.(check int) (Printf.sprintf "jobs=%d" jobs) base (run jobs))
    [ 2; 4 ]

(* -- Montecarlo on the engine ------------------------------------------ *)

let check_ci = Alcotest.(check (float 0.))

let test_estimate_prob_jobs_invariant () =
  let est jobs =
    Dut_stats.Montecarlo.estimate_prob ~jobs ~trials:501
      (Dut_prng.Rng.create 42) (fun r -> Dut_prng.Rng.unit_float r < 0.3)
  in
  let base = est 1 in
  List.iter
    (fun jobs ->
      let ci = est jobs in
      check_ci "estimate" base.Dut_stats.Binomial_ci.estimate ci.estimate;
      check_ci "lower" base.lower ci.lower;
      check_ci "upper" base.upper ci.upper)
    [ 2; 4 ]

let test_estimate_prob_matches_legacy_sequential () =
  (* The seed repo's implementation: split-per-trial in a plain loop.
     The engine must reproduce its counts exactly. *)
  let event r = Dut_prng.Rng.unit_float r < 0.3 in
  let legacy_successes =
    let rng = Dut_prng.Rng.create 42 in
    let s = ref 0 in
    for _ = 1 to 501 do
      if event (Dut_prng.Rng.split rng) then incr s
    done;
    !s
  in
  let ci =
    Dut_stats.Montecarlo.estimate_prob ~jobs:4 ~trials:501
      (Dut_prng.Rng.create 42) event
  in
  let legacy =
    Dut_stats.Binomial_ci.wilson95 ~successes:legacy_successes ~trials:501
  in
  check_ci "same estimate as the legacy loop" legacy.estimate ci.estimate

(* -- Runner: byte-identical output across jobs counts ------------------- *)

let run_all_to_string cfg =
  let path = Filename.temp_file "dut_engine_runall" ".csv" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let oc = open_out path in
  ignore
    (Dut_experiments.Runner.run_all_to_channel ~csv:true ~timings:false cfg oc);
  close_out oc;
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_run_all_byte_identical_across_jobs () =
  (* A trimmed fast-profile configuration: the full fast profile takes
     minutes per sweep, and CI diffs it separately; the determinism
     argument is jobs-count invariance, which trial counts don't affect. *)
  let cfg jobs =
    {
      (Dut_experiments.Config.make ~trials:6 ~jobs Dut_experiments.Config.Fast)
      with
      calibration_trials = 30;
    }
  in
  let j1 = run_all_to_string (cfg 1) in
  let j4 = run_all_to_string (cfg 4) in
  Alcotest.(check bool) "output is nonempty" true (String.length j1 > 2000);
  Alcotest.(check string) "jobs=1 == jobs=4" j1 j4

(* -- DUT_JOBS parsing ---------------------------------------------------- *)

let with_env name value f =
  let old = Sys.getenv_opt name in
  Unix.putenv name value;
  Fun.protect
    ~finally:(fun () -> Unix.putenv name (Option.value old ~default:""))
    f

let test_env_jobs_parsing () =
  (* Valid values (after trimming) pass through; malformed or
     non-positive ones fall back to 1 — with a one-shot stderr warning,
     never an exception (the variable is read before the CLI can report
     errors nicely). *)
  List.iter
    (fun (v, expect) ->
      with_env "DUT_JOBS" v (fun () ->
          Alcotest.(check int)
            (Printf.sprintf "DUT_JOBS=%S" v)
            expect (Parallel.env_jobs ())))
    [
      ("4", 4);
      (" 8 ", 8);
      ("1", 1);
      ("0", 1);
      ("-3", 1);
      ("two", 1);
      ("3.5", 1);
      ("", 1);
    ]

(* -- Chunking ----------------------------------------------------------- *)

let test_chunks_errors () =
  Alcotest.check_raises "n < 0" (Invalid_argument "Parallel.chunks: n < 0")
    (fun () -> ignore (Parallel.chunks ~n:(-1) ~chunk:4));
  Alcotest.check_raises "chunk < 1"
    (Invalid_argument "Parallel.chunks: chunk < 1") (fun () ->
      ignore (Parallel.chunks ~n:4 ~chunk:0))

let prop_chunks_partition =
  QCheck.Test.make ~name:"chunking neither drops nor duplicates indices"
    ~count:500
    QCheck.(pair (int_range 0 5000) (int_range 1 257))
    (fun (n, chunk) ->
      let covered =
        Parallel.chunks ~n ~chunk |> Array.to_list
        |> List.concat_map (fun (lo, hi) -> List.init (hi - lo) (fun i -> lo + i))
      in
      covered = List.init n (fun i -> i))

let prop_map_any_jobs =
  QCheck.Test.make ~name:"map equals Array.map for any jobs count" ~count:50
    QCheck.(pair (int_range 1 8) (list_of_size Gen.(int_range 0 200) int))
    (fun (jobs, xs) ->
      let a = Array.of_list xs in
      let f x = (2 * x) + 1 in
      Parallel.map ~jobs f a = Array.map f a)

let () =
  Alcotest.run "dut_engine"
    [
      ( "pool",
        [
          Alcotest.test_case "runs every task" `Quick test_pool_runs_every_task;
          Alcotest.test_case "create/teardown joins domains" `Quick
            test_pool_create_teardown_no_leak;
          Alcotest.test_case "shutdown idempotent, run blocked" `Quick
            test_pool_shutdown_idempotent_and_blocks_run;
          Alcotest.test_case "create bounds" `Quick test_pool_create_bounds;
          Alcotest.test_case "exception propagation" `Quick
            test_pool_propagates_exception;
          Alcotest.test_case "nested run is inline" `Quick
            test_pool_nested_run_is_inline;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "map = Array.map" `Quick test_map_matches_array_map;
          Alcotest.test_case "init = sequential split loop" `Quick
            test_init_equals_sequential_split_loop;
          Alcotest.test_case "init_reduce folds in index order" `Quick
            test_init_reduce_order;
          Alcotest.test_case "count jobs-invariant" `Quick
            test_count_jobs_invariant;
          Alcotest.test_case "chunks errors" `Quick test_chunks_errors;
          Alcotest.test_case "DUT_JOBS parsing" `Quick test_env_jobs_parsing;
        ] );
      ( "montecarlo",
        [
          Alcotest.test_case "estimate_prob jobs-invariant" `Quick
            test_estimate_prob_jobs_invariant;
          Alcotest.test_case "estimate_prob = legacy sequential" `Quick
            test_estimate_prob_matches_legacy_sequential;
        ] );
      ( "runner",
        [
          Alcotest.test_case "run_all byte-identical across jobs" `Slow
            test_run_all_byte_identical_across_jobs;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_chunks_partition; prop_map_any_jobs ] );
    ]
