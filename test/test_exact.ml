(* Tests for Dut_core.Exact: the exhaustive small-universe verification
   engine behind the F1/T8/T11 experiments. Everything here is an exact
   (float-rounding-level) identity or inequality from the paper. *)

let check_float = Alcotest.(check (float 1e-10))

let test_domain_size () =
  Alcotest.(check int) "ell=1 q=2" 16 (Dut_core.Exact.domain_size ~ell:1 ~q:2);
  Alcotest.(check int) "ell=2 q=3" 512 (Dut_core.Exact.domain_size ~ell:2 ~q:3);
  Alcotest.check_raises "too big"
    (Invalid_argument "Exact.domain_size: need ell >= 0, q >= 1, (ell+1)q <= 24")
    (fun () -> ignore (Dut_core.Exact.domain_size ~ell:4 ~q:6))

let test_constant_g () =
  let g1 = Dut_core.Exact.constant ~ell:2 ~q:2 true in
  check_float "mu of constant 1" 1. (Dut_core.Exact.mu g1);
  check_float "var of constant" 0. (Dut_core.Exact.variance g1);
  let g0 = Dut_core.Exact.constant ~ell:2 ~q:2 false in
  check_float "mu of constant 0" 0. (Dut_core.Exact.mu g0)

let test_nu_of_constant_is_one () =
  let rng = Dut_prng.Rng.create 140 in
  let g = Dut_core.Exact.constant ~ell:2 ~q:3 true in
  let d = Dut_dist.Paninski.random ~ell:2 ~eps:0.4 rng in
  check_float "total probability" 1. (Dut_core.Exact.nu g d)

let test_mu_of_collision_acceptor () =
  (* For q = 2 over n elements, P[no collision] = 1 - 1/n. *)
  let g = Dut_core.Exact.collision_acceptor ~ell:2 ~q:2 ~cutoff:1 in
  check_float "mu = 1 - 1/8" (1. -. (1. /. 8.)) (Dut_core.Exact.mu g)

let test_nu_collision_acceptor_exact () =
  (* Under nu_z, P[no collision among 2 samples] = 1 - ||nu_z||_2^2
     = 1 - (1+eps^2)/n, independent of z. *)
  let rng = Dut_prng.Rng.create 141 in
  let eps = 0.35 in
  let g = Dut_core.Exact.collision_acceptor ~ell:2 ~q:2 ~cutoff:1 in
  for _ = 1 to 5 do
    let d = Dut_dist.Paninski.random ~ell:2 ~eps rng in
    check_float "1 - (1+eps^2)/n"
      (1. -. ((1. +. (eps *. eps)) /. 8.))
      (Dut_core.Exact.nu g d)
  done

let test_lemma41_fourier_identity () =
  (* diff_fourier must equal nu - mu for arbitrary G and z: the
     executable Lemma 4.1. *)
  let rng = Dut_prng.Rng.create 142 in
  List.iter
    (fun (ell, q) ->
      for _ = 1 to 5 do
        let g =
          Dut_core.Exact.random_biased ~ell ~q ~accept_prob:0.5 rng
        in
        let d = Dut_dist.Paninski.random ~ell ~eps:0.3 rng in
        let direct = Dut_core.Exact.nu g d -. Dut_core.Exact.mu g in
        check_float "Lemma 4.1" direct (Dut_core.Exact.diff_fourier g d)
      done)
    [ (1, 1); (1, 2); (1, 3); (2, 2); (2, 3); (3, 2) ]

let test_iter_all_z_count () =
  let count = ref 0 in
  Dut_core.Exact.iter_all_z ~ell:2 (fun z ->
      Alcotest.(check int) "z length" 4 (Array.length z);
      incr count);
  Alcotest.(check int) "2^(2^ell) vectors" 16 !count

let test_mean_diff_zero_for_constant () =
  let g = Dut_core.Exact.constant ~ell:1 ~q:2 true in
  Alcotest.(check bool) "no drift for constants" true
    (Float.abs (Dut_core.Exact.mean_diff_over_z g ~eps:0.4) < 1e-12)

let test_mean_sq_diff_nonneg () =
  let rng = Dut_prng.Rng.create 143 in
  let g = Dut_core.Exact.random_biased ~ell:2 ~q:2 ~accept_prob:0.7 rng in
  Alcotest.(check bool) "non-negative" true
    (Dut_core.Exact.mean_sq_diff_over_z g ~eps:0.3 >= 0.)

let test_collision_acceptor_drift_is_negative () =
  (* The collision acceptor accepts less often under nu_z (more
     collisions), so E_z[nu(G)] - mu(G) < 0. *)
  let g = Dut_core.Exact.collision_acceptor ~ell:2 ~q:3 ~cutoff:1 in
  Alcotest.(check bool) "drift negative" true
    (Dut_core.Exact.mean_diff_over_z g ~eps:0.3 < 0.)

let test_mean_diff_equals_exact_formula_q2 () =
  (* For the q = 2 collision acceptor the drift has a closed form:
     E_z[nu(G)] - mu(G) = -(eps^2)/n (collision probability inflation). *)
  let eps = 0.3 in
  let g = Dut_core.Exact.collision_acceptor ~ell:2 ~q:2 ~cutoff:1 in
  check_float "closed form drift"
    (-.(eps *. eps) /. 8.)
    (Dut_core.Exact.mean_diff_over_z g ~eps)

let test_lemma_ratios_bounded () =
  (* Lemma 5.1 ratios and the slack form of Lemma 4.2 stay <= 1 whenever
     the side conditions hold, over a spread of G shapes including the
     extremal s-detector (which breaks Lemma 4.2's literal constant at
     q = 1 — the documented reproduction finding). *)
  let rng = Dut_prng.Rng.create 144 in
  List.iter
    (fun (ell, q, eps) ->
      let n = 1 lsl (ell + 1) in
      let gs =
        [
          Dut_core.Exact.collision_acceptor ~ell ~q ~cutoff:1;
          Dut_core.Exact.s_detector ~ell ~q;
          Dut_core.Exact.random_biased ~ell ~q ~accept_prob:0.5 rng;
          Dut_core.Exact.random_biased ~ell ~q ~accept_prob:0.95 rng;
        ]
      in
      List.iter
        (fun g ->
          if Dut_core.Bounds.lemma51_applies ~q ~n ~eps then begin
            let r = Dut_core.Exact.lemma51_ratio g ~eps in
            if r > 1. then Alcotest.failf "Lemma 5.1 ratio %f > 1" r
          end;
          if Dut_core.Bounds.lemma42_applies ~q ~n ~eps then begin
            let r = Dut_core.Exact.lemma42_slack_ratio g ~eps in
            if r > 1. then Alcotest.failf "Lemma 4.2 slack ratio %f > 1" r
          end)
        gs)
    [ (1, 1, 0.1); (1, 2, 0.1); (2, 2, 0.1); (2, 2, 0.3); (2, 3, 0.1); (2, 3, 0.3) ]

let test_s_detector_documents_constant_slip () =
  (* The recorded finding: at q = 1 the s-detector's exact second moment
     is eps^2/(2n) = 2x the literal Lemma 4.2 RHS, and within the slack
     form. *)
  let g = Dut_core.Exact.s_detector ~ell:2 ~q:1 in
  let eps = 0.1 in
  check_float "exact second moment"
    (eps *. eps /. 16.)
    (Dut_core.Exact.mean_sq_diff_over_z g ~eps);
  let literal = Dut_core.Exact.lemma42_ratio g ~eps in
  Alcotest.(check bool) "literal constant exceeded" true (literal > 1.);
  Alcotest.(check bool) "but by at most 2" true (literal <= 2. +. 1e-9);
  Alcotest.(check bool) "slack form holds" true
    (Dut_core.Exact.lemma42_slack_ratio g ~eps <= 1.)

let test_lemma43_ratio_bounded_in_range () =
  let rng = Dut_prng.Rng.create 145 in
  (* Lemma 4.3 with m = 1 in a regime where its side condition holds. *)
  let ell = 2 and q = 1 and eps = 0.05 in
  let n = 1 lsl (ell + 1) in
  Alcotest.(check bool) "side condition" true
    (Dut_core.Bounds.lemma43_applies ~q ~n ~eps ~m:1);
  let g = Dut_core.Exact.random_biased ~ell ~q ~accept_prob:0.97 rng in
  let r = Dut_core.Exact.lemma43_ratio g ~eps ~m:1 in
  Alcotest.(check bool) "ratio <= 1" true (r <= 1.)

let test_s_detector_mean_drift_zero () =
  (* E_z[nu_z(G)] = mu(G) for the s-detector: its level-1 coefficients
     see E[z(x)] = 0. The second moment is what survives (Lemma 4.2's
     regime). *)
  let g = Dut_core.Exact.s_detector ~ell:2 ~q:2 in
  Alcotest.(check bool) "mean drift zero" true
    (Float.abs (Dut_core.Exact.mean_diff_over_z g ~eps:0.4) < 1e-12);
  Alcotest.(check bool) "second moment positive" true
    (Dut_core.Exact.mean_sq_diff_over_z g ~eps:0.4 > 0.)

let test_lemma44_constants () =
  (* The s-detector at q=1 sits exactly on Lemma 4.4's first term, so
     min C = 0; ratios at C = 4 are <= 1 across the family. *)
  let rng = Dut_prng.Rng.create 147 in
  let eps = 0.2 in
  let gs =
    [
      Dut_core.Exact.s_detector ~ell:2 ~q:1;
      Dut_core.Exact.collision_acceptor ~ell:2 ~q:3 ~cutoff:1;
      Dut_core.Exact.random_biased ~ell:2 ~q:2 ~accept_prob:0.9 rng;
    ]
  in
  List.iter
    (fun g ->
      let c = Dut_core.Exact.lemma44_min_constant g ~eps ~m:1 in
      if c > 4. then Alcotest.failf "Lemma 4.4 needs C = %f > 4" c;
      let r = Dut_core.Exact.lemma44_ratio g ~eps ~m:1 ~c:4. in
      if r > 1. then Alcotest.failf "Lemma 4.4 ratio %f > 1 at C=4" r)
    gs;
  Alcotest.(check (float 1e-9)) "s-detector needs no C term" 0.
    (Dut_core.Exact.lemma44_min_constant (Dut_core.Exact.s_detector ~ell:2 ~q:1)
       ~eps ~m:1)

let test_collision_pmf_uniform_basics () =
  (* q = 2 on n = 8: P[collision] = 1/n. *)
  let pmf = Dut_core.Exact.collision_pmf_uniform ~ell:2 ~q:2 in
  Alcotest.(check int) "support size" 2 (Array.length pmf);
  check_float "no collision" (7. /. 8.) pmf.(0);
  check_float "collision" (1. /. 8.) pmf.(1);
  (* Distributions sum to 1 for bigger q too. *)
  let pmf4 = Dut_core.Exact.collision_pmf_uniform ~ell:2 ~q:4 in
  check_float "sums to 1" 1. (Array.fold_left ( +. ) 0. pmf4)

let test_collision_pmf_far_mean_shift () =
  (* Mean collisions under far = (1+eps^2) x uniform mean, exactly. *)
  let ell = 2 and q = 4 and eps = 0.3 in
  let mean pmf =
    let acc = ref 0. in
    Array.iteri (fun c p -> acc := !acc +. (float_of_int c *. p)) pmf;
    !acc
  in
  let mu = mean (Dut_core.Exact.collision_pmf_uniform ~ell ~q) in
  let nu = mean (Dut_core.Exact.collision_pmf_far ~ell ~q ~eps) in
  check_float "mean inflation" (mu *. (1. +. (eps *. eps))) nu

let test_exact_test_power_edges () =
  let null = [| 0.9; 0.1 |] and far = [| 0.5; 0.5 |] in
  let a0, r0 = Dut_core.Exact.exact_test_power ~null ~far ~cutoff:0 in
  check_float "cutoff 0 accepts nothing" 0. a0;
  check_float "cutoff 0 rejects everything" 1. r0;
  let a2, r2 = Dut_core.Exact.exact_test_power ~null ~far ~cutoff:2 in
  check_float "cutoff past support accepts all" 1. a2;
  check_float "and rejects nothing" 0. r2;
  let a1, r1 = Dut_core.Exact.exact_test_power ~null ~far ~cutoff:1 in
  check_float "cutoff 1 accept" 0.9 a1;
  check_float "cutoff 1 reject" 0.5 r1

let test_best_cutoff_power () =
  let null = [| 0.9; 0.1 |] and far = [| 0.5; 0.5 |] in
  let cutoff, value = Dut_core.Exact.best_cutoff_power ~null ~far in
  Alcotest.(check int) "picks the separating cutoff" 1 cutoff;
  check_float "value" 0.5 value

let test_power_grows_with_q () =
  let value q =
    snd
      (Dut_core.Exact.best_cutoff_power
         ~null:(Dut_core.Exact.collision_pmf_uniform ~ell:1 ~q)
         ~far:(Dut_core.Exact.collision_pmf_far ~ell:1 ~q ~eps:0.6))
  in
  Alcotest.(check bool) "q=8 beats q=2" true (value 8 > value 2)

let test_message_divergence_constant_zero () =
  (* A constant message carries nothing. *)
  check_float "zero leakage" 0.
    (Dut_core.Exact.message_divergence ~ell:2 ~q:2 ~eps:0.4 ~levels:3 (fun _ -> 1))

let test_message_divergence_monotone_in_refinement () =
  (* Refining the quantization cannot lose information (data
     processing): full statistic >= binary vote. *)
  let ell = 2 and q = 3 and eps = 0.3 in
  let binary tuple = min 1 (Dut_core.Local_stat.collisions tuple) in
  let full tuple = Dut_core.Local_stat.collisions tuple in
  let d_bin =
    Dut_core.Exact.message_divergence ~ell ~q ~eps ~levels:2 binary
  in
  let d_full =
    Dut_core.Exact.message_divergence ~ell ~q ~eps ~levels:4 full
  in
  Alcotest.(check bool) "refinement helps" true (d_full >= d_bin -. 1e-12);
  Alcotest.(check bool) "both positive" true (d_bin > 0.)

let test_message_divergence_matches_bernoulli_kl () =
  (* For the 2-level vote, the divergence must equal the Bernoulli KL of
     the acceptance probabilities, averaged over z. *)
  let ell = 2 and q = 3 and eps = 0.3 in
  let cutoff = 1 in
  let g = Dut_core.Exact.collision_acceptor ~ell ~q ~cutoff in
  let mu = Dut_core.Exact.mu g in
  let expected = ref 0. in
  let count = ref 0 in
  Dut_core.Exact.iter_all_z ~ell (fun z ->
      let d = Dut_dist.Paninski.create ~ell ~eps ~z in
      let nu = Dut_core.Exact.nu g d in
      expected := !expected +. Dut_info.Divergence.kl_bernoulli ~alpha:nu ~beta:mu;
      incr count);
  let expected = !expected /. float_of_int !count in
  let via_messages =
    Dut_core.Exact.message_divergence ~ell ~q ~eps ~levels:2 (fun tuple ->
        if Dut_core.Local_stat.collisions tuple < cutoff then 1 else 0)
  in
  check_float "agrees with Bernoulli KL" expected via_messages

let test_and_rule_value_vs_general () =
  (* The fixed AND rule can never beat the best rule. *)
  let rng = Dut_prng.Rng.create 156 in
  for _ = 1 to 30 do
    let k = 1 + Dut_prng.Rng.int rng 6 in
    let a0 = Dut_prng.Rng.unit_float rng in
    let a_far = Array.init 3 (fun _ -> Dut_prng.Rng.unit_float rng) in
    let general = Dut_core.Rule_search.best_rule_value ~k ~a0 ~a_far in
    let and_only = Dut_core.Rule_search.and_rule_value ~k ~a0 ~a_far in
    if and_only > general +. 1e-9 then
      Alcotest.failf "AND %f beats the best rule %f" and_only general
  done

let test_of_predicate_receives_decoded_tuples () =
  (* Check the tuple decoding by marking one specific tuple. *)
  let target = [| 3; 0 |] in
  let g = Dut_core.Exact.of_predicate ~ell:1 ~q:2 (fun t -> t = target) in
  (* Exactly one of the 16 tuples is accepted. *)
  check_float "single point mass" (1. /. 16.) (Dut_core.Exact.mu g)

let test_random_biased_mu () =
  let rng = Dut_prng.Rng.create 146 in
  let g = Dut_core.Exact.random_biased ~ell:2 ~q:3 ~accept_prob:0.8 rng in
  Alcotest.(check bool) "mu near 0.8" true
    (Float.abs (Dut_core.Exact.mu g -. 0.8) < 0.08)

let () =
  Alcotest.run "dut_exact"
    [
      ( "structure",
        [
          Alcotest.test_case "domain size" `Quick test_domain_size;
          Alcotest.test_case "constants" `Quick test_constant_g;
          Alcotest.test_case "nu of constant" `Quick test_nu_of_constant_is_one;
          Alcotest.test_case "predicate decoding" `Quick test_of_predicate_receives_decoded_tuples;
          Alcotest.test_case "random biased mu" `Quick test_random_biased_mu;
          Alcotest.test_case "iter all z" `Quick test_iter_all_z_count;
        ] );
      ( "identities",
        [
          Alcotest.test_case "mu of collision acceptor" `Quick test_mu_of_collision_acceptor;
          Alcotest.test_case "nu exact" `Quick test_nu_collision_acceptor_exact;
          Alcotest.test_case "Lemma 4.1" `Quick test_lemma41_fourier_identity;
          Alcotest.test_case "constant drift zero" `Quick test_mean_diff_zero_for_constant;
          Alcotest.test_case "s-detector mean drift zero" `Quick
            test_s_detector_mean_drift_zero;
          Alcotest.test_case "q=2 closed-form drift" `Quick test_mean_diff_equals_exact_formula_q2;
        ] );
      ( "message divergence",
        [
          Alcotest.test_case "constant is zero" `Quick test_message_divergence_constant_zero;
          Alcotest.test_case "refinement monotone" `Quick
            test_message_divergence_monotone_in_refinement;
          Alcotest.test_case "matches Bernoulli KL" `Quick
            test_message_divergence_matches_bernoulli_kl;
          Alcotest.test_case "AND below best rule" `Quick test_and_rule_value_vs_general;
        ] );
      ( "exact power",
        [
          Alcotest.test_case "uniform pmf basics" `Quick test_collision_pmf_uniform_basics;
          Alcotest.test_case "far mean shift" `Quick test_collision_pmf_far_mean_shift;
          Alcotest.test_case "test power edges" `Quick test_exact_test_power_edges;
          Alcotest.test_case "best cutoff" `Quick test_best_cutoff_power;
          Alcotest.test_case "power grows with q" `Quick test_power_grows_with_q;
        ] );
      ( "inequalities",
        [
          Alcotest.test_case "mean sq non-negative" `Quick test_mean_sq_diff_nonneg;
          Alcotest.test_case "collision drift negative" `Quick
            test_collision_acceptor_drift_is_negative;
          Alcotest.test_case "Lemmas 5.1/4.2 ratios" `Quick test_lemma_ratios_bounded;
          Alcotest.test_case "s-detector constant slip" `Quick
            test_s_detector_documents_constant_slip;
          Alcotest.test_case "Lemma 4.3 ratio" `Quick test_lemma43_ratio_bounded_in_range;
          Alcotest.test_case "Lemma 4.4 constants" `Quick test_lemma44_constants;
        ] );
    ]
