(* Tests for dut_experiments: the table type, configuration, registry,
   and structural assertions on the cheap (exact) experiments' output. *)

open Dut_experiments

let check_float = Alcotest.(check (float 1e-9))

(* -- Table ------------------------------------------------------------ *)

let sample_table () =
  Table.make ~title:"demo" ~columns:[ "a"; "b"; "c" ]
    ~notes:[ "a note" ]
    [
      [ Table.Int 1; Table.Float 2.5; Table.Str "x" ];
      [ Table.Int 10; Table.Float 0.125; Table.Bool true ];
    ]

let test_table_make_validates_width () =
  Alcotest.check_raises "ragged row"
    (Invalid_argument "Table.make(bad): row 0 has 1 cells, expected 2") (fun () ->
      ignore (Table.make ~title:"bad" ~columns:[ "a"; "b" ] [ [ Table.Int 1 ] ]))

let test_table_render_contains_everything () =
  let s = Table.render (sample_table ()) in
  List.iter
    (fun needle ->
      if not (Astring.String.is_infix ~affix:needle s) then
        Alcotest.failf "render missing %S in:\n%s" needle s)
    [ "demo"; "a  "; "2.5"; "yes"; "a note" ]

let test_table_csv () =
  let csv = Table.to_csv (sample_table ()) in
  Alcotest.(check bool) "has header" true
    (Astring.String.is_infix ~affix:"a,b,c" csv);
  Alcotest.(check bool) "has a row" true
    (Astring.String.is_infix ~affix:"1,2.5,x" csv)

let test_table_get_float () =
  let t = sample_table () in
  check_float "int widened" 1. (Table.get_float t ~row:0 ~col:0);
  check_float "float" 2.5 (Table.get_float t ~row:0 ~col:1);
  Alcotest.check_raises "non-numeric"
    (Invalid_argument "Table.get_float: non-numeric cell") (fun () ->
      ignore (Table.get_float t ~row:0 ~col:2))

let test_table_column_floats () =
  let t = sample_table () in
  Alcotest.(check (array (float 1e-9))) "numeric column" [| 1.; 10. |]
    (Table.column_floats t ~col:0);
  (* Mixed column keeps only numerics. *)
  Alcotest.(check int) "mixed column filtered" 0
    (Array.length (Table.column_floats t ~col:2))

let test_cell_to_string () =
  Alcotest.(check string) "int" "7" (Table.cell_to_string (Table.Int 7));
  Alcotest.(check string) "bool" "no" (Table.cell_to_string (Table.Bool false));
  (* Non-finite floats share the bench JSON's "n/a" spelling, in CSV and
     aligned output alike. *)
  Alcotest.(check string) "nan" "n/a" (Table.cell_to_string (Table.Float Float.nan));
  Alcotest.(check string) "inf" "n/a" (Table.cell_to_string (Table.Float infinity));
  Alcotest.(check string) "-inf" "n/a"
    (Table.cell_to_string (Table.Float neg_infinity));
  Alcotest.(check string) "integral float" "4" (Table.cell_to_string (Table.Float 4.));
  let csv =
    Table.to_csv
      (Table.make ~title:"nonfinite" ~columns:[ "x" ] [ [ Table.Float Float.nan ] ])
  in
  Alcotest.(check bool) "csv renders n/a" true
    (Astring.String.is_infix ~affix:"n/a" csv)

(* -- Config ----------------------------------------------------------- *)

let test_config_profiles () =
  let fast = Config.make Config.Fast in
  let full = Config.make Config.Full in
  Alcotest.(check bool) "full has more trials" true (full.trials > fast.trials);
  Alcotest.(check bool) "fast flag" true (Config.is_fast fast);
  Alcotest.(check bool) "full flag" false (Config.is_fast full);
  Alcotest.(check int) "default seed" 2019 fast.seed

let test_config_profile_strings () =
  Alcotest.(check (option string)) "fast roundtrip" (Some "fast")
    (Option.map Config.profile_to_string (Config.profile_of_string "fast"));
  Alcotest.(check bool) "unknown" true (Config.profile_of_string "???" = None)

let test_config_rng_deterministic () =
  let cfg = Config.make ~seed:99 Config.Fast in
  Alcotest.(check int64) "same stream"
    (Dut_prng.Rng.bits64 (Config.rng cfg))
    (Dut_prng.Rng.bits64 (Config.rng cfg))

(* -- Registry ---------------------------------------------------------- *)

let test_registry_ids_unique () =
  let ids = Registry.ids () in
  Alcotest.(check int) "no duplicates" (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_registry_find () =
  Alcotest.(check bool) "finds T1" true (Registry.find "T1-any-rule" <> None);
  Alcotest.(check bool) "finds F1" true (Registry.find "F1-lemma51" <> None);
  Alcotest.(check bool) "unknown" true (Registry.find "nope" = None)

let test_registry_covers_design_doc () =
  List.iter
    (fun id ->
      if Registry.find id = None then Alcotest.failf "missing experiment %s" id)
    [
      "T1-any-rule"; "T2-and-rule"; "T3-threshold-T"; "T4-learning";
      "T5-centralized"; "T6-rbit"; "T7-async"; "F1-lemma51"; "F2-moments";
      "F3-kkl"; "F4-separation"; "T8-combinatorics"; "T9-and-impossible";
      "T10-single-sample"; "T11-divergence";
    ]

(* -- Cheap experiment runs (exact ones only) ---------------------------- *)

let run_exp id =
  match Registry.find id with
  | None -> Alcotest.failf "experiment %s missing" id
  | Some e -> e.Exp.run (Config.make Config.Fast)

let test_run_f2_moments () =
  match run_exp "F2-moments" with
  | [ moments; xs ] ->
      (* Every ratio column must be <= 1. *)
      Array.iter
        (fun r -> if r > 1. then Alcotest.failf "moment ratio %f > 1" r)
        (Table.column_floats moments ~col:6);
      Array.iter
        (fun r -> if r > 1. then Alcotest.failf "X_S ratio %f > 1" r)
        (Table.column_floats xs ~col:5)
  | _ -> Alcotest.fail "expected two tables"

let test_run_f3_kkl () =
  match run_exp "F3-kkl" with
  | [ t ] ->
      Array.iter
        (fun r -> if r > 1. then Alcotest.failf "KKL ratio %f > 1" r)
        (Table.column_floats t ~col:6)
  | _ -> Alcotest.fail "expected one table"

let test_run_t8_combinatorics () =
  match run_exp "T8-combinatorics" with
  | [ t ] ->
      List.iter
        (fun col ->
          Array.iter
            (fun err ->
              if err > 1e-9 then Alcotest.failf "identity error %g too large" err)
            (Table.column_floats t ~col))
        [ 2; 3; 4 ]
  | _ -> Alcotest.fail "expected one table"

let test_run_t11_divergence () =
  match run_exp "T11-divergence" with
  | [ t ] ->
      (* KL must be within budget on every row: the boolean column renders
         as yes. *)
      List.iteri
        (fun i row ->
          match List.nth row 5 with
          | Table.Bool b ->
              if not b then Alcotest.failf "row %d exceeds the budget" i
          | _ -> Alcotest.fail "expected bool cell")
        t.Table.rows
  | _ -> Alcotest.fail "expected one table"

let test_run_f1_lemma51 () =
  match run_exp "F1-lemma51" with
  | [ t ] ->
      (* Whenever the L5.1 side condition holds (col 4 = yes), the ratio
         (col 3) must be <= 1. *)
      List.iter
        (fun row ->
          match (List.nth row 3, List.nth row 4) with
          | Table.Float ratio, Table.Bool true ->
              if ratio > 1. then Alcotest.failf "L5.1 ratio %f > 1" ratio
          | _, _ -> ())
        t.Table.rows
  | _ -> Alcotest.fail "expected one table"

let test_run_t14_all_rules () =
  match run_exp "T14-all-rules" with
  | [ t ] ->
      (* Exact values live in [0.5, 1]; the AND value never beats the
         general one. *)
      List.iter
        (fun row ->
          match (List.nth row 2, List.nth row 4) with
          | Table.Float general, Table.Float and_v ->
              if general < 0.5 -. 1e-9 || general > 1. then
                Alcotest.failf "general value %f out of range" general;
              if and_v > general +. 1e-9 then
                Alcotest.failf "AND %f beats general %f" and_v general
          | _, _ -> Alcotest.fail "unexpected cell types")
        t.Table.rows
  | _ -> Alcotest.fail "expected one table"

let test_run_f6_exact_power () =
  match run_exp "F6-exact-power" with
  | [ t ] ->
      (* The best cutoff's power weakly improves on the midpoint's. *)
      List.iter
        (fun row ->
          match (List.nth row 2, List.nth row 5) with
          | Table.Float best, Table.Float mid ->
              if mid > best +. 1e-9 then
                Alcotest.failf "midpoint %f beats best %f" mid best
          | _, _ -> Alcotest.fail "unexpected cell types")
        t.Table.rows
  | _ -> Alcotest.fail "expected one table"

let test_run_f7_divergence () =
  match run_exp "F7-rbit-divergence" with
  | [ t ] ->
      (* Gains over one bit are >= 1 (data processing). *)
      Array.iter
        (fun g -> if g < 1. -. 1e-9 then Alcotest.failf "gain %f < 1" g)
        (Table.column_floats t ~col:4)
  | _ -> Alcotest.fail "expected one table"

(* -- Verifier ----------------------------------------------------------- *)

let test_verifier_all_pass () =
  let verdicts = Verifier.verify_all (Config.make Config.Fast) in
  Alcotest.(check int) "covers all registered checkers"
    (List.length Verifier.checked_ids)
    (List.length verdicts);
  List.iter
    (fun v ->
      if v.Verifier.failures <> [] then
        Alcotest.failf "%s failed: %s" v.experiment
          (String.concat "; " v.failures);
      if v.checks = 0 then Alcotest.failf "%s ran zero checks" v.experiment)
    verdicts;
  Alcotest.(check bool) "all passed" true (Verifier.all_passed verdicts)

let test_verifier_unknown_id () =
  Alcotest.(check bool) "unknown id gives None" true
    (Verifier.verify_one (Config.make Config.Fast) "nope" = None);
  Alcotest.(check bool) "non-exact experiment gives None" true
    (Verifier.verify_one (Config.make Config.Fast) "T1-any-rule" = None)

let () =
  Alcotest.run "dut_experiments"
    [
      ( "table",
        [
          Alcotest.test_case "width validation" `Quick test_table_make_validates_width;
          Alcotest.test_case "render" `Quick test_table_render_contains_everything;
          Alcotest.test_case "csv" `Quick test_table_csv;
          Alcotest.test_case "get_float" `Quick test_table_get_float;
          Alcotest.test_case "column_floats" `Quick test_table_column_floats;
          Alcotest.test_case "cell_to_string" `Quick test_cell_to_string;
        ] );
      ( "config",
        [
          Alcotest.test_case "profiles" `Quick test_config_profiles;
          Alcotest.test_case "profile strings" `Quick test_config_profile_strings;
          Alcotest.test_case "rng deterministic" `Quick test_config_rng_deterministic;
        ] );
      ( "registry",
        [
          Alcotest.test_case "ids unique" `Quick test_registry_ids_unique;
          Alcotest.test_case "find" `Quick test_registry_find;
          Alcotest.test_case "covers design doc" `Quick test_registry_covers_design_doc;
        ] );
      ( "runs",
        [
          Alcotest.test_case "F2 moments" `Quick test_run_f2_moments;
          Alcotest.test_case "F3 kkl" `Quick test_run_f3_kkl;
          Alcotest.test_case "T8 combinatorics" `Quick test_run_t8_combinatorics;
          Alcotest.test_case "T11 divergence" `Quick test_run_t11_divergence;
          Alcotest.test_case "F1 lemma51" `Quick test_run_f1_lemma51;
          Alcotest.test_case "T14 all rules" `Quick test_run_t14_all_rules;
          Alcotest.test_case "F6 exact power" `Quick test_run_f6_exact_power;
          Alcotest.test_case "F7 divergence" `Quick test_run_f7_divergence;
        ] );
      ( "runner",
        [
          Alcotest.test_case "run_to_channel produces output" `Quick (fun () ->
              match Registry.find "T8-combinatorics" with
              | None -> Alcotest.fail "missing experiment"
              | Some exp ->
                  let path = Filename.temp_file "dut_runner" ".txt" in
                  let oc = open_out path in
                  let outcome =
                    Runner.run_to_channel (Config.make Config.Fast) exp oc
                  in
                  close_out oc;
                  let ic = open_in path in
                  let len = in_channel_length ic in
                  close_in ic;
                  Sys.remove path;
                  Alcotest.(check bool) "nonempty output" true (len > 100);
                  Alcotest.(check bool) "ran clean" false (Runner.failed outcome);
                  Alcotest.(check bool)
                    "elapsed non-negative" true
                    (outcome.Runner.seconds >= 0.));
        ] );
      ( "verifier",
        [
          Alcotest.test_case "all exact claims pass" `Quick test_verifier_all_pass;
          Alcotest.test_case "unknown ids" `Quick test_verifier_unknown_id;
        ] );
    ]
